// Package repro's root-level benchmark harness regenerates every table
// and figure of the paper's evaluation (§V). Each BenchmarkFigXX /
// BenchmarkTableXX target runs the corresponding experiment at the
// paper-sized FullScale configuration and prints the regenerated rows, so
//
//	go test -bench=BenchmarkFig11 -benchtime=1x
//
// reproduces Figure 11, and
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation (several minutes on one core; see
// EXPERIMENTS.md for recorded paper-vs-measured values). Set
// REPRO_SCALE=quick to exercise every harness at test scale instead.
//
// Micro-benchmarks for the core allocation paths (PM-First, PAL, the
// binning pipeline) follow the figure benches; Figure 18's placement-
// overhead claim is backed by BenchmarkFig18Overhead.
package repro

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kmeans"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// benchScale selects the experiment scale (full by default).
func benchScale() experiments.Scale {
	if os.Getenv("REPRO_SCALE") == "quick" {
		return experiments.QuickScale()
	}
	return experiments.FullScale()
}

// printed dedups table output across bench reruns (go test re-invokes
// benchmarks with growing b.N; the table only needs to appear once).
var printed = map[string]bool{}

// benchExperiment regenerates one experiment per iteration on the
// shared process pool. Like the seed's sync.Map caches before it, the
// pool's result cache persists across iterations and bench targets, so
// with -benchtime above 1x the later iterations measure the warm
// (cache-hit) path; the documented -benchtime=1x invocation measures a
// cold regeneration, modulo results shared with previously-run targets
// (fig19 reuses fig14/fig16_17 cells). The BenchmarkRunner* targets
// below measure the orchestration itself with fresh pools.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		table, err := experiments.RunByName(name, scale)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if !printed[name] {
			printed[name] = true
			fmt.Printf("\n%s\n", table.String())
		}
	}
}

// --- Orchestration-layer benchmarks (internal/runner) ---
//
// The figure benches above already execute through the shared pool; the
// benchmarks below isolate the orchestration itself on a fixed spec
// list (the Sia baseline grid at the bench scale) and report the
// parallel-vs-sequential speedup. Every pass uses a fresh pool and a
// fresh cache, so the parallel pass cannot replay the sequential
// pass's results.

// runSpecList executes the spec list on a fresh pool and returns the
// wall-clock duration.
func runSpecList(b *testing.B, specs []experiments.RunSpec, workers int) time.Duration {
	b.Helper()
	prev := experiments.SetPool(runner.NewPool(workers, runner.NewResultCache(0)))
	defer experiments.SetPool(prev)
	start := time.Now()
	results, err := experiments.RunAll(context.Background(), "bench", specs)
	if err != nil {
		b.Fatal(err)
	}
	if len(results) != len(specs) {
		b.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	return time.Since(start)
}

// benchSpecs returns the fixed grid the runner benchmarks sweep, with
// the process-global profile/binning memos pre-warmed: the one-time
// silhouette K-Means construction would otherwise bill itself to
// whichever pass ran first and skew the sequential-vs-parallel ratio.
// The quick scale keeps -benchtime=1x runs snappy; REPRO_SCALE=full
// uses the paper-sized workload list.
func benchSpecs(b *testing.B) []experiments.RunSpec {
	b.Helper()
	specs := experiments.SiaBaselineSpecs(benchScale())
	for _, spec := range specs {
		if spec.Policy == experiments.PALPolicy {
			if _, err := experiments.Run(spec); err != nil {
				b.Fatal(err)
			}
			break
		}
	}
	b.ResetTimer()
	return specs
}

func BenchmarkRunnerSequential(b *testing.B) {
	specs := benchSpecs(b)
	for i := 0; i < b.N; i++ {
		runSpecList(b, specs, 1)
	}
}

func BenchmarkRunnerParallel(b *testing.B) {
	specs := benchSpecs(b)
	for i := 0; i < b.N; i++ {
		runSpecList(b, specs, 0) // GOMAXPROCS workers
	}
}

// BenchmarkRunnerSpeedup runs both configurations back to back and
// reports the ratio, so one -bench=RunnerSpeedup -benchtime=1x
// invocation answers "what does the worker pool buy on this machine".
func BenchmarkRunnerSpeedup(b *testing.B) {
	specs := benchSpecs(b)
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		seq := runSpecList(b, specs, 1)
		par := runSpecList(b, specs, workers)
		b.ReportMetric(seq.Seconds(), "sequential-s")
		b.ReportMetric(par.Seconds(), "parallel-s")
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
		b.ReportMetric(float64(workers), "workers")
	}
}

// --- One benchmark per table/figure of the evaluation section ---

func BenchmarkFig03Classifier(b *testing.B)     { benchExperiment(b, "fig03") }
func BenchmarkFig05Clustering(b *testing.B)     { benchExperiment(b, "fig05") }
func BenchmarkFig06_07Profiles(b *testing.B)    { benchExperiment(b, "fig06_08") }
func BenchmarkFig08TestbedProfile(b *testing.B) { benchExperiment(b, "fig06_08") }
func BenchmarkFig09TestbedCDF(b *testing.B)     { benchExperiment(b, "fig09") }
func BenchmarkFig10TestbedBoxplot(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkTable04Testbed(b *testing.B)      { benchExperiment(b, "table04") }
func BenchmarkFig11SiaJCT(b *testing.B)         { benchExperiment(b, "fig11") }
func BenchmarkFig12WaitTimes(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13LocalitySweep(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14SynergyLoad(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15Utilization(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16_17Schedulers(b *testing.B)  { benchExperiment(b, "fig16_17") }
func BenchmarkFig18Overhead(b *testing.B)       { benchExperiment(b, "fig18") }
func BenchmarkFig19WaitBySched(b *testing.B)    { benchExperiment(b, "fig19") }
func BenchmarkFig20SynergyLocality(b *testing.B) {
	benchExperiment(b, "fig20")
}
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, "headline") }

// --- Ablations and extensions (DESIGN.md §2) ---

func BenchmarkAblationK(b *testing.B)          { benchExperiment(b, "ablation_k") }
func BenchmarkAblationPriority(b *testing.B)   { benchExperiment(b, "ablation_priority") }
func BenchmarkAblationHysteresis(b *testing.B) { benchExperiment(b, "ablation_hysteresis") }
func BenchmarkAblationOnline(b *testing.B)     { benchExperiment(b, "ablation_online") }
func BenchmarkAblationRack(b *testing.B)       { benchExperiment(b, "ablation_rack") }

// --- Micro-benchmarks of the core allocation paths ---

// placementBench measures one PlaceRound of the given policy on a 256-GPU
// cluster with a realistic mixed batch (the per-epoch cost Fig. 18
// characterizes).
func placementBench(b *testing.B, mk func(*vprof.Binned) sim.Placer) {
	b.Helper()
	topo := cluster.Topology{NumNodes: 64, GPUsPerNode: 4}
	profile := vprof.GenerateLonghorn(topo.Size(), 1)
	binned := vprof.BinProfile(profile)
	placer := mk(binned)
	c := cluster.New(topo)
	var jobs []*sim.Job
	demands := []int{1, 1, 1, 1, 2, 4, 1, 1, 8, 1, 2, 1, 1, 4, 1, 16}
	id := 0
	used := 0
	for used+demands[id%len(demands)] <= topo.Size() {
		d := demands[id%len(demands)]
		jobs = append(jobs, &sim.Job{
			Spec: trace.JobSpec{ID: id, Demand: d, Class: vprof.Class(id % 3), Work: 1000},
		})
		used += d
		id++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := placer.PlaceRound(c, jobs, 0)
		if len(out) != len(jobs) {
			b.Fatal("placement failed")
		}
	}
}

func BenchmarkPMFirstPlaceRound256(b *testing.B) {
	placementBench(b, func(v *vprof.Binned) sim.Placer { return core.NewPMFirst(v) })
}

func BenchmarkPALPlaceRound256(b *testing.B) {
	placementBench(b, func(v *vprof.Binned) sim.Placer { return core.NewPAL(v, 1.7, nil) })
}

func BenchmarkBinningPipeline256(b *testing.B) {
	profile := vprof.GenerateLonghorn(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vprof.BinProfile(profile)
	}
}

func BenchmarkSilhouetteSelectK(b *testing.B) {
	profile := vprof.GenerateLonghorn(256, 1)
	scores := profile.ClassScores(vprof.ClassA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kmeans.SelectK(scores)
	}
}

func BenchmarkSiaSimulationPAL(b *testing.B) {
	// End-to-end cost of one 160-job / 64-GPU simulation under PAL.
	profile := experiments.LonghornProfile(64)
	tr := experiments.SiaTrace(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := experiments.Run(experiments.RunSpec{
			Trace:   tr,
			Topo:    experiments.SiaTopology(),
			Sched:   experiments.FIFOSched,
			Policy:  experiments.PALPolicy,
			Profile: profile,
			Lacross: 1.5,
			Seed:    1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
