package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
)

// reportGridSpec mirrors the palsweep shard-test grid: 2 policies x
// 2 seeds x 2 arrival rates = 8 cells over a tiny synthetic workload.
const reportGridSpec = `{
  "name": "report-test",
  "cluster": {"nodes": 2, "gpus_per_node": 4},
  "workload": {"source": "synthetic", "num_jobs": 16, "median_work_sec": 1800},
  "grid": {
    "policies": ["pal", "packed-sticky"],
    "seeds": [1, 2],
    "jobs_per_hour": [30, 60]
  }
}`

// TestGridCoveragePartialStore: a store populated by only shard 1/3 of
// the grid must render a coverage table with one row per expected cell
// — present cells marked, absent cells explicitly MISSING and counted
// in the notes, never silently dropped.
func TestGridCoveragePartialStore(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(specPath, []byte(reportGridSpec), 0o644); err != nil {
		t.Fatal(err)
	}

	spec, err := scenario.LoadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := spec.ExpandGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(expanded) != 8 {
		t.Fatalf("grid expanded to %d cells, want 8", len(expanded))
	}

	// Run only shard 1/3 into the store — a deliberately partial sweep.
	const shard, shards = 1, 3
	storeDir := filepath.Join(dir, "store")
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	cache := runner.NewResultCache(0)
	cache.SetBackend(st)
	pool := runner.NewPool(2, cache)
	sweep := runner.NewSweep(pool)
	ran := map[string]bool{}
	for _, c := range expanded {
		b, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		if runner.ShardOf(b.Key(), shards) != shard {
			continue
		}
		ran[b.Key()] = true
		run := b
		sweep.Add(run.Key(), run.Spec.Name, func() (*sim.Result, error) { return run.Run() })
	}
	if len(ran) == 0 || len(ran) == len(expanded) {
		t.Fatalf("shard %d/%d covers %d of %d cells; test needs a strict subset", shard, shards, len(ran), len(expanded))
	}
	if _, err := sweep.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	cells, err := expandGridCells(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(expanded) {
		t.Fatalf("expandGridCells returned %d cells, want %d", len(cells), len(expanded))
	}
	for i, c := range cells {
		if c.name != expanded[i].Name {
			t.Errorf("cell %d: expandGridCells name %q, want expansion-order name %q", i, c.name, expanded[i].Name)
		}
	}

	have := storeKeys(storeDir)
	if len(have) != len(ran) {
		t.Fatalf("storeKeys found %d keys, want the %d shard-%d cells", len(have), len(ran), shard)
	}

	table := gridCoverageTable(cells, have)
	if got, want := len(table.Rows), len(cells); got != want {
		t.Fatalf("coverage table has %d rows, want one per expected cell (%d)", got, want)
	}
	present, missing := 0, 0
	for i, row := range table.Rows {
		if row[0] != cells[i].name {
			t.Errorf("row %d names cell %q, want %q (expansion order)", i, row[0], cells[i].name)
		}
		wantStatus := "MISSING"
		if ran[cells[i].key] {
			wantStatus = "present"
		}
		if row[2] != wantStatus {
			t.Errorf("cell %s: status %q, want %q", cells[i].name, row[2], wantStatus)
		}
		switch row[2] {
		case "present":
			present++
		case "MISSING":
			missing++
		default:
			t.Errorf("cell %s: unknown status %q", cells[i].name, row[2])
		}
	}
	if present != len(ran) || missing != len(cells)-len(ran) {
		t.Errorf("table shows %d present / %d missing, want %d / %d", present, missing, len(ran), len(cells)-len(ran))
	}
	if len(table.Notes) == 0 {
		t.Fatal("coverage table has no notes; the missing count must be stated")
	}
	wantNote := []string{"grid cells present", "missing"}
	for _, w := range wantNote {
		if !strings.Contains(table.Notes[0], w) {
			t.Errorf("note %q does not state %q", table.Notes[0], w)
		}
	}
	hinted := false
	for _, n := range table.Notes {
		if strings.Contains(n, "-shard") {
			hinted = true
		}
	}
	if !hinted {
		t.Error("coverage table with missing cells should hint at running the remaining shards")
	}

	// A complete archive renders all-present with no remaining-shards hint.
	full := map[string]bool{}
	for _, c := range cells {
		full[c.key] = true
	}
	fullTable := gridCoverageTable(cells, full)
	for _, row := range fullTable.Rows {
		if row[2] != "present" {
			t.Errorf("complete archive: cell %s marked %q", row[0], row[2])
		}
	}
	if len(fullTable.Notes) != 1 {
		t.Errorf("complete archive should carry only the coverage count note, got %v", fullTable.Notes)
	}
}
