// Command palreport aggregates archived metric payloads — the
// *.metrics.json files `palsim -metrics` and `palsweep -metrics` write —
// into comparison tables, without re-running a single simulation. It is
// the reporting half of the telemetry subsystem: palsweep simulates and
// archives, palreport tabulates.
//
// Three tables come out of one invocation:
//
//   - metrics_summary: one row per run — measured jobs, avg/P50/P90/P99
//     JCT, mean wait, utilization, truncation.
//   - metrics_vs_baseline: policy-vs-policy improvements (the paper's
//     "PAL improves average JCT by X% over Tiresias" convention:
//     positive means better than the baseline) for every run against a
//     chosen baseline run.
//   - metrics_jct_cdf: the JCT distribution of every run side by side,
//     read from the archived histograms at fixed percentiles (the raw
//     material of Fig. 9-style CDF comparisons).
//
// Usage:
//
//	palreport -in out/                         # all payloads in a directory
//	palreport -in a.metrics.json,b.metrics.json -format md
//	palreport -in out/ -baseline sia-tiresias -format csv -out tables/
//	palreport -in results/.palstore            # telemetry embedded in a result store
//	palreport -in out/ -decisions              # + decision-trace summary table
//	palreport -in shared/.palstore -grid grid.json   # partial sweep: count missing cells
//	palreport -journal out/journal                   # merge execution journals (no -in needed)
//	palreport -journal out/journal -slowest 10 -format md
//
// A token that is a result-store directory (the layout palsweep -store
// writes) contributes the telemetry payload embedded in every stored
// result, so archived sweeps are tabulated straight from the store with
// no separate -metrics pass.
//
// -grid names scenario spec files whose deterministic grid expansion
// defines the cells a sweep was *supposed* to produce. palreport then
// prepends a grid_coverage table — one row per expected cell, present
// or MISSING — and keeps tabulating whatever payloads exist instead of
// erroring, so a store populated by only some shards of a sharded sweep
// (palsweep -shard i/n) reports its gaps explicitly rather than
// silently dropping them. Presence is judged against the stored result
// keys and loaded payload keys.
//
// -journal points at a directory of *.journal.jsonl files (what
// `palsweep -journal` and `palsim -journal` append, one per process)
// and renders the orchestration-layer view: journal_shards (per-process
// cache-tier hit counts, reconciled against each summary's pool
// counters), journal_engine (stepping-regime engagement from the
// engine's introspection counters: regime round mix, fast-path
// engagement rates, snapshot-fork savings — "-" for pre-counter
// journals), journal_store (store get/put latency quantiles, merged
// bin-wise across shards), journal_slowest (the -slowest N stragglers
// across all processes) and journal_workers (per-slot utilization). It
// needs no -in; combined with -in, the journal tables render first.
//
// -decisions appends a fourth table, decisions_summary: one row per
// archived decision trace (*.decisions.json next to the payloads, or
// embedded in stored results) counting its records, placements,
// preemptions and migrations. Per-job timelines and round-level diffs
// are cmd/palexplain's job.
//
// Formats and the -out directory behave exactly like palsweep's.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/decision"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/store"
)

// cdfPercentiles are the fixed percentiles of the side-by-side CDF table.
var cdfPercentiles = []float64{10, 25, 50, 75, 90, 95, 99}

func main() {
	var (
		in          = flag.String("in", "", "comma-separated payload files, directories or globs (*.metrics.json), or result-store directories (palsweep -store)")
		baseline    = flag.String("baseline", "", "payload name to compare against (default: the first payload)")
		format      = flag.String("format", "text", "output format: text, csv, md, json")
		outDir      = flag.String("out", "", "write one file per table into this directory instead of stdout")
		decisions   = flag.Bool("decisions", false, "also tabulate archived decision traces (*.decisions.json or store-embedded) — one summary row per run; render full timelines with palexplain")
		gridFlag    = flag.String("grid", "", "scenario spec files (comma-separated, directories or globs) whose grid expansion defines the expected cells; prepends a grid_coverage table and tolerates partially-swept archives")
		journalFlag = flag.String("journal", "", "directory of *.journal.jsonl execution journals (palsweep/palsim -journal) to merge into cross-shard tables")
		slowest     = flag.Int("slowest", 5, "with -journal: how many slowest tasks to rank")
	)
	flag.Parse()
	if *in == "" && *journalFlag == "" {
		fatal(fmt.Errorf("-in is required (point it at a palsweep -metrics directory or a -store directory), unless -journal is given"))
	}
	switch *format {
	case "text", "csv", "md", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (want text, csv, md or json)", *format))
	}
	if *journalFlag != "" {
		runJournal(*journalFlag, *slowest, *format, *outDir)
		if *in == "" {
			return
		}
	}

	payloads := loadPayloads(*in)
	if *gridFlag != "" {
		cells, err := expandGridCells(*gridFlag)
		if err != nil {
			fatal(err)
		}
		have := storeKeys(*in)
		for _, p := range payloads {
			if p.Key != "" {
				have[p.Key] = true
			}
		}
		if err := emit(gridCoverageTable(cells, have), *format, *outDir); err != nil {
			fatal(err)
		}
		if len(payloads) == 0 {
			// A partial (or not-yet-started) sweep is exactly what -grid
			// exists to report; the coverage table above already counted
			// every missing cell, so an empty archive is not an error.
			fmt.Fprintf(os.Stderr, "palreport: no payloads in %q yet; coverage table lists every expected cell as missing or store-only\n", *in)
			return
		}
	}
	if len(payloads) == 0 {
		fatal(fmt.Errorf("no payloads found in %q", *in))
	}

	base := payloads[0]
	if *baseline != "" {
		base = nil
		for _, p := range payloads {
			if p.Name == *baseline {
				base = p
				break
			}
		}
		if base == nil {
			var names []string
			for _, p := range payloads {
				names = append(names, p.Name)
			}
			fatal(fmt.Errorf("baseline %q not among loaded payloads %v", *baseline, names))
		}
	}

	for _, t := range []*experiments.Table{
		summaryTable(payloads),
		comparisonTable(payloads, base),
		cdfTable(payloads),
	} {
		if err := emit(t, *format, *outDir); err != nil {
			fatal(err)
		}
	}
	if *decisions {
		traces := loadTraces(*in)
		if len(traces) == 0 {
			fatal(fmt.Errorf("-decisions: no decision traces found in %q (enable the spec's decisions block and re-archive)", *in))
		}
		if err := emit(decisionsTable(traces), *format, *outDir); err != nil {
			fatal(err)
		}
	}
}

// loadTraces resolves the -in argument to decision traces, mirroring
// loadPayloads: store directories contribute every stored result's
// embedded trace (Peek, not Get — reporting must not refresh GC
// recency), other tokens expand to *.decisions.json files.
func loadTraces(arg string) []*decision.Trace {
	var traces []*decision.Trace
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if store.IsStoreRoot(tok) {
			st, err := store.Open(tok)
			if err != nil {
				fatal(err)
			}
			keys, err := st.Keys()
			if err != nil {
				fatal(err)
			}
			for _, key := range keys {
				res, ok, err := st.Peek(key)
				if err != nil {
					fatal(err)
				}
				if !ok {
					continue // raced with a concurrent GC
				}
				tr := decision.FromResult(res)
				if tr == nil {
					continue
				}
				cp := *tr
				if cp.Key == "" {
					cp.Key = key
				}
				if cp.Name == "" {
					cp.Name = key[:12]
				}
				traces = append(traces, &cp)
			}
			continue
		}
		// Tolerate tokens that only matched metrics payloads: -decisions
		// rides on the same -in as the metrics tables, and a mixed archive
		// directory is the common case, so misses here are not errors.
		paths, err := export.ExpandFileArgs(tok, export.DecisionsExt)
		if err != nil {
			continue
		}
		for _, path := range paths {
			if !strings.HasSuffix(path, export.DecisionsExt) {
				continue
			}
			t, err := decision.LoadFile(path)
			if err != nil {
				fatal(err)
			}
			if t.Name == "" {
				t.Name = strings.TrimSuffix(filepath.Base(path), export.DecisionsExt)
			}
			traces = append(traces, t)
		}
	}
	return traces
}

// decisionsTable renders one summary row per archived decision trace:
// how many coalesced decision records the run produced, what they
// contain, and whether the ring dropped any. Full timelines and per-job
// "why" views are palexplain's job.
func decisionsTable(traces []*decision.Trace) *experiments.Table {
	t := &experiments.Table{
		Name:  "decisions_summary",
		Title: "per-run decision-trace summary (from archived traces)",
		Header: []string{"run", "policy", "sched", "records", "rounds",
			"placements", "preemptions", "migrations", "truncated"},
	}
	for _, tr := range traces {
		placements, preemptions, migrations := 0, 0, 0
		for _, rec := range tr.Records {
			placements += len(rec.Placements)
			preemptions += len(rec.Preemptions)
			for _, p := range rec.Placements {
				if p.Migrated {
					migrations++
				}
			}
		}
		truncated := ""
		if tr.Truncated {
			truncated = fmt.Sprintf("yes (%d dropped)", tr.Dropped)
		}
		t.AddRowf(tr.Name, tr.Policy, tr.Sched, len(tr.Records), tr.Rounds,
			placements, preemptions, migrations, truncated)
		if key := tr.Key; key != "" {
			if len(key) > 16 {
				key = key[:16]
			}
			t.Note("%s: key %s", tr.Name, key)
		}
	}
	return t
}

// loadPayloads resolves the -in argument to payloads. Each
// comma-separated token may be a result-store directory (internal/store
// layout — every stored result's embedded telemetry is loaded, in key
// order), a payload file, a directory of *.metrics.json, or a glob.
// Token order is preserved across all forms — the first payload is the
// default baseline, so a file named before a store must stay first —
// and every unmatched file-ish token is collected into one error.
func loadPayloads(arg string) []*metrics.Payload {
	var payloads []*metrics.Payload
	var misses []string
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		// IsStoreRoot, not IsStore: a store populated under an older
		// codec version is still a store — report it as empty-for-this-
		// codec rather than "directory with no *.metrics.json".
		if store.IsStoreRoot(tok) {
			payloads = append(payloads, loadStorePayloads(tok)...)
			continue
		}
		paths, err := export.ExpandFileArgs(tok, export.MetricsExt)
		if err != nil {
			misses = append(misses, err.Error())
			continue
		}
		for _, path := range paths {
			p, err := metrics.LoadFile(path)
			if err != nil {
				fatal(err)
			}
			if p.Name == "" {
				p.Name = strings.TrimSuffix(filepath.Base(path), export.MetricsExt)
			}
			payloads = append(payloads, p)
		}
	}
	if len(misses) > 0 {
		fatal(fmt.Errorf("-in: %s", strings.Join(misses, "; ")))
	}
	return payloads
}

// loadStorePayloads extracts the telemetry payloads embedded in a result
// store's objects. Results archived without metrics are skipped with a
// note — they carry nothing to tabulate.
func loadStorePayloads(dir string) []*metrics.Payload {
	hadCurrent := store.IsStore(dir)
	st, err := store.Open(dir)
	if err != nil {
		fatal(err)
	}
	keys, err := st.Keys()
	if err != nil {
		fatal(err)
	}
	if len(keys) == 0 && !hadCurrent {
		// The root held only older-codec trees; say so instead of letting
		// the generic "no payloads found" hide the version mismatch.
		fmt.Fprintf(os.Stderr, "palreport: store %s holds no objects for the current codec (older-version trees present; re-run the sweeps, then `palstore gc` reclaims the old tree)\n", dir)
	}
	var payloads []*metrics.Payload
	skipped := 0
	for _, key := range keys {
		// Peek, not Get: reporting must not refresh GC recency.
		res, ok, err := st.Peek(key)
		if err != nil {
			fatal(err)
		}
		if !ok {
			continue // raced with a concurrent GC
		}
		p := metrics.FromResult(res)
		if p == nil {
			skipped++
			continue
		}
		// Stamp identity on a copy (stored payloads are shared values):
		// the store key doubles as the cache key, and a label-less payload
		// falls back to a key prefix.
		cp := *p
		if cp.Key == "" {
			cp.Key = key
		}
		if cp.Name == "" {
			cp.Name = key[:12]
		}
		payloads = append(payloads, &cp)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "palreport: store %s: skipped %d results without telemetry (re-run them with metrics enabled to tabulate)\n", dir, skipped)
	}
	return payloads
}

// gridCell is one expected cell of a -grid expansion: the cell's name
// and its content-hash cache key, the identity archived results are
// matched against.
type gridCell struct {
	name string
	key  string
}

// expandGridCells resolves the -grid argument (files, directories or
// globs of scenario specs) to the expected cells, in each spec's
// deterministic expansion order. Cells are built — not just parsed — so
// their keys are the exact content hashes a sweep would store under.
func expandGridCells(arg string) ([]gridCell, error) {
	paths, err := export.ExpandFileArgs(arg, ".json")
	if err != nil {
		return nil, fmt.Errorf("-grid: %w", err)
	}
	var cells []gridCell
	for _, path := range paths {
		spec, err := scenario.LoadFile(path)
		if err != nil {
			return nil, err
		}
		expanded, err := spec.ExpandGrid()
		if err != nil {
			return nil, err
		}
		for _, c := range expanded {
			b, err := c.Build()
			if err != nil {
				return nil, err
			}
			cells = append(cells, gridCell{name: c.Name, key: b.Key()})
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("-grid: no scenario specs in %q", arg)
	}
	return cells, nil
}

// storeKeys collects the result keys of every store directory named in
// the -in argument. Results archived without telemetry carry no payload
// to tabulate but still prove their cell ran, so coverage is judged
// against store keys as well as loaded payloads.
func storeKeys(arg string) map[string]bool {
	keys := make(map[string]bool)
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" || !store.IsStoreRoot(tok) {
			continue
		}
		st, err := store.Open(tok)
		if err != nil {
			fatal(err)
		}
		ks, err := st.Keys()
		if err != nil {
			fatal(err)
		}
		for _, k := range ks {
			keys[k] = true
		}
	}
	return keys
}

// gridCoverageTable renders one row per expected grid cell, in
// expansion order, marking each present or MISSING. Missing cells are
// counted in the notes, never dropped — the reporting mirror of the
// engine's explicit-truncation invariant.
func gridCoverageTable(cells []gridCell, have map[string]bool) *experiments.Table {
	t := &experiments.Table{
		Name:   "grid_coverage",
		Title:  "grid cell coverage (expected cells vs archived results)",
		Header: []string{"cell", "key", "status"},
	}
	missing := 0
	for _, c := range cells {
		status := "present"
		if !have[c.key] {
			status = "MISSING"
			missing++
		}
		t.AddRowf(c.name, c.key[:16], status)
	}
	t.Note("%d of %d grid cells present, %d missing", len(cells)-missing, len(cells), missing)
	if missing > 0 {
		t.Note("run the remaining shards into the shared store (palsweep -shard i/n -store ...) and re-report")
	}
	return t
}

// meanUtil averages the archived utilization series; falls back to the
// aggregate utilization when the series was not recorded.
func meanUtil(p *metrics.Payload) float64 {
	if s, ok := p.SeriesByName(metrics.SeriesUtilization); ok && len(s.Values) > 0 {
		return stats.Mean(s.Values)
	}
	return p.Aggregates.Utilization
}

// summaryTable renders one row per payload.
func summaryTable(payloads []*metrics.Payload) *experiments.Table {
	t := &experiments.Table{
		Name:  "metrics_summary",
		Title: "per-run telemetry summary (from archived payloads)",
		Header: []string{"run", "policy", "sched", "measured", "avg_jct_s", "p50_jct_s",
			"p90_jct_s", "p99_jct_s", "mean_wait_s", "util_pct", "truncated"},
	}
	for _, p := range payloads {
		a := p.Aggregates
		truncated := ""
		if p.Truncated {
			truncated = fmt.Sprintf("yes (%d unfinished)", p.Unfinished)
		}
		t.AddRowf(p.Name, p.Policy, p.Sched, a.Measured, a.AvgJCT, a.P50JCT,
			a.P90JCT, a.P99JCT, a.MeanWait, 100*meanUtil(p), truncated)
		if key := p.Key; key != "" {
			// Hand-edited payloads may carry keys shorter than the usual
			// 64-hex digest; never slice past what is there.
			if len(key) > 16 {
				key = key[:16]
			}
			t.Note("%s: key %s", p.Name, key)
		}
	}
	return t
}

// comparisonTable reports each run's improvement over the baseline on
// the lower-is-better metrics, plus the utilization delta.
func comparisonTable(payloads []*metrics.Payload, base *metrics.Payload) *experiments.Table {
	t := &experiments.Table{
		Name:  "metrics_vs_baseline",
		Title: fmt.Sprintf("improvement vs baseline %q (positive = better)", base.Name),
		Header: []string{"run", "policy", "avg_jct_impr_pct", "p50_jct_impr_pct",
			"p99_jct_impr_pct", "mean_wait_impr_pct", "util_delta_pct"},
	}
	b := base.Aggregates
	for _, p := range payloads {
		if p == base {
			continue
		}
		a := p.Aggregates
		t.AddRowf(p.Name, p.Policy,
			100*stats.Improvement(b.AvgJCT, a.AvgJCT),
			100*stats.Improvement(b.P50JCT, a.P50JCT),
			100*stats.Improvement(b.P99JCT, a.P99JCT),
			100*stats.Improvement(b.MeanWait, a.MeanWait),
			100*(meanUtil(p)-meanUtil(base)))
	}
	t.Note("baseline: %s (%s/%s), avg JCT %.1f s, p99 %.1f s",
		base.Name, base.Policy, base.Sched, b.AvgJCT, b.P99JCT)
	return t
}

// cdfTable reads each payload's archived JCT histogram at fixed
// percentiles, one column per run.
func cdfTable(payloads []*metrics.Payload) *experiments.Table {
	header := []string{"jct_percentile"}
	for _, p := range payloads {
		header = append(header, p.Name+"_s")
	}
	t := &experiments.Table{
		Name:   "metrics_jct_cdf",
		Title:  "JCT distribution comparison (binned quantiles from archived histograms)",
		Header: header,
	}
	for _, pct := range cdfPercentiles {
		row := []interface{}{fmt.Sprintf("p%g", pct)}
		for _, p := range payloads {
			if p.JCTHist == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, p.JCTHist.Quantile(pct))
		}
		t.AddRowf(row...)
	}
	return t
}

// emit writes one table to stdout or to <outDir>/<name>.<ext> — the same
// rendering contract as palsweep.
func emit(t *experiments.Table, format, outDir string) error {
	render := func(w *os.File) error {
		switch format {
		case "text":
			_, err := fmt.Fprint(w, t.String())
			return err
		case "csv":
			return export.TableCSV(w, t)
		case "md":
			return export.TableMarkdown(w, t)
		case "json":
			return export.TableJSON(w, t)
		}
		return fmt.Errorf("unknown format %q", format)
	}
	if outDir == "" {
		return render(os.Stdout)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ext := map[string]string{"text": "txt", "csv": "csv", "md": "md", "json": "json"}[format]
	f, err := os.Create(filepath.Join(outDir, t.Name+"."+ext))
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "palreport: %v\n", err)
	os.Exit(2)
}
