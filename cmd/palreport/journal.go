package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/journal"
	"repro/internal/runner"
	"repro/internal/sim"
)

// runJournal renders the execution-journal tables from a directory of
// *.journal.jsonl files — the read side of palsweep/palsim -journal.
// N shard processes that swept one grid into a shared store each left
// one journal; here they merge into a cross-shard view: per-process
// tier hit rates, engine stepping-regime engagement, store-operation
// latency quantiles, the slowest cells across all shards, and
// per-worker utilization.
func runJournal(dir string, slowest int, format, outDir string) {
	procs, err := journal.LoadDir(dir)
	if err != nil {
		fatal(err)
	}
	for _, t := range []*experiments.Table{
		journalShardsTable(procs),
		journalEngineTable(procs),
		journalStoreTable(procs),
		journalSlowestTable(procs, slowest),
		journalWorkersTable(procs),
	} {
		if err := emit(t, format, outDir); err != nil {
			fatal(err)
		}
	}
}

// journalShardsTable is the headline view: one row per process with its
// task counts by cache tier, wall clock and worker busyness, and a
// TOTAL row summing the tier counts across processes. The counts come
// from the task events; each complete process's summary counters are
// cross-checked against them, so a "counters diverge" note is a bug
// report, not a formatting choice.
func journalShardsTable(procs []*journal.Process) *experiments.Table {
	t := &experiments.Table{
		Name:  "journal_shards",
		Title: "per-process sweep execution (from journals)",
		Header: []string{"process", "workers", "tasks", "executed", "snapshot_forks",
			"memory_hits", "store_hits", "errors", "stored", "store_errors", "wall_s", "busy_pct", "complete"},
	}
	var tot journal.TierCounts
	var totStats runner.Stats
	var totStored, totStoreErrors int64
	complete := true
	for _, p := range procs {
		c := p.Counts()
		tot.Tasks += c.Tasks
		tot.Executed += c.Executed
		tot.SnapshotForks += c.SnapshotForks
		tot.MemoryHits += c.MemoryHits
		tot.StoreHits += c.StoreHits
		tot.Errors += c.Errors
		wall := p.WallMS() / 1000
		var busy float64
		for _, b := range p.WorkerBusy() {
			busy += b
		}
		busyPct := 0.0
		if wall > 0 && p.Header.Workers > 0 {
			busyPct = 100 * (busy / 1000) / (wall * float64(p.Header.Workers))
		}
		stored, storeErrors := "-", "-"
		done := "yes"
		if p.Summary == nil {
			done = "NO (crashed or cancelled)"
			complete = false
		} else {
			totStats.Submitted += p.Summary.Runner.Submitted
			totStats.Completed += p.Summary.Runner.Completed
			totStats.Executed += p.Summary.Runner.Executed
			totStats.CacheHits += p.Summary.Runner.CacheHits
			if cs := p.Summary.Cache; cs != nil {
				stored = fmt.Sprintf("%d", cs.Stored)
				storeErrors = fmt.Sprintf("%d", cs.StoreErrors)
				totStored += cs.Stored
				totStoreErrors += cs.StoreErrors
			}
			if p.Summary.StoreDetached {
				t.Note("%s: store DETACHED mid-sweep (circuit breaker); later results were not persisted", p.Name())
			}
			// The pool's Executed counter includes snapshot forks (their
			// Run closures ran); the journal breaks forks out by outcome.
			if c.Executed+c.SnapshotForks+c.Errors != p.Summary.Runner.Executed ||
				c.MemoryHits+c.StoreHits != p.Summary.Runner.CacheHits {
				t.Note("%s: counters diverge: task events say %d executed / %d hits, summary says %d / %d",
					p.Name(), c.Executed+c.SnapshotForks+c.Errors, c.MemoryHits+c.StoreHits,
					p.Summary.Runner.Executed, p.Summary.Runner.CacheHits)
			}
		}
		t.AddRowf(p.Name(), p.Header.Workers, c.Tasks, c.Executed, c.SnapshotForks,
			c.MemoryHits, c.StoreHits, c.Errors, stored, storeErrors, wall, busyPct, done)
	}
	t.AddRowf("TOTAL", "", tot.Tasks, tot.Executed, tot.SnapshotForks, tot.MemoryHits,
		tot.StoreHits, tot.Errors, totStored, totStoreErrors, "", "", "")
	if complete {
		t.Note("summary counters across processes: %d submitted, %d completed, %d executed, %d cache hits",
			totStats.Submitted, totStats.Completed, totStats.Executed, totStats.CacheHits)
	}
	return t
}

// journalEngineTable renders the engine-introspection view: per
// process, how the simulated rounds of its executed tasks split across
// the four stepping regimes, how often the placement-skip and
// incremental-ordering fast paths engaged, and what snapshot forks
// saved — the cross-shard aggregation of sim.Counters. Processes whose
// journals predate the counters field (or whose runs carried none)
// render "-" instead of fabricated zeros. Like the shards table, each
// complete process's summary total is cross-checked against the sum of
// its task events: a "counters diverge" note is a bug report.
func journalEngineTable(procs []*journal.Process) *experiments.Table {
	t := &experiments.Table{
		Name:  "journal_engine",
		Title: "engine stepping-regime engagement (from journal counters)",
		Header: []string{"process", "rounds", "materialized_pct", "idle_gap_pct",
			"sparse_pct", "dense_pct", "plc_skip_pct", "order_reval",
			"order_rebuilds", "preempt", "migrate", "resumes", "rounds_saved"},
	}
	tot := &sim.Counters{}
	counted := 0
	row := func(name string, c *sim.Counters, ok bool) {
		if !ok {
			t.AddRowf(name, "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-")
			return
		}
		total := c.TotalRounds()
		pct := func(n int64) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", 100*float64(n)/float64(total))
		}
		skip := "-"
		if gated := c.PlacementsRun + c.PlacementsSkipped; gated > 0 {
			skip = fmt.Sprintf("%.1f", 100*float64(c.PlacementsSkipped)/float64(gated))
		}
		t.AddRowf(name, total, pct(c.MaterializedRounds), pct(c.IdleGapRounds),
			pct(c.SparseRounds), pct(c.DenseRounds), skip, c.OrderRevalidated,
			c.OrderRebuilds, c.Preemptions, c.Migrations, c.SnapshotsResumed,
			c.ResumedRounds)
	}
	for _, p := range procs {
		c, ok := p.EngineCounters()
		if ok {
			counted++
			tot.Add(c)
			// The summary total is the writer's accumulation over the same
			// spans the task events record, so the two must agree exactly
			// whenever both exist (all-int64 structs compare with ==).
			if p.Summary != nil && p.Summary.Engine != nil {
				var evSum sim.Counters
				saw := false
				for i := range p.Tasks {
					if tc := p.Tasks[i].Counters; tc != nil {
						evSum.Add(tc)
						saw = true
					}
				}
				if saw && evSum != *p.Summary.Engine {
					t.Note("%s: counters diverge: task events sum to %d rounds, summary says %d",
						p.Name(), evSum.TotalRounds(), p.Summary.Engine.TotalRounds())
				}
			}
		}
		row(p.Name(), c, ok)
	}
	row("TOTAL", tot, counted > 0)
	if counted == 0 {
		t.Note("no engine counters recorded (journals predate the counters field, or every task was a cache hit)")
	} else if counted < len(procs) {
		t.Note("%d of %d processes carried no engine counters (rendered \"-\")", len(procs)-counted, len(procs))
	}
	return t
}

// journalStoreTable aggregates the store probes: per-process get/put
// rows plus a TOTAL row merged bin-wise across processes (journals all
// share the probe's histogram shape, so the merge is exact).
func journalStoreTable(procs []*journal.Process) *experiments.Table {
	t := &experiments.Table{
		Name:  "journal_store",
		Title: "persistent-store operation latency (from journal store probes)",
		Header: []string{"process", "op", "count", "errors", "misses",
			"p50_ms", "p90_ms", "p99_ms", "max_ms", "p50_kb", "max_kb"},
	}
	var totGet, totPut *journal.OpStats
	rows := 0
	addRow := func(name, op string, s *journal.OpStats) {
		if s == nil {
			return
		}
		rows++
		lat := [4]string{"-", "-", "-", "-"}
		if h := s.LatencyMS; h != nil && h.N > 0 {
			lat = [4]string{
				fmt.Sprintf("%.2f", h.Quantile(50)),
				fmt.Sprintf("%.2f", h.Quantile(90)),
				fmt.Sprintf("%.2f", h.Quantile(99)),
				fmt.Sprintf("%.2f", h.Max),
			}
		}
		size := [2]string{"-", "-"}
		if h := s.Bytes; h != nil && h.N > 0 {
			size = [2]string{
				fmt.Sprintf("%.1f", h.Quantile(50)/1024),
				fmt.Sprintf("%.1f", h.Max/1024),
			}
		}
		t.AddRowf(name, op, s.Count, s.Errors, s.Misses,
			lat[0], lat[1], lat[2], lat[3], size[0], size[1])
	}
	for _, p := range procs {
		if p.Summary == nil {
			continue
		}
		addRow(p.Name(), "get", p.Summary.StoreGet)
		addRow(p.Name(), "put", p.Summary.StorePut)
		totGet = journal.MergeOps(totGet, p.Summary.StoreGet)
		totPut = journal.MergeOps(totPut, p.Summary.StorePut)
	}
	addRow("TOTAL", "get", totGet)
	addRow("TOTAL", "put", totPut)
	if rows == 0 {
		t.Note("no store probes recorded (sweep ran without -store, or no process finished cleanly)")
	}
	return t
}

// journalSlowestTable ranks the n longest tasks across every process —
// the straggler cells of a sharded sweep.
func journalSlowestTable(procs []*journal.Process, n int) *experiments.Table {
	t := &experiments.Table{
		Name:  "journal_slowest",
		Title: fmt.Sprintf("%d slowest tasks across all processes", n),
		Header: []string{"rank", "process", "label", "key", "outcome",
			"worker", "run_ms", "dur_ms"},
	}
	for i, s := range journal.SlowestTasks(procs, n) {
		key := s.Task.Key
		if len(key) > 16 {
			key = key[:16]
		}
		t.AddRowf(i+1, s.Proc.Name(), s.Task.Label, key, s.Task.Outcome,
			s.Task.Worker, s.Task.RunMS, s.Task.DurMS)
	}
	return t
}

// journalWorkersTable breaks each process down by worker slot: tasks
// carried and busy time against the process's wall clock.
func journalWorkersTable(procs []*journal.Process) *experiments.Table {
	t := &experiments.Table{
		Name:   "journal_workers",
		Title:  "per-worker utilization (from journals)",
		Header: []string{"process", "worker", "tasks", "busy_s", "util_pct"},
	}
	for _, p := range procs {
		wall := p.WallMS()
		busy := p.WorkerBusy()
		perWorker := make(map[int]int64)
		for _, ev := range p.Tasks {
			perWorker[ev.Worker]++
		}
		for w := 0; w < p.Header.Workers; w++ {
			util := 0.0
			if wall > 0 {
				util = 100 * busy[w] / wall
			}
			t.AddRowf(p.Name(), w, perWorker[w], busy[w]/1000, util)
		}
	}
	return t
}
