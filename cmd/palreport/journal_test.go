package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/runner"
	"repro/internal/sim"
)

// span builds one executed-task span carrying counters, the shape
// palsweep's probe emits for a simulated cell.
func span(key string, worker int, c *sim.Counters) runner.TaskSpan {
	return runner.TaskSpan{
		Key: key, Label: "cell-" + key, Worker: worker,
		Outcome: runner.OutcomeExecuted, Start: time.Now(),
		Duration: 5 * time.Millisecond, Run: 4 * time.Millisecond,
		Counters: c,
	}
}

// TestJournalEngineTableReconciles pins the stepping-engagement table
// against a synthetic 2-shard sweep: one row per shard whose rounds
// cell equals that shard's summed counters, a TOTAL row equal to the
// cross-shard sum, and no divergence notes when summaries agree with
// task events — the reconciliation the acceptance criteria name.
func TestJournalEngineTableReconciles(t *testing.T) {
	dir := t.TempDir()
	shardCtrs := [][]*sim.Counters{
		{
			{MaterializedRounds: 100, SparseRounds: 50, DenseRounds: 10, IdleGapRounds: 5,
				PlacementsRun: 60, PlacementsSkipped: 40, OrderRevalidated: 7, OrderRebuilds: 3},
			{MaterializedRounds: 30, SparseRounds: 20, Preemptions: 2, Migrations: 4},
		},
		{
			{MaterializedRounds: 200, DenseRounds: 80, SnapshotsResumed: 1, ResumedRounds: 25,
				PlacementsRun: 100, OrderRevalidated: 11},
		},
	}
	wantShard := make([]sim.Counters, len(shardCtrs))
	var wantTotal sim.Counters
	for i, ctrs := range shardCtrs {
		jw, err := journal.Create(dir, journal.Header{
			Role: "palsweep", Shard: fmt.Sprintf("%d/%d", i, len(shardCtrs)), Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for j, c := range ctrs {
			jw.ObserveTask(span(fmt.Sprintf("s%dc%d", i, j), j%2, c))
			wantShard[i].Add(c)
			wantTotal.Add(c)
		}
		// A cache hit carries no counters and must not disturb the sums.
		jw.ObserveTask(runner.TaskSpan{Key: "hit", Worker: 0, Outcome: runner.OutcomeMemoryHit,
			Start: time.Now(), Duration: time.Millisecond})
		if err := jw.Close(journal.Summary{}); err != nil {
			t.Fatal(err)
		}
	}

	procs, err := journal.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != len(shardCtrs) {
		t.Fatalf("loaded %d journals, want %d", len(procs), len(shardCtrs))
	}
	for i, p := range procs {
		ec, ok := p.EngineCounters()
		if !ok || *ec != wantShard[i] {
			t.Errorf("shard %d: EngineCounters = %+v (ok=%v), want %+v", i, ec, ok, wantShard[i])
		}
	}

	table := journalEngineTable(procs)
	if got, want := len(table.Rows), len(shardCtrs)+1; got != want {
		t.Fatalf("engine table has %d rows, want %d shards + TOTAL = %d", got, len(shardCtrs), want)
	}
	for i := range shardCtrs {
		row := table.Rows[i]
		if want := fmt.Sprint(wantShard[i].TotalRounds()); row[1] != want {
			t.Errorf("shard %d row reports %s rounds, summary counters say %s", i, row[1], want)
		}
	}
	totalRow := table.Rows[len(table.Rows)-1]
	if totalRow[0] != "TOTAL" {
		t.Fatalf("last row is %q, want TOTAL", totalRow[0])
	}
	if want := fmt.Sprint(wantTotal.TotalRounds()); totalRow[1] != want {
		t.Errorf("TOTAL row reports %s rounds, cross-shard sum is %s", totalRow[1], want)
	}
	if want := fmt.Sprint(wantTotal.ResumedRounds); totalRow[12] != want {
		t.Errorf("TOTAL rounds_saved = %s, want %s", totalRow[12], want)
	}
	for _, n := range table.Notes {
		if strings.Contains(n, "diverge") {
			t.Errorf("consistent journals produced a divergence note: %q", n)
		}
	}
}

// TestJournalEngineTableDivergenceNote: a summary whose engine total
// disagrees with the task events must surface as a "counters diverge"
// note — a bug report, never silently reconciled.
func TestJournalEngineTableDivergenceNote(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Header{Role: "palsweep", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	jw.ObserveTask(span("a", 0, &sim.Counters{MaterializedRounds: 10}))
	// Close with an explicit (wrong) engine total: the writer honors a
	// caller-provided summary rather than overwriting it.
	if err := jw.Close(journal.Summary{Engine: &sim.Counters{MaterializedRounds: 999}}); err != nil {
		t.Fatal(err)
	}
	procs, err := journal.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	table := journalEngineTable(procs)
	found := false
	for _, n := range table.Notes {
		if strings.Contains(n, "counters diverge") {
			found = true
		}
	}
	if !found {
		t.Errorf("mismatched summary produced no divergence note; notes: %v", table.Notes)
	}
}

// TestJournalEngineTablePreCounterJournal is the forward-compatibility
// gate: a journal written before the counters field existed (no
// "counters" on task events, no "engine" in the summary) must load
// cleanly, report no engine counters, and render "-" cells in the
// engagement table instead of fabricated zeros.
func TestJournalEngineTablePreCounterJournal(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		`{"type":"header","v":1,"role":"palsweep","shard":"0/1","workers":2,"pid":123,"start_ms":1000}`,
		`{"type":"task","key":"abc","label":"cell-a","worker":0,"outcome":"executed","start_ms":1005,"dur_ms":12.5,"run_ms":11.0}`,
		`{"type":"task","key":"def","label":"cell-b","worker":1,"outcome":"store-hit","start_ms":1006,"dur_ms":1.5}`,
		`{"type":"summary","end_ms":2000,"runner":{"Submitted":2,"Completed":2,"Executed":1,"CacheHits":1}}`,
	}
	path := filepath.Join(dir, "old"+journal.Ext)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	procs, err := journal.LoadDir(dir)
	if err != nil {
		t.Fatalf("pre-counter journal failed to load: %v", err)
	}
	p := procs[0]
	if len(p.Tasks) != 2 || p.Summary == nil {
		t.Fatalf("pre-counter journal loaded %d tasks (summary=%v), want 2 tasks with a summary",
			len(p.Tasks), p.Summary != nil)
	}
	if ec, ok := p.EngineCounters(); ok {
		t.Fatalf("pre-counter journal reports engine counters %+v; want none", ec)
	}

	table := journalEngineTable(procs)
	if got, want := len(table.Rows), 2; got != want {
		t.Fatalf("engine table has %d rows, want process + TOTAL = %d", got, want)
	}
	for _, row := range table.Rows {
		for i, cell := range row[1:] {
			if cell != "-" {
				t.Errorf("row %q column %d = %q, want \"-\" for a pre-counter journal",
					row[0], i+1, cell)
			}
		}
	}
	found := false
	for _, n := range table.Notes {
		if strings.Contains(n, "no engine counters recorded") {
			found = true
		}
	}
	if !found {
		t.Errorf("counter-less table should note why every cell is \"-\"; notes: %v", table.Notes)
	}
}
