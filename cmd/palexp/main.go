// Command palexp runs the paper's evaluation experiments and prints the
// regenerated tables/figures.
//
// Usage:
//
//	palexp -list
//	palexp -exp fig11 -scale full
//	palexp -exp all  -scale quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/runner"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID (see -list) or \"all\"")
		scale   = flag.String("scale", "full", "experiment scale: full or quick")
		list    = flag.Bool("list", false, "list available experiments and exit")
		format  = flag.String("format", "text", "output format: text, csv, md, json")
		workers = flag.Int("workers", 0, "concurrent simulations within an experiment (0 = GOMAXPROCS)")
	)
	flag.Parse()
	experiments.SetPool(runner.NewPool(*workers, runner.NewResultCache(0)))

	if *list {
		for _, name := range experiments.Names() {
			fmt.Printf("%-10s %s\n", name, experiments.Describe(name))
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.FullScale()
	case "quick":
		sc = experiments.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "palexp: unknown scale %q (want full or quick)\n", *scale)
		os.Exit(2)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		table, err := experiments.RunByName(name, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "palexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		switch *format {
		case "text":
			fmt.Print(table.String())
			fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		case "csv":
			err = export.TableCSV(os.Stdout, table)
		case "md":
			err = export.TableMarkdown(os.Stdout, table)
		case "json":
			err = export.TableJSON(os.Stdout, table)
		default:
			fmt.Fprintf(os.Stderr, "palexp: unknown format %q\n", *format)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "palexp: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
