// Command paltrace generates and inspects workload traces: job counts,
// demand distribution, duration distribution, arrival rate, and the
// per-model mix — the quantities §IV-B characterizes the Sia-Philly and
// Synergy trace families by.
//
// Examples:
//
//	paltrace -trace sia -workload 5
//	paltrace -trace synergy -load 10 -jobs 1000 -dump 20
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		traceKind = flag.String("trace", "sia", "trace family: sia or synergy")
		workload  = flag.Int("workload", 1, "Sia-Philly workload index (1-8)")
		load      = flag.Float64("load", 10, "Synergy arrival rate (jobs/hour)")
		jobs      = flag.Int("jobs", 1000, "Synergy trace length")
		dump      = flag.Int("dump", 0, "also print the first N jobs")
		save      = flag.String("save", "", "write the trace as JSON to this file")
	)
	flag.Parse()

	var tr *trace.Trace
	switch *traceKind {
	case "sia":
		tr = trace.SiaPhilly(trace.DefaultSiaPhillyParams(), *workload)
	case "synergy":
		params := trace.DefaultSynergyParams(*load)
		params.NumJobs = *jobs
		tr = trace.Synergy(params)
	default:
		fmt.Fprintf(os.Stderr, "paltrace: unknown trace family %q\n", *traceKind)
		os.Exit(2)
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "paltrace: invalid trace: %v\n", err)
		os.Exit(1)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paltrace: %v\n", err)
			os.Exit(1)
		}
		if err := tr.Save(f); err != nil {
			fmt.Fprintf(os.Stderr, "paltrace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "paltrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d jobs)\n", *save, len(tr.Jobs))
	}

	fmt.Printf("trace %s: %d jobs\n", tr.Name, len(tr.Jobs))
	span := tr.Jobs[len(tr.Jobs)-1].Arrival - tr.Jobs[0].Arrival
	if span > 0 {
		fmt.Printf("  arrival span %.2f h (%.1f jobs/hour)\n",
			span/3600, float64(len(tr.Jobs)-1)/span*3600)
	}
	fmt.Printf("  single-GPU fraction %.1f%%, max demand %d\n",
		100*tr.SingleGPUFraction(), tr.MaxDemand())
	fmt.Printf("  total demand %.0f GPU-hours\n", tr.TotalGPUSeconds()/3600)

	demands := map[int]int{}
	models := map[string]int{}
	var works []float64
	for _, j := range tr.Jobs {
		demands[j.Demand]++
		models[j.Model]++
		works = append(works, j.Work)
	}
	fmt.Println("  demand distribution:")
	var keys []int
	for d := range demands {
		keys = append(keys, d)
	}
	sort.Ints(keys)
	for _, d := range keys {
		fmt.Printf("    %3d GPUs: %4d jobs (%.1f%%)\n",
			d, demands[d], 100*float64(demands[d])/float64(len(tr.Jobs)))
	}
	fmt.Println("  model mix:")
	var names []string
	for m := range models {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		fmt.Printf("    %-10s %4d jobs\n", m, models[m])
	}
	w := stats.Summarize(works)
	fmt.Printf("  ideal duration: median %.0fs mean %.0fs p99 %.0fs max %.0fs\n",
		w.Median, w.Mean, w.P99, w.Max)

	if *dump > 0 {
		fmt.Println("  first jobs:")
		for i, j := range tr.Jobs {
			if i >= *dump {
				break
			}
			fmt.Printf("    job %3d: t=%7.0fs model=%-9s class=%s demand=%2d work=%6.0fs\n",
				j.ID, j.Arrival, j.Model, j.Class, j.Demand, j.Work)
		}
	}
}
