// Command palsweep runs any subset of the registered experiments
// concurrently through the runner pool, with progress/ETA reporting and
// JSON/CSV/Markdown export.
//
// Where palexp executes one experiment at a time, palsweep fans every
// requested experiment's simulation grid out across a shared worker
// pool: independent simulations from different experiments interleave
// freely, the content-addressed result cache deduplicates overlapping
// configurations (e.g. the Sia baseline feeding fig11, fig12 and
// headline), and each experiment's table is still assembled from
// results in deterministic submission order, so the output is
// byte-identical to a sequential run — with one exception: fig18
// reports wall-clock placement timings, which vary run to run by
// nature.
//
// Usage:
//
//	palsweep -list
//	palsweep -experiments fig11,fig14 -workers 8 -scale quick
//	palsweep -experiments all -scale full -format csv -out results/
//	palsweep -experiments sia -workers 1   # fig11,fig12,fig13,headline
//	palsweep -scenario a.json,b.json,c.json -workers 8
//	palsweep -scenario specs/ -workers 8              # every *.json in the directory
//	palsweep -scenario 'specs/pal-*.json' -metrics out/
//	palsweep -scenario specs/ -store results/.palstore   # warm-start later sweeps
//	palsweep -scenario grid.json -shard 0/2 -store shared/.palstore   # one of two shard processes
//	palsweep -scenario grid.json -journal out/journal    # append this process's execution journal
//	palsweep -scenario specs/ -cpuprofile cpu.pprof -memprofile mem.pprof
//
// With -scenario, each named declarative spec (internal/scenario
// documents the format) becomes one simulation fanned out over the same
// worker pool, cached under its canonical content hash — so re-sweeping
// an unchanged spec, or naming the same scenario twice, simulates once
// — and summarized as one row of a single "scenarios" table. A spec
// carrying a grid block expands into one cell per cross-product
// combination first, in the deterministic order internal/scenario
// documents. Scenario arguments may be files, directories (every *.json
// inside) or globs; an argument matching nothing is an error naming
// what failed. Adding -metrics out/ force-enables each spec's telemetry
// block and archives the collected payloads there, ready for
// cmd/palreport to aggregate.
//
// With -shard i/n, this process runs only the expanded cells whose
// content hash lands in shard i of n (runner.ShardOf over the cell's
// cache key — a pure function of cell content, never of enumeration
// order, so the n processes of one grid agree on the partition without
// coordination). Shards meet in the shared -store: once every shard has
// run, any process — sharded or not — sweeps the full grid with
// "0 simulated", and palreport -grid tabulates whatever cells are
// present, counting the missing ones.
//
// Cells carrying a fork block (scenario `fork`) share their warmup
// prefixes through a snapshot cache: each distinct prefix — warmup
// policies, horizon and arrived workload prefix — simulates once, and
// every other cell of the group forks from the captured engine state
// at the divergence point. The summary line breaks these out as
// "snapshot forks" so "simulated" stays the count of full from-scratch
// runs; -snapshots=false disables sharing (each cell simulates its own
// prefix — byte-identical results either way). With -store, captured
// snapshots persist beside results, so shard processes and later
// sweeps fork straight from disk.
//
// With -store, the in-memory result cache is backed by the persistent
// content-addressed store (internal/store): results computed by any
// previous palsweep/palsim invocation — or a concurrent one — are
// loaded from disk instead of re-simulated, and fresh results are
// persisted for the next run. The summary line breaks cache hits down
// by tier; a repeat sweep over an unchanged grid reports 0 simulated.
// Inspect or prune the store with cmd/palstore.
//
// With -journal, the process appends an execution journal (one JSONL
// event stream, internal/journal) into the named directory: a task
// record per completed simulation — which cache tier satisfied it,
// which worker slot carried it, how long it took — and a final summary
// carrying the pool/cache counters and store latency histograms.
// Journals are observation-only wall-clock data, strictly outside
// results and cache keys: a journaled sweep's tables are byte-identical
// to an unjournaled run's. Each shard process of a sharded sweep writes
// its own journal into the shared directory; cmd/palreport -journal
// merges them into cross-shard tables. -cpuprofile/-memprofile write Go
// pprof profiles on clean exit.
//
// Ctrl-C cancels the sweep: in-flight simulations finish, queued ones
// never start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/decision"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
)

// groups name convenient experiment subsets.
var groups = map[string][]string{
	"sia":      {"fig11", "fig12", "fig13", "headline"},
	"synergy":  {"fig14", "fig15", "fig16_17", "fig19", "fig20"},
	"testbed":  {"fig09", "fig10", "table04"},
	"ablation": {"ablation_hysteresis", "ablation_k", "ablation_online", "ablation_priority", "ablation_rack"},
}

func main() {
	var (
		expFlag    = flag.String("experiments", "all", "comma-separated experiment IDs, group names (sia, synergy, testbed, ablation) or \"all\"")
		scenFlag   = flag.String("scenario", "", "comma-separated scenario spec files, directories or globs to sweep instead of registered experiments")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		scale      = flag.String("scale", "full", "experiment scale: full or quick")
		format     = flag.String("format", "text", "output format: text, csv, md, json")
		outDir     = flag.String("out", "", "write one file per experiment into this directory instead of stdout")
		cacheCap   = flag.Int("cache", 0, "result-cache capacity in simulations (0 = default)")
		list       = flag.Bool("list", false, "list available experiments and groups, then exit")
		quiet      = flag.Bool("quiet", false, "suppress the progress line")
		metricsDir = flag.String("metrics", "", "with -scenario: collect telemetry and archive each scenario's payload (JSON) and series (CSV) into this directory for palreport")
		decisions  = flag.Bool("decisions", false, "with -scenario: record each scenario's decision trace; with -metrics, traces are archived next to the payloads for palexplain")
		storeDir   = flag.String("store", "", "persistent result-store directory: a disk cache tier shared across processes, so repeat sweeps execute 0 simulations")
		snapshots  = flag.Bool("snapshots", true, "with -scenario: share fork-bearing cells' warmup prefixes through the snapshot cache (each prefix simulates once and every cell forks from it); disable to simulate every cell's own prefix")
		shardFlag  = flag.String("shard", "", "with -scenario and -store: run only shard i/n of the expanded cells (e.g. 0/4); the n processes partition the grid by content hash and meet in the shared store")
		journalDir = flag.String("journal", "", "append this process's execution journal (task spans, cache-tier outcomes, store latency) into this directory for palreport -journal")
		cpuProfile = flag.String("cpuprofile", "", "write a Go CPU profile to this file (flushed on clean exit)")
		memProfile = flag.String("memprofile", "", "write a Go heap profile to this file on clean exit")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Printf("%-20s %s\n", name, experiments.Describe(name))
		}
		groupNames := make([]string, 0, len(groups))
		for g := range groups {
			groupNames = append(groupNames, g)
		}
		sort.Strings(groupNames)
		fmt.Println()
		for _, g := range groupNames {
			fmt.Printf("%-20s group: %s\n", g, strings.Join(groups[g], ","))
		}
		return
	}

	if *scenFlag != "" {
		// The specs own the whole configuration; an experiment selection
		// or scale alongside them would be silently ignored, so reject
		// the combination (same policy as palsim's -scenario).
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "experiments" || f.Name == "scale" {
				fatal(fmt.Errorf("-%s conflicts with -scenario (the specs set the configuration)", f.Name))
			}
		})
	} else if *metricsDir != "" {
		fatal(fmt.Errorf("-metrics requires -scenario"))
	} else if *decisions {
		fatal(fmt.Errorf("-decisions requires -scenario"))
	}
	shard, err := parseShard(*shardFlag)
	if err != nil {
		fatal(err)
	}
	if shard.enabled() {
		if *scenFlag == "" {
			fatal(fmt.Errorf("-shard requires -scenario (shards split an expanded scenario grid)"))
		}
		if *storeDir == "" {
			fatal(fmt.Errorf("-shard requires -store (shard processes meet in the shared result store)"))
		}
	}

	var names []string
	var sc experiments.Scale
	if *scenFlag == "" {
		var err error
		names, err = resolveExperiments(*expFlag)
		if err != nil {
			fatal(err)
		}
		switch *scale {
		case "full":
			sc = experiments.FullScale()
		case "quick":
			sc = experiments.QuickScale()
		default:
			fatal(fmt.Errorf("unknown scale %q (want full or quick)", *scale))
		}
	}
	switch *format {
	case "text", "csv", "md", "json":
	default:
		// Reject before running anything: a bad format discovered after a
		// full-scale sweep would throw minutes of simulation away.
		fatal(fmt.Errorf("unknown format %q (want text, csv, md or json)", *format))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first Ctrl-C cancels the sweep, deregister the
		// handler so a second Ctrl-C force-kills the process instead of
		// being swallowed while in-flight simulations drain.
		<-ctx.Done()
		stop()
	}()
	sc.Ctx = ctx

	stopProfiles, err := journal.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	cache := runner.NewResultCache(*cacheCap)
	var storeProbe *journal.BackendProbe
	var snapBackend runner.SnapshotBackend
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		snapBackend = st
		var backend runner.Backend = st
		if *journalDir != "" {
			// The probe wraps the store so the journal's summary carries
			// per-op latency/size histograms; the cache (and its circuit
			// breaker) sees the probe as just another backend.
			storeProbe = journal.ProbeBackend(st)
			backend = storeProbe
		}
		cache.SetBackend(backend)
	}
	pool := runner.NewPool(*workers, cache)
	experiments.SetPool(pool)

	var jw *journal.Writer
	if *journalDir != "" {
		jw, err = journal.Create(*journalDir, journal.Header{
			Role: "palsweep", Shard: *shardFlag, Workers: pool.Workers(),
		})
		if err != nil {
			fatal(err)
		}
		pool.SetProbe(jw)
	}
	// finish runs on every clean exit path (fatal paths leave a
	// summary-less journal, which the reader reports as incomplete): the
	// store-degradation warning, the journal summary record, and the
	// profile flush.
	finish := func() {
		storeWarning(cache)
		if jw != nil {
			cs := cache.Stats()
			sum := journal.Summary{
				Runner:        pool.Stats(),
				Cache:         &cs,
				StoreDetached: cache.BackendDetached(),
			}
			if storeProbe != nil {
				sum.StoreGet, sum.StorePut = storeProbe.Stats()
			}
			if err := jw.Close(sum); err != nil {
				fmt.Fprintf(os.Stderr, "palsweep: WARNING: journal degraded: %v\n", err)
			} else if !*quiet {
				fmt.Fprintf(os.Stderr, "palsweep: journal %s\n", jw.Path())
			}
		}
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "palsweep: %v\n", err)
		}
	}

	start := time.Now()
	if *scenFlag != "" {
		paths, err := expandScenarioArgs(*scenFlag)
		if err != nil {
			fatal(err)
		}
		var snapCache *runner.SnapshotCache
		if *snapshots {
			// The snapshot cache shares fork-bearing cells' warmup
			// prefixes; with -store, captures persist beside results so
			// shard processes (and later sweeps) fork from disk.
			snapCache = runner.NewSnapshotCache(snapBackend)
		}
		runScenarioSweep(ctx, pool, snapCache, paths, *format, *outDir, *metricsDir, *decisions, *quiet, shard, start)
		finish()
		return
	}
	progressDone := make(chan struct{})
	progressExited := make(chan struct{})
	var completedExps sync.Map // name -> struct{}
	if !*quiet {
		go func() {
			defer close(progressExited)
			progressLoop(pool, names, &completedExps, start, progressDone)
		}()
	}

	type outcome struct {
		table *experiments.Table
		err   error
		took  time.Duration
	}
	outcomes := make([]outcome, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			expStart := time.Now()
			table, err := experiments.RunByName(name, sc)
			outcomes[i] = outcome{table: table, err: err, took: time.Since(expStart)}
			completedExps.Store(name, struct{}{})
		}()
	}
	wg.Wait()
	if !*quiet {
		close(progressDone)
		// Wait for the loop to exit before clearing, so a pending ticker
		// fire cannot repaint over the final error/summary lines. The
		// ANSI erase-line wipes the whole row regardless of its length.
		<-progressExited
		fmt.Fprint(os.Stderr, "\r\x1b[K")
	}

	failures := 0
	for i, name := range names {
		o := outcomes[i]
		if o.err != nil {
			// Only errors that actually are the cancellation get the
			// short form; a genuine pre-Ctrl-C failure keeps its message.
			if errors.Is(o.err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "palsweep: %s: cancelled\n", name)
			} else {
				fmt.Fprintf(os.Stderr, "palsweep: %s: %v\n", name, o.err)
			}
			failures++
			continue
		}
		if err := emit(o.table, *format, *outDir); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if *format == "text" && *outDir == "" {
			fmt.Printf("(%s in %.1fs)\n\n", name, o.took.Seconds())
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "palsweep: %d experiments, %s, %d workers, %.1fs total\n",
			len(names)-failures, cacheSummary(pool), pool.Workers(), time.Since(start).Seconds())
	}
	finish()
	if failures > 0 {
		os.Exit(1)
	}
}

// storeWarning surfaces persistent-store degradation explicitly at the
// end of a sweep: backend failures the cache degraded around, and
// whether the circuit breaker detached the store entirely (results
// computed after that point were not persisted). Printed even under
// -quiet — silently losing persistence is worse than a noisy line.
func storeWarning(cache *runner.ResultCache) {
	if cache == nil {
		return
	}
	cs := cache.Stats()
	detached := cache.BackendDetached()
	if cs.StoreErrors == 0 && !detached {
		return
	}
	msg := fmt.Sprintf("palsweep: WARNING: persistent store degraded: %d backend errors", cs.StoreErrors)
	if detached {
		msg += "; store detached after repeated failures, later results were not persisted"
	}
	fmt.Fprintln(os.Stderr, msg)
}

// cacheSummary renders the sweep's cache effectiveness: simulations
// actually executed versus results served from each cache tier, and how
// many were persisted to the store. A warm-started sweep over an
// unchanged grid reads "0 simulated" — the signal CI's store smoke test
// checks for. Snapshot forks — cells resumed from a shared warmup
// capture instead of simulated from scratch — are broken out
// separately, so "simulated" always counts full from-scratch runs.
func cacheSummary(pool *runner.Pool) string {
	st := pool.Stats()
	s := fmt.Sprintf("%d simulated", st.Executed-st.SnapshotForks)
	if st.SnapshotForks > 0 {
		s += fmt.Sprintf(", %d snapshot forks", st.SnapshotForks)
	}
	cache := pool.Cache()
	if cache == nil {
		return s
	}
	cs := cache.Stats()
	s += fmt.Sprintf(", %d cache hits (%d memory, %d store)", cs.Hits+cs.StoreHits, cs.Hits, cs.StoreHits)
	if cs.Stored > 0 {
		s += fmt.Sprintf(", %d stored", cs.Stored)
	}
	if cs.StoreErrors > 0 {
		s += fmt.Sprintf(", %d store errors", cs.StoreErrors)
	}
	return s
}

// expandScenarioArgs expands the -scenario flag's comma-separated tokens
// into spec file paths: files, directories (every *.json inside, sorted)
// or globs, with every unmatched token named in the error so a typo'd
// directory cannot silently shrink a sweep.
func expandScenarioArgs(s string) ([]string, error) {
	paths, err := export.ExpandFileArgs(s, ".json")
	if err != nil {
		return nil, fmt.Errorf("-scenario: %w", err)
	}
	return paths, nil
}

// scenarioCell is one expanded grid cell queued for the sweep: the
// built scenario plus the spec file it came from.
type scenarioCell struct {
	built *scenario.Built
	path  string
}

// shardSpec is a parsed -shard value. count 0 means unsharded.
type shardSpec struct{ index, count int }

func (sh shardSpec) enabled() bool { return sh.count > 0 }

// parseShard parses an "i/n" shard selector. Every error states the
// offending value and the expected range.
func parseShard(s string) (shardSpec, error) {
	if s == "" {
		return shardSpec{}, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return shardSpec{}, fmt.Errorf("-shard %q, want the form i/n (e.g. 0/4)", s)
	}
	i, err := strconv.Atoi(is)
	if err != nil {
		return shardSpec{}, fmt.Errorf("-shard %q: index %q, want an integer", s, is)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return shardSpec{}, fmt.Errorf("-shard %q: count %q, want an integer", s, ns)
	}
	if n <= 0 {
		return shardSpec{}, fmt.Errorf("-shard %q: count %d, want >= 1", s, n)
	}
	if i < 0 || i >= n {
		return shardSpec{}, fmt.Errorf("-shard %q: index %d, want 0 <= index < %d", s, i, n)
	}
	return shardSpec{index: i, count: n}, nil
}

// loadScenarioCells loads every spec file, force-enables the recording
// blocks the flags ask for, expands grid specs into their cells, and
// builds each cell. The forced enables happen before expansion, so grid
// cells normalize the enabled blocks — and cache-key — exactly like
// single-cell specs that asked for recording themselves.
func loadScenarioCells(paths []string, forceMetrics, forceDecisions bool) ([]scenarioCell, error) {
	var cells []scenarioCell
	for _, path := range paths {
		spec, err := scenario.LoadFile(path)
		if err != nil {
			return nil, err
		}
		if forceMetrics {
			spec.Metrics.Enabled = true
		}
		if forceDecisions {
			spec.Decisions.Enabled = true
		}
		if forceMetrics || forceDecisions {
			spec.Normalize()
		}
		expanded, err := spec.ExpandGrid()
		if err != nil {
			return nil, err
		}
		for _, cell := range expanded {
			built, err := cell.Build()
			if err != nil {
				return nil, err
			}
			cells = append(cells, scenarioCell{built: built, path: path})
		}
	}
	return cells, nil
}

// filterShard keeps the cells whose content hash lands in this shard.
// Assignment is runner.ShardOf over the cell's cache key — a pure
// function of cell content, never of enumeration order — so the n shard
// processes of one grid agree on the partition without coordination and
// re-running any shard selects the same cells.
func filterShard(cells []scenarioCell, sh shardSpec) []scenarioCell {
	if !sh.enabled() {
		return cells
	}
	kept := make([]scenarioCell, 0, len(cells))
	for _, c := range cells {
		if runner.ShardOf(c.built.Key(), sh.count) == sh.index {
			kept = append(kept, c)
		}
	}
	return kept
}

// scenarioTable assembles the one-row-per-cell summary table in cell
// order and, with metricsDir set, archives each cell's telemetry
// payload (and decision trace, when recorded) there for palreport and
// palexplain. Returns the table and the number of archived payloads.
func scenarioTable(cells []scenarioCell, results []*sim.Result, metricsDir string) (*experiments.Table, int, error) {
	table := &experiments.Table{
		Name:  "scenarios",
		Title: "declarative scenario sweep",
		Header: []string{"scenario", "workload", "jobs", "gpus", "policy", "sched",
			"avg_jct_s", "p50_jct_s", "p99_jct_s", "mean_wait_s", "makespan_h", "util_pct", "rounds", "truncated"},
	}
	seenBase := make(map[string]bool)
	archived := 0
	for i, c := range cells {
		b := c.built
		res := results[i]
		if metricsDir != "" {
			payload := metrics.FromResult(res)
			if payload == nil {
				return nil, 0, fmt.Errorf("scenario %s: no metrics payload on result", b.Spec.Name)
			}
			// Stamp the key on a copy: the payload may be shared through
			// the result cache. Scenario names may repeat across specs, so
			// collide into key-suffixed file names instead of overwriting.
			p := *payload
			p.Key = b.Key()
			base := b.Spec.Name
			if seenBase[base] {
				base = fmt.Sprintf("%s-%s", base, p.Key[:8])
			}
			seenBase[b.Spec.Name] = true
			if _, err := export.WriteMetricsDir(metricsDir, base, &p); err != nil {
				return nil, 0, err
			}
			if tr := decision.FromResult(res); tr != nil {
				// Specs with a decisions block get their trace archived
				// next to the payload, ready for palexplain.
				t := *tr
				t.Key = b.Key()
				if _, err := export.WriteDecisionsFile(metricsDir, base, &t); err != nil {
					return nil, 0, err
				}
			}
			archived++
		}
		jcts := res.JCTs()
		truncated := ""
		if res.Truncated {
			truncated = fmt.Sprintf("yes (%d unfinished)", res.Unfinished)
		}
		table.AddRowf(b.Spec.Name, b.Trace.Name, len(b.Trace.Jobs), b.Topo.Size(),
			b.Spec.Policy.Name, b.Spec.Sched.Name,
			stats.Mean(jcts), stats.Percentile(jcts, 50), stats.Percentile(jcts, 99),
			stats.Mean(res.Waits()), res.Makespan/3600, 100*res.Utilization, res.Rounds, truncated)
		table.Note("%s: key %s (%s)", b.Spec.Name, b.Key()[:16], c.path)
	}
	return table, archived, nil
}

// forkRun builds the Run and Forked hooks for one fork-bearing cell:
// the cell's prefix snapshot is fetched through the shared snapshot
// cache — captured at most once per prefix group, across every cell
// (and, with a store backend, every process) sharing the warmup — and
// the cell resumes from it under its own policies. Forked reports
// whether the result genuinely rode a shared capture, which the pool
// surfaces as the snapshot-fork outcome. Every degraded path falls
// back to the cell simulating its own prefix (RunForked(nil)), so
// snapshot sharing can only ever save work, never fail a cell that
// would have succeeded on its own.
func forkRun(snapCache *runner.SnapshotCache, b *scenario.Built) (run func() (*sim.Result, error), forked func() bool) {
	var rode atomic.Bool
	run = func() (*sim.Result, error) {
		snap, fromCache, err := snapCache.GetOrCapture(b.PrefixKey(), func() (*sim.Snapshot, error) {
			s, _, cerr := b.CaptureSnapshot()
			if cerr != nil {
				return nil, cerr
			}
			if s == nil {
				// The warmup completed before the horizon: cache the
				// sentinel so the whole prefix group learns there is no
				// state to fork from without re-probing.
				return &sim.Snapshot{Completed: true}, nil
			}
			return s, nil
		})
		if err != nil || snap == nil || snap.Completed {
			// Capture failure or early completion: the cell runs on its
			// own (a deterministic capture error resurfaces per cell).
			return b.RunForked(nil)
		}
		res, rerr := b.ResumeFrom(snap)
		if rerr != nil && fromCache {
			// A shared (possibly store-loaded) snapshot that fails to
			// resume must not fail the cell — simulate its own prefix.
			return b.RunForked(nil)
		}
		if rerr == nil {
			rode.Store(fromCache)
		}
		return res, rerr
	}
	return run, rode.Load
}

// runScenarioSweep fans declarative scenario specs — grid specs
// expanded into their cells first — out over the worker pool, each
// keyed by its canonical content hash so duplicate or previously-run
// configurations hit the result cache, and renders one summary table
// with a row per cell. With metricsDir set, every spec's telemetry
// block is force-enabled and the collected payloads are archived there
// for palreport. With a shard selector, only this shard's slice of the
// expanded cells runs. snapCache, when non-nil, routes fork-bearing
// cells through the shared snapshot cache (-snapshots).
func runScenarioSweep(ctx context.Context, pool *runner.Pool, snapCache *runner.SnapshotCache, paths []string, format, outDir, metricsDir string, decisions, quiet bool, shard shardSpec, start time.Time) {
	cells, err := loadScenarioCells(paths, metricsDir != "", decisions)
	if err != nil {
		fatal(err)
	}
	if len(cells) == 0 {
		fatal(fmt.Errorf("no scenario specs given"))
	}
	total := len(cells)
	cells = filterShard(cells, shard)
	sweep := runner.NewSweep(pool)
	engineCtrs := make([]*sim.Counters, len(cells))
	for i, c := range cells {
		run := c.built // capture per iteration for the task closure
		// Each cell gets its own engine-counter instance (a Built drives
		// one task here, so the no-concurrent-runs contract holds); the
		// runner hands them to the journal probe for executed cells, and
		// the sweep summary below merges them.
		ctrs := &sim.Counters{}
		run.Counters = ctrs
		engineCtrs[i] = ctrs
		t := runner.Task{
			Key:      run.Key(),
			Label:    fmt.Sprintf("scenario %s (%s)", run.Spec.Name, c.path),
			Run:      func() (*sim.Result, error) { return run.Run() },
			Counters: func() *sim.Counters { return ctrs },
		}
		if snapCache != nil && run.Forked() {
			t.Run, t.Forked = forkRun(snapCache, run)
		}
		sweep.AddTask(t)
	}
	results, err := sweep.Run(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "palsweep: cancelled")
			os.Exit(1)
		}
		fatal(err)
	}
	table, archived, err := scenarioTable(cells, results, metricsDir)
	if err != nil {
		fatal(err)
	}
	if err := emit(table, format, outDir); err != nil {
		fatal(err)
	}
	if !quiet {
		if shard.enabled() {
			fmt.Fprintf(os.Stderr, "palsweep: shard %d/%d covers %d of %d cells\n",
				shard.index, shard.count, len(cells), total)
		}
		fmt.Fprintf(os.Stderr, "palsweep: %d scenarios, %s, %d workers, %.1fs total\n",
			len(cells), cacheSummary(pool), pool.Workers(), time.Since(start).Seconds())
		// Engine summary: cells served from a cache tier contribute zeros
		// (no engine stepped here), so the line describes this process's
		// actual simulation work.
		engineTotal := &sim.Counters{}
		for _, c := range engineCtrs {
			engineTotal.Add(c)
		}
		if engineTotal.TotalRounds() > 0 {
			fmt.Fprintf(os.Stderr, "palsweep: %s\n", engineTotal.Summary())
		}
		if archived > 0 {
			fmt.Fprintf(os.Stderr, "palsweep: archived %d metric payloads to %s (aggregate with palreport -in %s)\n",
				archived, metricsDir, metricsDir)
		}
	}
}

// resolveExperiments expands the -experiments flag into registry names,
// preserving order and dropping duplicates.
func resolveExperiments(s string) ([]string, error) {
	if s == "all" {
		return experiments.Names(), nil
	}
	seen := make(map[string]bool)
	var names []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		expanded := []string{tok}
		if g, ok := groups[tok]; ok {
			expanded = g
		}
		for _, name := range expanded {
			if experiments.Describe(name) == "" {
				return nil, fmt.Errorf("unknown experiment %q (try -list)", name)
			}
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	return names, nil
}

// progressLoop repaints a one-line progress/ETA summary until done.
func progressLoop(pool *runner.Pool, names []string, completed *sync.Map, start time.Time, done chan struct{}) {
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
		finished := 0
		completed.Range(func(_, _ interface{}) bool { finished++; return true })
		st := pool.Stats()
		elapsed := time.Since(start)
		eta := "?"
		if finished > 0 && finished < len(names) {
			remaining := time.Duration(float64(elapsed) / float64(finished) * float64(len(names)-finished))
			eta = remaining.Truncate(time.Second).String()
		}
		// Trailing erase-line clears residue when the line shrinks.
		fmt.Fprintf(os.Stderr, "\rpalsweep: %d/%d experiments | %d sims done, %d pending, %d cached | elapsed %s eta %s\x1b[K",
			finished, len(names), st.Completed, st.Submitted-st.Completed, st.CacheHits,
			elapsed.Truncate(time.Second), eta)
	}
}

// emit writes one table to stdout or to <outDir>/<name>.<ext>.
func emit(t *experiments.Table, format, outDir string) error {
	render := func(w *os.File) error {
		switch format {
		case "text":
			_, err := fmt.Fprint(w, t.String())
			return err
		case "csv":
			return export.TableCSV(w, t)
		case "md":
			return export.TableMarkdown(w, t)
		case "json":
			return export.TableJSON(w, t)
		default:
			return fmt.Errorf("unknown format %q", format)
		}
	}
	if outDir == "" {
		return render(os.Stdout)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ext := map[string]string{"text": "txt", "csv": "csv", "md": "md", "json": "json"}[format]
	if ext == "" {
		return fmt.Errorf("unknown format %q", format)
	}
	f, err := os.Create(filepath.Join(outDir, t.Name+"."+ext))
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "palsweep: %v\n", err)
	os.Exit(2)
}
