package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/sim"
)

// forkBenchSpec is the snapshot-fork bench grid: 4 placement policies x
// 2 schedulers = 8 cells that all share one pinned warmup prefix (the
// fork block), with the fork horizon deep enough that the shared prefix
// dominates each cell's runtime (this workload runs ~2630 rounds under
// the warmup policies, so a horizon of 2200 shares ~84% of the
// timeline).
const forkBenchSpec = `{
  "name": "fork-bench",
  "cluster": {"nodes": 4, "gpus_per_node": 4},
  "workload": {"source": "synthetic", "num_jobs": 192, "jobs_per_hour": 30},
  "fork": {"rounds": 2200, "policy": "packed-sticky", "sched": "fifo"},
  "grid": {
    "policies": ["pal", "pm-first", "packed-sticky", "random-sticky"],
    "scheds": ["fifo", "srtf"]
  }
}`

// BenchmarkSnapshotFork times the bench grid swept per-cell (what
// -snapshots=false runs: every cell simulates its own warmup prefix)
// against the forked path (one capture, 7 forks), on a serial pool so
// the ratio is pure simulation work saved rather than a parallelism
// artifact. CI archives the ReportMetric values as BENCH_snapshot.json;
// the fork-speedup number is the headline the snapshot subsystem must
// keep above 1.5x. Best-of-3 per side to keep scheduler hiccups out of
// a 1x run.
func BenchmarkSnapshotFork(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(path, []byte(forkBenchSpec), 0o644); err != nil {
		b.Fatal(err)
	}
	sweepOnce := func(forked bool) time.Duration {
		// Cells are reloaded per pass: Built values carry per-run engine
		// state and must not be shared between sweeps.
		cells, err := loadScenarioCells([]string{path}, false, false)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 8 {
			b.Fatalf("expanded %d cells, want 8", len(cells))
		}
		pool := runner.NewPool(1, runner.NewResultCache(0))
		snapCache := runner.NewSnapshotCache(nil)
		sweep := runner.NewSweep(pool)
		t0 := time.Now()
		for _, c := range cells {
			run := c.built
			tk := runner.Task{Key: run.Key(), Label: run.Spec.Name,
				Run: func() (*sim.Result, error) { return run.Run() }}
			if forked && run.Forked() {
				tk.Run, tk.Forked = forkRun(snapCache, run)
			}
			sweep.AddTask(tk)
		}
		if _, err := sweep.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		d := time.Since(t0)
		if forked {
			if st := pool.Stats(); st.SnapshotForks != int64(len(cells)-1) {
				b.Fatalf("SnapshotForks = %d, want %d (prefix not shared — bench is mismeasuring)",
					st.SnapshotForks, len(cells)-1)
			}
		}
		return d
	}
	bestOf := func(k int, f func() time.Duration) time.Duration {
		best := f()
		for i := 1; i < k; i++ {
			if d := f(); d < best {
				best = d
			}
		}
		return best
	}
	for i := 0; i < b.N; i++ {
		perCell := bestOf(3, func() time.Duration { return sweepOnce(false) })
		forked := bestOf(3, func() time.Duration { return sweepOnce(true) })
		b.ReportMetric(perCell.Seconds()*1000, "percell-ms")
		b.ReportMetric(forked.Seconds()*1000, "forked-ms")
		b.ReportMetric(perCell.Seconds()/forked.Seconds(), "fork-speedup")
	}
}
