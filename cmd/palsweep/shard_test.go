package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/export"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/store"
)

// shardGridSpec is the test grid: 2 policies x 2 seeds x 2 arrival
// rates = 8 cells over a tiny synthetic workload, so the whole suite
// simulates in well under a second per pass.
const shardGridSpec = `{
  "name": "shard-test",
  "cluster": {"nodes": 2, "gpus_per_node": 4},
  "workload": {"source": "synthetic", "num_jobs": 16, "median_work_sec": 1800},
  "grid": {
    "policies": ["pal", "packed-sticky"],
    "seeds": [1, 2],
    "jobs_per_hour": [30, 60]
  }
}`

// writeShardGrid writes the test grid spec into a temp dir and returns
// its path.
func writeShardGrid(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(path, []byte(shardGridSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCells executes the given cells through a fresh pool and cache,
// optionally backed by a store handle, and returns the results in cell
// order plus the pool's counters.
func runCells(t *testing.T, cells []scenarioCell, st *store.Store) ([]*sim.Result, runner.Stats) {
	t.Helper()
	cache := runner.NewResultCache(0)
	if st != nil {
		cache.SetBackend(st)
	}
	pool := runner.NewPool(4, cache)
	sweep := runner.NewSweep(pool)
	for _, c := range cells {
		run := c.built
		sweep.Add(run.Key(), run.Spec.Name, func() (*sim.Result, error) { return run.Run() })
	}
	results, err := sweep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return results, pool.Stats()
}

// encodeResult canonicalizes a result to the archive codec's bytes —
// the repo's byte-identity currency for whole results, metrics payload
// included. PlaceTimes is the one sanctioned exception: it records the
// wall-clock duration of each placement call, genuinely nondeterministic
// across independent processes, so it is neutralized before encoding.
func encodeResult(t *testing.T, res *sim.Result) []byte {
	t.Helper()
	cp := *res
	cp.PlaceTimes = nil
	var buf bytes.Buffer
	if err := export.EncodeResult(&buf, &cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedSweepByteIdentical is the cross-process equivalence suite
// for sharded sweeps, built like the engine's stepping-equivalence
// tests: the union of shards 0/3, 1/3 and 2/3 — each run with its own
// pool, cache and store handle, meeting only in the shared store
// directory — must deep-equal (byte-identically, under the archive
// codec) an unsharded reference sweep; a follow-up unsharded pass over
// the shared store must simulate nothing and render a byte-identical
// table; and a repeat of any single shard must also report 0 simulated.
func TestShardedSweepByteIdentical(t *testing.T) {
	dir := t.TempDir()
	specPath := writeShardGrid(t, dir)

	cells, err := loadScenarioCells([]string{specPath}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("grid expanded to %d cells, want 8", len(cells))
	}

	// Unsharded reference: no store, everything simulated in-process.
	refResults, refStats := runCells(t, cells, nil)
	if refStats.Executed != int64(len(cells)) {
		t.Fatalf("reference run executed %d of %d cells", refStats.Executed, len(cells))
	}
	refTable, _, err := scenarioTable(cells, refResults, "")
	if err != nil {
		t.Fatal(err)
	}
	refByKey := make(map[string][]byte, len(cells))
	for i, c := range cells {
		refByKey[c.built.Key()] = encodeResult(t, refResults[i])
	}

	// Three shard "processes": independent pools, caches and store
	// handles over one shared directory.
	const n = 3
	storeDir := filepath.Join(dir, "store")
	unionByKey := make(map[string][]byte, len(cells))
	covered := 0
	for i := 0; i < n; i++ {
		kept := filterShard(cells, shardSpec{index: i, count: n})
		st, err := store.Open(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		results, stats := runCells(t, kept, st)
		if stats.Executed != int64(len(kept)) {
			t.Errorf("shard %d/%d executed %d of its %d cells", i, n, stats.Executed, len(kept))
		}
		for j, c := range kept {
			key := c.built.Key()
			if _, dup := unionByKey[key]; dup {
				t.Fatalf("cell %s assigned to more than one shard", c.built.Spec.Name)
			}
			unionByKey[key] = encodeResult(t, results[j])
		}
		covered += len(kept)
	}
	if covered != len(cells) {
		t.Fatalf("shards covered %d of %d cells (partition must be exhaustive)", covered, len(cells))
	}

	// Union of shards deep-equals the unsharded sweep, cell by cell.
	for _, c := range cells {
		key := c.built.Key()
		if !bytes.Equal(unionByKey[key], refByKey[key]) {
			t.Errorf("cell %s: sharded result differs from unsharded reference", c.built.Spec.Name)
		}
	}

	// An unsharded pass over the shared store simulates nothing and
	// renders a byte-identical table — the shards really met in the
	// store.
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	mergedResults, mergedStats := runCells(t, cells, st)
	if mergedStats.Executed != 0 {
		t.Errorf("merged pass over the shared store executed %d simulations, want 0", mergedStats.Executed)
	}
	mergedTable, _, err := scenarioTable(cells, mergedResults, "")
	if err != nil {
		t.Fatal(err)
	}
	if refTable.String() != mergedTable.String() {
		t.Errorf("merged table differs from unsharded reference:\n--- unsharded\n%s\n--- merged\n%s",
			refTable.String(), mergedTable.String())
	}

	// A repeat of one shard over an unchanged grid also reports
	// 0 simulated — the warm-start acceptance criterion, per shard.
	st2, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	_, repeatStats := runCells(t, filterShard(cells, shardSpec{index: 0, count: n}), st2)
	if repeatStats.Executed != 0 {
		t.Errorf("repeat shard 0/%d executed %d simulations, want 0", n, repeatStats.Executed)
	}

	// The store the shards met in verifies clean.
	if problems := storeVerify(t, storeDir); len(problems) > 0 {
		t.Errorf("shared store failed verification: %v", problems)
	}
}

// storeVerify re-hashes and decodes every object in the store, mirroring
// `palstore verify`.
func storeVerify(t *testing.T, dir string) []store.Problem {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	return problems
}

// TestShardFilterDeterministic: the shard partition depends only on
// cell keys — reversing enumeration order must select the same cells.
func TestShardFilterDeterministic(t *testing.T) {
	dir := t.TempDir()
	specPath := writeShardGrid(t, dir)
	cells, err := loadScenarioCells([]string{specPath}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	reversed := make([]scenarioCell, len(cells))
	for i, c := range cells {
		reversed[len(cells)-1-i] = c
	}
	for i := 0; i < 3; i++ {
		sh := shardSpec{index: i, count: 3}
		forward := map[string]bool{}
		for _, c := range filterShard(cells, sh) {
			forward[c.built.Key()] = true
		}
		backward := map[string]bool{}
		for _, c := range filterShard(reversed, sh) {
			backward[c.built.Key()] = true
		}
		if len(forward) != len(backward) {
			t.Fatalf("shard %d selects %d cells forward, %d reversed", i, len(forward), len(backward))
		}
		for k := range forward {
			if !backward[k] {
				t.Errorf("shard %d: key %s selected forward but not reversed", i, k[:16])
			}
		}
	}
}

// TestParseShard: every malformed selector is rejected with a message
// stating the value and the expected range, per the house style.
func TestParseShard(t *testing.T) {
	good := []struct {
		in   string
		want shardSpec
	}{
		{"", shardSpec{}},
		{"0/1", shardSpec{index: 0, count: 1}},
		{"0/4", shardSpec{index: 0, count: 4}},
		{"3/4", shardSpec{index: 3, count: 4}},
	}
	for _, g := range good {
		got, err := parseShard(g.in)
		if err != nil {
			t.Errorf("parseShard(%q): %v", g.in, err)
		}
		if got != g.want {
			t.Errorf("parseShard(%q) = %+v, want %+v", g.in, got, g.want)
		}
	}
	bad := []struct {
		in   string
		want []string // substrings the error must contain
	}{
		{"4", []string{`"4"`, "i/n"}},
		{"a/b", []string{`"a"`, "integer"}},
		{"1/b", []string{`"b"`, "integer"}},
		{"0/0", []string{"count 0", "want >= 1"}},
		{"0/-2", []string{"count -2", "want >= 1"}},
		{"-1/4", []string{"index -1", "0 <= index < 4"}},
		{"4/4", []string{"index 4", "0 <= index < 4"}},
		{"1/2/3", []string{"integer"}},
	}
	for _, b := range bad {
		_, err := parseShard(b.in)
		if err == nil {
			t.Errorf("parseShard(%q) accepted an invalid selector", b.in)
			continue
		}
		for _, want := range b.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("parseShard(%q) error %q does not state %q", b.in, err, want)
			}
		}
	}
}
