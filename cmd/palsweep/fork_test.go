package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/store"
)

// forkGridSpec is a policy grid whose cells share one warmup prefix: a
// fork block pinning the warmup policies plus a 4-policy axis, so one
// snapshot serves four cells.
const forkGridSpec = `{
  "name": "fork-grid",
  "cluster": {"nodes": 4, "gpus_per_node": 4},
  "workload": {"source": "synthetic", "num_jobs": 48, "jobs_per_hour": 40},
  "metrics": {"enabled": true},
  "fork": {"rounds": 10, "policy": "packed-sticky", "sched": "fifo"},
  "grid": {
    "policies": ["pal", "pm-first", "packed-sticky", "random-sticky"]
  }
}`

// writeForkGrid writes the fork grid spec into dir and returns its path.
func writeForkGrid(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "fork.json")
	if err := os.WriteFile(path, []byte(forkGridSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCellsForked mirrors runCells with the -snapshots wiring: fork-
// bearing cells route through a snapshot cache exactly as
// runScenarioSweep submits them. snapBackend may be nil (memory-only).
func runCellsForked(t *testing.T, cells []scenarioCell, snapBackend runner.SnapshotBackend) ([]*sim.Result, runner.Stats, runner.SnapshotCacheStats) {
	t.Helper()
	pool := runner.NewPool(4, runner.NewResultCache(0))
	snapCache := runner.NewSnapshotCache(snapBackend)
	sweep := runner.NewSweep(pool)
	for _, c := range cells {
		run := c.built
		tk := runner.Task{Key: run.Key(), Label: run.Spec.Name,
			Run: func() (*sim.Result, error) { return run.Run() }}
		if run.Forked() {
			tk.Run, tk.Forked = forkRun(snapCache, run)
		}
		sweep.AddTask(tk)
	}
	results, err := sweep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return results, pool.Stats(), snapCache.Stats()
}

// TestForkedSweepByteIdentical is the sweep-level acceptance suite for
// snapshot forking: a grid swept through the shared snapshot cache must
// produce byte-identical results to every cell simulating its own
// prefix (-snapshots=false), with exactly one cell doing the capture
// and the rest counted as snapshot forks.
func TestForkedSweepByteIdentical(t *testing.T) {
	dir := t.TempDir()
	specPath := writeForkGrid(t, dir)
	cells, err := loadScenarioCells([]string{specPath}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}

	// Reference: the per-cell path (what -snapshots=false runs).
	refResults, refStats := runCells(t, cells, nil)
	if refStats.SnapshotForks != 0 {
		t.Fatalf("per-cell path reported %d snapshot forks, want 0", refStats.SnapshotForks)
	}
	ref := make([][]byte, len(cells))
	for i, r := range refResults {
		ref[i] = encodeResult(t, r)
	}

	// Shared-snapshot path, memory-only cache: must reload the cells so
	// the reference pass's engines don't alias.
	cells2, err := loadScenarioCells([]string{specPath}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, snapStats := runCellsForked(t, cells2, nil)
	for i, r := range results {
		if !bytes.Equal(encodeResult(t, r), ref[i]) {
			t.Errorf("cell %d (%s): forked result diverged from the per-cell run",
				i, cells[i].built.Spec.Name)
		}
	}
	if stats.Executed != int64(len(cells)) {
		t.Errorf("Executed = %d, want %d (every cell's Run closure ran)", stats.Executed, len(cells))
	}
	if want := int64(len(cells) - 1); stats.SnapshotForks != want {
		t.Errorf("SnapshotForks = %d, want %d (one capture, rest forked)", stats.SnapshotForks, want)
	}
	if snapStats.Captured != 1 || snapStats.Hits != int64(len(cells)-1) {
		t.Errorf("snapshot cache stats = %+v, want Captured 1, Hits %d", snapStats, len(cells)-1)
	}
}

// TestForkedSweepStoreWarmStart: with a store backend, the captured
// snapshot persists; a second sweep in a fresh process state forks
// every cell straight from disk without simulating any prefix.
func TestForkedSweepStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	specPath := writeForkGrid(t, dir)
	st, err := store.Open(filepath.Join(dir, ".palstore"))
	if err != nil {
		t.Fatal(err)
	}

	cells, err := loadScenarioCells([]string{specPath}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	results, _, snapStats := runCellsForked(t, cells, st)
	if snapStats.Captured != 1 || snapStats.Stored != 1 {
		t.Fatalf("first sweep snapshot stats = %+v, want Captured 1, Stored 1", snapStats)
	}
	ref := make([][]byte, len(cells))
	for i, r := range results {
		ref[i] = encodeResult(t, r)
	}
	keys, err := st.SnapshotKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("store holds %d snapshots, want 1", len(keys))
	}

	// Second sweep: fresh cells, fresh caches, same store. No result
	// cache backend here, so every cell re-runs — but the snapshot comes
	// from disk: zero captures, every cell a fork.
	cells2, err := loadScenarioCells([]string{specPath}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	results2, stats2, snapStats2 := runCellsForked(t, cells2, st)
	if snapStats2.Captured != 0 || snapStats2.StoreHits != 1 {
		t.Errorf("warm sweep snapshot stats = %+v, want Captured 0, StoreHits 1", snapStats2)
	}
	if stats2.SnapshotForks != int64(len(cells2)) {
		t.Errorf("warm sweep SnapshotForks = %d, want %d (every cell forked from disk)",
			stats2.SnapshotForks, len(cells2))
	}
	for i, r := range results2 {
		if !bytes.Equal(encodeResult(t, r), ref[i]) {
			t.Errorf("cell %d: store-forked result diverged", i)
		}
	}
}
