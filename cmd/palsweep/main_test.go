package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestExpandScenarioArgs(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.json", "a.json", "pal-1.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sub := filepath.Join(dir, "empty")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}

	// Directory: every *.json, sorted; non-JSON files excluded.
	got, err := expandScenarioArgs(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(dir, "a.json"),
		filepath.Join(dir, "b.json"),
		filepath.Join(dir, "pal-1.json"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("directory expansion: got %v, want %v", got, want)
	}

	// Glob plus literal file, comma-separated, order preserved.
	got, err = expandScenarioArgs(filepath.Join(dir, "pal-*.json") + ", " + filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	want = []string{filepath.Join(dir, "pal-1.json"), filepath.Join(dir, "a.json")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("glob+file expansion: got %v, want %v", got, want)
	}

	// Every miss is named in the error: a typo'd file, a matchless glob
	// and a JSON-less directory all show up.
	_, err = expandScenarioArgs(strings.Join([]string{
		filepath.Join(dir, "missing.json"),
		filepath.Join(dir, "zzz-*.json"),
		sub,
	}, ","))
	if err == nil {
		t.Fatal("expected an error for unmatched arguments")
	}
	for _, frag := range []string{"missing.json", "zzz-*.json", "empty"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name the unmatched argument %q", err, frag)
		}
	}
}
