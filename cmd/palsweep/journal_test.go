package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/store"
)

// runCellsJournaled mirrors runCells with the full -journal wiring:
// store wrapped by the latency probe, pool observed by a journal
// writer, a fresh engine-counter instance attached per cell, and the
// summary record written on completion — the exact plumbing main()
// sets up.
func runCellsJournaled(tb testing.TB, cells []scenarioCell, st *store.Store, journalDir, shard string) ([]*sim.Result, runner.Stats) {
	tb.Helper()
	cache := runner.NewResultCache(0)
	var probe *journal.BackendProbe
	if st != nil {
		var backend runner.Backend = st
		if journalDir != "" {
			probe = journal.ProbeBackend(st)
			backend = probe
		}
		cache.SetBackend(backend)
	}
	pool := runner.NewPool(4, cache)
	var jw *journal.Writer
	if journalDir != "" {
		var err error
		jw, err = journal.Create(journalDir, journal.Header{Role: "palsweep", Shard: shard, Workers: pool.Workers()})
		if err != nil {
			tb.Fatal(err)
		}
		pool.SetProbe(jw)
	}
	sweep := runner.NewSweep(pool)
	for _, c := range cells {
		run := c.built
		ctrs := &sim.Counters{}
		run.Counters = ctrs
		sweep.AddTask(runner.Task{
			Key:      run.Key(),
			Label:    run.Spec.Name,
			Run:      func() (*sim.Result, error) { return run.Run() },
			Counters: func() *sim.Counters { return ctrs },
		})
	}
	results, err := sweep.Run(context.Background())
	if err != nil {
		tb.Fatal(err)
	}
	if jw != nil {
		cs := cache.Stats()
		sum := journal.Summary{Runner: pool.Stats(), Cache: &cs, StoreDetached: cache.BackendDetached()}
		if probe != nil {
			sum.StoreGet, sum.StorePut = probe.Stats()
		}
		if err := jw.Close(sum); err != nil {
			tb.Fatal(err)
		}
	}
	return results, pool.Stats()
}

// TestProbeDoesNotPerturbSweep is the journal's byte-identity suite:
// attaching the probe, the store latency wrapper and the journal writer
// must not change a single result byte or table character, unsharded or
// sharded — journals are pure wall-clock observation, outside results
// and cache keys. It also pins the acceptance identity: the task events
// across all journals reconcile exactly with the pools' counters.
func TestProbeDoesNotPerturbSweep(t *testing.T) {
	dir := t.TempDir()
	specPath := writeShardGrid(t, dir)
	cells, err := loadScenarioCells([]string{specPath}, false, false)
	if err != nil {
		t.Fatal(err)
	}

	// Unjournaled, storeless reference.
	refResults, _ := runCells(t, cells, nil)
	refTable, _, err := scenarioTable(cells, refResults, "")
	if err != nil {
		t.Fatal(err)
	}
	refByKey := make(map[string][]byte, len(cells))
	for i, c := range cells {
		refByKey[c.built.Key()] = encodeResult(t, refResults[i])
	}

	// Journaled unsharded sweep through a store: byte-identical results
	// and table.
	st, err := store.Open(filepath.Join(dir, "store-unsharded"))
	if err != nil {
		t.Fatal(err)
	}
	journalDir := filepath.Join(dir, "journal")
	jResults, jStats := runCellsJournaled(t, cells, st, journalDir, "")
	roundsFor := map[string]int64{}
	for _, r := range jResults {
		roundsFor[""] += int64(r.Rounds)
	}
	for i, c := range cells {
		if !bytes.Equal(encodeResult(t, jResults[i]), refByKey[c.built.Key()]) {
			t.Errorf("cell %s: journaled result differs from unjournaled reference", c.built.Spec.Name)
		}
	}
	jTable, _, err := scenarioTable(cells, jResults, "")
	if err != nil {
		t.Fatal(err)
	}
	if refTable.String() != jTable.String() {
		t.Errorf("journaled table differs from unjournaled reference:\n--- plain\n%s\n--- journaled\n%s",
			refTable.String(), jTable.String())
	}

	// Journaled sharded sweep into a fresh shared store: the union stays
	// byte-identical too, and each shard leaves its own journal.
	const n = 2
	shardStore := filepath.Join(dir, "store-sharded")
	shardStats := make([]runner.Stats, n)
	for i := 0; i < n; i++ {
		kept := filterShard(cells, shardSpec{index: i, count: n})
		sst, err := store.Open(shardStore)
		if err != nil {
			t.Fatal(err)
		}
		results, stats := runCellsJournaled(t, kept, sst, journalDir, shardName(i, n))
		shardStats[i] = stats
		for _, r := range results {
			roundsFor[shardName(i, n)] += int64(r.Rounds)
		}
		for j, c := range kept {
			if !bytes.Equal(encodeResult(t, results[j]), refByKey[c.built.Key()]) {
				t.Errorf("shard %d/%d cell %s: journaled result differs from reference", i, n, c.built.Spec.Name)
			}
		}
	}

	// The acceptance identity: per-process task events reconcile exactly
	// with the pools' runner.Stats — executed+error events equal
	// Stats.Executed, memory+store hits equal Stats.CacheHits, and every
	// process carries a summary whose counters agree.
	procs, err := journal.LoadDir(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1+n {
		t.Fatalf("loaded %d journals, want %d", len(procs), 1+n)
	}
	statsFor := map[string]runner.Stats{"": jStats}
	for i := 0; i < n; i++ {
		statsFor[shardName(i, n)] = shardStats[i]
	}
	for _, p := range procs {
		want, ok := statsFor[p.Header.Shard]
		if !ok {
			t.Fatalf("journal %s: unexpected shard %q", p.Path, p.Header.Shard)
		}
		c := p.Counts()
		if c.Executed+c.Errors != want.Executed || c.MemoryHits+c.StoreHits != want.CacheHits ||
			c.Tasks != want.Completed {
			t.Errorf("%s: task events (%+v) do not reconcile with pool stats (%+v)", p.Name(), c, want)
		}
		if p.Summary == nil {
			t.Fatalf("%s: no summary record", p.Name())
		}
		if p.Summary.Runner != want {
			t.Errorf("%s: summary runner stats %+v, want %+v", p.Name(), p.Summary.Runner, want)
		}
		if p.Summary.StoreGet == nil || p.Summary.StoreGet.Count != want.Completed {
			t.Errorf("%s: store probe saw %+v gets, want one per task (%d)",
				p.Name(), p.Summary.StoreGet, want.Completed)
		}
		if p.Summary.StoreDetached {
			t.Errorf("%s: store reported detached on a healthy backend", p.Name())
		}

		// Engine-counter reconciliation (the stepping-engagement table's
		// raw material): every task here executed, so the journal must
		// carry counters; the summary total must equal the sum of the
		// task-event counters; and the process's total stepped rounds
		// must equal the sum of its results' Rounds exactly — fresh runs,
		// no snapshot resumes.
		ec, ok := p.EngineCounters()
		if !ok || ec == nil {
			t.Fatalf("%s: journal carries no engine counters", p.Name())
		}
		if p.Summary.Engine == nil {
			t.Fatalf("%s: summary.Engine not filled by the writer", p.Name())
		}
		var evSum sim.Counters
		for i := range p.Tasks {
			evSum.Add(p.Tasks[i].Counters)
		}
		if evSum != *p.Summary.Engine {
			t.Errorf("%s: summary engine counters %+v diverge from task-event sum %+v",
				p.Name(), *p.Summary.Engine, evSum)
		}
		if got, want := ec.TotalRounds(), roundsFor[p.Header.Shard]; got != want {
			t.Errorf("%s: engine counters report %d rounds, results report %d",
				p.Name(), got, want)
		}
	}

	// Cross-shard reconciliation: the two shard journals' counters sum to
	// exactly the unsharded journal's — the same cells stepped the same
	// rounds whichever process carried them (determinism), which is the
	// identity the palreport TOTAL row relies on.
	var shardTotal, unsharded sim.Counters
	for _, p := range procs {
		ec, _ := p.EngineCounters()
		if p.Header.Shard == "" {
			unsharded = *ec
		} else {
			shardTotal.Add(ec)
		}
	}
	if shardTotal != unsharded {
		t.Errorf("sharded counters %+v do not sum to the unsharded sweep's %+v", shardTotal, unsharded)
	}
}

func shardName(i, n int) string { return fmt.Sprintf("%d/%d", i, n) }

// benchGridSpec is the overhead-bench grid: the same 8-cell shape as
// the test grid but with a 128-job workload per cell, so one sweep runs
// tens of milliseconds and the journal's per-task cost (a JSON marshal
// and one append) is measured against real work, not directory-creation
// jitter.
const benchGridSpec = `{
  "name": "journal-bench",
  "cluster": {"nodes": 2, "gpus_per_node": 4},
  "workload": {"source": "synthetic", "num_jobs": 128, "median_work_sec": 1800},
  "grid": {
    "policies": ["pal", "packed-sticky"],
    "seeds": [1, 2],
    "jobs_per_hour": [30, 60]
  }
}`

// BenchmarkJournalOverhead times the bench grid swept cold (fresh
// store) and warm (fully populated store) with and without the journal
// attached, and reports the overhead percentages — the number the
// orchestration-observability invariant pins near zero (CI archives
// these as BENCH_journal.json). Best-of-5 per corner to keep scheduler
// hiccups from dominating a 1x run.
func BenchmarkJournalOverhead(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(path, []byte(benchGridSpec), 0o644); err != nil {
		b.Fatal(err)
	}
	cells, err := loadScenarioCells([]string{path}, false, false)
	if err != nil {
		b.Fatal(err)
	}
	sweepOnce := func(storeDir, journalDir string) time.Duration {
		st, err := store.Open(storeDir)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		runCellsJournaled(b, cells, st, journalDir, "")
		return time.Since(t0)
	}
	bestOf := func(k int, f func(i int) time.Duration) time.Duration {
		best := f(0)
		for i := 1; i < k; i++ {
			if d := f(i); d < best {
				best = d
			}
		}
		return best
	}
	for i := 0; i < b.N; i++ {
		coldOff := bestOf(5, func(j int) time.Duration {
			return sweepOnce(filepath.Join(dir, fmt.Sprintf("cold-off-%d-%d", i, j)), "")
		})
		coldOn := bestOf(5, func(j int) time.Duration {
			return sweepOnce(filepath.Join(dir, fmt.Sprintf("cold-on-%d-%d", i, j)), filepath.Join(dir, "journal"))
		})
		warmStore := filepath.Join(dir, fmt.Sprintf("warm-store-%d", i))
		sweepOnce(warmStore, "") // populate once
		warmOff := bestOf(5, func(int) time.Duration { return sweepOnce(warmStore, "") })
		warmOn := bestOf(5, func(int) time.Duration { return sweepOnce(warmStore, filepath.Join(dir, "journal")) })
		b.ReportMetric(coldOn.Seconds()*1000, "cold-on-ms")
		b.ReportMetric(coldOff.Seconds()*1000, "cold-off-ms")
		b.ReportMetric(100*(coldOn.Seconds()-coldOff.Seconds())/coldOff.Seconds(), "cold-overhead-pct")
		b.ReportMetric(warmOn.Seconds()*1000, "warm-on-ms")
		b.ReportMetric(warmOff.Seconds()*1000, "warm-off-ms")
		b.ReportMetric(100*(warmOn.Seconds()-warmOff.Seconds())/warmOff.Seconds(), "warm-overhead-pct")
	}
}
