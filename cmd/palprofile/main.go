// Command palprofile generates and inspects GPU variability profiles:
// per-class spread statistics (Figs. 6-8), the K-Means PM-score binning
// with silhouette K selection (§III-B, Fig. 5), and the resulting L×V
// matrices (§III-C1).
//
// Examples:
//
//	palprofile -cluster longhorn -gpus 128
//	palprofile -cluster testbed -bins -lacross 1.7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/stats"
	"repro/internal/vprof"
)

func main() {
	var (
		clusterName = flag.String("cluster", "longhorn", "profile shape: longhorn, frontera, testbed")
		gpus        = flag.Int("gpus", 128, "number of GPUs (testbed is fixed at 64)")
		seed        = flag.Uint64("seed", 0x9A1, "generation seed")
		showBins    = flag.Bool("bins", true, "print the K-Means PM-score bins")
		lacross     = flag.Float64("lacross", 1.5, "locality penalty for the L x V matrices")
		save        = flag.String("save", "", "write the profile as JSON to this file")
		load        = flag.String("load", "", "read the profile from this JSON file instead of generating")
	)
	flag.Parse()

	var p *vprof.Profile
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "palprofile: %v\n", err)
			os.Exit(1)
		}
		p, err = vprof.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "palprofile: %v\n", err)
			os.Exit(1)
		}
	}
	switch {
	case p != nil:
		// loaded from file
	default:
		switch *clusterName {
		case "longhorn":
			p = vprof.GenerateLonghorn(*gpus, *seed)
		case "frontera":
			p = vprof.GenerateFrontera(*gpus, *seed)
		case "testbed":
			p = vprof.GenerateTestbed(*seed)
		default:
			fmt.Fprintf(os.Stderr, "palprofile: unknown cluster %q\n", *clusterName)
			os.Exit(2)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "palprofile: %v\n", err)
			os.Exit(1)
		}
		if err := p.Save(f); err != nil {
			fmt.Fprintf(os.Stderr, "palprofile: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "palprofile: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *save)
	}

	fmt.Printf("profile %s: %d GPUs, %d classes\n", p.Name(), p.NumGPUs(), p.NumClasses())
	for c := vprof.Class(0); int(c) < p.NumClasses(); c++ {
		scores := p.ClassScores(c)
		fmt.Printf("  class %s: geomean var %5.1f%%  p25 %.3f  p75 %.3f  max %.2fx\n",
			c, 100*p.Variability(c),
			stats.Percentile(scores, 25), stats.Percentile(scores, 75), p.MaxScore(c))
	}

	if !*showBins {
		return
	}
	binned := vprof.BinProfile(p)
	for c := vprof.Class(0); int(c) < p.NumClasses(); c++ {
		sel := kmeans.SelectK(p.ClassScores(c))
		fmt.Printf("\nclass %s binning: silhouette-selected K=%d (score %.3f), %d outliers\n",
			c, sel.K, sel.Score, len(sel.OutlierIdx))
		counts := make([]int, binned.NumBins(c))
		for g := 0; g < binned.NumGPUs(); g++ {
			counts[binned.BinOf(c, g)]++
		}
		for i, s := range binned.BinScores(c) {
			fmt.Printf("  bin %d: centroid %.3f (%d GPUs)\n", i, s, counts[i])
		}
		m, err := core.BuildLV([]float64{1.0, *lacross}, binned.BinScores(c))
		if err != nil {
			fmt.Fprintf(os.Stderr, "palprofile: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(m)
	}
}
