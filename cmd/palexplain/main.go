// Command palexplain renders decision traces — the "why" behind a run's
// scheduling and placement outcomes — as human-readable timelines,
// without re-running a single simulation for archived sources. It is the
// explainability half of the observability stack: internal/metrics
// records what happened (series, histograms), internal/decision records
// why (scheduler order, attained-service ceilings, placement score
// decompositions, preemptions), and palexplain is the renderer.
//
// Usage:
//
//	palexplain -scenario spec.json                 # live run, decisions force-enabled
//	palexplain -in out/                            # archived *.decisions.json (palsim/palsweep -metrics)
//	palexplain -in results/.palstore               # traces embedded in a result store
//	palexplain -in out/ -job 17                    # one job's "why" timeline
//	palexplain -scenario spec.json -format md -out tables/
//
// Without -job, each trace renders as a decision timeline: one row per
// coalesced decision record — a scheduling decision and the span of
// rounds it stayed in force — with a "changes" column diffing it against
// the previous record (starts, resumes, migrations, preemptions,
// completions). With -job, the timeline narrows to the records that
// mention the job, annotated with its queue position, ceiling, and the
// Equation-1 decomposition (locality × PM score) of every placement it
// received.
//
// A -scenario run force-enables the spec's decisions block (with a
// re-Normalize, so the run cache-keys exactly like a file that enabled
// it). -in tokens may be trace files, directories, globs, or result-store
// directories; stores are read with Peek, so explaining never perturbs
// GC recency. Formats and -out behave exactly like palsweep's.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/decision"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/scenario"
	"repro/internal/store"
)

func main() {
	var (
		in       = flag.String("in", "", "comma-separated trace files, directories or globs (*.decisions.json), or result-store directories (palsweep -store)")
		scenPath = flag.String("scenario", "", "run a declarative scenario spec (JSON) live with decision recording force-enabled, then explain it")
		job      = flag.Int("job", -1, "narrow to one job ID: its per-record \"why\" timeline (queue position, ceiling, placement scores)")
		format   = flag.String("format", "text", "output format: text, csv, md, json")
		outDir   = flag.String("out", "", "write one file per table into this directory instead of stdout")
	)
	flag.Parse()
	switch *format {
	case "text", "csv", "md", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (want text, csv, md or json)", *format))
	}
	if (*in == "") == (*scenPath == "") {
		fatal(fmt.Errorf("exactly one of -in (archived traces) or -scenario (live run) is required"))
	}

	var traces []*decision.Trace
	if *scenPath != "" {
		traces = []*decision.Trace{runScenario(*scenPath)}
	} else {
		traces = loadTraces(*in)
		if len(traces) == 0 {
			fatal(fmt.Errorf("no decision traces found in %q (archive them with palsim/palsweep -metrics on a spec with decisions enabled, or palsweep -store)", *in))
		}
	}

	for _, tr := range traces {
		var t *experiments.Table
		if *job >= 0 {
			t = jobTable(tr, *job)
		} else {
			t = timelineTable(tr)
		}
		if err := emit(t, *format, *outDir); err != nil {
			fatal(err)
		}
	}
}

// runScenario executes a spec live with decision recording on and
// returns its trace.
func runScenario(path string) *decision.Trace {
	spec, err := scenario.LoadFile(path)
	if err != nil {
		fatal(err)
	}
	// Force-enable like palsim's -metrics: re-Normalize so the spec
	// canonicalizes — and cache-keys — exactly like a file that asked for
	// decisions itself.
	spec.Decisions.Enabled = true
	spec.Normalize()
	built, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	res, err := built.Run()
	if err != nil {
		fatal(err)
	}
	tr := decision.FromResult(res)
	if tr == nil {
		fatal(fmt.Errorf("scenario %s: run produced no decision trace", spec.Name))
	}
	t := *tr
	t.Key = built.Key()
	return &t
}

// loadTraces resolves -in tokens to traces: result-store directories
// contribute every stored result's embedded trace (Peek — explaining
// must not refresh GC recency), other tokens expand to *.decisions.json
// files, directories or globs.
func loadTraces(arg string) []*decision.Trace {
	var traces []*decision.Trace
	var misses []string
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if store.IsStoreRoot(tok) {
			st, err := store.Open(tok)
			if err != nil {
				fatal(err)
			}
			keys, err := st.Keys()
			if err != nil {
				fatal(err)
			}
			skipped := 0
			for _, key := range keys {
				res, ok, err := st.Peek(key)
				if err != nil {
					fatal(err)
				}
				if !ok {
					continue // raced with a concurrent GC
				}
				tr := decision.FromResult(res)
				if tr == nil {
					skipped++
					continue
				}
				cp := *tr
				if cp.Key == "" {
					cp.Key = key
				}
				if cp.Name == "" {
					cp.Name = key[:12]
				}
				traces = append(traces, &cp)
			}
			if skipped > 0 {
				fmt.Fprintf(os.Stderr, "palexplain: store %s: skipped %d results without decision traces (re-run them with decisions enabled to explain)\n", tok, skipped)
			}
			continue
		}
		paths, err := export.ExpandFileArgs(tok, export.DecisionsExt)
		if err != nil {
			misses = append(misses, err.Error())
			continue
		}
		for _, path := range paths {
			t, err := decision.LoadFile(path)
			if err != nil {
				fatal(err)
			}
			if t.Name == "" {
				t.Name = strings.TrimSuffix(filepath.Base(path), export.DecisionsExt)
			}
			traces = append(traces, t)
		}
	}
	if len(misses) > 0 {
		fatal(fmt.Errorf("-in: %s", strings.Join(misses, "; ")))
	}
	return traces
}

// timelineTable renders one trace as a round-level decision timeline:
// one row per coalesced record, with a diff against the previous record.
func timelineTable(tr *decision.Trace) *experiments.Table {
	t := &experiments.Table{
		Name:  "decisions_" + tr.Name,
		Title: fmt.Sprintf("decision timeline: %s (policy %s, sched %s)", tr.Name, tr.Policy, tr.Sched),
		Header: []string{"round", "t_h", "span", "running", "waiting",
			"placements", "preemptions", "changes"},
	}
	var prev *decision.Record
	for i := range tr.Records {
		rec := &tr.Records[i]
		t.AddRowf(rec.Round, rec.Start/3600, rec.Rounds, rec.Prefix, rec.Waiting,
			len(rec.Placements), len(rec.Preemptions), changes(prev, rec))
		prev = rec
	}
	annotate(t, tr)
	return t
}

// changes diffs a record against its predecessor: what decision changed
// to open the new span.
func changes(prev, rec *decision.Record) string {
	var parts []string
	for _, p := range rec.Placements {
		switch {
		case p.Started:
			parts = append(parts, fmt.Sprintf("start %d (%dg/%dn slow %.2f)", p.Job, p.GPUs, p.Nodes, p.Slowdown))
		case p.Migrated && p.Resumed:
			parts = append(parts, fmt.Sprintf("resume+migrate %d (%dg/%dn slow %.2f)", p.Job, p.GPUs, p.Nodes, p.Slowdown))
		case p.Resumed:
			parts = append(parts, fmt.Sprintf("resume %d", p.Job))
		case p.Migrated:
			parts = append(parts, fmt.Sprintf("migrate %d (%dg/%dn slow %.2f)", p.Job, p.GPUs, p.Nodes, p.Slowdown))
		}
	}
	for _, p := range rec.Preemptions {
		parts = append(parts, fmt.Sprintf("preempt %d (%dg)", p.Job, p.GPUs))
	}
	// Jobs that left the running set with neither a preemption nor a
	// reappearance completed during (or at the end of) the previous span.
	if prev != nil && len(prev.Order) > 0 && len(rec.Order) > 0 {
		now := make(map[int]bool, len(rec.Order))
		for _, e := range rec.Order {
			now[e.Job] = true
		}
		for _, e := range prev.Order[:prev.Prefix] {
			if !now[e.Job] {
				parts = append(parts, fmt.Sprintf("finish %d", e.Job))
			}
		}
	}
	if len(parts) == 0 {
		if prev == nil {
			return "(run start)"
		}
		return "-"
	}
	return strings.Join(parts, "; ")
}

// jobTable renders one job's "why" timeline: every record that mentions
// the job, with its queue position, ceiling, and placement scores.
func jobTable(tr *decision.Trace, job int) *experiments.Table {
	t := &experiments.Table{
		Name:  fmt.Sprintf("decisions_%s_job%d", tr.Name, job),
		Title: fmt.Sprintf("job %d timeline: %s (policy %s, sched %s)", job, tr.Name, tr.Policy, tr.Sched),
		Header: []string{"round", "t_h", "span", "state", "pos", "attained_h",
			"ceiling", "gpus", "nodes", "racks", "locality", "pm_score", "slowdown", "events"},
	}
	for i := range tr.Records {
		rec := &tr.Records[i]
		if !rec.Mentions(job) {
			continue
		}
		state, pos, attained, ceiling := "-", "-", "-", "-"
		for idx, e := range rec.Order {
			if e.Job != job {
				continue
			}
			if e.Running {
				state = "running"
			} else {
				state = "waiting"
			}
			pos = fmt.Sprintf("%d/%d", idx+1, len(rec.Order))
			attained = fmt.Sprintf("%.2f", e.Attained/3600)
			ceiling = renderCeiling(e.Ceiling)
			break
		}
		gpus, nodes, racks, locality, pm, slowdown := "-", "-", "-", "-", "-", "-"
		var events []string
		for _, p := range rec.Placements {
			if p.Job != job {
				continue
			}
			gpus, nodes, racks = fmt.Sprint(p.GPUs), fmt.Sprint(p.Nodes), fmt.Sprint(p.Racks)
			locality = fmt.Sprintf("%.3f", p.Locality)
			pm = fmt.Sprintf("%.3f", p.PMScore)
			slowdown = fmt.Sprintf("%.3f", p.Slowdown)
			switch {
			case p.Started:
				events = append(events, "start")
			case p.Resumed:
				events = append(events, "resume")
			}
			if p.Migrated {
				events = append(events, "migrate")
			}
		}
		for _, p := range rec.Preemptions {
			if p.Job == job {
				events = append(events, "preempt")
			}
		}
		ev := strings.Join(events, "+")
		if ev == "" {
			ev = "-"
		}
		t.AddRowf(rec.Round, rec.Start/3600, rec.Rounds, state, pos, attained,
			ceiling, gpus, nodes, racks, locality, pm, slowdown, ev)
	}
	annotate(t, tr)
	return t
}

// renderCeiling maps the archived ceiling sentinels back to words.
func renderCeiling(v float64) string {
	switch v {
	case decision.CeilingNone:
		return "-"
	case decision.CeilingUnbounded:
		return "unbounded"
	case decision.CeilingExpired:
		return "expired"
	default:
		return fmt.Sprintf("%.0fs", v)
	}
}

// annotate appends the trace's provenance notes to a table.
func annotate(t *experiments.Table, tr *decision.Trace) {
	if tr.Truncated {
		t.Note("ring buffer dropped %d older records; the timeline covers the run's tail only", tr.Dropped)
	}
	if tr.RunTruncated {
		t.Note("run TRUNCATED at MaxRounds with %d jobs unfinished", tr.Unfinished)
	}
	t.Note("%d records covering %d rounds of %.0f s", len(tr.Records), tr.Rounds, tr.RoundSec)
	if tr.Key != "" {
		key := tr.Key
		if len(key) > 16 {
			key = key[:16]
		}
		t.Note("key %s", key)
	}
}

// emit writes one table to stdout or to <outDir>/<name>.<ext> — the same
// rendering contract as palsweep and palreport.
func emit(t *experiments.Table, format, outDir string) error {
	render := func(w *os.File) error {
		switch format {
		case "text":
			_, err := fmt.Fprint(w, t.String())
			return err
		case "csv":
			return export.TableCSV(w, t)
		case "md":
			return export.TableMarkdown(w, t)
		case "json":
			return export.TableJSON(w, t)
		}
		return fmt.Errorf("unknown format %q", format)
	}
	if outDir == "" {
		return render(os.Stdout)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ext := map[string]string{"text": "txt", "csv": "csv", "md": "md", "json": "json"}[format]
	f, err := os.Create(filepath.Join(outDir, t.Name+"."+ext))
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "palexplain: %v\n", err)
	os.Exit(2)
}
