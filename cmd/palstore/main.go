// Command palstore inspects and maintains the persistent result store
// (internal/store) that `palsweep -store` and `palsim -store` populate:
// the disk tier of the content-addressed result cache, holding one
// archived *sim.Result per canonical configuration hash — plus, in a
// sibling versioned tree, the engine snapshots forked sweeps capture
// (one per shared warmup prefix). ls and info report both kinds side by
// side; verify re-hashes and re-decodes both; gc applies one policy to
// both trees.
//
// Subcommands:
//
//	palstore ls     -store DIR              list stored objects (key, size, ages, embedded payloads)
//	palstore info   -store DIR KEY          one object in detail (unique key prefix OK)
//	palstore verify -store DIR              re-hash and decode every object
//	palstore gc     -store DIR -max-bytes N -max-age DUR   evict LRU/stale objects
//	palstore export -store DIR -format csv|md|text|json    summary table of stored runs
//
// verify exits non-zero when any object fails its content hash or does
// not decode under the current codec, so CI can gate on store health.
// export tabulates straight from the archived results — no simulation,
// no separate metrics pass — with the same formats as palsweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/decision"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "ls":
		cmdLs(args)
	case "info":
		cmdInfo(args)
	case "verify":
		cmdVerify(args)
	case "gc":
		cmdGC(args)
	case "export":
		cmdExport(args)
	case "help", "-h", "-help", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "palstore: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: palstore <command> [flags]

commands:
  ls      -store DIR                        list stored objects
  info    -store DIR KEY                    show one object (unique key prefix OK)
  verify  -store DIR                        re-hash + decode every object; non-zero exit on problems
  gc      -store DIR [-max-bytes N] [-max-age DUR]   evict stale/LRU objects, compact the index
  export  -store DIR [-format csv|md|text|json]      summary table of stored runs
`)
}

// openFlags builds a flag set with the shared -store flag.
func openFlags(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("palstore "+name, flag.ExitOnError)
	dir := fs.String("store", "", "result-store directory (as passed to palsweep/palsim -store)")
	return fs, dir
}

// mustOpen parses the flags and opens the store, failing loudly when
// -store is missing or does not hold a store.
func mustOpen(fs *flag.FlagSet, dir *string, args []string) *store.Store {
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("-store is required"))
	}
	if !store.IsStoreRoot(*dir) {
		// Opening a fresh directory would silently create an empty store;
		// for an inspection CLI a typo should say so instead. A store
		// holding only older codec versions still opens — gc is the
		// documented way to reclaim a superseded tree.
		fatal(fmt.Errorf("%s is not a result store (no v*/objects tree)", *dir))
	}
	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	return st
}

func cmdLs(args []string) {
	fs, dir := openFlags("ls")
	st := mustOpen(fs, dir, args)
	infos, err := st.Infos()
	if err != nil {
		fatal(err)
	}
	snapInfos, err := st.SnapshotInfos()
	if err != nil {
		fatal(err)
	}
	if len(infos)+len(snapInfos) == 0 {
		fmt.Println("(empty store)")
		return
	}
	now := time.Now()
	fmt.Printf("%-16s  %-8s  %10s  %12s  %12s  %s\n", "KEY", "KIND", "SIZE", "AGE", "LAST-ACCESS", "DETAIL")
	var total int64
	for _, info := range infos {
		// Peek, not Get: listing must not refresh GC recency.
		detail := "?"
		if res, ok, err := st.Peek(info.Key); err == nil && ok {
			detail = payloadFlags(res)
		}
		fmt.Printf("%-16s  %-8s  %10d  %12s  %12s  %s\n",
			info.Key[:16], "result", info.Size, age(now, info.Created), age(now, info.LastAccess), detail)
		total += info.Size
	}
	for _, info := range snapInfos {
		detail := "?"
		if snap, ok, err := st.PeekSnapshot(info.Key); err == nil && ok {
			detail = snapshotDetail(snap)
		}
		fmt.Printf("%-16s  %-8s  %10d  %12s  %12s  %s\n",
			info.Key[:16], "snapshot", info.Size, age(now, info.Created), age(now, info.LastAccess), detail)
		total += info.Size
	}
	fmt.Printf("%d results + %d snapshots, %.1f MiB (%s, codec %s, snapshot codec %s)\n",
		len(infos), len(snapInfos), float64(total)/(1<<20), st.Dir(),
		export.ResultFormatVersion, export.SnapshotFormatVersion)
}

func cmdInfo(args []string) {
	fs, dir := openFlags("info")
	st := mustOpen(fs, dir, args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("info wants exactly one KEY argument (a unique prefix is enough)"))
	}
	key, kind, err := resolveKey(st, fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if kind == "snapshot" {
		snapshotInfo(st, key)
		return
	}
	info, ok, err := st.Info(key)
	if err != nil || !ok {
		fatal(fmt.Errorf("object %s: ok=%v err=%v", key, ok, err))
	}
	res, ok, err := st.Peek(key) // inspection must not refresh GC recency
	if err != nil {
		fatal(err)
	}
	if !ok {
		fatal(fmt.Errorf("object %s vanished mid-read", key))
	}
	fmt.Printf("key          %s\n", key)
	fmt.Printf("kind         result\n")
	fmt.Printf("size         %d bytes\n", info.Size)
	if info.SHA256 != "" {
		fmt.Printf("sha256       %s\n", info.SHA256)
	}
	fmt.Printf("created      %s\n", info.Created.Format(time.RFC3339))
	fmt.Printf("last access  %s\n", info.LastAccess.Format(time.RFC3339))
	if p := metrics.FromResult(res); p != nil {
		fmt.Printf("run          %s (policy %s, sched %s)\n", p.Name, p.Policy, p.Sched)
	} else {
		fmt.Printf("run          (no telemetry archived)\n")
	}
	fmt.Printf("payload      %s\n", payloadFlags(res))
	if tr := decision.FromResult(res); tr != nil {
		truncated := ""
		if tr.Truncated {
			truncated = fmt.Sprintf(" (truncated, %d dropped)", tr.Dropped)
		}
		fmt.Printf("decisions    %d records covering %d rounds%s\n", len(tr.Records), tr.Rounds, truncated)
	}
	jcts := res.JCTs()
	fmt.Printf("jobs         %d (%d measured)\n", len(res.Jobs), len(res.Measured))
	fmt.Printf("rounds       %d\n", res.Rounds)
	if res.Truncated {
		fmt.Printf("TRUNCATED    %d jobs unfinished; metrics cover completed jobs only\n", res.Unfinished)
	}
	fmt.Printf("avg JCT      %.1f s\n", stats.Mean(jcts))
	fmt.Printf("p99 JCT      %.1f s\n", stats.Percentile(jcts, 99))
	fmt.Printf("makespan     %.1f s (%.2f h)\n", res.Makespan, res.Makespan/3600)
	fmt.Printf("utilization  %.2f%%\n", 100*res.Utilization)
}

func cmdVerify(args []string) {
	fs, dir := openFlags("verify")
	st := mustOpen(fs, dir, args)
	problems, err := st.Verify()
	if err != nil {
		fatal(err)
	}
	n, err := st.Len()
	if err != nil {
		fatal(err)
	}
	snapKeys, err := st.SnapshotKeys()
	if err != nil {
		fatal(err)
	}
	total := n + len(snapKeys)
	if len(problems) == 0 {
		fmt.Printf("palstore: ok — %d objects verified (%d results, codec %s; %d snapshots, codec %s)\n",
			total, n, export.ResultFormatVersion, len(snapKeys), export.SnapshotFormatVersion)
		return
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "palstore: %s\n", p)
	}
	fmt.Fprintf(os.Stderr, "palstore: %d problems in %d objects (gc evicts undamaged-but-stale objects; damaged ones must be deleted and re-simulated)\n",
		len(problems), total)
	os.Exit(1)
}

func cmdGC(args []string) {
	fs, dir := openFlags("gc")
	maxBytes := fs.Int64("max-bytes", 0, "evict least-recently-accessed objects until the store fits (0 = no size bound)")
	maxAge := fs.Duration("max-age", 0, "evict objects not accessed within this duration (0 = no age bound)")
	st := mustOpen(fs, dir, args)
	rep, err := st.GC(store.GCPolicy{MaxBytes: *maxBytes, MaxAge: *maxAge})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("palstore: gc kept %d objects (%.1f MiB), removed %d (%.1f MiB freed)\n",
		rep.Kept, float64(rep.KeptBytes)/(1<<20), rep.Removed, float64(rep.FreedBytes)/(1<<20))
}

func cmdExport(args []string) {
	fs, dir := openFlags("export")
	format := fs.String("format", "md", "output format: text, csv, md, json")
	st := mustOpen(fs, dir, args)
	switch *format {
	case "text", "csv", "md", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (want text, csv, md or json)", *format))
	}
	keys, err := st.Keys()
	if err != nil {
		fatal(err)
	}
	table := &experiments.Table{
		Name:  "store_summary",
		Title: fmt.Sprintf("archived results in %s", st.Root()),
		Header: []string{"key", "run", "policy", "sched", "jobs", "measured",
			"avg_jct_s", "p50_jct_s", "p99_jct_s", "mean_wait_s", "util_pct", "rounds", "truncated"},
	}
	for _, key := range keys {
		res, ok, err := st.Peek(key) // inspection must not refresh GC recency
		if err != nil {
			fatal(err)
		}
		if !ok {
			continue // raced with a concurrent GC
		}
		name, policy, sched := "-", "-", "-"
		if p := metrics.FromResult(res); p != nil {
			name, policy, sched = p.Name, p.Policy, p.Sched
		}
		jcts := res.JCTs()
		truncated := ""
		if res.Truncated {
			truncated = fmt.Sprintf("yes (%d unfinished)", res.Unfinished)
		}
		table.AddRowf(key[:16], name, policy, sched, len(res.Jobs), len(res.Measured),
			stats.Mean(jcts), stats.Percentile(jcts, 50), stats.Percentile(jcts, 99),
			stats.Mean(res.Waits()), 100*res.Utilization, res.Rounds, truncated)
	}
	switch *format {
	case "text":
		fmt.Print(table.String())
	case "csv":
		if err := export.TableCSV(os.Stdout, table); err != nil {
			fatal(err)
		}
	case "md":
		if err := export.TableMarkdown(os.Stdout, table); err != nil {
			fatal(err)
		}
	case "json":
		if err := export.TableJSON(os.Stdout, table); err != nil {
			fatal(err)
		}
	}
}

// payloadFlags summarizes which observability payloads an archived
// result embeds: "metrics", "decisions", both, or "-" for a bare result.
func payloadFlags(res *sim.Result) string {
	var flags []string
	if metrics.FromResult(res) != nil {
		flags = append(flags, "metrics")
	}
	if decision.FromResult(res) != nil {
		flags = append(flags, "decisions")
	}
	if len(flags) == 0 {
		return "-"
	}
	return strings.Join(flags, "+")
}

// age renders how long ago t was, compactly.
func age(now, t time.Time) string {
	d := now.Sub(t)
	if d < 0 {
		d = 0
	}
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm", int(d.Minutes()))
	case d < 48*time.Hour:
		return fmt.Sprintf("%dh", int(d.Hours()))
	default:
		return fmt.Sprintf("%dd", int(d.Hours()/24))
	}
}

// snapshotDetail is the one-line summary of a stored engine snapshot
// for the ls listing.
func snapshotDetail(snap *sim.Snapshot) string {
	if snap.Completed {
		return "completed sentinel (prefix finished before its horizon)"
	}
	return fmt.Sprintf("round %d, %d arrived jobs, sched %s, placer %s",
		snap.Rounds, len(snap.Jobs), snap.SchedName, snap.PlacerName)
}

// snapshotInfo renders one snapshot object in detail — the snapshot
// branch of cmdInfo.
func snapshotInfo(st *store.Store, key string) {
	infos, err := st.SnapshotInfos()
	if err != nil {
		fatal(err)
	}
	var info *store.ObjectInfo
	for i := range infos {
		if infos[i].Key == key {
			info = &infos[i]
			break
		}
	}
	if info == nil {
		fatal(fmt.Errorf("snapshot %s vanished mid-read", key))
	}
	snap, ok, err := st.PeekSnapshot(key) // inspection must not refresh GC recency
	if err != nil {
		fatal(err)
	}
	if !ok {
		fatal(fmt.Errorf("snapshot %s vanished mid-read", key))
	}
	fmt.Printf("key          %s\n", key)
	fmt.Printf("kind         snapshot\n")
	fmt.Printf("size         %d bytes\n", info.Size)
	if info.SHA256 != "" {
		fmt.Printf("sha256       %s\n", info.SHA256)
	}
	fmt.Printf("created      %s\n", info.Created.Format(time.RFC3339))
	fmt.Printf("last access  %s\n", info.LastAccess.Format(time.RFC3339))
	if snap.Completed {
		fmt.Printf("state        completed sentinel: the warmup prefix finished before its horizon, so\n")
		fmt.Printf("             there is no engine state to fork from (cells run from scratch)\n")
		return
	}
	fmt.Printf("horizon      round %d (engine clock %.0f s)\n", snap.Rounds, snap.Now)
	fmt.Printf("round        %.0f s\n", snap.RoundSec)
	fmt.Printf("cluster      %d GPUs\n", snap.Topology.Size())
	running := 0
	for _, j := range snap.Jobs {
		if len(j.Alloc) > 0 {
			running++
		}
	}
	fmt.Printf("jobs         %d arrived (%d allocated), next arrival index %d\n",
		len(snap.Jobs), running, snap.NextArrival)
	fmt.Printf("warmup       sched %s, placer %s\n", snap.SchedName, snap.PlacerName)
	sinks := "-"
	var flags []string
	if len(snap.MetricsState) > 0 {
		flags = append(flags, "metrics")
	}
	if len(snap.DecisionsState) > 0 {
		flags = append(flags, "decisions")
	}
	if len(flags) > 0 {
		sinks = strings.Join(flags, "+")
	}
	fmt.Printf("sinks        %s\n", sinks)
}

// resolveKey expands a (possibly abbreviated) key to a stored one,
// searching results and snapshots alike and demanding uniqueness so a
// short prefix can never silently pick the wrong object. The returned
// kind is "result" or "snapshot".
func resolveKey(st *store.Store, prefix string) (string, string, error) {
	keys, err := st.Keys()
	if err != nil {
		return "", "", err
	}
	snapKeys, err := st.SnapshotKeys()
	if err != nil {
		return "", "", err
	}
	type match struct{ key, kind string }
	var matches []match
	for _, k := range keys {
		if strings.HasPrefix(k, prefix) {
			matches = append(matches, match{k, "result"})
		}
	}
	for _, k := range snapKeys {
		if strings.HasPrefix(k, prefix) {
			matches = append(matches, match{k, "snapshot"})
		}
	}
	switch len(matches) {
	case 1:
		return matches[0].key, matches[0].kind, nil
	case 0:
		return "", "", fmt.Errorf("no stored object matches key prefix %q", prefix)
	default:
		return "", "", fmt.Errorf("key prefix %q is ambiguous (%d matches, e.g. %s %s and %s %s)",
			prefix, len(matches), matches[0].kind, matches[0].key[:16], matches[1].kind, matches[1].key[:16])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "palstore: %v\n", err)
	os.Exit(2)
}
