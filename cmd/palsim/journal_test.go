package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// journalTestSpec is a small single-run scenario: one simulation, one
// journal task span — the palsim shape (palsweep journals hold many).
const journalTestSpec = `{
  "name": "palsim-journal-test",
  "seed": 3,
  "cluster": {"nodes": 2, "gpus_per_node": 4},
  "workload": {"source": "synthetic", "num_jobs": 24, "jobs_per_hour": 12, "median_work_sec": 1800},
  "policy": {"name": "pal"}
}`

// resetJournalState restores palsim's journal globals between runs, so
// one test can exercise several invocations of the single-run pipeline.
func resetJournalState() {
	jw = nil
	storeProbe = nil
	tally = runner.Stats{}
	cacheTally = runner.CacheStats{}
	engineCtrs = &sim.Counters{}
}

// TestSingleRunJournalReconciles pins the palsim half of the journal
// contract: a single-task journal written by palsim's throughStore
// wiring must reconcile exactly with what palreport's TOTAL row
// derives from it — one task span, worker count 1, one store Get per
// task, and engine counters whose summary total equals both the task
// event's counters and the run's Result.Rounds. A warm re-run through
// the same store must journal a store-hit span with no counters (no
// engine stepped), which the reader reports as counter-less rather
// than fabricating zeros.
func TestSingleRunJournalReconciles(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(journalTestSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.LoadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	storeDir := filepath.Join(dir, "store")

	// Cold run: simulate, store, journal one executed span.
	resetJournalState()
	defer resetJournalState()
	coldDir := filepath.Join(dir, "journal-cold")
	jw, err = journal.Create(coldDir, journal.Header{Role: "palsim", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	built.Counters = engineCtrs
	res := throughStore(storeDir, built.Key(), built.Spec.Name, built.Run)
	ranCounters := *engineCtrs
	finishJournal()

	procs, err := journal.LoadDir(coldDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 {
		t.Fatalf("loaded %d journals, want 1", len(procs))
	}
	p := procs[0]
	if p.Header.Workers != 1 {
		t.Errorf("header workers = %d, want palsim's single synthetic slot", p.Header.Workers)
	}
	c := p.Counts()
	if c.Tasks != 1 || c.Executed != 1 || c.StoreHits != 0 || c.Errors != 0 {
		t.Errorf("cold-run tier counts %+v, want exactly one executed task", c)
	}
	if p.Summary == nil {
		t.Fatal("cold-run journal has no summary record")
	}
	if p.Summary.StoreGet == nil || p.Summary.StoreGet.Count != 1 || p.Summary.StoreGet.Misses != 1 {
		t.Errorf("store probe gets %+v, want one miss (one Get per task)", p.Summary.StoreGet)
	}
	if p.Summary.StorePut == nil || p.Summary.StorePut.Count != 1 {
		t.Errorf("store probe puts %+v, want the one result stored", p.Summary.StorePut)
	}
	ec, ok := p.EngineCounters()
	if !ok {
		t.Fatal("cold-run journal carries no engine counters")
	}
	if *ec != ranCounters {
		t.Errorf("journal engine counters %+v differ from the run's %+v", *ec, ranCounters)
	}
	if len(p.Tasks) != 1 || p.Tasks[0].Counters == nil || *p.Tasks[0].Counters != ranCounters {
		t.Error("task event does not carry the run's counters")
	}
	if p.Summary.Engine == nil || *p.Summary.Engine != ranCounters {
		t.Error("summary engine total does not equal the task event's counters")
	}
	if got, want := ec.TotalRounds(), int64(res.Rounds); got != want {
		t.Errorf("engine counters report %d rounds, result reports %d", got, want)
	}
	if ec.TotalRounds() == 0 {
		t.Error("run stepped zero rounds; the spec must exercise the engine")
	}

	// Warm run: the store satisfies the task, so the span is a store hit
	// with no counters attached — no engine stepped in this process.
	resetJournalState()
	warmDir := filepath.Join(dir, "journal-warm")
	jw, err = journal.Create(warmDir, journal.Header{Role: "palsim", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	built.Counters = engineCtrs
	warmRes := throughStore(storeDir, built.Key(), built.Spec.Name, built.Run)
	finishJournal()
	if warmRes.Rounds != res.Rounds {
		t.Errorf("warm store hit returned %d rounds, cold run had %d", warmRes.Rounds, res.Rounds)
	}

	procs, err = journal.LoadDir(warmDir)
	if err != nil {
		t.Fatal(err)
	}
	p = procs[0]
	c = p.Counts()
	if c.Tasks != 1 || c.StoreHits != 1 || c.Executed != 0 {
		t.Errorf("warm-run tier counts %+v, want exactly one store hit", c)
	}
	if _, ok := p.EngineCounters(); ok {
		t.Error("store-hit journal reports engine counters; no engine stepped here")
	}
	if p.Summary == nil || p.Summary.Engine != nil {
		t.Error("store-hit summary should carry no engine total")
	}
}
