// Command palsim runs a single cluster-scheduling simulation, either
// from explicit knobs (trace family, cluster size, scheduler, placement
// policy, locality penalty) or from a declarative scenario spec. It
// prints the aggregate metrics the paper reports.
//
// Examples:
//
//	palsim -trace sia -workload 5 -policy pal -sched fifo
//	palsim -trace synergy -load 10 -jobs 800 -policy tiresias -lacross 1.7
//	palsim -scenario examples/scenario/spec.json
//	palsim -scenario spec.json -dump-trace workload.json   # save the generated workload for replay
//	palsim -scenario spec.json -metrics out/               # archive telemetry (series CSVs + payload JSON)
//	palsim -scenario spec.json -decisions -metrics out/    # + decision trace, ready for palexplain
//	palsim -scenario spec.json -store results/.palstore    # repeat runs become O(read)
//	palsim -scenario spec.json -journal out/journal        # append an execution-journal record
//	palsim -trace sia -workload 5 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// With -scenario, the whole configuration comes from the JSON spec
// (internal/scenario documents the format) and the other
// simulation-shaping flags are rejected to prevent silently-ignored
// knobs. -metrics works on both paths: it attaches the fast-forward-safe
// collector (internal/metrics) and dumps the run's series and payload
// into the named directory, ready for cmd/palreport.
//
// With -journal, the run appends an execution journal (internal/journal)
// into the named directory — one task record naming whether the result
// was simulated or loaded from the store, plus a summary with store
// latency samples — mergeable with palsweep shard journals by
// `palreport -journal`. -cpuprofile/-memprofile write Go pprof profiles
// on clean exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/decision"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		traceKind  = flag.String("trace", "sia", "trace family: sia or synergy")
		workload   = flag.Int("workload", 1, "Sia-Philly workload index (1-8)")
		load       = flag.Float64("load", 10, "Synergy job arrival rate (jobs/hour)")
		jobs       = flag.Int("jobs", 800, "Synergy trace length")
		policy     = flag.String("policy", "pal", "placement policy: random-sticky, random, gandiva, tiresias, pm-first, pal")
		schedName  = flag.String("sched", "fifo", "scheduling policy: fifo, las, srtf")
		nodes      = flag.Int("nodes", 0, "cluster nodes (default: 16 for sia, 64 for synergy)")
		lacross    = flag.Float64("lacross", 1.5, "inter-node locality penalty")
		perModel   = flag.Bool("per-model-lacross", false, "use per-model locality penalties (Table II)")
		seed       = flag.Uint64("seed", 0xE4B, "experiment seed")
		utilize    = flag.Bool("util", false, "print the GPUs-in-use series (deciles)")
		events     = flag.Int("events", 0, "print the first N lifecycle events")
		asJSON     = flag.Bool("json", false, "print aggregate metrics as JSON")
		scenPath   = flag.String("scenario", "", "run a declarative scenario spec (JSON) instead of the flag-built configuration")
		dumpTrace  = flag.String("dump-trace", "", "with -scenario: save the scenario's workload as JSON for replay via a file-sourced spec")
		metricsDir = flag.String("metrics", "", "collect telemetry and dump the run's series (CSV) and payload (JSON) into this directory")
		decisions  = flag.Bool("decisions", false, "record the decision trace (internal/decision); with -metrics, the trace is archived next to the payload for palexplain")
		storeDir   = flag.String("store", "", "persistent result-store directory: repeat runs of the same configuration load from disk instead of simulating")
		journalDir = flag.String("journal", "", "append this run's execution journal (task record, store latency, summary) into this directory for palreport -journal")
		cpuProfile = flag.String("cpuprofile", "", "write a Go CPU profile to this file (flushed on clean exit)")
		memProfile = flag.String("memprofile", "", "write a Go heap profile to this file on clean exit")
	)
	flag.Parse()

	var err error
	stopProfiles, err = journal.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
		os.Exit(2)
	}
	if *journalDir != "" {
		jw, err = journal.Create(*journalDir, journal.Header{Role: "palsim", Workers: 1})
		if err != nil {
			fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
			os.Exit(2)
		}
	}

	if *scenPath != "" {
		runScenario(*scenPath, *dumpTrace, *asJSON, *events, *utilize, *metricsDir, *decisions, *storeDir)
		finishJournal()
		return
	}
	if *dumpTrace != "" {
		fmt.Fprintln(os.Stderr, "palsim: -dump-trace requires -scenario")
		os.Exit(2)
	}

	pol, ok := policyByName(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "palsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	s := sched.ByName(*schedName)
	if s == nil {
		fmt.Fprintf(os.Stderr, "palsim: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}

	var (
		tr   *trace.Trace
		topo cluster.Topology
	)
	switch *traceKind {
	case "sia":
		tr = experiments.SiaTrace(*workload)
		topo = experiments.SiaTopology()
	case "synergy":
		params := trace.DefaultSynergyParams(*load)
		params.NumJobs = *jobs
		tr = trace.Synergy(params)
		topo = experiments.SynergyTopology()
	default:
		fmt.Fprintf(os.Stderr, "palsim: unknown trace family %q\n", *traceKind)
		os.Exit(2)
	}
	if *nodes > 0 {
		topo = cluster.Topology{NumNodes: *nodes, GPUsPerNode: experiments.GPUsPerNode}
	}

	spec := experiments.RunSpec{
		Trace:           tr,
		Topo:            topo,
		Sched:           s,
		Policy:          pol,
		Profile:         experiments.LonghornProfile(topo.Size()),
		Lacross:         *lacross,
		Seed:            *seed,
		RecordUtil:      *utilize,
		RecordEvents:    *events > 0,
		RecordMetrics:   *metricsDir != "",
		RecordDecisions: *decisions,
		Counters:        engineCtrs,
	}
	if *perModel {
		spec.ModelLacross = trace.LacrossByModel()
	}

	label := fmt.Sprintf("%s %s %s", tr.Name, spec.Policy.RegistryName(), s.Name())
	res := throughStore(*storeDir, spec.Key(), label, func() (*sim.Result, error) {
		return experiments.Run(spec)
	})

	if *metricsDir != "" {
		base := fmt.Sprintf("%s-%s-%s", tr.Name, spec.Policy.RegistryName(), s.Name())
		dumpMetrics(*metricsDir, base, res, spec.Key())
	}

	if *asJSON {
		if err := export.ResultJSON(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
			os.Exit(1)
		}
		finishJournal()
		return
	}

	header := fmt.Sprintf("trace=%s jobs=%d cluster=%d GPUs policy=%s sched=%s lacross=%.2f",
		tr.Name, len(tr.Jobs), topo.Size(), pol, s.Name(), *lacross)
	printMetrics(header, res, *events, *utilize)
	finishJournal()
}

// Journal state for the optional -journal/-cpuprofile/-memprofile
// flags. palsim runs one simulation, so the journal holds a single
// synthetic worker slot whose tallies throughStore maintains; fatal
// paths leave a summary-less journal, which the reader reports as
// incomplete rather than guessing.
var (
	jw           *journal.Writer
	storeProbe   *journal.BackendProbe
	tally        runner.Stats
	cacheTally   runner.CacheStats
	stopProfiles = func() error { return nil }
	// engineCtrs collects the run's engine introspection counters; both
	// run paths attach it to their config, throughStore hands it to the
	// journal for executed outcomes, and finishJournal prints its
	// summary (a store hit leaves it empty: no engine stepped here).
	engineCtrs = &sim.Counters{}
)

// finishJournal closes the journal with the run's summary and flushes
// any profiles; called on every clean exit path.
func finishJournal() {
	if engineCtrs.TotalRounds() > 0 {
		fmt.Fprintf(os.Stderr, "palsim: %s\n", engineCtrs.Summary())
	}
	if jw != nil {
		ct := cacheTally
		sum := journal.Summary{Runner: tally, Cache: &ct}
		if storeProbe != nil {
			sum.StoreGet, sum.StorePut = storeProbe.Stats()
		}
		if err := jw.Close(sum); err != nil {
			fmt.Fprintf(os.Stderr, "palsim: WARNING: journal degraded: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "palsim: journal %s\n", jw.Path())
		}
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
	}
}

// throughStore runs the simulation through the persistent store when
// -store is set: a stored result for the run's content-addressed key is
// loaded instead of simulating, and a fresh result is persisted for
// later invocations. Store failures degrade to simulating (with an
// explicit WARNING), mirroring the runner cache's backend semantics. It
// finishes with the same `simulated / cache hits (memory, store) /
// stored` summary line palsweep prints, so warm starts are observable
// from both CLIs (palsim has no in-memory tier, so "memory" is always 0
// here). With -journal, the run lands in the journal as one task span
// whose outcome names the tier that satisfied it.
func throughStore(dir, key, label string, run func() (*sim.Result, error)) *sim.Result {
	start := time.Now()
	observe := func(outcome runner.TaskOutcome, runDur time.Duration, err error) {
		tally.Submitted++
		tally.Completed++
		switch outcome {
		case runner.OutcomeStoreHit:
			tally.CacheHits++
			cacheTally.StoreHits++
		default:
			tally.Executed++
			cacheTally.Misses++
		}
		if jw != nil {
			var ctrs *sim.Counters
			if outcome == runner.OutcomeExecuted {
				ctrs = engineCtrs
			}
			jw.ObserveTask(runner.TaskSpan{Key: key, Label: label, Outcome: outcome,
				Err: err, Start: start, Duration: time.Since(start), Run: runDur,
				Counters: ctrs})
		}
	}
	var backend runner.Backend
	if dir != "" {
		st, err := store.Open(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
			os.Exit(2)
		}
		backend = st
		if jw != nil {
			storeProbe = journal.ProbeBackend(st)
			backend = storeProbe
		}
		res, ok, err := backend.Get(key)
		switch {
		case err != nil:
			cacheTally.StoreErrors++
			fmt.Fprintf(os.Stderr, "palsim: WARNING: store degraded, simulating: %v\n", err)
		case ok:
			fmt.Fprintf(os.Stderr, "palsim: loaded result from store (key %s)\n", key[:16])
			fmt.Fprintln(os.Stderr, "palsim: 0 simulated, 1 cache hits (0 memory, 1 store)")
			observe(runner.OutcomeStoreHit, 0, nil)
			return res
		}
	}
	t0 := time.Now()
	res, err := run()
	runDur := time.Since(t0)
	if err != nil {
		observe(runner.OutcomeError, runDur, err)
		fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
		os.Exit(1)
	}
	if backend != nil {
		summary := "1 simulated, 0 cache hits (0 memory, 0 store)"
		if perr := backend.Put(key, res); perr != nil {
			cacheTally.StoreErrors++
			fmt.Fprintf(os.Stderr, "palsim: WARNING: store write failed, result not persisted: %v\n", perr)
			summary += ", 1 store errors"
		} else {
			cacheTally.Stored++
			fmt.Fprintf(os.Stderr, "palsim: stored result (key %s)\n", key[:16])
			summary += ", 1 stored"
		}
		fmt.Fprintf(os.Stderr, "palsim: %s\n", summary)
	}
	observe(runner.OutcomeExecuted, runDur, nil)
	return res
}

// dumpMetrics archives a run's telemetry payload (with the cache key
// stamped on a copy — the original may be shared through the runner
// cache) and per-series CSVs, plus the run's decision trace when one was
// recorded (ready for cmd/palexplain).
func dumpMetrics(dir, base string, res *sim.Result, key string) {
	payload := metrics.FromResult(res)
	if payload == nil {
		fmt.Fprintln(os.Stderr, "palsim: run produced no metrics payload")
		os.Exit(1)
	}
	p := *payload
	p.Key = key
	path, err := export.WriteMetricsDir(dir, base, &p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "palsim: wrote metrics payload %s (+%d series CSVs)\n", path, len(p.Series))
	if tr := decision.FromResult(res); tr != nil {
		t := *tr
		t.Key = key
		tpath, err := export.WriteDecisionsFile(dir, base, &t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "palsim: wrote decision trace %s (%d records)\n", tpath, len(t.Records))
	}
}

// runScenario executes a declarative scenario spec end to end.
// -events, -util and -metrics are output-shaping flags, not
// configuration, so they are honored by switching the spec's recording
// knobs on (with a re-Normalize so the forced spec canonicalizes — and
// cache-keys — exactly like a file that enabled them).
func runScenario(path, dumpTrace string, asJSON bool, events int, utilize bool, metricsDir string, decisions bool, storeDir string) {
	// The spec owns the whole configuration; a flag-built knob alongside
	// it would be silently ignored, so reject the combination.
	conflicting := map[string]bool{
		"trace": true, "workload": true, "load": true, "jobs": true,
		"policy": true, "sched": true, "nodes": true, "lacross": true,
		"per-model-lacross": true, "seed": true,
	}
	flag.Visit(func(f *flag.Flag) {
		if conflicting[f.Name] {
			fmt.Fprintf(os.Stderr, "palsim: -%s conflicts with -scenario (the spec sets it)\n", f.Name)
			os.Exit(2)
		}
	})

	spec, err := scenario.LoadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
		os.Exit(2)
	}
	if events > 0 {
		spec.Engine.RecordEvents = true
	}
	if utilize {
		spec.Engine.RecordUtilization = true
	}
	if metricsDir != "" {
		spec.Metrics.Enabled = true
	}
	if decisions {
		spec.Decisions.Enabled = true
	}
	if metricsDir != "" || decisions {
		spec.Normalize()
	}
	built, err := spec.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
		os.Exit(2)
	}
	built.Counters = engineCtrs
	if dumpTrace != "" {
		f, err := os.Create(dumpTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
			os.Exit(1)
		}
		if err := built.Trace.Save(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "palsim: dump-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "palsim: saved %d-job workload to %s\n", len(built.Trace.Jobs), dumpTrace)
	}
	res := throughStore(storeDir, built.Key(), "scenario "+spec.Name, built.Run)
	if metricsDir != "" {
		dumpMetrics(metricsDir, spec.Name, res, built.Key())
	}
	if asJSON {
		if err := export.ResultJSON(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	header := fmt.Sprintf("scenario=%s trace=%s jobs=%d cluster=%d GPUs policy=%s sched=%s lacross=%.2f key=%s",
		spec.Name, built.Trace.Name, len(built.Trace.Jobs), built.Topo.Size(),
		spec.Policy.Name, spec.Sched.Name, spec.Locality.Lacross, built.Key()[:12])
	printMetrics(header, res, events, utilize || spec.Engine.RecordUtilization)
}

// printMetrics renders the aggregate metric block shared by the
// flag-built and scenario paths.
func printMetrics(header string, res *sim.Result, events int, utilize bool) {
	jcts := res.JCTs()
	waits := res.Waits()
	fmt.Println(header)
	if res.Truncated {
		fmt.Printf("  TRUNCATED at %d rounds: %d jobs unfinished; metrics cover completed jobs only\n",
			res.Rounds, res.Unfinished)
	}
	fmt.Printf("  avg JCT      %10.1f s (%.2f h)\n", stats.Mean(jcts), stats.Mean(jcts)/3600)
	fmt.Printf("  p50 JCT      %10.1f s\n", stats.Percentile(jcts, 50))
	fmt.Printf("  p99 JCT      %10.1f s\n", stats.Percentile(jcts, 99))
	fmt.Printf("  mean wait    %10.1f s\n", stats.Mean(waits))
	fmt.Printf("  makespan     %10.1f s (%.2f h)\n", res.Makespan, res.Makespan/3600)
	fmt.Printf("  utilization  %10.2f%%\n", 100*res.Utilization)
	fmt.Printf("  rounds       %10d\n", res.Rounds)
	if events > 0 {
		fmt.Println("  events:")
		for i, ev := range res.Events {
			if i >= events {
				fmt.Printf("    ... (%d more)\n", len(res.Events)-i)
				break
			}
			fmt.Printf("    %s\n", ev)
		}
	}
	if utilize && len(res.UtilSeries) > 0 {
		fmt.Printf("  in-use (deciles):")
		n := len(res.UtilSeries)
		for d := 0; d < 10; d++ {
			sum, count := 0, 0
			for i := d * n / 10; i < (d+1)*n/10; i++ {
				sum += res.UtilSeries[i].InUse
				count++
			}
			if count > 0 {
				fmt.Printf(" %d", sum/count)
			}
		}
		fmt.Println()
	}
}

func policyByName(name string) (experiments.Policy, bool) {
	switch name {
	case "random-sticky":
		return experiments.RandomSticky, true
	case "random", "random-non-sticky":
		return experiments.RandomNonSticky, true
	case "gandiva", "packed-non-sticky":
		return experiments.Gandiva, true
	case "tiresias", "packed-sticky", "packed":
		return experiments.Tiresias, true
	case "pm-first", "pmfirst":
		return experiments.PMFirst, true
	case "pal":
		return experiments.PALPolicy, true
	}
	return 0, false
}
