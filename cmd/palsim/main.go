// Command palsim runs a single cluster-scheduling simulation with
// explicit knobs: trace family, cluster size, scheduler, placement policy,
// locality penalty. It prints the aggregate metrics the paper reports.
//
// Examples:
//
//	palsim -trace sia -workload 5 -policy pal -sched fifo
//	palsim -trace synergy -load 10 -jobs 800 -policy tiresias -lacross 1.7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		traceKind = flag.String("trace", "sia", "trace family: sia or synergy")
		workload  = flag.Int("workload", 1, "Sia-Philly workload index (1-8)")
		load      = flag.Float64("load", 10, "Synergy job arrival rate (jobs/hour)")
		jobs      = flag.Int("jobs", 800, "Synergy trace length")
		policy    = flag.String("policy", "pal", "placement policy: random-sticky, random, gandiva, tiresias, pm-first, pal")
		schedName = flag.String("sched", "fifo", "scheduling policy: fifo, las, srtf")
		nodes     = flag.Int("nodes", 0, "cluster nodes (default: 16 for sia, 64 for synergy)")
		lacross   = flag.Float64("lacross", 1.5, "inter-node locality penalty")
		perModel  = flag.Bool("per-model-lacross", false, "use per-model locality penalties (Table II)")
		seed      = flag.Uint64("seed", 0xE4B, "experiment seed")
		utilize   = flag.Bool("util", false, "print the GPUs-in-use series (deciles)")
		events    = flag.Int("events", 0, "print the first N lifecycle events")
		asJSON    = flag.Bool("json", false, "print aggregate metrics as JSON")
	)
	flag.Parse()

	pol, ok := policyByName(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "palsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	s := sched.ByName(*schedName)
	if s == nil {
		fmt.Fprintf(os.Stderr, "palsim: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}

	var (
		tr   *trace.Trace
		topo cluster.Topology
	)
	switch *traceKind {
	case "sia":
		tr = experiments.SiaTrace(*workload)
		topo = experiments.SiaTopology()
	case "synergy":
		params := trace.DefaultSynergyParams(*load)
		params.NumJobs = *jobs
		tr = trace.Synergy(params)
		topo = experiments.SynergyTopology()
	default:
		fmt.Fprintf(os.Stderr, "palsim: unknown trace family %q\n", *traceKind)
		os.Exit(2)
	}
	if *nodes > 0 {
		topo = cluster.Topology{NumNodes: *nodes, GPUsPerNode: experiments.GPUsPerNode}
	}

	spec := experiments.RunSpec{
		Trace:        tr,
		Topo:         topo,
		Sched:        s,
		Policy:       pol,
		Profile:      experiments.LonghornProfile(topo.Size()),
		Lacross:      *lacross,
		Seed:         *seed,
		RecordUtil:   *utilize,
		RecordEvents: *events > 0,
	}
	if *perModel {
		spec.ModelLacross = trace.LacrossByModel()
	}

	res, err := experiments.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
		os.Exit(1)
	}

	if *asJSON {
		if err := export.ResultJSON(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "palsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	jcts := res.JCTs()
	waits := res.Waits()
	fmt.Printf("trace=%s jobs=%d cluster=%d GPUs policy=%s sched=%s lacross=%.2f\n",
		tr.Name, len(tr.Jobs), topo.Size(), pol, s.Name(), *lacross)
	fmt.Printf("  avg JCT      %10.1f s (%.2f h)\n", stats.Mean(jcts), stats.Mean(jcts)/3600)
	fmt.Printf("  p50 JCT      %10.1f s\n", stats.Percentile(jcts, 50))
	fmt.Printf("  p99 JCT      %10.1f s\n", stats.Percentile(jcts, 99))
	fmt.Printf("  mean wait    %10.1f s\n", stats.Mean(waits))
	fmt.Printf("  makespan     %10.1f s (%.2f h)\n", res.Makespan, res.Makespan/3600)
	fmt.Printf("  utilization  %10.2f%%\n", 100*res.Utilization)
	fmt.Printf("  rounds       %10d\n", res.Rounds)
	if *events > 0 {
		fmt.Println("  events:")
		for i, ev := range res.Events {
			if i >= *events {
				fmt.Printf("    ... (%d more)\n", len(res.Events)-i)
				break
			}
			fmt.Printf("    %s\n", ev)
		}
	}
	if *utilize && len(res.UtilSeries) > 0 {
		fmt.Printf("  in-use (deciles):")
		n := len(res.UtilSeries)
		for d := 0; d < 10; d++ {
			sum, count := 0, 0
			for i := d * n / 10; i < (d+1)*n/10; i++ {
				sum += res.UtilSeries[i].InUse
				count++
			}
			if count > 0 {
				fmt.Printf(" %d", sum/count)
			}
		}
		fmt.Println()
	}
}

func policyByName(name string) (experiments.Policy, bool) {
	switch name {
	case "random-sticky":
		return experiments.RandomSticky, true
	case "random", "random-non-sticky":
		return experiments.RandomNonSticky, true
	case "gandiva", "packed-non-sticky":
		return experiments.Gandiva, true
	case "tiresias", "packed-sticky", "packed":
		return experiments.Tiresias, true
	case "pm-first", "pmfirst":
		return experiments.PMFirst, true
	case "pal":
		return experiments.PALPolicy, true
	}
	return 0, false
}
