// Package kmeans implements the K-Means clustering the paper uses in two
// places: 1-D clustering of per-GPU PM scores into variability bins
// (§III-B, Fig. 5) and 2-D clustering of applications in the
// DRAMUtil × PeakFUUtil space (§III-A, Fig. 3). It also implements the
// silhouette-score K selection with >3σ outlier separation described in
// §III-B.
//
// The implementation is deterministic: initial centroids are chosen by a
// k-means++-style farthest-point heuristic seeded from the data itself, so
// the same input always yields the same clustering with no RNG required.
package kmeans

import (
	"math"
	"sort"
)

// maxIterations bounds Lloyd's algorithm. K-Means on the small inputs used
// here (hundreds of points) converges in a handful of iterations; the cap
// exists only as a safety net.
const maxIterations = 200

// Result holds the outcome of a clustering run.
type Result struct {
	// Centroids holds K centroid positions. For 1-D clustering they are
	// returned sorted ascending so that bin 0 is the best-performing
	// (lowest PM-score) bin.
	Centroids [][]float64
	// Assign maps each input point index to its centroid index.
	Assign []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
}

// K returns the number of clusters in the result.
func (r *Result) K() int { return len(r.Centroids) }

// Sizes returns the number of points assigned to each cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, len(r.Centroids))
	for _, a := range r.Assign {
		sizes[a]++
	}
	return sizes
}

// dist2 returns the squared Euclidean distance between points a and b.
func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Cluster runs K-Means (Lloyd's algorithm) on points with k clusters.
// Points must be non-empty and share a dimensionality; k must satisfy
// 1 <= k <= len(points). Initialization is a deterministic farthest-point
// sweep (the first centroid is the point closest to the data mean), which
// makes results reproducible without a seed.
func Cluster(points [][]float64, k int) *Result {
	n := len(points)
	if n == 0 {
		return &Result{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	dim := len(points[0])

	centroids := initFarthestPoint(points, k)
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}

	for iter := 0; iter < maxIterations; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := dist2(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for c := range centroids {
			counts[c] = 0
			for d := 0; d < dim; d++ {
				sums[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				sums[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// current centroid assignment, keeping K clusters alive.
				centroids[c] = farthestPoint(points, centroids, assign)
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}

	res := &Result{Centroids: centroids, Assign: assign}
	for i, p := range points {
		res.Inertia += dist2(p, centroids[assign[i]])
	}
	return res
}

// initFarthestPoint picks k deterministic starting centroids: the point
// nearest the global mean, then repeatedly the point farthest from all
// chosen centroids.
func initFarthestPoint(points [][]float64, k int) [][]float64 {
	n := len(points)
	dim := len(points[0])
	mean := make([]float64, dim)
	for _, p := range points {
		for d := 0; d < dim; d++ {
			mean[d] += p[d]
		}
	}
	for d := 0; d < dim; d++ {
		mean[d] /= float64(n)
	}
	first, firstD := 0, math.Inf(1)
	for i, p := range points {
		if d := dist2(p, mean); d < firstD {
			first, firstD = i, d
		}
	}
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, clone(points[first]))
	minD := make([]float64, n)
	for i, p := range points {
		minD[i] = dist2(p, centroids[0])
	}
	for len(centroids) < k {
		far, farD := 0, -1.0
		for i := range points {
			if minD[i] > farD {
				far, farD = i, minD[i]
			}
		}
		c := clone(points[far])
		centroids = append(centroids, c)
		for i, p := range points {
			if d := dist2(p, c); d < minD[i] {
				minD[i] = d
			}
		}
	}
	return centroids
}

// farthestPoint returns a copy of the point with the greatest distance to
// its assigned centroid (used to revive empty clusters).
func farthestPoint(points [][]float64, centroids [][]float64, assign []int) []float64 {
	far, farD := 0, -1.0
	for i, p := range points {
		if d := dist2(p, centroids[assign[i]]); d > farD {
			far, farD = i, d
		}
	}
	return clone(points[far])
}

func clone(p []float64) []float64 { return append([]float64(nil), p...) }

// Cluster1D clusters scalar values into k bins and returns centroids
// sorted ascending with assignments renumbered to match. This is the form
// the PM-score binning consumes: bin 0 is the fastest (lowest normalized
// runtime) group of GPUs.
func Cluster1D(values []float64, k int) *Result {
	points := make([][]float64, len(values))
	for i, v := range values {
		points[i] = []float64{v}
	}
	res := Cluster(points, k)
	sortResult1D(res)
	return res
}

// sortResult1D reorders centroids ascending and renumbers assignments.
func sortResult1D(res *Result) {
	k := len(res.Centroids)
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return res.Centroids[order[a]][0] < res.Centroids[order[b]][0]
	})
	remap := make([]int, k)
	newCentroids := make([][]float64, k)
	for newIdx, oldIdx := range order {
		remap[oldIdx] = newIdx
		newCentroids[newIdx] = res.Centroids[oldIdx]
	}
	res.Centroids = newCentroids
	for i, a := range res.Assign {
		res.Assign[i] = remap[a]
	}
}

// Centroids1D extracts the scalar centroid values of a 1-D clustering.
func Centroids1D(res *Result) []float64 {
	out := make([]float64, len(res.Centroids))
	for i, c := range res.Centroids {
		out[i] = c[0]
	}
	return out
}
