package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCluster1DSeparated(t *testing.T) {
	// Two well-separated blobs.
	vals := []float64{1.0, 1.1, 0.9, 1.05, 5.0, 5.1, 4.9}
	res := Cluster1D(vals, 2)
	cents := Centroids1D(res)
	if len(cents) != 2 {
		t.Fatalf("K = %d, want 2", len(cents))
	}
	if !(cents[0] > 0.9 && cents[0] < 1.1) || !(cents[1] > 4.8 && cents[1] < 5.2) {
		t.Errorf("centroids = %v", cents)
	}
	// Ascending order and matching assignments.
	for i, v := range vals {
		wantBin := 0
		if v > 3 {
			wantBin = 1
		}
		if res.Assign[i] != wantBin {
			t.Errorf("value %v assigned to bin %d", v, res.Assign[i])
		}
	}
}

func TestClusterCentroidsSorted(t *testing.T) {
	r := rng.New(5)
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = r.Float64() * 10
	}
	for k := 2; k <= 6; k++ {
		res := Cluster1D(vals, k)
		cents := Centroids1D(res)
		for i := 1; i < len(cents); i++ {
			if cents[i] < cents[i-1] {
				t.Fatalf("k=%d centroids not ascending: %v", k, cents)
			}
		}
	}
}

// TestNearestCentroidProperty: every point must be assigned to its nearest
// centroid (the defining K-Means invariant).
func TestNearestCentroidProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(80)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 100
		}
		k := 2 + r.Intn(5)
		res := Cluster1D(vals, k)
		cents := Centroids1D(res)
		for i, v := range vals {
			dAssigned := math.Abs(v - cents[res.Assign[i]])
			for _, c := range cents {
				if math.Abs(v-c) < dAssigned-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCentroidIsMeanProperty: each centroid equals the mean of its members.
func TestCentroidIsMeanProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 10
		}
		res := Cluster1D(vals, 3)
		cents := Centroids1D(res)
		sums := make([]float64, len(cents))
		counts := make([]int, len(cents))
		for i, v := range vals {
			sums[res.Assign[i]] += v
			counts[res.Assign[i]]++
		}
		for c := range cents {
			if counts[c] == 0 {
				continue
			}
			if math.Abs(cents[c]-sums[c]/float64(counts[c])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClusterDeterministic(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	a := Cluster1D(vals, 3)
	b := Cluster1D(vals, 3)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("clustering not deterministic")
		}
	}
}

func TestClusterEdgeCases(t *testing.T) {
	if res := Cluster(nil, 3); res.K() != 0 {
		t.Error("empty input should give empty result")
	}
	// k > n clamps to n.
	res := Cluster1D([]float64{1, 2}, 5)
	if res.K() != 2 {
		t.Errorf("K = %d, want clamped 2", res.K())
	}
	// k < 1 clamps to 1.
	res = Cluster1D([]float64{1, 2, 3}, 0)
	if res.K() != 1 {
		t.Errorf("K = %d, want 1", res.K())
	}
	// Identical values: all in one populated cluster, no NaNs.
	res = Cluster1D([]float64{2, 2, 2, 2}, 2)
	for _, c := range Centroids1D(res) {
		if math.IsNaN(c) {
			t.Error("NaN centroid on constant input")
		}
	}
}

func TestSizes(t *testing.T) {
	res := Cluster1D([]float64{1, 1, 1, 10}, 2)
	sizes := res.Sizes()
	if sizes[0] != 3 || sizes[1] != 1 {
		t.Errorf("Sizes = %v", sizes)
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	r := rng.New(77)
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = r.Float64() * 50
	}
	prev := math.Inf(1)
	for k := 1; k <= 5; k++ {
		res := Cluster1D(vals, k)
		if res.Inertia > prev+1e-9 {
			t.Errorf("inertia increased from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestSilhouetteSeparatedVsOverlapping(t *testing.T) {
	separated := []float64{1, 1.01, 0.99, 10, 10.01, 9.99}
	resSep := Cluster1D(separated, 2)
	sSep := Silhouette1D(separated, resSep)
	if sSep < 0.9 {
		t.Errorf("separated silhouette = %v, want ~1", sSep)
	}
	overlapping := []float64{1, 2, 3, 4, 5, 6}
	resOver := Cluster1D(overlapping, 2)
	sOver := Silhouette1D(overlapping, resOver)
	if sOver >= sSep {
		t.Errorf("overlapping silhouette %v should be below separated %v", sOver, sSep)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	if s := Silhouette1D(nil, &Result{}); s != 0 {
		t.Errorf("empty silhouette = %v", s)
	}
	res := Cluster1D([]float64{1, 2, 3}, 1)
	if s := Silhouette1D([]float64{1, 2, 3}, res); s != 0 {
		t.Errorf("K=1 silhouette = %v, want 0", s)
	}
}

func TestSplitOutliers(t *testing.T) {
	// 20 values near 1.0 plus one extreme.
	vals := make([]float64, 21)
	for i := 0; i < 20; i++ {
		vals[i] = 1.0 + float64(i%5)*0.01
	}
	vals[20] = 50
	in, out := SplitOutliers(vals)
	if len(out) != 1 || out[0] != 20 {
		t.Errorf("outliers = %v", out)
	}
	if len(in) != 20 {
		t.Errorf("inliers = %d", len(in))
	}
}

func TestSelectKBimodal(t *testing.T) {
	var vals []float64
	r := rng.New(9)
	for i := 0; i < 50; i++ {
		vals = append(vals, 0.95+r.Float64()*0.02)
	}
	for i := 0; i < 50; i++ {
		vals = append(vals, 1.10+r.Float64()*0.02)
	}
	sel := SelectK(vals)
	if sel.K != 2 {
		t.Errorf("SelectK on bimodal = %d, want 2 (sweep %v)", sel.K, sel.Sweep)
	}
	if sel.Score < 0.8 {
		t.Errorf("silhouette = %v, want high", sel.Score)
	}
}

func TestSelectKRange(t *testing.T) {
	r := rng.New(10)
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = r.LogNormal(0, 0.1)
	}
	sel := SelectK(vals)
	if sel.K < MinK || sel.K > MaxK {
		t.Errorf("K = %d outside [%d,%d]", sel.K, MinK, MaxK)
	}
	for k := range sel.Sweep {
		if k < MinK || k > MaxK {
			t.Errorf("sweep tried K=%d", k)
		}
	}
}

func TestSelectKDegenerate(t *testing.T) {
	sel := SelectK([]float64{1, 1, 1})
	if sel.K != 1 {
		t.Errorf("constant data K = %d, want 1", sel.K)
	}
}

func TestBinCoversAllIndices(t *testing.T) {
	r := rng.New(11)
	vals := make([]float64, 128)
	for i := range vals {
		vals[i] = r.LogNormal(0, 0.08)
	}
	vals[0] = 3.5 // force an outlier
	b := Bin(vals)
	if len(b.BinOf) != len(vals) {
		t.Fatalf("BinOf covers %d of %d", len(b.BinOf), len(vals))
	}
	for i, bin := range b.BinOf {
		if bin < 0 || bin >= b.NumBins() {
			t.Fatalf("value %d in invalid bin %d", i, bin)
		}
	}
	// Bins ascending.
	for i := 1; i < len(b.Scores); i++ {
		if b.Scores[i] < b.Scores[i-1] {
			t.Fatalf("bin scores not ascending: %v", b.Scores)
		}
	}
}

func TestBinOutlierExactScore(t *testing.T) {
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = 1.0 + float64(i%7)*0.005
	}
	vals[59] = 7.77
	b := Bin(vals)
	if got := b.ScoreOf(59); got != 7.77 {
		t.Errorf("outlier score = %v, want its exact value", got)
	}
}

// TestBinScoreWithinBinRangeProperty: the representative score of an
// inlier bin must lie within the range of its members' values.
func TestBinScoreWithinBinRangeProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		vals := make([]float64, 80)
		for i := range vals {
			vals[i] = r.LogNormal(0, 0.1)
		}
		b := Bin(vals)
		lo := make([]float64, b.NumBins())
		hi := make([]float64, b.NumBins())
		for i := range lo {
			lo[i], hi[i] = math.Inf(1), math.Inf(-1)
		}
		for i, bin := range b.BinOf {
			if vals[i] < lo[bin] {
				lo[bin] = vals[i]
			}
			if vals[i] > hi[bin] {
				hi[bin] = vals[i]
			}
		}
		for bin, s := range b.Scores {
			if s < lo[bin]-1e-9 || s > hi[bin]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
