package kmeans

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// SelectionRange is the K sweep the paper uses when choosing the number of
// PM-score bins: K from 2 to 11 (§III-B).
const (
	MinK = 2
	MaxK = 11
)

// Selection is the outcome of the silhouette-based K selection with >3σ
// outlier separation described in §III-B. Inliers and outliers are
// clustered independently; extreme outliers are assigned their own exact
// scores (each outlier value forms its own bin).
type Selection struct {
	K          int     // chosen K for the inlier clustering
	Score      float64 // silhouette score at the chosen K
	Inliers    *Result // clustering of inlier values
	InlierIdx  []int   // indices (into the original data) of inliers
	OutlierIdx []int   // indices of >3σ outliers
	// Sweep records the silhouette score obtained for every K tried, for
	// inspection and the ablation bench.
	Sweep map[int]float64
}

// SplitOutliers partitions values into inliers and >3σ outliers (indices
// into values). The paper removes extreme outliers before computing
// silhouette scores because they otherwise dominate the coefficients.
func SplitOutliers(values []float64) (inliers, outliers []int) {
	mean := stats.Mean(values)
	sd := stats.StdDev(values)
	for i, v := range values {
		if sd > 0 && math.Abs(v-mean) > 3*sd {
			outliers = append(outliers, i)
		} else {
			inliers = append(inliers, i)
		}
	}
	return inliers, outliers
}

// SelectK sweeps K over [MinK, min(MaxK, n-1)] on the >3σ-trimmed values,
// picks the K whose mean silhouette score is closest to +1, and returns
// the resulting clustering together with the outlier indices. If the data
// has fewer than MinK+1 distinct inliers the sweep degenerates to a single
// cluster.
func SelectK(values []float64) Selection {
	inIdx, outIdx := SplitOutliers(values)
	inVals := make([]float64, len(inIdx))
	for i, idx := range inIdx {
		inVals[i] = values[idx]
	}

	sel := Selection{
		InlierIdx:  inIdx,
		OutlierIdx: outIdx,
		Sweep:      make(map[int]float64),
	}

	distinct := countDistinct(inVals)
	maxK := MaxK
	if distinct-1 < maxK {
		maxK = distinct - 1
	}
	if maxK < MinK {
		sel.K = 1
		sel.Inliers = Cluster1D(inVals, 1)
		return sel
	}

	bestK, bestScore := MinK, math.Inf(-1)
	var bestRes *Result
	for k := MinK; k <= maxK; k++ {
		res := Cluster1D(inVals, k)
		score := Silhouette1D(inVals, res)
		sel.Sweep[k] = score
		if score > bestScore {
			bestK, bestScore, bestRes = k, score, res
		}
	}
	sel.K = bestK
	sel.Score = bestScore
	sel.Inliers = bestRes
	return sel
}

// countDistinct returns the number of distinct values in vs.
func countDistinct(vs []float64) int {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			n++
		}
	}
	return n
}

// Binned is the final per-GPU binning the placement policies consume:
// each GPU index maps to a bin, and each bin has a representative score
// (the centroid for inlier bins, the exact value for outlier bins). Bins
// are sorted ascending by score, so bin 0 holds the best GPUs.
type Binned struct {
	Scores []float64 // representative PM score per bin, ascending
	BinOf  []int     // bin index per original value index
}

// Bin runs the full §III-B pipeline on raw per-GPU scores: outlier
// separation, silhouette K selection, clustering, and exact-score bins for
// the outliers. The returned binning covers every input index.
func Bin(values []float64) *Binned {
	sel := SelectK(values)

	type bin struct {
		score float64
		idxs  []int
	}
	var bins []bin

	if sel.Inliers != nil && len(sel.InlierIdx) > 0 {
		cents := Centroids1D(sel.Inliers)
		group := make([][]int, len(cents))
		for i, a := range sel.Inliers.Assign {
			group[a] = append(group[a], sel.InlierIdx[i])
		}
		for c, idxs := range group {
			if len(idxs) == 0 {
				continue
			}
			bins = append(bins, bin{score: cents[c], idxs: idxs})
		}
	}
	// Each distinct outlier value becomes its own bin with its exact score
	// ("these extreme outliers are assigned their own PM-score equal to the
	// GPU's normalized performance").
	outByVal := make(map[float64][]int)
	for _, idx := range sel.OutlierIdx {
		outByVal[values[idx]] = append(outByVal[values[idx]], idx)
	}
	for v, idxs := range outByVal {
		bins = append(bins, bin{score: v, idxs: idxs})
	}

	sort.Slice(bins, func(a, b int) bool { return bins[a].score < bins[b].score })

	out := &Binned{
		Scores: make([]float64, len(bins)),
		BinOf:  make([]int, len(values)),
	}
	for b, bn := range bins {
		out.Scores[b] = bn.score
		for _, idx := range bn.idxs {
			out.BinOf[idx] = b
		}
	}
	return out
}

// ScoreOf returns the binned PM score of value index i.
func (b *Binned) ScoreOf(i int) float64 { return b.Scores[b.BinOf[i]] }

// NumBins returns the number of bins.
func (b *Binned) NumBins() int { return len(b.Scores) }
