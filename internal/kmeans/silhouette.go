package kmeans

import "math"

// Silhouette returns the mean silhouette coefficient of a clustering over
// the given points: for each point, (b - a) / max(a, b) where a is the
// mean distance to points in its own cluster and b is the smallest mean
// distance to points of any other cluster. Values close to +1 indicate
// distinct, well-separated clusters (Rousseeuw 1987, the method the paper
// cites for selecting K).
//
// Points in singleton clusters contribute 0, following the standard
// convention. Returns 0 if fewer than 2 clusters are populated.
func Silhouette(points [][]float64, res *Result) float64 {
	n := len(points)
	if n == 0 || res.K() < 2 {
		return 0
	}
	sizes := res.Sizes()
	populated := 0
	for _, s := range sizes {
		if s > 0 {
			populated++
		}
	}
	if populated < 2 {
		return 0
	}

	var total float64
	for i, p := range points {
		own := res.Assign[i]
		if sizes[own] <= 1 {
			continue // silhouette of a singleton is defined as 0
		}
		// Mean distance to each cluster.
		sum := make([]float64, res.K())
		for j, q := range points {
			if i == j {
				continue
			}
			sum[res.Assign[j]] += math.Sqrt(dist2(p, q))
		}
		a := sum[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := range sum {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := sum[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		denom := math.Max(a, b)
		if denom > 0 {
			total += (b - a) / denom
		}
	}
	return total / float64(n)
}

// Silhouette1D is Silhouette for scalar data.
func Silhouette1D(values []float64, res *Result) float64 {
	points := make([][]float64, len(values))
	for i, v := range values {
		points[i] = []float64{v}
	}
	return Silhouette(points, res)
}
