package kmeans_test

import (
	"fmt"

	"repro/internal/kmeans"
)

// ExampleBin shows the §III-B binning pipeline on a small PM-score
// sample: a tight near-median population plus one extreme outlier. The
// outlier is separated (>3σ) and keeps its exact score as a singleton
// bin; the inliers are clustered with a silhouette-selected K.
func ExampleBin() {
	scores := []float64{
		0.95, 0.96, 0.97, 1.00, 1.00, 1.01, 1.02, 1.03,
		1.10, 1.11, 1.12, 1.13,
		3.50, // the straggler GPU
	}
	b := kmeans.Bin(scores)
	for i, s := range b.Scores {
		count := 0
		for _, bin := range b.BinOf {
			if bin == i {
				count++
			}
		}
		fmt.Printf("bin %d: score %.3f (%d GPUs)\n", i, s, count)
	}
	fmt.Printf("outlier keeps its exact score: %.2f\n", b.ScoreOf(12))
	// Output:
	// bin 0: score 0.993 (8 GPUs)
	// bin 1: score 1.115 (4 GPUs)
	// bin 2: score 3.500 (1 GPUs)
	// outlier keeps its exact score: 3.50
}

// ExampleCluster1D clusters scalar data into two sorted bins.
func ExampleCluster1D() {
	res := kmeans.Cluster1D([]float64{1.0, 1.1, 0.9, 5.0, 5.1, 4.9}, 2)
	fmt.Printf("centroids: %.2f and %.2f\n",
		res.Centroids[0][0], res.Centroids[1][0])
	fmt.Printf("sizes: %v\n", res.Sizes())
	// Output:
	// centroids: 1.00 and 5.00
	// sizes: [3 3]
}
