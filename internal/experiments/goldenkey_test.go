package experiments

import (
	"testing"
)

// goldenRunSpecKey pins RunSpec.Key() for the canonical Fig. 11 cell
// (Sia workload 1, PAL under FIFO, 64-GPU Longhorn cluster at the
// default penalties and seed). Every field of RunSpec feeds this hash —
// trace content, profile content, topology, scheduler, policy, penalty,
// seed, window, recording flags — so silent drift in any of their
// encodings (the stale-cache bug class) fails here loudly. If you
// *deliberately* changed the encoding, a generator, or a seed constant:
// bump the version tag in RunSpec.Key and update the constant below in
// the same commit.
const goldenRunSpecKey = "37822fd00dcea9d2ab3ffdcd45b284483767a788a534d817451021e9fd5f88d2"

func TestGoldenRunSpecKey(t *testing.T) {
	spec := RunSpec{
		Trace:   SiaTrace(1),
		Topo:    SiaTopology(),
		Sched:   FIFOSched,
		Policy:  PALPolicy,
		Profile: LonghornProfile(64),
		Lacross: 1.5,
		Seed:    ExperimentSeed,
	}
	if got := spec.Key(); got != goldenRunSpecKey {
		t.Errorf("RunSpec key drifted:\n  got  %s\n  want %s\n"+
			"If this change is intentional, bump the version tag in RunSpec.Key and update goldenRunSpecKey.",
			got, goldenRunSpecKey)
	}

	// The golden value must also be sensitive: flipping the new
	// RecordMetrics flag has to move the key.
	spec.RecordMetrics = true
	if spec.Key() == goldenRunSpecKey {
		t.Error("RecordMetrics does not feed the cache key (stale-cache hazard)")
	}
}
