package experiments

import (
	"testing"
)

// goldenRunSpecKey pins RunSpec.Key() for the canonical Fig. 11 cell
// (Sia workload 1, PAL under FIFO, 64-GPU Longhorn cluster at the
// default penalties and seed). Every field of RunSpec feeds this hash —
// trace content, profile content, topology, scheduler, policy, penalty,
// seed, window, recording flags — so silent drift in any of their
// encodings (the stale-cache bug class) fails here loudly. If you
// *deliberately* changed the encoding, a generator, or a seed constant:
// bump the version tag in RunSpec.Key and update the constant below in
// the same commit.
const goldenRunSpecKey = "009fbdacd53d0a9ef7452f6b4cd1fbb4ebabf4f22a868b3c1f57cdcc03e11271"

func TestGoldenRunSpecKey(t *testing.T) {
	spec := RunSpec{
		Trace:   SiaTrace(1),
		Topo:    SiaTopology(),
		Sched:   FIFOSched,
		Policy:  PALPolicy,
		Profile: LonghornProfile(64),
		Lacross: 1.5,
		Seed:    ExperimentSeed,
	}
	if got := spec.Key(); got != goldenRunSpecKey {
		t.Errorf("RunSpec key drifted:\n  got  %s\n  want %s\n"+
			"If this change is intentional, bump the version tag in RunSpec.Key and update goldenRunSpecKey.",
			got, goldenRunSpecKey)
	}

	// The golden value must also be sensitive: flipping the recording
	// flags has to move the key.
	spec.RecordMetrics = true
	if spec.Key() == goldenRunSpecKey {
		t.Error("RecordMetrics does not feed the cache key (stale-cache hazard)")
	}
	spec.RecordMetrics = false
	spec.RecordDecisions = true
	if spec.Key() == goldenRunSpecKey {
		t.Error("RecordDecisions does not feed the cache key (stale-cache hazard)")
	}
}
