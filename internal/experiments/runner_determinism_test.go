package experiments

import (
	"bytes"
	"testing"

	"repro/internal/runner"
)

// withPool runs fn with a freshly-configured shared pool and restores
// the previous one afterwards.
func withPool(t *testing.T, workers int, fn func()) {
	t.Helper()
	prev := SetPool(runner.NewPool(workers, runner.NewResultCache(256)))
	defer SetPool(prev)
	fn()
}

// TestRunnerDeterminismSerialVsParallel is the acceptance check for the
// orchestration layer: for a fixed spec list, a 1-worker pool and an
// 8-worker pool must yield byte-identical exported tables. Each pool
// gets a fresh cache so the parallel pass cannot trivially replay the
// serial pass's results. Run under -race in CI, this also doubles as the
// shared-state safety check for concurrent simulations.
func TestRunnerDeterminismSerialVsParallel(t *testing.T) {
	// A trimmed scale keeps the doubled workload (every table runs twice)
	// inside unit-test budget while still covering both cluster setups,
	// all six policies, a penalty sweep and a load sweep.
	scale := QuickScale()
	scale.SiaTraces = []int{1, 3}
	scale.SiaPenalties = []float64{1.0, 2.0}
	scale.SynergyLoads = []float64{8}

	render := func(workers int) []byte {
		var buf bytes.Buffer
		withPool(t, workers, func() {
			for _, name := range []string{"fig11", "fig13", "fig14"} {
				table, err := RunByName(name, scale)
				if err != nil {
					t.Fatalf("workers=%d %s: %v", workers, name, err)
				}
				buf.WriteString(table.String())
			}
		})
		return buf.Bytes()
	}

	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("1-worker and 8-worker exports differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestRunSpecKeyDiscriminates: the content-addressed key must separate
// configurations that the old name-string caches conflated — different
// penalties, seeds, scales and profiles — and must be stable for equal
// content even across regenerated traces.
func TestRunSpecKeyDiscriminates(t *testing.T) {
	base := func() RunSpec {
		return RunSpec{
			Trace:   SiaTrace(1),
			Topo:    SiaTopology(),
			Sched:   FIFOSched,
			Policy:  PALPolicy,
			Profile: LonghornProfile(64),
			Lacross: 1.5,
			Seed:    ExperimentSeed,
		}
	}
	// Regenerated traces and shared profiles hash by content: same key.
	if base().Key() != base().Key() {
		t.Fatal("equal specs have different keys")
	}
	mutations := map[string]func(*RunSpec){
		"penalty": func(s *RunSpec) { s.Lacross = 2.0 },
		"seed":    func(s *RunSpec) { s.Seed++ },
		"policy":  func(s *RunSpec) { s.Policy = Tiresias },
		"sched":   func(s *RunSpec) { s.Sched = LASSched },
		"trace":   func(s *RunSpec) { s.Trace = SiaTrace(2) },
		"profile": func(s *RunSpec) { s.Profile = LonghornProfile(128) },
		"view":    func(s *RunSpec) { s.ProfiledView = TestbedProfile() },
		"measure": func(s *RunSpec) { s.MeasureFirst = 10 },
		"round":   func(s *RunSpec) { s.RoundSec = 60 },
		"util":    func(s *RunSpec) { s.RecordUtil = true },
		"modelL":  func(s *RunSpec) { s.ModelLacross = map[string]float64{"vgg19": 2.0} },
	}
	ref := base().Key()
	for name, mutate := range mutations {
		s := base()
		mutate(&s)
		if s.Key() == ref {
			t.Errorf("mutating %s does not change the key (stale-cache hazard)", name)
		}
	}
}

// TestSiaBaselineCacheKeyedOnScale is the regression test for the old
// siaCache hazard: the same process asking for two different penalty/
// trace configurations must get results for each configuration, not a
// stale replay of the first. RunSiaBaseline on disjoint trace sets must
// produce runs for exactly the requested workloads.
func TestSiaBaselineCacheKeyedOnScale(t *testing.T) {
	withPool(t, 2, func() {
		a := QuickScale()
		a.SiaTraces = []int{1}
		b := QuickScale()
		b.SiaTraces = []int{3}

		runsA, err := RunSiaBaseline(a)
		if err != nil {
			t.Fatal(err)
		}
		runsB, err := RunSiaBaseline(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(runsA) != 1 || runsA[0].WorkloadIdx != 1 {
			t.Fatalf("scale A returned %+v", runsA)
		}
		if len(runsB) != 1 || runsB[0].WorkloadIdx != 3 {
			t.Fatalf("scale B returned runs for the wrong workloads: %+v", runsB)
		}
		// Workload 3 under PAL must differ from workload 1 under PAL —
		// the old name-keyed cache could alias them under a matching key.
		if runsA[0].Results[PALPolicy] == runsB[0].Results[PALPolicy] {
			t.Error("different scales shared one cached result")
		}
	})
}

// TestRunAllMatchesSequentialRun: RunAll must agree with a plain Run
// loop result-for-result.
func TestRunAllMatchesSequentialRun(t *testing.T) {
	scale := QuickScale()
	scale.SiaTraces = []int{5}
	specs := SiaBaselineSpecs(scale)

	var loop []float64
	for _, spec := range specs {
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		loop = append(loop, res.Makespan)
	}
	withPool(t, 4, func() {
		results, err := RunAll(scale.ctx(), "test", specs)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if res.Makespan != loop[i] {
				t.Errorf("spec %d: pool makespan %v != sequential %v", i, res.Makespan, loop[i])
			}
		}
	})
}
