package experiments

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// The testbed experiment (§V-A, Figs. 9-10, Table IV) compares PAL to
// Tiresias on the "physical" 64-GPU Frontera cluster and in simulation.
// We cannot run on Frontera; the substitution (DESIGN.md) models the
// mechanism the paper identified for the cluster/sim gap: the profiled
// PM scores of node 0 for Class A understated the penalties jobs actually
// experienced by ~8x. The "cluster" run therefore executes against an
// inflated true profile while the policies keep consulting the stale
// profiled view; the "simulation" run uses the accurate profile for both.

// staleFactor is the profiled-vs-actual discrepancy for the mis-profiled
// node-0 GPUs (§V-A reports ~8x for the paper's testbed; we calibrate the
// severity — factor and number of affected GPUs — to land in the same
// cluster-to-sim gap regime of ~10-15%, since the full 8x on a whole node
// under PAL's class-A-first placement amplifies far beyond what the
// paper's cluster experienced).
const (
	staleFactor   = 3.0
	staleGPUCount = 2 // GPUs of node 0 whose Class-A profile is stale
)

// testbedTruthMemo keeps one shared (view, truth) pair: fig09, fig10
// and table04 each assemble several cells, and a fresh truth pointer per
// call would defeat the per-pointer profile-digest memo (re-hashing
// identical content and growing the memo unboundedly).
var testbedTruthMemo runner.Memo[string, [2]*vprof.Profile]

// testbedTruth returns (profiledView, clusterTruth): the stale view the
// policies see and the inflated reality the "cluster" run charges.
func testbedTruth() (*vprof.Profile, *vprof.Profile) {
	pair := testbedTruthMemo.Get("testbed-truth", func() [2]*vprof.Profile {
		view := TestbedProfile()
		// The cluster truth inflates the stale GPUs' Class A scores by
		// staleFactor; equivalently, the profiled view understates them.
		// PerturbStaleGPUs divides, so apply it in reverse.
		gpus := make([]int, staleGPUCount)
		for i := range gpus {
			gpus[i] = i // node 0 hosts GPUs 0..GPUsPerNode-1
		}
		return [2]*vprof.Profile{view, vprof.PerturbStaleGPUs(view, vprof.ClassA, gpus, 1.0/staleFactor)}
	})
	return pair[0], pair[1]
}

// testbedSpec assembles one (policy, mode) cell of the testbed
// comparison. cluster=true charges the inflated truth; cluster=false is
// the pure simulation.
func testbedSpec(pol Policy, clusterMode bool) RunSpec {
	view, truth := testbedTruth()
	profile := view
	if clusterMode {
		profile = truth
	}
	return RunSpec{
		Trace:        SiaTrace(1),
		Topo:         SiaTopology(),
		Sched:        LASSched, // the paper uses the Tiresias (LAS) scheduler on Frontera
		Policy:       pol,
		Profile:      profile,
		ProfiledView: view,
		Lacross:      1.5,
		ModelLacross: trace.LacrossByModel(),
		Seed:         ExperimentSeed ^ 0x7E57,
	}
}

// runTestbed executes one testbed cell through the pool: fig09, fig10
// and table04 all consume the same four (policy, mode) configurations,
// so the content-addressed cache collapses their twelve requests into
// four simulations, and Scale.Ctx cancellation reaches them.
func runTestbed(scale Scale, pol Policy, clusterMode bool) (*sim.Result, error) {
	results, err := RunAll(scale.ctx(), "testbed", []RunSpec{testbedSpec(pol, clusterMode)})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// Table04 reproduces Table IV: average JCT on the physical cluster and in
// simulation for Tiresias and PAL, the percentage improvement, and the
// cluster-to-simulation difference.
func Table04(scale Scale) (*Table, error) {
	t := &Table{
		Name:   "table04",
		Title:  "Physical cluster & simulation avg JCT (hours), Tiresias vs PAL",
		Header: []string{"policy", "cluster", "simulation", "cluster-to-sim diff"},
	}
	vals := map[Policy][2]float64{}
	for _, pol := range []Policy{Tiresias, PALPolicy} {
		clusterRes, err := runTestbed(scale, pol, true)
		if err != nil {
			return nil, fmt.Errorf("table04 cluster %s: %w", pol, err)
		}
		simRes, err := runTestbed(scale, pol, false)
		if err != nil {
			return nil, fmt.Errorf("table04 sim %s: %w", pol, err)
		}
		c := stats.Mean(clusterRes.JCTs())
		s := stats.Mean(simRes.JCTs())
		vals[pol] = [2]float64{c, s}
		t.AddRow(pol.String(), Hours(c), Hours(s), Pct((c-s)/s))
	}
	t.AddRow("% improvement",
		Pct(stats.Improvement(vals[Tiresias][0], vals[PALPolicy][0])),
		Pct(stats.Improvement(vals[Tiresias][1], vals[PALPolicy][1])),
		"")
	t.Note("paper: Tiresias 1.76h cluster / 1.56h sim (11%%); PAL 1.35h / 1.16h (14%%); improvement 24%% cluster, 26%% sim")
	return t, nil
}

// Fig09 reproduces Figure 9: the cumulative JCT distributions of the
// cluster and simulation runs for both policies, reported at the CDF
// fractions the figure spans.
func Fig09(scale Scale) (*Table, error) {
	t := &Table{
		Name:   "fig09",
		Title:  "JCT CDF (hours at fraction of jobs), cluster vs simulation",
		Header: []string{"series", "p10", "p25", "p50", "p75", "p90", "p99"},
	}
	series := []struct {
		name        string
		pol         Policy
		clusterMode bool
	}{
		{"Tiresias (cluster)", Tiresias, true},
		{"Tiresias (simulation)", Tiresias, false},
		{"PAL (cluster)", PALPolicy, true},
		{"PAL (simulation)", PALPolicy, false},
	}
	for _, s := range series {
		res, err := runTestbed(scale, s.pol, s.clusterMode)
		if err != nil {
			return nil, fmt.Errorf("fig09 %s: %w", s.name, err)
		}
		jcts := res.JCTs()
		row := []string{s.name}
		for _, p := range []float64{10, 25, 50, 75, 90, 99} {
			row = append(row, Hours(stats.Percentile(jcts, p)))
		}
		t.AddRow(row...)
	}
	t.Note("paper: cluster and simulation CDFs align fairly well for both policies; PAL's CDF sits left of Tiresias's")
	return t, nil
}

// Fig10 reproduces Figure 10: JCT boxplots for the four testbed series.
func Fig10(scale Scale) (*Table, error) {
	t := &Table{
		Name:   "fig10",
		Title:  "JCT boxplots (hours), cluster vs simulation",
		Header: []string{"series", "whisker-", "Q1", "median", "Q3", "whisker+", "outliers"},
	}
	series := []struct {
		name        string
		pol         Policy
		clusterMode bool
	}{
		{"Tiresias", Tiresias, true},
		{"PAL", PALPolicy, true},
		{"Tiresias-Simulation", Tiresias, false},
		{"PAL-Simulation", PALPolicy, false},
	}
	for _, s := range series {
		res, err := runTestbed(scale, s.pol, s.clusterMode)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", s.name, err)
		}
		b := stats.BoxplotOf(res.JCTs())
		t.AddRow(s.name,
			Hours(b.WhiskerLow), Hours(b.Q1), Hours(b.Median),
			Hours(b.Q3), Hours(b.WhiskerHigh), fmt.Sprintf("%d", b.OutlierCount))
	}
	return t, nil
}
