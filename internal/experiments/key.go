package experiments

import (
	"fmt"
	"sort"

	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// Content addressing for the runner's result cache. A RunSpec's Key is a
// canonical hash of everything that can influence the simulation's
// outcome — the full trace, the full profile(s), topology, scheduler,
// policy, penalties, seed and measurement window — so two specs share a
// key exactly when the engine would produce identical results for them.
// This is what lets the cache be shared safely across experiments
// (Fig. 11, Fig. 12 and the headline metrics all reuse the Sia baseline
// runs; Fig. 14 and Fig. 19 overlap at 8 jobs/hour under FIFO) and what
// fixes the stale-cache hazard of the old name-keyed sync.Map caches: a
// changed penalty, seed or scale can never alias a previous entry.

// profileDigests memoizes per-profile content digests: profiles are
// shared, immutable after construction, and hashed once each.
var profileDigests runner.Memo[*vprof.Profile, string]

// profileDigest hashes a profile's full content (name, shape, every
// score).
func profileDigest(p *vprof.Profile) string {
	if p == nil {
		return "nil"
	}
	return profileDigests.Get(p, func() string {
		h := runner.NewHash()
		h.String(p.Name())
		h.Int(p.NumClasses())
		h.Int(p.NumGPUs())
		for c := 0; c < p.NumClasses(); c++ {
			h.Floats(p.ClassScores(vprof.Class(c)))
		}
		return h.Sum()
	})
}

// hashTrace feeds a trace's full content into the hasher. Traces are
// regenerated per call site, so the digest is computed from content, not
// pointer identity — equal workloads hash equal wherever they were
// built.
func hashTrace(h *runner.Hash, t *trace.Trace) {
	if t == nil {
		h.String("nil-trace")
		return
	}
	h.String(t.Name)
	h.Int(len(t.Jobs))
	for _, j := range t.Jobs {
		h.Int(j.ID)
		h.String(j.Model)
		h.Int(int(j.Class))
		h.Float64(j.Arrival)
		h.Int(j.Demand)
		h.Float64(j.Work)
	}
}

// Key returns the canonical content hash of the spec. Every field of
// RunSpec that can influence the simulation's outcome feeds the digest;
// extending RunSpec requires extending this function (the version tag
// below guards against silent drift: bump it whenever the encoding
// changes). The one deliberate exception is Counters: an
// observation-only out-param that never changes the Result, so it must
// NOT feed the digest — hashing it would needlessly split cache
// entries between instrumented and bare runs of the same simulation.
func (s RunSpec) Key() string {
	h := runner.NewHash()
	// v3: RecordDecisions joined the encoding (a trace-carrying result
	// must never alias a bare one in the cache); v2 added RecordMetrics
	// for the same reason.
	h.String("runspec/v3")

	hashTrace(h, s.Trace)
	h.Int(s.Topo.NumNodes)
	h.Int(s.Topo.GPUsPerNode)
	h.Int(s.Topo.NodesPerRack)
	if s.Sched != nil {
		// Scheduler configuration lives in small value structs (e.g.
		// LAS.Threshold); the Go-syntax representation captures type and
		// fields deterministically.
		h.String(fmt.Sprintf("%T%+v", s.Sched, s.Sched))
	} else {
		h.String("nil-sched")
	}
	h.Int(int(s.Policy))
	h.String(profileDigest(s.Profile))
	h.String(profileDigest(s.ProfiledView))
	h.Float64(s.Lacross)
	if s.ModelLacross == nil {
		h.Int(-1)
	} else {
		models := make([]string, 0, len(s.ModelLacross))
		for m := range s.ModelLacross {
			models = append(models, m)
		}
		sort.Strings(models)
		h.Int(len(models))
		for _, m := range models {
			h.String(m)
			h.Float64(s.ModelLacross[m])
		}
	}
	h.Uint64(s.Seed)
	h.Int(s.MeasureFirst)
	h.Int(s.MeasureLast)
	h.Bool(s.RecordUtil)
	h.Bool(s.RecordEvents)
	h.Bool(s.RecordMetrics)
	h.Bool(s.RecordDecisions)
	h.Float64(s.RoundSec)
	h.Float64(s.MigrationPenaltySec)
	return h.Sum()
}
