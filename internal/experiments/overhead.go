package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig18 reproduces Figure 18: the distribution of PAL's per-epoch
// placement compute time for 64-, 128- and 256-GPU clusters. The paper
// reports a worst case of ~4 s and a median of ~2.8 s for 256 GPUs in its
// Python toolkit; our Go implementation is orders of magnitude faster, so
// the reproduced shape is "grows with cluster size, worst case at the
// first epoch, far below the 300 s epoch" rather than the absolute values.
func Fig18(scale Scale) (*Table, error) {
	t := &Table{
		Name:   "fig18",
		Title:  "PAL placement compute time per epoch (milliseconds)",
		Header: []string{"cluster size", "median", "p99", "max", "epochs"},
	}
	sizes := []int{64, 128, 256}
	// The runs go through the pool like every other experiment, which
	// bounds them under -workers and makes them cancellable — but they
	// are deliberately uncached: PlaceTimes is a wall-clock measurement,
	// so the result is not a pure function of the configuration and
	// storing it under a content-addressed key would violate the cache's
	// contract. fig18 is the one experiment whose table varies run to
	// run (and with concurrent neighbors); its claim is a shape ("far
	// below the 300 s epoch"), not an absolute.
	specs := make([]RunSpec, 0, len(sizes))
	for _, size := range sizes {
		topo := cluster.Topology{NumNodes: size / GPUsPerNode, GPUsPerNode: GPUsPerNode}
		// Scale the offered load with the cluster so each size runs at a
		// comparable utilization.
		load := 10.0 * float64(size) / 256.0
		params := trace.DefaultSynergyParams(load)
		params.NumJobs = scale.SynergyNumJobs / 4
		if params.NumJobs < 100 {
			params.NumJobs = 100
		}
		specs = append(specs, RunSpec{
			Trace:   trace.Synergy(params),
			Topo:    topo,
			Sched:   FIFOSched,
			Policy:  PALPolicy,
			Profile: LonghornProfile(size),
			Lacross: SynergyLacross,
			Seed:    ExperimentSeed ^ uint64(size),
		})
	}
	results, err := RunAllUncached(scale.ctx(), "fig18", specs)
	if err != nil {
		return nil, fmt.Errorf("fig18: %w", err)
	}
	for i, size := range sizes {
		res := results[i]
		ms := make([]float64, len(res.PlaceTimes))
		for i, s := range res.PlaceTimes {
			ms[i] = s * 1000
		}
		t.AddRow(fmt.Sprintf("%d", size),
			fmt.Sprintf("%.3f", stats.Median(ms)),
			fmt.Sprintf("%.3f", stats.Percentile(ms, 99)),
			fmt.Sprintf("%.3f", stats.Max(ms)),
			fmt.Sprintf("%d", len(ms)))
	}
	t.Note("paper (Python/Blox): 256-GPU worst case 4 s, median 2.8 s, vs a 300 s epoch; shape check: time grows with cluster size and stays negligible vs the epoch")
	return t, nil
}
