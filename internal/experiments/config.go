package experiments

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/decision"
	"repro/internal/metrics"
	"repro/internal/place"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// Policy identifies one of the six placement configurations of §IV-A1.
type Policy int

// The placement policies compared throughout the evaluation.
const (
	RandomSticky Policy = iota
	RandomNonSticky
	Gandiva  // Packed-Non-Sticky
	Tiresias // Packed-Sticky (the best-performing baseline)
	PMFirst
	PALPolicy
	numPolicies
)

// AllPolicies lists the policies in the order the paper's figures use.
func AllPolicies() []Policy {
	return []Policy{RandomSticky, RandomNonSticky, Gandiva, Tiresias, PMFirst, PALPolicy}
}

// String returns the figure-legend name of the policy.
func (p Policy) String() string {
	switch p {
	case RandomSticky:
		return "Random-Sticky"
	case RandomNonSticky:
		return "Random-Non-Sticky"
	case Gandiva:
		return "Gandiva"
	case Tiresias:
		return "Tiresias"
	case PMFirst:
		return "PM-First"
	case PALPolicy:
		return "PAL"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// binMemo memoizes the K-Means binning per profile: silhouette K
// selection is O(n²) per class and every policy run over the same profile
// would otherwise repeat it. The single-flight Memo (unlike the old
// sync.Map) also guarantees concurrent runs over one profile bin it
// exactly once.
var binMemo runner.Memo[*vprof.Profile, *vprof.Binned]

// binned returns the (cached) binned view of a profile. The returned
// Binned is shared and read-only.
func binned(p *vprof.Profile) *vprof.Binned {
	return binMemo.Get(p, func() *vprof.Binned { return vprof.BinProfile(p) })
}

// RunSpec assembles one simulation of the evaluation.
type RunSpec struct {
	Trace  *trace.Trace
	Topo   cluster.Topology
	Sched  sim.Scheduler
	Policy Policy

	// Profile is the variability the jobs actually experience.
	Profile *vprof.Profile
	// ProfiledView is what PM-First/PAL consult; nil means Profile
	// (fresh, accurate profiling). The testbed experiment passes a stale
	// view here.
	ProfiledView *vprof.Profile

	// Lacross is the constant inter-node penalty; ModelLacross overrides
	// it per model when non-nil.
	Lacross      float64
	ModelLacross map[string]float64

	// Seed feeds the Random placers.
	Seed uint64

	MeasureFirst, MeasureLast int
	RecordUtil                bool
	RecordEvents              bool
	// RecordMetrics attaches a default-configured metrics.Collector
	// (every series, per-round sampling). The payload rides on
	// Result.Metrics — including through the result cache — and is
	// retrievable with metrics.FromResult. Collection is
	// fast-forward-safe, unlike the Observer path.
	RecordMetrics bool
	// RecordDecisions attaches a default-configured decision.Recorder
	// (every facet, default ring size). The trace rides on
	// Result.Decisions — including through the result cache — and is
	// retrievable with decision.FromResult. Recording is
	// fast-forward-safe, like RecordMetrics.
	RecordDecisions bool
	RoundSec        float64

	// MigrationPenaltySec overrides the default checkpoint/restore cost
	// charged when a running job's allocation changes; negative disables
	// it. Zero selects DefaultMigrationPenaltySec.
	MigrationPenaltySec float64

	// Counters, when non-nil, receives the engine's introspection
	// counters (sim.Config.Counters). It is an observation-only
	// out-param, deliberately excluded from Key(): counter values are
	// regime-dependent wall-clock-class data that never influence the
	// Result, so a counter-bearing spec must share its cache entry with
	// a bare one.
	Counters *sim.Counters
}

// DefaultMigrationPenaltySec is the checkpoint/restore cost charged per
// migration (§IV-A1: small relative to job runtimes — 10 s against
// multi-hour jobs, ~3% of a round worst case — but enough that gratuitous non-sticky reshuffling is
// not free).
const DefaultMigrationPenaltySec = 10

// RegistryName returns the policy's name in the placement registry
// (internal/place), the vocabulary scenario specs and CLI flags use.
func (p Policy) RegistryName() string {
	switch p {
	case RandomSticky:
		return "random-sticky"
	case RandomNonSticky:
		return "random-non-sticky"
	case Gandiva:
		return "packed-non-sticky"
	case Tiresias:
		return "packed-sticky"
	case PMFirst:
		return "pm-first"
	case PALPolicy:
		return "pal"
	}
	panic(fmt.Sprintf("experiments: unknown policy %d", int(p)))
}

// policySeed derives the per-policy RNG seed. The XOR constants predate
// the registry and are load-bearing: they keep every recorded
// experiment value and every content-addressed cache key stable.
func policySeed(p Policy, seed uint64) uint64 {
	switch p {
	case RandomSticky:
		return seed ^ 0xDEC0
	case RandomNonSticky:
		return seed ^ 0xDEC1
	case Gandiva:
		return seed ^ 0xDEC2
	case Tiresias:
		return seed ^ 0xDEC3
	}
	return seed
}

// buildPlacer constructs the placement policy of the spec through the
// shared placement registry, so the experiments layer exercises exactly
// the construction path scenario specs use.
func buildPlacer(spec RunSpec) sim.Placer {
	view := spec.ProfiledView
	if view == nil {
		view = spec.Profile
	}
	placer, err := place.Build(spec.Policy.RegistryName(), place.BuildEnv{
		Scores:       binned(view),
		Lacross:      spec.Lacross,
		ModelLacross: spec.ModelLacross,
		Seed:         policySeed(spec.Policy, spec.Seed),
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return placer
}

// Run executes one simulation.
func Run(spec RunSpec) (*sim.Result, error) {
	migration := spec.MigrationPenaltySec
	switch {
	case migration == 0:
		migration = DefaultMigrationPenaltySec
	case migration < 0:
		migration = 0
	}
	cfg := sim.Config{
		Topology:            spec.Topo,
		Trace:               spec.Trace,
		Sched:               spec.Sched,
		Placer:              buildPlacer(spec),
		TrueProfile:         spec.Profile,
		Lacross:             spec.Lacross,
		ModelLacross:        spec.ModelLacross,
		MeasureFirst:        spec.MeasureFirst,
		MeasureLast:         spec.MeasureLast,
		RecordUtilization:   spec.RecordUtil,
		RecordEvents:        spec.RecordEvents,
		RoundSec:            spec.RoundSec,
		MigrationPenaltySec: migration,
		Counters:            spec.Counters,
	}
	if spec.RecordMetrics {
		schedName := ""
		if spec.Sched != nil {
			schedName = spec.Sched.Name()
		}
		cfg.Metrics = metrics.MustCollector(metrics.Config{
			ClusterGPUs: spec.Topo.Size(),
			Label:       spec.label(),
			Policy:      spec.Policy.RegistryName(),
			Sched:       schedName,
		})
	}
	if spec.RecordDecisions {
		schedName := ""
		if spec.Sched != nil {
			schedName = spec.Sched.Name()
		}
		cfg.Decisions = decision.MustRecorder(decision.Config{
			Label:  spec.label(),
			Policy: spec.Policy.RegistryName(),
			Sched:  schedName,
		})
	}
	return sim.Run(cfg)
}

// sharedPool is the orchestrator every experiment routes its
// simulations through: GOMAXPROCS workers over a content-addressed
// result cache, so repeated configurations (the Sia baseline feeds
// Fig. 11, Fig. 12 and the headline metrics; Fig. 14 and Fig. 19 overlap
// at 8 jobs/hour) simulate once per process.
var sharedPool atomic.Pointer[runner.Pool]

func init() {
	sharedPool.Store(runner.NewPool(0, runner.NewResultCache(0)))
}

// Pool returns the shared runner pool the experiments execute on.
func Pool() *runner.Pool {
	return sharedPool.Load()
}

// SetPool replaces the shared pool (CLIs use it to honor a -workers
// flag or install a differently-sized cache) and returns the previous
// one. Passing nil restores the default configuration.
func SetPool(p *runner.Pool) *runner.Pool {
	if p == nil {
		p = runner.NewPool(0, runner.NewResultCache(0))
	}
	return sharedPool.Swap(p)
}

// label renders the cell coordinates a human needs to locate a failing
// run: workload, policy, scheduler, penalty.
func (s RunSpec) label() string {
	traceName, schedName := "?", "?"
	if s.Trace != nil {
		traceName = s.Trace.Name
	}
	if s.Sched != nil {
		schedName = s.Sched.Name()
	}
	return fmt.Sprintf("%s %s/%s L%g", traceName, s.Policy, schedName, s.Lacross)
}

// runSpecs builds and runs one sweep over the specs, optionally keyed
// for the content-addressed cache. A truncated run (MaxRounds hit) is
// promoted to an error here: figure/table runners aggregate blindly,
// and partial metrics must never flow into a published table — the
// scenario layer, which has a "truncated" column, is the surface that
// reports truncation as data.
func runSpecs(ctx context.Context, label string, specs []RunSpec, cached bool) ([]*sim.Result, error) {
	sweep := runner.NewSweep(Pool())
	for _, spec := range specs {
		spec := spec
		key := ""
		if cached {
			key = spec.Key()
		}
		cell := spec.label()
		sweep.Add(key, fmt.Sprintf("%s: %s", label, cell),
			func() (*sim.Result, error) {
				res, err := Run(spec)
				if err == nil && res.Truncated {
					return nil, fmt.Errorf("%s: truncated at MaxRounds with %d unfinished jobs",
						cell, res.Unfinished)
				}
				return res, err
			})
	}
	return sweep.Run(ctx)
}

// RunAll executes the specs through the shared pool and returns their
// results in submission order — the parallel, cached equivalent of
// calling Run in a loop. label prefixes task names in errors and
// progress output; each task is further identified by its cell
// coordinates (trace, policy, scheduler, penalty).
func RunAll(ctx context.Context, label string, specs []RunSpec) ([]*sim.Result, error) {
	return runSpecs(ctx, label, specs, true)
}

// RunAllUncached is RunAll without result caching, for runs whose
// results are not pure functions of their configuration (fig18's
// wall-clock placement timings).
func RunAllUncached(ctx context.Context, label string, specs []RunSpec) ([]*sim.Result, error) {
	return runSpecs(ctx, label, specs, false)
}

// Scale controls experiment sizes so unit tests can exercise the full
// pipeline quickly while benches and the CLI run the paper-sized
// configuration.
type Scale struct {
	// SiaTraces lists the Sia-Philly workload indices to run (paper: 1-8).
	SiaTraces []int
	// SynergyNumJobs is the Synergy trace length (paper: enough to
	// measure jobs 2000-3000; we use 3200).
	SynergyNumJobs int
	// SynergyMeasureFirst/Last bound the steady-state window.
	SynergyMeasureFirst, SynergyMeasureLast int
	// SynergyLoads is the Fig. 14 job-load sweep (jobs/hour).
	SynergyLoads []float64
	// SchedLoads is the Figs. 16-17 load sweep.
	SchedLoads []float64
	// SiaPenalties is the Fig. 13 locality-penalty sweep.
	SiaPenalties []float64
	// SynergyPenalties is the Fig. 20 sweep.
	SynergyPenalties []float64

	// Ctx optionally carries cancellation through the experiment runners
	// into the pool (nil means context.Background()). It rides on Scale
	// because the registry's Runner signature predates the orchestration
	// layer and every experiment already threads a Scale.
	Ctx context.Context
}

// ctx returns the scale's context, defaulting to Background.
func (s Scale) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// FullScale is the paper-sized configuration.
func FullScale() Scale {
	return Scale{
		SiaTraces:           []int{1, 2, 3, 4, 5, 6, 7, 8},
		SynergyNumJobs:      3200,
		SynergyMeasureFirst: 2000,
		SynergyMeasureLast:  3000,
		SynergyLoads:        []float64{4, 6, 8, 10, 12, 14, 16, 18, 20},
		SchedLoads:          []float64{8, 10, 12, 14},
		SiaPenalties:        []float64{1.0, 1.5, 2.0, 2.5, 3.0},
		SynergyPenalties:    []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7},
	}
}

// QuickScale is a reduced configuration for unit/integration tests: same
// code paths, minutes-to-milliseconds smaller.
func QuickScale() Scale {
	return Scale{
		SiaTraces:           []int{1, 3, 5},
		SynergyNumJobs:      500,
		SynergyMeasureFirst: 200,
		SynergyMeasureLast:  400,
		SynergyLoads:        []float64{8, 12},
		SchedLoads:          []float64{8, 12},
		SiaPenalties:        []float64{1.0, 2.0, 3.0},
		SynergyPenalties:    []float64{1.1, 1.7},
	}
}

// Shared cluster / profile constants (Table I).
const (
	// SiaClusterNodes × GPUsPerNode = the 64-GPU Sia/testbed cluster.
	SiaClusterNodes = 16
	// SynergyClusterNodes × GPUsPerNode = the 256-GPU Synergy cluster.
	SynergyClusterNodes = 64
	// GPUsPerNode matches Frontera/Longhorn (4 GPUs per node).
	GPUsPerNode = 4
	// SynergyLacross is the constant penalty of the Synergy experiments
	// (the paper's initial Frontera estimate, §IV-D).
	SynergyLacross = 1.7
	// ProfileSeed seeds profile generation; ExperimentSeed seeds
	// everything else.
	ProfileSeed    = 0x9A1
	ExperimentSeed = 0xE4B
)

// SiaTopology returns the 64-GPU topology (16 nodes × 4 GPUs).
func SiaTopology() cluster.Topology {
	return cluster.Topology{NumNodes: SiaClusterNodes, GPUsPerNode: GPUsPerNode}
}

// SynergyTopology returns the 256-GPU topology (64 nodes × 4 GPUs).
func SynergyTopology() cluster.Topology {
	return cluster.Topology{NumNodes: SynergyClusterNodes, GPUsPerNode: GPUsPerNode}
}

// profileMemo memoizes the sampled per-cluster-size profiles (the key
// space is bounded: one entry per generator × cluster size).
var profileMemo runner.Memo[string, *vprof.Profile]

// LonghornProfile returns a Longhorn-style profile for an n-GPU simulated
// cluster, produced the way §IV-C describes: generate the full cluster's
// profile, then sample n GPUs without repetition.
func LonghornProfile(n int) *vprof.Profile {
	key := fmt.Sprintf("longhorn-%d", n)
	return profileMemo.Get(key, func() *vprof.Profile {
		full := vprof.GenerateLonghorn(416, ProfileSeed) // 8 cabinets × 13 nodes × 4 GPUs
		perm := rng.New(ProfileSeed).Split(uint64(n)).Perm(full.NumGPUs())
		p, err := full.Subsample(key, perm, n)
		if err != nil {
			panic(err)
		}
		return p
	})
}

// TestbedProfile returns the 64-GPU Frontera testbed profile (Fig. 8).
func TestbedProfile() *vprof.Profile {
	return profileMemo.Get("testbed-64", func() *vprof.Profile {
		return vprof.GenerateTestbed(ProfileSeed + 7)
	})
}

// SiaTrace returns Sia-Philly workload idx at default parameters.
func SiaTrace(idx int) *trace.Trace {
	return trace.SiaPhilly(trace.DefaultSiaPhillyParams(), idx)
}

// SynergyTrace returns a Synergy trace at the given load with the scale's
// job count.
func SynergyTrace(load float64, numJobs int) *trace.Trace {
	params := trace.DefaultSynergyParams(load)
	params.NumJobs = numJobs
	return trace.Synergy(params)
}

// FIFOSched, LASSched and SRTFSched are the shared scheduler instances.
var (
	FIFOSched = sched.FIFO{}
	LASSched  = sched.LAS{}
	SRTFSched = sched.SRTF{}
)
