package experiments

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// synergySpec assembles one Synergy simulation of the load/scheduler/
// penalty grids.
func synergySpec(scale Scale, load float64, pol Policy, schedName string, lacross float64, recordUtil bool) (RunSpec, error) {
	var s sim.Scheduler
	switch schedName {
	case "fifo":
		s = FIFOSched
	case "las":
		s = LASSched
	case "srtf":
		s = SRTFSched
	default:
		return RunSpec{}, fmt.Errorf("experiments: unknown scheduler %q", schedName)
	}
	return RunSpec{
		Trace:   SynergyTrace(load, scale.SynergyNumJobs),
		Topo:    SynergyTopology(),
		Sched:   s,
		Policy:  pol,
		Profile: LonghornProfile(SynergyTopology().Size()),
		Lacross: lacross,
		// One independent stream per (scheduler, load) cell, shared
		// across policies so comparisons stay paired. The old ad-hoc mix
		// (ExperimentSeed ^ uint64(load*10) ^ uint64(len(schedName)))
		// collided srtf with fifo — len 4 both — and truncated loads.
		Seed:         runner.DeriveSeed(ExperimentSeed, fmt.Sprintf("synergy|%s|load%g", schedName, load)),
		MeasureFirst: scale.SynergyMeasureFirst,
		MeasureLast:  scale.SynergyMeasureLast,
		RecordUtil:   recordUtil,
	}, nil
}

// runSynergy executes one Synergy simulation through the pool (single-
// cell convenience used by the integration tests; the figures enumerate
// whole grids instead).
func runSynergy(scale Scale, load float64, pol Policy, schedName string, lacross float64, recordUtil bool) (*sim.Result, error) {
	spec, err := synergySpec(scale, load, pol, schedName, lacross, recordUtil)
	if err != nil {
		return nil, err
	}
	results, err := RunAll(scale.ctx(), "synergy", []RunSpec{spec})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// Fig14 reproduces Figure 14: Synergy average JCT under FIFO as the job
// load sweeps (paper: 4-20 jobs/hour on the 256-GPU cluster, constant
// locality penalty 1.7). Also reports the multi-GPU-only JCTs §V-C quotes
// (PAL improves multi-GPU jobs 5-31% over Tiresias).
func Fig14(scale Scale) (*Table, error) {
	t := &Table{
		Name:   "fig14",
		Title:  "Synergy avg JCT (hours) vs job load, FIFO, 256 GPUs, L=1.7",
		Header: []string{"policy"},
	}
	for _, load := range scale.SynergyLoads {
		t.Header = append(t.Header, fmt.Sprintf("%gj/h", load))
	}
	specs := make([]RunSpec, 0, len(scale.SynergyLoads)*len(AllPolicies()))
	for _, load := range scale.SynergyLoads {
		for _, pol := range AllPolicies() {
			spec, err := synergySpec(scale, load, pol, "fifo", SynergyLacross, false)
			if err != nil {
				return nil, fmt.Errorf("fig14 load %g %s: %w", load, pol, err)
			}
			specs = append(specs, spec)
		}
	}
	results, err := RunAll(scale.ctx(), "fig14", specs)
	if err != nil {
		return nil, fmt.Errorf("fig14: %w", err)
	}
	avg := make(map[Policy][]float64)
	multi := make(map[Policy][]float64)
	i := 0
	for range scale.SynergyLoads {
		for _, pol := range AllPolicies() {
			res := results[i]
			i++
			avg[pol] = append(avg[pol], stats.Mean(res.JCTs()))
			multi[pol] = append(multi[pol], stats.Mean(res.MultiGPUJCTs()))
		}
	}
	for _, pol := range AllPolicies() {
		row := []string{pol.String()}
		for _, v := range avg[pol] {
			row = append(row, Hours(v))
		}
		t.AddRow(row...)
	}
	for i, load := range scale.SynergyLoads {
		t.Note("load %gj/h: PAL vs Tiresias avg JCT %s, multi-GPU-only %s (paper: 4-9%% overall, 5-31%% multi-GPU)",
			load,
			Pct(stats.Improvement(avg[Tiresias][i], avg[PALPolicy][i])),
			Pct(stats.Improvement(multi[Tiresias][i], multi[PALPolicy][i])))
	}
	return t, nil
}

// Fig15 reproduces Figure 15: GPUs in use over time for Tiresias vs PAL
// at 8 and 10 jobs/hour. The series is reported as mean GPUs-in-use per
// decile of the simulated span, showing the under-utilization dip at 8
// j/h and saturation at 10 j/h, plus PAL "running ahead" of Tiresias.
func Fig15(scale Scale) (*Table, error) {
	t := &Table{
		Name:   "fig15",
		Title:  "GPUs in use over time (mean per decile of span), FIFO, 256 GPUs",
		Header: []string{"load", "policy", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "d10", "drain (h)"},
	}
	// Both quick and full scales examine the same two loads the paper
	// plots.
	loads := []float64{8, 10}
	var specs []RunSpec
	for _, load := range loads {
		for _, pol := range []Policy{Tiresias, PALPolicy} {
			spec, err := synergySpec(scale, load, pol, "fifo", SynergyLacross, true)
			if err != nil {
				return nil, fmt.Errorf("fig15 load %g %s: %w", load, pol, err)
			}
			specs = append(specs, spec)
		}
	}
	results, err := RunAll(scale.ctx(), "fig15", specs)
	if err != nil {
		return nil, fmt.Errorf("fig15: %w", err)
	}
	i := 0
	for _, load := range loads {
		for _, pol := range []Policy{Tiresias, PALPolicy} {
			res := results[i]
			i++
			row := []string{fmt.Sprintf("%gj/h", load), pol.String()}
			row = append(row, decileMeans(res.UtilSeries)...)
			row = append(row, Hours(res.Makespan))
			t.AddRow(row...)
		}
	}
	t.Note("paper: dip in utilization around mid-trace at 8j/h; saturation from early on at 10j/h; PAL frees resources earlier than Tiresias")
	return t, nil
}

// decileMeans averages the in-use series over ten equal time slices.
func decileMeans(series []sim.UtilSample) []string {
	out := make([]string, 10)
	if len(series) == 0 {
		for i := range out {
			out[i] = "-"
		}
		return out
	}
	lo := series[0].Time
	hi := series[len(series)-1].Time
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	sums := make([]float64, 10)
	counts := make([]int, 10)
	for _, s := range series {
		d := int((s.Time - lo) / span * 10)
		if d > 9 {
			d = 9
		}
		sums[d] += float64(s.InUse)
		counts[d]++
	}
	for i := range out {
		if counts[i] == 0 {
			out[i] = "-"
			continue
		}
		out[i] = fmt.Sprintf("%.0f", sums[i]/float64(counts[i]))
	}
	return out
}

// Fig16and17 reproduces Figures 16 (LAS) and 17 (SRTF): Synergy average
// JCT vs job load under the two alternative schedulers.
func Fig16and17(scale Scale) (*Table, error) {
	t := &Table{
		Name:   "fig16_17",
		Title:  "Synergy avg JCT (hours) vs job load under LAS and SRTF schedulers",
		Header: []string{"sched", "policy"},
	}
	for _, load := range scale.SchedLoads {
		t.Header = append(t.Header, fmt.Sprintf("%gj/h", load))
	}
	for _, schedName := range []string{"las", "srtf"} {
		specs := make([]RunSpec, 0, len(scale.SchedLoads)*len(AllPolicies()))
		for _, load := range scale.SchedLoads {
			for _, pol := range AllPolicies() {
				spec, err := synergySpec(scale, load, pol, schedName, SynergyLacross, false)
				if err != nil {
					return nil, fmt.Errorf("fig16/17 %s load %g %s: %w", schedName, load, pol, err)
				}
				specs = append(specs, spec)
			}
		}
		results, err := RunAll(scale.ctx(), "fig16_17/"+schedName, specs)
		if err != nil {
			return nil, fmt.Errorf("fig16/17 %s: %w", schedName, err)
		}
		avg := make(map[Policy][]float64)
		i := 0
		for range scale.SchedLoads {
			for _, pol := range AllPolicies() {
				avg[pol] = append(avg[pol], stats.Mean(results[i].JCTs()))
				i++
			}
		}
		for _, pol := range AllPolicies() {
			row := []string{schedName, pol.String()}
			for _, v := range avg[pol] {
				row = append(row, Hours(v))
			}
			t.AddRow(row...)
		}
		best := 0.0
		for i := range scale.SchedLoads {
			if imp := stats.Improvement(avg[Tiresias][i], avg[PALPolicy][i]); imp > best {
				best = imp
			}
		}
		t.Note("%s: max PAL improvement over Tiresias %s (paper: up to 15%% LAS, up to 10%% SRTF)", schedName, Pct(best))
	}
	return t, nil
}

// Fig19 reproduces Figure 19: Tiresias vs PAL wait-time patterns under
// LAS, SRTF and FIFO at 8 jobs/hour.
func Fig19(scale Scale) (*Table, error) {
	t := &Table{
		Name:   "fig19",
		Title:  "Tiresias vs PAL wait times by scheduler, Synergy 8 jobs/hour",
		Header: []string{"sched", "policy", "mean wait (h)", "p99 wait (h)", "max wait (h)"},
	}
	load := 8.0
	var specs []RunSpec
	for _, schedName := range []string{"las", "srtf", "fifo"} {
		for _, pol := range []Policy{Tiresias, PALPolicy} {
			spec, err := synergySpec(scale, load, pol, schedName, SynergyLacross, false)
			if err != nil {
				return nil, fmt.Errorf("fig19 %s %s: %w", schedName, pol, err)
			}
			specs = append(specs, spec)
		}
	}
	results, err := RunAll(scale.ctx(), "fig19", specs)
	if err != nil {
		return nil, fmt.Errorf("fig19: %w", err)
	}
	i := 0
	for _, schedName := range []string{"las", "srtf", "fifo"} {
		for _, pol := range []Policy{Tiresias, PALPolicy} {
			w := results[i].Waits()
			i++
			t.AddRow(schedName, pol.String(),
				Hours(stats.Mean(w)), Hours(stats.Percentile(w, 99)), Hours(stats.Max(w)))
		}
	}
	t.Note("paper: LAS has the largest wait magnitudes, FIFO the smallest; PAL reduces waits for long-queued jobs")
	return t, nil
}

// Fig20 reproduces Figure 20: Synergy average JCT at 10 jobs/hour as the
// constant locality penalty sweeps 1.0-1.7.
func Fig20(scale Scale) (*Table, error) {
	t := &Table{
		Name:   "fig20",
		Title:  "Synergy avg JCT (hours) vs locality penalty, FIFO, 10 jobs/hour",
		Header: []string{"policy"},
	}
	for _, pen := range scale.SynergyPenalties {
		t.Header = append(t.Header, fmt.Sprintf("C%.1f", pen))
	}
	specs := make([]RunSpec, 0, len(scale.SynergyPenalties)*len(AllPolicies()))
	for _, pen := range scale.SynergyPenalties {
		for _, pol := range AllPolicies() {
			spec, err := synergySpec(scale, 10, pol, "fifo", pen, false)
			if err != nil {
				return nil, fmt.Errorf("fig20 penalty %.1f %s: %w", pen, pol, err)
			}
			specs = append(specs, spec)
		}
	}
	results, err := RunAll(scale.ctx(), "fig20", specs)
	if err != nil {
		return nil, fmt.Errorf("fig20: %w", err)
	}
	avg := make(map[Policy][]float64)
	i := 0
	for range scale.SynergyPenalties {
		for _, pol := range AllPolicies() {
			avg[pol] = append(avg[pol], stats.Mean(results[i].JCTs()))
			i++
		}
	}
	for _, pol := range AllPolicies() {
		row := []string{pol.String()}
		for _, v := range avg[pol] {
			row = append(row, Hours(v))
		}
		t.AddRow(row...)
	}
	n := len(scale.SynergyPenalties)
	if n > 0 {
		t.Note("PAL vs Tiresias: %s at C%.1f -> %s at C%.1f (paper: 12%% -> 7%%)",
			Pct(stats.Improvement(avg[Tiresias][0], avg[PALPolicy][0])), scale.SynergyPenalties[0],
			Pct(stats.Improvement(avg[Tiresias][n-1], avg[PALPolicy][n-1])), scale.SynergyPenalties[n-1])
	}
	return t, nil
}
