package experiments

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// The integration suite drives the full stack — traces, profiles,
// binning, schedulers, placement policies, engine — through every
// policy × scheduler combination and checks cross-module invariants the
// unit tests cannot see.

// allCombos returns a run for every (policy, scheduler) pair on a small
// Sia trace.
func allCombos(t *testing.T) map[string]*sim.Result {
	t.Helper()
	out := make(map[string]*sim.Result)
	for _, pol := range AllPolicies() {
		for _, schedName := range []string{"fifo", "las", "srtf"} {
			var s sim.Scheduler
			switch schedName {
			case "fifo":
				s = FIFOSched
			case "las":
				s = LASSched
			case "srtf":
				s = SRTFSched
			}
			res, err := Run(RunSpec{
				Trace:        SiaTrace(2),
				Topo:         SiaTopology(),
				Sched:        s,
				Policy:       pol,
				Profile:      LonghornProfile(64),
				Lacross:      1.5,
				ModelLacross: trace.LacrossByModel(),
				Seed:         77,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", pol, schedName, err)
			}
			out[pol.String()+"/"+schedName] = res
		}
	}
	return out
}

func TestIntegrationAllCombosComplete(t *testing.T) {
	for name, res := range allCombos(t) {
		done := 0
		for _, j := range res.Jobs {
			if j.Done {
				done++
			}
		}
		if done != 160 {
			t.Errorf("%s: %d/160 jobs completed", name, done)
		}
		if res.Utilization <= 0 || res.Utilization > 1+1e-9 {
			t.Errorf("%s: utilization %v out of range", name, res.Utilization)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: makespan %v", name, res.Makespan)
		}
	}
}

// TestIntegrationJCTBounds: no job can finish faster than its ideal work
// (slowdowns are >= ~the fastest GPU's score, which is < 1, so the hard
// lower bound is work × min score) and JCT >= execution time.
func TestIntegrationJCTBounds(t *testing.T) {
	profile := LonghornProfile(64)
	minScore := math.Inf(1)
	for c := 0; c < profile.NumClasses(); c++ {
		for g := 0; g < profile.NumGPUs(); g++ {
			if s := profile.Score(vprof.Class(c), g); s < minScore {
				minScore = s
			}
		}
	}
	for name, res := range allCombos(t) {
		for _, j := range res.Jobs {
			if !j.Done {
				continue
			}
			lower := j.Spec.Work * minScore
			if j.JCT() < lower-1e-6 {
				t.Errorf("%s: job %d JCT %v below physical bound %v",
					name, j.Spec.ID, j.JCT(), lower)
			}
			if j.Wait() < 0 {
				t.Errorf("%s: job %d negative wait %v", name, j.Spec.ID, j.Wait())
			}
			if j.Finish < j.FirstRun {
				t.Errorf("%s: job %d finished before first run", name, j.Spec.ID)
			}
		}
	}
}

// TestIntegrationWorkConservation: attained GPU-seconds per job must
// equal demand × work × (mean realized slowdown-weighted time) — at
// minimum, attained >= demand × work since every second of wall time on
// the gang contributes demand GPU-seconds and slowdowns are >= minScore.
func TestIntegrationWorkConservation(t *testing.T) {
	for name, res := range allCombos(t) {
		for _, j := range res.Jobs {
			if !j.Done {
				continue
			}
			// Wall running time is Attained/demand; it must be at least
			// the ideal work scaled by the best possible speed.
			wall := j.Attained / float64(j.Spec.Demand)
			if wall <= 0 {
				t.Errorf("%s: job %d never accumulated service", name, j.Spec.ID)
			}
		}
	}
}

// TestIntegrationDeterminism: the whole stack is bit-deterministic.
func TestIntegrationDeterminism(t *testing.T) {
	run := func() []float64 {
		res, err := Run(RunSpec{
			Trace:        SiaTrace(4),
			Topo:         SiaTopology(),
			Sched:        LASSched,
			Policy:       PALPolicy,
			Profile:      LonghornProfile(64),
			Lacross:      1.5,
			ModelLacross: trace.LacrossByModel(),
			Seed:         123,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.JCTs()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("full-stack run not deterministic at job %d", i)
		}
	}
}

// TestIntegrationSeedSensitivity: the random placers' seeds matter, the
// deterministic policies' results do not depend on the seed.
func TestIntegrationSeedSensitivity(t *testing.T) {
	run := func(pol Policy, seed uint64) float64 {
		res, err := Run(RunSpec{
			Trace:   SiaTrace(1),
			Topo:    SiaTopology(),
			Sched:   FIFOSched,
			Policy:  pol,
			Profile: LonghornProfile(64),
			Lacross: 1.5,
			Seed:    seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(res.JCTs())
	}
	if run(RandomNonSticky, 1) == run(RandomNonSticky, 2) {
		t.Error("random placement identical across seeds (suspicious)")
	}
	if run(PALPolicy, 1) != run(PALPolicy, 2) {
		t.Error("PAL result depends on the random seed (it must not)")
	}
	if run(PMFirst, 1) != run(PMFirst, 2) {
		t.Error("PM-First result depends on the random seed (it must not)")
	}
}

// TestIntegrationVariabilityMonotonicity: with a perfectly flat profile
// (no variability), PM-First's advantage over packed placement must
// vanish or reverse (it loses the locality optimization), while PAL
// should stay close to Tiresias. This is the zero-variability sanity
// limit of the paper's whole premise.
func TestIntegrationVariabilityMonotonicity(t *testing.T) {
	flat := flatLonghorn(t)
	run := func(pol Policy) float64 {
		res, err := Run(RunSpec{
			Trace:   SiaTrace(1),
			Topo:    SiaTopology(),
			Sched:   FIFOSched,
			Policy:  pol,
			Profile: flat,
			Lacross: 2.0,
			Seed:    5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(res.JCTs())
	}
	tiresias := run(Tiresias)
	pal := run(PALPolicy)
	pmFirst := run(PMFirst)
	// Without variability, PAL degenerates to a packing policy: it must
	// be within a modest factor of Tiresias.
	if pal > tiresias*1.25 {
		t.Errorf("flat profile: PAL %v much worse than Tiresias %v", pal, tiresias)
	}
	// PM-First ignores locality entirely and should not beat Tiresias
	// meaningfully when variability is absent and locality is expensive.
	if pmFirst < tiresias*0.95 {
		t.Errorf("flat profile: PM-First %v should not beat Tiresias %v", pmFirst, tiresias)
	}
}

// flatLonghorn builds a variability-free profile of Longhorn's shape.
func flatLonghorn(t *testing.T) *vprof.Profile {
	t.Helper()
	perClass := make([][]float64, 3)
	for c := range perClass {
		s := make([]float64, 64)
		for g := range s {
			s[g] = 1.0
		}
		perClass[c] = s
	}
	p, err := vprof.NewProfile("flat", perClass)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestIntegrationHigherLoadHigherJCT: Synergy JCTs grow with offered
// load for every policy (the Fig. 14 monotonicity, enabled by the
// load-independent job stream).
func TestIntegrationHigherLoadHigherJCT(t *testing.T) {
	scale := QuickScale()
	for _, pol := range []Policy{Tiresias, PALPolicy} {
		lo, err := runSynergy(scale, 6, pol, "fifo", SynergyLacross, false)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := runSynergy(scale, 14, pol, "fifo", SynergyLacross, false)
		if err != nil {
			t.Fatal(err)
		}
		loJCT := stats.Mean(lo.JCTs())
		hiJCT := stats.Mean(hi.JCTs())
		if hiJCT <= loJCT {
			t.Errorf("%s: JCT at 14 j/h (%v) not above 6 j/h (%v)", pol, hiJCT, loJCT)
		}
	}
}

// TestIntegrationLocalityPenaltyMonotonic: every packing-aware policy
// gets slower as the penalty rises.
func TestIntegrationLocalityPenaltyMonotonic(t *testing.T) {
	run := func(pol Policy, pen float64) float64 {
		res, err := Run(RunSpec{
			Trace:   SiaTrace(1),
			Topo:    SiaTopology(),
			Sched:   FIFOSched,
			Policy:  pol,
			Profile: LonghornProfile(64),
			Lacross: pen,
			Seed:    9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(res.JCTs())
	}
	for _, pol := range []Policy{Tiresias, PALPolicy} {
		if run(pol, 3.0) < run(pol, 1.0) {
			t.Errorf("%s: JCT decreased when locality penalty tripled", pol)
		}
	}
}
