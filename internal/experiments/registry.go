package experiments

import (
	"fmt"
	"sort"
)

// Runner is the signature shared by every experiment.
type Runner func(Scale) (*Table, error)

// registry maps experiment IDs to runners, with a description for -list.
var registry = map[string]struct {
	run  Runner
	desc string
}{
	"fig03":    {Fig03, "application classification in DRAMUtil x PeakFUUtil space (Fig. 3)"},
	"fig05":    {Fig05, "K-Means binning of a 128-GPU Class-A profile (Fig. 5)"},
	"fig06_08": {Fig06to08, "Frontera/Longhorn/testbed variability profiles (Figs. 6-8)"},
	"fig09":    {Fig09, "cluster vs simulation JCT CDFs (Fig. 9)"},
	"fig10":    {Fig10, "cluster vs simulation JCT boxplots (Fig. 10)"},
	"table04":  {Table04, "physical cluster & simulation avg JCT (Table IV)"},
	"fig11":    {Fig11, "Sia-Philly avg JCT normalized to Tiresias (Fig. 11)"},
	"fig12":    {Fig12, "wait time vs job ID for workloads 3 and 5 (Fig. 12)"},
	"fig13":    {Fig13, "Sia avg JCT vs locality penalty 1.0-3.0 (Fig. 13)"},
	"fig14":    {Fig14, "Synergy avg JCT vs job load, FIFO (Fig. 14)"},
	"fig15":    {Fig15, "GPUs in use over time, Tiresias vs PAL (Fig. 15)"},
	"fig16_17": {Fig16and17, "Synergy avg JCT vs load under LAS and SRTF (Figs. 16-17)"},
	"fig18":    {Fig18, "PAL placement compute time vs cluster size (Fig. 18)"},
	"fig19":    {Fig19, "Tiresias vs PAL wait times by scheduler (Fig. 19)"},
	"fig20":    {Fig20, "Synergy avg JCT vs locality penalty 1.0-1.7 (Fig. 20)"},
	"headline": {Headline, "abstract's geomean improvements over Tiresias"},
	// Ablations and extensions beyond the paper's figures (DESIGN.md §2).
	"ablation_k":          {AblationK, "PM-First sensitivity to the number of PM-score bins"},
	"ablation_priority":   {AblationPriority, "effect of class placement priority (Fig. 4 mechanism)"},
	"ablation_hysteresis": {AblationHysteresis, "effect of migration hysteresis on PAL"},
	"ablation_online":     {AblationOnline, "online PM-score re-profiling vs stale static profile"},
	"ablation_rack":       {AblationRack, "three-level rack L x V matrix extension"},
}

// Names returns the registered experiment IDs in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the one-line description of an experiment.
func Describe(name string) string {
	if e, ok := registry[name]; ok {
		return e.desc
	}
	return ""
}

// RunByName executes the named experiment at the given scale.
func RunByName(name string, scale Scale) (*Table, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.run(scale)
}
