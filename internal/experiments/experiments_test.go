package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{
		"ablation_hysteresis", "ablation_k", "ablation_online",
		"ablation_priority", "ablation_rack",
		"fig03", "fig05", "fig06_08", "fig09", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16_17", "fig18", "fig19", "fig20",
		"headline", "table04",
	}
	if len(names) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(names), len(want), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	for _, n := range names {
		if Describe(n) == "" {
			t.Errorf("experiment %s has no description", n)
		}
	}
	if Describe("bogus") != "" {
		t.Error("unknown experiment has a description")
	}
}

func TestRunByNameUnknown(t *testing.T) {
	if _, err := RunByName("bogus", QuickScale()); err == nil {
		t.Error("unknown experiment did not error")
	}
}

// TestAllExperimentsQuickScale runs the full registry at QuickScale and
// sanity-checks every table: non-empty rows, header-width consistency,
// renderable.
func TestAllExperimentsQuickScale(t *testing.T) {
	scale := QuickScale()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			table, err := RunByName(name, scale)
			if err != nil {
				t.Fatalf("%s failed: %v", name, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", name)
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Errorf("%s row width %d != header %d", name, len(row), len(table.Header))
				}
			}
			if s := table.String(); !strings.Contains(s, table.Name) {
				t.Errorf("%s render missing name", name)
			}
		})
	}
}

// TestFig11PALWins checks the headline qualitative result at quick scale:
// PAL and PM-First beat every baseline in geomean, and PAL beats
// PM-First.
func TestFig11PALWins(t *testing.T) {
	runs, err := RunSiaBaseline(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	geo := map[Policy]float64{}
	for _, pol := range AllPolicies() {
		var ratios []float64
		for _, run := range runs {
			base := stats.Mean(run.Results[Tiresias].JCTs())
			ratios = append(ratios, stats.Mean(run.Results[pol].JCTs())/base)
		}
		geo[pol] = stats.GeoMean(ratios)
	}
	if geo[PALPolicy] >= geo[Tiresias] {
		t.Errorf("PAL %v should beat Tiresias %v", geo[PALPolicy], geo[Tiresias])
	}
	if geo[PMFirst] >= geo[Tiresias] {
		t.Errorf("PM-First %v should beat Tiresias %v", geo[PMFirst], geo[Tiresias])
	}
	if geo[PALPolicy] > geo[PMFirst] {
		t.Errorf("PAL %v should be at least as good as PM-First %v", geo[PALPolicy], geo[PMFirst])
	}
	if geo[Tiresias] > geo[RandomNonSticky] {
		t.Errorf("Tiresias %v should beat Random-Non-Sticky %v", geo[Tiresias], geo[RandomNonSticky])
	}
}

// TestSiaResultsComplete: every workload/policy cell exists and every
// measured job completed.
func TestSiaResultsComplete(t *testing.T) {
	runs, err := RunSiaBaseline(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(QuickScale().SiaTraces) {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, run := range runs {
		for _, pol := range AllPolicies() {
			res, ok := run.Results[pol]
			if !ok {
				t.Fatalf("w%d missing %s", run.WorkloadIdx, pol)
			}
			if len(res.Measured) != 160 {
				t.Errorf("w%d %s measured %d jobs, want 160", run.WorkloadIdx, pol, len(res.Measured))
			}
			if res.Makespan <= 0 || res.Utilization <= 0 || res.Utilization > 1 {
				t.Errorf("w%d %s makespan=%v util=%v", run.WorkloadIdx, pol, res.Makespan, res.Utilization)
			}
		}
	}
}

// TestTable04ClusterWorseThanSim: stale profiles must make the "cluster"
// runs slower than the matching simulations, and PAL must still beat
// Tiresias on the cluster.
func TestTable04ClusterWorseThanSim(t *testing.T) {
	for _, pol := range []Policy{Tiresias, PALPolicy} {
		clusterRes, err := runTestbed(QuickScale(), pol, true)
		if err != nil {
			t.Fatal(err)
		}
		simRes, err := runTestbed(QuickScale(), pol, false)
		if err != nil {
			t.Fatal(err)
		}
		c := stats.Mean(clusterRes.JCTs())
		s := stats.Mean(simRes.JCTs())
		if c < s {
			t.Errorf("%s: cluster JCT %v should exceed sim %v (stale profile)", pol, c, s)
		}
	}
	palC, err := runTestbed(QuickScale(), PALPolicy, true)
	if err != nil {
		t.Fatal(err)
	}
	tirC, err := runTestbed(QuickScale(), Tiresias, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mean(palC.JCTs()) >= stats.Mean(tirC.JCTs()) {
		t.Error("PAL should beat Tiresias on the (simulated) physical cluster")
	}
}

func TestPolicyString(t *testing.T) {
	for _, pol := range AllPolicies() {
		if pol.String() == "" || strings.HasPrefix(pol.String(), "Policy(") {
			t.Errorf("policy %d has no name", int(pol))
		}
	}
	if !strings.HasPrefix(Policy(99).String(), "Policy(") {
		t.Error("unknown policy should stringify numerically")
	}
}

func TestProfileCaching(t *testing.T) {
	a := LonghornProfile(64)
	b := LonghornProfile(64)
	if a != b {
		t.Error("LonghornProfile not cached")
	}
	c := LonghornProfile(128)
	if c.NumGPUs() != 128 {
		t.Errorf("profile size %d", c.NumGPUs())
	}
}

func TestTableHelpers(t *testing.T) {
	tb := &Table{Name: "t", Title: "title", Header: []string{"a", "b"}}
	tb.AddRowf("x", 3)
	tb.AddRowf(1.5, "y")
	tb.Note("note %d", 7)
	s := tb.String()
	for _, want := range []string{"t: title", "x", "note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if Pct(0.42) != "+42.0%" {
		t.Errorf("Pct = %s", Pct(0.42))
	}
	if Pct(-0.07) != "-7.0%" {
		t.Errorf("Pct = %s", Pct(-0.07))
	}
	if h := Hours(7200); h != "2.00" {
		t.Errorf("Hours = %s", h)
	}
}

// TestFig13ImprovementShrinksWithPenalty: the Fig. 13 trend — PM-First's
// edge over Tiresias shrinks as the locality penalty grows.
func TestFig13ImprovementShrinksWithPenalty(t *testing.T) {
	scale := QuickScale()
	table, err := Fig13(scale)
	if err != nil {
		t.Fatal(err)
	}
	var tiresias, pmfirst []float64
	for _, row := range table.Rows {
		vals := make([]float64, 0, len(row)-1)
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("unparsable cell %q", cell)
			}
			vals = append(vals, v)
		}
		switch row[0] {
		case "Tiresias":
			tiresias = vals
		case "PM-First":
			pmfirst = vals
		}
	}
	if len(tiresias) == 0 || len(pmfirst) == 0 {
		t.Fatal("missing rows")
	}
	n := len(tiresias) - 1
	impLo := stats.Improvement(tiresias[0], pmfirst[0])
	impHi := stats.Improvement(tiresias[n], pmfirst[n])
	if impHi >= impLo {
		t.Errorf("PM-First improvement should shrink with penalty: %v -> %v", impLo, impHi)
	}
}
