package experiments

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// SiaRun bundles the per-policy results of one Sia-Philly workload.
type SiaRun struct {
	WorkloadIdx int
	Results     map[Policy]*sim.Result
}

// SiaBaselineSpecs enumerates §V-B's baseline grid — every Sia-Philly
// workload of the scale × every placement policy, FIFO scheduling,
// 64-GPU cluster, Longhorn profile, per-model locality penalties — in
// workload-major order. The specs feed the runner pool; the benchmark
// harness also uses them to measure sequential-vs-parallel wall clock.
func SiaBaselineSpecs(scale Scale) []RunSpec {
	profile := LonghornProfile(SiaTopology().Size())
	modelL := trace.LacrossByModel()
	specs := make([]RunSpec, 0, len(scale.SiaTraces)*int(numPolicies))
	for _, idx := range scale.SiaTraces {
		tr := SiaTrace(idx)
		for _, pol := range AllPolicies() {
			specs = append(specs, RunSpec{
				Trace:        tr,
				Topo:         SiaTopology(),
				Sched:        FIFOSched,
				Policy:       pol,
				Profile:      profile,
				Lacross:      1.5, // fallback for models missing from the map
				ModelLacross: modelL,
				Seed:         ExperimentSeed ^ uint64(idx),
			})
		}
	}
	return specs
}

// RunSiaBaseline simulates the baseline grid through the runner pool.
// Results are memoized in the pool's content-addressed cache — keyed on
// the full run configuration (trace, profile, penalties, seed), not a
// name string, so a changed scale or penalty can never alias a previous
// entry — which keeps the repeated consumers (Fig. 11, Fig. 12, the
// headline metrics) at one simulation per configuration.
func RunSiaBaseline(scale Scale) ([]SiaRun, error) {
	results, err := RunAll(scale.ctx(), "sia-baseline", SiaBaselineSpecs(scale))
	if err != nil {
		return nil, fmt.Errorf("sia baseline: %w", err)
	}
	runs := make([]SiaRun, 0, len(scale.SiaTraces))
	i := 0
	for _, idx := range scale.SiaTraces {
		run := SiaRun{WorkloadIdx: idx, Results: make(map[Policy]*sim.Result, numPolicies)}
		for _, pol := range AllPolicies() {
			run.Results[pol] = results[i]
			i++
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// Fig11 reproduces Figure 11: average JCT per Sia-Philly workload for
// every placement policy, normalized to Tiresias (Packed-Sticky), under
// FIFO scheduling, plus the geomean column.
func Fig11(scale Scale) (*Table, error) {
	runs, err := RunSiaBaseline(scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig11",
		Title:  "Avg JCT normalized to Tiresias, Sia-Philly workloads, 64 GPUs, FIFO",
		Header: append([]string{"policy"}, workloadCols(runs)...),
	}
	perPolicy := make(map[Policy][]float64) // normalized JCTs across workloads
	for _, pol := range AllPolicies() {
		row := []string{pol.String()}
		for _, run := range runs {
			base := stats.Mean(run.Results[Tiresias].JCTs())
			ours := stats.Mean(run.Results[pol].JCTs())
			norm := ours / base
			perPolicy[pol] = append(perPolicy[pol], norm)
			row = append(row, fmt.Sprintf("%.3f", norm))
		}
		row = append(row, fmt.Sprintf("%.3f", stats.GeoMean(perPolicy[pol])))
		t.AddRow(row...)
	}
	palGeo := stats.GeoMean(perPolicy[PALPolicy])
	pmfGeo := stats.GeoMean(perPolicy[PMFirst])
	t.Note("geomean avg-JCT improvement vs Tiresias: PM-First %s, PAL %s (paper: ~40%%, ~42-43%%)",
		Pct(1-pmfGeo), Pct(1-palGeo))
	// Per-job paired bootstrap on the first workload quantifies how much
	// of the improvement claim is trace luck.
	if len(runs) > 0 {
		base := runs[0].Results[Tiresias].JCTs()
		ours := runs[0].Results[PALPolicy].JCTs()
		ci := stats.BootstrapImprovementCI(base, ours, 1000, 0.95, ExperimentSeed)
		t.Note("w%d PAL improvement 95%% bootstrap CI: [%s, %s]",
			runs[0].WorkloadIdx, Pct(ci.Low), Pct(ci.High))
	}
	// Per-class breakdown validates the mechanism: variability-sensitive
	// Class A should benefit the most from PAL's class-priority
	// placement; near-flat Class C benefits mostly via queue drainage.
	for class := vprof.Class(0); class < vprof.NumClasses; class++ {
		var imps []float64
		for _, run := range runs {
			base := classJCTs(run.Results[Tiresias], class)
			ours := classJCTs(run.Results[PALPolicy], class)
			if b, o := stats.Mean(base), stats.Mean(ours); b > 0 && o > 0 {
				imps = append(imps, o/b)
			}
		}
		t.Note("class %s geomean PAL improvement: %s", class, Pct(1-stats.GeoMean(imps)))
	}
	return t, nil
}

// classJCTs extracts the measured JCTs of one variability class.
func classJCTs(res *sim.Result, class vprof.Class) []float64 {
	var out []float64
	for _, j := range res.Measured {
		if j.Spec.Class == class {
			out = append(out, j.JCT())
		}
	}
	return out
}

func workloadCols(runs []SiaRun) []string {
	cols := make([]string, 0, len(runs)+1)
	for _, r := range runs {
		cols = append(cols, fmt.Sprintf("w%d", r.WorkloadIdx))
	}
	return append(cols, "geomean")
}

// Fig12 reproduces Figure 12: per-job wait times under Tiresias, PM-First
// and PAL for workloads 3 and 5 (the best- and worst-improvement traces).
// The table reports the summary statistics plus a down-sampled job-ID
// series mirroring the scatter plot.
func Fig12(scale Scale) (*Table, error) {
	runs, err := RunSiaBaseline(scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig12",
		Title:  "Wait time vs job ID, Sia-Philly workloads 3 and 5, FIFO",
		Header: []string{"workload", "policy", "mean wait (h)", "p99 wait (h)", "max wait (h)"},
	}
	for _, run := range runs {
		if run.WorkloadIdx != 3 && run.WorkloadIdx != 5 {
			continue
		}
		for _, pol := range []Policy{Tiresias, PMFirst, PALPolicy} {
			waits := run.Results[pol].Waits()
			t.AddRow(
				fmt.Sprintf("w%d", run.WorkloadIdx),
				pol.String(),
				Hours(stats.Mean(waits)),
				Hours(stats.Percentile(waits, 99)),
				Hours(stats.Max(waits)),
			)
		}
	}
	// Down-sampled series: wait of every 20th job under Tiresias vs PAL,
	// workload 5 (the paper's blocking-job narrative).
	for _, run := range runs {
		if run.WorkloadIdx != 5 {
			continue
		}
		tw := run.Results[Tiresias].Waits()
		pw := run.Results[PALPolicy].Waits()
		n := len(tw)
		if len(pw) < n {
			n = len(pw)
		}
		for i := 0; i < n; i += 20 {
			t.Note("w5 job %3d: wait tiresias=%sh pal=%sh", i, Hours(tw[i]), Hours(pw[i]))
		}
	}
	t.Note("paper: w5 (early 48-GPU job) has much longer waits than w3; PAL/PM-First drain the queue faster")
	return t, nil
}

// Fig13 reproduces Figure 13: Sia-Philly average JCT as the constant
// inter-node locality penalty sweeps from 1.0 to 3.0. Packing policies
// close on PM-First as the penalty grows; PAL stays ahead.
func Fig13(scale Scale) (*Table, error) {
	profile := LonghornProfile(SiaTopology().Size())
	t := &Table{
		Name:   "fig13",
		Title:  "Sia avg JCT (hours) vs inter-node locality penalty, FIFO",
		Header: []string{"policy"},
	}
	for _, pen := range scale.SiaPenalties {
		t.Header = append(t.Header, fmt.Sprintf("C%.1f", pen))
	}
	// Enumerate the penalty × policy × workload grid through the pool;
	// the trailing per-trace dimension averages into one point per
	// (penalty, policy) cell.
	specs := make([]RunSpec, 0, len(scale.SiaPenalties)*len(AllPolicies())*len(scale.SiaTraces))
	for _, pen := range scale.SiaPenalties {
		for _, pol := range AllPolicies() {
			for _, idx := range scale.SiaTraces {
				specs = append(specs, RunSpec{
					Trace:   SiaTrace(idx),
					Topo:    SiaTopology(),
					Sched:   FIFOSched,
					Policy:  pol,
					Profile: profile,
					Lacross: pen,
					// One independent stream per (workload, penalty) cell,
					// shared across policies so comparisons stay paired.
					// The textual key avoids the collisions of ad-hoc
					// integer mixing (uint64(pen*100) conflated close
					// penalties).
					Seed: runner.DeriveSeed(ExperimentSeed, fmt.Sprintf("fig13|w%d|pen%g", idx, pen)),
				})
			}
		}
	}
	results, err := RunAll(scale.ctx(), "fig13", specs)
	if err != nil {
		return nil, fmt.Errorf("fig13: %w", err)
	}
	perPolicy := make(map[Policy][]float64)
	i := 0
	for range scale.SiaPenalties {
		for _, pol := range AllPolicies() {
			var jcts []float64
			for range scale.SiaTraces {
				jcts = append(jcts, stats.Mean(results[i].JCTs()))
				i++
			}
			perPolicy[pol] = append(perPolicy[pol], stats.Mean(jcts))
		}
	}
	for _, pol := range AllPolicies() {
		row := []string{pol.String()}
		for _, v := range perPolicy[pol] {
			row = append(row, Hours(v))
		}
		t.AddRow(row...)
	}
	if n := len(scale.SiaPenalties); n > 0 {
		lo, hi := 0, n-1
		pmLo := stats.Improvement(perPolicy[Tiresias][lo], perPolicy[PMFirst][lo])
		pmHi := stats.Improvement(perPolicy[Tiresias][hi], perPolicy[PMFirst][hi])
		palLo := stats.Improvement(perPolicy[Tiresias][lo], perPolicy[PALPolicy][lo])
		palHi := stats.Improvement(perPolicy[Tiresias][hi], perPolicy[PALPolicy][hi])
		t.Note("PM-First vs Tiresias: %s at C%.1f -> %s at C%.1f (paper: 30%% -> 9%%)",
			Pct(pmLo), scale.SiaPenalties[lo], Pct(pmHi), scale.SiaPenalties[hi])
		t.Note("PAL vs Tiresias: %s -> %s (paper: 30%% -> 20%%)", Pct(palLo), Pct(palHi))
	}
	return t, nil
}

// Headline reproduces the abstract's aggregate claims over the Sia
// workloads: geomean improvements of PM-First and PAL over Tiresias in
// average JCT, 99th-percentile JCT, makespan and cluster utilization.
func Headline(scale Scale) (*Table, error) {
	runs, err := RunSiaBaseline(scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "headline",
		Title:  "Geomean improvements over Tiresias across Sia-Philly workloads",
		Header: []string{"metric", "PM-First", "PAL", "paper PM-First", "paper PAL"},
	}
	type metric struct {
		name         string
		value        func(*sim.Result) float64
		higherIsGood bool
		paperPM      string
		paperPAL     string
	}
	metrics := []metric{
		{"avg JCT", func(r *sim.Result) float64 { return stats.Mean(r.JCTs()) }, false, "+40%", "+42%"},
		{"p99 JCT", func(r *sim.Result) float64 { return stats.Percentile(r.JCTs(), 99) }, false, "+40%", "+41%"},
		{"makespan", func(r *sim.Result) float64 { return r.Makespan }, false, "+44%", "+47%"},
		{"utilization (productive)", func(r *sim.Result) float64 { return r.ProductiveUtilization }, true, "+26%", "+28%"},
		{"utilization (allocated)", func(r *sim.Result) float64 { return r.Utilization }, true, "", ""},
	}
	for _, m := range metrics {
		row := []string{m.name}
		for _, pol := range []Policy{PMFirst, PALPolicy} {
			var ratios []float64
			for _, run := range runs {
				base := m.value(run.Results[Tiresias])
				ours := m.value(run.Results[pol])
				if base <= 0 || ours <= 0 {
					continue
				}
				ratios = append(ratios, ours/base)
			}
			geo := stats.GeoMean(ratios)
			var imp float64
			if m.higherIsGood {
				imp = geo - 1
			} else {
				imp = 1 - geo
			}
			row = append(row, Pct(imp))
		}
		row = append(row, m.paperPM, m.paperPAL)
		t.AddRow(row...)
	}
	return t, nil
}
