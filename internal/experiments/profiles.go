package experiments

import (
	"fmt"

	"repro/internal/classifier"
	"repro/internal/kmeans"
	"repro/internal/stats"
	"repro/internal/vprof"
)

// Fig03 reproduces Figure 3: the nine profiled applications placed in the
// DRAMUtil × PeakFUUtil space and grouped into three classes by K-Means.
func Fig03(Scale) (*Table, error) {
	apps := classifier.BuiltinApps()
	cl, err := classifier.Classify(apps, 3)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig03",
		Title:  "Application classification (K-Means over PeakFUUtil x DRAMUtil, K=3)",
		Header: []string{"app", "PeakFUUtil", "DRAMUtil", "class"},
	}
	for _, a := range apps {
		fu, dram := a.Point()
		class, _ := cl.ClassOf(a.Name)
		t.AddRow(a.Name, fmt.Sprintf("%.2f", fu), fmt.Sprintf("%.2f", dram),
			"Class "+class.String())
	}
	for c, ctr := range cl.Centers {
		t.Note("class %s centroid: PeakFU=%.2f DRAM=%.2f", vprof.Class(c), ctr[0], ctr[1])
	}
	t.Note("paper (Table II): Class A = {sgemm, dcgan, vgg19, resnet variants}, Class B = {bert, lammps}, Class C = {pagerank, pointnet}")
	return t, nil
}

// Fig05 reproduces Figure 5: K-Means binning of a 128-GPU Class-A
// variability profile, with each bin's centroid and population, including
// >3-sigma outliers handled as their own exact-score bins.
func Fig05(Scale) (*Table, error) {
	p := LonghornProfile(128)
	scores := p.ClassScores(vprof.ClassA)
	sel := kmeans.SelectK(scores)
	b := kmeans.Bin(scores)
	t := &Table{
		Name:   "fig05",
		Title:  "PM-score binning of a 128-GPU Class-A profile",
		Header: []string{"bin", "centroid score", "GPUs"},
	}
	counts := make([]int, b.NumBins())
	for _, bin := range b.BinOf {
		counts[bin]++
	}
	for i, s := range b.Scores {
		t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.3f", s), fmt.Sprintf("%d", counts[i]))
	}
	t.Note("silhouette-selected K=%d (score %.3f) over inliers; %d GPUs are >3-sigma outliers with exact-score bins",
		sel.K, sel.Score, len(sel.OutlierIdx))
	t.Note("paper: most GPUs fall in the first 2 clusters near the median; outliers are >2.5x slower")
	return t, nil
}

// Fig06to08 reproduces Figures 6-8: the per-application variability
// profiles of Frontera, Longhorn and the 64-GPU testbed subset, reported
// as the geomean variability, quartiles and maximum of the
// normalized-to-median scores.
func Fig06to08(Scale) (*Table, error) {
	t := &Table{
		Name:   "fig06_08",
		Title:  "Synthetic cluster variability profiles (normalized to median GPU)",
		Header: []string{"cluster", "class (model)", "geomean var", "p25", "p75", "max"},
	}
	classModel := map[vprof.Class]string{
		vprof.ClassA: "ResNet50",
		vprof.ClassB: "BERT",
		vprof.ClassC: "PageRank",
	}
	profiles := []*vprof.Profile{
		vprof.GenerateFrontera(360, ProfileSeed+1), // Fig. 6: 360 Quadro RTX 5000 GPUs
		vprof.GenerateLonghorn(416, ProfileSeed),   // Fig. 7
		TestbedProfile(),                           // Fig. 8: 64-GPU testbed subset
	}
	for _, p := range profiles {
		for c := vprof.Class(0); int(c) < p.NumClasses(); c++ {
			scores := p.ClassScores(c)
			t.AddRow(p.Name(),
				fmt.Sprintf("%s (%s)", c, classModel[c]),
				Pct(p.Variability(c)),
				fmt.Sprintf("%.3f", stats.Percentile(scores, 25)),
				fmt.Sprintf("%.3f", stats.Percentile(scores, 75)),
				fmt.Sprintf("%.2f", p.MaxScore(c)))
		}
	}
	t.Note("paper: ResNet50 ~13-22%% variability with tails to 2.5-3.5x; PageRank ~1%%; testbed Class A ~6%% vs 13.3%% full Frontera")
	return t, nil
}
