package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// This file holds ablation experiments beyond the paper's figures,
// probing the design choices DESIGN.md calls out: the number of PM-score
// bins (K), the placement-priority reordering, migration hysteresis, the
// online re-profiling extension, and the three-level rack locality
// extension.

// runSiaAblation fans one simulation per Sia trace out through the
// shared pool and returns the per-trace results in trace order. The
// tasks are uncached (empty keys): ablation placers are hand-built
// closures whose configuration has no canonical hash, and caching a
// mis-keyed run is exactly the hazard the content-addressed cache
// exists to prevent. configure builds the per-run sim.Config; it is
// called once per trace inside the worker, so every run gets fresh
// placer state.
func runSiaAblation(scale Scale, label string, configure func(idx int) sim.Config) ([]*sim.Result, error) {
	sweep := runner.NewSweep(Pool())
	for _, idx := range scale.SiaTraces {
		idx := idx
		sweep.Add("", fmt.Sprintf("%s w%d", label, idx), func() (*sim.Result, error) {
			return sim.Run(configure(idx))
		})
	}
	return sweep.Run(scale.ctx())
}

// runSiaWithPlacer runs the Sia baseline configuration with an explicit
// placer, averaged over the scale's traces.
func runSiaWithPlacer(scale Scale, build func() sim.Placer) (float64, error) {
	profile := LonghornProfile(SiaTopology().Size())
	results, err := runSiaAblation(scale, "ablation", func(idx int) sim.Config {
		return sim.Config{
			Topology:            SiaTopology(),
			Trace:               SiaTrace(idx),
			Sched:               FIFOSched,
			Placer:              build(),
			TrueProfile:         profile,
			Lacross:             1.5,
			ModelLacross:        trace.LacrossByModel(),
			MigrationPenaltySec: DefaultMigrationPenaltySec,
		}
	})
	if err != nil {
		return 0, err
	}
	var jcts []float64
	for _, res := range results {
		jcts = append(jcts, stats.Mean(res.JCTs()))
	}
	return stats.Mean(jcts), nil
}

// AblationK sweeps the number of PM-score bins feeding PM-First, from
// K=1 (variability-blind) through fixed Ks to the silhouette-selected
// binning and exact per-GPU scores (§III-B's "very small K loses
// information, very high K overestimates variability").
func AblationK(scale Scale) (*Table, error) {
	profile := LonghornProfile(SiaTopology().Size())
	t := &Table{
		Name:   "ablation_k",
		Title:  "PM-First avg JCT (hours) vs PM-score bin count (Sia, FIFO)",
		Header: []string{"binning", "avg JCT (h)"},
	}
	type variant struct {
		name  string
		build func() sim.Placer
	}
	variants := []variant{}
	for _, k := range []int{1, 2, 4, 8} {
		k := k
		variants = append(variants, variant{
			name: fmt.Sprintf("fixed K=%d", k),
			build: func() sim.Placer {
				return core.NewPMFirst(vprof.BinProfileK(profile, k))
			},
		})
	}
	variants = append(variants,
		variant{"silhouette-selected", func() sim.Placer {
			return core.NewPMFirst(binned(profile))
		}},
		variant{"exact scores", func() sim.Placer {
			return core.NewPMFirst(profile)
		}},
	)
	for _, v := range variants {
		jct, err := runSiaWithPlacer(scale, v.build)
		if err != nil {
			return nil, fmt.Errorf("ablation_k %s: %w", v.name, err)
		}
		t.AddRow(v.name, Hours(jct))
	}
	t.Note("K=1 collapses every GPU into one bin (variability-blind); exact scores are the upper bound on information")
	return t, nil
}

// AblationPriority compares PM-First with and without the class-based
// placement-priority reordering of the schedulable prefix (Fig. 4).
func AblationPriority(scale Scale) (*Table, error) {
	profile := LonghornProfile(SiaTopology().Size())
	t := &Table{
		Name:   "ablation_priority",
		Title:  "Effect of class placement priority on PM-First (Sia, FIFO)",
		Header: []string{"variant", "avg JCT (h)"},
	}
	withJCT, err := runSiaWithPlacer(scale, func() sim.Placer {
		return core.NewPMFirst(binned(profile))
	})
	if err != nil {
		return nil, err
	}
	withoutJCT, err := runSiaWithPlacer(scale, func() sim.Placer {
		p := core.NewPMFirst(binned(profile))
		p.NoClassPriority = true
		return p
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("class priority on (paper)", Hours(withJCT))
	t.AddRow("class priority off", Hours(withoutJCT))
	t.Note("priority-on lets class-A jobs pick well-performing GPUs first: %s JCT change when disabled",
		Pct(stats.Improvement(withoutJCT, withJCT)))
	return t, nil
}

// AblationHysteresis compares PAL with and without migration hysteresis
// (re-using the previous allocation when it is not strictly worse).
func AblationHysteresis(scale Scale) (*Table, error) {
	profile := LonghornProfile(SiaTopology().Size())
	t := &Table{
		Name:   "ablation_hysteresis",
		Title:  "Effect of migration hysteresis on PAL (Sia, LAS)",
		Header: []string{"variant", "avg JCT (h)", "migrations/job"},
	}
	run := func(disable bool) (float64, float64, error) {
		results, err := runSiaAblation(scale, "ablation_hysteresis", func(idx int) sim.Config {
			p := core.NewPAL(binned(profile), 1.5, trace.LacrossByModel())
			p.NoHysteresis = disable
			return sim.Config{
				Topology:            SiaTopology(),
				Trace:               SiaTrace(idx),
				Sched:               LASSched,
				Placer:              p,
				TrueProfile:         profile,
				Lacross:             1.5,
				ModelLacross:        trace.LacrossByModel(),
				MigrationPenaltySec: DefaultMigrationPenaltySec,
			}
		})
		if err != nil {
			return 0, 0, err
		}
		var jcts, migs []float64
		for _, res := range results {
			jcts = append(jcts, stats.Mean(res.JCTs()))
			total := 0
			for _, j := range res.Jobs {
				total += j.Migrations
			}
			migs = append(migs, float64(total)/float64(len(res.Jobs)))
		}
		return stats.Mean(jcts), stats.Mean(migs), nil
	}
	onJCT, onMig, err := run(false)
	if err != nil {
		return nil, err
	}
	offJCT, offMig, err := run(true)
	if err != nil {
		return nil, err
	}
	t.AddRow("hysteresis on", Hours(onJCT), fmt.Sprintf("%.2f", onMig))
	t.AddRow("hysteresis off", Hours(offJCT), fmt.Sprintf("%.2f", offMig))
	t.Note("hysteresis avoids checkpoint costs from equal-quality reshuffles")
	return t, nil
}

// AblationOnline replays the stale-profile testbed scenario (§V-A) with
// the online re-profiling extension: the OnlineScorer learns the true
// node-0 scores from execution feedback, shrinking the cluster-to-sim gap
// the paper attributes to static profiles.
func AblationOnline(scale Scale) (*Table, error) {
	view, truth := testbedTruth()
	t := &Table{
		Name:   "ablation_online",
		Title:  "Online PM-score re-profiling vs static stale profile (testbed cluster mode)",
		Header: []string{"variant", "avg JCT (h)"},
	}
	base := binned(view)

	// Both variants go through the pool (uncached: the online scorer is
	// mutable per-run state) so cancellation reaches them; each task
	// builds its own placer/observer inside the worker.
	baseConfig := func() sim.Config {
		return sim.Config{
			Topology:            SiaTopology(),
			Trace:               SiaTrace(1),
			Sched:               LASSched,
			TrueProfile:         truth,
			Lacross:             1.5,
			ModelLacross:        trace.LacrossByModel(),
			MigrationPenaltySec: DefaultMigrationPenaltySec,
		}
	}
	sweep := runner.NewSweep(Pool())
	// Static stale profile (the paper's configuration).
	sweep.Add("", "ablation_online static", func() (*sim.Result, error) {
		cfg := baseConfig()
		cfg.Placer = core.NewPAL(base, 1.5, trace.LacrossByModel())
		return sim.Run(cfg)
	})
	// Online: the scorer observes realized slowdowns and corrects.
	sweep.Add("", "ablation_online online", func() (*sim.Result, error) {
		online := core.NewOnlineScorer(base)
		cfg := baseConfig()
		cfg.Placer = core.NewPAL(online, 1.5, trace.LacrossByModel())
		cfg.Observer = online
		return sim.Run(cfg)
	})
	results, err := sweep.Run(scale.ctx())
	if err != nil {
		return nil, err
	}

	staticJCT := stats.Mean(results[0].JCTs())
	onlineJCT := stats.Mean(results[1].JCTs())
	t.AddRow("PAL, static stale profile", Hours(staticJCT))
	t.AddRow("PAL, online re-profiling", Hours(onlineJCT))
	t.Note("online updates recover %s of JCT vs the stale static profile (paper's proposed fix for the cluster/sim gap)",
		Pct(stats.Improvement(staticJCT, onlineJCT)))
	return t, nil
}

// AblationRack evaluates the three-level rack locality extension on a
// racked 64-GPU cluster: with a cheap intra-rack penalty, three-level PAL
// can spill packed jobs into the rack instead of paying the full
// cross-rack penalty.
func AblationRack(scale Scale) (*Table, error) {
	topo := SiaTopology()
	topo.NodesPerRack = 4 // 4 racks x 4 nodes x 4 GPUs
	profile := LonghornProfile(topo.Size())
	const lrack, lacross = 1.15, 1.8

	t := &Table{
		Name:   "ablation_rack",
		Title:  "Two-level vs three-level (rack) L x V matrix (racked Sia cluster)",
		Header: []string{"variant", "avg JCT (h)"},
	}
	run := func(rack bool) (float64, error) {
		results, err := runSiaAblation(scale, "ablation_rack", func(idx int) sim.Config {
			p := core.NewPAL(binned(profile), lacross, nil)
			if rack {
				p.EnableRackLevel(lrack)
			}
			return sim.Config{
				Topology:            topo,
				Trace:               SiaTrace(idx),
				Sched:               FIFOSched,
				Placer:              p,
				TrueProfile:         profile,
				Lacross:             lacross,
				Lrack:               lrack,
				MigrationPenaltySec: DefaultMigrationPenaltySec,
			}
		})
		if err != nil {
			return 0, err
		}
		var jcts []float64
		for _, res := range results {
			jcts = append(jcts, stats.Mean(res.JCTs()))
		}
		return stats.Mean(jcts), nil
	}
	two, err := run(false)
	if err != nil {
		return nil, err
	}
	three, err := run(true)
	if err != nil {
		return nil, err
	}
	t.AddRow("two-level (paper)", Hours(two))
	t.AddRow("three-level (rack extension)", Hours(three))
	t.Note("both runs execute under the rack-aware cost model (Lrack=%.2f, Lacross=%.2f); only the placer's matrix differs", lrack, lacross)
	return t, nil
}
