// Package experiments contains one runner per table/figure of the paper's
// evaluation (§V). Each runner assembles traces, profiles, schedulers and
// placement policies, executes the simulations, and returns a Table whose
// rows mirror the series the paper plots. The same runners back both the
// cmd/palexp CLI and the root-level benchmark harness, and EXPERIMENTS.md
// records paper-vs-measured values for each.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, column header, rows of
// cells, and free-form notes (e.g. the paper's reference values).
type Table struct {
	Name   string // experiment ID, e.g. "fig11"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting each value with the given verbs;
// values may be string, int, or float64 (formatted %.3g unless a float
// format is supplied via F).
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns, suitable for terminal
// output and for pasting into EXPERIMENTS.md.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			for p := 0; p < pad; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Pct formats a fraction as a signed percentage ("+42.0%").
func Pct(frac float64) string {
	return fmt.Sprintf("%+.1f%%", frac*100)
}

// Hours formats seconds as hours with two decimals.
func Hours(sec float64) string {
	return fmt.Sprintf("%.2f", sec/3600)
}
