package trace

import (
	"math"
	"testing"

	"repro/internal/vprof"
)

func TestSiaPhillyBasics(t *testing.T) {
	params := DefaultSiaPhillyParams()
	tr := SiaPhilly(params, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 160 {
		t.Fatalf("jobs = %d, want 160", len(tr.Jobs))
	}
	last := tr.Jobs[len(tr.Jobs)-1]
	if last.Arrival > params.WindowHours*3600 {
		t.Errorf("last arrival %v beyond window", last.Arrival)
	}
}

func TestSiaPhillyDeterministic(t *testing.T) {
	a := SiaPhilly(DefaultSiaPhillyParams(), 2)
	b := SiaPhilly(DefaultSiaPhillyParams(), 2)
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("trace not deterministic at job %d", i)
		}
	}
	c := SiaPhilly(DefaultSiaPhillyParams(), 3)
	if a.Jobs[0] == c.Jobs[0] && a.Jobs[1] == c.Jobs[1] && a.Jobs[2] == c.Jobs[2] {
		t.Error("different workload indices look identical")
	}
}

func TestSiaPhillyDemandMix(t *testing.T) {
	// Aggregate over all 8 workloads: ~40% single-GPU, max demand 48.
	var single, total int
	maxD := 0
	for idx := 1; idx <= 8; idx++ {
		tr := SiaPhilly(DefaultSiaPhillyParams(), idx)
		for _, j := range tr.Jobs {
			total++
			if j.Demand == 1 {
				single++
			}
			if j.Demand > maxD {
				maxD = j.Demand
			}
		}
	}
	frac := float64(single) / float64(total)
	if frac < 0.33 || frac > 0.47 {
		t.Errorf("single-GPU fraction = %v, want ~0.40", frac)
	}
	if maxD != 48 {
		t.Errorf("max demand = %d, want 48", maxD)
	}
}

func TestWorkload5EarlyBigJob(t *testing.T) {
	tr := SiaPhilly(DefaultSiaPhillyParams(), 5)
	j := tr.Jobs[19]
	if j.Demand != 48 {
		t.Errorf("workload 5 job 19 demand = %d, want 48", j.Demand)
	}
	if j.Model != "resnet50" || j.Class != vprof.ClassA {
		t.Errorf("workload 5 job 19 = %s/%v", j.Model, j.Class)
	}
	if j.Work < 2*3600 {
		t.Errorf("workload 5 job 19 work = %v, want long", j.Work)
	}
}

func TestWorkload3NoEarlyLargeJobs(t *testing.T) {
	tr := SiaPhilly(DefaultSiaPhillyParams(), 3)
	for i := 0; i <= 60; i++ {
		if tr.Jobs[i].Demand >= 16 {
			t.Errorf("workload 3 job %d has demand %d before the large-job region",
				i, tr.Jobs[i].Demand)
		}
	}
}

func TestSiaPhillyPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NumJobs=0 did not panic")
		}
	}()
	SiaPhilly(SiaPhillyParams{}, 1)
}

func TestSynergyBasics(t *testing.T) {
	params := DefaultSynergyParams(10)
	params.NumJobs = 1000
	tr := Synergy(params)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1000 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	if frac := tr.SingleGPUFraction(); frac < 0.75 || frac > 0.89 {
		t.Errorf("single-GPU fraction = %v, want >0.8", frac)
	}
	if tr.MaxDemand() > 32 {
		t.Errorf("max demand = %d", tr.MaxDemand())
	}
}

func TestSynergyArrivalRate(t *testing.T) {
	params := DefaultSynergyParams(10)
	params.NumJobs = 2000
	tr := Synergy(params)
	span := tr.Jobs[len(tr.Jobs)-1].Arrival - tr.Jobs[0].Arrival
	rate := float64(len(tr.Jobs)-1) / span * 3600
	if math.Abs(rate-10) > 1 {
		t.Errorf("empirical rate = %v jobs/hour, want ~10", rate)
	}
}

func TestSynergyRatesDiffer(t *testing.T) {
	lo := Synergy(DefaultSynergyParams(4))
	hi := Synergy(DefaultSynergyParams(20))
	loSpan := lo.Jobs[len(lo.Jobs)-1].Arrival
	hiSpan := hi.Jobs[len(hi.Jobs)-1].Arrival
	if hiSpan >= loSpan {
		t.Errorf("20 j/h span %v should be shorter than 4 j/h span %v", hiSpan, loSpan)
	}
}

func TestSynergyDeterministic(t *testing.T) {
	a := Synergy(DefaultSynergyParams(8))
	b := Synergy(DefaultSynergyParams(8))
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("synergy trace not deterministic at job %d", i)
		}
	}
}

func TestSynergyPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad params did not panic")
		}
	}()
	Synergy(SynergyParams{NumJobs: 10, JobsPerHour: 0})
}

func TestTableIIModels(t *testing.T) {
	models := TableIIModels()
	if len(models) != 6 {
		t.Fatalf("models = %d, want 6", len(models))
	}
	classes := map[string]vprof.Class{
		"pointnet": vprof.ClassC, "vgg19": vprof.ClassA, "dcgan": vprof.ClassA,
		"bert": vprof.ClassB, "resnet50": vprof.ClassA, "gpt2": vprof.ClassB,
	}
	var weight float64
	for _, m := range models {
		if want, ok := classes[m.Name]; !ok || m.Class != want {
			t.Errorf("model %s class %v", m.Name, m.Class)
		}
		if m.Lacross < 1.0 {
			t.Errorf("model %s penalty %v < 1", m.Name, m.Lacross)
		}
		weight += m.Weight
	}
	if math.Abs(weight-1.0) > 1e-9 {
		t.Errorf("mix weights sum to %v", weight)
	}
}

func TestLacrossByModel(t *testing.T) {
	m := LacrossByModel()
	if len(m) != 6 {
		t.Fatalf("map size %d", len(m))
	}
	if m["gpt2"] <= m["pointnet"] {
		t.Error("language models should pay more than pointnet for splitting")
	}
}

func TestJobClassesMatchModels(t *testing.T) {
	tr := SiaPhilly(DefaultSiaPhillyParams(), 1)
	classes := map[string]vprof.Class{}
	for _, m := range TableIIModels() {
		classes[m.Name] = m.Class
	}
	for _, j := range tr.Jobs {
		if j.Class != classes[j.Model] {
			t.Errorf("job %d model %s class %v, want %v", j.ID, j.Model, j.Class, classes[j.Model])
		}
	}
}

func TestTotalGPUSeconds(t *testing.T) {
	tr := &Trace{Name: "t", Jobs: []JobSpec{
		{ID: 0, Demand: 2, Work: 100, Arrival: 0},
		{ID: 1, Demand: 1, Work: 50, Arrival: 1},
	}}
	if got := tr.TotalGPUSeconds(); got != 250 {
		t.Errorf("TotalGPUSeconds = %v", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := SiaPhilly(DefaultSiaPhillyParams(), 1)
	broken := &Trace{Name: "b", Jobs: append([]JobSpec(nil), good.Jobs...)}
	broken.Jobs[5].Arrival = -1
	if broken.Validate() == nil {
		t.Error("descending arrival not caught")
	}
	broken2 := &Trace{Name: "b2", Jobs: append([]JobSpec(nil), good.Jobs...)}
	broken2.Jobs[3].Demand = 0
	if broken2.Validate() == nil {
		t.Error("zero demand not caught")
	}
	broken3 := &Trace{Name: "b3", Jobs: append([]JobSpec(nil), good.Jobs...)}
	broken3.Jobs[2].ID = 99
	if broken3.Validate() == nil {
		t.Error("non-dense IDs not caught")
	}
	broken4 := &Trace{Name: "b4", Jobs: append([]JobSpec(nil), good.Jobs...)}
	broken4.Jobs[4].Work = 0
	if broken4.Validate() == nil {
		t.Error("zero work not caught")
	}
}

func TestDurationBounds(t *testing.T) {
	params := DefaultSiaPhillyParams()
	for idx := 1; idx <= 8; idx++ {
		tr := SiaPhilly(params, idx)
		for _, j := range tr.Jobs {
			if j.ID == 19 && idx == 5 {
				continue // the injected big job has its own duration
			}
			if j.Work < 60 || j.Work > params.MaxWorkSec {
				t.Errorf("w%d job %d work %v outside bounds", idx, j.ID, j.Work)
			}
		}
	}
}

func TestSynergyJobsIndependentOfRate(t *testing.T) {
	a := Synergy(DefaultSynergyParams(4))
	b := Synergy(DefaultSynergyParams(20))
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Model != jb.Model || ja.Demand != jb.Demand || ja.Work != jb.Work {
			t.Fatalf("job %d attributes differ across rates: %+v vs %+v", i, ja, jb)
		}
		if ja.Arrival == jb.Arrival {
			t.Fatalf("job %d arrival identical across rates", i)
		}
	}
}

func BenchmarkSiaPhillyGeneration(b *testing.B) {
	params := DefaultSiaPhillyParams()
	for i := 0; i < b.N; i++ {
		_ = SiaPhilly(params, 1+i%8)
	}
}

func BenchmarkSynergyGeneration(b *testing.B) {
	params := DefaultSynergyParams(10)
	for i := 0; i < b.N; i++ {
		_ = Synergy(params)
	}
}
