package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	tr := SiaPhilly(DefaultSiaPhillyParams(), 2)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Jobs) != len(tr.Jobs) {
		t.Fatal("shape changed in round trip")
	}
	for i := range tr.Jobs {
		if got.Jobs[i] != tr.Jobs[i] {
			t.Fatalf("job %d changed: %+v vs %+v", i, got.Jobs[i], tr.Jobs[i])
		}
	}
}

func TestTraceLoadRejectsCorruption(t *testing.T) {
	cases := []string{
		"not json",
		`{"name":"x","jobs":[{"id":0,"demand":0,"work_sec":1}]}`, // zero demand
		`{"name":"x","jobs":[{"id":5,"demand":1,"work_sec":1}]}`, // non-dense IDs
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("corrupt trace accepted: %s", c)
		}
	}
}
