// Package trace generates the ML workload traces the evaluation runs on.
//
// The paper uses two trace families derived from Microsoft's Philly
// production traces (§IV-B): Sia-Philly (8 traces of 160 jobs submitted
// over 8 hours at 20 jobs/hour, 40% single-GPU, largest jobs up to 48
// GPUs) and Synergy (Poisson arrivals at a configurable rate, >80%
// single-GPU, Philly GPU-demand distribution, evaluated at steady state on
// jobs 2000-3000). We cannot redistribute Philly, so seeded generators
// reproduce the published moments of both families, including the two
// trace idiosyncrasies the paper analyses: workload 5's early-arriving
// 48-GPU job (job ID ~19) and workload 3's late-arriving large jobs
// (after job ID ~60).
package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/vprof"
)

// JobSpec describes one job of a workload trace, before any scheduling.
type JobSpec struct {
	ID      int
	Model   string      // model name (Table II mix)
	Class   vprof.Class // variability class of the model
	Arrival float64     // arrival time, seconds from trace start
	Demand  int         // number of GPUs requested (gang-scheduled)
	Work    float64     // ideal work in seconds on median GPUs within one node
}

// Trace is an ordered list of jobs (ascending arrival).
type Trace struct {
	Name string
	Jobs []JobSpec
}

// TotalGPUSeconds returns the trace's total ideal demand in GPU-seconds,
// a quick load sanity check used by tests.
func (t *Trace) TotalGPUSeconds() float64 {
	var s float64
	for _, j := range t.Jobs {
		s += float64(j.Demand) * j.Work
	}
	return s
}

// MaxDemand returns the largest GPU demand in the trace.
func (t *Trace) MaxDemand() int {
	m := 0
	for _, j := range t.Jobs {
		if j.Demand > m {
			m = j.Demand
		}
	}
	return m
}

// SingleGPUFraction returns the fraction of jobs requesting exactly 1 GPU.
func (t *Trace) SingleGPUFraction() float64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	n := 0
	for _, j := range t.Jobs {
		if j.Demand == 1 {
			n++
		}
	}
	return float64(n) / float64(len(t.Jobs))
}

// Model is one entry of the workload model mix (Table II).
type Model struct {
	Name   string
	Class  vprof.Class
	Weight float64 // sampling weight in the mix
	// Lacross is the model-specific inter-node locality penalty the paper
	// estimates from its physical-cluster runs (§IV-D) and uses in the
	// Sia simulations.
	Lacross float64
}

// TableIIModels returns the six-model mix of the paper's real-cluster
// evaluation (Table II) with per-model locality penalties. Class
// assignments follow Table II (PointNet C; vgg19, DCGAN, ResNet-50 A;
// BERT, GPT2 B). The penalty values are our calibration (§IV-D notes the
// measured penalties are model-dependent and lower than the initial 1.7
// estimate); communication-heavy language models pay more when split
// across nodes.
func TableIIModels() []Model {
	return []Model{
		{Name: "pointnet", Class: vprof.ClassC, Weight: 0.15, Lacross: 1.05},
		{Name: "vgg19", Class: vprof.ClassA, Weight: 0.17, Lacross: 1.40},
		{Name: "dcgan", Class: vprof.ClassA, Weight: 0.15, Lacross: 1.25},
		{Name: "bert", Class: vprof.ClassB, Weight: 0.18, Lacross: 1.50},
		{Name: "resnet50", Class: vprof.ClassA, Weight: 0.20, Lacross: 1.30},
		{Name: "gpt2", Class: vprof.ClassB, Weight: 0.15, Lacross: 1.60},
	}
}

// LacrossByModel returns the per-model locality-penalty map used by the
// Sia-Philly experiments.
func LacrossByModel() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range TableIIModels() {
		out[m.Name] = m.Lacross
	}
	return out
}

// pickModel samples a model from the mix.
func pickModel(r *rng.RNG, models []Model) Model {
	weights := make([]float64, len(models))
	for i, m := range models {
		weights[i] = m.Weight
	}
	return models[r.Choice(weights)]
}

// sampleDuration draws an ideal-work duration (seconds) from a lognormal
// with the given median and sigma, clamped to [minSec, maxSec]. Heavy
// tails match the Philly duration distribution's shape.
func sampleDuration(r *rng.RNG, medianSec, sigma, minSec, maxSec float64) float64 {
	d := r.LogNormal(math.Log(medianSec), sigma)
	if d < minSec {
		d = minSec
	}
	if d > maxSec {
		d = maxSec
	}
	return d
}

// demandDist is a discrete GPU-demand distribution.
type demandDist struct {
	demands []int
	weights []float64
}

func (d demandDist) sample(r *rng.RNG) int {
	return d.demands[r.Choice(d.weights)]
}

// siaDemands is the Sia-Philly demand mix: 40% single-GPU, multi-GPU jobs
// up to 48 GPUs (§IV-B1).
var siaDemands = demandDist{
	demands: []int{1, 2, 4, 8, 16, 32, 48},
	weights: []float64{0.40, 0.20, 0.15, 0.12, 0.06, 0.04, 0.03},
}

// synergyDemands preserves the Philly demand distribution with >80%
// single-GPU jobs (§IV-B1).
var synergyDemands = demandDist{
	demands: []int{1, 2, 4, 8, 16, 32},
	weights: []float64{0.82, 0.06, 0.06, 0.04, 0.015, 0.005},
}

// SiaPhillyParams configures a Sia-Philly-style trace.
type SiaPhillyParams struct {
	NumJobs       int     // jobs per trace (paper: 160)
	WindowHours   float64 // submission window (paper: 8h => 20 jobs/hour)
	MedianWorkSec float64 // median ideal duration
	DurationSigma float64 // lognormal sigma of durations
	MaxWorkSec    float64 // duration cap
	Seed          uint64  // base seed; the workload index is mixed in
}

// DefaultSiaPhillyParams returns the configuration used by the paper's
// Sia-Philly experiments, calibrated so a 64-GPU cluster sees sustained
// contention over the 8-hour submission window.
func DefaultSiaPhillyParams() SiaPhillyParams {
	return SiaPhillyParams{
		NumJobs:       160,
		WindowHours:   8,
		MedianWorkSec: 900,
		DurationSigma: 1.2,
		MaxWorkSec:    6 * 3600,
		Seed:          0x51A,
	}
}

// SiaPhilly generates Sia-Philly-style workload trace number idx (1-8 in
// the paper). Traces are deterministic in (params, idx). Two traces get
// the structural features §V-B discusses:
//   - workload 5: a 48-GPU, long job arrives early (job ID 19), blocking
//     subsequent jobs;
//   - workload 3: demands >= 16 GPUs only appear after job ID 60.
func SiaPhilly(params SiaPhillyParams, idx int) *Trace {
	if params.NumJobs <= 0 {
		panic(fmt.Sprintf("trace: SiaPhilly NumJobs=%d", params.NumJobs))
	}
	r := rng.New(params.Seed).Split(uint64(idx))
	models := TableIIModels()
	window := params.WindowHours * 3600

	jobs := make([]JobSpec, params.NumJobs)
	// Arrivals: a Poisson process conditioned on NumJobs arrivals in the
	// window is NumJobs uniform order statistics over the window.
	arrivals := make([]float64, params.NumJobs)
	for i := range arrivals {
		arrivals[i] = r.Float64() * window
	}
	sort.Float64s(arrivals)

	for i := range jobs {
		m := pickModel(r, models)
		demand := siaDemands.sample(r)
		if idx == 3 && i <= 60 && demand >= 16 {
			// Workload 3: large jobs only arrive later in the trace.
			demand = siaDemands.demands[r.Intn(3)] // 1, 2 or 4
		}
		work := sampleDuration(r, params.MedianWorkSec, params.DurationSigma, 60, params.MaxWorkSec)
		jobs[i] = JobSpec{
			ID:      i,
			Model:   m.Name,
			Class:   m.Class,
			Arrival: arrivals[i],
			Demand:  demand,
			Work:    work,
		}
	}
	if idx == 5 && len(jobs) > 19 {
		// Workload 5: an ImageNet job requesting 48 GPUs (75% of the
		// 64-GPU cluster) arrives early as job ID 19 and runs long.
		jobs[19].Model = "resnet50"
		jobs[19].Class = vprof.ClassA
		jobs[19].Demand = 48
		jobs[19].Work = 2.5 * 3600
	}
	return &Trace{Name: fmt.Sprintf("sia-philly-%d", idx), Jobs: jobs}
}

// SynergyParams configures a Synergy-style trace.
type SynergyParams struct {
	NumJobs       int     // total jobs generated
	JobsPerHour   float64 // Poisson arrival rate
	MedianWorkSec float64 // median ideal duration
	DurationSigma float64
	MaxWorkSec    float64
	Seed          uint64
}

// DefaultSynergyParams returns the Synergy configuration: Poisson
// arrivals at the given rate, durations calibrated so a 256-GPU cluster
// saturates near 10 jobs/hour (matching Fig. 15's saturation point).
// NumJobs defaults to 3200 so the steady-state measurement window of jobs
// 2000-3000 is well inside the trace.
func DefaultSynergyParams(jobsPerHour float64) SynergyParams {
	return SynergyParams{
		NumJobs:       3200,
		JobsPerHour:   jobsPerHour,
		MedianWorkSec: 8 * 3600,
		DurationSigma: 1.0,
		MaxWorkSec:    72 * 3600,
		Seed:          0x53E6,
	}
}

// Synergy generates a Synergy-style trace with Poisson arrivals.
//
// Job attributes (model, demand, duration) come from a stream that does
// not depend on the arrival rate, so sweeping JobsPerHour re-times the
// *same* job population — exactly how the paper varies load (§IV-B1
// "preserve the Philly trace's GPU demand and use a Poisson distribution
// of arrival times to vary job arrival rate"). Without this property a
// load sweep would compare different job sets and the Fig. 14 curve
// would not be monotone.
func Synergy(params SynergyParams) *Trace {
	if params.NumJobs <= 0 || params.JobsPerHour <= 0 {
		panic(fmt.Sprintf("trace: Synergy NumJobs=%d JobsPerHour=%g",
			params.NumJobs, params.JobsPerHour))
	}
	jobStream := rng.New(params.Seed).Split(1)
	arrivalStream := rng.New(params.Seed).Split(2 + uint64(params.JobsPerHour*1000))
	models := TableIIModels()
	ratePerSec := params.JobsPerHour / 3600

	jobs := make([]JobSpec, params.NumJobs)
	t := 0.0
	for i := range jobs {
		t += arrivalStream.Exp(ratePerSec) // Poisson inter-arrivals
		m := pickModel(jobStream, models)
		jobs[i] = JobSpec{
			ID:      i,
			Model:   m.Name,
			Class:   m.Class,
			Arrival: t,
			Demand:  synergyDemands.sample(jobStream),
			Work: sampleDuration(jobStream, params.MedianWorkSec,
				params.DurationSigma, 300, params.MaxWorkSec),
		}
	}
	return &Trace{
		Name: fmt.Sprintf("synergy-%.1fjph", params.JobsPerHour),
		Jobs: jobs,
	}
}

// Validate checks trace well-formedness: ascending arrivals, positive
// demands and work, dense IDs. Used by tests and CLI inspection.
func (t *Trace) Validate() error {
	prev := -math.MaxFloat64
	for i, j := range t.Jobs {
		if j.ID != i {
			return fmt.Errorf("trace %s: job %d has ID %d", t.Name, i, j.ID)
		}
		if j.Arrival < prev {
			return fmt.Errorf("trace %s: job %d arrives before its predecessor", t.Name, i)
		}
		if j.Demand <= 0 {
			return fmt.Errorf("trace %s: job %d has demand %d", t.Name, i, j.Demand)
		}
		if j.Work <= 0 {
			return fmt.Errorf("trace %s: job %d has work %g", t.Name, i, j.Work)
		}
		prev = j.Arrival
	}
	return nil
}
