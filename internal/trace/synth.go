package trace

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// This file holds the declarative synthetic workload generator behind
// the scenario layer (internal/scenario): a Philly-like job population
// (Table II model mix, configurable GPU-demand and lognormal-duration
// distributions) timed by one of three arrival processes. Like Synergy,
// job attributes and arrival times come from separate rng.Split streams,
// so changing the arrival process or rate re-times the *same* job
// population — load sweeps over synthetic scenarios compare like with
// like.

// ArrivalProcess names the arrival-time process of a synthetic workload.
type ArrivalProcess string

// The supported arrival processes.
const (
	// ArrivalPoisson is a homogeneous Poisson process at JobsPerHour.
	ArrivalPoisson ArrivalProcess = "poisson"
	// ArrivalBursty is a two-state Markov-modulated Poisson process:
	// quiet stretches at a low rate punctuated by bursts at
	// BurstFactor × the mean rate, with the rates balanced so the
	// time-average remains JobsPerHour. Production traces (Philly
	// included) are burstier than Poisson; this is the knob that
	// reproduces that.
	ArrivalBursty ArrivalProcess = "bursty"
	// ArrivalDiurnal is a nonhomogeneous Poisson process whose rate
	// follows a sinusoidal day/night cycle with the given peak-to-trough
	// ratio, sampled by thinning.
	ArrivalDiurnal ArrivalProcess = "diurnal"
)

// SynthParams configures a synthetic Philly-like trace. The zero value
// of every optional field selects a documented default, so a minimal
// scenario spec only names the process, the rate and the job count.
type SynthParams struct {
	Name    string // trace name (default "synth-<process>")
	NumJobs int    // number of jobs (required, > 0)
	Seed    uint64 // base seed; attribute and arrival streams are Split from it

	// Arrivals selects the arrival process (default ArrivalPoisson).
	Arrivals    ArrivalProcess
	JobsPerHour float64 // mean arrival rate (required, > 0)

	// Bursty parameters.
	BurstFactor   float64 // rate multiplier inside bursts (default 6; must satisfy BurstFactor × BurstFraction < 1)
	BurstFraction float64 // fraction of time spent bursting (default 0.1)
	BurstMeanSec  float64 // mean burst duration in seconds (default 1800)

	// Diurnal parameters.
	PeriodHours  float64 // cycle length (default 24)
	PeakToTrough float64 // peak rate / trough rate (default 4, must be >= 1)

	// Job population. Demands/DemandWeights default to the Philly
	// demand mix (>80% single-GPU); Models defaults to TableIIModels.
	Demands       []int
	DemandWeights []float64
	Models        []Model

	// Duration distribution: lognormal around MedianWorkSec with
	// DurationSigma, clamped to [MinWorkSec, MaxWorkSec]. Defaults:
	// median 2 h, sigma 1.0, min 300 s, max 72 h.
	MedianWorkSec float64
	DurationSigma float64
	MinWorkSec    float64
	MaxWorkSec    float64
}

// withDefaults returns a copy of p with zero fields defaulted. It is
// idempotent, which the scenario layer's canonicalization relies on.
func (p SynthParams) withDefaults() SynthParams {
	if p.Arrivals == "" {
		p.Arrivals = ArrivalPoisson
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("synth-%s", p.Arrivals)
	}
	if p.BurstFactor <= 0 {
		p.BurstFactor = 6
	}
	if p.BurstFraction <= 0 {
		p.BurstFraction = 0.1
	}
	if p.BurstMeanSec <= 0 {
		p.BurstMeanSec = 1800
	}
	if p.PeriodHours <= 0 {
		p.PeriodHours = 24
	}
	if p.PeakToTrough <= 0 {
		p.PeakToTrough = 4
	}
	if len(p.Demands) == 0 {
		p.Demands = append([]int(nil), synergyDemands.demands...)
		p.DemandWeights = append([]float64(nil), synergyDemands.weights...)
	}
	if len(p.Models) == 0 {
		p.Models = TableIIModels()
	}
	if p.MedianWorkSec <= 0 {
		p.MedianWorkSec = 2 * 3600
	}
	if p.DurationSigma <= 0 {
		p.DurationSigma = 1.0
	}
	if p.MinWorkSec <= 0 {
		p.MinWorkSec = 300
	}
	if p.MaxWorkSec <= 0 {
		p.MaxWorkSec = 72 * 3600
	}
	return p
}

// Validate reports whether the parameters describe a generable trace.
func (p SynthParams) Validate() error {
	p = p.withDefaults()
	if p.NumJobs <= 0 {
		return fmt.Errorf("trace: synth NumJobs=%d, want > 0", p.NumJobs)
	}
	if p.JobsPerHour <= 0 {
		return fmt.Errorf("trace: synth JobsPerHour=%g, want > 0", p.JobsPerHour)
	}
	switch p.Arrivals {
	case ArrivalPoisson, ArrivalDiurnal:
	case ArrivalBursty:
		if p.BurstFactor*p.BurstFraction >= 1 {
			return fmt.Errorf("trace: bursty needs BurstFactor×BurstFraction < 1 (got %g×%g): the quiet-period rate would be negative",
				p.BurstFactor, p.BurstFraction)
		}
	default:
		return fmt.Errorf("trace: unknown arrival process %q (want poisson, bursty or diurnal)", p.Arrivals)
	}
	if p.PeakToTrough < 1 {
		return fmt.Errorf("trace: diurnal PeakToTrough=%g, want >= 1", p.PeakToTrough)
	}
	if len(p.DemandWeights) != len(p.Demands) {
		return fmt.Errorf("trace: %d demands but %d weights", len(p.Demands), len(p.DemandWeights))
	}
	for _, d := range p.Demands {
		if d <= 0 {
			return fmt.Errorf("trace: demand %d, want > 0", d)
		}
	}
	if p.MinWorkSec > p.MaxWorkSec {
		return fmt.Errorf("trace: MinWorkSec %g > MaxWorkSec %g", p.MinWorkSec, p.MaxWorkSec)
	}
	return nil
}

// Synth generates a synthetic Philly-like trace. The result is
// deterministic in the parameters; arrival timing and job attributes use
// independent rng.Split streams.
func Synth(params SynthParams) (*Trace, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	p := params.withDefaults()

	jobStream := rng.New(p.Seed).Split(1)
	arrivalStream := rng.New(p.Seed).Split(2)

	arrivals := synthArrivals(p, arrivalStream)
	demand := demandDist{demands: p.Demands, weights: p.DemandWeights}

	jobs := make([]JobSpec, p.NumJobs)
	for i := range jobs {
		m := pickModel(jobStream, p.Models)
		jobs[i] = JobSpec{
			ID:      i,
			Model:   m.Name,
			Class:   m.Class,
			Arrival: arrivals[i],
			Demand:  demand.sample(jobStream),
			Work: sampleDuration(jobStream, p.MedianWorkSec, p.DurationSigma,
				p.MinWorkSec, p.MaxWorkSec),
		}
	}
	t := &Trace{Name: p.Name, Jobs: jobs}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// synthArrivals draws NumJobs ascending arrival times for the selected
// process.
func synthArrivals(p SynthParams, r *rng.RNG) []float64 {
	ratePerSec := p.JobsPerHour / 3600
	out := make([]float64, p.NumJobs)
	switch p.Arrivals {
	case ArrivalPoisson:
		t := 0.0
		for i := range out {
			t += r.Exp(ratePerSec)
			out[i] = t
		}

	case ArrivalBursty:
		// Two-state MMPP. With fraction f of time in bursts at rate
		// B×λ, quiet periods run at λ(1-fB)/(1-f) so the time-average
		// stays λ. State sojourns are exponential with means chosen to
		// realize f.
		f := p.BurstFraction
		burstRate := p.BurstFactor * ratePerSec
		quietRate := ratePerSec * (1 - f*p.BurstFactor) / (1 - f)
		burstMean := p.BurstMeanSec
		quietMean := burstMean * (1 - f) / f

		t := 0.0
		inBurst := false
		// Time remaining in the current state.
		stateLeft := r.Exp(1 / quietMean)
		for i := range out {
			for {
				rate := quietRate
				if inBurst {
					rate = burstRate
				}
				var gap float64
				if rate > 0 {
					gap = r.Exp(rate)
				} else {
					gap = math.Inf(1) // degenerate quiet rate: wait out the state
				}
				if gap < stateLeft {
					stateLeft -= gap
					t += gap
					out[i] = t
					break
				}
				// State flips before the next arrival; advance to the
				// boundary and redraw in the new state.
				t += stateLeft
				inBurst = !inBurst
				mean := quietMean
				if inBurst {
					mean = burstMean
				}
				stateLeft = r.Exp(1 / mean)
			}
		}

	case ArrivalDiurnal:
		// Thinning (Lewis & Shedler): candidates at the peak rate
		// λ(1+a), accepted with probability rate(t)/λ(1+a) where
		// rate(t) = λ(1 + a·sin(2πt/T)) and a = (P-1)/(P+1) realizes a
		// peak-to-trough ratio of P.
		a := (p.PeakToTrough - 1) / (p.PeakToTrough + 1)
		period := p.PeriodHours * 3600
		peak := ratePerSec * (1 + a)
		t := 0.0
		for i := range out {
			for {
				t += r.Exp(peak)
				rate := ratePerSec * (1 + a*math.Sin(2*math.Pi*t/period))
				if r.Float64()*peak < rate {
					out[i] = t
					break
				}
			}
		}
	}
	return out
}
