package trace

import (
	"math"
	"reflect"
	"testing"
)

func synthBase(process ArrivalProcess) SynthParams {
	return SynthParams{
		NumJobs:     2000,
		JobsPerHour: 12,
		Arrivals:    process,
		Seed:        0xC0FFEE,
	}
}

func TestSynthDeterministicAndValid(t *testing.T) {
	for _, proc := range []ArrivalProcess{ArrivalPoisson, ArrivalBursty, ArrivalDiurnal} {
		proc := proc
		t.Run(string(proc), func(t *testing.T) {
			a, err := Synth(synthBase(proc))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Synth(synthBase(proc))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Error("same params produced different traces")
			}
			if err := a.Validate(); err != nil {
				t.Error(err)
			}
			if a.Name != "synth-"+string(proc) {
				t.Errorf("default name %q", a.Name)
			}
			// >80% single-GPU under the default Philly mix.
			if f := a.SingleGPUFraction(); f < 0.75 {
				t.Errorf("single-GPU fraction %.2f, want >= 0.75", f)
			}
		})
	}
}

// meanRate returns the realized arrival rate in jobs/hour.
func meanRate(tr *Trace) float64 {
	span := tr.Jobs[len(tr.Jobs)-1].Arrival - tr.Jobs[0].Arrival
	return float64(len(tr.Jobs)-1) / span * 3600
}

func TestSynthMeanRateMatchesTarget(t *testing.T) {
	for _, proc := range []ArrivalProcess{ArrivalPoisson, ArrivalBursty, ArrivalDiurnal} {
		tr, err := Synth(synthBase(proc))
		if err != nil {
			t.Fatal(err)
		}
		got := meanRate(tr)
		if math.Abs(got-12)/12 > 0.15 {
			t.Errorf("%s: realized rate %.2f jobs/hour, want ~12", proc, got)
		}
	}
}

// windowCounts buckets arrivals into fixed windows, for dispersion and
// phase tests.
func windowCounts(tr *Trace, windowSec float64) []float64 {
	last := tr.Jobs[len(tr.Jobs)-1].Arrival
	n := int(last/windowSec) + 1
	counts := make([]float64, n)
	for _, j := range tr.Jobs {
		counts[int(j.Arrival/windowSec)]++
	}
	return counts
}

func dispersion(counts []float64) float64 {
	var sum, sumSq float64
	for _, c := range counts {
		sum += c
	}
	mean := sum / float64(len(counts))
	for _, c := range counts {
		sumSq += (c - mean) * (c - mean)
	}
	return sumSq / float64(len(counts)) / mean // variance / mean
}

func TestSynthBurstyOverdispersed(t *testing.T) {
	// A Poisson process has index of dispersion ~1; the MMPP must be
	// clearly overdispersed at the burst timescale.
	poisson, err := Synth(synthBase(ArrivalPoisson))
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := Synth(synthBase(ArrivalBursty))
	if err != nil {
		t.Fatal(err)
	}
	const window = 1800 // one mean burst duration
	dp := dispersion(windowCounts(poisson, window))
	db := dispersion(windowCounts(bursty, window))
	if dp > 2 {
		t.Errorf("poisson dispersion %.2f, want ~1", dp)
	}
	if db < 2*dp {
		t.Errorf("bursty dispersion %.2f not clearly above poisson %.2f", db, dp)
	}
}

func TestSynthDiurnalPhase(t *testing.T) {
	// Peak-phase windows must see materially more arrivals than
	// trough-phase windows. Peak of 1+sin is at quarter-period.
	p := synthBase(ArrivalDiurnal)
	p.NumJobs = 4000
	p.PeakToTrough = 4
	tr, err := Synth(p)
	if err != nil {
		t.Fatal(err)
	}
	period := 24.0 * 3600
	var peakN, troughN int
	for _, j := range tr.Jobs {
		phase := math.Mod(j.Arrival, period) / period
		switch {
		case phase > 0.10 && phase < 0.40: // around the sin peak at 0.25
			peakN++
		case phase > 0.60 && phase < 0.90: // around the trough at 0.75
			troughN++
		}
	}
	if troughN == 0 || float64(peakN)/float64(troughN) < 2 {
		t.Errorf("peak/trough arrivals = %d/%d, want ratio >= 2", peakN, troughN)
	}
}

func TestSynthJobPopulationIndependentOfArrivals(t *testing.T) {
	// The same seed must yield the same job attributes under every
	// arrival process — the property that makes load/process sweeps
	// comparisons of like with like.
	a, err := Synth(synthBase(ArrivalPoisson))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synth(synthBase(ArrivalDiurnal))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Model != jb.Model || ja.Demand != jb.Demand || ja.Work != jb.Work {
			t.Fatalf("job %d attributes differ across arrival processes: %+v vs %+v", i, ja, jb)
		}
	}
}

func TestSynthValidation(t *testing.T) {
	bad := []SynthParams{
		{NumJobs: 0, JobsPerHour: 10},
		{NumJobs: 10, JobsPerHour: 0},
		{NumJobs: 10, JobsPerHour: 10, Arrivals: "weekly"},
		{NumJobs: 10, JobsPerHour: 10, Arrivals: ArrivalBursty, BurstFactor: 20, BurstFraction: 0.5},
		{NumJobs: 10, JobsPerHour: 10, Demands: []int{1, 2}, DemandWeights: []float64{1}},
		{NumJobs: 10, JobsPerHour: 10, Demands: []int{0}, DemandWeights: []float64{1}},
		{NumJobs: 10, JobsPerHour: 10, MinWorkSec: 100, MaxWorkSec: 50},
	}
	for i, p := range bad {
		if _, err := Synth(p); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}
