package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/vprof"
)

// Traces serialize to JSON so a generated workload can be archived with
// the experiment results that consumed it, or hand-edited for what-if
// studies.

// jobJSON is the serialized form of one JobSpec.
type jobJSON struct {
	ID      int     `json:"id"`
	Model   string  `json:"model"`
	Class   int     `json:"class"`
	Arrival float64 `json:"arrival_sec"`
	Demand  int     `json:"demand"`
	Work    float64 `json:"work_sec"`
}

// traceJSON is the serialized form of a Trace.
type traceJSON struct {
	Name string    `json:"name"`
	Jobs []jobJSON `json:"jobs"`
}

// Save writes the trace as JSON.
func (t *Trace) Save(w io.Writer) error {
	out := traceJSON{Name: t.Name, Jobs: make([]jobJSON, len(t.Jobs))}
	for i, j := range t.Jobs {
		out.Jobs[i] = jobJSON{
			ID:      j.ID,
			Model:   j.Model,
			Class:   int(j.Class),
			Arrival: j.Arrival,
			Demand:  j.Demand,
			Work:    j.Work,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Load reads a trace previously written by Save and validates it.
func Load(r io.Reader) (*Trace, error) {
	var in traceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	t := &Trace{Name: in.Name, Jobs: make([]JobSpec, len(in.Jobs))}
	for i, j := range in.Jobs {
		t.Jobs[i] = JobSpec{
			ID:      j.ID,
			Model:   j.Model,
			Class:   vprof.Class(j.Class),
			Arrival: j.Arrival,
			Demand:  j.Demand,
			Work:    j.Work,
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
