package vprof

import (
	"fmt"

	"repro/internal/rng"
)

// This file holds the synthetic profile generators that stand in for the
// paper's measured TACC profiles (Table III, Figs. 6-8). The substitution
// is documented in DESIGN.md: the policies consume only
// normalized-to-median scores, so any distribution matching the reported
// spread and tail shape exercises the same behaviour.
//
// Shape targets taken from the paper:
//   - Class A (ResNet-50): ~13-22% geomean variability, long tail up to
//     2.5-3.5x the median, most GPUs concentrated in 2 clusters near the
//     median (Fig. 5), visible node ("cabinet") correlation (Figs. 6-7).
//   - Class B (BERT): moderate variability, tail to ~1.5x.
//   - Class C (PageRank): ~1% variability, essentially flat.
//   - The 64-GPU Frontera testbed subset (Fig. 8) is tighter for Class A
//     (6% vs 13.3% full-cluster variability).

// ClassShape parameterizes the synthetic score distribution of one class.
type ClassShape struct {
	// Sigma is the lognormal sigma of the bulk population around the
	// median (larger = wider spread).
	Sigma float64
	// NodeModes lists discrete per-node (cabinet) multipliers; each node
	// draws one uniformly. Cooling zones and cabinet placement make real
	// clusters multimodal (Figs. 6-7 band by cabinet; Fig. 5's K-Means
	// finds distinct clusters), and this is what reproduces that
	// structure. Empty means {1.0}.
	NodeModes []float64
	// NodeSigma adds a continuous per-node lognormal factor on top of the
	// mode.
	NodeSigma float64
	// OutlierFrac is the fraction of GPUs drawn from the slow tail.
	OutlierFrac float64
	// OutlierMin and OutlierMax bound the slow-tail multiplier (relative
	// to the median GPU).
	OutlierMin, OutlierMax float64
}

// ClusterShape parameterizes a whole synthetic cluster profile.
type ClusterShape struct {
	Name        string
	GPUsPerNode int
	Classes     []ClassShape // index = Class
}

// LonghornShape mimics TACC Longhorn (V100s), the profile the paper uses
// for its simulations (§IV-C, Fig. 7). Class A shows ~20% variability
// with outliers beyond 3x; Class C is nearly flat.
func LonghornShape() ClusterShape {
	return ClusterShape{
		Name:        "longhorn",
		GPUsPerNode: 4,
		Classes: []ClassShape{
			{Sigma: 0.048, NodeModes: []float64{0.92, 1.0, 1.10}, NodeSigma: 0.028,
				OutlierFrac: 0.065, OutlierMin: 1.6, OutlierMax: 3.5},
			{Sigma: 0.025, NodeModes: []float64{0.98, 1.0, 1.03}, NodeSigma: 0.012,
				OutlierFrac: 0.02, OutlierMin: 1.2, OutlierMax: 1.6},
			{Sigma: 0.006, NodeSigma: 0.003, OutlierFrac: 0, OutlierMin: 1, OutlierMax: 1},
		},
	}
}

// FronteraShape mimics TACC Frontera's Quadro RTX 5000 subsystem (Fig. 6),
// with slightly lower Class-A spread than Longhorn (13.3% reported).
func FronteraShape() ClusterShape {
	return ClusterShape{
		Name:        "frontera",
		GPUsPerNode: 4,
		Classes: []ClassShape{
			{Sigma: 0.035, NodeModes: []float64{0.95, 1.0, 1.06}, NodeSigma: 0.02,
				OutlierFrac: 0.04, OutlierMin: 1.5, OutlierMax: 3.0},
			{Sigma: 0.02, NodeModes: []float64{0.99, 1.0, 1.02}, NodeSigma: 0.01,
				OutlierFrac: 0.015, OutlierMin: 1.2, OutlierMax: 1.5},
			{Sigma: 0.006, NodeSigma: 0.003, OutlierFrac: 0, OutlierMin: 1, OutlierMax: 1},
		},
	}
}

// TestbedShape mimics the 64-GPU Frontera testbed subset of Fig. 8, whose
// Class-A variability (6%) is about half the full cluster's.
func TestbedShape() ClusterShape {
	return ClusterShape{
		Name:        "testbed",
		GPUsPerNode: 4,
		Classes: []ClassShape{
			{Sigma: 0.03, NodeModes: []float64{0.96, 1.0, 1.07}, NodeSigma: 0.02,
				OutlierFrac: 0.06, OutlierMin: 1.5, OutlierMax: 2.3},
			{Sigma: 0.018, NodeModes: []float64{0.99, 1.0, 1.02}, NodeSigma: 0.008,
				OutlierFrac: 0.02, OutlierMin: 1.15, OutlierMax: 1.4},
			{Sigma: 0.005, NodeSigma: 0.002, OutlierFrac: 0, OutlierMin: 1, OutlierMax: 1},
		},
	}
}

// Generate synthesizes a profile of numGPUs GPUs with the given shape.
// The same (shape, numGPUs, seed) always yields the same profile.
func Generate(shape ClusterShape, numGPUs int, seed uint64) *Profile {
	if numGPUs <= 0 {
		panic(fmt.Sprintf("vprof: Generate with numGPUs=%d", numGPUs))
	}
	gpn := shape.GPUsPerNode
	if gpn <= 0 {
		gpn = 4
	}
	numNodes := (numGPUs + gpn - 1) / gpn
	root := rng.New(seed)

	perClass := make([][]float64, len(shape.Classes))
	for c, cs := range shape.Classes {
		r := root.Split(uint64(c))
		// Per-node cabinet factors, shared across classes proportionally:
		// a slow cabinet is slow for every class, scaled by the class's
		// own NodeSigma. Using a class-split stream keeps classes
		// independent while staying deterministic.
		nodeFactor := make([]float64, numNodes)
		for n := range nodeFactor {
			mode := 1.0
			if len(cs.NodeModes) > 0 {
				mode = cs.NodeModes[r.Intn(len(cs.NodeModes))]
			}
			nodeFactor[n] = mode * r.LogNormal(0, cs.NodeSigma)
		}
		raw := make([]float64, numGPUs)
		for g := 0; g < numGPUs; g++ {
			base := r.LogNormal(0, cs.Sigma) * nodeFactor[g/gpn]
			if cs.OutlierFrac > 0 && r.Float64() < cs.OutlierFrac {
				// Slow-tail GPU: multiplier uniform in [OutlierMin, OutlierMax].
				base *= cs.OutlierMin + r.Float64()*(cs.OutlierMax-cs.OutlierMin)
			}
			raw[g] = base
		}
		perClass[c] = raw
	}

	p, err := NewProfile(shape.Name, perClass)
	if err != nil {
		// Generation parameters are internal constants; failure is a bug.
		panic(err)
	}
	return p
}

// GenerateLonghorn returns a Longhorn-style profile with numGPUs GPUs.
func GenerateLonghorn(numGPUs int, seed uint64) *Profile {
	return Generate(LonghornShape(), numGPUs, seed)
}

// GenerateFrontera returns a Frontera-style profile with numGPUs GPUs.
func GenerateFrontera(numGPUs int, seed uint64) *Profile {
	return Generate(FronteraShape(), numGPUs, seed)
}

// GenerateTestbed returns a profile shaped like the 64-GPU Frontera
// testbed subset of Fig. 8.
func GenerateTestbed(seed uint64) *Profile {
	return Generate(TestbedShape(), 64, seed)
}

// PerturbStale returns a copy of p in which the *profiled* scores of the
// GPUs on the given nodes understate reality for the given class: the
// returned profile divides those GPUs' scores by factor (>1), modelling
// the stale node-0 Class-A profile the paper discovered in its testbed run
// (§V-A: profiled scores ~8x lower than the penalties jobs actually
// experienced). The engine uses the perturbed profile for *placement
// decisions* while charging the true profile for *execution*.
func PerturbStale(p *Profile, c Class, gpusPerNode int, nodes []int, factor float64) *Profile {
	var gpus []int
	for _, n := range nodes {
		for i := 0; i < gpusPerNode; i++ {
			gpus = append(gpus, n*gpusPerNode+i)
		}
	}
	return PerturbStaleGPUs(p, c, gpus, factor)
}

// PerturbStaleGPUs is PerturbStale at GPU granularity: the listed GPUs'
// scores for class c are divided by factor (GPUs outside the profile are
// ignored). The result is re-normalized to its median.
func PerturbStaleGPUs(p *Profile, c Class, gpus []int, factor float64) *Profile {
	if factor <= 0 {
		panic("vprof: PerturbStale factor must be positive")
	}
	perClass := make([][]float64, p.classes)
	for cc := 0; cc < p.classes; cc++ {
		perClass[cc] = p.ClassScores(Class(cc))
	}
	for _, g := range gpus {
		if g >= 0 && g < p.NumGPUs() {
			perClass[int(c)][g] /= factor
		}
	}
	out, err := NewProfile(p.name+"-stale", perClass)
	if err != nil {
		panic(err)
	}
	return out
}
