package vprof

import (
	"encoding/json"
	"fmt"
	"io"
)

// Profiles are generated at design time and remain static for a
// deployment (§IV-C), so operators persist them between scheduler
// restarts; this file provides the JSON wire format. The format stores
// the normalized scores — re-normalization on load is therefore a no-op
// up to floating-point identity, which Save/Load round-trip tests pin
// down.

// profileJSON is the serialized form of a Profile.
type profileJSON struct {
	Name    string      `json:"name"`
	Classes int         `json:"classes"`
	GPUs    int         `json:"gpus"`
	Scores  [][]float64 `json:"scores"` // [class][gpu], normalized
}

// Save writes the profile as JSON.
func (p *Profile) Save(w io.Writer) error {
	out := profileJSON{
		Name:    p.name,
		Classes: p.classes,
		GPUs:    p.NumGPUs(),
		Scores:  make([][]float64, p.classes),
	}
	for c := 0; c < p.classes; c++ {
		out.Scores[c] = p.ClassScores(Class(c))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Load reads a profile previously written by Save. The scores are
// validated (shape and positive medians) through NewProfile.
func Load(r io.Reader) (*Profile, error) {
	var in profileJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("vprof: decode profile: %w", err)
	}
	if len(in.Scores) != in.Classes {
		return nil, fmt.Errorf("vprof: profile %q declares %d classes, has %d score rows",
			in.Name, in.Classes, len(in.Scores))
	}
	for c, row := range in.Scores {
		if len(row) != in.GPUs {
			return nil, fmt.Errorf("vprof: profile %q class %d has %d GPUs, declared %d",
				in.Name, c, len(row), in.GPUs)
		}
	}
	return NewProfile(in.Name, in.Scores)
}
