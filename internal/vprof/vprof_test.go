package vprof

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestClassString(t *testing.T) {
	if ClassA.String() != "A" || ClassB.String() != "B" || ClassC.String() != "C" {
		t.Error("class names wrong")
	}
	if Class(99).String() == "" {
		t.Error("out-of-range class has empty name")
	}
}

func TestNewProfileNormalization(t *testing.T) {
	raw := [][]float64{
		{10, 20, 30, 40, 50}, // median 30
		{5, 5, 5, 5, 5},
	}
	p, err := NewProfile("test", raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Score(0, 2); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("median GPU score = %v, want 1", got)
	}
	if got := p.Score(0, 4); math.Abs(got-50.0/30) > 1e-12 {
		t.Errorf("score = %v", got)
	}
	if med := stats.Median(p.ClassScores(0)); math.Abs(med-1) > 1e-12 {
		t.Errorf("median after normalization = %v", med)
	}
}

func TestNewProfileErrors(t *testing.T) {
	if _, err := NewProfile("x", nil); err == nil {
		t.Error("no classes should error")
	}
	if _, err := NewProfile("x", [][]float64{{}}); err == nil {
		t.Error("no GPUs should error")
	}
	if _, err := NewProfile("x", [][]float64{{1, 2}, {1}}); err == nil {
		t.Error("mismatched class sizes should error")
	}
	if _, err := NewProfile("x", [][]float64{{0, 0, 0}}); err == nil {
		t.Error("non-positive median should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateLonghorn(64, 42)
	b := GenerateLonghorn(64, 42)
	for c := 0; c < a.NumClasses(); c++ {
		for g := 0; g < a.NumGPUs(); g++ {
			if a.Score(Class(c), g) != b.Score(Class(c), g) {
				t.Fatalf("generation not deterministic at class %d gpu %d", c, g)
			}
		}
	}
	diff := GenerateLonghorn(64, 43)
	same := true
	for g := 0; g < a.NumGPUs(); g++ {
		if a.Score(ClassA, g) != diff.Score(ClassA, g) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical profiles")
	}
}

func TestGeneratedVariabilityOrdering(t *testing.T) {
	// Class A must be more variable than B, which must be more variable
	// than C — the paper's central observation.
	for _, gen := range []func(int, uint64) *Profile{GenerateLonghorn, GenerateFrontera} {
		p := gen(256, 7)
		va, vb, vc := p.Variability(ClassA), p.Variability(ClassB), p.Variability(ClassC)
		if !(va > vb && vb > vc) {
			t.Errorf("%s: variability ordering broken: A=%v B=%v C=%v", p.Name(), va, vb, vc)
		}
		if vc > 0.02 {
			t.Errorf("%s: Class C variability %v, want ~1%%", p.Name(), vc)
		}
		if va < 0.08 {
			t.Errorf("%s: Class A variability %v, want substantial", p.Name(), va)
		}
	}
}

func TestGeneratedMedianIsOne(t *testing.T) {
	p := GenerateLonghorn(128, 3)
	for c := 0; c < p.NumClasses(); c++ {
		med := stats.Median(p.ClassScores(Class(c)))
		if math.Abs(med-1) > 1e-9 {
			t.Errorf("class %d median = %v", c, med)
		}
	}
}

func TestGeneratedOutlierTail(t *testing.T) {
	p := GenerateLonghorn(416, 11)
	if p.MaxScore(ClassA) < 1.5 {
		t.Errorf("Class A max = %v, want a slow tail", p.MaxScore(ClassA))
	}
	if p.MaxScore(ClassC) > 1.1 {
		t.Errorf("Class C max = %v, want flat", p.MaxScore(ClassC))
	}
}

func TestTestbedTighterThanLonghorn(t *testing.T) {
	lh := GenerateLonghorn(416, 5)
	tb := GenerateTestbed(5)
	if tb.Variability(ClassA) >= lh.Variability(ClassA) {
		t.Errorf("testbed Class A %v should be tighter than Longhorn %v",
			tb.Variability(ClassA), lh.Variability(ClassA))
	}
}

func TestSubsample(t *testing.T) {
	full := GenerateLonghorn(128, 9)
	perm := rng.New(1).Perm(128)
	sub, err := full.Subsample("sub", perm, 32)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumGPUs() != 32 || sub.NumClasses() != full.NumClasses() {
		t.Fatalf("subsample shape %d/%d", sub.NumGPUs(), sub.NumClasses())
	}
	// Re-normalized to its own median.
	if med := stats.Median(sub.ClassScores(ClassA)); math.Abs(med-1) > 1e-9 {
		t.Errorf("subsample median = %v", med)
	}
	if _, err := full.Subsample("bad", perm, 500); err == nil {
		t.Error("oversized subsample should error")
	}
}

func TestPerturbStale(t *testing.T) {
	p := GenerateTestbed(13)
	// Inflate node 0's Class A truth by 4x (i.e. the view divides by 1/4).
	truth := PerturbStale(p, ClassA, 4, []int{0}, 0.25)
	for g := 0; g < 4; g++ {
		ratio := truth.Score(ClassA, g) / p.Score(ClassA, g)
		// Renormalization shifts the median slightly; the ratio must be
		// near 4.
		if ratio < 3 || ratio > 5 {
			t.Errorf("gpu %d truth/view ratio = %v, want ~4", g, ratio)
		}
	}
	// Other nodes barely change (only renormalization).
	r := truth.Score(ClassA, 10) / p.Score(ClassA, 10)
	if r < 0.8 || r > 1.2 {
		t.Errorf("unperturbed GPU ratio = %v", r)
	}
	// Class B untouched up to renormalization.
	rb := truth.Score(ClassB, 0) / p.Score(ClassB, 0)
	if math.Abs(rb-1) > 1e-9 {
		t.Errorf("class B perturbed: ratio %v", rb)
	}
}

func TestPerturbStalePanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("factor 0 did not panic")
		}
	}()
	PerturbStale(GenerateTestbed(1), ClassA, 4, []int{0}, 0)
}

func TestBinProfile(t *testing.T) {
	p := GenerateLonghorn(128, 21)
	b := BinProfile(p)
	if b.NumGPUs() != 128 || b.NumClasses() != NumClasses {
		t.Fatal("binned shape wrong")
	}
	for c := Class(0); int(c) < b.NumClasses(); c++ {
		scores := b.BinScores(c)
		if len(scores) == 0 {
			t.Fatalf("class %d has no bins", c)
		}
		for i := 1; i < len(scores); i++ {
			if scores[i] < scores[i-1] {
				t.Fatalf("class %d bins not ascending", c)
			}
		}
		for g := 0; g < b.NumGPUs(); g++ {
			bin := b.BinOf(c, g)
			if bin < 0 || bin >= b.NumBins(c) {
				t.Fatalf("gpu %d invalid bin %d", g, bin)
			}
			if b.Score(c, g) != scores[bin] {
				t.Fatalf("Score != bin score for gpu %d", g)
			}
		}
	}
}

// TestBinnedScoreNearExactProperty: a GPU's binned score must be within
// the class's score range and reasonably near its exact score for inliers.
func TestBinnedScoreNearExactProperty(t *testing.T) {
	check := func(seed uint64) bool {
		p := GenerateLonghorn(96, seed)
		b := BinProfile(p)
		for c := Class(0); int(c) < p.NumClasses(); c++ {
			lo := stats.Min(p.ClassScores(c))
			hi := stats.Max(p.ClassScores(c))
			for g := 0; g < p.NumGPUs(); g++ {
				s := b.Score(c, g)
				if s < lo-1e-9 || s > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSortedScores(t *testing.T) {
	p := GenerateLonghorn(64, 31)
	s := SortedScores(p, ClassA)
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatal("SortedScores not ascending")
		}
	}
}

func TestGeneratePanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate(0 GPUs) did not panic")
		}
	}()
	Generate(LonghornShape(), 0, 1)
}

func TestBinProfileK(t *testing.T) {
	p := GenerateLonghorn(96, 33)
	for _, k := range []int{1, 2, 4, 8} {
		b := BinProfileK(p, k)
		for c := Class(0); int(c) < p.NumClasses(); c++ {
			if got := b.NumBins(c); got > k {
				t.Errorf("k=%d class %d has %d bins", k, c, got)
			}
			scores := b.BinScores(c)
			for i := 1; i < len(scores); i++ {
				if scores[i] < scores[i-1] {
					t.Fatalf("k=%d class %d bins not ascending", k, c)
				}
			}
			for g := 0; g < b.NumGPUs(); g++ {
				if bin := b.BinOf(c, g); bin < 0 || bin >= b.NumBins(c) {
					t.Fatalf("k=%d invalid bin %d", k, bin)
				}
			}
		}
	}
	// K=1 collapses all GPUs into one bin: every score identical.
	b1 := BinProfileK(p, 1)
	for g := 1; g < b1.NumGPUs(); g++ {
		if b1.Score(ClassA, g) != b1.Score(ClassA, 0) {
			t.Fatal("K=1 should give every GPU the same score")
		}
	}
}

func TestPerturbStaleGPUs(t *testing.T) {
	p := GenerateTestbed(17)
	truth := PerturbStaleGPUs(p, ClassA, []int{2, 5}, 0.5) // doubles 2 and 5
	for _, g := range []int{2, 5} {
		ratio := truth.Score(ClassA, g) / p.Score(ClassA, g)
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("gpu %d ratio %v, want ~2", g, ratio)
		}
	}
	// Out-of-range GPUs are ignored, not a crash.
	_ = PerturbStaleGPUs(p, ClassA, []int{-1, 9999}, 0.5)
}
