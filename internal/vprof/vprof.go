// Package vprof models GPU performance-variability profiles: the per-GPU,
// per-application-class PM scores that PM-First and PAL consume.
//
// A PM score is an application iteration time on a particular GPU
// normalized to the median GPU of the cluster (§III-B): a score of 1.5
// means the job runs 50% slower on that GPU than on the median GPU, so
// lower is better and the median GPU scores exactly 1.0.
//
// The paper measures these profiles on TACC's Longhorn and Frontera
// clusters with nsight compute. We cannot run on TACC hardware, so this
// package provides synthetic generators (generate.go) whose distributions
// are fitted to the statistics the paper reports, plus the K-Means binning
// pipeline (§III-B) that turns raw per-GPU scores into a small set of
// PM-score bins.
package vprof

import (
	"fmt"
	"sort"

	"repro/internal/kmeans"
	"repro/internal/stats"
)

// Class identifies an application variability class. The paper's running
// example uses three classes ordered by sensitivity to variability:
// Class A (compute-intensive, most sensitive), Class B, Class C
// (memory-bound, least sensitive). The type supports an arbitrary number
// of classes; class 0 is always the most variability-sensitive.
type Class int

// The three classes of the paper's running example.
const (
	ClassA Class = iota // compute-intensive, most variability-sensitive
	ClassB              // intermediate (e.g. language models)
	ClassC              // memory-bound, least variability-sensitive
)

// NumClasses is the number of classes in the paper's running example.
const NumClasses = 3

// String returns the paper's letter name for the class ("A", "B", ...).
func (c Class) String() string {
	if c >= 0 && c < 26 {
		return string(rune('A' + c))
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Profile holds raw per-GPU PM scores for each class on one cluster.
// scores[class][gpu] is the normalized iteration time of a class
// representative app on that GPU. Scores are normalized so that the median
// GPU of each class scores 1.0.
type Profile struct {
	name    string
	classes int
	scores  [][]float64 // [class][gpu]
}

// NewProfile builds a profile from raw (not necessarily normalized)
// per-GPU measurements, one slice per class, normalizing each class to its
// median. All classes must cover the same number of GPUs.
func NewProfile(name string, perClass [][]float64) (*Profile, error) {
	if len(perClass) == 0 {
		return nil, fmt.Errorf("vprof: profile %q has no classes", name)
	}
	n := len(perClass[0])
	if n == 0 {
		return nil, fmt.Errorf("vprof: profile %q has no GPUs", name)
	}
	p := &Profile{name: name, classes: len(perClass), scores: make([][]float64, len(perClass))}
	for c, raw := range perClass {
		if len(raw) != n {
			return nil, fmt.Errorf("vprof: profile %q class %d has %d GPUs, want %d",
				name, c, len(raw), n)
		}
		med := stats.Median(raw)
		if med <= 0 {
			return nil, fmt.Errorf("vprof: profile %q class %d has non-positive median", name, c)
		}
		norm := make([]float64, n)
		for g, v := range raw {
			norm[g] = v / med
		}
		p.scores[c] = norm
	}
	return p, nil
}

// Name returns the profile's descriptive name (e.g. "longhorn").
func (p *Profile) Name() string { return p.name }

// NumGPUs returns the number of GPUs covered by the profile.
func (p *Profile) NumGPUs() int { return len(p.scores[0]) }

// NumClasses returns the number of application classes profiled.
func (p *Profile) NumClasses() int { return p.classes }

// Score returns the exact PM score of GPU g for class c.
func (p *Profile) Score(c Class, g int) float64 { return p.scores[c][g] }

// ClassScores returns a copy of the per-GPU scores for class c.
func (p *Profile) ClassScores(c Class) []float64 {
	return append([]float64(nil), p.scores[c]...)
}

// Variability returns the paper's headline per-class variability metric:
// the geometric mean of normalized scores' deviation, reported as
// geomean(score) - 1 over GPUs slower than the median. (The paper quotes
// "22% geomean variability" for ResNet-50-like apps and ~1% for
// PageRank-like apps; this definition reproduces those magnitudes on the
// synthetic profiles.)
func (p *Profile) Variability(c Class) float64 {
	slow := make([]float64, 0, len(p.scores[c]))
	for _, v := range p.scores[c] {
		if v >= 1.0 {
			slow = append(slow, v)
		}
	}
	if len(slow) == 0 {
		return 0
	}
	return stats.GeoMean(slow) - 1.0
}

// MaxScore returns the worst (largest) score for class c.
func (p *Profile) MaxScore(c Class) float64 {
	return stats.Max(p.scores[c])
}

// Subsample draws n GPU scores per class without repetition, mimicking the
// paper's methodology for simulating an N-GPU cluster from a measured
// profile ("we discretely, randomly sample this profiling data without
// repetition"). perm must be a permutation of [0, NumGPUs) of length >= n
// (callers obtain it from their experiment RNG so sampling stays
// deterministic). The resulting profile is re-normalized to its own
// median, exactly as a fresh measurement of the subcluster would be.
func (p *Profile) Subsample(name string, perm []int, n int) (*Profile, error) {
	if n > len(perm) || n > p.NumGPUs() {
		return nil, fmt.Errorf("vprof: cannot subsample %d GPUs from %d", n, p.NumGPUs())
	}
	perClass := make([][]float64, p.classes)
	for c := range perClass {
		raw := make([]float64, n)
		for i := 0; i < n; i++ {
			raw[i] = p.scores[c][perm[i]]
		}
		perClass[c] = raw
	}
	return NewProfile(name, perClass)
}

// Binned is a profile reduced to K-Means bins per class (§III-B): each
// GPU maps to a bin whose centroid score stands in for the GPU's exact
// score. This is what the placement policies consult at scheduling time;
// binning bounds the policies' working set on large clusters.
type Binned struct {
	profile *Profile
	bins    []*kmeans.Binned // per class
}

// BinProfile runs the silhouette-selected K-Means binning on every class
// of the profile.
func BinProfile(p *Profile) *Binned {
	b := &Binned{profile: p, bins: make([]*kmeans.Binned, p.classes)}
	for c := 0; c < p.classes; c++ {
		b.bins[c] = kmeans.Bin(p.scores[c])
	}
	return b
}

// BinProfileK bins every class with a fixed K instead of the silhouette
// selection (no outlier separation either: all values go through plain
// K-Means). Used by the K-sweep ablation: very small K loses the
// fine-grained variability information, very large K overestimates its
// impact (§III-B).
func BinProfileK(p *Profile, k int) *Binned {
	b := &Binned{profile: p, bins: make([]*kmeans.Binned, p.classes)}
	for c := 0; c < p.classes; c++ {
		res := kmeans.Cluster1D(p.scores[c], k)
		cents := kmeans.Centroids1D(res)
		binOf := append([]int(nil), res.Assign...)
		b.bins[c] = &kmeans.Binned{Scores: cents, BinOf: binOf}
	}
	return b
}

// Profile returns the underlying raw profile.
func (b *Binned) Profile() *Profile { return b.profile }

// Score returns the binned PM score of GPU g for class c (the centroid of
// g's bin, or g's exact score if it is a >3σ outlier).
func (b *Binned) Score(c Class, g int) float64 { return b.bins[c].ScoreOf(g) }

// BinOf returns the bin index of GPU g for class c.
func (b *Binned) BinOf(c Class, g int) int { return b.bins[c].BinOf[g] }

// BinScores returns the ascending bin centroid scores for class c. These
// are the V values of the class's L×V matrix columns.
func (b *Binned) BinScores(c Class) []float64 {
	return append([]float64(nil), b.bins[c].Scores...)
}

// NumBins returns the number of bins for class c.
func (b *Binned) NumBins(c Class) int { return b.bins[c].NumBins() }

// NumClasses returns the number of classes.
func (b *Binned) NumClasses() int { return b.profile.classes }

// NumGPUs returns the number of GPUs.
func (b *Binned) NumGPUs() int { return b.profile.NumGPUs() }

// Scorer is the read-only view of PM scores that placement policies
// consume: a score per (class, GPU). Both Profile (exact scores) and
// Binned (centroid scores) implement it, which lets the ablation bench
// compare binned against exact-score scheduling.
type Scorer interface {
	Score(c Class, g int) float64
	NumGPUs() int
	NumClasses() int
}

// BinnedScorer extends Scorer with the per-class bin centroids that PAL's
// L×V matrix columns are built from. *Binned is the production
// implementation; tests provide hand-built fakes.
type BinnedScorer interface {
	Scorer
	BinScores(c Class) []float64
}

var (
	_ Scorer       = (*Profile)(nil)
	_ Scorer       = (*Binned)(nil)
	_ BinnedScorer = (*Binned)(nil)
)

// SortedScores returns the scores of class c sorted ascending, for
// reporting profile shapes (Figs. 6-8).
func SortedScores(p *Profile, c Class) []float64 {
	s := p.ClassScores(c)
	sort.Float64s(s)
	return s
}
