package vprof

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	p := GenerateLonghorn(64, 5)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != p.Name() || got.NumGPUs() != p.NumGPUs() || got.NumClasses() != p.NumClasses() {
		t.Fatal("shape changed in round trip")
	}
	for c := Class(0); int(c) < p.NumClasses(); c++ {
		for g := 0; g < p.NumGPUs(); g++ {
			if got.Score(c, g) != p.Score(c, g) {
				t.Fatalf("score changed at class %d gpu %d", c, g)
			}
		}
	}
}

func TestProfileLoadRejectsCorruption(t *testing.T) {
	cases := []string{
		"not json",
		`{"name":"x","classes":2,"gpus":2,"scores":[[1,1]]}`, // class count mismatch
		`{"name":"x","classes":1,"gpus":3,"scores":[[1,1]]}`, // gpu count mismatch
		`{"name":"x","classes":1,"gpus":2,"scores":[[0,0]]}`, // non-positive median
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("corrupt profile accepted: %s", c)
		}
	}
}
