package core

import (
	"sync"

	"repro/internal/sim"
	"repro/internal/vprof"
)

// OnlineScorer implements the paper's proposed extension (§V-A): dynamic
// online updates to GPU PM scores. It wraps a static binned profile and
// blends in execution feedback observed by the engine, so GPUs whose
// profile has gone stale (the node-0 incident of the testbed run) are
// discovered at run time instead of poisoning placements for the whole
// trace.
//
// Learning signal: the engine reports each running job's per-rank
// normalized step times every round (see sim.Observer). In
// bulk-synchronous training every rank's compute time is logged before
// the gradient exchange, so per-GPU realized PM scores are directly
// observable without extra profiling runs.
//
// The learned estimate is an exponentially weighted moving average with
// factor Alpha; Score returns the EWMA once at least MinSamples
// observations exist, otherwise the static profile's score. BinScores
// stays static: bins define the L×V matrix thresholds, and the paper
// regenerates those offline. OnlineScorer is safe for the engine's
// single-goroutine use and additionally locks so tests may probe it
// concurrently.
type OnlineScorer struct {
	base vprof.BinnedScorer

	// Alpha is the EWMA weight of each new observation (default 0.25).
	Alpha float64
	// MinSamples is how many observations a (class, GPU) pair needs
	// before the learned score can replace the static one (default 2).
	MinSamples int
	// Divergence is the ratio beyond which the learned score overrides
	// the static profile (default 1.5). Small deviations keep the static
	// score: the goal is to catch gross profile staleness (the paper's
	// ~8x node-0 incident), not to chase measurement noise — continuous
	// per-round score drift would defeat the placers' migration
	// hysteresis and churn allocations.
	Divergence float64

	mu      sync.Mutex
	est     [][]float64 // [class][gpu] EWMA estimate
	samples [][]int     // [class][gpu] observation count
	version uint64      // bumped on every update; placers rebuild orders
}

// NewOnlineScorer wraps base with online learning at default parameters.
func NewOnlineScorer(base vprof.BinnedScorer) *OnlineScorer {
	o := &OnlineScorer{
		base:       base,
		Alpha:      0.25,
		MinSamples: 2,
		Divergence: 1.5,
	}
	o.est = make([][]float64, base.NumClasses())
	o.samples = make([][]int, base.NumClasses())
	for c := range o.est {
		o.est[c] = make([]float64, base.NumGPUs())
		o.samples[c] = make([]int, base.NumGPUs())
	}
	return o
}

// Score implements vprof.Scorer: the learned estimate once warmed up AND
// grossly divergent from the profile, else the static profile score.
func (o *OnlineScorer) Score(c vprof.Class, g int) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.effective(c, g)
}

// effective implements Score's policy; callers hold o.mu.
func (o *OnlineScorer) effective(c vprof.Class, g int) float64 {
	static := o.base.Score(c, g)
	if o.samples[c][g] < o.MinSamples {
		return static
	}
	est := o.est[c][g]
	if est > static*o.Divergence || est < static/o.Divergence {
		return est
	}
	return static
}

// NumGPUs implements vprof.Scorer.
func (o *OnlineScorer) NumGPUs() int { return o.base.NumGPUs() }

// NumClasses implements vprof.Scorer.
func (o *OnlineScorer) NumClasses() int { return o.base.NumClasses() }

// BinScores implements vprof.BinnedScorer with the static bins.
func (o *OnlineScorer) BinScores(c vprof.Class) []float64 {
	return o.base.BinScores(c)
}

// ObserveRound implements sim.Observer: fold each rank's realized score
// into the EWMA for its (class, GPU) pair.
func (o *OnlineScorer) ObserveRound(j *sim.Job, perGPU []float64, _ float64) {
	c := j.Spec.Class
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, gid := range j.Alloc {
		if i >= len(perGPU) {
			break
		}
		g := int(gid)
		before := o.effective(c, g)
		if o.samples[c][g] == 0 {
			o.est[c][g] = perGPU[i]
		} else {
			o.est[c][g] = (1-o.Alpha)*o.est[c][g] + o.Alpha*perGPU[i]
		}
		o.samples[c][g]++
		if o.effective(c, g) != before {
			// Only a change in the effective score invalidates the
			// placers' precomputed orders; EWMA noise under the
			// divergence threshold does not.
			o.version++
		}
	}
}

// Version implements the placers' staleness check: it changes whenever a
// learned score changes.
func (o *OnlineScorer) Version() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.version
}

// Samples returns the observation count for a (class, GPU) pair, for
// tests and diagnostics.
func (o *OnlineScorer) Samples(c vprof.Class, g int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.samples[c][g]
}

var (
	_ vprof.BinnedScorer = (*OnlineScorer)(nil)
	_ sim.Observer       = (*OnlineScorer)(nil)
)
