package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/vprof"
)

func onlineFixture() (*OnlineScorer, *fakeBinned) {
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1.0
	}
	base := newFake(uniformScores(scores, 2))
	return NewOnlineScorer(base), base
}

func observe(o *OnlineScorer, class vprof.Class, gpu int, v float64, times int) {
	j := &sim.Job{Alloc: []cluster.GPUID{cluster.GPUID(gpu)}}
	j.Spec.Class = class
	j.Spec.Demand = 1
	for i := 0; i < times; i++ {
		o.ObserveRound(j, []float64{v}, 0)
	}
}

func TestOnlineScorerStartsAtStatic(t *testing.T) {
	o, base := onlineFixture()
	for g := 0; g < 16; g++ {
		if o.Score(0, g) != base.Score(0, g) {
			t.Fatalf("unwarmed score differs at gpu %d", g)
		}
	}
	if o.NumGPUs() != 16 || o.NumClasses() != 2 {
		t.Error("shape delegation wrong")
	}
	if len(o.BinScores(0)) == 0 {
		t.Error("BinScores empty")
	}
}

func TestOnlineScorerLearnsGrossStaleness(t *testing.T) {
	o, _ := onlineFixture()
	observe(o, 0, 3, 3.0, 3) // GPU 3 is secretly 3x slow
	got := o.Score(0, 3)
	if got < 2.5 {
		t.Errorf("learned score = %v, want ~3.0", got)
	}
	// Other GPUs and the other class stay static.
	if o.Score(0, 4) != 1.0 || o.Score(1, 3) != 1.0 {
		t.Error("learning leaked to other GPUs/classes")
	}
}

func TestOnlineScorerIgnoresSmallDeviation(t *testing.T) {
	o, _ := onlineFixture()
	observe(o, 0, 5, 1.2, 10) // within the 1.5x divergence band
	if got := o.Score(0, 5); got != 1.0 {
		t.Errorf("score = %v, want static 1.0 (deviation under threshold)", got)
	}
}

func TestOnlineScorerMinSamples(t *testing.T) {
	o, _ := onlineFixture()
	observe(o, 0, 7, 4.0, 1) // one observation < MinSamples (2)
	if got := o.Score(0, 7); got != 1.0 {
		t.Errorf("score = %v, want static until MinSamples", got)
	}
	observe(o, 0, 7, 4.0, 1)
	if got := o.Score(0, 7); got < 3.5 {
		t.Errorf("score = %v, want learned after MinSamples", got)
	}
}

func TestOnlineScorerVersionBumpsOnlyOnEffectiveChange(t *testing.T) {
	o, _ := onlineFixture()
	v0 := o.Version()
	observe(o, 0, 2, 1.05, 20) // noise within the band: no effective change
	if o.Version() != v0 {
		t.Errorf("version moved on sub-threshold noise")
	}
	observe(o, 0, 2, 5.0, 10) // pushes the EWMA over the divergence band
	if o.Version() == v0 {
		t.Error("version did not move when the effective score changed")
	}
}

func TestOnlineScorerMultiGPUObservation(t *testing.T) {
	o, _ := onlineFixture()
	j := &sim.Job{Alloc: []cluster.GPUID{4, 5, 6}}
	j.Spec.Class = 0
	j.Spec.Demand = 3
	for i := 0; i < 3; i++ {
		o.ObserveRound(j, []float64{1.0, 2.5, 1.0}, 0)
	}
	if got := o.Score(0, 5); got < 2.0 {
		t.Errorf("rank telemetry not attributed: gpu 5 score %v", got)
	}
	if o.Score(0, 4) != 1.0 || o.Score(0, 6) != 1.0 {
		t.Error("healthy gang members should stay static")
	}
	if o.Samples(0, 5) != 3 {
		t.Errorf("samples = %d, want 3", o.Samples(0, 5))
	}
}

func TestPMFirstWithOnlineScorerAvoidsLearnedSlowGPU(t *testing.T) {
	o, _ := onlineFixture()
	observe(o, 0, 0, 3.0, 3) // GPU 0 learned slow
	p := NewPMFirst(o)
	c := topo16()
	out := p.PlaceRound(c, []*sim.Job{mkJob(0, 15, 0)}, 0)
	for _, g := range out[0] {
		if g == 0 {
			t.Error("PM-First picked the learned-slow GPU despite alternatives")
		}
	}
}

func TestPALRackLevel(t *testing.T) {
	// 4 racks x 1 node x 4 GPUs... use 2 nodes per rack: topology
	// 4 nodes, NodesPerRack 2 -> racks {0,1}, {2,3}.
	topo := cluster.Topology{NumNodes: 4, GPUsPerNode: 4, NodesPerRack: 2}
	c := cluster.New(topo)
	// Scores: rack 0 has two free GPUs on different nodes at 0.9; the
	// only single-node option is on rack 1 at 2.0; cross-rack spread
	// would mix 0.9 and 0.85 across racks.
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 2.0
	}
	scores[0], scores[4] = 0.9, 0.9   // rack 0, nodes 0 and 1
	scores[8], scores[12] = 2.0, 0.85 // rack 1
	f := newFake(uniformScores(scores, 1))

	// L_rack = 1.1, L_across = 2.0: rack-confined spread on rack 0 costs
	// 1.1*0.9 = 0.99, the packed option costs 2.0, cross-rack costs
	// 2.0*0.9 = 1.8. The rack option must win.
	p := NewPAL(f, 2.0, nil)
	p.EnableRackLevel(1.1)
	busy := []cluster.GPUID{1, 2, 3, 5, 6, 7, 9, 10, 11, 13, 14, 15}
	c.Allocate(99, busy)
	out := p.PlaceRound(c, []*sim.Job{mkJob(0, 2, 0)}, 0)
	got := map[cluster.GPUID]bool{}
	for _, g := range out[0] {
		got[g] = true
	}
	if !got[0] || !got[4] {
		t.Errorf("rack-level PAL allocation = %v, want {0, 4} (rack 0)", out[0])
	}
	if c.RacksSpanned(out[0]) != 1 {
		t.Errorf("allocation spans %d racks", c.RacksSpanned(out[0]))
	}
}

func TestPALRackLevelMatrixShape(t *testing.T) {
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1.0
	}
	scores[0] = 0.9
	f := newFake(uniformScores(scores, 1))
	p := NewPAL(f, 2.0, nil)
	p.EnableRackLevel(1.3)
	m := p.Matrix(0)
	if len(m.Levels) != 3 {
		t.Fatalf("levels = %v, want 3", m.Levels)
	}
	if m.Levels[0] != 1.0 || m.Levels[1] != 1.3 || m.Levels[2] != 2.0 {
		t.Errorf("levels = %v", m.Levels)
	}
}

func TestPMFirstNoClassPriorityAblation(t *testing.T) {
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1 + float64(g)*0.01
	}
	f := newFake(uniformScores(scores, 3))
	p := NewPMFirst(f)
	p.NoClassPriority = true
	c := topo16()
	// Scheduling order [B, A]: with priority off, B picks first and gets
	// the better GPUs.
	jobs := []*sim.Job{mkJob(0, 2, vprof.ClassB), mkJob(1, 2, vprof.ClassA)}
	out := p.PlaceRound(c, jobs, 0)
	maxB := maxScore(f, vprof.ClassB, out[0])
	maxA := maxScore(f, vprof.ClassA, out[1])
	if maxB >= maxA {
		t.Errorf("with priority off, scheduling order should win: B max %v, A max %v", maxB, maxA)
	}
}

func TestNoHysteresisAblationMigrates(t *testing.T) {
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1.0
	}
	f := newFake(uniformScores(scores, 1))
	p := NewPMFirst(f)
	p.NoHysteresis = true
	c := topo16()
	j := mkJob(0, 2, 0)
	out1 := p.PlaceRound(c, []*sim.Job{j}, 0)
	j.PrevAlloc = out1[0]
	// With all scores equal and hysteresis off, the fresh pick ignores
	// PrevAlloc entirely (it may or may not coincide; the key check is
	// that hysteresis-on always reuses).
	p2 := NewPMFirst(f)
	j2 := mkJob(1, 2, 0)
	j2.PrevAlloc = []cluster.GPUID{13, 14}
	out2 := p2.PlaceRound(c, []*sim.Job{j2}, 0)
	if out2[1][0] != 13 && out2[1][1] != 13 {
		t.Errorf("hysteresis-on should reuse equal-quality PrevAlloc, got %v", out2[1])
	}
}
