package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// fakeBinned is a hand-built vprof.BinnedScorer with explicit per-GPU
// scores; bins are the sorted distinct scores of each class.
type fakeBinned struct {
	scores [][]float64 // [class][gpu]
	bins   [][]float64 // [class] ascending distinct scores
}

func newFake(perClass [][]float64) *fakeBinned {
	f := &fakeBinned{scores: perClass}
	f.bins = make([][]float64, len(perClass))
	for c, s := range perClass {
		seen := map[float64]bool{}
		var bins []float64
		for _, v := range s {
			if !seen[v] {
				seen[v] = true
				bins = append(bins, v)
			}
		}
		// insertion sort (small)
		for i := 1; i < len(bins); i++ {
			for j := i; j > 0 && bins[j] < bins[j-1]; j-- {
				bins[j], bins[j-1] = bins[j-1], bins[j]
			}
		}
		f.bins[c] = bins
	}
	return f
}

func (f *fakeBinned) Score(c vprof.Class, g int) float64 { return f.scores[c][g] }
func (f *fakeBinned) NumGPUs() int                       { return len(f.scores[0]) }
func (f *fakeBinned) NumClasses() int                    { return len(f.scores) }
func (f *fakeBinned) BinScores(c vprof.Class) []float64 {
	return append([]float64(nil), f.bins[c]...)
}

func mkJob(id, demand int, class vprof.Class) *sim.Job {
	return &sim.Job{
		Spec:      trace.JobSpec{ID: id, Demand: demand, Class: class, Work: 100},
		Remaining: 100,
	}
}

// topo16 is 4 nodes x 4 GPUs.
func topo16() *cluster.Cluster {
	return cluster.New(cluster.Topology{NumNodes: 4, GPUsPerNode: 4})
}

// uniformScores builds per-class scores where every class sees the same
// per-GPU values.
func uniformScores(perGPU []float64, classes int) [][]float64 {
	out := make([][]float64, classes)
	for c := range out {
		out[c] = append([]float64(nil), perGPU...)
	}
	return out
}

func TestPMFirstPicksBestGPUs(t *testing.T) {
	// GPU g has score 1 + g*0.01, so the best three are 0, 1, 2.
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1 + float64(g)*0.01
	}
	p := NewPMFirst(newFake(uniformScores(scores, 1)))
	c := topo16()
	out := p.PlaceRound(c, []*sim.Job{mkJob(0, 3, 0)}, 0)
	alloc := out[0]
	want := map[cluster.GPUID]bool{0: true, 1: true, 2: true}
	for _, g := range alloc {
		if !want[g] {
			t.Errorf("PM-First picked GPU %d, want {0,1,2}", g)
		}
	}
}

func TestPMFirstSkipsBusyGPUs(t *testing.T) {
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1 + float64(g)*0.01
	}
	p := NewPMFirst(newFake(uniformScores(scores, 1)))
	c := topo16()
	c.Allocate(99, []cluster.GPUID{0, 1}) // best two busy
	out := p.PlaceRound(c, []*sim.Job{mkJob(0, 2, 0)}, 0)
	for _, g := range out[0] {
		if g != 2 && g != 3 {
			t.Errorf("picked busy-adjacent GPU %d, want {2,3}", g)
		}
	}
}

func TestPMFirstClassPriority(t *testing.T) {
	// Two jobs in scheduling order [B, A]; A must pick first and get the
	// better GPUs (placement priority, Fig. 4).
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1 + float64(g)*0.01
	}
	f := newFake(uniformScores(scores, 3))
	p := NewPMFirst(f)
	c := topo16()
	jobs := []*sim.Job{mkJob(0, 2, vprof.ClassB), mkJob(1, 2, vprof.ClassA)}
	out := p.PlaceRound(c, jobs, 0)
	maxA, maxB := 0.0, 0.0
	for _, g := range out[1] {
		if s := f.Score(vprof.ClassA, int(g)); s > maxA {
			maxA = s
		}
	}
	for _, g := range out[0] {
		if s := f.Score(vprof.ClassB, int(g)); s > maxB {
			maxB = s
		}
	}
	if maxA >= maxB {
		t.Errorf("Class A max score %v should beat Class B's %v", maxA, maxB)
	}
}

func TestPMFirstPerClassScores(t *testing.T) {
	// Class 0 prefers GPU 5; class 1 prefers GPU 10.
	s0 := make([]float64, 16)
	s1 := make([]float64, 16)
	for g := range s0 {
		s0[g], s1[g] = 2, 2
	}
	s0[5], s1[10] = 0.5, 0.5
	p := NewPMFirst(newFake([][]float64{s0, s1}))
	c := topo16()
	out := p.PlaceRound(c, []*sim.Job{mkJob(0, 1, 0), mkJob(1, 1, 1)}, 0)
	if out[0][0] != 5 {
		t.Errorf("class 0 got GPU %d, want 5", out[0][0])
	}
	if out[1][0] != 10 {
		t.Errorf("class 1 got GPU %d, want 10", out[1][0])
	}
}

func TestPMFirstLeavesClusterFree(t *testing.T) {
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1
	}
	p := NewPMFirst(newFake(uniformScores(scores, 1)))
	c := topo16()
	p.PlaceRound(c, []*sim.Job{mkJob(0, 4, 0), mkJob(1, 4, 0)}, 0)
	if c.NumFree() != 16 {
		t.Errorf("placer leaked reservations: %d free", c.NumFree())
	}
}

func TestSortByPlacementPriorityStable(t *testing.T) {
	jobs := []*sim.Job{
		mkJob(0, 1, vprof.ClassB),
		mkJob(1, 1, vprof.ClassA),
		mkJob(2, 1, vprof.ClassB),
		mkJob(3, 1, vprof.ClassA),
	}
	got := SortByPlacementPriority(jobs)
	wantIDs := []int{1, 3, 0, 2}
	for i, j := range got {
		if j.Spec.ID != wantIDs[i] {
			t.Fatalf("order = %v, want %v", got, wantIDs)
		}
	}
	if jobs[0].Spec.ID != 0 {
		t.Error("input mutated")
	}
}

// palScenario builds the §III-C1 example: node 0 holds a free 0.90-score
// GPU, node 1 a free 0.94-score GPU, node 2 two free 2.55-score GPUs, and
// everything else is busy.
func palScenario(t *testing.T) (*cluster.Cluster, *fakeBinned) {
	t.Helper()
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1.06
	}
	scores[0] = 0.90 // node 0
	scores[4] = 0.94 // node 1
	scores[8] = 2.55 // node 2
	scores[9] = 2.55 // node 2
	c := topo16()
	busy := []cluster.GPUID{1, 2, 3, 5, 6, 7, 10, 11, 12, 13, 14, 15}
	c.Allocate(99, busy)
	return c, newFake(uniformScores(scores, 1))
}

func TestPALPrefersSpreadOverBadBin(t *testing.T) {
	// With L_across = 1.5: across at V=0.94 (product 1.41) beats the only
	// packed option (node 2 at 2.55). PAL must allocate {0, 4} across
	// nodes, exactly the paper's "prefers a distributed allocation over
	// bin 4" behavior.
	c, f := palScenario(t)
	p := NewPAL(f, 1.5, nil)
	out := p.PlaceRound(c, []*sim.Job{mkJob(0, 2, 0)}, 0)
	got := map[cluster.GPUID]bool{}
	for _, g := range out[0] {
		got[g] = true
	}
	if !got[0] || !got[4] {
		t.Errorf("PAL allocation = %v, want {0, 4}", out[0])
	}
}

func TestPALPrefersPackedWhenLocalityExpensive(t *testing.T) {
	// With L_across = 3.0 the packed 2.55 option (product 2.55) beats the
	// spread at 0.94*3 = 2.82, so PAL packs on node 2.
	c, f := palScenario(t)
	p := NewPAL(f, 3.0, nil)
	out := p.PlaceRound(c, []*sim.Job{mkJob(0, 2, 0)}, 0)
	got := map[cluster.GPUID]bool{}
	for _, g := range out[0] {
		got[g] = true
	}
	if !got[8] || !got[9] {
		t.Errorf("PAL allocation = %v, want {8, 9}", out[0])
	}
}

func TestPALPacksAtGoodBins(t *testing.T) {
	// All of node 1 free at score 0.95, scattered 0.90 GPUs elsewhere:
	// a 4-GPU job should pack node 1 rather than spread over the
	// slightly-better singles (0.95 < 1.5*0.90).
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1.2
	}
	scores[4], scores[5], scores[6], scores[7] = 0.95, 0.95, 0.95, 0.95
	scores[0], scores[8], scores[12] = 0.90, 0.90, 0.90
	c := topo16()
	p := NewPAL(newFake(uniformScores(scores, 1)), 1.5, nil)
	out := p.PlaceRound(c, []*sim.Job{mkJob(0, 4, 0)}, 0)
	if c.NodesSpanned(out[0]) != 1 {
		t.Errorf("PAL spread a packable job: %v", out[0])
	}
	for _, g := range out[0] {
		if c.NodeOf(g) != 1 {
			t.Errorf("packed on node %d, want 1", c.NodeOf(g))
		}
	}
}

func TestPALSingleGPUEqualsPMFirst(t *testing.T) {
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1 + float64(g)*0.01
	}
	f := newFake(uniformScores(scores, 1))
	pal := NewPAL(f, 1.5, nil)
	pmf := NewPMFirst(f)
	cPal, cPmf := topo16(), topo16()
	a := pal.PlaceRound(cPal, []*sim.Job{mkJob(0, 1, 0)}, 0)
	b := pmf.PlaceRound(cPmf, []*sim.Job{mkJob(0, 1, 0)}, 0)
	if a[0][0] != b[0][0] {
		t.Errorf("single-GPU PAL %v != PM-First %v", a[0], b[0])
	}
}

func TestPALLargeJobUsesPMFirst(t *testing.T) {
	// Demand > GPUs/node: identical selection to PM-First.
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1 + float64((g*7)%16)*0.01
	}
	f := newFake(uniformScores(scores, 1))
	pal := NewPAL(f, 1.5, nil)
	pmf := NewPMFirst(f)
	a := pal.PlaceRound(topo16(), []*sim.Job{mkJob(0, 6, 0)}, 0)
	b := pmf.PlaceRound(topo16(), []*sim.Job{mkJob(0, 6, 0)}, 0)
	gotA := map[cluster.GPUID]bool{}
	for _, g := range a[0] {
		gotA[g] = true
	}
	for _, g := range b[0] {
		if !gotA[g] {
			t.Errorf("PAL large-job selection differs from PM-First: %v vs %v", a[0], b[0])
		}
	}
}

func TestPALNoLocalityPenaltyDegeneratesToPMFirst(t *testing.T) {
	// With L_across = 1.0 the traversal interleaves within/across per bin
	// and the chosen max-V must equal PM-First's max-V.
	scores := make([]float64, 16)
	vals := []float64{0.9, 1.0, 1.1, 1.3}
	for g := range scores {
		scores[g] = vals[(g*5)%4]
	}
	f := newFake(uniformScores(scores, 1))
	pal := NewPAL(f, 1.0, nil)
	pmf := NewPMFirst(f)
	a := pal.PlaceRound(topo16(), []*sim.Job{mkJob(0, 3, 0)}, 0)
	b := pmf.PlaceRound(topo16(), []*sim.Job{mkJob(0, 3, 0)}, 0)
	maxOf := func(gpus []cluster.GPUID) float64 {
		m := 0.0
		for _, g := range gpus {
			if s := f.Score(0, int(g)); s > m {
				m = s
			}
		}
		return m
	}
	if maxOf(a[0]) != maxOf(b[0]) {
		t.Errorf("PAL max-V %v != PM-First max-V %v at L=1", maxOf(a[0]), maxOf(b[0]))
	}
}

func TestPALPerModelPenalty(t *testing.T) {
	// pointnet's low penalty should let PAL spread it; bert's high
	// penalty should force packing, in a scenario where the tradeoff
	// flips between the two penalties.
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 2.0 // packed option everywhere: score 2.0
	}
	scores[0], scores[4] = 1.0, 1.0 // two great GPUs on different nodes
	f := newFake(uniformScores(scores, 3))
	modelL := map[string]float64{"pointnet": 1.05, "bert": 2.5}
	p := NewPAL(f, 1.7, modelL)

	spread := mkJob(0, 2, vprof.ClassC)
	spread.Spec.Model = "pointnet"
	out := p.PlaceRound(topo16(), []*sim.Job{spread}, 0)
	if cl := topo16(); cl.NodesSpanned(out[0]) != 2 {
		t.Errorf("pointnet (L=1.05) should spread to the good GPUs: %v", out[0])
	}

	packed := mkJob(1, 2, vprof.ClassB)
	packed.Spec.Model = "bert"
	out2 := p.PlaceRound(topo16(), []*sim.Job{packed}, 0)
	if cl := topo16(); cl.NodesSpanned(out2[1]) != 1 {
		t.Errorf("bert (L=2.5) should pack: %v", out2[1])
	}
}

func TestPALMatrixAccessor(t *testing.T) {
	f := newFake(uniformScores([]float64{0.9, 1.0, 1.1, 2.5,
		0.9, 1.0, 1.1, 2.5, 0.9, 1.0, 1.1, 2.5, 0.9, 1.0, 1.1, 2.5}, 1))
	p := NewPAL(f, 1.5, nil)
	m := p.Matrix(0)
	if m == nil || len(m.Bins) != 4 {
		t.Fatalf("Matrix(0) = %+v", m)
	}
	if p.Matrix(vprof.Class(99)) != nil {
		t.Error("out-of-range class should be nil")
	}
}

// TestCorePlacersSatisfyDemandProperty: for random occupancy and random
// job batches, PM-First and PAL always hand out exactly-demand, distinct,
// free GPUs, and leave the cluster state untouched.
func TestCorePlacersSatisfyDemandProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		scores := make([]float64, 16)
		for g := range scores {
			scores[g] = 0.9 + r.Float64()
		}
		f := newFake(uniformScores(scores, 3))
		placers := []sim.Placer{NewPMFirst(f), NewPAL(f, 1.0+r.Float64()*2, nil)}
		for _, p := range placers {
			c := topo16()
			busyCount := r.Intn(8)
			for i := 0; i < busyCount; i++ {
				g := cluster.GPUID(r.Intn(16))
				if c.IsFree(g) {
					c.Allocate(1000+i, []cluster.GPUID{g})
				}
			}
			freeBefore := c.NumFree()
			// A batch of jobs that fits the free capacity.
			var jobs []*sim.Job
			left := freeBefore
			for id := 0; left > 0 && id < 5; id++ {
				d := 1 + r.Intn(4)
				if d > left {
					d = left
				}
				jobs = append(jobs, mkJob(id, d, vprof.Class(r.Intn(3))))
				left -= d
			}
			out := p.PlaceRound(c, jobs, 0)
			if c.NumFree() != freeBefore {
				return false
			}
			seen := map[cluster.GPUID]bool{}
			for _, j := range jobs {
				alloc, ok := out[j.Spec.ID]
				if !ok || len(alloc) != j.Spec.Demand {
					return false
				}
				for _, g := range alloc {
					if seen[g] || !c.IsFree(g) {
						return false
					}
					seen[g] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPALMinimizesLVProductProperty: for a 2-GPU job, the allocation PAL
// returns must achieve the minimum LV-product over all feasible
// allocations (packed pairs and the best spread pair).
func TestPALMinimizesLVProductProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		scores := make([]float64, 16)
		for g := range scores {
			scores[g] = 0.85 + r.Float64()*1.5
		}
		f := newFake(uniformScores(scores, 1))
		lacross := 1.0 + r.Float64()*2
		c := topo16()
		for g := 0; g < 16; g++ {
			if r.Float64() < 0.5 && c.NumFree() > 2 {
				c.Allocate(100+g, []cluster.GPUID{cluster.GPUID(g)})
			}
		}
		p := NewPAL(f, lacross, nil)
		out := p.PlaceRound(c, []*sim.Job{mkJob(0, 2, 0)}, 0)
		alloc := out[0]

		product := func(gpus []cluster.GPUID) float64 {
			maxV := 0.0
			for _, g := range gpus {
				if s := f.Score(0, int(g)); s > maxV {
					maxV = s
				}
			}
			l := 1.0
			if c.NodesSpanned(gpus) > 1 {
				l = lacross
			}
			return l * maxV
		}
		got := product(alloc)

		// Brute force over all free pairs.
		free := c.FreeGPUs()
		best := got
		for i := 0; i < len(free); i++ {
			for j := i + 1; j < len(free); j++ {
				if pr := product([]cluster.GPUID{free[i], free[j]}); pr < best {
					best = pr
				}
			}
		}
		return got <= best+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
