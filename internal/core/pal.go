package core

import (
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/vprof"
)

// PAL is the paper's flagship placement policy (§III-C, Algorithm 2):
// it co-optimizes Performance variability And Locality by traversing a
// per-class L×V matrix from smallest to largest combined slowdown.
//
// For a job with demand D:
//   - D == 1: locality is irrelevant; PAL makes the PM-First allocation.
//   - 1 < D <= GPUs-per-node: traverse the class's L×V matrix. Within-
//     node entries look for a packed allocation among GPUs whose binned
//     score is <= the entry's V; across-node entries fall back to a
//     PM-First pick over the same filtered set.
//   - D > GPUs-per-node: the job must span nodes and pay L_across anyway,
//     so PAL uses the PM-First policy (Algorithm 2 lines 23-25).
//
// Like PM-First, PAL is non-sticky and sorts the schedulable prefix by
// class before allocating.
type PAL struct {
	scorer   vprof.BinnedScorer
	lacross  float64
	modelL   map[string]float64 // optional per-model penalties (§IV-D)
	lrack    float64            // 0 disables the rack level
	matrices []*LVMatrix        // per class, built lazily
	modelMat map[string][]*LVMatrix
	cache    orderCache
	order    *scoreOrder
	pmf      *PMFirst

	// NoHysteresis disables previous-allocation reuse (ablation).
	NoHysteresis bool
}

// NewPAL builds a PAL placer from a binned profile and the inter-node
// locality penalty. modelLacross optionally overrides the penalty per
// model name (pass nil for a constant penalty).
func NewPAL(scorer vprof.BinnedScorer, lacross float64, modelLacross map[string]float64) *PAL {
	if lacross < 1.0 {
		lacross = 1.0
	}
	p := &PAL{
		scorer:   scorer,
		lacross:  lacross,
		modelL:   modelLacross,
		matrices: make([]*LVMatrix, scorer.NumClasses()),
		modelMat: make(map[string][]*LVMatrix),
		pmf:      NewPMFirst(scorer),
	}
	return p
}

// EnableRackLevel turns on the three-level L×V extension: allocations
// spanning nodes within one rack pay penalty lrack (1 <= lrack <=
// L_across), and only rack-spanning allocations pay the full L_across.
// The cluster topology must define NodesPerRack for the level to bind,
// and the engine must be configured with the matching Config.Lrack.
// Matrices are rebuilt on the next placement. This extends the paper's
// two-level locality model (§III-C1 bounds the matrix by "the number of
// locality levels in the cluster").
func (p *PAL) EnableRackLevel(lrack float64) {
	if lrack < 1.0 {
		lrack = 1.0
	}
	if lrack > p.lacross {
		lrack = p.lacross
	}
	p.lrack = lrack
	p.matrices = make([]*LVMatrix, p.scorer.NumClasses())
	p.modelMat = make(map[string][]*LVMatrix)
}

// Name implements sim.Placer.
func (p *PAL) Name() string { return "pal" }

// Sticky implements sim.Placer: PAL is non-sticky (§IV-A1).
func (p *PAL) Sticky() bool { return false }

// levels returns the locality-penalty column of the L×V matrix for the
// given across-node penalty: two levels in the paper's model, three when
// the rack extension is enabled.
func (p *PAL) levels(lacross float64) []float64 {
	if p.lrack > 0 {
		return []float64{1.0, min(p.lrack, lacross), lacross}
	}
	return []float64{1.0, lacross}
}

// Matrix returns the L×V matrix for a class under the constant penalty
// (building it on first use). Exposed for inspection by examples/tests.
func (p *PAL) Matrix(class vprof.Class) *LVMatrix {
	if int(class) >= len(p.matrices) {
		return nil
	}
	if p.matrices[class] == nil {
		m, err := BuildLV(p.levels(p.lacross), p.scorer.BinScores(class))
		if err != nil {
			panic(err) // bins come from the binning pipeline; cannot be empty
		}
		p.matrices[class] = m
	}
	return p.matrices[class]
}

// matrixFor returns the job's matrix, honoring per-model penalties.
func (p *PAL) matrixFor(j *sim.Job) *LVMatrix {
	if p.modelL != nil {
		if l, ok := p.modelL[j.Spec.Model]; ok && l != p.lacross {
			mats, cached := p.modelMat[j.Spec.Model]
			if !cached {
				mats = make([]*LVMatrix, p.scorer.NumClasses())
				p.modelMat[j.Spec.Model] = mats
			}
			class := int(j.Spec.Class)
			if mats[class] == nil {
				m, err := BuildLV(p.levels(max(l, 1.0)), p.scorer.BinScores(j.Spec.Class))
				if err != nil {
					panic(err)
				}
				mats[class] = m
			}
			return mats[class]
		}
	}
	return p.Matrix(j.Spec.Class)
}

// PlaceRound implements sim.Placer.
func (p *PAL) PlaceRound(c *cluster.Cluster, need []*sim.Job, now float64) map[int][]cluster.GPUID {
	p.order = p.cache.get(p.scorer, p.scorer.NumClasses(), c.Size(), c.GPUsPerNode())
	p.pmf.order = p.order // share the precomputed orders
	opts := placeOpts{noHysteresis: p.NoHysteresis}
	return placeWithHysteresis(c, need, opts,
		func(j *sim.Job) []cluster.GPUID { return p.placeJob(c, j) },
		func(j *sim.Job, gpus []cluster.GPUID) float64 { return p.lvProduct(c, j, gpus) })
}

// lvProduct evaluates the combined locality × variability slowdown of an
// allocation for the job under the policy's (possibly per-model) penalty,
// mirroring the engine's Equation-1 locality model including the rack
// level when enabled.
func (p *PAL) lvProduct(c cluster.View, j *sim.Job, gpus []cluster.GPUID) float64 {
	l := 1.0
	if c.NodesSpanned(gpus) > 1 {
		l = p.lacross
		if p.modelL != nil {
			if v, ok := p.modelL[j.Spec.Model]; ok {
				l = v
			}
		}
		if p.lrack > 0 && c.RacksSpanned(gpus) <= 1 {
			l = min(p.lrack, l)
		}
	}
	return l * maxScore(p.scorer, j.Spec.Class, gpus)
}

// placeJob implements Algorithm 2 for one job against the cluster's
// current free state.
func (p *PAL) placeJob(c cluster.View, j *sim.Job) []cluster.GPUID {
	d := j.Spec.Demand
	rackCap := 0
	if p.lrack > 0 && c.Topology().NodesPerRack > 0 {
		rackCap = c.Topology().NodesPerRack * c.GPUsPerNode()
	}
	localityBound := c.GPUsPerNode()
	if rackCap > localityBound {
		localityBound = rackCap
	}
	if d <= 1 || d > localityBound {
		// Single-GPU jobs have no locality dimension; jobs larger than
		// the deepest locality scope must spread regardless, so
		// variability is all that is left to optimize (Algorithm 2
		// lines 23-25).
		alloc := p.order.takeBest(c, j.Spec.Class, d)
		if alloc == nil {
			panic("core: PAL/PM-First path out of free GPUs")
		}
		return alloc
	}
	m := p.matrixFor(j)
	class := j.Spec.Class
	last := len(m.Levels) - 1
	for _, e := range m.Entries {
		var alloc []cluster.GPUID
		switch {
		case e.Level == 0:
			// (L_within, V_i): look for a strictly packed allocation among
			// GPUs with binned score <= V_i. Choosing the d lowest-score
			// filtered GPUs on a node minimizes the allocation's max V, so
			// the exhaustive nCk enumeration of Algorithm 2 reduces to a
			// per-node greedy pick (GetMinV over packed candidate sets).
			if d <= c.GPUsPerNode() {
				alloc = p.packedUnder(c, class, d, e.V)
			}
		case e.Level == last:
			// (L_across, V_i): locality cost is acceptable at this point
			// in the traversal; make a PM-First pick over the filtered
			// free list.
			alloc = p.order.takeBestUnder(c, class, d, e.V)
		default:
			// (L_rack, V_i): rack-level extension — the best allocation
			// confined to a single rack.
			alloc = p.rackUnder(c, class, d, e.V)
		}
		if alloc != nil {
			return alloc
		}
	}
	// The last across-node entry filters at the worst bin score, which
	// admits every free GPU, so reaching here means the engine violated
	// its capacity guarantee.
	panic("core: PAL traversal exhausted with insufficient free GPUs")
}

// rackUnder finds the d lowest-score free GPUs with score <= v confined
// to a single rack, picking the rack whose d-th-best score is lowest. It
// walks the global ascending score order, so the first rack to
// accumulate d GPUs wins.
func (p *PAL) rackUnder(c cluster.View, class vprof.Class, d int, v float64) []cluster.GPUID {
	nodesPerRack := c.Topology().NodesPerRack
	if nodesPerRack <= 0 {
		return nil
	}
	numRacks := (c.NumNodes() + nodesPerRack - 1) / nodesPerRack
	buckets := make([][]cluster.GPUID, numRacks)
	for _, g := range p.order.byClass[class] {
		if p.scorer.Score(class, int(g)) > v {
			break
		}
		if !c.IsFree(g) {
			continue
		}
		r := c.RackOf(g)
		buckets[r] = append(buckets[r], g)
		if len(buckets[r]) == d {
			return append([]cluster.GPUID(nil), buckets[r]...)
		}
	}
	return nil
}

// packedUnder searches every node for a within-node allocation of d GPUs
// whose binned scores are all <= v, returning the one with the lowest max
// score. Ties between equally-good nodes break on a hash of the node ID
// so packed class-A traffic does not pile onto the lowest-numbered node
// (see newScoreOrder for why that matters).
func (p *PAL) packedUnder(c cluster.View, class vprof.Class, d int, v float64) []cluster.GPUID {
	var best []cluster.GPUID
	bestMax := 0.0
	bestTie := uint64(0)
	for n := 0; n < c.NumNodes(); n++ {
		// The occupancy index rules out undersupplied nodes in O(1),
		// before the per-GPU score walk.
		if c.FreeOnNode(cluster.NodeID(n)) < d {
			continue
		}
		alloc, maxV := p.order.takeNodeUnder(c, class, n, d, v)
		if alloc == nil {
			continue
		}
		tie := mix64(uint64(n))
		if best == nil || maxV < bestMax || (maxV == bestMax && tie < bestTie) {
			best = alloc
			bestMax = maxV
			bestTie = tie
		}
	}
	return best
}

var _ sim.Placer = (*PAL)(nil)
