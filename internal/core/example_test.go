package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleBuildLV reproduces the worked L×V matrix of §III-C1: four
// PM-score bins and an inter-node penalty of 1.5. The traversal visits
// allocations from smallest to largest combined slowdown, which is why
// PAL prefers a distributed allocation at V=0.94 (product 1.41) over a
// packed allocation from the 2.55 bin.
func ExampleBuildLV() {
	m, err := core.BuildLV([]float64{1.0, 1.5}, []float64{0.89, 0.94, 1.06, 2.55})
	if err != nil {
		panic(err)
	}
	for _, e := range m.Entries {
		fmt.Printf("(%.2f, %.2f) -> %.3f\n", e.L, e.V, e.Product())
	}
	// Output:
	// (1.00, 0.89) -> 0.890
	// (1.00, 0.94) -> 0.940
	// (1.00, 1.06) -> 1.060
	// (1.50, 0.89) -> 1.335
	// (1.50, 0.94) -> 1.410
	// (1.50, 1.06) -> 1.590
	// (1.00, 2.55) -> 2.550
	// (1.50, 2.55) -> 3.825
}
