package core

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/vprof"
)

// PMFirst is the paper's first placement policy (§III-B, Algorithm 1):
// PM-induced variability gets first-order precedence. Within the
// schedulable prefix handed over by the scheduling policy, jobs are
// re-ordered by class (placement priority: class A first) and each job
// greedily receives the free GPUs with the lowest PM scores for its
// class. PM-First is Non-Sticky so jobs can migrate to better GPUs every
// round.
type PMFirst struct {
	scorer vprof.Scorer
	cache  orderCache // precomputed score orders, rebuilt if scores drift
	order  *scoreOrder

	// NoClassPriority disables the class-based reordering of the
	// schedulable prefix (ablation: placement priority off). Set before
	// the first PlaceRound.
	NoClassPriority bool
	// NoHysteresis disables previous-allocation reuse, re-placing every
	// job fresh each round (ablation: plain non-sticky).
	NoHysteresis bool
}

// NewPMFirst builds a PM-First placer over the given PM-score view
// (typically a *vprof.Binned; the ablation bench passes the raw
// *vprof.Profile to measure the effect of binning).
func NewPMFirst(scorer vprof.Scorer) *PMFirst {
	return &PMFirst{scorer: scorer}
}

// Name implements sim.Placer.
func (p *PMFirst) Name() string { return "pm-first" }

// Sticky implements sim.Placer: PM-First is non-sticky (§IV-A1).
func (p *PMFirst) Sticky() bool { return false }

// ensureOrder refreshes the precomputed score orders (rebuilding when a
// dynamic scorer's version moves).
func (p *PMFirst) ensureOrder(c cluster.View) {
	p.order = p.cache.get(p.scorer, p.scorer.NumClasses(), c.Size(), c.GPUsPerNode())
}

// PlaceRound implements sim.Placer.
func (p *PMFirst) PlaceRound(c *cluster.Cluster, need []*sim.Job, _ float64) map[int][]cluster.GPUID {
	p.ensureOrder(c)
	opts := placeOpts{noClassPriority: p.NoClassPriority, noHysteresis: p.NoHysteresis}
	return placeWithHysteresis(c, need, opts,
		func(j *sim.Job) []cluster.GPUID {
			alloc := p.order.takeBest(c, j.Spec.Class, j.Spec.Demand)
			if alloc == nil {
				panic(fmt.Sprintf("core: PM-First cannot place job %d (demand %d, free %d)",
					j.Spec.ID, j.Spec.Demand, c.NumFree()))
			}
			return alloc
		},
		func(j *sim.Job, gpus []cluster.GPUID) float64 {
			return maxScore(p.scorer, j.Spec.Class, gpus)
		})
}

// SortByPlacementPriority stably sorts jobs by class (class A = 0 first).
// The input order is the scheduling order, so within a class the
// scheduling policy's priorities are preserved; across classes the
// placement priority of §III-B applies. The caller already truncated the
// queue at cluster size, so every job here is guaranteed to be scheduled
// this round — reordering cannot starve anyone.
func SortByPlacementPriority(need []*sim.Job) []*sim.Job {
	out := append([]*sim.Job(nil), need...)
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].Spec.Class < out[b].Spec.Class
	})
	return out
}

var _ sim.Placer = (*PMFirst)(nil)
