package core

import (
	"fmt"

	"repro/internal/place"
	"repro/internal/sim"
)

// The paper's two contributed policies register themselves in the
// shared placement registry (see internal/place/registry.go), making
// "pm-first" and "pal" addressable by name from scenario specs, the
// experiments layer and the CLIs alongside the baselines.
func init() {
	place.Register("pm-first", func(env place.BuildEnv) (sim.Placer, error) {
		if env.Scores == nil {
			return nil, fmt.Errorf("core: pm-first requires a PM-score profile")
		}
		return NewPMFirst(env.Scores), nil
	})
	place.Register("pal", func(env place.BuildEnv) (sim.Placer, error) {
		if env.Scores == nil {
			return nil, fmt.Errorf("core: pal requires a PM-score profile")
		}
		p := NewPAL(env.Scores, env.Lacross, env.ModelLacross)
		if env.Lrack > 0 {
			p.EnableRackLevel(env.Lrack)
		}
		return p, nil
	})
}
