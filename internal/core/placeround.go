package core

import (
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/vprof"
)

// placeWithHysteresis is the two-pass allocation loop shared by PM-First
// and PAL.
//
// Both policies are Non-Sticky so jobs *can* migrate to better GPUs every
// round, but a migration costs a checkpoint/restore, so a rational policy
// only moves a job when the move strictly improves its allocation. The
// first pass tentatively re-reserves every job's previous GPUs (when they
// are still intact), preventing other jobs from stealing them mid-round;
// the second pass walks jobs in placement-priority order, computes the
// fresh optimal allocation, and migrates only if the fresh pick is
// strictly better under the policy's quality metric (max PM score for
// PM-First, LV-product for PAL; lower is better).
//
// fresh must return a valid allocation given the cluster's current free
// state; quality evaluates an allocation for a job.
// placeOpts toggles the ablation switches of the two-pass loop.
type placeOpts struct {
	// noClassPriority keeps the scheduling order instead of sorting the
	// prefix by class (the "placement priority off" ablation).
	noClassPriority bool
	// noHysteresis re-places every job fresh each round (the paper's
	// plain Non-Sticky semantics, used by the hysteresis ablation).
	noHysteresis bool
}

func placeWithHysteresis(
	c *cluster.Cluster,
	need []*sim.Job,
	opts placeOpts,
	fresh func(*sim.Job) []cluster.GPUID,
	quality func(*sim.Job, []cluster.GPUID) float64,
) map[int][]cluster.GPUID {
	ordered := need
	if !opts.noClassPriority {
		ordered = SortByPlacementPriority(need)
	}

	// Pass 1: tentatively hold every job's previous allocation.
	kept := make(map[int][]cluster.GPUID)
	if !opts.noHysteresis {
		for _, j := range ordered {
			if prev := reusablePrev(c, j); prev != nil {
				c.Allocate(j.Spec.ID, prev)
				kept[j.Spec.ID] = prev
			}
		}
	}

	// Pass 2: fresh-vs-previous decision per job, in priority order.
	out := make(map[int][]cluster.GPUID, len(need))
	reserved := make([]cluster.GPUID, 0, 16)
	for _, j := range ordered {
		prev := kept[j.Spec.ID]
		if prev != nil {
			c.Release(prev) // expose the job's own GPUs to its fresh pick
		}
		alloc := fresh(j)
		if prev != nil && quality(j, prev) <= quality(j, alloc) {
			alloc = prev
		}
		c.Allocate(j.Spec.ID, alloc)
		reserved = append(reserved, alloc...)
		out[j.Spec.ID] = alloc
	}
	c.Release(reserved) // hand ownership back to the engine
	return out
}

// reusablePrev returns the job's previous allocation if it is intact and
// entirely free, else nil.
func reusablePrev(c cluster.View, j *sim.Job) []cluster.GPUID {
	prev := j.PrevAlloc
	if len(prev) != j.Spec.Demand {
		return nil
	}
	for _, g := range prev {
		if !c.IsFree(g) {
			return nil
		}
	}
	return prev
}

// maxScore returns the worst PM score in the allocation for the class.
func maxScore(s vprof.Scorer, class vprof.Class, gpus []cluster.GPUID) float64 {
	m := 0.0
	for _, g := range gpus {
		if v := s.Score(class, int(g)); v > m {
			m = v
		}
	}
	return m
}
