package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/vprof"
)

func orderFixture() (*scoreOrder, *cluster.Cluster, *fakeBinned) {
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1 + float64(g%4)*0.1 // scores 1.0, 1.1, 1.2, 1.3 per node position
	}
	f := newFake(uniformScores(scores, 1))
	c := topo16()
	return newScoreOrder(f, 1, 16, 4), c, f
}

func TestScoreOrderAscending(t *testing.T) {
	o, _, f := orderFixture()
	prev := -1.0
	for _, g := range o.byClass[0] {
		s := f.Score(0, int(g))
		if s < prev {
			t.Fatalf("order not ascending at gpu %d", g)
		}
		prev = s
	}
	if len(o.byClass[0]) != 16 {
		t.Fatalf("order covers %d GPUs", len(o.byClass[0]))
	}
}

func TestScoreOrderNodeLists(t *testing.T) {
	o, _, f := orderFixture()
	for n := 0; n < 4; n++ {
		prev := -1.0
		for _, g := range o.nodeByClass[0][n] {
			if int(g)/4 != n {
				t.Fatalf("node %d list contains gpu %d", n, g)
			}
			s := f.Score(0, int(g))
			if s < prev {
				t.Fatalf("node %d order not ascending", n)
			}
			prev = s
		}
	}
}

func TestTakeBestSkipsBusy(t *testing.T) {
	o, c, f := orderFixture()
	// Occupy all the score-1.0 GPUs (positions 0, 4, 8, 12).
	c.Allocate(1, []cluster.GPUID{0, 4, 8, 12})
	got := o.takeBest(c, 0, 2)
	for _, g := range got {
		if f.Score(0, int(g)) != 1.1 {
			t.Errorf("takeBest picked score %v, want 1.1 tier", f.Score(0, int(g)))
		}
	}
}

func TestTakeBestInsufficient(t *testing.T) {
	o, c, _ := orderFixture()
	c.Allocate(1, c.FreeGPUs()[:15])
	if got := o.takeBest(c, 0, 2); got != nil {
		t.Errorf("takeBest with 1 free GPU for demand 2 = %v, want nil", got)
	}
}

func TestTakeBestUnderStopsAtThreshold(t *testing.T) {
	o, c, f := orderFixture()
	// Filter at 1.05: only the four 1.0-score GPUs qualify.
	got := o.takeBestUnder(c, 0, 4, 1.05)
	if len(got) != 4 {
		t.Fatalf("takeBestUnder = %v", got)
	}
	for _, g := range got {
		if f.Score(0, int(g)) > 1.05 {
			t.Errorf("picked over-threshold GPU %d", g)
		}
	}
	// Demand 5 at the same threshold cannot be met.
	if got := o.takeBestUnder(c, 0, 5, 1.05); got != nil {
		t.Errorf("threshold overrun: %v", got)
	}
}

func TestTakeNodeUnder(t *testing.T) {
	o, c, _ := orderFixture()
	// Node 0: scores 1.0-1.3; at threshold 1.15, two GPUs qualify.
	alloc, maxV := o.takeNodeUnder(c, 0, 0, 2, 1.15)
	if len(alloc) != 2 {
		t.Fatalf("takeNodeUnder = %v", alloc)
	}
	if maxV != 1.1 {
		t.Errorf("maxV = %v, want 1.1", maxV)
	}
	// Demand 3 at that threshold fails.
	if alloc, _ := o.takeNodeUnder(c, 0, 0, 3, 1.15); alloc != nil {
		t.Errorf("over-demand succeeded: %v", alloc)
	}
}

func TestHashedTieBreakSpreadsPicks(t *testing.T) {
	// All scores equal: the in-bin order must not be 0,1,2,3,... — the
	// hash decorrelates it from GPU IDs (see newScoreOrder).
	scores := make([]float64, 64)
	for g := range scores {
		scores[g] = 1.0
	}
	f := newFake(uniformScores(scores, 1))
	o := newScoreOrder(f, 1, 64, 4)
	identity := true
	for i, g := range o.byClass[0] {
		if int(g) != i {
			identity = false
			break
		}
	}
	if identity {
		t.Error("tie order equals GPU-ID order; hash tie-break not applied")
	}
	// Still a permutation.
	seen := make([]bool, 64)
	for _, g := range o.byClass[0] {
		if seen[g] {
			t.Fatalf("gpu %d repeated", g)
		}
		seen[g] = true
	}
}

// bumpScorer is a versioned fake whose scores flip on demand.
type bumpScorer struct {
	*fakeBinned
	v       uint64
	flipped bool
}

func (b *bumpScorer) Version() uint64 { return b.v }
func (b *bumpScorer) Score(c vprof.Class, g int) float64 {
	if b.flipped && g == 0 {
		return 9.9
	}
	return b.fakeBinned.Score(c, g)
}

func TestOrderCacheRebuildsOnVersionChange(t *testing.T) {
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1 + float64(g)*0.01 // GPU 0 is best
	}
	bs := &bumpScorer{fakeBinned: newFake(uniformScores(scores, 1))}
	var cache orderCache
	o1 := cache.get(bs, 1, 16, 4)
	if o1.byClass[0][0] != 0 {
		t.Fatalf("best GPU should be 0, got %d", o1.byClass[0][0])
	}
	// Same version: cached object returned.
	if o2 := cache.get(bs, 1, 16, 4); o2 != o1 {
		t.Error("cache rebuilt without a version change")
	}
	// Flip GPU 0 to terrible and bump the version: rebuild demotes it.
	bs.flipped = true
	bs.v++
	o3 := cache.get(bs, 1, 16, 4)
	if o3 == o1 {
		t.Fatal("cache not rebuilt after version change")
	}
	if o3.byClass[0][0] == 0 {
		t.Error("rebuilt order still ranks the now-terrible GPU 0 first")
	}
}

func TestOrderCacheStaticScorerBuiltOnce(t *testing.T) {
	scores := make([]float64, 16)
	for g := range scores {
		scores[g] = 1.0
	}
	f := newFake(uniformScores(scores, 1))
	var cache orderCache
	o1 := cache.get(f, 1, 16, 4)
	o2 := cache.get(f, 1, 16, 4)
	if o1 != o2 {
		t.Error("static scorer rebuilt")
	}
}
