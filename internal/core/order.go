package core

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/vprof"
)

// scoreOrder precomputes, per class, the cluster's GPUs sorted ascending
// by PM score (ties by GPU ID). PM scores are static for a run — profiles
// are generated at design time (§IV-C) — so both PM-First and PAL can
// allocate by walking these orders and skipping busy GPUs instead of
// re-sorting the free list every round. This is what keeps per-epoch
// placement cost low on large clusters (Fig. 18).
type scoreOrder struct {
	scorer vprof.Scorer
	// byClass[c] lists every GPU ascending by Score(c, g).
	byClass [][]cluster.GPUID
	// nodeByClass[c][n] lists node n's GPUs ascending by Score(c, g).
	nodeByClass [][][]cluster.GPUID
}

// newScoreOrder builds the per-class orders for a cluster of n GPUs laid
// out with gpusPerNode GPUs per node.
//
// Ties between GPUs with identical (binned) scores are broken by a hash
// of the GPU ID rather than the ID itself. All GPUs of a bin are equal as
// far as the policy knows, and an ID-ordered tie-break would concentrate
// allocations on the lowest-numbered nodes — systematically hammering the
// same hardware and, with a stale profile (§V-A), systematically hitting
// the same mis-profiled node. The hash spreads in-bin picks across the
// cluster while staying fully deterministic.
func newScoreOrder(scorer vprof.Scorer, numClasses, n, gpusPerNode int) *scoreOrder {
	o := &scoreOrder{
		scorer:      scorer,
		byClass:     make([][]cluster.GPUID, numClasses),
		nodeByClass: make([][][]cluster.GPUID, numClasses),
	}
	tie := make([]uint64, n)
	for g := range tie {
		tie[g] = mix64(uint64(g))
	}
	less := func(class vprof.Class) func(a, b cluster.GPUID) bool {
		return func(a, b cluster.GPUID) bool {
			sa := scorer.Score(class, int(a))
			sb := scorer.Score(class, int(b))
			if sa != sb {
				return sa < sb
			}
			if tie[a] != tie[b] {
				return tie[a] < tie[b]
			}
			return a < b
		}
	}
	numNodes := n / gpusPerNode
	for c := 0; c < numClasses; c++ {
		class := vprof.Class(c)
		cmp := less(class)
		all := make([]cluster.GPUID, n)
		for g := range all {
			all[g] = cluster.GPUID(g)
		}
		sort.Slice(all, func(a, b int) bool { return cmp(all[a], all[b]) })
		o.byClass[c] = all

		nodes := make([][]cluster.GPUID, numNodes)
		for nIdx := 0; nIdx < numNodes; nIdx++ {
			node := make([]cluster.GPUID, gpusPerNode)
			for i := range node {
				node[i] = cluster.GPUID(nIdx*gpusPerNode + i)
			}
			sort.Slice(node, func(a, b int) bool { return cmp(node[a], node[b]) })
			nodes[nIdx] = node
		}
		o.nodeByClass[c] = nodes
	}
	return o
}

// mix64 is the SplitMix64 finalizer, used as a deterministic tie-break
// hash.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// versionedScorer is implemented by scorers whose scores evolve at run
// time (the online re-profiling extension). Placers that precompute
// score orders rebuild them when the version changes.
type versionedScorer interface {
	Version() uint64
}

// orderCache owns a scoreOrder plus the staleness bookkeeping shared by
// PM-First and PAL.
type orderCache struct {
	order   *scoreOrder
	version uint64
}

// get returns a fresh-enough scoreOrder for the scorer and cluster shape,
// rebuilding if the scorer's version moved (at most once per scheduling
// round in practice).
func (oc *orderCache) get(scorer vprof.Scorer, numClasses, n, gpusPerNode int) *scoreOrder {
	v, dynamic := uint64(0), false
	if vs, ok := scorer.(versionedScorer); ok {
		v, dynamic = vs.Version(), true
	}
	if oc.order == nil || (dynamic && v != oc.version) {
		oc.order = newScoreOrder(scorer, numClasses, n, gpusPerNode)
		oc.version = v
	}
	return oc.order
}

// takeBest returns the first demand free GPUs in class order, i.e. the
// free GPUs with the lowest PM scores (Algorithm 1's selection). The
// result is nil if fewer than demand GPUs are free.
func (o *scoreOrder) takeBest(c cluster.View, class vprof.Class, demand int) []cluster.GPUID {
	out := make([]cluster.GPUID, 0, demand)
	for _, g := range o.byClass[class] {
		if !c.IsFree(g) {
			continue
		}
		out = append(out, g)
		if len(out) == demand {
			return out
		}
	}
	return nil
}

// takeBestUnder is takeBest restricted to GPUs with score <= v. The class
// order is ascending by score, so the walk stops at the first GPU over v.
func (o *scoreOrder) takeBestUnder(c cluster.View, class vprof.Class, demand int, v float64) []cluster.GPUID {
	out := make([]cluster.GPUID, 0, demand)
	for _, g := range o.byClass[class] {
		if o.scorer.Score(class, int(g)) > v {
			break
		}
		if !c.IsFree(g) {
			continue
		}
		out = append(out, g)
		if len(out) == demand {
			return out
		}
	}
	return nil
}

// takeNodeUnder returns the demand lowest-score free GPUs on the node
// with score <= v, or nil if the node cannot supply them. The second
// return is the allocation's max score.
func (o *scoreOrder) takeNodeUnder(c cluster.View, class vprof.Class, node, demand int, v float64) ([]cluster.GPUID, float64) {
	out := make([]cluster.GPUID, 0, demand)
	maxV := 0.0
	for _, g := range o.nodeByClass[class][node] {
		s := o.scorer.Score(class, int(g))
		if s > v {
			break
		}
		if !c.IsFree(g) {
			continue
		}
		out = append(out, g)
		maxV = s
		if len(out) == demand {
			return out, maxV
		}
	}
	return nil, 0
}
