package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestPaperExampleMatrix reproduces the worked example of §III-C1: bins
// V = {0.89, 0.94, 1.06, 2.55} with L_across = 1.5 must traverse
// (1,0.89) (1,0.94) (1,1.06) (1.5,1.34) (1.5,1.41) (1.5,1.59) (1.5,3.88).
func TestPaperExampleMatrix(t *testing.T) {
	bins := []float64{0.89, 0.94, 1.06, 2.55}
	m, err := BuildLV([]float64{1.0, 1.5}, bins)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 8 {
		t.Fatalf("entries = %d, want 8 (2 levels x 4 bins)", len(m.Entries))
	}
	// The paper's example lists 7 steps because (1, 2.55) with product
	// 2.55 sits between 1.59 and 3.88; check the first seven positions
	// against the published order up to where 2.55 interleaves.
	got := m.Entries
	checks := []struct {
		idx     int
		product float64
		within  bool
	}{
		{0, 0.89, true},
		{1, 0.94, true},
		{2, 1.06, true},
		{3, 1.335, false}, // 1.5 x 0.89
		{4, 1.41, false},  // 1.5 x 0.94
		{5, 1.59, false},  // 1.5 x 1.06
		{6, 2.55, true},   // within-node at the worst bin
		{7, 3.825, false}, // 1.5 x 2.55
	}
	for _, c := range checks {
		e := got[c.idx]
		if math.Abs(e.Product()-c.product) > 1e-9 {
			t.Errorf("entry %d product = %v, want %v", c.idx, e.Product(), c.product)
		}
		if (e.Level == 0) != c.within {
			t.Errorf("entry %d within = %v, want %v", c.idx, e.Level == 0, c.within)
		}
	}
}

func TestBuildLVErrors(t *testing.T) {
	if _, err := BuildLV(nil, []float64{1}); err == nil {
		t.Error("no levels should error")
	}
	if _, err := BuildLV([]float64{1}, nil); err == nil {
		t.Error("no bins should error")
	}
	if _, err := BuildLV([]float64{1.5, 1.0}, []float64{1}); err == nil {
		t.Error("descending levels should error")
	}
	if _, err := BuildLV([]float64{1.0}, []float64{2, 1}); err == nil {
		t.Error("descending bins should error")
	}
}

// TestTraversalSortedProperty: entries must always be sorted ascending by
// product with ties preferring more-local levels.
func TestTraversalSortedProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		nbins := 1 + r.Intn(8)
		bins := make([]float64, nbins)
		v := 0.8
		for i := range bins {
			v += r.Float64() * 0.5
			bins[i] = v
		}
		lacross := 1.0 + r.Float64()*2
		m, err := BuildLV([]float64{1.0, lacross}, bins)
		if err != nil {
			return false
		}
		for i := 1; i < len(m.Entries); i++ {
			a, b := m.Entries[i-1], m.Entries[i]
			if b.Product() < a.Product()-1e-12 {
				return false
			}
			if b.Product() == a.Product() && b.Level < a.Level {
				return false
			}
		}
		return len(m.Entries) == 2*nbins
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestThreeLevelMatrix(t *testing.T) {
	// Extension: a rack level between node and cluster.
	m, err := BuildLV([]float64{1.0, 1.2, 1.7}, []float64{0.9, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 6 {
		t.Fatalf("entries = %d, want 6", len(m.Entries))
	}
	if m.Entries[0].Product() != 0.9*1.0 {
		t.Errorf("first entry %v", m.Entries[0])
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := BuildLV([]float64{1.0, 1.5}, []float64{0.89, 0.94, 1.06, 2.55})
	s := m.String()
	if s == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"traversal:", "within-node", "0.89"} {
		if !contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
