// Package core implements the paper's primary contribution: the PM-First
// placement policy (§III-B, Algorithm 1) and the PAL placement policy
// (§III-C, Algorithm 2) with its locality × variability (L×V) matrix.
//
// Both policies consume per-class, per-GPU PM scores (package vprof) —
// normalized iteration times where the median GPU scores 1.0 and lower is
// better — and give class-A (variability-sensitive) jobs first pick of
// well-performing GPUs without violating the scheduling policy's
// guarantees (placement priority is separated from scheduling priority,
// Fig. 4).
package core

import (
	"fmt"
	"sort"
	"strings"
)

// LVEntry is one cell of the L×V matrix: a locality level paired with a
// PM-score bin. Product = L × V is the combined slowdown (the LV-Product
// of §III-C1) that PAL minimizes.
type LVEntry struct {
	// Level indexes the locality level: 0 is within-node (L = 1.0); the
	// last level is fully across nodes. Intermediate levels (e.g. within-
	// rack) are an extension.
	Level int
	// L is the locality penalty of the level.
	L float64
	// Bin indexes the PM-score bin of the job's class.
	Bin int
	// V is the bin's centroid PM score.
	V float64
}

// Product returns the entry's LV-product.
func (e LVEntry) Product() float64 { return e.L * e.V }

// LVMatrix is the per-class traversal structure of §III-C1: all (locality
// level, PM bin) combinations sorted ascending by LV-product. Ties prefer
// the more local level (packing) and then the better bin, keeping the
// traversal deterministic.
type LVMatrix struct {
	Levels  []float64 // locality penalties, ascending; Levels[0] == 1.0
	Bins    []float64 // PM-score bin centroids, ascending
	Entries []LVEntry // traversal order
}

// BuildLV constructs the L×V matrix for one class. levels must be
// non-empty with levels[0] the within-node penalty (1.0 in the paper's
// model); bins must be the class's ascending PM-score bin centroids.
func BuildLV(levels, bins []float64) (*LVMatrix, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("core: L×V matrix needs at least one locality level")
	}
	if len(bins) == 0 {
		return nil, fmt.Errorf("core: L×V matrix needs at least one PM bin")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] < levels[i-1] {
			return nil, fmt.Errorf("core: locality penalties must be ascending")
		}
	}
	for i := 1; i < len(bins); i++ {
		if bins[i] < bins[i-1] {
			return nil, fmt.Errorf("core: PM bins must be ascending")
		}
	}
	m := &LVMatrix{
		Levels: append([]float64(nil), levels...),
		Bins:   append([]float64(nil), bins...),
	}
	m.Entries = make([]LVEntry, 0, len(levels)*len(bins))
	for li, l := range m.Levels {
		for bi, v := range m.Bins {
			m.Entries = append(m.Entries, LVEntry{Level: li, L: l, Bin: bi, V: v})
		}
	}
	sort.SliceStable(m.Entries, func(a, b int) bool {
		ea, eb := m.Entries[a], m.Entries[b]
		pa, pb := ea.Product(), eb.Product()
		if pa != pb {
			return pa < pb
		}
		if ea.Level != eb.Level {
			return ea.Level < eb.Level // prefer packing on ties
		}
		return ea.Bin < eb.Bin
	})
	return m, nil
}

// String renders the matrix in the paper's layout (one row per locality
// level) followed by the traversal order, for logs and the quickstart
// example.
func (m *LVMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "L×V matrix (%d levels × %d bins)\n", len(m.Levels), len(m.Bins))
	for li, l := range m.Levels {
		fmt.Fprintf(&b, "  L=%.2f:", l)
		for _, v := range m.Bins {
			fmt.Fprintf(&b, " %6.2f", l*v)
		}
		if li == 0 {
			b.WriteString("  (within-node)")
		}
		b.WriteByte('\n')
	}
	b.WriteString("  traversal:")
	for _, e := range m.Entries {
		fmt.Fprintf(&b, " (%.2f,%.2f)", e.L, e.V)
	}
	b.WriteByte('\n')
	return b.String()
}
