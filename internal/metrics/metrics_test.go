package metrics

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// obs builds a RoundObservation over synthetic running jobs.
func obs(start float64, rounds int, waiting int, jobs ...*sim.Job) sim.RoundObservation {
	sds := make([]float64, len(jobs))
	for i := range sds {
		sds[i] = 1.0 + float64(i)*0.5
	}
	return sim.RoundObservation{
		Start: start, RoundSec: 300, Rounds: rounds,
		Running: jobs, Slowdowns: sds, Waiting: waiting,
	}
}

func job(id, demand int, class vprof.Class) *sim.Job {
	return &sim.Job{Spec: trace.JobSpec{ID: id, Demand: demand, Class: class}}
}

func TestCollectorSamplingCadence(t *testing.T) {
	c := MustCollector(Config{IntervalRounds: 3, ClusterGPUs: 8})
	// 10 rounds in three spans: rounds 0-1, 2-7, 8-9. Samples land on
	// rounds 0, 3, 6, 9 regardless of span boundaries.
	j := job(1, 2, vprof.ClassA)
	c.ObserveRounds(obs(0, 2, 0, j))
	c.ObserveRounds(obs(600, 6, 1, j))
	c.ObserveRounds(obs(2400, 2, 0, j))
	if c.Rounds() != 10 {
		t.Fatalf("observed %d rounds, want 10", c.Rounds())
	}
	c.FinishRun(&sim.Result{})
	p := c.Payload()
	s, ok := p.SeriesByName(SeriesQueueDepth)
	if !ok {
		t.Fatal("queue_depth missing")
	}
	if want := []int64{0, 3, 6, 9}; !reflect.DeepEqual(s.Rounds, want) {
		t.Fatalf("sample rounds %v, want %v", s.Rounds, want)
	}
	if want := []float64{0, 1, 1, 0}; !reflect.DeepEqual(s.Values, want) {
		t.Fatalf("queue_depth values %v, want %v", s.Values, want)
	}
}

func TestCollectorSeriesValues(t *testing.T) {
	c := MustCollector(Config{ClusterGPUs: 16})
	a := job(0, 4, vprof.ClassA) // slowdown 1.0 -> goodput 4
	b := job(1, 2, vprof.ClassB) // slowdown 1.5 -> goodput 2/1.5
	c.ObserveRounds(obs(0, 1, 3, a, b))
	c.FinishRun(&sim.Result{})
	p := c.Payload()

	want := map[string]float64{
		SeriesGPUsInUse:                  6,
		SeriesUtilization:                6.0 / 16,
		SeriesQueueDepth:                 3,
		SeriesRunningJobs:                2,
		SeriesGoodput:                    4 + 2/1.5,
		GoodputClassSeries(vprof.ClassA): 4,
		GoodputClassSeries(vprof.ClassB): 2 / 1.5,
		GoodputClassSeries(vprof.ClassC): 0,
	}
	for name, v := range want {
		s, ok := p.SeriesByName(name)
		if !ok {
			t.Errorf("series %s missing", name)
			continue
		}
		if len(s.Values) != 1 || s.Values[0] != v {
			t.Errorf("%s = %v, want [%g]", name, s.Values, v)
		}
	}
}

func TestCollectorRingEviction(t *testing.T) {
	c := MustCollector(Config{MaxSamples: 4, Series: []string{SeriesRunningJobs}})
	j := job(0, 1, vprof.ClassA)
	c.ObserveRounds(obs(0, 10, 0, j))
	c.FinishRun(&sim.Result{})
	s, _ := c.Payload().SeriesByName(SeriesRunningJobs)
	if want := []int64{6, 7, 8, 9}; !reflect.DeepEqual(s.Rounds, want) {
		t.Fatalf("ring kept rounds %v, want most recent %v", s.Rounds, want)
	}
	if s.Dropped != 6 {
		t.Errorf("dropped %d, want 6", s.Dropped)
	}
}

func TestCollectorEnabledSeriesFiltering(t *testing.T) {
	c := MustCollector(Config{Series: []string{SeriesGPUsInUse, SeriesQueueDepth}, ClusterGPUs: 4})
	c.ObserveRounds(obs(0, 1, 0, job(0, 1, vprof.ClassA)))
	c.FinishRun(&sim.Result{})
	p := c.Payload()
	if len(p.Series) != 2 {
		t.Fatalf("payload has %d series, want the 2 enabled: %+v", len(p.Series), p.Series)
	}
	if _, err := NewCollector(Config{Series: []string{"gpu_temperature"}}); err == nil {
		t.Error("unknown series name accepted")
	}
}

func TestCollectorUtilizationNeedsClusterSize(t *testing.T) {
	c := MustCollector(Config{})
	c.ObserveRounds(obs(0, 1, 0, job(0, 1, vprof.ClassA)))
	c.FinishRun(&sim.Result{})
	if _, ok := c.Payload().SeriesByName(SeriesUtilization); ok {
		t.Error("utilization series present without a cluster size")
	}
	if _, ok := c.Payload().SeriesByName(SeriesGPUsInUse); !ok {
		t.Error("gpus_in_use must not depend on cluster size")
	}
}

func TestPayloadSaveLoadRoundTrip(t *testing.T) {
	// An end-to-end run gives a fully-populated payload.
	tr := &trace.Trace{Name: "t", Jobs: []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 1, Work: 900, Class: vprof.ClassA},
		{ID: 1, Arrival: 300, Demand: 2, Work: 1200, Class: vprof.ClassB},
		// Demand exceeds the 4-GPU cluster: AdmitFits rejects it, and the
		// record must say so rather than archive a JCT-0 "completion".
		{ID: 2, Arrival: 300, Demand: 99, Work: 600, Class: vprof.ClassC},
	}}
	topo := cluster.Topology{NumNodes: 1, GPUsPerNode: 4}
	col := MustCollector(Config{ClusterGPUs: topo.Size(), Label: "roundtrip", Policy: "packed-sticky", Sched: "fifo"})
	res, err := sim.Run(sim.Config{
		Topology:    topo,
		Trace:       tr,
		Sched:       stubSched{},
		Placer:      stubPlacer{},
		TrueProfile: vprof.GenerateLonghorn(topo.Size(), 1),
		Metrics:     col,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := FromResult(res)
	if p == nil || p.Name != "roundtrip" || len(p.Jobs) != 3 || len(p.Series) == 0 {
		t.Fatalf("unexpected payload: %+v", p)
	}
	rejected := p.Jobs[2]
	if !rejected.Rejected || rejected.JCT != 0 || rejected.Finish != 0 || rejected.Started {
		t.Fatalf("admission-rejected job not flagged: %+v", rejected)
	}
	if p.JCTHist == nil || p.JCTHist.N == 0 {
		t.Fatalf("JCT histogram: %+v", p.JCTHist)
	}

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatal("payload did not round-trip through JSON")
	}

	// Unknown fields must be rejected loudly.
	if _, err := Load(bytes.NewReader([]byte(`{"name": "x", "bogus": 1}`))); err == nil {
		t.Error("payload with unknown field accepted")
	}
}

// stubSched/stubPlacer are the minimal policies for the round-trip run.
type stubSched struct{}

func (stubSched) Name() string                                { return "fifo" }
func (stubSched) Order(jobs []*sim.Job, _ float64) []*sim.Job { return jobs }

type stubPlacer struct{}

func (stubPlacer) Name() string { return "stub" }
func (stubPlacer) Sticky() bool { return true }
func (stubPlacer) PlaceRound(c *cluster.Cluster, need []*sim.Job, _ float64) map[int][]cluster.GPUID {
	out := make(map[int][]cluster.GPUID, len(need))
	next := 0
	for _, j := range need {
		var alloc []cluster.GPUID
		for len(alloc) < j.Spec.Demand {
			if c.IsFree(cluster.GPUID(next)) {
				alloc = append(alloc, cluster.GPUID(next))
			}
			next++
		}
		out[j.Spec.ID] = alloc
	}
	return out
}
