package metrics

import "repro/internal/sim"

// ArchivedSink is the read-only sim.MetricsSink a payload loaded from an
// archive rides on. When the artifact store (internal/store) decodes a
// persisted result, the run's telemetry must surface exactly like a live
// run's — Result.Metrics non-nil and FromResult returning the payload —
// so consumers (palsweep -metrics, palreport) cannot tell a warm-started
// result from a freshly simulated one. An ArchivedSink carries the
// already-final payload; it must never be attached to a live engine
// (sim.Config.Metrics wants a fresh Collector), so its observation
// hooks are inert.
type ArchivedSink struct {
	payload *Payload
}

// NewArchivedSink wraps an archived payload as a sink.
func NewArchivedSink(p *Payload) *ArchivedSink {
	return &ArchivedSink{payload: p}
}

// ObserveRounds implements sim.MetricsSink as a no-op: an archived
// payload is final.
func (s *ArchivedSink) ObserveRounds(sim.RoundObservation) {}

// FinishRun implements sim.MetricsSink as a no-op.
func (s *ArchivedSink) FinishRun(*sim.Result) {}

// Payload returns the archived payload (the method FromResult reads).
func (s *ArchivedSink) Payload() *Payload { return s.payload }
