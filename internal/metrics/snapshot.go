package metrics

// Mid-run snapshot state for the engine's snapshot/fork machinery
// (sim.SnapshotState). A collector captured at a horizon and restored
// into a fresh collector continues producing a payload byte-identical
// to one that observed the whole run — the ring buffers are linearized
// on capture and re-seated at ring offset zero on restore, which is
// observationally identical because Samples() and Dropped() are
// position-invariant.

import (
	"encoding/json"
	"fmt"
)

// collectorState is the JSON shape of a collector's mid-run state.
type collectorState struct {
	Round    int64         `json:"round"`
	TimeBase float64       `json:"time_base"`
	RoundSec float64       `json:"round_sec"`
	HaveBase bool          `json:"have_base"`
	Series   []seriesState `json:"series,omitempty"`
}

type seriesState struct {
	Name    string    `json:"name"`
	Rounds  []int64   `json:"rounds,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	Dropped int64     `json:"dropped,omitempty"`
}

// MarshalSnapshotState implements sim.SnapshotState.
func (c *Collector) MarshalSnapshotState() ([]byte, error) {
	if c.finals != nil {
		return nil, fmt.Errorf("metrics: cannot snapshot a finished collector")
	}
	st := collectorState{
		Round:    c.round,
		TimeBase: c.timeBase,
		RoundSec: c.roundSec,
		HaveBase: c.haveBase,
	}
	for _, s := range c.series {
		rounds, values := s.Samples()
		st.Series = append(st.Series, seriesState{
			Name:    s.name,
			Rounds:  rounds,
			Values:  values,
			Dropped: s.dropped,
		})
	}
	return json.Marshal(st)
}

// UnmarshalSnapshotState implements sim.SnapshotState. The receiver must
// be a fresh collector; its enabled series are matched by name against
// the captured ones (a resumed series with no captured counterpart is an
// error — its payload would silently miss the prefix; captured series
// the resumed configuration does not enable are dropped).
func (c *Collector) UnmarshalSnapshotState(data []byte) error {
	if c.finals != nil || c.round != 0 || c.haveBase {
		return fmt.Errorf("metrics: snapshot state restored into a non-fresh collector")
	}
	var st collectorState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("metrics: decode snapshot state: %w", err)
	}
	byName := make(map[string]*seriesState, len(st.Series))
	for i := range st.Series {
		byName[st.Series[i].Name] = &st.Series[i]
	}
	for _, s := range c.series {
		src, ok := byName[s.name]
		if !ok {
			return fmt.Errorf("metrics: snapshot state has no samples for enabled series %q", s.name)
		}
		if len(src.Rounds) != len(src.Values) {
			return fmt.Errorf("metrics: snapshot series %q has %d rounds but %d values", s.name, len(src.Rounds), len(src.Values))
		}
		if len(src.Rounds) > s.rings {
			return fmt.Errorf("metrics: snapshot series %q holds %d samples, resumed ring capacity is %d", s.name, len(src.Rounds), s.rings)
		}
		s.idx = append(s.idx[:0], src.Rounds...)
		s.val = append(s.val[:0], src.Values...)
		s.start = 0
		s.count = len(src.Rounds)
		s.dropped = src.Dropped
	}
	c.round = st.Round
	c.timeBase = st.TimeBase
	c.roundSec = st.RoundSec
	c.haveBase = st.HaveBase
	return nil
}
