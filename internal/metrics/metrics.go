// Package metrics is the telemetry subsystem: a deterministic,
// fast-forward-safe collector the engine drives through the narrow
// sim.MetricsSink hook. Where sim.Observer demands one callback per
// running job per round — and therefore disables the engine's dead-time
// skipping — the collector's contract is span-based: the engine hands it
// the length of each provably-frozen stretch of rounds together with the
// frozen per-job state, and the collector integrates analytically,
// producing output byte-identical to naive round-by-round sampling
// (TestMetricsFastForwardByteIdentical in internal/sim pins this).
//
// One run yields one Payload: fixed-interval ring-buffered time series
// (GPU utilization, queue depth, running/waiting counts, per-class
// goodput), per-job lifecycle records (submit/start/finish, JCT,
// queueing delay, preemptions, migrations), and fixed-bin streaming
// histograms of the JCT and wait distributions. Payloads serialize to
// JSON; cmd/palreport aggregates them across a sweep into
// policy-vs-policy comparison and CDF tables without re-simulating.
//
// Determinism: a Collector is a pure observer. It holds no RNG, never
// mutates jobs, and derives every value from the observation itself, so
// attaching one cannot perturb any simulation draw — Result with and
// without metrics is byte-identical (the scenario layer's metrics
// determinism test enforces this).
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vprof"
)

// Canonical series names. Per-class goodput series follow the pattern
// "goodput_a", "goodput_b", ... (vprof class letters, lowercased).
const (
	SeriesGPUsInUse   = "gpus_in_use"  // GPUs allocated during the round
	SeriesUtilization = "utilization"  // gpus_in_use / cluster size
	SeriesQueueDepth  = "queue_depth"  // active jobs without GPUs
	SeriesRunningJobs = "running_jobs" // jobs holding GPUs
	SeriesGoodput     = "goodput"      // Σ demand/slowdown: ideal GPU-equivalents of progress per second
	goodputClassStem  = "goodput_"     // + lowercased class letter
)

// Defaults applied by NewCollector (and mirrored by the scenario layer's
// normalization).
const (
	DefaultMaxSamples = 16384
	DefaultHistBins   = 64
)

// GoodputClassSeries returns the per-class goodput series name for a
// variability class ("goodput_a" for class A).
func GoodputClassSeries(c vprof.Class) string {
	return goodputClassStem + strings.ToLower(c.String())
}

// AllSeries lists every series name the collector can record, in
// canonical order, for the standard vprof.NumClasses classes.
func AllSeries() []string {
	names := []string{SeriesGPUsInUse, SeriesUtilization, SeriesQueueDepth, SeriesRunningJobs, SeriesGoodput}
	for c := 0; c < vprof.NumClasses; c++ {
		names = append(names, GoodputClassSeries(vprof.Class(c)))
	}
	return names
}

// ValidSeries reports whether name is a recordable series.
func ValidSeries(name string) bool {
	for _, n := range AllSeries() {
		if n == name {
			return true
		}
	}
	return false
}

// Config shapes one Collector.
type Config struct {
	// IntervalRounds samples every k-th simulated round (default 1:
	// every round). The grid is the round index, not wall time, so
	// sampling is exact across fast-forwarded spans.
	IntervalRounds int
	// MaxSamples bounds each series' ring buffer (default
	// DefaultMaxSamples); the ring keeps the most recent samples.
	MaxSamples int
	// Series selects the recorded series by name (AllSeries lists the
	// vocabulary); nil enables all of them.
	Series []string
	// ClusterGPUs sizes the utilization series' denominator. Zero
	// disables the utilization series (the raw gpus_in_use series is
	// unaffected).
	ClusterGPUs int
	// HistBins is the bin count of the JCT and wait histograms (default
	// DefaultHistBins).
	HistBins int

	// Label, Policy and Sched are carried verbatim into the Payload so
	// downstream aggregation (palreport) can identify the run without
	// re-deriving its configuration.
	Label  string
	Policy string
	Sched  string
}

// Collector implements sim.MetricsSink. Create one per run with
// NewCollector, attach it via sim.Config.Metrics, and read the Payload
// back after the run (Result.Metrics / FromResult). A Collector is not
// safe for concurrent use and must not be shared between runs.
type Collector struct {
	cfg      Config
	round    int64 // simulated rounds observed so far
	timeBase float64
	roundSec float64
	haveBase bool

	series []*Series // enabled series, AllSeries order
	finals *Payload  // built once by FinishRun

	// scratch for per-class goodput accumulation
	classGoodput []float64
}

// NewCollector returns a collector with defaults applied: interval 1,
// DefaultMaxSamples ring capacity, DefaultHistBins histogram bins, all
// series enabled. Unknown series names are an error (the scenario layer
// validates them earlier; programmatic callers get the same loudness).
func NewCollector(cfg Config) (*Collector, error) {
	if cfg.IntervalRounds <= 0 {
		cfg.IntervalRounds = 1
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = DefaultMaxSamples
	}
	if cfg.HistBins <= 0 {
		cfg.HistBins = DefaultHistBins
	}
	enabled := cfg.Series
	if enabled == nil {
		enabled = AllSeries()
	}
	seen := make(map[string]bool, len(enabled))
	c := &Collector{cfg: cfg, classGoodput: make([]float64, vprof.NumClasses)}
	for _, name := range AllSeries() {
		for _, want := range enabled {
			if want == name && !seen[name] {
				seen[name] = true
				c.series = append(c.series, newSeries(name, cfg.MaxSamples))
			}
		}
	}
	for _, want := range enabled {
		if !seen[want] {
			return nil, fmt.Errorf("metrics: unknown series %q (have %v)", want, AllSeries())
		}
	}
	return c, nil
}

// MustCollector is NewCollector for configurations known valid at
// compile time (no caller-supplied series names).
func MustCollector(cfg Config) *Collector {
	c, err := NewCollector(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// value computes one series' constant value for a span. Per-class
// goodput has been accumulated into c.classGoodput by ObserveRounds.
func (c *Collector) value(name string, o sim.RoundObservation, inUse int, goodput float64) (float64, bool) {
	switch name {
	case SeriesGPUsInUse:
		return float64(inUse), true
	case SeriesUtilization:
		if c.cfg.ClusterGPUs <= 0 {
			return 0, false
		}
		return float64(inUse) / float64(c.cfg.ClusterGPUs), true
	case SeriesQueueDepth:
		return float64(o.Waiting), true
	case SeriesRunningJobs:
		return float64(len(o.Running)), true
	case SeriesGoodput:
		return goodput, true
	}
	if cls, ok := strings.CutPrefix(name, goodputClassStem); ok && len(cls) == 1 {
		idx := int(cls[0] - 'a')
		if idx >= 0 && idx < len(c.classGoodput) {
			return c.classGoodput[idx], true
		}
	}
	return 0, false
}

// ObserveRounds implements sim.MetricsSink. Every per-round quantity is
// constant across the observed span (the engine's guarantee), so the
// span contributes its samples analytically: the covered sample indices
// are enumerated directly on the round grid and each receives the one
// precomputed value — no per-round state evolution, and therefore no
// arithmetic that could diverge from the naive path.
func (c *Collector) ObserveRounds(o sim.RoundObservation) {
	if !c.haveBase {
		c.timeBase = o.Start
		c.roundSec = o.RoundSec
		c.haveBase = true
	}
	inUse := 0
	goodput := 0.0
	for i := range c.classGoodput {
		c.classGoodput[i] = 0
	}
	// Running is sorted by job ID (canonical order), so these float
	// accumulations are order-stable across the naive and fast paths.
	for i, j := range o.Running {
		inUse += j.Spec.Demand
		g := float64(j.Spec.Demand) / o.Slowdowns[i]
		goodput += g
		if cls := int(j.Spec.Class); cls >= 0 && cls < len(c.classGoodput) {
			c.classGoodput[cls] += g
		}
	}

	k := int64(c.cfg.IntervalRounds)
	end := c.round + int64(o.Rounds)
	first := ((c.round + k - 1) / k) * k
	for _, s := range c.series {
		v, ok := c.value(s.name, o, inUse, goodput)
		if !ok {
			continue
		}
		for idx := first; idx < end; idx += k {
			s.append(idx, v)
		}
	}
	c.round = end
}

// FinishRun implements sim.MetricsSink: it snapshots the series and
// derives lifecycle records, aggregates and distribution histograms from
// the completed result. Called exactly once by the engine.
func (c *Collector) FinishRun(res *sim.Result) {
	if c.finals != nil {
		panic("metrics: FinishRun called twice on one collector")
	}
	c.finals = c.buildPayload(res)
}

// Payload returns the collected telemetry. It is nil until the run
// finishes. The returned value is shared with the collector (and, via
// the runner cache, possibly with other consumers): treat it as
// read-only and copy the struct to relabel it.
func (c *Collector) Payload() *Payload { return c.finals }

// Rounds returns the number of simulated rounds observed so far.
func (c *Collector) Rounds() int64 { return c.round }

// FromResult returns the payload collected during res's run, or nil when
// the run had no metrics attached (or a custom sink that does not expose
// a payload). Both live runs (*Collector) and results decoded from the
// artifact store (*ArchivedSink) satisfy the interface, so downstream
// consumers need not know whether a result was simulated or loaded.
func FromResult(res *sim.Result) *Payload {
	if res == nil || res.Metrics == nil {
		return nil
	}
	if p, ok := res.Metrics.(interface{ Payload() *Payload }); ok {
		return p.Payload()
	}
	return nil
}

// buildPayload assembles the final payload from the collector's series
// and the result's per-job state.
func (c *Collector) buildPayload(res *sim.Result) *Payload {
	p := &Payload{
		Name:           c.cfg.Label,
		Policy:         c.cfg.Policy,
		Sched:          c.cfg.Sched,
		ClusterGPUs:    c.cfg.ClusterGPUs,
		IntervalRounds: c.cfg.IntervalRounds,
		RoundSec:       c.roundSec,
		TimeBase:       c.timeBase,
		Truncated:      res.Truncated,
		Unfinished:     res.Unfinished,
	}
	for _, s := range c.series {
		if s.name == SeriesUtilization && c.cfg.ClusterGPUs <= 0 {
			continue // disabled for lack of a denominator
		}
		rounds, values := s.Samples()
		p.Series = append(p.Series, SeriesData{
			Name:    s.name,
			Rounds:  rounds,
			Values:  values,
			Dropped: s.Dropped(),
		})
	}

	measured := make(map[int]bool, len(res.Measured))
	for _, j := range res.Measured {
		measured[j.Spec.ID] = true
	}
	for _, j := range res.Jobs {
		rec := JobRecord{
			ID:          j.Spec.ID,
			Model:       j.Spec.Model,
			Class:       j.Spec.Class.String(),
			Arrival:     j.Spec.Arrival,
			Demand:      j.Spec.Demand,
			Work:        j.Spec.Work,
			Started:     j.Started,
			Done:        j.Done,
			Preemptions: j.Preemptions,
			Migrations:  j.Migrations,
			Measured:    measured[j.Spec.ID],
		}
		if j.Started {
			rec.FirstRun = j.FirstRun
		}
		switch {
		case j.Done && !j.Started:
			// Admission-rejected: the engine marks these Done with a
			// zero-length schedule. Flag them instead of archiving a
			// fictitious JCT-0 completion.
			rec.Rejected = true
		case j.Done:
			rec.Finish = j.Finish
			rec.JCT = j.JCT()
			rec.Wait = j.Wait()
		}
		p.Jobs = append(p.Jobs, rec)
	}

	jcts := res.JCTs()
	waits := res.Waits()
	p.JCTHist = histOf(jcts, c.cfg.HistBins)
	p.WaitHist = histOf(waits, c.cfg.HistBins)
	p.Aggregates = Aggregates{
		Jobs:                  len(res.Jobs),
		Measured:              len(res.Measured),
		AvgJCT:                stats.Mean(jcts),
		P50JCT:                stats.Percentile(jcts, 50),
		P90JCT:                stats.Percentile(jcts, 90),
		P99JCT:                stats.Percentile(jcts, 99),
		MeanWait:              stats.Mean(waits),
		P99Wait:               stats.Percentile(waits, 99),
		Makespan:              res.Makespan,
		Utilization:           res.Utilization,
		ProductiveUtilization: res.ProductiveUtilization,
		Rounds:                res.Rounds,
	}
	return p
}

// histOf builds a fixed-bin histogram spanning the sample range. The
// bounds derive deterministically from the data (not the collection
// order), so identical runs produce identical histograms.
func histOf(xs []float64, bins int) *stats.StreamingHist {
	if len(xs) == 0 {
		return nil
	}
	hi := stats.Max(xs)
	if hi <= 0 {
		hi = 1
	}
	h := stats.NewStreamingHist(0, hi, bins)
	// Feed in a sorted copy: the histogram's counts are order-invariant,
	// but Min/Max updates and future accumulation extensions are safest
	// on a canonical order.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, x := range sorted {
		h.Observe(x)
	}
	return h
}
