package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/stats"
)

// Payload is the serializable telemetry of one run: identity metadata,
// sampled time series, per-job lifecycle records, distribution
// histograms, and aggregate metrics. Payloads are what palsim/palsweep
// archive (`-metrics out/`) and what palreport aggregates — a sweep's
// evidence can be tabulated later without re-simulating anything.
//
// Payloads attached to cached results are shared: treat them as
// read-only, and copy the struct (the metadata fields are values) before
// relabeling one.
type Payload struct {
	// Name/Policy/Sched identify the run (scenario name and registry
	// names); Key is the run's content-addressed cache key when the
	// archiving caller knows it.
	Name   string `json:"name"`
	Policy string `json:"policy,omitempty"`
	Sched  string `json:"sched,omitempty"`
	Key    string `json:"key,omitempty"`

	ClusterGPUs    int     `json:"cluster_gpus,omitempty"`
	IntervalRounds int     `json:"interval_rounds"`
	RoundSec       float64 `json:"round_sec"`
	// TimeBase is the engine clock (seconds) of round index 0; a
	// sample's wall-clock time is TimeBase + index×RoundSec.
	TimeBase float64 `json:"time_base"`

	// No omitempty on the slice fields: the archive codec must keep
	// nil ("never sampled") distinct from empty ("sampled, no rows").
	Series []SeriesData `json:"series"`
	Jobs   []JobRecord  `json:"jobs"`

	// JCTHist and WaitHist bin the measured jobs' completion times and
	// queueing delays (nil when no job was measured).
	JCTHist  *stats.StreamingHist `json:"jct_hist,omitempty"`
	WaitHist *stats.StreamingHist `json:"wait_hist,omitempty"`

	Aggregates Aggregates `json:"aggregates"`

	// Truncated/Unfinished carry the run's MaxRounds flag: a truncated
	// run's metrics cover completed jobs only, and every consumer of an
	// archived payload must be able to see that.
	Truncated  bool `json:"truncated,omitempty"`
	Unfinished int  `json:"unfinished,omitempty"`
}

// SeriesData is one sampled series: parallel round-index/value slices in
// time order, plus how many older samples the ring buffer dropped.
type SeriesData struct {
	Name    string    `json:"name"`
	Rounds  []int64   `json:"rounds"`
	Values  []float64 `json:"values"`
	Dropped int64     `json:"dropped,omitempty"`
}

// Times returns the series' wall-clock sample times derived from the
// payload's time base and round length.
func (s SeriesData) Times(p *Payload) []float64 {
	out := make([]float64, len(s.Rounds))
	for i, r := range s.Rounds {
		out[i] = p.TimeBase + float64(r)*p.RoundSec
	}
	return out
}

// SeriesByName returns the named series, or false when it was not
// recorded.
func (p *Payload) SeriesByName(name string) (SeriesData, bool) {
	for _, s := range p.Series {
		if s.Name == name {
			return s, true
		}
	}
	return SeriesData{}, false
}

// JobRecord is one job's lifecycle: the quantities the paper's per-job
// plots (JCT CDFs, wait times) are built from, in archival form.
type JobRecord struct {
	ID      int     `json:"id"`
	Model   string  `json:"model,omitempty"`
	Class   string  `json:"class"`
	Arrival float64 `json:"arrival"`
	Demand  int     `json:"demand"`
	Work    float64 `json:"work"`

	Started  bool    `json:"started,omitempty"`
	FirstRun float64 `json:"first_run,omitempty"`
	Done     bool    `json:"done,omitempty"`
	Finish   float64 `json:"finish,omitempty"`
	JCT      float64 `json:"jct,omitempty"`
	Wait     float64 `json:"wait,omitempty"`
	// Rejected marks jobs refused by admission control. The engine
	// closes them out as Done with a zero-length schedule so runs can
	// terminate; without this flag they would read as instantly-finishing
	// jobs (JCT 0) in per-job analyses.
	Rejected bool `json:"rejected,omitempty"`

	Preemptions int `json:"preemptions,omitempty"`
	Migrations  int `json:"migrations,omitempty"`
	// Measured marks jobs inside the run's measurement window (aggregate
	// metrics cover exactly these).
	Measured bool `json:"measured,omitempty"`
}

// Aggregates are the run-level metrics over measured, completed jobs —
// the same quantities export.ResultJSON reports, duplicated here so an
// archived payload stands alone.
type Aggregates struct {
	Jobs                  int     `json:"jobs"`
	Measured              int     `json:"measured"`
	AvgJCT                float64 `json:"avg_jct_sec"`
	P50JCT                float64 `json:"p50_jct_sec"`
	P90JCT                float64 `json:"p90_jct_sec"`
	P99JCT                float64 `json:"p99_jct_sec"`
	MeanWait              float64 `json:"mean_wait_sec"`
	P99Wait               float64 `json:"p99_wait_sec"`
	Makespan              float64 `json:"makespan_sec"`
	Utilization           float64 `json:"utilization"`
	ProductiveUtilization float64 `json:"productive_utilization"`
	Rounds                int     `json:"rounds"`
}

// Save writes the payload as indented JSON.
func (p *Payload) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("metrics: save payload: %w", err)
	}
	return nil
}

// Load reads a payload previously written with Save. Unknown fields are
// rejected so a payload from a future encoding fails loudly instead of
// silently dropping data.
func Load(r io.Reader) (*Payload, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("metrics: load payload: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Payload
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("metrics: decode payload: %w", err)
	}
	return &p, nil
}

// LoadFile reads the payload in the named file.
func LoadFile(path string) (*Payload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	defer f.Close()
	p, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("metrics: %s: %w", path, err)
	}
	return p, nil
}
