package metrics

// Series is a fixed-capacity ring buffer of (round index, value) samples.
// Sampling on the round grid — integer indices rather than float
// timestamps — is what makes span integration exact: a fast-forwarded
// span contributes precisely the sample indices the naive loop would
// have, with no accumulated float time to diverge. Wall-clock sample
// times are derived at export (Payload.TimeBase + index×RoundSec).
//
// When the buffer is full the oldest sample is overwritten, so a series
// always holds the most recent MaxSamples observations; Dropped counts
// the overwritten ones so consumers can tell a complete series from a
// tail window.
type Series struct {
	name  string
	rings int // capacity
	start int // ring index of the oldest sample
	count int

	idx     []int64
	val     []float64
	dropped int64
}

// newSeries returns an empty ring of the given capacity. Backing storage
// grows on demand (amortized append) rather than being preallocated:
// short runs never touch most of a default-sized ring, and zeroing
// megabytes up front would dominate the cost of an instrumented
// fast-forwarded run.
func newSeries(name string, capacity int) *Series {
	return &Series{name: name, rings: capacity}
}

// Name returns the series' registered name.
func (s *Series) Name() string { return s.name }

// Len returns the number of retained samples.
func (s *Series) Len() int { return s.count }

// Dropped returns how many samples were overwritten by ring wraparound.
func (s *Series) Dropped() int64 { return s.dropped }

// append adds one sample, overwriting the oldest when full.
func (s *Series) append(round int64, v float64) {
	if s.count < s.rings {
		s.idx = append(s.idx, round)
		s.val = append(s.val, v)
		s.count++
		return
	}
	s.idx[s.start] = round
	s.val[s.start] = v
	s.start = (s.start + 1) % s.rings
	s.dropped++
}

// Samples returns the retained samples in time order as parallel slices
// (round indices and values). The slices are fresh copies.
func (s *Series) Samples() (rounds []int64, values []float64) {
	rounds = make([]int64, s.count)
	values = make([]float64, s.count)
	for i := 0; i < s.count; i++ {
		j := (s.start + i) % s.rings
		rounds[i] = s.idx[j]
		values[i] = s.val[j]
	}
	return rounds, values
}
