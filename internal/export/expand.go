package export

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ExpandFileArgs resolves a comma-separated CLI argument of files,
// directories and globs into concrete file paths, preserving token
// order. A directory token contributes every file inside it whose name
// ends in ext (sorted); a token containing glob metacharacters expands
// through filepath.Glob; anything else is a literal file. A token that
// matches nothing is collected and reported — the returned error names
// every miss, so a typo'd path cannot silently shrink a sweep or a
// report. Both palsweep (-scenario, ext ".json") and palreport (-in,
// ext ".metrics.json") resolve their arguments here.
//
// Directories are listed with os.ReadDir rather than a constructed glob
// so a directory whose own name contains metacharacters ("specs[1]/")
// still works.
func ExpandFileArgs(s, ext string) ([]string, error) {
	var paths []string
	var misses []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if info, err := os.Stat(tok); err == nil && info.IsDir() {
			entries, err := os.ReadDir(tok)
			if err != nil {
				return nil, fmt.Errorf("reading directory %q: %w", tok, err)
			}
			var matches []string
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ext) {
					matches = append(matches, filepath.Join(tok, e.Name()))
				}
			}
			if len(matches) == 0 {
				misses = append(misses, fmt.Sprintf("%s (directory with no *%s)", tok, ext))
				continue
			}
			sort.Strings(matches)
			paths = append(paths, matches...)
			continue
		}
		if strings.ContainsAny(tok, "*?[") {
			matches, err := filepath.Glob(tok)
			if err != nil {
				return nil, fmt.Errorf("bad glob %q: %w", tok, err)
			}
			if len(matches) == 0 {
				misses = append(misses, fmt.Sprintf("%s (glob matched nothing)", tok))
				continue
			}
			sort.Strings(matches)
			paths = append(paths, matches...)
			continue
		}
		if _, err := os.Stat(tok); err != nil {
			misses = append(misses, fmt.Sprintf("%s (no such file)", tok))
			continue
		}
		paths = append(paths, tok)
	}
	if len(misses) > 0 {
		return nil, fmt.Errorf("arguments matched no files: %s", strings.Join(misses, "; "))
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no files given")
	}
	return paths, nil
}
