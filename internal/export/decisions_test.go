package export

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/decision"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Round-trip coverage for the degenerate observability payloads: a
// metrics payload whose series list is empty or whose series carry nil
// values, and a decision trace with no records. reflect.DeepEqual
// distinguishes nil from empty slices, and so does every byte-identity
// suite downstream, so the codec must preserve the distinction exactly
// rather than normalizing either way.

// TestResultCodecEmptyAndNilSeries: payloads at the nil/empty boundary
// round-trip without the codec collapsing one into the other.
func TestResultCodecEmptyAndNilSeries(t *testing.T) {
	cases := map[string]*metrics.Payload{
		"nil-series": {
			Name: "nil-series", IntervalRounds: 1, RoundSec: 300,
			Series: nil,
		},
		"empty-series": {
			Name: "empty-series", IntervalRounds: 1, RoundSec: 300,
			Series: []metrics.SeriesData{},
		},
		"series-with-nil-values": {
			Name: "nil-values", IntervalRounds: 1, RoundSec: 300,
			Series: []metrics.SeriesData{
				{Name: metrics.SeriesGPUsInUse, Rounds: nil, Values: nil},
				{Name: metrics.SeriesQueueDepth, Rounds: []int64{}, Values: []float64{}},
			},
		},
	}
	for name, payload := range cases {
		name, payload := name, payload
		t.Run(name, func(t *testing.T) {
			res := sampleResult()
			res.Metrics = metrics.NewArchivedSink(payload)
			var buf bytes.Buffer
			if err := EncodeResult(&buf, res); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeResult(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(metrics.FromResult(got), payload) {
				t.Fatalf("payload did not round-trip exactly:\n in  %+v\n out %+v",
					payload, metrics.FromResult(got))
			}
		})
	}
}

// TestResultCodecDecisionTrace: an attached decision trace is embedded
// and resurfaces through decision.FromResult on the decoded result, with
// nil-versus-empty preserved on every slice field — including the
// degenerate all-empty trace of a run that made no decisions.
func TestResultCodecDecisionTrace(t *testing.T) {
	cases := map[string]*decision.Trace{
		"empty-trace": {
			Name: "empty", RoundSec: 300,
			Records: []decision.Record{},
		},
		"nil-records": {
			Name: "nil-records", RoundSec: 300,
			Records: nil,
		},
		"full": {
			Name: "full", Policy: "pal", Sched: "las", Key: "abc123",
			RoundSec: 300, TimeBase: 600,
			Facets: []string{decision.FacetOrder, decision.FacetPlacements},
			Records: []decision.Record{
				{
					Round: 0, Start: 600, Rounds: 3,
					Order: []decision.OrderEntry{
						{Job: 1, Demand: 2, Attained: 0, Running: true, Ceiling: decision.CeilingUnbounded},
						{Job: 2, Demand: 4, Attained: 100, Ceiling: decision.CeilingNone},
					},
					Prefix: 1, Waiting: 1,
					Placements: []decision.Placement{
						{Job: 1, GPUs: 2, Nodes: 1, Racks: 1, Locality: 1, PMScore: 1.02, Slowdown: 1.02, Started: true},
					},
					Preemptions: []decision.Preemption{},
				},
				{
					// An idle gap: nil order, nil placements/preemptions.
					Round: 3, Start: 1500, Rounds: 7,
				},
			},
			Dropped: 2, Truncated: true, Rounds: 10,
		},
	}
	for name, tr := range cases {
		name, tr := name, tr
		t.Run(name, func(t *testing.T) {
			res := sampleResult()
			res.Decisions = decision.NewArchivedSink(tr)
			var buf bytes.Buffer
			if err := EncodeResult(&buf, res); err != nil {
				t.Fatal(err)
			}
			first := buf.Bytes()
			got, err := DecodeResult(bytes.NewReader(first))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(decision.FromResult(got), tr) {
				t.Fatalf("trace did not round-trip exactly:\n in  %+v\n out %+v",
					tr, decision.FromResult(got))
			}
			// Re-encoding must be a fixed point here too.
			var again bytes.Buffer
			if err := EncodeResult(&again, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, again.Bytes()) {
				t.Error("codec is not a fixed point with a decision trace attached")
			}
		})
	}
}

// TestResultCodecNoDecisionsStaysNil: a result without a decision sink
// must decode with Decisions nil — absence round-trips as absence.
func TestResultCodecNoDecisionsStaysNil(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResult(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Decisions != nil {
		t.Fatalf("Decisions = %T, want nil", got.Decisions)
	}
}

// TestResultCodecRejectsUnarchivableDecisionSink: a custom decision sink
// without an extractable trace must fail encoding loudly.
func TestResultCodecRejectsUnarchivableDecisionSink(t *testing.T) {
	res := sampleResult()
	res.Decisions = opaqueDecisionSink{}
	if err := EncodeResult(&bytes.Buffer{}, res); err == nil ||
		!strings.Contains(err.Error(), "no extractable trace") {
		t.Fatalf("err = %v, want unarchivable-sink error", err)
	}
}

type opaqueDecisionSink struct{}

func (opaqueDecisionSink) ObserveDecision(sim.DecisionObservation) {}
func (opaqueDecisionSink) FinishRun(*sim.Result)                   {}
