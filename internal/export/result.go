package export

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/decision"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// Canonical result codec: the deterministic JSON round-trip of a
// *sim.Result the artifact store (internal/store) persists. The contract
// is exact reproduction, same rigor as the engine's stepping
// byte-identity suites:
//
//   - every field of Result and of every Job round-trips bit-for-bit
//     (floats use Go's shortest-round-trip encoding, which decodes back
//     to the identical float64);
//   - nil and empty slices are preserved as written (no omitempty on
//     slice fields), so reflect.DeepEqual holds across a round trip;
//   - Truncated/Unfinished are always encoded, so a truncated run can
//     never be mistaken for a complete one after a reload;
//   - a metrics payload on the result (Result.Metrics) is embedded in
//     the archive and comes back as a metrics.ArchivedSink, so
//     metrics.FromResult works identically on live and loaded results —
//     and a decision trace (Result.Decisions) likewise embeds and comes
//     back as a decision.ArchivedSink;
//   - the format field names the codec revision; DecodeResult rejects
//     any other revision loudly instead of guessing.
//
// Bumping the codec (any change to the archive schema or its semantics)
// means bumping ResultFormatVersion. The version is deliberately part of
// the store's on-disk layout, NOT of the simulation cache keys: a codec
// bump invalidates persisted artifacts without perturbing RunSpec/
// scenario keys or their golden-key tests.

// ResultFormatVersion names the result-codec revision. internal/store
// namespaces its object tree by this string, so a bump orphans (and
// eventually GCs) old artifacts instead of misreading them.
// v2 added the embedded decision trace.
const ResultFormatVersion = "v2"

// resultFormat is the full format tag embedded in every archive.
const resultFormat = "pal-result/" + ResultFormatVersion

// archivedJob flattens one sim.Job (spec + final mutable state) into the
// archive schema. Allocations are recorded as plain ints; nil means the
// job held no GPUs when the run ended (always the case for completed
// runs, not necessarily for truncated ones).
type archivedJob struct {
	ID      int     `json:"id"`
	Model   string  `json:"model"`
	Class   int     `json:"class"`
	Arrival float64 `json:"arrival"`
	Demand  int     `json:"demand"`
	Work    float64 `json:"work"`

	Remaining   float64 `json:"remaining"`
	Alloc       []int   `json:"alloc"`
	Attained    float64 `json:"attained"`
	Started     bool    `json:"started"`
	FirstRun    float64 `json:"first_run"`
	Finish      float64 `json:"finish"`
	Done        bool    `json:"done"`
	Preemptions int     `json:"preemptions"`
	Migrations  int     `json:"migrations"`
	PrevAlloc   []int   `json:"prev_alloc"`
}

// archivedUtil is one GPUs-in-use sample.
type archivedUtil struct {
	Time  float64 `json:"time"`
	InUse int     `json:"in_use"`
}

// archivedEvent is one lifecycle-log entry.
type archivedEvent struct {
	Time  float64 `json:"time"`
	JobID int     `json:"job_id"`
	Kind  int     `json:"kind"`
	GPUs  int     `json:"gpus"`
}

// resultArchive is the archive schema. Measured holds indices into Jobs
// so the decoded result's Measured slice aliases the same *Job values,
// exactly as the engine leaves it.
type resultArchive struct {
	Format string `json:"format"`

	Jobs     []archivedJob `json:"jobs"`
	Measured []int         `json:"measured"`

	Makespan              float64 `json:"makespan"`
	Utilization           float64 `json:"utilization"`
	ProductiveUtilization float64 `json:"productive_utilization"`
	Rounds                int     `json:"rounds"`

	UtilSeries []archivedUtil  `json:"util_series"`
	PlaceTimes []float64       `json:"place_times"`
	Events     []archivedEvent `json:"events"`

	Metrics   *metrics.Payload `json:"metrics"`
	Decisions *decision.Trace  `json:"decisions"`

	Truncated  bool `json:"truncated"`
	Unfinished int  `json:"unfinished"`
}

// gpusToInts converts an allocation for archiving, preserving nil.
func gpusToInts(a []cluster.GPUID) []int {
	if a == nil {
		return nil
	}
	out := make([]int, len(a))
	for i, g := range a {
		out[i] = int(g)
	}
	return out
}

// intsToGPUs is the inverse of gpusToInts.
func intsToGPUs(a []int) []cluster.GPUID {
	if a == nil {
		return nil
	}
	out := make([]cluster.GPUID, len(a))
	for i, g := range a {
		out[i] = cluster.GPUID(g)
	}
	return out
}

// EncodeResult writes res as a deterministic, versioned JSON archive.
// Encoding the same result twice produces identical bytes. A result
// carrying a metrics sink that does not expose a payload (anything
// other than a metrics.Collector or metrics.ArchivedSink) — or a
// decision sink that does not expose a trace — cannot be archived
// faithfully and is an error rather than a silent drop.
func EncodeResult(w io.Writer, res *sim.Result) error {
	if res == nil {
		return fmt.Errorf("export: nil result")
	}
	var payload *metrics.Payload
	if res.Metrics != nil {
		payload = metrics.FromResult(res)
		if payload == nil {
			return fmt.Errorf("export: result carries a metrics sink (%T) with no extractable payload", res.Metrics)
		}
	}
	var decisions *decision.Trace
	if res.Decisions != nil {
		decisions = decision.FromResult(res)
		if decisions == nil {
			return fmt.Errorf("export: result carries a decision sink (%T) with no extractable trace", res.Decisions)
		}
	}
	arch := resultArchive{
		Format:                resultFormat,
		Makespan:              res.Makespan,
		Utilization:           res.Utilization,
		ProductiveUtilization: res.ProductiveUtilization,
		Rounds:                res.Rounds,
		PlaceTimes:            res.PlaceTimes,
		Metrics:               payload,
		Decisions:             decisions,
		Truncated:             res.Truncated,
		Unfinished:            res.Unfinished,
	}
	if res.Jobs != nil {
		arch.Jobs = make([]archivedJob, len(res.Jobs))
		index := make(map[*sim.Job]int, len(res.Jobs))
		for i, j := range res.Jobs {
			index[j] = i
			arch.Jobs[i] = archivedJob{
				ID:          j.Spec.ID,
				Model:       j.Spec.Model,
				Class:       int(j.Spec.Class),
				Arrival:     j.Spec.Arrival,
				Demand:      j.Spec.Demand,
				Work:        j.Spec.Work,
				Remaining:   j.Remaining,
				Alloc:       gpusToInts(j.Alloc),
				Attained:    j.Attained,
				Started:     j.Started,
				FirstRun:    j.FirstRun,
				Finish:      j.Finish,
				Done:        j.Done,
				Preemptions: j.Preemptions,
				Migrations:  j.Migrations,
				PrevAlloc:   gpusToInts(j.PrevAlloc),
			}
		}
		if res.Measured != nil {
			arch.Measured = make([]int, len(res.Measured))
			for i, j := range res.Measured {
				idx, ok := index[j]
				if !ok {
					return fmt.Errorf("export: measured job %d is not in Jobs", j.Spec.ID)
				}
				arch.Measured[i] = idx
			}
		}
	} else if res.Measured != nil {
		return fmt.Errorf("export: result has Measured jobs but no Jobs")
	}
	if res.UtilSeries != nil {
		arch.UtilSeries = make([]archivedUtil, len(res.UtilSeries))
		for i, s := range res.UtilSeries {
			arch.UtilSeries[i] = archivedUtil{Time: s.Time, InUse: s.InUse}
		}
	}
	if res.Events != nil {
		arch.Events = make([]archivedEvent, len(res.Events))
		for i, ev := range res.Events {
			arch.Events[i] = archivedEvent{Time: ev.Time, JobID: ev.JobID, Kind: int(ev.Kind), GPUs: ev.GPUs}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(&arch); err != nil {
		return fmt.Errorf("export: encode result: %w", err)
	}
	return nil
}

// DecodeResult reads an archive written by EncodeResult back into a
// *sim.Result. Unknown fields and any format revision other than the
// current one are rejected — a store populated by a future codec fails
// loudly instead of yielding a silently lossy result.
func DecodeResult(r io.Reader) (*sim.Result, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("export: read result archive: %w", err)
	}
	// Peek at the format tag before a strict decode, so an archive from a
	// newer codec (with fields this decoder does not know) reports the
	// version mismatch, not a confusing unknown-field error.
	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("export: decode result archive: %w", err)
	}
	if probe.Format != resultFormat {
		return nil, fmt.Errorf("export: result archive format %q, want %q (codec version mismatch)", probe.Format, resultFormat)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var arch resultArchive
	if err := dec.Decode(&arch); err != nil {
		return nil, fmt.Errorf("export: decode result archive: %w", err)
	}

	res := &sim.Result{
		Makespan:              arch.Makespan,
		Utilization:           arch.Utilization,
		ProductiveUtilization: arch.ProductiveUtilization,
		Rounds:                arch.Rounds,
		PlaceTimes:            arch.PlaceTimes,
		Truncated:             arch.Truncated,
		Unfinished:            arch.Unfinished,
	}
	if arch.Jobs != nil {
		res.Jobs = make([]*sim.Job, len(arch.Jobs))
		for i, aj := range arch.Jobs {
			res.Jobs[i] = &sim.Job{
				Spec: trace.JobSpec{
					ID:      aj.ID,
					Model:   aj.Model,
					Class:   vprof.Class(aj.Class),
					Arrival: aj.Arrival,
					Demand:  aj.Demand,
					Work:    aj.Work,
				},
				Remaining:   aj.Remaining,
				Alloc:       intsToGPUs(aj.Alloc),
				Attained:    aj.Attained,
				Started:     aj.Started,
				FirstRun:    aj.FirstRun,
				Finish:      aj.Finish,
				Done:        aj.Done,
				Preemptions: aj.Preemptions,
				Migrations:  aj.Migrations,
				PrevAlloc:   intsToGPUs(aj.PrevAlloc),
			}
		}
	}
	if arch.Measured != nil {
		res.Measured = make([]*sim.Job, len(arch.Measured))
		for i, idx := range arch.Measured {
			if idx < 0 || idx >= len(res.Jobs) {
				return nil, fmt.Errorf("export: result archive: measured index %d out of range (have %d jobs)", idx, len(res.Jobs))
			}
			res.Measured[i] = res.Jobs[idx]
		}
	}
	if arch.UtilSeries != nil {
		res.UtilSeries = make([]sim.UtilSample, len(arch.UtilSeries))
		for i, s := range arch.UtilSeries {
			res.UtilSeries[i] = sim.UtilSample{Time: s.Time, InUse: s.InUse}
		}
	}
	if arch.Events != nil {
		res.Events = make([]sim.Event, len(arch.Events))
		for i, ev := range arch.Events {
			res.Events[i] = sim.Event{Time: ev.Time, JobID: ev.JobID, Kind: sim.EventKind(ev.Kind), GPUs: ev.GPUs}
		}
	}
	if arch.Metrics != nil {
		res.Metrics = metrics.NewArchivedSink(arch.Metrics)
	}
	if arch.Decisions != nil {
		res.Decisions = decision.NewArchivedSink(arch.Decisions)
	}
	return res, nil
}
