// Package export renders experiment artifacts to interchange formats:
// CSV for plotting, JSON for archival, and Markdown for EXPERIMENTS.md.
// A reproduction is only useful if its numbers can leave the terminal.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TableCSV writes a Table as CSV: header row, then data rows. Notes are
// emitted as trailing comment-style rows prefixed with "#" in the first
// column so spreadsheet imports keep them visible but separable.
func TableCSV(w io.Writer, t *experiments.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("export: header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("export: row: %w", err)
		}
	}
	for _, n := range t.Notes {
		rec := make([]string, len(t.Header))
		if len(rec) == 0 {
			rec = []string{""}
		}
		rec[0] = "# " + n
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("export: note: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the JSON shape of a Table.
type tableJSON struct {
	Name   string     `json:"name"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// TableJSON writes a Table as indented JSON.
func TableJSON(w io.Writer, t *experiments.Table) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tableJSON{
		Name:   t.Name,
		Title:  t.Title,
		Header: t.Header,
		Rows:   t.Rows,
		Notes:  t.Notes,
	})
}

// TableMarkdown writes a Table as a GitHub-flavored Markdown table with
// the title as a heading and notes as a bullet list. This is the format
// EXPERIMENTS.md records results in.
func TableMarkdown(w io.Writer, t *experiments.Table) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.Name, t.Title)
	b.WriteString("| " + strings.Join(escapeCells(t.Header), " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(escapeCells(row), " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeCells protects pipe characters inside Markdown cells.
func escapeCells(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = strings.ReplaceAll(c, "|", "\\|")
	}
	return out
}

// resultJSON is the archival shape of one simulation result. Truncation
// is part of the archival record: a run that stopped at the MaxRounds
// cap reports metrics over completed jobs only, and an archived result
// must say so.
type resultJSON struct {
	Jobs        int     `json:"jobs"`
	Measured    int     `json:"measured"`
	AvgJCT      float64 `json:"avg_jct_sec"`
	P50JCT      float64 `json:"p50_jct_sec"`
	P99JCT      float64 `json:"p99_jct_sec"`
	MeanWait    float64 `json:"mean_wait_sec"`
	Makespan    float64 `json:"makespan_sec"`
	Utilization float64 `json:"utilization"`
	Rounds      int     `json:"rounds"`
	Truncated   bool    `json:"truncated,omitempty"`
	Unfinished  int     `json:"unfinished,omitempty"`
}

// ResultJSON writes the aggregate metrics of a simulation result.
func ResultJSON(w io.Writer, res *sim.Result) error {
	jcts := res.JCTs()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resultJSON{
		Jobs:        len(res.Jobs),
		Measured:    len(res.Measured),
		AvgJCT:      stats.Mean(jcts),
		P50JCT:      stats.Percentile(jcts, 50),
		P99JCT:      stats.Percentile(jcts, 99),
		MeanWait:    stats.Mean(res.Waits()),
		Makespan:    res.Makespan,
		Utilization: res.Utilization,
		Rounds:      res.Rounds,
		Truncated:   res.Truncated,
		Unfinished:  res.Unfinished,
	})
}

// UtilizationCSV writes the GPUs-in-use series (Fig. 15's raw data).
func UtilizationCSV(w io.Writer, series []sim.UtilSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_sec", "gpus_in_use"}); err != nil {
		return err
	}
	for _, s := range series {
		if err := cw.Write([]string{
			fmt.Sprintf("%.0f", s.Time), fmt.Sprintf("%d", s.InUse),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
