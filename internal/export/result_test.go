package export

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sampleResult builds a hand-crafted result exercising every archived
// surface: done/running/never-started jobs, preserved allocations,
// measured aliasing, util series, events, truncation and a payload.
func sampleResult() *sim.Result {
	jobs := []*sim.Job{
		{
			Spec:      trace.JobSpec{ID: 0, Model: "resnet50", Class: 1, Arrival: 0, Demand: 2, Work: 600},
			Remaining: 0, Attained: 1320, Started: true, FirstRun: 0,
			Finish: 660.5, Done: true, Preemptions: 1, Migrations: 1,
			PrevAlloc: []cluster.GPUID{0, 1},
		},
		{
			// Still holding GPUs (a truncated run's survivor).
			Spec:      trace.JobSpec{ID: 1, Model: "gpt2", Class: 2, Arrival: 30, Demand: 1, Work: 1e6},
			Remaining: 9.5e5, Attained: 50000, Started: true, FirstRun: 300,
			Alloc: []cluster.GPUID{3},
		},
		{
			// Arrived, never scheduled.
			Spec: trace.JobSpec{ID: 2, Model: "a3c", Class: 0, Arrival: 60, Demand: 4, Work: 100},
			// Remaining intentionally equals Work.
			Remaining: 100,
		},
	}
	res := &sim.Result{
		Jobs:                  jobs,
		Measured:              []*sim.Job{jobs[0]},
		Makespan:              660.5,
		Utilization:           0.3341,
		ProductiveUtilization: 0.2123,
		Rounds:                5,
		UtilSeries:            []sim.UtilSample{{Time: 0, InUse: 2}, {Time: 300, InUse: 3}},
		PlaceTimes:            []float64{1.25e-5, 3e-6},
		Events: []sim.Event{
			{Time: 0, JobID: 0, Kind: sim.EventAdmit},
			{Time: 0, JobID: 0, Kind: sim.EventStart, GPUs: 2},
			{Time: 660.5, JobID: 0, Kind: sim.EventFinish, GPUs: 2},
		},
		Truncated:  true,
		Unfinished: 2,
	}
	return res
}

// TestResultCodecRoundTrip: decode(encode(res)) must deep-equal res —
// including nil-versus-empty slice distinctions and the Measured slice
// aliasing Jobs — and re-encoding must reproduce identical bytes.
func TestResultCodecRoundTrip(t *testing.T) {
	res := sampleResult()
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Fatalf("round trip diverged:\n in  %+v\nout %+v", res, got)
	}
	// Measured must alias the decoded Jobs, not copy them.
	if got.Measured[0] != got.Jobs[0] {
		t.Error("Measured[0] does not alias Jobs[0] after decode")
	}
	var again bytes.Buffer
	if err := EncodeResult(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("codec is not a fixed point: re-encoding changed bytes")
	}
}

// TestResultCodecPreservesNilVersusEmpty: a minimal result with every
// optional slice nil must come back with them nil (reflect.DeepEqual
// distinguishes nil from empty, and so do the byte-identity suites).
func TestResultCodecPreservesNilVersusEmpty(t *testing.T) {
	res := &sim.Result{
		Jobs:   []*sim.Job{{Spec: trace.JobSpec{ID: 0, Demand: 1, Work: 1}, Done: true, Started: true, Finish: 1}},
		Rounds: 1,
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Measured != nil || got.UtilSeries != nil || got.PlaceTimes != nil || got.Events != nil {
		t.Errorf("nil slices became non-nil: %+v", got)
	}
	if got.Jobs[0].Alloc != nil || got.Jobs[0].PrevAlloc != nil {
		t.Error("nil allocations became non-nil")
	}
	if !reflect.DeepEqual(res, got) {
		t.Fatal("minimal result did not round-trip")
	}
}

// TestResultCodecMetricsPayload: an attached collector payload is
// embedded and resurfaces through metrics.FromResult on the decoded
// result.
func TestResultCodecMetricsPayload(t *testing.T) {
	res := sampleResult()
	payload := &metrics.Payload{
		Name: "codec-test", Policy: "pal", Sched: "fifo",
		IntervalRounds: 1, RoundSec: 300, TimeBase: 0,
		Series: []metrics.SeriesData{{
			Name: metrics.SeriesGPUsInUse, Rounds: []int64{0, 1}, Values: []float64{2, 3},
		}},
		Truncated: true, Unfinished: 2,
	}
	res.Metrics = metrics.NewArchivedSink(payload)
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(metrics.FromResult(got), payload) {
		t.Fatalf("payload did not round-trip: %+v", metrics.FromResult(got))
	}
}

// TestResultCodecRejectsUnarchivableSink: a custom sink without a
// payload must fail encoding loudly, never drop telemetry silently.
func TestResultCodecRejectsUnarchivableSink(t *testing.T) {
	res := sampleResult()
	res.Metrics = opaqueSink{}
	if err := EncodeResult(&bytes.Buffer{}, res); err == nil ||
		!strings.Contains(err.Error(), "no extractable payload") {
		t.Fatalf("err = %v, want unarchivable-sink error", err)
	}
}

type opaqueSink struct{}

func (opaqueSink) ObserveRounds(sim.RoundObservation) {}
func (opaqueSink) FinishRun(*sim.Result)              {}

// TestResultCodecRejectsWrongVersion: an archive from any other codec
// revision must be refused with a version message, not misread.
func TestResultCodecRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResult(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(buf.Bytes(),
		[]byte(`"format": "pal-result/`+ResultFormatVersion+`"`),
		[]byte(`"format": "pal-result/v999"`), 1)
	if bytes.Equal(tampered, buf.Bytes()) {
		t.Fatal("tampering failed to find the format field")
	}
	if _, err := DecodeResult(bytes.NewReader(tampered)); err == nil ||
		!strings.Contains(err.Error(), "codec version mismatch") {
		t.Fatalf("err = %v, want codec version mismatch", err)
	}
}

// TestResultCodecRejectsUnknownFields: extra fields (a future codec
// that forgot to bump, or a corrupted archive) fail loudly.
func TestResultCodecRejectsUnknownFields(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResult(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(buf.Bytes(),
		[]byte(`"rounds":`), []byte(`"bogus_field": 1, "rounds":`), 1)
	if _, err := DecodeResult(bytes.NewReader(tampered)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestResultCodecRejectsBadMeasuredIndex: a measured index outside Jobs
// is corruption, not a job.
func TestResultCodecRejectsBadMeasuredIndex(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResult(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(buf.Bytes(),
		[]byte(`"measured": [
  0
 ]`), []byte(`"measured": [
  7
 ]`), 1)
	if bytes.Equal(tampered, buf.Bytes()) {
		t.Fatal("tampering failed to find the measured field")
	}
	if _, err := DecodeResult(bytes.NewReader(tampered)); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want out-of-range error", err)
	}
}
