package export

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/decision"
)

// DecisionsExt is the filename suffix of archived decision traces;
// palexplain and palreport discover traces in a directory by it.
const DecisionsExt = ".decisions.json"

// WriteDecisionsFile archives one run's decision trace into dir as
// <base>.decisions.json (the format decision.Load reads back). It
// creates dir as needed and returns the trace path. This is the writer
// behind the decision half of `palsim -metrics` / `palsweep -metrics`
// archiving.
func WriteDecisionsFile(dir, base string, t *decision.Trace) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("export: %w", err)
	}
	path := filepath.Join(dir, base+DecisionsExt)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("export: %w", err)
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return "", fmt.Errorf("export: %s: %w", path, err)
	}
	return path, f.Close()
}
