package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/metrics"
)

// SeriesCSV writes one metric series as CSV (round index, derived
// wall-clock time, value). Dropped ring-buffer samples are noted in a
// trailing comment row so a tail window is distinguishable from a
// complete series.
func SeriesCSV(w io.Writer, p *metrics.Payload, name string) error {
	s, ok := p.SeriesByName(name)
	if !ok {
		return fmt.Errorf("export: payload %q has no series %q", p.Name, name)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "time_sec", name}); err != nil {
		return err
	}
	times := s.Times(p)
	for i, r := range s.Rounds {
		if err := cw.Write([]string{
			strconv.FormatInt(r, 10),
			fmt.Sprintf("%.0f", times[i]),
			strconv.FormatFloat(s.Values[i], 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	if s.Dropped > 0 {
		if err := cw.Write([]string{fmt.Sprintf("# %d older samples dropped by the ring buffer", s.Dropped), "", ""}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PayloadJSON writes the full metric payload as indented JSON (the
// format metrics.Load reads back and palreport aggregates).
func PayloadJSON(w io.Writer, p *metrics.Payload) error {
	return p.Save(w)
}

// MetricsExt is the filename suffix of archived payloads; palreport
// discovers payloads in a directory by it.
const MetricsExt = ".metrics.json"

// WriteMetricsDir archives one run's telemetry into dir: the full
// payload as <base>.metrics.json plus one <base>.<series>.csv per
// recorded series. It creates dir as needed and returns the payload
// path. This is the writer behind `palsim -metrics` and
// `palsweep -metrics`.
func WriteMetricsDir(dir, base string, p *metrics.Payload) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("export: %w", err)
	}
	write := func(path string, render func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("export: %w", err)
		}
		if err := render(f); err != nil {
			f.Close()
			return fmt.Errorf("export: %s: %w", path, err)
		}
		return f.Close()
	}
	payloadPath := filepath.Join(dir, base+MetricsExt)
	if err := write(payloadPath, func(w io.Writer) error { return PayloadJSON(w, p) }); err != nil {
		return "", err
	}
	for _, s := range p.Series {
		name := s.Name
		path := filepath.Join(dir, base+"."+name+".csv")
		if err := write(path, func(w io.Writer) error { return SeriesCSV(w, p, name) }); err != nil {
			return "", err
		}
	}
	return payloadPath, nil
}
