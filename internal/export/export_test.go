package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func sampleTable() *experiments.Table {
	t := &experiments.Table{
		Name:   "t1",
		Title:  "sample",
		Header: []string{"policy", "jct"},
	}
	t.AddRow("PAL", "1.23")
	t.AddRow("Tire|sias", "2.34") // pipe needs Markdown escaping
	t.Note("a note")
	return t
}

func TestTableCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := TableCSV(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 2 rows + 1 note
		t.Fatalf("records = %d, want 4", len(records))
	}
	if records[0][0] != "policy" || records[1][0] != "PAL" {
		t.Errorf("unexpected records %v", records[:2])
	}
	if !strings.HasPrefix(records[3][0], "# ") {
		t.Errorf("note row = %v", records[3])
	}
}

func TestTableJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := TableJSON(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Name string     `json:"name"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "t1" || len(got.Rows) != 2 {
		t.Errorf("decoded %+v", got)
	}
}

func TestTableMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := TableMarkdown(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"### t1", "| policy | jct |", "Tire\\|sias", "- a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("markdown missing %q:\n%s", want, s)
		}
	}
}

func runSample(t *testing.T) *sim.Result {
	t.Helper()
	res, err := experiments.Run(experiments.RunSpec{
		Trace:      experiments.SiaTrace(1),
		Topo:       experiments.SiaTopology(),
		Sched:      experiments.FIFOSched,
		Policy:     experiments.PALPolicy,
		Profile:    experiments.LonghornProfile(64),
		Lacross:    1.5,
		Seed:       1,
		RecordUtil: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResultJSON(t *testing.T) {
	res := runSample(t)
	var buf bytes.Buffer
	if err := ResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var got map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["jobs"].(float64) != 160 {
		t.Errorf("jobs = %v", got["jobs"])
	}
	if got["avg_jct_sec"].(float64) <= 0 {
		t.Error("avg JCT not positive")
	}
}

func TestUtilizationCSV(t *testing.T) {
	res := runSample(t)
	var buf bytes.Buffer
	if err := UtilizationCSV(&buf, res.UtilSeries); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(res.UtilSeries)+1 {
		t.Errorf("records = %d, want %d", len(records), len(res.UtilSeries)+1)
	}
}
