package export

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Canonical snapshot codec: the deterministic JSON round-trip of a
// *sim.Snapshot the artifact store persists beside results. Same
// contract as the result codec: encoding the same snapshot twice
// produces identical bytes, every field round-trips exactly (floats use
// Go's shortest-round-trip encoding), nil and empty slices are
// preserved as written, and a format tag names the codec revision so a
// snapshot written by a different codec fails loudly.
//
// Like ResultFormatVersion, SnapshotFormatVersion is part of the
// store's on-disk layout (the snapshot sub-tree's path component) and
// NOT part of any simulation cache key: bumping it orphans persisted
// snapshots without perturbing scenario/runspec keys or their golden
// tests.

// SnapshotFormatVersion names the snapshot-codec revision.
const SnapshotFormatVersion = "v1"

// snapshotFormat is the full format tag embedded in every archive.
const snapshotFormat = "pal-snapshot/" + SnapshotFormatVersion

// snapshotArchive wraps a snapshot with the codec's format tag. The
// snapshot itself is already plain, JSON-tagged data (sim.Snapshot is
// designed as an archival type), so the codec adds only versioning.
type snapshotArchive struct {
	Format   string        `json:"format"`
	Snapshot *sim.Snapshot `json:"snapshot"`
}

// EncodeSnapshot writes snap as a deterministic, versioned JSON archive.
func EncodeSnapshot(w io.Writer, snap *sim.Snapshot) error {
	if snap == nil {
		return fmt.Errorf("export: nil snapshot")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(&snapshotArchive{Format: snapshotFormat, Snapshot: snap}); err != nil {
		return fmt.Errorf("export: encode snapshot: %w", err)
	}
	return nil
}

// DecodeSnapshot reads an archive written by EncodeSnapshot. Unknown
// fields and any format revision other than the current one are
// rejected.
func DecodeSnapshot(r io.Reader) (*sim.Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("export: read snapshot archive: %w", err)
	}
	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("export: decode snapshot archive: %w", err)
	}
	if probe.Format != snapshotFormat {
		return nil, fmt.Errorf("export: snapshot archive format %q, want %q (codec version mismatch)", probe.Format, snapshotFormat)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var arch snapshotArchive
	if err := dec.Decode(&arch); err != nil {
		return nil, fmt.Errorf("export: decode snapshot archive: %w", err)
	}
	if arch.Snapshot == nil {
		return nil, fmt.Errorf("export: snapshot archive has no snapshot body")
	}
	return arch.Snapshot, nil
}
