// Package sched implements the job-selection (scheduling) policies the
// paper attaches its placement policies to (§IV-A2): FIFO, Tiresias-style
// Least Attained Service with two-level priority queueing, and preemptive
// Shortest Remaining Time First. Scheduling is orthogonal to placement in
// the Blox architecture: these policies decide *which* jobs run each
// round; placement decides *where*.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// FIFO prioritizes jobs in order of arrival. The zero value is ready to
// use.
type FIFO struct{}

// Name implements sim.Scheduler.
func (FIFO) Name() string { return "fifo" }

// Order implements sim.Scheduler: ascending arrival, ties by job ID.
func (FIFO) Order(jobs []*sim.Job, _ float64) []*sim.Job {
	out := append([]*sim.Job(nil), jobs...)
	sort.SliceStable(out, func(a, b int) bool {
		ja, jb := out[a], out[b]
		if ja.Spec.Arrival != jb.Spec.Arrival {
			return ja.Spec.Arrival < jb.Spec.Arrival
		}
		return ja.Spec.ID < jb.Spec.ID
	})
	return out
}

// LAS implements Tiresias's discretized Least-Attained-Service scheduler
// (Gu et al., NSDI'19) with two-level priority queueing: jobs whose
// attained service (GPU-seconds) is below Threshold sit in the high-
// priority queue, the rest are demoted to the low-priority queue. Within
// a queue jobs are ordered by attained service then arrival, so fresh
// arrivals (zero attained service) preempt long-running jobs — the wait-
// time pattern §V-C1 analyses.
type LAS struct {
	// Threshold is the attained-service boundary between the two queues,
	// in GPU-seconds. Zero selects DefaultLASThreshold.
	Threshold float64
}

// DefaultLASThreshold is the queue-demotion boundary used when LAS's
// threshold is unset: 8 GPU-hours of attained service, a mid-range value
// relative to the Synergy duration distribution.
const DefaultLASThreshold = 8 * 3600

// Name implements sim.Scheduler.
func (LAS) Name() string { return "las" }

// Order implements sim.Scheduler.
func (l LAS) Order(jobs []*sim.Job, _ float64) []*sim.Job {
	threshold := l.Threshold
	if threshold <= 0 {
		threshold = DefaultLASThreshold
	}
	out := append([]*sim.Job(nil), jobs...)
	queueOf := func(j *sim.Job) int {
		if j.Attained < threshold {
			return 0
		}
		return 1
	}
	sort.SliceStable(out, func(a, b int) bool {
		ja, jb := out[a], out[b]
		qa, qb := queueOf(ja), queueOf(jb)
		if qa != qb {
			return qa < qb
		}
		if ja.Attained != jb.Attained {
			return ja.Attained < jb.Attained
		}
		if ja.Spec.Arrival != jb.Spec.Arrival {
			return ja.Spec.Arrival < jb.Spec.Arrival
		}
		return ja.Spec.ID < jb.Spec.ID
	})
	return out
}

// SRTF performs preemptive shortest-remaining-time-first scheduling: jobs
// are ordered by remaining ideal work (the simulator's ground truth,
// matching the paper's assumption that SRTF knows job lengths).
type SRTF struct{}

// Name implements sim.Scheduler.
func (SRTF) Name() string { return "srtf" }

// Order implements sim.Scheduler.
func (SRTF) Order(jobs []*sim.Job, _ float64) []*sim.Job {
	out := append([]*sim.Job(nil), jobs...)
	sort.SliceStable(out, func(a, b int) bool {
		ja, jb := out[a], out[b]
		if ja.Remaining != jb.Remaining {
			return ja.Remaining < jb.Remaining
		}
		if ja.Spec.Arrival != jb.Spec.Arrival {
			return ja.Spec.Arrival < jb.Spec.Arrival
		}
		return ja.Spec.ID < jb.Spec.ID
	})
	return out
}

// Builder constructs a scheduler from named numeric parameters (e.g.
// {"threshold_sec": 14400} for LAS). Builders must reject parameters
// they do not understand, so a typo in a scenario spec surfaces as an
// error instead of a silently-default run.
type Builder func(params map[string]float64) (sim.Scheduler, error)

// registry maps scheduler names to builders. The three paper policies
// register below; extensions (examples, future policies) add their own
// with Register and become addressable from scenario specs and CLI
// flags with no further wiring.
var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
)

// Register adds a scheduler builder under the given name. It panics on
// a duplicate name — registration happens in package init, and a
// collision is a programming error worth failing loudly on.
func Register(name string, build Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate registration of %q", name))
	}
	registry[name] = build
}

// Build constructs the named scheduler. nil params means defaults.
func Build(name string, params map[string]float64) (sim.Scheduler, error) {
	registryMu.RLock()
	build, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	return build(params)
}

// Names returns the registered scheduler names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// noParams rejects any parameters, for schedulers that take none.
func noParams(name string, params map[string]float64) error {
	for k := range params {
		return fmt.Errorf("sched: %s takes no parameters, got %q", name, k)
	}
	return nil
}

func init() {
	Register("fifo", func(params map[string]float64) (sim.Scheduler, error) {
		if err := noParams("fifo", params); err != nil {
			return nil, err
		}
		return FIFO{}, nil
	})
	Register("las", func(params map[string]float64) (sim.Scheduler, error) {
		l := LAS{}
		for k, v := range params {
			switch k {
			case "threshold_sec":
				if v <= 0 {
					return nil, fmt.Errorf("sched: las threshold_sec=%g, want > 0", v)
				}
				l.Threshold = v
			default:
				return nil, fmt.Errorf("sched: las does not understand parameter %q", k)
			}
		}
		return l, nil
	})
	Register("srtf", func(params map[string]float64) (sim.Scheduler, error) {
		if err := noParams("srtf", params); err != nil {
			return nil, err
		}
		return SRTF{}, nil
	})
}

// ByName returns the scheduler with the given name at default
// parameters, or nil if unknown. Thin wrapper over Build kept for
// call sites that have no parameters to pass.
func ByName(name string) sim.Scheduler {
	s, err := Build(name, nil)
	if err != nil {
		return nil
	}
	return s
}
