// Package sched implements the job-selection (scheduling) policies the
// paper attaches its placement policies to (§IV-A2): FIFO, Tiresias-style
// Least Attained Service with two-level priority queueing, and preemptive
// Shortest Remaining Time First. Scheduling is orthogonal to placement in
// the Blox architecture: these policies decide *which* jobs run each
// round; placement decides *where*.
//
// All three policies order by strict total orders (unique job IDs break
// every tie), so they expose sim.TotalOrderScheduler for the engine's
// incremental ordering, and sim.PartitionStableScheduler so dense traces
// can bulk-advance through rounds whose running/waiting split provably
// cannot change.
package sched

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/sim"
)

// FIFO prioritizes jobs in order of arrival. The zero value is ready to
// use.
type FIFO struct{}

// Name implements sim.Scheduler.
func (FIFO) Name() string { return "fifo" }

// Less implements sim.TotalOrderScheduler: ascending arrival, ties by
// job ID (a strict total order — IDs are unique).
func (FIFO) Less(a, b *sim.Job, _ float64) bool {
	if a.Spec.Arrival != b.Spec.Arrival {
		return a.Spec.Arrival < b.Spec.Arrival
	}
	return a.Spec.ID < b.Spec.ID
}

// Order implements sim.Scheduler as the Less-induced sequence.
func (f FIFO) Order(jobs []*sim.Job, now float64) []*sim.Job {
	out := append([]*sim.Job(nil), jobs...)
	slices.SortStableFunc(out, func(a, b *sim.Job) int { return lessCmp(f, a, b, now) })
	return out
}

// AttainedCeilings implements sim.PartitionStableScheduler: FIFO keys
// (arrival, ID) are frozen for the lifetime of a job, so with a fixed
// active set the ordering — and the running/waiting partition — can
// never change, no matter how much service running jobs accumulate.
func (FIFO) AttainedCeilings(running, _ []*sim.Job, ceilings []float64) {
	for i := range running {
		ceilings[i] = math.Inf(1)
	}
}

// LAS implements Tiresias's discretized Least-Attained-Service scheduler
// (Gu et al., NSDI'19) with two-level priority queueing: jobs whose
// attained service (GPU-seconds) is below Threshold sit in the high-
// priority queue, the rest are demoted to the low-priority queue. Within
// a queue jobs are ordered by attained service then arrival, so fresh
// arrivals (zero attained service) preempt long-running jobs — the wait-
// time pattern §V-C1 analyses.
type LAS struct {
	// Threshold is the attained-service boundary between the two queues,
	// in GPU-seconds. Zero selects DefaultLASThreshold.
	Threshold float64
}

// DefaultLASThreshold is the queue-demotion boundary used when LAS's
// threshold is unset: 8 GPU-hours of attained service, a mid-range value
// relative to the Synergy duration distribution.
const DefaultLASThreshold = 8 * 3600

// Name implements sim.Scheduler.
func (LAS) Name() string { return "las" }

// threshold returns the effective queue-demotion boundary.
func (l LAS) threshold() float64 {
	if l.Threshold <= 0 {
		return DefaultLASThreshold
	}
	return l.Threshold
}

// queueOf returns the job's two-level queue: 0 below the threshold, 1
// after demotion.
func (l LAS) queueOf(j *sim.Job) int {
	if j.Attained < l.threshold() {
		return 0
	}
	return 1
}

// Less implements sim.TotalOrderScheduler: queue level, then attained
// service, then arrival, then job ID (a strict total order).
func (l LAS) Less(a, b *sim.Job, _ float64) bool {
	qa, qb := l.queueOf(a), l.queueOf(b)
	if qa != qb {
		return qa < qb
	}
	if a.Attained != b.Attained {
		return a.Attained < b.Attained
	}
	if a.Spec.Arrival != b.Spec.Arrival {
		return a.Spec.Arrival < b.Spec.Arrival
	}
	return a.Spec.ID < b.Spec.ID
}

// Order implements sim.Scheduler as the Less-induced sequence.
func (l LAS) Order(jobs []*sim.Job, now float64) []*sim.Job {
	out := append([]*sim.Job(nil), jobs...)
	slices.SortStableFunc(out, func(a, b *sim.Job) int { return lessCmp(l, a, b, now) })
	return out
}

// AttainedCeilings implements sim.PartitionStableScheduler. LAS keys
// *do* evolve while a job runs — attained service grows, and crossing
// the two-level threshold demotes the job — so a running job stays
// provably ahead of every waiting job only until it (a) reaches the
// least attained service among waiting jobs in its own queue (a frozen
// quantity: waiting jobs accrue nothing), or (b) crosses the demotion
// threshold, which reorders it against every waiter at once. The
// ceiling is the nearer of the two; the engine ends a bulk span before
// executing any round at which a running job has reached it. Both
// bounds are conservative at ties (equality can still order the runner
// first via the arrival/ID tiebreak), which costs span length, never
// correctness.
func (l LAS) AttainedCeilings(running, waiting []*sim.Job, ceilings []float64) {
	minWait := [2]float64{math.Inf(1), math.Inf(1)}
	for _, w := range waiting {
		if q := l.queueOf(w); w.Attained < minWait[q] {
			minWait[q] = w.Attained
		}
	}
	for i, r := range running {
		q := l.queueOf(r)
		ceil := minWait[q]
		if q == 0 && l.threshold() < ceil {
			ceil = l.threshold()
		}
		if q == 1 && minWait[0] < math.Inf(1) {
			// The job was still in the high-priority queue when this
			// round's order was computed, but its advance carried it over
			// the threshold (a demoted runner never coexists with a
			// high-priority waiter at sort time: the waiter would order
			// first and the prefix cut would have preempted the runner).
			// The very next sort will see the demotion and may reshuffle
			// the partition, so the span must not skip any round.
			ceil = math.Inf(-1)
		}
		ceilings[i] = ceil
	}
}

// SRTF performs preemptive shortest-remaining-time-first scheduling: jobs
// are ordered by remaining ideal work (the simulator's ground truth,
// matching the paper's assumption that SRTF knows job lengths).
type SRTF struct{}

// Name implements sim.Scheduler.
func (SRTF) Name() string { return "srtf" }

// Less implements sim.TotalOrderScheduler: remaining work, then
// arrival, then job ID (a strict total order).
func (SRTF) Less(a, b *sim.Job, _ float64) bool {
	if a.Remaining != b.Remaining {
		return a.Remaining < b.Remaining
	}
	if a.Spec.Arrival != b.Spec.Arrival {
		return a.Spec.Arrival < b.Spec.Arrival
	}
	return a.Spec.ID < b.Spec.ID
}

// Order implements sim.Scheduler as the Less-induced sequence.
func (s SRTF) Order(jobs []*sim.Job, now float64) []*sim.Job {
	out := append([]*sim.Job(nil), jobs...)
	slices.SortStableFunc(out, func(a, b *sim.Job) int { return lessCmp(s, a, b, now) })
	return out
}

// AttainedCeilings implements sim.PartitionStableScheduler. SRTF keys
// move monotonically in the safe direction: a running job's remaining
// work only decreases, so it can only migrate *earlier* in the order,
// while waiting jobs are frozen. A running job therefore never falls
// behind a waiting job it was ahead of, and the partition holds for as
// long as nothing arrives or finishes — the ceilings are unbounded.
func (SRTF) AttainedCeilings(running, _ []*sim.Job, ceilings []float64) {
	for i := range running {
		ceilings[i] = math.Inf(1)
	}
}

// lessCmp adapts a strict-total-order Less to the three-way comparison
// the generic sorts want. sort.SliceStable's reflection-based swapper
// dominated the dense-path allocation profile; the generic sorts do the
// same comparisons with zero per-call allocation.
func lessCmp(ts sim.TotalOrderScheduler, a, b *sim.Job, now float64) int {
	if ts.Less(a, b, now) {
		return -1
	}
	if ts.Less(b, a, now) {
		return 1
	}
	return 0
}

// Builder constructs a scheduler from named numeric parameters (e.g.
// {"threshold_sec": 14400} for LAS). Builders must reject parameters
// they do not understand, so a typo in a scenario spec surfaces as an
// error instead of a silently-default run.
type Builder func(params map[string]float64) (sim.Scheduler, error)

// registry maps scheduler names to builders. The three paper policies
// register below; extensions (examples, future policies) add their own
// with Register and become addressable from scenario specs and CLI
// flags with no further wiring.
var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
)

// Register adds a scheduler builder under the given name. It panics on
// a duplicate name — registration happens in package init, and a
// collision is a programming error worth failing loudly on.
func Register(name string, build Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate registration of %q", name))
	}
	registry[name] = build
}

// Build constructs the named scheduler. nil params means defaults.
func Build(name string, params map[string]float64) (sim.Scheduler, error) {
	registryMu.RLock()
	build, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	return build(params)
}

// Names returns the registered scheduler names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// noParams rejects any parameters, for schedulers that take none.
func noParams(name string, params map[string]float64) error {
	for k := range params {
		return fmt.Errorf("sched: %s takes no parameters, got %q", name, k)
	}
	return nil
}

func init() {
	Register("fifo", func(params map[string]float64) (sim.Scheduler, error) {
		if err := noParams("fifo", params); err != nil {
			return nil, err
		}
		return FIFO{}, nil
	})
	Register("las", func(params map[string]float64) (sim.Scheduler, error) {
		l := LAS{}
		for k, v := range params {
			switch k {
			case "threshold_sec":
				if v <= 0 {
					return nil, fmt.Errorf("sched: las threshold_sec=%g, want > 0", v)
				}
				l.Threshold = v
			default:
				return nil, fmt.Errorf("sched: las does not understand parameter %q", k)
			}
		}
		return l, nil
	})
	Register("srtf", func(params map[string]float64) (sim.Scheduler, error) {
		if err := noParams("srtf", params); err != nil {
			return nil, err
		}
		return SRTF{}, nil
	})
}

// ByName returns the scheduler with the given name at default
// parameters, or nil if unknown. Thin wrapper over Build kept for
// call sites that have no parameters to pass.
func ByName(name string) sim.Scheduler {
	s, err := Build(name, nil)
	if err != nil {
		return nil
	}
	return s
}

// Compile-time checks: the three paper schedulers expose both engine
// capability interfaces.
var (
	_ sim.TotalOrderScheduler      = FIFO{}
	_ sim.TotalOrderScheduler      = LAS{}
	_ sim.TotalOrderScheduler      = SRTF{}
	_ sim.PartitionStableScheduler = FIFO{}
	_ sim.PartitionStableScheduler = LAS{}
	_ sim.PartitionStableScheduler = SRTF{}
)
