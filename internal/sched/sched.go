// Package sched implements the job-selection (scheduling) policies the
// paper attaches its placement policies to (§IV-A2): FIFO, Tiresias-style
// Least Attained Service with two-level priority queueing, and preemptive
// Shortest Remaining Time First. Scheduling is orthogonal to placement in
// the Blox architecture: these policies decide *which* jobs run each
// round; placement decides *where*.
package sched

import (
	"sort"

	"repro/internal/sim"
)

// FIFO prioritizes jobs in order of arrival. The zero value is ready to
// use.
type FIFO struct{}

// Name implements sim.Scheduler.
func (FIFO) Name() string { return "fifo" }

// Order implements sim.Scheduler: ascending arrival, ties by job ID.
func (FIFO) Order(jobs []*sim.Job, _ float64) []*sim.Job {
	out := append([]*sim.Job(nil), jobs...)
	sort.SliceStable(out, func(a, b int) bool {
		ja, jb := out[a], out[b]
		if ja.Spec.Arrival != jb.Spec.Arrival {
			return ja.Spec.Arrival < jb.Spec.Arrival
		}
		return ja.Spec.ID < jb.Spec.ID
	})
	return out
}

// LAS implements Tiresias's discretized Least-Attained-Service scheduler
// (Gu et al., NSDI'19) with two-level priority queueing: jobs whose
// attained service (GPU-seconds) is below Threshold sit in the high-
// priority queue, the rest are demoted to the low-priority queue. Within
// a queue jobs are ordered by attained service then arrival, so fresh
// arrivals (zero attained service) preempt long-running jobs — the wait-
// time pattern §V-C1 analyses.
type LAS struct {
	// Threshold is the attained-service boundary between the two queues,
	// in GPU-seconds. Zero selects DefaultLASThreshold.
	Threshold float64
}

// DefaultLASThreshold is the queue-demotion boundary used when LAS's
// threshold is unset: 8 GPU-hours of attained service, a mid-range value
// relative to the Synergy duration distribution.
const DefaultLASThreshold = 8 * 3600

// Name implements sim.Scheduler.
func (LAS) Name() string { return "las" }

// Order implements sim.Scheduler.
func (l LAS) Order(jobs []*sim.Job, _ float64) []*sim.Job {
	threshold := l.Threshold
	if threshold <= 0 {
		threshold = DefaultLASThreshold
	}
	out := append([]*sim.Job(nil), jobs...)
	queueOf := func(j *sim.Job) int {
		if j.Attained < threshold {
			return 0
		}
		return 1
	}
	sort.SliceStable(out, func(a, b int) bool {
		ja, jb := out[a], out[b]
		qa, qb := queueOf(ja), queueOf(jb)
		if qa != qb {
			return qa < qb
		}
		if ja.Attained != jb.Attained {
			return ja.Attained < jb.Attained
		}
		if ja.Spec.Arrival != jb.Spec.Arrival {
			return ja.Spec.Arrival < jb.Spec.Arrival
		}
		return ja.Spec.ID < jb.Spec.ID
	})
	return out
}

// SRTF performs preemptive shortest-remaining-time-first scheduling: jobs
// are ordered by remaining ideal work (the simulator's ground truth,
// matching the paper's assumption that SRTF knows job lengths).
type SRTF struct{}

// Name implements sim.Scheduler.
func (SRTF) Name() string { return "srtf" }

// Order implements sim.Scheduler.
func (SRTF) Order(jobs []*sim.Job, _ float64) []*sim.Job {
	out := append([]*sim.Job(nil), jobs...)
	sort.SliceStable(out, func(a, b int) bool {
		ja, jb := out[a], out[b]
		if ja.Remaining != jb.Remaining {
			return ja.Remaining < jb.Remaining
		}
		if ja.Spec.Arrival != jb.Spec.Arrival {
			return ja.Spec.Arrival < jb.Spec.Arrival
		}
		return ja.Spec.ID < jb.Spec.ID
	})
	return out
}

// ByName returns the scheduler with the given name ("fifo", "las",
// "srtf"), or nil if unknown. Used by the CLIs.
func ByName(name string) sim.Scheduler {
	switch name {
	case "fifo":
		return FIFO{}
	case "las":
		return LAS{}
	case "srtf":
		return SRTF{}
	}
	return nil
}
