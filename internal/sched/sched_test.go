package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

func mkJob(id int, arrival float64) *sim.Job {
	return &sim.Job{Spec: trace.JobSpec{ID: id, Arrival: arrival, Demand: 1, Work: 100},
		Remaining: 100}
}

func ids(jobs []*sim.Job) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.Spec.ID
	}
	return out
}

func TestFIFOOrder(t *testing.T) {
	jobs := []*sim.Job{mkJob(2, 30), mkJob(0, 10), mkJob(1, 20)}
	got := ids(FIFO{}.Order(jobs, 100))
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO order = %v, want %v", got, want)
		}
	}
}

func TestFIFOTieBreakByID(t *testing.T) {
	jobs := []*sim.Job{mkJob(5, 10), mkJob(3, 10)}
	got := ids(FIFO{}.Order(jobs, 100))
	if got[0] != 3 || got[1] != 5 {
		t.Fatalf("tie order = %v", got)
	}
}

func TestFIFODoesNotMutateInput(t *testing.T) {
	jobs := []*sim.Job{mkJob(2, 30), mkJob(0, 10)}
	FIFO{}.Order(jobs, 0)
	if jobs[0].Spec.ID != 2 {
		t.Error("Order mutated its input slice")
	}
}

func TestLASTwoLevelQueues(t *testing.T) {
	l := LAS{Threshold: 1000}
	fresh := mkJob(0, 50)   // attained 0 -> high queue
	veteran := mkJob(1, 10) // attained above threshold -> low queue
	veteran.Attained = 5000
	mid := mkJob(2, 5) // attained below threshold -> high queue
	mid.Attained = 500
	got := ids(l.Order([]*sim.Job{veteran, fresh, mid}, 100))
	// High queue ordered by attained: fresh (0) then mid (500); then low
	// queue: veteran.
	want := []int{0, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LAS order = %v, want %v", got, want)
		}
	}
}

func TestLASFreshArrivalsPreempt(t *testing.T) {
	// The §V-C1 pattern: new jobs (zero attained service) beat running
	// jobs regardless of arrival order.
	l := LAS{}
	running := mkJob(0, 0)
	running.Attained = 3600
	newcomer := mkJob(1, 9999)
	got := ids(l.Order([]*sim.Job{running, newcomer}, 10000))
	if got[0] != 1 {
		t.Fatalf("newcomer should lead: %v", got)
	}
}

func TestLASDefaultThreshold(t *testing.T) {
	l := LAS{}
	below := mkJob(0, 100)
	below.Attained = DefaultLASThreshold - 1
	above := mkJob(1, 0)
	above.Attained = DefaultLASThreshold + 1
	got := ids(l.Order([]*sim.Job{above, below}, 200))
	if got[0] != 0 {
		t.Fatalf("below-threshold job should lead: %v", got)
	}
}

func TestSRTFOrder(t *testing.T) {
	long := mkJob(0, 0)
	long.Remaining = 5000
	short := mkJob(1, 50)
	short.Remaining = 10
	med := mkJob(2, 20)
	med.Remaining = 100
	got := ids(SRTF{}.Order([]*sim.Job{long, short, med}, 100))
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SRTF order = %v, want %v", got, want)
		}
	}
}

func TestSRTFTieBreak(t *testing.T) {
	a := mkJob(7, 5)
	b := mkJob(3, 5)
	a.Remaining, b.Remaining = 100, 100
	got := ids(SRTF{}.Order([]*sim.Job{a, b}, 10))
	if got[0] != 3 {
		t.Fatalf("tie order = %v", got)
	}
}

// TestOrderIsPermutationProperty: every scheduler must return a
// permutation of its input.
func TestOrderIsPermutationProperty(t *testing.T) {
	scheds := []sim.Scheduler{FIFO{}, LAS{}, SRTF{}}
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(40)
		jobs := make([]*sim.Job, n)
		for i := range jobs {
			jobs[i] = mkJob(i, r.Float64()*1000)
			jobs[i].Attained = r.Float64() * 2 * DefaultLASThreshold
			jobs[i].Remaining = r.Float64() * 5000
		}
		for _, s := range scheds {
			got := s.Order(jobs, 1000)
			if len(got) != n {
				return false
			}
			seen := make([]bool, n)
			for _, j := range got {
				if seen[j.Spec.ID] {
					return false
				}
				seen[j.Spec.ID] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"fifo", "las", "srtf"} {
		s := ByName(name)
		if s == nil || s.Name() != name {
			t.Errorf("ByName(%q) = %v", name, s)
		}
	}
	if ByName("nope") != nil {
		t.Error("unknown name should be nil")
	}
}

func BenchmarkLASOrder1000(b *testing.B) {
	r := rng.New(1)
	jobs := make([]*sim.Job, 1000)
	for i := range jobs {
		jobs[i] = mkJob(i, r.Float64()*1e6)
		jobs[i].Attained = r.Float64() * 2 * DefaultLASThreshold
	}
	l := LAS{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Order(jobs, 1e6)
	}
}

func BenchmarkSRTFOrder1000(b *testing.B) {
	r := rng.New(2)
	jobs := make([]*sim.Job, 1000)
	for i := range jobs {
		jobs[i] = mkJob(i, r.Float64()*1e6)
		jobs[i].Remaining = r.Float64() * 1e5
	}
	s := SRTF{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Order(jobs, 1e6)
	}
}
