package runner

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/sim"
)

// DefaultCacheCapacity bounds the result cache when the caller does not
// choose a size. 512 comfortably covers a full paper-scale regeneration
// (the complete evaluation is a few hundred distinct simulations) while
// keeping the worst case around a few hundred MB of retained results.
const DefaultCacheCapacity = 512

// Backend is a second cache tier behind the in-memory LRU: a durable,
// cross-process result store (internal/store is the implementation; the
// interface lives here so the dependency arrow keeps pointing downward).
// Get returns (result, found, error); a lookup error is NOT a miss —
// the cache degrades to computing, counting the failure in its stats.
// Put persists a freshly computed result. Implementations must be safe
// for concurrent use; values handed over are shared and read-only.
type Backend interface {
	Get(key string) (*sim.Result, bool, error)
	Put(key string, res *sim.Result) error
}

// ResultCache is a content-addressed store of simulation results with
// LRU eviction and single-flight deduplication: concurrent requests for
// the same key run the computation once and share the outcome. It
// replaces the ad-hoc sync.Map caches the experiments layer used to
// keep, which never evicted and were keyed on name strings rather than
// the full run configuration.
//
// With a Backend attached (SetBackend), the cache becomes two-tiered:
// the in-memory LRU is tier 1, the backend tier 2. A memory miss
// consults the backend before computing, a successful computation is
// written through, and single-flight spans both tiers — concurrent
// callers for one key share a single backend lookup and at most one
// computation.
//
// Cached values are shared between callers and must be treated as
// read-only; every consumer in this repository only reads results.
type ResultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // key -> element holding *cacheEntry
	inflight map[string]*flight
	backend  Backend
	// hadBackend remembers that SetBackend attached a non-nil backend,
	// so BackendDetached can distinguish "never had a store" from "the
	// circuit breaker dropped it".
	hadBackend bool

	hits        int64 // memory-tier hits (including in-flight dedup)
	misses      int64 // both tiers missed: the computation actually ran
	storeHits   int64 // memory missed, backend hit
	stored      int64 // results written through to the backend
	storeErrors int64 // backend Get/Put failures (degraded, not fatal)
	// errorStreak counts consecutive backend failures; at
	// backendErrorLimit the backend is dropped for the cache's lifetime,
	// so a hung or broken store costs at most a bounded number of I/O
	// timeouts before the cache truly degrades to memory-only.
	errorStreak int
}

// backendErrorLimit is the consecutive-failure count at which the
// backend is detached. Any success resets the streak.
const backendErrorLimit = 5

// cacheEntry is the LRU list payload.
type cacheEntry struct {
	key string
	res *sim.Result
}

// flight tracks one in-progress computation so duplicate keys wait for
// it instead of recomputing.
type flight struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// NewResultCache returns a cache holding at most capacity results.
// capacity <= 0 selects DefaultCacheCapacity.
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &ResultCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// SetBackend attaches (or, with nil, detaches) the durable second tier.
// Call it before handing the cache to a pool; swapping backends while
// lookups are in flight routes each lookup through whichever backend it
// observed first.
func (c *ResultCache) SetBackend(b Backend) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backend = b
	c.hadBackend = b != nil
}

// BackendDetached reports whether a previously attached backend was
// dropped by the consecutive-failure circuit breaker: the cache is now
// memory-only and fresh results are no longer persisted. CLIs surface
// this as an explicit degradation warning instead of failing sweeps.
func (c *ResultCache) BackendDetached() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hadBackend && c.backend == nil
}

// CacheStats is a snapshot of the cache's counters, split by tier.
type CacheStats struct {
	// Hits counts memory-tier hits, including callers that waited on
	// another caller's in-flight computation. Misses counts lookups both
	// tiers missed — i.e. computations that actually ran.
	Hits, Misses int64
	// StoreHits counts lookups satisfied by the backend tier; Stored
	// counts results written through to it; StoreErrors counts backend
	// failures the cache degraded around (computing instead of loading,
	// or skipping the write-through).
	StoreHits, Stored, StoreErrors int64
	Entries                        int
}

// Stats returns the cache's counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		StoreHits:   c.storeHits,
		Stored:      c.stored,
		StoreErrors: c.storeErrors,
		Entries:     c.ll.Len(),
	}
}

// Len returns the number of cached results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// tier names which layer satisfied a cache lookup; the pool translates
// it into the probe's TaskOutcome and the per-tier hit counters.
type tier uint8

const (
	tierComputed tier = iota // both tiers missed: compute ran
	tierMemory               // memory LRU or another caller's in-flight computation
	tierStore                // backend (persistent store) tier
)

// Do returns the cached result for key — from the memory tier, another
// caller's in-flight lookup, or the backend tier — or runs compute
// exactly once across concurrent callers and caches (and writes
// through) a successful outcome. The second return reports whether the
// value came from either cache tier or another caller's in-flight
// computation (a "hit" in the dedup sense); it is false only when this
// call actually computed. Errors from compute are propagated to every
// waiter but never cached, so a failed computation can be retried.
// Backend failures never fail the lookup: a broken store degrades the
// cache to memory-only and is counted in Stats().StoreErrors.
func (c *ResultCache) Do(key string, compute func() (*sim.Result, error)) (*sim.Result, bool, error) {
	res, src, err := c.do(key, compute)
	return res, src != tierComputed, err
}

// do is Do with the satisfying tier attributed, for the pool's probe.
func (c *ResultCache) do(key string, compute func() (*sim.Result, error)) (*sim.Result, tier, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, tierMemory, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.res, tierMemory, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	backend := c.backend
	c.mu.Unlock()

	// The closing of f.done and the inflight cleanup must survive a
	// panicking compute (the pool already converts panics to errors, but
	// the cache should not rely on its callers for its own liveness).
	// When compute never returned, waiters must see an error — not a
	// (nil, nil) outcome they would dereference — while the panic itself
	// keeps propagating to the computing caller.
	returned := false
	defer func() {
		if !returned && f.err == nil {
			f.err = fmt.Errorf("runner: cache computation for key %q panicked", key)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil && f.res != nil {
			c.add(key, f.res)
		}
		c.mu.Unlock()
		close(f.done)
	}()

	// Backend tier. The flight is already registered, so concurrent
	// callers for this key wait on one disk read, never a stampede.
	if backend != nil {
		res, ok, err := backend.Get(key)
		switch {
		case err != nil:
			c.backendFailed()
		case ok:
			c.backendWorked(&c.storeHits)
			f.res = res
			returned = true
			return res, tierStore, nil
		default:
			c.backendWorked(nil) // clean miss: the backend is healthy
		}
	}

	c.count(&c.misses)
	f.res, f.err = compute()
	returned = true
	if f.err == nil && f.res != nil && backend != nil {
		if err := backend.Put(key, f.res); err != nil {
			c.backendFailed()
		} else {
			c.backendWorked(&c.stored)
		}
	}
	return f.res, tierComputed, f.err
}

// count bumps one counter under the cache mutex.
func (c *ResultCache) count(p *int64) {
	c.mu.Lock()
	*p++
	c.mu.Unlock()
}

// backendFailed records one backend failure; backendErrorLimit
// consecutive failures detach the backend so a hung store costs a
// bounded number of timeouts before the cache is truly memory-only.
func (c *ResultCache) backendFailed() {
	c.mu.Lock()
	c.storeErrors++
	c.errorStreak++
	if c.errorStreak >= backendErrorLimit {
		c.backend = nil
	}
	c.mu.Unlock()
}

// backendWorked resets the failure streak, bumping counter when given.
func (c *ResultCache) backendWorked(counter *int64) {
	c.mu.Lock()
	if counter != nil {
		*counter++
	}
	c.errorStreak = 0
	c.mu.Unlock()
}

// Get returns the cached result for key without computing anything.
func (c *ResultCache) Get(key string) (*sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	return nil, false
}

// add inserts a value, evicting the least-recently-used entry when the
// cache is full. Caller holds c.mu.
func (c *ResultCache) add(key string, res *sim.Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Memo is a small generic single-flight memoization table for values
// that are expensive to build but few in number (profiles, binned
// profiles). Unlike ResultCache it never evicts — callers use it for
// key spaces they know are bounded. The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	mu   sync.Mutex
	done bool
	v    V
}

// Get returns the memoized value for key, computing it at most once even
// under concurrent access. A panicking compute propagates to its caller
// and leaves the entry uncomputed (not poisoned with a zero value), so
// the next Get retries.
func (m *Memo[K, V]) Get(key K, compute func() V) V {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*memoEntry[V])
	}
	e, ok := m.m[key]
	if !ok {
		e = &memoEntry[V]{}
		m.m[key] = e
	}
	m.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		e.v = compute()
		e.done = true
	}
	return e.v
}

// Len returns the number of memoized keys.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
