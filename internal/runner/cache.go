package runner

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/sim"
)

// DefaultCacheCapacity bounds the result cache when the caller does not
// choose a size. 512 comfortably covers a full paper-scale regeneration
// (the complete evaluation is a few hundred distinct simulations) while
// keeping the worst case around a few hundred MB of retained results.
const DefaultCacheCapacity = 512

// ResultCache is a content-addressed store of simulation results with
// LRU eviction and single-flight deduplication: concurrent requests for
// the same key run the computation once and share the outcome. It
// replaces the ad-hoc sync.Map caches the experiments layer used to
// keep, which never evicted and were keyed on name strings rather than
// the full run configuration.
//
// Cached values are shared between callers and must be treated as
// read-only; every consumer in this repository only reads results.
type ResultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // key -> element holding *cacheEntry
	inflight map[string]*flight

	hits, misses int64
}

// cacheEntry is the LRU list payload.
type cacheEntry struct {
	key string
	res *sim.Result
}

// flight tracks one in-progress computation so duplicate keys wait for
// it instead of recomputing.
type flight struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// NewResultCache returns a cache holding at most capacity results.
// capacity <= 0 selects DefaultCacheCapacity.
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &ResultCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// CacheStats is a snapshot of hit/miss counters.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
}

// Stats returns the cache's counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}

// Len returns the number of cached results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Do returns the cached result for key, or runs compute exactly once
// across concurrent callers and caches a successful outcome. The second
// return reports whether the value came from the cache or another
// caller's in-flight computation (a "hit" in the dedup sense). Errors
// are propagated to every waiter but never cached, so a failed
// computation can be retried.
func (c *ResultCache) Do(key string, compute func() (*sim.Result, error)) (*sim.Result, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.res, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	// The closing of f.done and the inflight cleanup must survive a
	// panicking compute (the pool already converts panics to errors, but
	// the cache should not rely on its callers for its own liveness).
	// When compute never returned, waiters must see an error — not a
	// (nil, nil) outcome they would dereference — while the panic itself
	// keeps propagating to the computing caller.
	returned := false
	defer func() {
		if !returned && f.err == nil {
			f.err = fmt.Errorf("runner: cache computation for key %q panicked", key)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil && f.res != nil {
			c.add(key, f.res)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.res, f.err = compute()
	returned = true
	return f.res, false, f.err
}

// Get returns the cached result for key without computing anything.
func (c *ResultCache) Get(key string) (*sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	return nil, false
}

// add inserts a value, evicting the least-recently-used entry when the
// cache is full. Caller holds c.mu.
func (c *ResultCache) add(key string, res *sim.Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Memo is a small generic single-flight memoization table for values
// that are expensive to build but few in number (profiles, binned
// profiles). Unlike ResultCache it never evicts — callers use it for
// key spaces they know are bounded. The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	mu   sync.Mutex
	done bool
	v    V
}

// Get returns the memoized value for key, computing it at most once even
// under concurrent access. A panicking compute propagates to its caller
// and leaves the entry uncomputed (not poisoned with a zero value), so
// the next Get retries.
func (m *Memo[K, V]) Get(key K, compute func() V) V {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*memoEntry[V])
	}
	e, ok := m.m[key]
	if !ok {
		e = &memoEntry[V]{}
		m.m[key] = e
	}
	m.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		e.v = compute()
		e.done = true
	}
	return e.v
}

// Len returns the number of memoized keys.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
