package runner

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// SnapshotBackend is the persistent tier behind a SnapshotCache: a
// durable, cross-process store of engine snapshots (internal/store is
// the implementation; the interface lives here so the dependency arrow
// keeps pointing downward, exactly like Backend for results). Get
// returns (snapshot, found, error); a lookup error is NOT a miss — the
// cache degrades to capturing. Implementations must be safe for
// concurrent use; snapshots handed over are shared and read-only.
type SnapshotBackend interface {
	GetSnapshot(key string) (*sim.Snapshot, bool, error)
	PutSnapshot(key string, snap *sim.Snapshot) error
}

// SnapshotCache deduplicates prefix captures across the cells of a
// sweep: all cells sharing one prefix key (scenario.Built.PrefixKey)
// get one capture — concurrent callers wait on the single in-flight
// computation — and, with a backend attached, captures persist across
// processes. Snapshots are never evicted within a process: a sweep
// touches one snapshot per prefix group and groups are few; the
// persistent tier is bounded by the store's GC like any other object.
//
// A backend failure never fails a caller: lookups degrade to
// capturing, write-throughs are dropped, and both are counted in
// Stats().StoreErrors.
type SnapshotCache struct {
	mu       sync.Mutex
	snaps    map[string]*sim.Snapshot
	inflight map[string]*snapFlight
	backend  SnapshotBackend

	captured    int64
	hits        int64
	storeHits   int64
	stored      int64
	storeErrors int64
}

// snapFlight tracks one in-progress capture so duplicate prefix keys
// wait for it instead of re-simulating the prefix.
type snapFlight struct {
	done chan struct{}
	snap *sim.Snapshot
	err  error
}

// SnapshotCacheStats is a snapshot of the cache's counters.
type SnapshotCacheStats struct {
	// Captured counts prefixes this process actually simulated. Hits
	// counts callers served from memory or another caller's in-flight
	// capture; StoreHits counts lookups satisfied by the backend.
	Captured, Hits, StoreHits int64
	// Stored counts snapshots written through to the backend;
	// StoreErrors counts backend failures the cache degraded around.
	Stored, StoreErrors int64
}

// NewSnapshotCache returns a snapshot cache; backend may be nil for a
// memory-only cache.
func NewSnapshotCache(backend SnapshotBackend) *SnapshotCache {
	return &SnapshotCache{
		snaps:    make(map[string]*sim.Snapshot),
		inflight: make(map[string]*snapFlight),
		backend:  backend,
	}
}

// Stats returns the cache's counters.
func (c *SnapshotCache) Stats() SnapshotCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SnapshotCacheStats{
		Captured:    c.captured,
		Hits:        c.hits,
		StoreHits:   c.storeHits,
		Stored:      c.stored,
		StoreErrors: c.storeErrors,
	}
}

// GetOrCapture returns the snapshot for key — from memory, another
// caller's in-flight capture, or the backend — or runs capture exactly
// once across concurrent callers and caches (and writes through) the
// outcome. fromCache reports that this call did NOT perform the
// capture: the caller resumed shared work, which is what the pool
// surfaces as a snapshot fork. Errors from capture propagate to every
// waiter but are never cached, so a failed capture can be retried.
func (c *SnapshotCache) GetOrCapture(key string, capture func() (*sim.Snapshot, error)) (snap *sim.Snapshot, fromCache bool, err error) {
	c.mu.Lock()
	if s, ok := c.snaps[key]; ok {
		c.hits++
		c.mu.Unlock()
		return s, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.snap, true, f.err
	}
	f := &snapFlight{done: make(chan struct{})}
	c.inflight[key] = f
	backend := c.backend
	c.mu.Unlock()

	// Liveness must survive a panicking capture: waiters see an error,
	// the panic keeps propagating to the capturing caller (the pool
	// converts it to a task error there).
	returned := false
	defer func() {
		if !returned && f.err == nil {
			f.err = fmt.Errorf("runner: snapshot capture for key %q panicked", key)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil && f.snap != nil {
			c.snaps[key] = f.snap
		}
		c.mu.Unlock()
		close(f.done)
	}()

	if backend != nil {
		s, ok, berr := backend.GetSnapshot(key)
		switch {
		case berr != nil:
			c.count(&c.storeErrors)
		case ok:
			c.count(&c.storeHits)
			f.snap = s
			returned = true
			return s, true, nil
		}
	}

	c.count(&c.captured)
	f.snap, f.err = capture()
	returned = true
	if f.err == nil && f.snap != nil && backend != nil {
		if berr := backend.PutSnapshot(key, f.snap); berr != nil {
			c.count(&c.storeErrors)
		} else {
			c.count(&c.stored)
		}
	}
	return f.snap, false, f.err
}

// count bumps one counter under the cache mutex.
func (c *SnapshotCache) count(p *int64) {
	c.mu.Lock()
	*p++
	c.mu.Unlock()
}
