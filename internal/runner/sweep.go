package runner

import (
	"context"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Sweep accumulates a parameter grid of keyed tasks and executes it
// through a pool, delivering results in the order the grid was
// enumerated. Experiments build their grids with ordinary nested loops
// (policy × load × penalty × trace × seed), Add-ing one task per cell,
// then Run or Stream the whole sweep; the index handed back by Add is
// the cell's position in every output.
type Sweep struct {
	pool  *Pool
	tasks []Task
}

// NewSweep returns an empty sweep over the given pool.
func NewSweep(pool *Pool) *Sweep {
	return &Sweep{pool: pool}
}

// Add appends one task and returns its index in the sweep's outputs.
// key is the content-addressed identity of the run ("" disables
// caching); label names the cell in errors and progress output.
func (s *Sweep) Add(key, label string, run func() (*sim.Result, error)) int {
	return s.AddTask(Task{Key: key, Label: label, Run: run})
}

// AddTask appends one fully specified task (Add with the extra Task
// fields — e.g. Forked — available) and returns its index.
func (s *Sweep) AddTask(t Task) int {
	s.tasks = append(s.tasks, t)
	return len(s.tasks) - 1
}

// Len returns the number of accumulated tasks.
func (s *Sweep) Len() int { return len(s.tasks) }

// Run executes the sweep and returns the results in enumeration order.
func (s *Sweep) Run(ctx context.Context) ([]*sim.Result, error) {
	return s.pool.Run(ctx, s.tasks)
}

// Stream executes the sweep, delivering each result in enumeration order
// as soon as its contiguous prefix has completed. Aggregations that fold
// results into tables can therefore start consuming while later cells
// are still simulating.
func (s *Sweep) Stream(ctx context.Context, deliver func(i int, res *sim.Result) error) error {
	return s.pool.Stream(ctx, s.tasks, deliver)
}

// DeriveSeed deterministically derives a per-run seed from a base
// experiment seed and a stable textual key, via rng.Split. Sweeps use it
// to give every grid cell an independent, reproducible RNG stream: the
// derived seed depends only on (base, key), never on enumeration order
// or worker assignment, which is what keeps an N-worker sweep
// bit-identical to a serial one.
func DeriveSeed(base uint64, key string) uint64 {
	// FNV-1a folds the key to a 64-bit label; Split mixes the label into
	// the base seed's stream without perturbing adjacent labels.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	label := uint64(offset64)
	for i := 0; i < len(key); i++ {
		label ^= uint64(key[i])
		label *= prime64
	}
	return rng.New(base).Split(label).Uint64()
}

// ShardOf deterministically assigns a cache key to one of n shards:
// FNV-1a over the key bytes, reduced mod n. The assignment is a pure
// function of the key's content — never of enumeration order, worker
// count or platform — so n independent processes enumerating the same
// grid partition it identically without coordination: each runs the
// cells whose ShardOf equals its own index and every cell lands in
// exactly one shard. n <= 1 means unsharded (everything is shard 0).
func ShardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}
