package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// Tests for the cache's concurrency contract (LRU eviction order and
// single-flight dedup under goroutine pressure) and for the backend
// tier (store hits, write-through, degradation on store failure) —
// run under -race in CI.

// fakeBackend is an in-memory runner.Backend with injectable failures
// and call counters.
type fakeBackend struct {
	mu      sync.Mutex
	objects map[string]*sim.Result
	gets    int
	puts    int
	getErr  error
	putErr  error
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{objects: make(map[string]*sim.Result)}
}

func (b *fakeBackend) Get(key string) (*sim.Result, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	if b.getErr != nil {
		return nil, false, b.getErr
	}
	res, ok := b.objects[key]
	return res, ok, nil
}

func (b *fakeBackend) Put(key string, res *sim.Result) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.puts++
	if b.putErr != nil {
		return b.putErr
	}
	b.objects[key] = res
	return nil
}

// TestResultCacheLRUEvictionOrder pins the eviction order precisely:
// with capacity 3, touching an old entry must protect it and the
// least-recently-used entry — counting both Do hits and Get touches as
// uses — must be the one recomputed.
func TestResultCacheLRUEvictionOrder(t *testing.T) {
	c := NewResultCache(3)
	computes := map[string]int{}
	do := func(key string) {
		t.Helper()
		if _, _, err := c.Do(key, func() (*sim.Result, error) {
			computes[key]++
			return fakeResult(len(key)), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(key string, want int) {
		t.Helper()
		if got := computes[key]; got != want {
			t.Errorf("%s computed %d times, want %d", key, got, want)
		}
	}
	do("k1")
	do("k2")
	do("k3") // MRU->LRU: k3 k2 k1
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing")
	} // touch: k1 k3 k2
	do("k4")        // evicts k2 (LRU): k4 k1 k3
	do("k3")        // hit — k3 survived the insertion: k3 k4 k1
	expect("k3", 1) //
	do("k2")        // recompute — k2 was the one evicted: k2 k3 k4 (k1 out)
	expect("k2", 2) //
	do("k4")        // hit — k4 survived because k1 was LRU: k4 k2 k3
	expect("k4", 1) //
	do("k1")        // recompute — the Get touch only protected k1 until step 4
	expect("k1", 2) // k1 k4 k2 (k3 out)
	do("k2")        // still resident
	expect("k2", 2) //
	if c.Len() != 3 {
		t.Errorf("Len = %d, want capacity 3", c.Len())
	}
}

// TestResultCacheSingleflightUnderPressure: 16 goroutines hammering a
// handful of overlapping keys must trigger exactly one computation per
// key, with every caller observing that key's canonical result.
func TestResultCacheSingleflightUnderPressure(t *testing.T) {
	const goroutines = 16
	const keySpace = 4
	c := NewResultCache(keySpace)
	var computes [keySpace]atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 32; i++ {
				k := (g + i) % keySpace
				key := fmt.Sprintf("key-%d", k)
				res, _, err := c.Do(key, func() (*sim.Result, error) {
					computes[k].Add(1)
					time.Sleep(time.Millisecond) // widen the dedup window
					return fakeResult(k), nil
				})
				if err != nil {
					errs <- err
					return
				}
				if res.Rounds != k {
					errs <- fmt.Errorf("key %d returned result %d", k, res.Rounds)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for k := 0; k < keySpace; k++ {
		if got := computes[k].Load(); got != 1 {
			t.Errorf("key %d computed %d times, want 1", k, got)
		}
	}
	st := c.Stats()
	if st.Misses != keySpace {
		t.Errorf("misses = %d, want %d", st.Misses, keySpace)
	}
	if want := int64(goroutines*32 - keySpace); st.Hits != want {
		t.Errorf("hits = %d, want %d", st.Hits, want)
	}
}

// TestResultCacheEvictionChurnUnderRace drives 16 goroutines over a key
// space much larger than the cache capacity, so eviction, re-computation
// and single-flight interleave continuously. The assertions are
// consistency ones (every caller gets its key's value); the real check
// is the race detector.
func TestResultCacheEvictionChurnUnderRace(t *testing.T) {
	const goroutines = 16
	c := NewResultCache(4)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				k := (g*7 + i*3) % 32
				key := fmt.Sprintf("churn-%d", k)
				res, _, err := c.Do(key, func() (*sim.Result, error) {
					return fakeResult(k), nil
				})
				if err != nil {
					errs <- err
					return
				}
				if res.Rounds != k {
					errs <- fmt.Errorf("key %d returned result %d", k, res.Rounds)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if c.Len() > 4 {
		t.Errorf("cache grew past capacity: %d", c.Len())
	}
}

// TestCacheBackendTier covers the two-tier read path: a memory miss
// consults the backend, a backend hit populates the memory tier (no
// second backend read), and a computation writes through exactly once.
func TestCacheBackendTier(t *testing.T) {
	b := newFakeBackend()
	c := NewResultCache(8)
	c.SetBackend(b)

	// Cold: both tiers miss, compute runs, write-through stores.
	computes := 0
	res, hit, err := c.Do("k", func() (*sim.Result, error) {
		computes++
		return fakeResult(1), nil
	})
	if err != nil || hit || res.Rounds != 1 {
		t.Fatalf("cold Do: res=%v hit=%v err=%v", res, hit, err)
	}
	if b.puts != 1 || len(b.objects) != 1 {
		t.Fatalf("write-through: puts=%d objects=%d", b.puts, len(b.objects))
	}

	// Memory hit: the backend is not consulted again.
	gets := b.gets
	noCompute := func() (*sim.Result, error) { return nil, errors.New("unexpected compute") }
	if _, hit, _ := c.Do("k", noCompute); !hit {
		t.Fatal("memory tier missed")
	}
	if b.gets != gets {
		t.Errorf("memory hit consulted the backend (%d -> %d gets)", gets, b.gets)
	}

	// A fresh cache over the same backend warm-starts: the backend hit
	// counts as a hit, the value enters the memory tier, and compute
	// never runs.
	c2 := NewResultCache(8)
	c2.SetBackend(b)
	res, hit, err = c2.Do("k", func() (*sim.Result, error) {
		t.Fatal("computed despite a store hit")
		return nil, nil
	})
	if err != nil || !hit || res.Rounds != 1 {
		t.Fatalf("warm Do: res=%v hit=%v err=%v", res, hit, err)
	}
	st := c2.Stats()
	if st.StoreHits != 1 || st.Misses != 0 {
		t.Errorf("stats after store hit: %+v", st)
	}
	gets = b.gets
	if _, hit, _ := c2.Do("k", noCompute); !hit {
		t.Fatal("store hit did not populate the memory tier")
	}
	if b.gets != gets {
		t.Error("second lookup consulted the backend again")
	}
	if computes != 1 {
		t.Errorf("computes = %d, want 1 across both caches", computes)
	}
}

// TestCacheBackendDegradation: a failing backend must never fail a
// lookup — Get errors fall through to computation, Put errors keep the
// computed result — and both are counted.
func TestCacheBackendDegradation(t *testing.T) {
	b := newFakeBackend()
	b.getErr = errors.New("disk on fire")
	b.putErr = errors.New("disk still on fire")
	c := NewResultCache(8)
	c.SetBackend(b)
	res, hit, err := c.Do("k", func() (*sim.Result, error) { return fakeResult(7), nil })
	if err != nil || hit || res.Rounds != 7 {
		t.Fatalf("degraded Do: res=%v hit=%v err=%v", res, hit, err)
	}
	st := c.Stats()
	if st.StoreErrors != 2 { // one failed Get, one failed Put
		t.Errorf("storeErrors = %d, want 2", st.StoreErrors)
	}
	if st.Stored != 0 {
		t.Errorf("stored = %d, want 0", st.Stored)
	}
	// The result is still served from memory afterwards.
	if _, hit, _ := c.Do("k", func() (*sim.Result, error) {
		return nil, errors.New("unexpected compute")
	}); !hit {
		t.Error("degraded result not cached in memory")
	}
}

// TestCacheBackendCircuitBreaker: a persistently failing backend is
// detached after backendErrorLimit consecutive failures, so a hung
// store costs a bounded number of timeouts — after that, lookups stop
// paying backend I/O entirely.
func TestCacheBackendCircuitBreaker(t *testing.T) {
	b := newFakeBackend()
	b.getErr = errors.New("mount wedged")
	b.putErr = errors.New("mount wedged")
	c := NewResultCache(32)
	c.SetBackend(b)
	// Each Do costs two failures (Get + Put); drive past the limit.
	for i := 0; i*2 < backendErrorLimit; i++ {
		key := fmt.Sprintf("cb-%d", i)
		if _, _, err := c.Do(key, func() (*sim.Result, error) { return fakeResult(i), nil }); err != nil {
			t.Fatal(err)
		}
	}
	gets := b.gets
	if _, _, err := c.Do("cb-after", func() (*sim.Result, error) { return fakeResult(99), nil }); err != nil {
		t.Fatal(err)
	}
	if b.gets != gets || b.puts != gets {
		t.Errorf("backend still consulted after breaker tripped (gets %d -> %d)", gets, b.gets)
	}
	if st := c.Stats(); st.StoreErrors < backendErrorLimit {
		t.Errorf("storeErrors = %d, want >= %d", st.StoreErrors, backendErrorLimit)
	}
	// A success in between resets the streak: errors spread thinner than
	// the limit never trip the breaker.
	b2 := newFakeBackend()
	c2 := NewResultCache(32)
	c2.SetBackend(b2)
	for i := 0; i < backendErrorLimit*3; i++ {
		b2.getErr, b2.putErr = nil, nil
		if i%2 == 0 { // alternate failures with successes
			b2.getErr = errors.New("flaky")
			b2.putErr = errors.New("flaky")
		}
		key := fmt.Sprintf("flaky-%d", i)
		if _, _, err := c2.Do(key, func() (*sim.Result, error) { return fakeResult(i), nil }); err != nil {
			t.Fatal(err)
		}
	}
	gets = b2.gets
	if _, _, err := c2.Do("flaky-final", func() (*sim.Result, error) { return fakeResult(1), nil }); err != nil {
		t.Fatal(err)
	}
	if b2.gets == gets {
		t.Error("breaker tripped despite successes resetting the streak")
	}
}

// TestCacheBackendSingleflight: concurrent callers for one key share a
// single backend lookup, not a read stampede.
func TestCacheBackendSingleflight(t *testing.T) {
	b := newFakeBackend()
	b.objects["k"] = fakeResult(3)
	slow := &slowBackend{inner: b, delay: 5 * time.Millisecond}
	c := NewResultCache(8)
	c.SetBackend(slow)

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, hit, err := c.Do("k", func() (*sim.Result, error) {
				return nil, errors.New("computed despite a stored object")
			})
			if err != nil || !hit || res.Rounds != 3 {
				errs <- fmt.Errorf("res=%v hit=%v err=%v", res, hit, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if b.gets != 1 {
		t.Errorf("backend gets = %d, want 1 (single-flight across tiers)", b.gets)
	}
}

// slowBackend wraps a backend with latency to widen dedup windows.
type slowBackend struct {
	inner *fakeBackend
	delay time.Duration
}

func (s *slowBackend) Get(key string) (*sim.Result, bool, error) {
	time.Sleep(s.delay)
	return s.inner.Get(key)
}

func (s *slowBackend) Put(key string, res *sim.Result) error {
	return s.inner.Put(key, res)
}
