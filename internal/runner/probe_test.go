package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// recordingProbe collects spans under a lock (the pool calls the probe
// from worker goroutines).
type recordingProbe struct {
	mu    sync.Mutex
	spans []TaskSpan
}

func (p *recordingProbe) ObserveTask(sp TaskSpan) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.spans = append(p.spans, sp)
}

func (p *recordingProbe) byKey() map[string]TaskSpan {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]TaskSpan, len(p.spans))
	for _, sp := range p.spans {
		out[sp.Key] = sp
	}
	return out
}

// TestProbeOutcomeAttribution: one span per completed task, with the
// outcome naming the tier that satisfied it — executed on a cold key,
// memory-hit on a repeat, store-hit when only the backend holds it, and
// error on a failing task.
func TestProbeOutcomeAttribution(t *testing.T) {
	backend := newFakeBackend()
	if err := backend.Put("stored", fakeResult(3)); err != nil {
		t.Fatal(err)
	}
	cache := NewResultCache(8)
	cache.SetBackend(backend)
	probe := &recordingProbe{}
	pool := NewPool(2, cache)
	pool.SetProbe(probe)

	boom := errors.New("boom")
	tasks := []Task{
		{Key: "cold", Label: "first", Run: func() (*sim.Result, error) { return fakeResult(1), nil }},
		{Key: "cold", Label: "repeat", Run: func() (*sim.Result, error) { return fakeResult(1), nil }},
		{Key: "stored", Label: "from-store", Run: func() (*sim.Result, error) {
			t.Error("stored key must not compute")
			return fakeResult(9), nil
		}},
		{Key: "", Label: "uncached", Run: func() (*sim.Result, error) { return fakeResult(2), nil }},
	}
	if _, err := pool.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	// The failing task runs in its own batch so it cannot cancel the
	// others before they deliver.
	_, err := pool.Run(context.Background(), []Task{
		{Key: "bad", Label: "fails", Run: func() (*sim.Result, error) { return nil, boom }},
	})
	if err == nil {
		t.Fatal("failing task must surface its error")
	}

	spans := probe.byKey()
	if len(probe.spans) != 5 {
		t.Fatalf("probe saw %d spans, want 5", len(probe.spans))
	}
	wantOutcome := map[string]TaskOutcome{
		"stored": OutcomeStoreHit,
		"":       OutcomeExecuted,
		"bad":    OutcomeError,
	}
	for key, want := range wantOutcome {
		if got := spans[key].Outcome; got != want {
			t.Errorf("key %q outcome %q, want %q", key, got, want)
		}
	}
	// "cold" was submitted twice: one executed, one memory-hit (order of
	// observation depends on worker interleave, so count them).
	var executed, memory int
	for _, sp := range probe.spans {
		if sp.Key != "cold" {
			continue
		}
		switch sp.Outcome {
		case OutcomeExecuted:
			executed++
		case OutcomeMemoryHit:
			memory++
		default:
			t.Errorf("cold outcome %q", sp.Outcome)
		}
	}
	if executed != 1 || memory != 1 {
		t.Errorf("cold key: %d executed + %d memory-hit, want 1+1", executed, memory)
	}
	if sp := spans["bad"]; sp.Err == nil || !errors.Is(sp.Err, boom) {
		t.Errorf("error span must carry the task error, got %v", sp.Err)
	}
	for _, sp := range probe.spans {
		if sp.Start.IsZero() || sp.Duration < 0 {
			t.Errorf("span %q missing timing: %+v", sp.Key, sp)
		}
		if sp.Worker < 0 || sp.Worker >= pool.Workers() {
			t.Errorf("span %q worker slot %d out of range", sp.Key, sp.Worker)
		}
		if sp.Outcome == OutcomeMemoryHit || sp.Outcome == OutcomeStoreHit {
			if sp.Run != 0 {
				t.Errorf("cache hit %q reports run time %v", sp.Key, sp.Run)
			}
		}
	}
	// Span counts reconcile exactly with the pool's lifetime counters —
	// the acceptance identity palreport's totals row relies on.
	st := pool.Stats()
	var counts struct{ executed, hits, errs int64 }
	for _, sp := range probe.spans {
		switch sp.Outcome {
		case OutcomeExecuted:
			counts.executed++
		case OutcomeMemoryHit, OutcomeStoreHit:
			counts.hits++
		case OutcomeError:
			counts.errs++
		}
	}
	if counts.hits != st.CacheHits {
		t.Errorf("probe counted %d cache hits, pool %d", counts.hits, st.CacheHits)
	}
	if counts.executed+counts.errs != st.Executed {
		t.Errorf("probe counted %d+%d executed/error, pool executed %d",
			counts.executed, counts.errs, st.Executed)
	}
	if int64(len(probe.spans)) != st.Completed {
		t.Errorf("probe saw %d spans, pool completed %d", len(probe.spans), st.Completed)
	}
}

// TestProbeRunDuration: executed spans separate run time from total
// span time.
func TestProbeRunDuration(t *testing.T) {
	probe := &recordingProbe{}
	pool := NewPool(1, NewResultCache(4))
	pool.SetProbe(probe)
	_, err := pool.Run(context.Background(), []Task{{
		Key: "slow", Label: "slow",
		Run: func() (*sim.Result, error) {
			time.Sleep(5 * time.Millisecond)
			return fakeResult(1), nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sp := probe.byKey()["slow"]
	if sp.Run < 5*time.Millisecond {
		t.Errorf("run duration %v, want >= 5ms", sp.Run)
	}
	if sp.Duration < sp.Run {
		t.Errorf("span duration %v shorter than run %v", sp.Duration, sp.Run)
	}
}

// TestNilProbeUnchanged: with no probe, the pool behaves exactly as
// before (smoke for the nil fast path).
func TestNilProbeUnchanged(t *testing.T) {
	pool := NewPool(4, NewResultCache(4))
	var tasks []Task
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("k%d", i%4)
		tasks = append(tasks, Task{Key: key, Run: func() (*sim.Result, error) { return fakeResult(1), nil }})
	}
	if _, err := pool.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Completed != 16 {
		t.Errorf("completed %d, want 16", st.Completed)
	}
}
