package runner

import (
	"time"

	"repro/internal/sim"
)

// TaskOutcome classifies how a task's result was obtained: simulated on
// this process's CPU, served from one of the two cache tiers, or failed.
type TaskOutcome string

const (
	// OutcomeExecuted marks a task whose Run closure actually ran — a
	// simulation truly performed by this process.
	OutcomeExecuted TaskOutcome = "executed"
	// OutcomeMemoryHit marks a task served by the in-memory LRU tier,
	// including callers that waited on another caller's in-flight
	// computation (the same dedup sense CacheStats.Hits uses).
	OutcomeMemoryHit TaskOutcome = "memory-hit"
	// OutcomeStoreHit marks a task served by the persistent backend tier.
	OutcomeStoreHit TaskOutcome = "store-hit"
	// OutcomeSnapshotFork marks an executed task that resumed a shared
	// engine snapshot instead of simulating its warmup prefix from
	// scratch (Task.Forked reported true). Broken out from
	// OutcomeExecuted so a sweep's "simulated" count stays the number of
	// full from-scratch simulations.
	OutcomeSnapshotFork TaskOutcome = "snapshot-fork"
	// OutcomeError marks a task that returned an error, whichever path
	// produced it.
	OutcomeError TaskOutcome = "error"
)

// TaskSpan is the lifecycle record of one completed task: identity,
// outcome, which worker slot carried it, and its wall-clock extent.
// Spans carry wall-clock by design and therefore live strictly outside
// results, cache keys and byte-identity comparisons — the same
// treatment as sim.Result.PlaceTimes.
type TaskSpan struct {
	Key   string // content-addressed identity ("" = uncached)
	Label string
	// Worker is the slot index (0..Workers-1) that carried the task
	// within its Stream call; concurrent Stream calls on one pool reuse
	// the same slot indexes.
	Worker  int
	Outcome TaskOutcome
	Err     error // non-nil iff Outcome == OutcomeError
	// Start and Duration span the whole task: cache lookups, backend
	// I/O and the Run closure. Run is the time inside the Run closure
	// alone (zero for cache hits), so Duration-Run approximates the
	// orchestration overhead around a simulation.
	Start    time.Time
	Duration time.Duration
	Run      time.Duration
	// Counters, when non-nil, are the engine introspection counters the
	// task's run populated (Task.Counters); set only for executed and
	// snapshot-fork outcomes. Like the span's clocks they are
	// regime-dependent by design and live outside results, cache keys
	// and byte-identity.
	Counters *sim.Counters
}

// Probe observes the orchestration layer: one ObserveTask call per
// completed task, from whichever worker goroutine carried it (so
// implementations must be safe for concurrent use). Probes are strictly
// observation-only — they see spans after the outcome is decided, must
// not mutate results, and must never influence scheduling; a probed
// sweep produces byte-identical tables to an unprobed one. The journal
// subsystem (internal/journal) is the implementation; the interface
// lives here so the dependency arrow keeps pointing downward.
type Probe interface {
	ObserveTask(TaskSpan)
}

// SetProbe attaches (or with nil detaches) the pool's task-lifecycle
// probe. Call it before the first Run/Stream; the pool reads the probe
// without synchronization once workers are running.
func (p *Pool) SetProbe(probe Probe) { p.probe = probe }
