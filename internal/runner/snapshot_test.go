package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// fakeSnapBackend is an in-memory SnapshotBackend with injectable
// failures, standing in for the persistent store.
type fakeSnapBackend struct {
	mu     sync.Mutex
	snaps  map[string]*sim.Snapshot
	getErr error
	putErr error
	gets   int
	puts   int
}

func newFakeSnapBackend() *fakeSnapBackend {
	return &fakeSnapBackend{snaps: make(map[string]*sim.Snapshot)}
}

func (b *fakeSnapBackend) GetSnapshot(key string) (*sim.Snapshot, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	if b.getErr != nil {
		return nil, false, b.getErr
	}
	s, ok := b.snaps[key]
	return s, ok, nil
}

func (b *fakeSnapBackend) PutSnapshot(key string, snap *sim.Snapshot) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.puts++
	if b.putErr != nil {
		return b.putErr
	}
	b.snaps[key] = snap
	return nil
}

// TestSnapshotCacheSingleFlight: N concurrent callers of one key run
// the capture exactly once; exactly one caller reports fromCache=false.
func TestSnapshotCacheSingleFlight(t *testing.T) {
	c := NewSnapshotCache(nil)
	var captures atomic.Int64
	want := &sim.Snapshot{Rounds: 7}

	const callers = 16
	var wg sync.WaitGroup
	var owners atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap, fromCache, err := c.GetOrCapture("k", func() (*sim.Snapshot, error) {
				captures.Add(1)
				return want, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if snap != want {
				t.Error("caller got a different snapshot")
			}
			if !fromCache {
				owners.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := captures.Load(); got != 1 {
		t.Errorf("capture ran %d times, want 1", got)
	}
	if got := owners.Load(); got != 1 {
		t.Errorf("%d callers reported fromCache=false, want exactly 1", got)
	}
	st := c.Stats()
	if st.Captured != 1 || st.Hits != callers-1 {
		t.Errorf("stats = %+v, want Captured 1, Hits %d", st, callers-1)
	}
}

// TestSnapshotCacheErrorNotCached: a failed capture propagates to
// every waiter but is retried on the next call.
func TestSnapshotCacheErrorNotCached(t *testing.T) {
	c := NewSnapshotCache(nil)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.GetOrCapture("k", func() (*sim.Snapshot, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	want := &sim.Snapshot{Rounds: 3}
	snap, fromCache, err := c.GetOrCapture("k", func() (*sim.Snapshot, error) {
		calls++
		return want, nil
	})
	if err != nil || snap != want || fromCache {
		t.Fatalf("retry: snap=%v fromCache=%v err=%v, want fresh capture", snap, fromCache, err)
	}
	if calls != 2 {
		t.Fatalf("capture called %d times, want 2 (error must not be cached)", calls)
	}
}

// TestSnapshotCacheBackendTier: a backend hit avoids the capture and
// counts as fromCache; a capture writes through; a backend failure
// degrades to capturing without failing the caller.
func TestSnapshotCacheBackendTier(t *testing.T) {
	b := newFakeSnapBackend()
	stored := &sim.Snapshot{Rounds: 5}
	b.snaps["warm"] = stored

	c := NewSnapshotCache(b)
	snap, fromCache, err := c.GetOrCapture("warm", func() (*sim.Snapshot, error) {
		t.Fatal("capture ran despite a backend hit")
		return nil, nil
	})
	if err != nil || snap != stored || !fromCache {
		t.Fatalf("backend hit: snap=%v fromCache=%v err=%v", snap, fromCache, err)
	}

	fresh := &sim.Snapshot{Rounds: 9}
	if _, fromCache, err := c.GetOrCapture("cold", func() (*sim.Snapshot, error) { return fresh, nil }); err != nil || fromCache {
		t.Fatalf("cold key: fromCache=%v err=%v, want fresh capture", fromCache, err)
	}
	if got := b.snaps["cold"]; got != fresh {
		t.Error("capture was not written through to the backend")
	}

	b.getErr = fmt.Errorf("disk on fire")
	b.putErr = b.getErr
	degraded := &sim.Snapshot{Rounds: 2}
	snap, fromCache, err = c.GetOrCapture("k2", func() (*sim.Snapshot, error) { return degraded, nil })
	if err != nil || snap != degraded || fromCache {
		t.Fatalf("backend failure must degrade to capturing: snap=%v fromCache=%v err=%v", snap, fromCache, err)
	}

	st := c.Stats()
	if st.StoreHits != 1 || st.Stored != 1 || st.Captured != 2 || st.StoreErrors != 2 {
		t.Errorf("stats = %+v, want StoreHits 1, Stored 1, Captured 2, StoreErrors 2", st)
	}
}
