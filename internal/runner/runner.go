// Package runner is the experiment-orchestration layer: it fans
// independent simulations out across a bounded worker pool while
// preserving the bit-for-bit determinism of the single-goroutine engine.
//
// The engine in internal/sim is deterministic for a given configuration,
// and every configuration carries its own RNG stream (derived with
// rng.Split from a stable key), so independent runs commute: executing
// them concurrently cannot change any individual result. The runner
// builds on that property:
//
//   - Pool executes Tasks on up to Workers goroutines with context
//     cancellation and per-task panic capture. Results are always
//     delivered in submission order, never completion order, so callers
//     observe the exact sequence a serial loop would have produced.
//   - ResultCache (cache.go) memoizes results under content-addressed
//     keys — a canonical hash of the full run configuration — with LRU
//     eviction and single-flight deduplication, so identical
//     configurations reached from different experiments run once.
//   - Sweep (sweep.go) accumulates parameter grids and streams the
//     completed results back in grid order.
//
// The package deliberately knows nothing about the experiments layer: a
// Task is just a key plus a closure returning a *sim.Result, which keeps
// the dependency arrow pointing downward (experiments -> runner -> sim).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Task is one unit of work: a deterministic simulation run.
type Task struct {
	// Key is the content-addressed identity of the run: two tasks with
	// equal keys must produce identical results. A task with an empty key
	// bypasses the cache (used for runs whose configuration cannot be
	// canonically hashed, e.g. ablations with hand-built placers).
	Key string
	// Label names the task in error messages and progress output
	// (e.g. "fig13 C2.0 PAL w5"). Optional.
	Label string
	// Run executes the simulation. It must be safe to call from any
	// goroutine and must not retain references to mutable shared state.
	Run func() (*sim.Result, error)
	// Forked, when non-nil, is consulted after Run returns: true means
	// the result was produced by resuming a shared engine snapshot
	// rather than simulating from scratch, and the task's outcome is
	// reported as OutcomeSnapshotFork instead of OutcomeExecuted. It is
	// called on the same goroutine that called Run, immediately after
	// it.
	Forked func() bool
	// Counters, when non-nil, is consulted like Forked after Run
	// returns, but only when the Run closure actually ran (executed or
	// snapshot-fork outcomes): it hands the probe the engine
	// introspection counters the run populated, carried on
	// TaskSpan.Counters. Cache hits and errors report nil counters — no
	// engine stepped on this process's CPU.
	Counters func() *sim.Counters
}

// PanicError wraps a panic recovered from a task so one faulty run
// surfaces as an ordinary error instead of killing the whole pool.
type PanicError struct {
	Label string
	Value interface{}
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: task %q panicked: %v", e.Label, e.Value)
}

// Stats is a snapshot of a pool's lifetime counters, used for progress
// and ETA reporting.
type Stats struct {
	Submitted int64 // tasks handed to Run/Stream
	Completed int64 // tasks finished (including cache hits and errors)
	CacheHits int64 // tasks satisfied from the result cache (either tier)
	// Executed counts tasks whose Run closure actually ran — simulations
	// truly performed, as opposed to results served from the memory or
	// store tier. A fully warm-started sweep reports Executed == 0.
	Executed int64
	// SnapshotForks counts the subset of Executed whose Run resumed a
	// shared engine snapshot instead of simulating its warmup prefix
	// (Task.Forked reported true), so Executed - SnapshotForks is the
	// number of full from-scratch simulations.
	SnapshotForks int64
}

// Pool executes tasks with bounded concurrency. The bound is
// pool-global: concurrent Run/Stream calls share one semaphore, so a
// CLI fanning out many experiments over one pool still runs at most
// Workers simulations at a time. The zero value is not usable;
// construct with NewPool. A Pool is safe for concurrent use and holds
// no goroutines between calls, so a panic or cancellation in one batch
// never poisons the next.
type Pool struct {
	workers int
	cache   *ResultCache
	// sem is the pool-global execution bound; every task acquires a slot
	// for the duration of its run, across all concurrent Stream calls.
	sem chan struct{}
	// probe observes task lifecycles (SetProbe). Observation-only: the
	// nil-probe path takes no timestamps and allocates nothing.
	probe Probe

	submitted atomic.Int64
	completed atomic.Int64
	cacheHits atomic.Int64
	executed  atomic.Int64
	forked    atomic.Int64
}

// NewPool returns a pool running at most workers tasks concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0). cache may be nil to
// disable result caching.
func NewPool(workers int, cache *ResultCache) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, cache: cache, sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Cache returns the pool's result cache (nil when caching is disabled).
func (p *Pool) Cache() *ResultCache { return p.cache }

// Stats returns a snapshot of the pool's lifetime counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Submitted:     p.submitted.Load(),
		Completed:     p.completed.Load(),
		CacheHits:     p.cacheHits.Load(),
		Executed:      p.executed.Load(),
		SnapshotForks: p.forked.Load(),
	}
}

// Run executes the tasks and returns their results in submission order.
// The first error (in submission order) cancels the remaining tasks and
// is returned; results already produced are discarded.
func (p *Pool) Run(ctx context.Context, tasks []Task) ([]*sim.Result, error) {
	out := make([]*sim.Result, len(tasks))
	err := p.Stream(ctx, tasks, func(i int, res *sim.Result) error {
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// indexed pairs a task index with its outcome for the collector.
type indexed struct {
	i   int
	res *sim.Result
	err error
}

// Stream executes the tasks and delivers each result to deliver in
// submission order (deliver(0, ...), deliver(1, ...), ...), regardless of
// completion order — the property that makes an N-worker sweep
// byte-identical to a serial loop. deliver runs on the calling goroutine.
// On a task error or a non-nil error from deliver, dispatch stops as
// soon as the failure is observed — in-flight runs finish (the engine is
// not interruptible mid-simulation) but no further tasks start. The
// returned error is deterministic: the lowest-index failure.
func (p *Pool) Stream(ctx context.Context, tasks []Task, deliver func(i int, res *sim.Result) error) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	p.submitted.Add(int64(len(tasks)))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// stop halts the feeder the moment any failure is observed, even one
	// whose submission-order prefix has not completed yet (cancelling ctx
	// at that point instead could race workers into dropping completed
	// earlier-index outcomes, losing the deterministic error). In-flight
	// tasks — at most Workers of them — still finish and deliver.
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	workers := p.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	idxCh := make(chan int)
	outCh := make(chan indexed, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// A received index is always executed — bailing on `stop` here
			// would drop an outcome the collector may need to flush the
			// prefix below a failing task, losing the deterministic error.
			// Only the feeder listens to stop; the in-flight slack after a
			// failure is therefore at most one task per worker.
			for i := range idxCh {
				// Check cancellation before the select: with both cases
				// ready, select picks randomly, which would let a task
				// start ~50% of the time on an already-cancelled context.
				if ctx.Err() != nil {
					return
				}
				// The pool-global semaphore keeps the total number of
				// in-flight tasks at p.workers even when several Stream
				// calls run concurrently on one pool. Safe with the
				// cache's singleflight: a computation only registers as
				// in-flight once its goroutine holds a slot, so a waiter
				// holding another slot always waits on a progressing
				// computation, never a queued one.
				select {
				case p.sem <- struct{}{}:
				case <-ctx.Done():
					return
				}
				res, err := p.exec(worker, tasks[i])
				<-p.sem
				select {
				case outCh <- indexed{i, res, err}:
				case <-ctx.Done():
					return
				}
			}
		}(w)
	}
	go func() {
		defer close(idxCh)
		for i := range tasks {
			// As in the worker: a random select pick must not dispatch
			// onto a context that is already cancelled.
			if ctx.Err() != nil {
				return
			}
			select {
			case idxCh <- i:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()

	// Reassemble in submission order: buffer out-of-order completions and
	// flush the contiguous prefix as it becomes available.
	pending := make(map[int]indexed, workers)
	next := 0
	var firstErr error
	for o := range outCh {
		if o.err != nil {
			halt()
		}
		pending[o.i] = o
		for {
			buf, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if firstErr == nil && buf.err != nil {
				firstErr = fmt.Errorf("runner: task %d (%s): %w", buf.i, tasks[buf.i].Label, buf.err)
				cancel()
			}
			if firstErr == nil {
				if err := deliver(buf.i, buf.res); err != nil {
					firstErr = err
					cancel()
				}
			}
			next++
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if next < len(tasks) {
		// Workers bailed out before finishing: external cancellation.
		if err := ctx.Err(); err != nil {
			return err
		}
		return fmt.Errorf("runner: %d of %d tasks never completed", len(tasks)-next, len(tasks))
	}
	return nil
}

// exec runs one task with panic capture, cache routing and (when a
// probe is attached) lifecycle-span observation. The probe sees the
// outcome the cache tiers decided — executed, memory-hit, store-hit or
// error — after the task completes; with no probe attached, no clocks
// are read.
func (p *Pool) exec(worker int, t Task) (*sim.Result, error) {
	defer p.completed.Add(1)
	probe := p.probe
	var start time.Time
	var runDur time.Duration
	if probe != nil {
		start = time.Now()
	}
	run := func() (res *sim.Result, err error) {
		p.executed.Add(1)
		if probe != nil {
			t0 := time.Now()
			defer func() { runDur = time.Since(t0) }()
		}
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Label: t.Label, Value: r, Stack: debug.Stack()}
			}
		}()
		return t.Run()
	}
	var res *sim.Result
	var err error
	outcome := OutcomeExecuted
	if p.cache == nil || t.Key == "" {
		res, err = run()
	} else {
		var src tier
		res, src, err = p.cache.do(t.Key, run)
		if src != tierComputed {
			p.cacheHits.Add(1)
		}
		switch src {
		case tierMemory:
			outcome = OutcomeMemoryHit
		case tierStore:
			outcome = OutcomeStoreHit
		}
	}
	if err != nil {
		outcome = OutcomeError
	}
	if outcome == OutcomeExecuted && t.Forked != nil && t.Forked() {
		// Only a task whose Run closure actually ran can have forked; a
		// cache hit reports its tier regardless of how the cached result
		// was originally produced.
		outcome = OutcomeSnapshotFork
		p.forked.Add(1)
	}
	if probe != nil {
		var ctrs *sim.Counters
		if (outcome == OutcomeExecuted || outcome == OutcomeSnapshotFork) && t.Counters != nil {
			ctrs = t.Counters()
		}
		probe.ObserveTask(TaskSpan{
			Key:      t.Key,
			Label:    t.Label,
			Worker:   worker,
			Outcome:  outcome,
			Err:      err,
			Start:    start,
			Duration: time.Since(start),
			Run:      runDur,
			Counters: ctrs,
		})
	}
	return res, err
}
