package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// fakeResult builds a distinguishable result for synthetic tasks. The
// runner never inspects results, so a sentinel with a recognizable field
// is enough to verify ordering and identity.
func fakeResult(i int) *sim.Result {
	return &sim.Result{Rounds: i, Makespan: float64(i) * 10}
}

// fakeTasks builds n deterministic tasks whose results encode their
// index, optionally with per-task artificial latency to scramble
// completion order.
func fakeTasks(n int, delay func(i int) time.Duration) []Task {
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task{
			Label: fmt.Sprintf("task-%d", i),
			Run: func() (*sim.Result, error) {
				if delay != nil {
					time.Sleep(delay(i))
				}
				return fakeResult(i), nil
			},
		}
	}
	return tasks
}

// TestPoolDeterminism: a 1-worker pool and an 8-worker pool must deliver
// identical results in identical (submission) order, even when later
// tasks complete before earlier ones.
func TestPoolDeterminism(t *testing.T) {
	const n = 40
	// Early tasks sleep longest, so under concurrency the completion
	// order is roughly the reverse of the submission order.
	delay := func(i int) time.Duration { return time.Duration(n-i) * time.Millisecond / 4 }

	collect := func(workers int) []int {
		var order []int
		pool := NewPool(workers, nil)
		err := pool.Stream(context.Background(), fakeTasks(n, delay), func(i int, res *sim.Result) error {
			if res.Rounds != i {
				t.Fatalf("workers=%d: index %d delivered result %d", workers, i, res.Rounds)
			}
			order = append(order, i)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return order
	}

	serial := collect(1)
	parallel := collect(8)
	if len(serial) != n || len(parallel) != n {
		t.Fatalf("delivered %d and %d results, want %d", len(serial), len(parallel), n)
	}
	for i := range serial {
		if serial[i] != i || parallel[i] != i {
			t.Fatalf("delivery out of submission order at %d: serial=%d parallel=%d",
				i, serial[i], parallel[i])
		}
	}
}

// TestPoolRunOrder: Run returns results indexed by submission order.
func TestPoolRunOrder(t *testing.T) {
	pool := NewPool(4, nil)
	results, err := pool.Run(context.Background(), fakeTasks(16, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Rounds != i {
			t.Errorf("results[%d].Rounds = %d", i, res.Rounds)
		}
	}
	st := pool.Stats()
	if st.Submitted != 16 || st.Completed != 16 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPoolCancellation: cancelling the context stops dispatch promptly
// and surfaces context.Canceled.
func TestPoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	tasks := make([]Task, 64)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Label: fmt.Sprintf("cancel-%d", i),
			Run: func() (*sim.Result, error) {
				started.Add(1)
				<-release
				return fakeResult(i), nil
			},
		}
	}
	pool := NewPool(2, nil)
	errCh := make(chan error, 1)
	go func() {
		_, err := pool.Run(ctx, tasks)
		errCh <- err
	}()
	// Wait for the first tasks to start, then cancel while they block.
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release) // let the in-flight tasks finish
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not return after cancellation")
	}
	if n := started.Load(); n >= 64 {
		t.Errorf("all %d tasks started despite cancellation", n)
	}
}

// TestPoolPanicContainment: a panicking task surfaces as a PanicError
// without killing the pool's other tasks or poisoning later batches.
func TestPoolPanicContainment(t *testing.T) {
	var completed atomic.Int64
	tasks := make([]Task, 12)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Label: fmt.Sprintf("panic-%d", i),
			Run: func() (*sim.Result, error) {
				if i == 3 {
					panic("boom")
				}
				completed.Add(1)
				return fakeResult(i), nil
			},
		}
	}
	pool := NewPool(4, nil)
	_, err := pool.Run(context.Background(), tasks)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "boom" || pe.Label != "panic-3" {
		t.Errorf("panic error = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error has no stack")
	}

	// The pool must still work for the next batch.
	results, err := pool.Run(context.Background(), fakeTasks(8, nil))
	if err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results after panic batch", len(results))
	}
}

// TestPoolErrorIsLowestIndex: with several failing tasks, the error
// reported is deterministically the lowest submission index.
func TestPoolErrorIsLowestIndex(t *testing.T) {
	mkErr := func(i int) error { return fmt.Errorf("fail-%d", i) }
	tasks := make([]Task, 10)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Label: fmt.Sprintf("err-%d", i),
			Run: func() (*sim.Result, error) {
				if i == 2 || i == 7 {
					return nil, mkErr(i)
				}
				// Delay the early successes so failures finish first.
				time.Sleep(2 * time.Millisecond)
				return fakeResult(i), nil
			},
		}
	}
	for trial := 0; trial < 3; trial++ {
		pool := NewPool(8, nil)
		_, err := pool.Run(context.Background(), tasks)
		if err == nil || !strings.Contains(err.Error(), "fail-2") {
			t.Fatalf("trial %d: err = %v, want the task-2 failure", trial, err)
		}
	}
}

// TestPoolCacheDedup: tasks sharing a key execute once; the rest are
// cache hits returning the same result pointer.
func TestPoolCacheDedup(t *testing.T) {
	var executions atomic.Int64
	tasks := make([]Task, 10)
	for i := range tasks {
		tasks[i] = Task{
			Key:   "same-key",
			Label: fmt.Sprintf("dedup-%d", i),
			Run: func() (*sim.Result, error) {
				executions.Add(1)
				return fakeResult(42), nil
			},
		}
	}
	pool := NewPool(4, NewResultCache(16))
	results, err := pool.Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if n := executions.Load(); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Error("cache returned distinct results for one key")
		}
	}
	if hits := pool.Stats().CacheHits; hits != 9 {
		t.Errorf("cache hits = %d, want 9", hits)
	}
}

// TestResultCacheLRU: the cache evicts least-recently-used entries at
// capacity and never grows past it.
func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache(2)
	mk := func(key string, i int) *sim.Result {
		res, _, err := c.Do(key, func() (*sim.Result, error) { return fakeResult(i), nil })
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mk("a", 1)
	mk("b", 2)
	mk("a", 1) // refresh a
	mk("c", 3) // evicts b (LRU)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was evicted despite being recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
}

// TestResultCacheErrorNotCached: failures propagate but are retryable.
func TestResultCacheErrorNotCached(t *testing.T) {
	c := NewResultCache(4)
	calls := 0
	boom := errors.New("boom")
	fn := func() (*sim.Result, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return fakeResult(1), nil
	}
	if _, _, err := c.Do("k", fn); !errors.Is(err, boom) {
		t.Fatalf("first call err = %v", err)
	}
	res, hit, err := c.Do("k", fn)
	if err != nil || hit || res == nil {
		t.Fatalf("retry: res=%v hit=%v err=%v", res, hit, err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

// TestMemoSingleflight: Memo computes once per key under concurrency.
func TestMemoSingleflight(t *testing.T) {
	var m Memo[int, int]
	var computed atomic.Int64
	done := make(chan int, 32)
	for g := 0; g < 32; g++ {
		go func() {
			done <- m.Get(7, func() int {
				computed.Add(1)
				time.Sleep(time.Millisecond)
				return 99
			})
		}()
	}
	for g := 0; g < 32; g++ {
		if v := <-done; v != 99 {
			t.Fatalf("got %d", v)
		}
	}
	if n := computed.Load(); n != 1 {
		t.Errorf("computed %d times", n)
	}
	if m.Len() != 1 {
		t.Errorf("len = %d", m.Len())
	}
}

// TestDeriveSeedStable: derived seeds depend only on (base, key), differ
// across keys and bases, and are stable across calls.
func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(1, "fig13|pen=1.0|w3")
	if b := DeriveSeed(1, "fig13|pen=1.0|w3"); b != a {
		t.Error("DeriveSeed not stable")
	}
	if DeriveSeed(1, "fig13|pen=1.0|w5") == a {
		t.Error("DeriveSeed ignores the key")
	}
	if DeriveSeed(2, "fig13|pen=1.0|w3") == a {
		t.Error("DeriveSeed ignores the base")
	}
}

// TestShardOf: shard assignment is a pure, stable function of the key's
// content. The golden values pin the FNV-1a reduction so the assignment
// can never drift across releases — a drift would make two shard
// processes built from different versions both skip (or both run) the
// same cells. The partition property (every key in exactly one shard in
// [0, n)) and the n<=1 degenerate case are checked over many keys.
func TestShardOf(t *testing.T) {
	golden := []struct {
		key  string
		n    int
		want int
	}{
		{"a", 2, 0},
		{"a", 3, 1},
		{"a", 7, 5},
		{"b", 2, 1},
		{"b", 3, 1},
		{"b", 7, 0},
		{"9259dea90ff87395a9383610dc9a2be04aff24b3126d953a6b133d2a922df9df", 2, 1},
		{"9259dea90ff87395a9383610dc9a2be04aff24b3126d953a6b133d2a922df9df", 3, 1},
		{"9259dea90ff87395a9383610dc9a2be04aff24b3126d953a6b133d2a922df9df", 7, 0},
	}
	for _, g := range golden {
		if got := ShardOf(g.key, g.n); got != g.want {
			t.Errorf("ShardOf(%q, %d) = %d, want %d (assignment drifted)", g.key, g.n, got, g.want)
		}
	}
	counts := make([]int, 5)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		s := ShardOf(key, 5)
		if s < 0 || s >= 5 {
			t.Fatalf("ShardOf(%q, 5) = %d out of range", key, s)
		}
		if again := ShardOf(key, 5); again != s {
			t.Fatalf("ShardOf(%q, 5) unstable: %d then %d", key, s, again)
		}
		counts[s]++
		if ShardOf(key, 1) != 0 || ShardOf(key, 0) != 0 {
			t.Fatalf("ShardOf(%q, n<=1) != 0", key)
		}
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received none of 500 keys (degenerate distribution)", s)
		}
	}
}

// TestHashCanonical: the canonical hasher distinguishes field boundaries
// and bit-level float differences.
func TestHashCanonical(t *testing.T) {
	sum := func(build func(h *Hash)) string {
		h := NewHash()
		build(h)
		return h.Sum()
	}
	if sum(func(h *Hash) { h.String("ab"); h.String("c") }) ==
		sum(func(h *Hash) { h.String("a"); h.String("bc") }) {
		t.Error("string concatenation collides")
	}
	if sum(func(h *Hash) { h.Float64(0.0) }) == sum(func(h *Hash) { h.Float64(math.Copysign(0, -1)) }) {
		t.Error("hash conflates +0 and -0 (not bit-canonical)")
	}
	if sum(func(h *Hash) { h.Floats([]float64{1, 2}) }) ==
		sum(func(h *Hash) { h.Floats([]float64{1}); h.Floats([]float64{2}) }) {
		t.Error("float slice boundaries collide")
	}
	if sum(func(h *Hash) { h.Bool(true) }) == sum(func(h *Hash) { h.Bool(false) }) {
		t.Error("bools collide")
	}
}

// TestSweepStreamOrder: Sweep delivers grid cells in enumeration order.
func TestSweepStreamOrder(t *testing.T) {
	pool := NewPool(4, NewResultCache(8))
	sweep := NewSweep(pool)
	const n = 12
	for i := 0; i < n; i++ {
		i := i
		idx := sweep.Add(fmt.Sprintf("cell-%d", i%3), fmt.Sprintf("sweep-%d", i),
			func() (*sim.Result, error) { return fakeResult(i % 3), nil })
		if idx != i {
			t.Fatalf("Add returned %d, want %d", idx, i)
		}
	}
	if sweep.Len() != n {
		t.Fatalf("len = %d", sweep.Len())
	}
	next := 0
	err := sweep.Stream(context.Background(), func(i int, res *sim.Result) error {
		if i != next {
			t.Fatalf("delivered %d, want %d", i, next)
		}
		if res.Rounds != i%3 {
			t.Fatalf("cell %d has result %d", i, res.Rounds)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("delivered %d cells", next)
	}
	// 3 distinct keys -> at most 3 executions, 9 hits.
	if hits := pool.Stats().CacheHits; hits != n-3 {
		t.Errorf("cache hits = %d, want %d", hits, n-3)
	}
}

// TestPoolStopsDispatchAfterFailure: once a failure is observed, the
// pool must stop starting new tasks even while an earlier, slower task
// is still running (and thus the failing error cannot be flushed yet).
func TestPoolStopsDispatchAfterFailure(t *testing.T) {
	const n = 64
	release := make(chan struct{})
	var started atomic.Int64
	tasks := make([]Task, n)
	tasks[0] = Task{Label: "slow-ok", Run: func() (*sim.Result, error) {
		<-release
		return fakeResult(0), nil
	}}
	tasks[1] = Task{Label: "fast-fail", Run: func() (*sim.Result, error) {
		return nil, errors.New("fast-fail")
	}}
	for i := 2; i < n; i++ {
		i := i
		tasks[i] = Task{Label: fmt.Sprintf("late-%d", i), Run: func() (*sim.Result, error) {
			started.Add(1)
			time.Sleep(time.Millisecond)
			return fakeResult(i), nil
		}}
	}
	pool := NewPool(2, nil)
	go func() {
		// Hold task 0 long enough that, without the early stop, the
		// second worker would chew through most of the late tasks.
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	_, err := pool.Run(context.Background(), tasks)
	if err == nil || !strings.Contains(err.Error(), "fast-fail") {
		t.Fatalf("err = %v, want fast-fail", err)
	}
	// The halt races one in-flight dispatch per worker; anything near the
	// full task list means dispatch kept going.
	if s := started.Load(); s > 10 {
		t.Errorf("%d late tasks started after the failure was observed", s)
	}
}

// TestPoolGlobalBound: the worker bound holds across concurrent
// Run calls on one pool — a CLI launching every experiment at once must
// still run at most Workers simulations at a time.
func TestPoolGlobalBound(t *testing.T) {
	const bound = 2
	pool := NewPool(bound, nil)
	var inFlight, peak atomic.Int64
	mkBatch := func(n int) []Task {
		tasks := make([]Task, n)
		for i := range tasks {
			i := i
			tasks[i] = Task{
				Label: fmt.Sprintf("bound-%d", i),
				Run: func() (*sim.Result, error) {
					cur := inFlight.Add(1)
					for {
						old := peak.Load()
						if cur <= old || peak.CompareAndSwap(old, cur) {
							break
						}
					}
					time.Sleep(2 * time.Millisecond)
					inFlight.Add(-1)
					return fakeResult(i), nil
				},
			}
		}
		return tasks
	}
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pool.Run(context.Background(), mkBatch(10)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Errorf("observed %d concurrent tasks, pool bound is %d", p, bound)
	}
}

// TestResultCachePanicPropagatesToWaiters: when the computing caller's
// compute panics, concurrent waiters on the same key must receive an
// error rather than a (nil, nil) outcome.
func TestResultCachePanicPropagatesToWaiters(t *testing.T) {
	c := NewResultCache(4)
	computing := make(chan struct{})
	var waiterInDo atomic.Bool

	waiterErr := make(chan error, 1)
	go func() {
		<-computing // the panicking computation has registered in-flight
		waiterInDo.Store(true)
		_, _, err := c.Do("k", func() (*sim.Result, error) {
			// Only reached if the waiter lost the race below and
			// recomputed; the nil error then fails the assertion.
			return fakeResult(1), nil
		})
		waiterErr <- err
	}()

	func() {
		defer func() { recover() }() // the panic still reaches the computing caller
		c.Do("k", func() (*sim.Result, error) {
			close(computing)
			// Panic only once the waiter is (microseconds from) blocking
			// on this flight; the sleep dwarfs its mutex acquisition.
			for !waiterInDo.Load() {
				time.Sleep(time.Millisecond)
			}
			time.Sleep(20 * time.Millisecond)
			panic("compute exploded")
		})
	}()

	select {
	case err := <-waiterErr:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("waiter got err = %v, want panic sentinel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never unblocked")
	}
	// The failed key must be retryable.
	res, _, err := c.Do("k", func() (*sim.Result, error) { return fakeResult(2), nil })
	if err != nil || res == nil {
		t.Fatalf("retry after panic: res=%v err=%v", res, err)
	}
}

// TestPoolEmptyAndDefaults: degenerate inputs behave.
func TestPoolEmptyAndDefaults(t *testing.T) {
	pool := NewPool(0, nil)
	if pool.Workers() < 1 {
		t.Errorf("workers = %d", pool.Workers())
	}
	results, err := pool.Run(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Errorf("empty run: %v %v", results, err)
	}
}
