package runner

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Hash builds canonical content-addressed keys. Callers feed every field
// that can influence a run's result through the typed writers; the
// length-prefixed, fixed-endian encoding guarantees that distinct field
// sequences cannot collide by concatenation (e.g. "ab"+"c" vs "a"+"bc").
// SHA-256 makes accidental collisions a non-concern for any realistic
// number of cached configurations.
type Hash struct {
	h   hash.Hash
	buf [8]byte
}

// NewHash returns an empty canonical hasher.
func NewHash() *Hash {
	return &Hash{h: sha256.New()}
}

// Uint64 appends a fixed-width integer.
func (h *Hash) Uint64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	h.h.Write(h.buf[:])
}

// Int appends an int.
func (h *Hash) Int(v int) { h.Uint64(uint64(int64(v))) }

// Bool appends a boolean.
func (h *Hash) Bool(v bool) {
	if v {
		h.Uint64(1)
	} else {
		h.Uint64(0)
	}
}

// Float64 appends a float by its exact bit pattern, so keys distinguish
// values that differ below formatting precision (and -0 from +0).
func (h *Hash) Float64(v float64) { h.Uint64(math.Float64bits(v)) }

// Floats appends a length-prefixed slice of floats.
func (h *Hash) Floats(vs []float64) {
	h.Int(len(vs))
	for _, v := range vs {
		h.Float64(v)
	}
}

// String appends a length-prefixed string.
func (h *Hash) String(s string) {
	h.Int(len(s))
	h.h.Write([]byte(s))
}

// Sum returns the hex digest of everything written so far.
func (h *Hash) Sum() string {
	return hex.EncodeToString(h.h.Sum(nil))
}
