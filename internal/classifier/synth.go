package classifier

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/vprof"
)

// This file synthesizes nsight-compute-style kernel profiles for
// applications of a given class archetype. The paper's deployment story
// (§III-A) assumes a stream of previously-unseen applications that must
// be profiled briefly and classified against the existing class
// centroids; this generator provides that stream for tests, examples and
// robustness studies without GPU hardware.

// Archetype parameterizes the kernel-profile distribution of one
// application class.
type Archetype struct {
	Class vprof.Class
	// FU is the dominant function unit of the archetype's hot kernels.
	FU FuncUnit
	// HotFU / HotDRAM parameterize the hot kernels' utilization ranges.
	HotFUMin, HotFUMax     float64
	HotDRAMMin, HotDRAMMax float64
	// Aux kernels (normalization, elementwise, reshapes) dilute the hot
	// kernels; these bounds govern their share of total runtime.
	AuxShareMin, AuxShareMax float64
}

// DefaultArchetypes returns archetypes matching the three paper classes:
// compute-bound (A), balanced language-model-like (B), and memory-bound
// (C).
func DefaultArchetypes() []Archetype {
	return []Archetype{
		{
			Class: vprof.ClassA, FU: FUSingle,
			HotFUMin: 8.0, HotFUMax: 9.9,
			HotDRAMMin: 0.15, HotDRAMMax: 0.35,
			AuxShareMin: 0.05, AuxShareMax: 0.20,
		},
		{
			Class: vprof.ClassB, FU: FUTensor,
			HotFUMin: 4.0, HotFUMax: 6.5,
			HotDRAMMin: 0.38, HotDRAMMax: 0.55,
			AuxShareMin: 0.15, AuxShareMax: 0.35,
		},
		{
			Class: vprof.ClassC, FU: FUSingle,
			HotFUMin: 0.8, HotFUMax: 2.5,
			HotDRAMMin: 0.60, HotDRAMMax: 0.80,
			AuxShareMin: 0.10, AuxShareMax: 0.30,
		},
	}
}

// Synthesize generates a plausible kernel profile for an application of
// the archetype. The result has 2-5 kernels whose runtime-weighted
// aggregates land inside the archetype's region of the classification
// plane. Deterministic in (archetype, name, r's stream position).
func Synthesize(a Archetype, name string, r *rng.RNG) AppMetrics {
	app := AppMetrics{Name: name}
	nHot := 1 + r.Intn(2)
	nAux := 1 + r.Intn(3)

	hotShare := 1.0 - (a.AuxShareMin + r.Float64()*(a.AuxShareMax-a.AuxShareMin))
	totalRuntime := 5.0 + r.Float64()*10

	for i := 0; i < nHot; i++ {
		k := Kernel{
			Name:    fmt.Sprintf("%s_hot%d", name, i),
			Runtime: totalRuntime * hotShare / float64(nHot),
			DRAMBW:  a.HotDRAMMin + r.Float64()*(a.HotDRAMMax-a.HotDRAMMin),
		}
		k.FUUtil[a.FU] = a.HotFUMin + r.Float64()*(a.HotFUMax-a.HotFUMin)
		// Secondary units see light traffic.
		for fu := FuncUnit(0); fu < numFuncUnits; fu++ {
			if fu != a.FU {
				k.FUUtil[fu] = r.Float64() * 1.2
			}
		}
		app.Kernels = append(app.Kernels, k)
	}
	for i := 0; i < nAux; i++ {
		k := Kernel{
			Name:    fmt.Sprintf("%s_aux%d", name, i),
			Runtime: totalRuntime * (1 - hotShare) / float64(nAux),
			DRAMBW:  0.45 + r.Float64()*0.25, // aux kernels are bandwidth-ish
		}
		k.FUUtil[FUSingle] = 1.0 + r.Float64()*2.5
		k.FUUtil[FUSpecial] = r.Float64() * 1.5
		app.Kernels = append(app.Kernels, k)
	}
	return app
}

// SynthesizeBatch generates count applications per archetype, returning
// them with their ground-truth classes for classifier robustness tests.
func SynthesizeBatch(archetypes []Archetype, count int, seed uint64) ([]AppMetrics, []vprof.Class) {
	r := rng.New(seed)
	var apps []AppMetrics
	var truth []vprof.Class
	for ai, a := range archetypes {
		stream := r.Split(uint64(ai))
		for i := 0; i < count; i++ {
			apps = append(apps, Synthesize(a, fmt.Sprintf("synth-%s-%d", a.Class, i), stream))
			truth = append(truth, a.Class)
		}
	}
	return apps, truth
}
