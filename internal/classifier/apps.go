package classifier

// Builtin application dataset reproducing Figure 3: the nine workloads
// the paper profiles, with kernel metrics synthesized so that each app's
// (PeakFUUtil, DRAMUtil) coordinates land where Figure 3 places them.
// Figure 3's clusters (K = 3), matching Table II's class assignments:
//   Class A (compute-intensive): sgemm, dcgan, vgg19, single_gpu_resnet,
//     multi_gpu_resnet  — high peak-FU utilization (~8-10), low-mid DRAM.
//   Class B: bert, lammps — mid FU (~4-6).
//   Class C (memory-bound): pagerank, pointnet — low FU, high DRAM.
//
// Each synthetic app gets 2-4 kernels whose runtime-weighted aggregates
// hit the target coordinates; the multi-kernel structure exercises the
// aggregation formulas of §III-A rather than hard-coding the points.

// kern is a shorthand constructor used by the builtin dataset.
func kern(name string, runtime, fp32, fp64, tex, sfu, tensor, dramBW float64) Kernel {
	k := Kernel{Name: name, Runtime: runtime, DRAMBW: dramBW}
	k.FUUtil[FUSingle] = fp32
	k.FUUtil[FUDouble] = fp64
	k.FUUtil[FUTexture] = tex
	k.FUUtil[FUSpecial] = sfu
	k.FUUtil[FUTensor] = tensor
	return k
}

// BuiltinApps returns the nine Figure-3 applications with synthetic
// kernel-level metrics. The slice is freshly allocated on each call.
func BuiltinApps() []AppMetrics {
	return []AppMetrics{
		{
			Name: "sgemm",
			Kernels: []Kernel{
				kern("sgemm_main", 9.0, 9.8, 0.1, 0.2, 0.1, 2.0, 0.18),
				kern("sgemm_tail", 1.0, 8.0, 0.1, 0.1, 0.1, 1.0, 0.15),
			},
		},
		{
			Name: "vgg19",
			Kernels: []Kernel{
				kern("conv_fwd", 6.0, 9.6, 0.0, 1.5, 0.4, 3.0, 0.28),
				kern("conv_bwd", 3.5, 9.2, 0.0, 1.2, 0.3, 2.5, 0.30),
				kern("fc", 0.5, 7.0, 0.0, 0.2, 0.1, 4.0, 0.35),
			},
		},
		{
			Name: "single_gpu_resnet",
			Kernels: []Kernel{
				kern("conv", 7.5, 9.6, 0.0, 1.8, 0.5, 3.5, 0.30),
				kern("bn", 1.0, 4.0, 0.0, 0.2, 1.5, 0.0, 0.55),
				kern("relu", 0.5, 3.0, 0.0, 0.1, 0.2, 0.0, 0.50),
			},
		},
		{
			Name: "multi_gpu_resnet",
			Kernels: []Kernel{
				kern("conv", 7.2, 9.5, 0.0, 1.8, 0.5, 3.5, 0.31),
				kern("bn", 1.0, 4.0, 0.0, 0.2, 1.5, 0.0, 0.55),
				kern("allreduce", 0.8, 1.0, 0.0, 0.0, 0.1, 0.0, 0.40),
			},
		},
		{
			Name: "dcgan",
			Kernels: []Kernel{
				kern("convT", 6.0, 8.6, 0.0, 1.0, 0.4, 2.0, 0.30),
				kern("disc_conv", 3.0, 8.0, 0.0, 1.2, 0.3, 1.8, 0.32),
			},
		},
		{
			Name: "bert",
			Kernels: []Kernel{
				kern("attn_matmul", 4.0, 6.2, 0.0, 0.1, 0.8, 4.5, 0.42),
				kern("softmax", 1.5, 2.5, 0.0, 0.0, 2.0, 0.0, 0.60),
				kern("layernorm", 1.5, 2.0, 0.0, 0.0, 0.6, 0.0, 0.62),
			},
		},
		{
			// PointNet is Class C in Table II: small point-cloud MLPs are
			// bound by gather/scatter memory traffic, not the FUs.
			Name: "pointnet",
			Kernels: []Kernel{
				kern("mlp", 2.0, 3.0, 0.0, 0.3, 0.5, 0.0, 0.60),
				kern("maxpool", 4.0, 1.5, 0.0, 0.1, 0.2, 0.0, 0.72),
				kern("tnet", 1.0, 2.5, 0.0, 0.2, 0.4, 0.0, 0.60),
			},
		},
		{
			Name: "lammps",
			Kernels: []Kernel{
				kern("pair_force", 5.0, 2.0, 5.2, 0.1, 1.8, 0.0, 0.45),
				kern("neigh_build", 2.0, 1.0, 2.0, 0.0, 0.5, 0.0, 0.58),
			},
		},
		{
			Name: "pagerank",
			Kernels: []Kernel{
				kern("spmv", 7.0, 1.2, 0.2, 0.1, 0.2, 0.0, 0.72),
				kern("rank_update", 3.0, 1.5, 0.1, 0.0, 0.1, 0.0, 0.68),
			},
		},
	}
}

// DefaultClassification classifies the builtin apps with K = 3, yielding
// the paper's Class A/B/C grouping. It panics only on internal error (the
// builtin dataset is a compile-time constant).
func DefaultClassification() *Classification {
	cl, err := Classify(BuiltinApps(), 3)
	if err != nil {
		panic(err)
	}
	return cl
}

// ModelClass maps the models used in the paper's real-cluster evaluation
// (Table II) and profiling set (Table III) to their classes. It is backed
// by the builtin classification; unknown names default to Class B
// (intermediate), mirroring a conservative operator choice.
func ModelClass(cl *Classification, model string) (class int, known bool) {
	if c, ok := cl.ClassOf(model); ok {
		return int(c), true
	}
	// Aliases used in traces and Table II.
	aliases := map[string]string{
		"resnet50":  "single_gpu_resnet",
		"resnet-50": "single_gpu_resnet",
		"gpt2":      "bert", // same class (language model, Class B) per Table II
		"vgg":       "vgg19",
	}
	if target, ok := aliases[model]; ok {
		if c, ok := cl.ClassOf(target); ok {
			return int(c), true
		}
	}
	return 1, false
}
