// Package classifier implements the paper's application classification
// layer (§III-A, Fig. 3): applications are placed in a two-dimensional
// DRAMUtil × PeakFUUtil space computed from kernel-level profiling
// metrics, then grouped into K ordered classes by K-Means. Class A is the
// most compute-intensive (most variability-sensitive) and the last class
// is the most memory-bound (least sensitive).
//
// The paper collects the kernel metrics with nsight compute; here the
// metrics come either from the builtin Figure-3 dataset (apps.go) or from
// the synthetic kernel-profile generator, both of which feed the exact
// formulas of §III-A.
package classifier

import (
	"fmt"
	"sort"

	"repro/internal/kmeans"
	"repro/internal/vprof"
)

// FuncUnit enumerates the GPU compute components whose utilization feeds
// PeakFUUtil: "single precision, double precision, texture, special and
// tensor function units".
type FuncUnit int

// The function units considered by the classifier.
const (
	FUSingle FuncUnit = iota
	FUDouble
	FUTexture
	FUSpecial
	FUTensor
	numFuncUnits
)

// String returns a short name for the function unit.
func (f FuncUnit) String() string {
	switch f {
	case FUSingle:
		return "fp32"
	case FUDouble:
		return "fp64"
	case FUTexture:
		return "tex"
	case FUSpecial:
		return "sfu"
	case FUTensor:
		return "tensor"
	}
	return fmt.Sprintf("fu(%d)", int(f))
}

// Kernel is one profiled kernel type of an application: its aggregate
// runtime share and its utilization of each function unit and of DRAM
// bandwidth, all in nsight compute's [0, 10] range.
type Kernel struct {
	Name    string
	Runtime float64               // total runtime of this kernel type (ms)
	FUUtil  [numFuncUnits]float64 // per-FU utilization, [0,10]
	DRAMBW  float64               // achieved DRAM bandwidth fraction, [0,1]
}

// AppMetrics is the kernel-level profile of one application.
type AppMetrics struct {
	Name    string
	Kernels []Kernel
}

// DRAMUtil computes the application's DRAM utilization per §III-A:
// runtime-weighted mean DRAM bandwidth fraction, scaled to [0,10]
// (DRAMUtil = DRAMBandwidth / DRAMPeakBandwidth * 10, aggregated over
// kernels weighted by runtime).
func (a AppMetrics) DRAMUtil() float64 {
	var num, den float64
	for _, k := range a.Kernels {
		num += k.Runtime * k.DRAMBW * 10
		den += k.Runtime
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// FUUtil computes the runtime-weighted utilization of one function unit
// per §III-A: sum_T(runtime * util_i) / sum_T(runtime * 10), scaled back
// to the [0,10] reporting range.
func (a AppMetrics) FUUtil(fu FuncUnit) float64 {
	var num, den float64
	for _, k := range a.Kernels {
		num += k.Runtime * k.FUUtil[fu]
		den += k.Runtime * 10
	}
	if den == 0 {
		return 0
	}
	// num/den is in [0,1]; report in [0,10] like nsight compute.
	return num / den * 10
}

// PeakFUUtil computes max over function units of FUUtil (§III-A).
func (a AppMetrics) PeakFUUtil() float64 {
	best := 0.0
	for fu := FuncUnit(0); fu < numFuncUnits; fu++ {
		if u := a.FUUtil(fu); u > best {
			best = u
		}
	}
	return best
}

// Point returns the application's coordinates in the classification
// space: (PeakFUUtil, DRAMUtil), matching Figure 3's axes.
func (a AppMetrics) Point() (peakFU, dramUtil float64) {
	return a.PeakFUUtil(), a.DRAMUtil()
}

// Classification maps application names to ordered variability classes.
type Classification struct {
	K       int
	classOf map[string]vprof.Class
	// Centers holds the K class centroids in (PeakFUUtil, DRAMUtil)
	// space, indexed by class, used to classify new applications.
	Centers [][2]float64
}

// ClassOf returns the class assigned to the named application and whether
// the application was part of the classified set.
func (c *Classification) ClassOf(name string) (vprof.Class, bool) {
	cl, ok := c.classOf[name]
	return cl, ok
}

// Apps returns the classified application names, sorted.
func (c *Classification) Apps() []string {
	names := make([]string, 0, len(c.classOf))
	for n := range c.classOf {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Classify groups the applications into k ordered classes with K-Means in
// the (PeakFUUtil, DRAMUtil) plane. Classes are ordered by compute
// intensity: the cluster with the highest centroid PeakFUUtil (ties broken
// by lower DRAMUtil) becomes Class A. With k=3 on the builtin Figure-3
// dataset this reproduces the paper's A/B/C assignment.
func Classify(apps []AppMetrics, k int) (*Classification, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("classifier: no applications to classify")
	}
	if k < 1 || k > len(apps) {
		return nil, fmt.Errorf("classifier: k=%d out of range for %d apps", k, len(apps))
	}
	points := make([][]float64, len(apps))
	for i, a := range apps {
		fu, dram := a.Point()
		points[i] = []float64{fu, dram}
	}
	res := kmeans.Cluster(points, k)

	// Order clusters by descending compute intensity. "Compute intensity"
	// here is how far the cluster leans toward the FU axis: high PeakFU
	// and low DRAM first (Class A), low PeakFU / high DRAM last.
	type ci struct {
		idx   int
		score float64
		fu    float64
		dram  float64
	}
	order := make([]ci, len(res.Centroids))
	for i, c := range res.Centroids {
		order[i] = ci{idx: i, score: c[0] - c[1], fu: c[0], dram: c[1]}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].score != order[b].score {
			return order[a].score > order[b].score
		}
		return order[a].fu > order[b].fu
	})
	remap := make([]vprof.Class, len(order))
	centers := make([][2]float64, len(order))
	for newIdx, o := range order {
		remap[o.idx] = vprof.Class(newIdx)
		centers[newIdx] = [2]float64{o.fu, o.dram}
	}

	cl := &Classification{
		K:       k,
		classOf: make(map[string]vprof.Class, len(apps)),
		Centers: centers,
	}
	for i, a := range apps {
		cl.classOf[a.Name] = remap[res.Assign[i]]
	}
	return cl, nil
}

// ClassifyNew assigns a previously unseen application to the nearest
// existing class centroid in the 2-D space (§III-A: "for a new
// application ... we profile the application and assign it to the cluster
// it is closest to").
func (c *Classification) ClassifyNew(app AppMetrics) vprof.Class {
	fu, dram := app.Point()
	best, bestD := 0, -1.0
	for i, ctr := range c.Centers {
		dx := fu - ctr[0]
		dy := dram - ctr[1]
		d := dx*dx + dy*dy
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return vprof.Class(best)
}
