package classifier_test

import (
	"fmt"

	"repro/internal/classifier"
)

// ExampleClassify groups the paper's nine profiled applications
// (Figure 3) into the three Table II classes.
func ExampleClassify() {
	cl, err := classifier.Classify(classifier.BuiltinApps(), 3)
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"resnet50", "sgemm", "bert", "pagerank"} {
		// resnet50 is a trace alias; the profiled app is single_gpu_resnet.
		lookup := name
		if name == "resnet50" {
			lookup = "single_gpu_resnet"
		}
		class, _ := cl.ClassOf(lookup)
		fmt.Printf("%s -> Class %s\n", name, class)
	}
	// Output:
	// resnet50 -> Class A
	// sgemm -> Class A
	// bert -> Class B
	// pagerank -> Class C
}

// ExampleClassification_ClassifyNew assigns an unseen application to the
// nearest existing class centroid — the §III-A workflow for new models
// arriving at the cluster.
func ExampleClassification_ClassifyNew() {
	cl, _ := classifier.Classify(classifier.BuiltinApps(), 3)
	newApp := classifier.AppMetrics{
		Name: "new-gemm-heavy",
		Kernels: []classifier.Kernel{
			{Name: "gemm", Runtime: 10, DRAMBW: 0.2,
				FUUtil: [5]float64{9.4, 0, 0, 0.2, 1.0}},
		},
	}
	fmt.Printf("Class %s\n", cl.ClassifyNew(newApp))
	// Output:
	// Class A
}
