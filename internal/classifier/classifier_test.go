package classifier

import (
	"math"
	"testing"

	"repro/internal/vprof"
)

func TestDRAMUtilFormula(t *testing.T) {
	// Two kernels: runtime 3 at 0.5 bandwidth fraction, runtime 1 at 0.9.
	app := AppMetrics{Name: "x", Kernels: []Kernel{
		kern("a", 3, 0, 0, 0, 0, 0, 0.5),
		kern("b", 1, 0, 0, 0, 0, 0, 0.9),
	}}
	want := (3*0.5*10 + 1*0.9*10) / 4
	if got := app.DRAMUtil(); math.Abs(got-want) > 1e-12 {
		t.Errorf("DRAMUtil = %v, want %v", got, want)
	}
}

func TestFUUtilFormula(t *testing.T) {
	// FU_util = sum(runtime*util) / sum(runtime*10) scaled to [0,10].
	app := AppMetrics{Name: "x", Kernels: []Kernel{
		kern("a", 2, 8, 0, 0, 0, 0, 0),
		kern("b", 2, 4, 0, 0, 0, 0, 0),
	}}
	want := (2*8.0 + 2*4.0) / (4 * 10) * 10 // = 6
	if got := app.FUUtil(FUSingle); math.Abs(got-want) > 1e-12 {
		t.Errorf("FUUtil = %v, want %v", got, want)
	}
}

func TestPeakFUUtilTakesMax(t *testing.T) {
	app := AppMetrics{Name: "x", Kernels: []Kernel{
		kern("a", 1, 3, 0, 0, 0, 9, 0),
	}}
	if got := app.PeakFUUtil(); math.Abs(got-9) > 1e-12 {
		t.Errorf("PeakFUUtil = %v, want 9 (tensor)", got)
	}
}

func TestEmptyAppMetrics(t *testing.T) {
	app := AppMetrics{Name: "empty"}
	if app.DRAMUtil() != 0 || app.PeakFUUtil() != 0 {
		t.Error("empty app should score 0")
	}
}

func TestFuncUnitString(t *testing.T) {
	names := map[FuncUnit]string{
		FUSingle: "fp32", FUDouble: "fp64", FUTexture: "tex",
		FUSpecial: "sfu", FUTensor: "tensor",
	}
	for fu, want := range names {
		if fu.String() != want {
			t.Errorf("%d.String() = %q, want %q", fu, fu.String(), want)
		}
	}
	if FuncUnit(42).String() == "" {
		t.Error("unknown FU should stringify")
	}
}

func TestBuiltinClassificationMatchesTableII(t *testing.T) {
	cl := DefaultClassification()
	want := map[string]vprof.Class{
		"sgemm":             vprof.ClassA,
		"vgg19":             vprof.ClassA,
		"dcgan":             vprof.ClassA,
		"single_gpu_resnet": vprof.ClassA,
		"multi_gpu_resnet":  vprof.ClassA,
		"bert":              vprof.ClassB,
		"lammps":            vprof.ClassB,
		"pagerank":          vprof.ClassC,
		"pointnet":          vprof.ClassC,
	}
	for app, wantClass := range want {
		got, ok := cl.ClassOf(app)
		if !ok {
			t.Errorf("%s not classified", app)
			continue
		}
		if got != wantClass {
			t.Errorf("%s classified %v, want %v", app, got, wantClass)
		}
	}
}

func TestClassifyErrors(t *testing.T) {
	if _, err := Classify(nil, 3); err == nil {
		t.Error("classifying nothing should error")
	}
	apps := BuiltinApps()
	if _, err := Classify(apps, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Classify(apps, len(apps)+1); err == nil {
		t.Error("k>n should error")
	}
}

func TestClassifyOrdering(t *testing.T) {
	// Class centroids must be ordered by descending compute intensity.
	cl := DefaultClassification()
	for i := 1; i < len(cl.Centers); i++ {
		prev := cl.Centers[i-1][0] - cl.Centers[i-1][1]
		cur := cl.Centers[i][0] - cl.Centers[i][1]
		if cur > prev {
			t.Errorf("class %d more compute-intense than class %d", i, i-1)
		}
	}
}

func TestClassifyNew(t *testing.T) {
	cl := DefaultClassification()
	// A synthetic compute-bound app lands in Class A.
	hot := AppMetrics{Name: "new-gemm", Kernels: []Kernel{
		kern("k", 1, 9.5, 0, 0, 0, 0, 0.2),
	}}
	if got := cl.ClassifyNew(hot); got != vprof.ClassA {
		t.Errorf("compute-bound new app classified %v", got)
	}
	// A memory-bound app lands in the last class.
	cold := AppMetrics{Name: "new-spmv", Kernels: []Kernel{
		kern("k", 1, 1.0, 0, 0, 0, 0, 0.75),
	}}
	if got := cl.ClassifyNew(cold); got != vprof.ClassC {
		t.Errorf("memory-bound new app classified %v", got)
	}
}

func TestApps(t *testing.T) {
	cl := DefaultClassification()
	apps := cl.Apps()
	if len(apps) != 9 {
		t.Errorf("Apps() = %d names", len(apps))
	}
	for i := 1; i < len(apps); i++ {
		if apps[i] < apps[i-1] {
			t.Error("Apps() not sorted")
		}
	}
}

func TestModelClassAliases(t *testing.T) {
	cl := DefaultClassification()
	cases := map[string]int{
		"resnet50": int(vprof.ClassA),
		"gpt2":     int(vprof.ClassB),
		"vgg":      int(vprof.ClassA),
		"pointnet": int(vprof.ClassC),
	}
	for model, want := range cases {
		got, known := ModelClass(cl, model)
		if !known {
			t.Errorf("%s unknown", model)
			continue
		}
		if got != want {
			t.Errorf("ModelClass(%s) = %d, want %d", model, got, want)
		}
	}
	if got, known := ModelClass(cl, "never-heard-of-it"); known || got != 1 {
		t.Errorf("unknown model = (%d, %v), want (1, false)", got, known)
	}
}

func TestTableIIModelClasses(t *testing.T) {
	// The six Table II models map to the classes the paper lists:
	// pointnet C; vgg19, dcgan, resnet50 A; bert, gpt2 B.
	cl := DefaultClassification()
	cases := map[string]int{
		"pointnet": 2, "vgg19": 0, "dcgan": 0, "bert": 1, "resnet50": 0, "gpt2": 1,
	}
	for model, want := range cases {
		if got, _ := ModelClass(cl, model); got != want {
			t.Errorf("Table II model %s class = %d, want %d", model, got, want)
		}
	}
}
