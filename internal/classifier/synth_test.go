package classifier

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/vprof"
)

func TestSynthesizeShape(t *testing.T) {
	r := rng.New(1)
	for _, a := range DefaultArchetypes() {
		app := Synthesize(a, "x", r)
		if len(app.Kernels) < 2 || len(app.Kernels) > 5 {
			t.Errorf("%s: %d kernels", a.Class, len(app.Kernels))
		}
		fu, dram := app.Point()
		if fu <= 0 || fu > 10 || dram <= 0 || dram > 10 {
			t.Errorf("%s: point (%v, %v) outside nsight range", a.Class, fu, dram)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := DefaultArchetypes()[0]
	x := Synthesize(a, "x", rng.New(7))
	y := Synthesize(a, "x", rng.New(7))
	if len(x.Kernels) != len(y.Kernels) {
		t.Fatal("kernel count differs")
	}
	for i := range x.Kernels {
		if x.Kernels[i] != y.Kernels[i] {
			t.Fatalf("kernel %d differs", i)
		}
	}
}

// TestClassifierRoundTrip: synthetic apps of each archetype, classified
// against the builtin Figure-3 centroids, must land in their ground-truth
// class with high accuracy — the §III-A "new application" workflow.
func TestClassifierRoundTrip(t *testing.T) {
	cl := DefaultClassification()
	apps, truth := SynthesizeBatch(DefaultArchetypes(), 40, 99)
	correct := 0
	for i, app := range apps {
		if cl.ClassifyNew(app) == truth[i] {
			correct++
		}
	}
	accuracy := float64(correct) / float64(len(apps))
	if accuracy < 0.9 {
		t.Errorf("round-trip accuracy = %.2f, want >= 0.9", accuracy)
	}
}

// TestClassifyFromScratchOnSynthetic: K-Means on a purely synthetic
// population recovers three ordered classes whose members match the
// archetypes.
func TestClassifyFromScratchOnSynthetic(t *testing.T) {
	apps, truth := SynthesizeBatch(DefaultArchetypes(), 25, 42)
	cl, err := Classify(apps, 3)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, app := range apps {
		got, ok := cl.ClassOf(app.Name)
		if !ok {
			t.Fatalf("app %s unclassified", app.Name)
		}
		if got == truth[i] {
			correct++
		}
	}
	accuracy := float64(correct) / float64(len(apps))
	if accuracy < 0.85 {
		t.Errorf("from-scratch accuracy = %.2f, want >= 0.85", accuracy)
	}
}

func TestSynthesizeBatchLabels(t *testing.T) {
	apps, truth := SynthesizeBatch(DefaultArchetypes(), 3, 1)
	if len(apps) != 9 || len(truth) != 9 {
		t.Fatalf("batch size %d/%d", len(apps), len(truth))
	}
	counts := map[vprof.Class]int{}
	for _, c := range truth {
		counts[c]++
	}
	for c, n := range counts {
		if n != 3 {
			t.Errorf("class %s count %d", c, n)
		}
	}
}
