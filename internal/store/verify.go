package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"

	"repro/internal/export"
)

// Problem is one verification finding.
type Problem struct {
	Key string
	Msg string
}

// String renders the problem for CLI output.
func (p Problem) String() string {
	return fmt.Sprintf("%s: %s", p.Key, p.Msg)
}

// Verify audits every stored object under a shared lock: the archived
// bytes must match the content hash recorded at Put time (bit rot,
// truncation and manual edits all surface here), the archive must
// decode under the current codec (format tag included), and every
// indexed object must still exist on disk. It returns the problems
// found; an empty slice is a clean store.
func (s *Store) Verify() ([]Problem, error) {
	l, err := s.acquire(false)
	if err != nil {
		return nil, err
	}
	defer l.release()

	keys, err := s.Keys()
	if err != nil {
		return nil, err
	}
	idx, err := s.loadIndexLocked()
	if err != nil {
		return nil, err
	}

	var problems []Problem
	onDisk := make(map[string]bool, len(keys))
	for _, key := range keys {
		onDisk[key] = true
		data, err := os.ReadFile(s.objectPath(key))
		if err != nil {
			problems = append(problems, Problem{Key: key, Msg: fmt.Sprintf("unreadable: %v", err)})
			continue
		}
		if e := idx[key]; e != nil && e.SHA256 != "" {
			// Size first: it is free and a mismatch (truncation,
			// concatenation) makes hashing pointless.
			if e.Size != int64(len(data)) {
				problems = append(problems, Problem{Key: key,
					Msg: fmt.Sprintf("size mismatch: object is %d bytes, index recorded %d", len(data), e.Size)})
				continue
			}
			sum := sha256.Sum256(data)
			if got := hex.EncodeToString(sum[:]); got != e.SHA256 {
				problems = append(problems, Problem{Key: key,
					Msg: fmt.Sprintf("content hash mismatch: object is %s, index recorded %s", got[:16], e.SHA256[:16])})
				continue
			}
		}
		if _, err := export.DecodeResult(bytes.NewReader(data)); err != nil {
			problems = append(problems, Problem{Key: key, Msg: fmt.Sprintf("undecodable: %v", err)})
		}
	}
	for key, e := range idx {
		// Only entries with a put record witness an object. An
		// access-only phantom (a touch that raced a GC compaction) is
		// bookkeeping noise the next compaction clears, not damage.
		if !onDisk[key] && !e.Created.IsZero() {
			problems = append(problems, Problem{Key: key, Msg: "indexed object missing from disk (deleted outside gc?)"})
		}
	}
	return problems, nil
}
