package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"

	"repro/internal/export"
)

// Problem is one verification finding.
type Problem struct {
	// Kind names the object tree the problem is in: "result" or
	// "snapshot".
	Kind string
	Key  string
	Msg  string
}

// String renders the problem for CLI output.
func (p Problem) String() string {
	if p.Kind != "" {
		return fmt.Sprintf("%s %s: %s", p.Kind, p.Key, p.Msg)
	}
	return fmt.Sprintf("%s: %s", p.Key, p.Msg)
}

// Verify audits every stored object under a shared lock: the archived
// bytes must match the content hash recorded at Put time (bit rot,
// truncation and manual edits all surface here), the archive must
// decode under the current codec (format tag included), and every
// indexed object must still exist on disk. Snapshot objects are audited
// with the same rigor against the snapshot codec. It returns the
// problems found; an empty slice is a clean store.
func (s *Store) Verify() ([]Problem, error) {
	problems, err := s.verifyTree("result", func(data []byte) error {
		_, err := export.DecodeResult(bytes.NewReader(data))
		return err
	})
	if err != nil {
		return nil, err
	}
	if s.hasSnapTree() {
		snapProblems, err := s.snapTree().verifyTree("snapshot", func(data []byte) error {
			_, err := export.DecodeSnapshot(bytes.NewReader(data))
			return err
		})
		if err != nil {
			return nil, err
		}
		problems = append(problems, snapProblems...)
	}
	return problems, nil
}

// verifyTree audits one object tree under its shared lock, decoding
// each object with the tree's codec.
func (s *Store) verifyTree(kind string, decode func([]byte) error) ([]Problem, error) {
	l, err := s.acquire(false)
	if err != nil {
		return nil, err
	}
	defer l.release()

	keys, err := s.Keys()
	if err != nil {
		return nil, err
	}
	idx, err := s.loadIndexLocked()
	if err != nil {
		return nil, err
	}

	var problems []Problem
	onDisk := make(map[string]bool, len(keys))
	for _, key := range keys {
		onDisk[key] = true
		data, err := os.ReadFile(s.objectPath(key))
		if err != nil {
			problems = append(problems, Problem{Kind: kind, Key: key, Msg: fmt.Sprintf("unreadable: %v", err)})
			continue
		}
		if e := idx[key]; e != nil && e.SHA256 != "" {
			// Size first: it is free and a mismatch (truncation,
			// concatenation) makes hashing pointless.
			if e.Size != int64(len(data)) {
				problems = append(problems, Problem{Kind: kind, Key: key,
					Msg: fmt.Sprintf("size mismatch: object is %d bytes, index recorded %d", len(data), e.Size)})
				continue
			}
			sum := sha256.Sum256(data)
			if got := hex.EncodeToString(sum[:]); got != e.SHA256 {
				problems = append(problems, Problem{Kind: kind, Key: key,
					Msg: fmt.Sprintf("content hash mismatch: object is %s, index recorded %s", got[:16], e.SHA256[:16])})
				continue
			}
		}
		if err := decode(data); err != nil {
			problems = append(problems, Problem{Kind: kind, Key: key, Msg: fmt.Sprintf("undecodable: %v", err)})
		}
	}
	for key, e := range idx {
		// Only entries with a put record witness an object. An
		// access-only phantom (a touch that raced a GC compaction) is
		// bookkeeping noise the next compaction clears, not damage.
		if !onDisk[key] && !e.Created.IsZero() {
			problems = append(problems, Problem{Kind: kind, Key: key, Msg: "indexed object missing from disk (deleted outside gc?)"})
		}
	}
	return problems, nil
}
