package store

import (
	"bytes"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/export"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// The store is the persistent tier behind the sweep's snapshot cache.
var _ runner.SnapshotBackend = (*Store)(nil)

// captureSpec runs tinySpec's configuration up to the horizon and
// returns the snapshot plus the straight-through result for comparison.
func captureSpec(t *testing.T, horizon int) (*sim.Snapshot, *sim.Result) {
	t.Helper()
	s, err := scenario.Parse([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := b.Config()
	if err != nil {
		t.Fatal(err)
	}
	snap, early, err := sim.Capture(cfg, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatalf("tiny run completed before horizon %d (early=%v)", horizon, early != nil)
	}
	straight, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	return snap, straight
}

// TestSnapshotStoreRoundTrip: a snapshot persisted and loaded back must
// deep-equal the captured one, re-encode to identical bytes, and resume
// into a result byte-identical to the straight-through run — the store
// must be a transparent waypoint.
func TestSnapshotStoreRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap, straight := captureSpec(t, 5)
	key := key64(1)
	if st.HasSnapshot(key) {
		t.Fatal("snapshot present before put")
	}
	if err := st.PutSnapshot(key, snap); err != nil {
		t.Fatal(err)
	}
	if !st.HasSnapshot(key) {
		t.Fatal("snapshot missing after put")
	}
	loaded, ok, err := st.GetSnapshot(key)
	if err != nil || !ok {
		t.Fatalf("get snapshot: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(snap, loaded) {
		t.Fatal("loaded snapshot not deep-equal to the captured one")
	}
	var a, b bytes.Buffer
	if err := export.EncodeSnapshot(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := export.EncodeSnapshot(&b, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-encoding the loaded snapshot changed the bytes")
	}

	// Resume from the stored copy: the forked result must match the
	// straight-through run bit for bit (PlaceTimes is wall-clock).
	s, err := scenario.Parse([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	built, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := built.Config()
	if err != nil {
		t.Fatal(err)
	}
	forked, err := sim.Resume(cfg, loaded)
	if err != nil {
		t.Fatal(err)
	}
	straight.PlaceTimes, forked.PlaceTimes = nil, nil
	var want, got bytes.Buffer
	if err := export.EncodeResult(&want, straight); err != nil {
		t.Fatal(err)
	}
	if err := export.EncodeResult(&got, forked); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("resume from stored snapshot not byte-identical to straight-through run")
	}
}

// TestSnapshotsInvisibleToResultListings: snapshot objects must never
// appear in the result tree's Keys/Infos/Len (palreport and palstore ls
// would miscount them as results).
func TestSnapshotsInvisibleToResultListings(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := runSpec(t, tinySpec)
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	snap, _ := captureSpec(t, 3)
	if err := st.PutSnapshot(key64(7), snap); err != nil {
		t.Fatal(err)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("result keys = %v, want exactly the one result key", keys)
	}
	snapKeys, err := st.SnapshotKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(snapKeys) != 1 || snapKeys[0] != key64(7) {
		t.Fatalf("snapshot keys = %v, want exactly the one snapshot key", snapKeys)
	}
	infos, err := st.SnapshotInfos()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Key != key64(7) || infos[0].Size <= 0 {
		t.Fatalf("snapshot infos = %+v", infos)
	}
}

// TestVerifyCoversSnapshots: verify must pass a store holding healthy
// snapshots and flag a corrupted snapshot object with its kind.
func TestVerifyCoversSnapshots(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := captureSpec(t, 4)
	key := key64(3)
	if err := st.PutSnapshot(key, snap); err != nil {
		t.Fatal(err)
	}
	problems, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("healthy store reported problems: %v", problems)
	}
	// Flip a byte mid-object: the content hash must catch it.
	path := st.snapTree().objectPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err = st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || problems[0].Kind != "snapshot" || problems[0].Key != key {
		t.Fatalf("problems = %v, want one snapshot finding for %s", problems, key[:16])
	}
}

// TestGCCoversSnapshots: the GC policy applies to the snapshot tree —
// a zero policy keeps snapshots, an age bound evicts stale ones — and
// results are untouched by snapshot eviction.
func TestGCCoversSnapshots(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := runSpec(t, tinySpec)
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	snap, _ := captureSpec(t, 4)
	if err := st.PutSnapshot(key64(9), snap); err != nil {
		t.Fatal(err)
	}
	rep, err := st.GC(GCPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != 2 || rep.Removed != 0 {
		t.Fatalf("zero-policy gc kept %d removed %d, want 2/0", rep.Kept, rep.Removed)
	}
	if !st.HasSnapshot(key64(9)) {
		t.Fatal("zero-policy gc evicted the snapshot")
	}
	// Everything is stale relative to a far-future reference time.
	rep, err = st.GC(GCPolicy{MaxAge: time.Minute, Now: time.Now().Add(24 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 2 {
		t.Fatalf("age gc removed %d, want both objects", rep.Removed)
	}
	if st.HasSnapshot(key64(9)) || st.Has(key) {
		t.Fatal("age gc left stale objects behind")
	}
}
