package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/decision"
	"repro/internal/export"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// The store is the persistence half of the content-addressed cache, so
// it is tested with the cache's own rigor: exact round trips (the same
// standard the engine's stepping byte-identity suites set), crash
// tolerance, and multi-handle concurrency.

// Compile-time check: the store plugs into the runner's cache as its
// second tier.
var _ runner.Backend = (*Store)(nil)

// runSpec parses, builds and runs a scenario, returning its canonical
// cache key and result.
func runSpec(t testing.TB, src string) (string, *sim.Result) {
	t.Helper()
	s, err := scenario.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	return b.Key(), res
}

// tinySpec is a fast scenario for tests that only need some result.
const tinySpec = `{"name": "tiny", "cluster": {"nodes": 2},
	"workload": {"source": "synthetic", "num_jobs": 12, "jobs_per_hour": 30},
	"policy": {"name": "packed-sticky"}}`

// key64 fabricates a distinct valid key (64 hex digits) per index.
func key64(i int) string {
	return fmt.Sprintf("%02x%062x", i%256, i)
}

// TestStoreRoundTripByteIdentical: a result computed live and the same
// result loaded back from the store must be exactly equal — every job
// field, aggregate, series, the full metrics payload and the full
// decision trace — and
// re-encoding the loaded result must reproduce the stored bytes
// bit-for-bit. Pinned on a Sia trace and a synthetic-bursty one (the
// two arrival regimes with the most engine traffic), with utilization,
// events and telemetry all enabled so every archived surface is
// exercised.
func TestStoreRoundTripByteIdentical(t *testing.T) {
	cases := map[string]string{
		"sia": `{"name": "sia-rt", "workload": {"source": "sia-philly", "workload": 5},
			"policy": {"name": "pal"}, "sched": {"name": "las"},
			"engine": {"record_utilization": true, "record_events": true},
			"metrics": {"enabled": true}, "decisions": {"enabled": true}}`,
		"bursty": `{"name": "bursty-rt", "cluster": {"nodes": 4},
			"workload": {"source": "synthetic", "arrivals": "bursty", "num_jobs": 80, "jobs_per_hour": 40},
			"policy": {"name": "random-sticky"}, "sched": {"name": "srtf"},
			"engine": {"record_utilization": true, "record_events": true},
			"metrics": {"enabled": true}, "decisions": {"enabled": true}}`,
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			key, live := runSpec(t, src)
			dir := t.TempDir()
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Put(key, live); err != nil {
				t.Fatal(err)
			}

			// A fresh handle on the same directory stands in for a second
			// process warm-starting from the store.
			st2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			loaded, ok, err := st2.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("stored object not found")
			}

			// Exact equality of everything but the sink pointers (live runs
			// carry a *metrics.Collector and a *decision.Recorder, loaded
			// ones ArchivedSinks)...
			liveCopy, loadedCopy := *live, *loaded
			liveCopy.Metrics, loadedCopy.Metrics = nil, nil
			liveCopy.Decisions, loadedCopy.Decisions = nil, nil
			if !reflect.DeepEqual(&liveCopy, &loadedCopy) {
				for i := range liveCopy.Jobs {
					if !reflect.DeepEqual(liveCopy.Jobs[i], loadedCopy.Jobs[i]) {
						t.Errorf("job %d diverged:\n live   %+v\n loaded %+v",
							i, *liveCopy.Jobs[i], *loadedCopy.Jobs[i])
						break
					}
				}
				t.Fatal("loaded result is not deep-equal to the live one")
			}
			// ...and of the payloads both sinks expose, series included.
			pl, pd := metrics.FromResult(live), metrics.FromResult(loaded)
			if pl == nil || pd == nil {
				t.Fatalf("payload missing: live=%v loaded=%v", pl != nil, pd != nil)
			}
			if !reflect.DeepEqual(pl, pd) {
				t.Fatal("metrics payloads diverged across the round trip")
			}
			// ...and of the decision traces both sinks expose, record for
			// record.
			tl, td := decision.FromResult(live), decision.FromResult(loaded)
			if tl == nil || td == nil {
				t.Fatalf("decision trace missing: live=%v loaded=%v", tl != nil, td != nil)
			}
			if len(tl.Records) == 0 {
				t.Fatal("live decision trace is empty; round trip is vacuous")
			}
			if !reflect.DeepEqual(tl, td) {
				t.Fatal("decision traces diverged across the round trip")
			}

			// Byte identity: the loaded result re-encodes to exactly the
			// stored bytes — the codec is a fixed point, so a re-Put (or a
			// verify pass) can never observe drift.
			stored, err := os.ReadFile(st.objectPath(key))
			if err != nil {
				t.Fatal(err)
			}
			var reenc bytes.Buffer
			if err := export.EncodeResult(&reenc, loaded); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(stored, reenc.Bytes()) {
				t.Fatalf("re-encoding the loaded result changed the bytes (%d vs %d)",
					len(stored), reenc.Len())
			}
		})
	}
}

func TestStoreBasics(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := runSpec(t, tinySpec)

	if _, ok, err := st.Get(key); err != nil || ok {
		t.Fatalf("empty store Get: ok=%v err=%v", ok, err)
	}
	if st.Has(key) {
		t.Fatal("empty store Has = true")
	}
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	if !st.Has(key) {
		t.Fatal("Has = false after Put")
	}
	// Idempotent re-Put.
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	n, err := st.Len()
	if err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
	keys, err := st.Keys()
	if err != nil || len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	info, ok, err := st.Info(key)
	if err != nil || !ok {
		t.Fatalf("Info: ok=%v err=%v", ok, err)
	}
	if info.Size <= 0 || info.SHA256 == "" || info.Created.IsZero() {
		t.Errorf("Info incomplete: %+v", info)
	}

	// Invalid keys are rejected before touching the filesystem.
	for _, bad := range []string{"", "abc", "XYZ", key[:63], key + "0", "../" + key[3:]} {
		if err := st.Put(bad, res); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", bad)
		}
		if _, _, err := st.Get(bad); err == nil {
			t.Errorf("Get(%q) accepted an invalid key", bad)
		}
	}
}

func TestStoreIsStore(t *testing.T) {
	dir := t.TempDir()
	if IsStore(dir) {
		t.Fatal("fresh directory detected as store")
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if !IsStore(dir) {
		t.Fatal("opened store not detected")
	}
}

func TestStoreGCAge(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, res := runSpec(t, tinySpec)
	for i := 0; i < 3; i++ {
		if err := st.Put(key64(i), res); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing is older than an hour yet.
	rep, err := st.GC(GCPolicy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 0 || rep.Kept != 3 {
		t.Fatalf("premature eviction: %+v", rep)
	}
	// From two hours in the future, everything is stale.
	rep, err = st.GC(GCPolicy{MaxAge: time.Hour, Now: time.Now().Add(2 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 3 || rep.Kept != 0 {
		t.Fatalf("age eviction: %+v", rep)
	}
	if n, _ := st.Len(); n != 0 {
		t.Fatalf("Len = %d after full GC", n)
	}
}

func TestStoreGCSizeEvictsLRU(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, res := runSpec(t, tinySpec)
	a, b, c := key64(10), key64(11), key64(12)
	for _, k := range []string{a, b, c} {
		if err := st.Put(k, res); err != nil {
			t.Fatal(err)
		}
	}
	// Refresh a: the eviction order must now be b, c (a is most recent).
	if _, ok, err := st.Get(a); err != nil || !ok {
		t.Fatalf("Get(a): ok=%v err=%v", ok, err)
	}
	info, _, err := st.Info(a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.GC(GCPolicy{MaxBytes: 2 * info.Size})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 1 || rep.Kept != 2 {
		t.Fatalf("size eviction: %+v", rep)
	}
	if st.Has(b) {
		t.Error("b (least recently used) survived")
	}
	if !st.Has(a) || !st.Has(c) {
		t.Errorf("wrong survivors: a=%v c=%v", st.Has(a), st.Has(c))
	}
	// The compacted index must still serve recency on the next GC.
	if _, _, err := st.Info(c); err != nil {
		t.Fatal(err)
	}
}

func TestStoreGCSweepsTempFiles(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := runSpec(t, tinySpec)
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	// A crashed writer's stale temp versus a live writer's fresh one:
	// only the stale one may be swept.
	shard := filepath.Dir(st.objectPath(key))
	stale := filepath.Join(shard, ".put-crashed.tmp")
	fresh := filepath.Join(shard, ".put-inflight.tmp")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tempMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GC(GCPolicy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("in-flight temp file was swept (age gate broken)")
	}
	if !st.Has(key) {
		t.Error("object evicted by a boundless GC")
	}
}

// TestStoreGCRemovesOrphanedVersions: a codec bump re-roots the store;
// GC reclaims the unreadable old tree (and only version-shaped
// directories).
func TestStoreGCRemovesOrphanedVersions(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, res := runSpec(t, tinySpec)
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	// Fabricate an old codec tree and an unrelated user directory.
	oldObj := filepath.Join(dir, "v0", "objects", "ab")
	if err := os.MkdirAll(oldObj, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(oldObj, key64(1)+".json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "notes")
	if err := os.MkdirAll(keep, 0o755); err != nil {
		t.Fatal(err)
	}
	// A NEWER version's tree (an upgraded binary's live store) must
	// survive a stale binary's GC.
	newer := filepath.Join(dir, "v999", "objects")
	if err := os.MkdirAll(newer, 0o755); err != nil {
		t.Fatal(err)
	}
	rep, err := st.GC(GCPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "v0")); !os.IsNotExist(err) {
		t.Error("orphaned v0 tree survived GC")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Error("non-version directory was removed")
	}
	if _, err := os.Stat(newer); err != nil {
		t.Error("a newer codec version's tree was removed by a stale binary's GC")
	}
	if !st.Has(key) {
		t.Error("current-version object was removed")
	}
	if rep.Removed != 1 {
		t.Errorf("report.Removed = %d, want 1 orphaned object", rep.Removed)
	}
}

// TestStorePutHealsCorruptObject: a corrupt object is replaced by a
// re-Put of the genuine result instead of being trusted forever.
func TestStorePutHealsCorruptObject(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := runSpec(t, tinySpec)
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.objectPath(key), []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(key); err == nil {
		t.Fatal("corrupt object decoded")
	}
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(key); err != nil || !ok {
		t.Fatalf("healed object unreadable: ok=%v err=%v", ok, err)
	}
	if problems, err := st.Verify(); err != nil || len(problems) != 0 {
		t.Errorf("verify after heal: problems=%v err=%v", problems, err)
	}
}

func TestStoreVerify(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := runSpec(t, tinySpec)
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	if problems, err := st.Verify(); err != nil || len(problems) != 0 {
		t.Fatalf("clean store: problems=%v err=%v", problems, err)
	}

	// Bit rot: flip one byte of the archive.
	corrupt := key64(1)
	if err := st.Put(corrupt, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(st.objectPath(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(st.objectPath(corrupt), data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Deletion outside gc: object indexed but gone.
	missing := key64(2)
	if err := st.Put(missing, res); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(st.objectPath(missing)); err != nil {
		t.Fatal(err)
	}
	// Unindexed garbage dropped at an object path.
	garbage := key64(3)
	if err := os.MkdirAll(filepath.Dir(st.objectPath(garbage)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.objectPath(garbage), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	problems, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]string{}
	for _, p := range problems {
		byKey[p.Key] = p.Msg
	}
	if len(problems) != 3 {
		t.Errorf("problems = %v, want 3", problems)
	}
	for key, want := range map[string]string{
		corrupt: "content hash mismatch",
		missing: "indexed object missing",
		garbage: "undecodable",
	} {
		if msg, ok := byKey[key]; !ok || !bytes.Contains([]byte(msg), []byte(want)) {
			t.Errorf("key %s: problem %q, want mention of %q", key[:8], msg, want)
		}
	}
}

// TestStoreConcurrentHandles hammers one directory through two Store
// handles (standing in for two palsweep processes) from 16 goroutines
// under -race: overlapping Puts and Gets over a small key space must
// never error, tear an object, or lose one.
func TestStoreConcurrentHandles(t *testing.T) {
	dir := t.TempDir()
	h1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, res := runSpec(t, tinySpec)

	const goroutines = 16
	const keySpace = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*8)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := h1
			if g%2 == 1 {
				st = h2
			}
			for i := 0; i < 8; i++ {
				key := key64(20 + (g+i)%keySpace)
				if err := st.Put(key, res); err != nil {
					errs <- err
					return
				}
				got, ok, err := st.Get(key)
				if err != nil {
					errs <- err
					return
				}
				if !ok || len(got.Jobs) != len(res.Jobs) {
					errs <- fmt.Errorf("goroutine %d: torn read: ok=%v", g, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n, _ := h1.Len(); n != keySpace {
		t.Errorf("Len = %d, want %d", n, keySpace)
	}
	if problems, err := h1.Verify(); err != nil || len(problems) != 0 {
		t.Errorf("post-stress verify: problems=%v err=%v", problems, err)
	}
}

// TestStoreShardContentionGridCells models two sweep shards meeting in
// one store directory: two handles concurrently Put overlapping but
// distinct grid cells, each side having simulated its cells
// independently (so the racing writes are equal-by-determinism, not
// pointer-identical). Afterwards every cell must load back
// byte-identical to the live computation (modulo PlaceTimes, the one
// wall-clock field) and the store must verify clean.
func TestStoreShardContentionGridCells(t *testing.T) {
	gridSrc := `{"name": "contend", "cluster": {"nodes": 2, "gpus_per_node": 4},
		"workload": {"source": "synthetic", "num_jobs": 12, "median_work_sec": 1800, "jobs_per_hour": 30},
		"grid": {"policies": ["pal", "packed-sticky"], "seeds": [1, 2, 3]}}`
	spec, err := scenario.Parse([]byte(gridSrc))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.ExpandGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("grid expanded to %d cells, want 6", len(cells))
	}

	// Simulate every cell twice, independently — one result set per
	// "process". Determinism makes the pairs equal except PlaceTimes.
	type cellRun struct {
		key  string
		resA *sim.Result
		resB *sim.Result
	}
	runs := make([]cellRun, len(cells))
	for i, c := range cells {
		src, err := c.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		keyA, resA := runSpec(t, string(src))
		keyB, resB := runSpec(t, string(src))
		if keyA != keyB {
			t.Fatalf("cell %s: independent builds keyed %s vs %s", c.Name, keyA, keyB)
		}
		runs[i] = cellRun{key: keyA, resA: resA, resB: resB}
	}

	dir := t.TempDir()
	h1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Handle 1 writes cells 0..3, handle 2 writes cells 2..5 — the
	// overlap (2, 3) races two valid encodings of the same key.
	var wg sync.WaitGroup
	errs := make(chan error, len(runs)*2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, r := range runs[:4] {
			if err := h1.Put(r.key, r.resA); err != nil {
				errs <- err
			}
		}
	}()
	go func() {
		defer wg.Done()
		for _, r := range runs[2:] {
			if err := h2.Put(r.key, r.resB); err != nil {
				errs <- err
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every cell is present exactly once and loads back byte-identical
	// to the live computation, whichever writer won the overlap.
	neutral := func(res *sim.Result) []byte {
		cp := *res
		cp.PlaceTimes = nil // wall-clock placement durations, the one nondeterministic field
		var buf bytes.Buffer
		if err := export.EncodeResult(&buf, &cp); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	h3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := h3.Len(); err != nil || n != len(runs) {
		t.Fatalf("Len = %d (err %v), want %d distinct cells", n, err, len(runs))
	}
	for i, r := range runs {
		if want := neutral(r.resA); !bytes.Equal(want, neutral(r.resB)) {
			t.Fatalf("cell %d: independent runs are not deterministic; contention check is vacuous", i)
		}
		got, ok, err := h3.Get(r.key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("cell %d (%s) missing after contended puts", i, cells[i].Name)
		}
		if !bytes.Equal(neutral(got), neutral(r.resA)) {
			t.Errorf("cell %d (%s): loaded result differs from the live computation", i, cells[i].Name)
		}
	}
	if problems, err := h3.Verify(); err != nil || len(problems) != 0 {
		t.Errorf("post-contention verify: problems=%v err=%v", problems, err)
	}
}

// TestStorePutRestoresLostIndexMetadata: a crash between rename and
// index append loses a put record; re-Putting the identical result must
// re-record the content hash so Verify's bit-rot check is restored.
func TestStorePutRestoresLostIndexMetadata(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := runSpec(t, tinySpec)
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(st.index); err != nil { // simulate the lost append
		t.Fatal(err)
	}
	if err := st.Put(key, res); err != nil { // identical bytes: no rewrite, but metadata returns
		t.Fatal(err)
	}
	info, ok, err := st.Info(key)
	if err != nil || !ok {
		t.Fatalf("Info: ok=%v err=%v", ok, err)
	}
	if info.SHA256 == "" {
		t.Fatal("put record not restored")
	}
	// The restored hash must be live: same-length corruption is caught.
	data, err := os.ReadFile(st.objectPath(key))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(st.objectPath(key), data, 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := st.Verify()
	if err != nil || len(problems) != 1 {
		t.Fatalf("problems=%v err=%v, want the restored hash to catch corruption", problems, err)
	}
}

// TestStoreIsStoreRoot: a store whose only tree belongs to an older
// codec must still be recognized (palstore gc reclaims it).
func TestStoreIsStoreRoot(t *testing.T) {
	dir := t.TempDir()
	if IsStoreRoot(dir) {
		t.Fatal("empty directory detected as store root")
	}
	if err := os.MkdirAll(filepath.Join(dir, "v0", "objects"), 0o755); err != nil {
		t.Fatal(err)
	}
	if IsStore(dir) {
		t.Fatal("old-version-only directory claims the current codec")
	}
	if !IsStoreRoot(dir) {
		t.Fatal("old-version store root not recognized")
	}
}

// TestStoreVerifyIgnoresAccessOnlyPhantoms: an access record whose
// object was GC-evicted (a touch racing a compaction) is bookkeeping
// noise, not damage — Verify must stay clean so the CI health gate
// cannot flake.
func TestStoreVerifyIgnoresAccessOnlyPhantoms(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := runSpec(t, tinySpec)
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	// Access record for a key with no object and no put record.
	phantom := key64(42)
	if err := st.appendIndexUnlocked(indexRecord{Op: opAccess, Key: phantom, UnixNano: time.Now().UnixNano()}); err != nil {
		t.Fatal(err)
	}
	if problems, err := st.Verify(); err != nil || len(problems) != 0 {
		t.Fatalf("phantom access flagged: problems=%v err=%v", problems, err)
	}
}

// TestStoreIndexTornLineTolerated: a crash mid-append leaves a partial
// trailing line; the store must keep working and GC must heal the index.
func TestStoreIndexTornLineTolerated(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := runSpec(t, tinySpec)
	if err := st.Put(key, res); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(st.index, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","key":"deadbeef`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, ok, err := st.Get(key); err != nil || !ok {
		t.Fatalf("Get after torn append: ok=%v err=%v", ok, err)
	}
	if _, err := st.GC(GCPolicy{}); err != nil {
		t.Fatal(err)
	}
	if problems, err := st.Verify(); err != nil || len(problems) != 0 {
		t.Fatalf("verify after heal: problems=%v err=%v", problems, err)
	}
}
