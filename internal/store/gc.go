package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// GCPolicy bounds the store. Zero values disable the corresponding
// bound; the zero policy keeps everything (GC then only compacts the
// index and sweeps stray temp files).
type GCPolicy struct {
	// MaxBytes caps the total size of stored objects; the
	// least-recently-accessed objects are evicted until the store fits.
	MaxBytes int64
	// MaxAge evicts objects whose last access is older than this.
	MaxAge time.Duration
	// Now overrides the reference time for age decisions (tests); zero
	// means time.Now().
	Now time.Time
}

// GCReport summarizes one compaction.
type GCReport struct {
	Kept, Removed         int
	KeptBytes, FreedBytes int64
}

// GC compacts the store under the exclusive lock: object trees left
// behind by older codec versions are removed, stale temp files from
// crashed writers are swept, objects violating the policy are deleted
// (oldest last-access first), and the append-only index is rewritten to
// exactly one record per surviving object. Concurrent readers and
// writers are safe throughout: readers see an object or a clean miss,
// and writers — which publish lock-free via rename — are protected by
// the temp sweep's age gate (only temps older than any plausible
// in-flight Put are removed) and by Put's shard-recreation retry.
func (s *Store) GC(p GCPolicy) (GCReport, error) {
	now := p.Now
	if now.IsZero() {
		now = time.Now()
	}
	report, err := s.gcTree(p, now)
	if err != nil {
		return report, err
	}
	// Snapshots share the policy and the root: reclaim trees orphaned by
	// a snapshot-codec bump, then compact the live snapshot tree exactly
	// like the result tree.
	report = addReports(report, s.sweepOrphanedSnapVersions())
	if s.hasSnapTree() {
		snapReport, err := s.snapTree().gcTree(p, now)
		report = addReports(report, snapReport)
		if err != nil {
			return report, err
		}
	}
	return report, nil
}

// addReports merges two compaction summaries.
func addReports(a, b GCReport) GCReport {
	return GCReport{
		Kept:       a.Kept + b.Kept,
		Removed:    a.Removed + b.Removed,
		KeptBytes:  a.KeptBytes + b.KeptBytes,
		FreedBytes: a.FreedBytes + b.FreedBytes,
	}
}

// gcTree compacts one object tree under its exclusive lock.
func (s *Store) gcTree(p GCPolicy, now time.Time) (GCReport, error) {
	l, err := s.acquire(true)
	if err != nil {
		return GCReport{}, err
	}
	defer l.release()

	keys, err := s.Keys()
	if err != nil {
		return GCReport{}, err
	}
	orphans := s.sweepOrphanedVersions()
	s.sweepTempFiles(now)
	idx, err := s.loadIndexLocked()
	if err != nil {
		return GCReport{}, err
	}

	type candidate struct {
		key  string
		info ObjectInfo
	}
	var objs []candidate
	var total int64
	for _, key := range keys {
		st, err := os.Stat(s.objectPath(key))
		if err != nil {
			continue
		}
		info := s.mergeInfo(key, st, idx[key])
		objs = append(objs, candidate{key: key, info: info})
		total += info.Size
	}

	doomed := make(map[string]bool)
	if p.MaxAge > 0 {
		cutoff := now.Add(-p.MaxAge)
		for _, o := range objs {
			if o.info.LastAccess.Before(cutoff) {
				doomed[o.key] = true
				total -= o.info.Size
			}
		}
	}
	if p.MaxBytes > 0 && total > p.MaxBytes {
		// Evict least-recently-accessed first; ties break on key so the
		// outcome is stable.
		sort.Slice(objs, func(i, j int) bool {
			if !objs[i].info.LastAccess.Equal(objs[j].info.LastAccess) {
				return objs[i].info.LastAccess.Before(objs[j].info.LastAccess)
			}
			return objs[i].key < objs[j].key
		})
		for _, o := range objs {
			if total <= p.MaxBytes {
				break
			}
			if doomed[o.key] {
				continue
			}
			doomed[o.key] = true
			total -= o.info.Size
		}
	}

	report := orphans
	survivors := make(map[string]*indexEntry, len(objs))
	for _, o := range objs {
		if doomed[o.key] {
			if err := os.Remove(s.objectPath(o.key)); err != nil && !os.IsNotExist(err) {
				return report, fmt.Errorf("store: gc: %w", err)
			}
			report.Removed++
			report.FreedBytes += o.info.Size
			continue
		}
		report.Kept++
		report.KeptBytes += o.info.Size
		survivors[o.key] = &indexEntry{
			Size:       o.info.Size,
			SHA256:     o.info.SHA256,
			Created:    o.info.Created,
			LastAccess: o.info.LastAccess,
		}
	}
	s.sweepEmptyShards()
	if err := s.writeIndexLocked(survivors); err != nil {
		return report, err
	}
	return report, nil
}

// tempMaxAge is how old a temp file must be before GC treats it as the
// leftover of a crashed writer. Puts are lock-free (they publish via
// rename), so a freshly created temp may belong to a live writer in
// another process; one that has sat for ten minutes cannot — a Put
// holds its temp for milliseconds.
const tempMaxAge = 10 * time.Minute

// sweepTempFiles removes stale leftovers of crashed atomic writes
// (".put-*" and ".index-*" temp names never survive a successful
// operation), age-gated so an in-flight writer's temp is never pulled
// out from under it.
func (s *Store) sweepTempFiles(now time.Time) {
	cutoff := now.Add(-tempMaxAge)
	for _, pattern := range []string{
		filepath.Join(s.objects, "*", ".put-*.tmp"),
		filepath.Join(s.dir, ".index-*.tmp"),
	} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			continue
		}
		for _, m := range matches {
			if st, err := os.Stat(m); err == nil && st.ModTime().Before(cutoff) {
				os.Remove(m)
			}
		}
	}
}

// sweepOrphanedVersions removes object trees of STRICTLY OLDER codec
// versions: a codec bump re-roots the store at a new version directory,
// and the superseded tree can never be read again by any current or
// future codebase — GC is the documented point at which it is
// reclaimed. Newer trees are left alone (a stale binary must never wipe
// the store of an upgraded one running beside it), as is anything not
// matching the store's own version naming (v<digits>), so unrelated
// files a user keeps next to the store survive.
func (s *Store) sweepOrphanedVersions() GCReport {
	var report GCReport
	current, ok := versionNum(filepath.Base(s.dir))
	if !ok {
		return report
	}
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return report
	}
	for _, e := range entries {
		n, ok := versionNum(e.Name())
		if !e.IsDir() || !ok || n >= current {
			continue
		}
		old := filepath.Join(s.root, e.Name())
		filepath.Walk(old, func(_ string, info os.FileInfo, err error) error {
			if err == nil && info.Mode().IsRegular() && filepath.Ext(info.Name()) == objectExt {
				report.Removed++
				report.FreedBytes += info.Size()
			}
			return nil
		})
		os.RemoveAll(old)
	}
	return report
}

// versionNum parses a codec-version directory name ("v1", "v12", ...).
func versionNum(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'v' {
		return 0, false
	}
	n := 0
	for i := 1; i < len(name); i++ {
		if name[i] < '0' || name[i] > '9' {
			return 0, false
		}
		n = n*10 + int(name[i]-'0')
	}
	return n, true
}

// sweepEmptyShards prunes shard directories emptied by eviction.
func (s *Store) sweepEmptyShards() {
	shards, err := os.ReadDir(s.objects)
	if err != nil {
		return
	}
	for _, shard := range shards {
		if shard.IsDir() {
			os.Remove(filepath.Join(s.objects, shard.Name())) // fails (harmlessly) unless empty
		}
	}
}
