package store

import (
	"fmt"
	"os"
)

// Advisory file locking scopes index mutations and GC/Verify scans: N
// concurrent palsweep processes (and goroutines within them) may share
// one store. Object reads and writes themselves need no lock — writes
// publish atomically via rename, and readers only ever see a complete
// object or none. The lock file is a dedicated empty file, so flock
// never contends with the index's own file handle lifecycle.
//
// On platforms without flock (see lock_fallback.go) locking degrades to
// a no-op: single-process use stays fully safe (atomic renames and
// O_APPEND writes), multi-process index updates may interleave, and the
// ground truth — the object files — is never at risk.

// fileLock is one held advisory lock.
type fileLock struct {
	f *os.File
}

// acquire takes the store lock, shared or exclusive, blocking until
// granted.
func (s *Store) acquire(exclusive bool) (*fileLock, error) {
	f, err := os.OpenFile(s.lock, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: lock: %w", err)
	}
	if err := flock(f, exclusive); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: lock: %w", err)
	}
	return &fileLock{f: f}, nil
}

// release drops the lock.
func (l *fileLock) release() {
	funlock(l.f)
	l.f.Close()
}
