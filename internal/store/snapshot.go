package store

// Engine snapshots persist beside results in a sibling versioned tree:
//
//	<root>/snap-<snapshot codec version>/objects/<k[:2]>/<key>.json
//	<root>/snap-<snapshot codec version>/index.jsonl
//	<root>/snap-<snapshot codec version>/lock
//
// The tree reuses the whole object/index/lock machinery of the result
// tree (a snapshot handle is just a second Store value rooted at the
// same directory), but is deliberately named "snap-v<n>", NOT "v<n>":
// the result tree's orphaned-version sweep reclaims only "v<digits>"
// siblings, so snapshots are invisible to it — they have their own
// orphan sweep keyed on the snapshot codec version. Result listings
// (Keys/Infos) likewise never see snapshot objects, because they scan
// only the result tree; palstore reports the two kinds side by side via
// SnapshotKeys/SnapshotInfos.
//
// Snapshot keys are content hashes of (prefix spec, horizon) computed
// by the scenario layer (scenario.ForkSpec), in the same 64-hex-digit
// space as result keys but never colliding in meaning: the trees are
// disjoint.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/export"
	"repro/internal/sim"
)

// snapVersionPrefix distinguishes snapshot trees from result trees in
// the shared store root.
const snapVersionPrefix = "snap-"

// snapVersionDir is the snapshot tree's directory name under the store
// root, versioned by the snapshot codec like the result tree is by the
// result codec.
const snapVersionDir = snapVersionPrefix + export.SnapshotFormatVersion

// snapTree returns the snapshot sub-store handle.
func (s *Store) snapTree() *Store {
	if s.snap == nil {
		// s is itself a snapshot handle; guard against misuse.
		panic("store: snapshot operation on a snapshot sub-handle")
	}
	return s.snap
}

// hasSnapTree reports whether the snapshot tree has been created (a
// store that never persisted a snapshot has none, and every snapshot
// read path treats that as a clean miss).
func (s *Store) hasSnapTree() bool {
	info, err := os.Stat(s.snapTree().objects)
	return err == nil && info.IsDir()
}

// PutSnapshot persists an engine snapshot under key with the same
// atomic-write and idempotent-rewrite contract as Put. The snapshot
// tree is created on first use.
func (s *Store) PutSnapshot(key string, snap *sim.Snapshot) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid snapshot key %q (want 64 hex digits)", key)
	}
	var buf bytes.Buffer
	if err := export.EncodeSnapshot(&buf, snap); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sub := s.snapTree()
	if err := os.MkdirAll(sub.objects, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return sub.putBytes(key, buf.Bytes())
}

// GetSnapshot loads the snapshot stored under key and refreshes its
// last-access time. A missing snapshot (or a store with no snapshot
// tree at all) is (nil, false, nil).
func (s *Store) GetSnapshot(key string) (*sim.Snapshot, bool, error) {
	return s.loadSnapshot(key, true)
}

// PeekSnapshot is GetSnapshot without the last-access refresh — the
// inspection path (palstore info), which must not rewrite GC recency.
func (s *Store) PeekSnapshot(key string) (*sim.Snapshot, bool, error) {
	return s.loadSnapshot(key, false)
}

func (s *Store) loadSnapshot(key string, touch bool) (*sim.Snapshot, bool, error) {
	if !validKey(key) {
		return nil, false, fmt.Errorf("store: invalid snapshot key %q (want 64 hex digits)", key)
	}
	sub := s.snapTree()
	data, err := os.ReadFile(sub.objectPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: %w", err)
	}
	snap, err := export.DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		return nil, false, fmt.Errorf("store: snapshot %s: %w", key, err)
	}
	if touch {
		sub.touch(key)
	}
	return snap, true, nil
}

// HasSnapshot reports whether a snapshot for key exists.
func (s *Store) HasSnapshot(key string) bool {
	return s.hasSnapTree() && s.snapTree().Has(key)
}

// SnapshotKeys returns every stored snapshot key, sorted. A store with
// no snapshot tree has none.
func (s *Store) SnapshotKeys() ([]string, error) {
	if !s.hasSnapTree() {
		return nil, nil
	}
	return s.snapTree().Keys()
}

// SnapshotInfos returns metadata for every stored snapshot, sorted by
// key (the snapshot counterpart of Infos).
func (s *Store) SnapshotInfos() ([]ObjectInfo, error) {
	if !s.hasSnapTree() {
		return nil, nil
	}
	return s.snapTree().Infos()
}

// sweepOrphanedSnapVersions removes snapshot trees of strictly older
// snapshot-codec versions, mirroring sweepOrphanedVersions for the
// result trees. Called by GC on the result handle.
func (s *Store) sweepOrphanedSnapVersions() GCReport {
	var report GCReport
	current, ok := versionNum(strings.TrimPrefix(snapVersionDir, snapVersionPrefix))
	if !ok {
		return report
	}
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return report
	}
	for _, e := range entries {
		name, found := strings.CutPrefix(e.Name(), snapVersionPrefix)
		if !e.IsDir() || !found {
			continue
		}
		n, ok := versionNum(name)
		if !ok || n >= current {
			continue
		}
		old := filepath.Join(s.root, e.Name())
		filepath.Walk(old, func(_ string, info os.FileInfo, err error) error {
			if err == nil && info.Mode().IsRegular() && filepath.Ext(info.Name()) == objectExt {
				report.Removed++
				report.FreedBytes += info.Size()
			}
			return nil
		})
		os.RemoveAll(old)
	}
	return report
}
