//go:build unix

package store

import (
	"os"
	"syscall"
)

// flock takes a BSD advisory lock on f, blocking until granted. Closing
// the file (release) drops the lock even if the process dies first, so
// a crashed holder can never wedge the store.
func flock(f *os.File, exclusive bool) error {
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	return syscall.Flock(int(f.Fd()), how)
}

// funlock releases the advisory lock.
func funlock(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
