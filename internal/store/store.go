// Package store is the persistent tier of the result cache: a
// crash-safe, content-addressed on-disk store for simulation results,
// keyed by the same canonical content hashes the in-memory cache uses
// (experiments.RunSpec.Key, scenario.Built.Key). Where runner.ResultCache
// makes one process warm, the store makes every later process warm:
// bit-reproducible simulations (the determinism invariant) never need to
// run twice on one machine, across palsweep/palsim invocations, CI runs
// and concurrent processes.
//
// On-disk layout, rooted at the directory handed to Open:
//
//	<root>/<codec-version>/objects/<k[:2]>/<key>.json   one archived result
//	<root>/<codec-version>/index.jsonl                  append-only metadata
//	<root>/<codec-version>/lock                         advisory-lock target
//
// The codec version (export.ResultFormatVersion) is a path component, so
// bumping the result codec orphans old artifacts instead of misreading
// them — and deliberately does NOT touch the simulation cache keys or
// their golden-key tests. Objects are written with temp-file + rename
// (atomic on POSIX), so a crash mid-Put can leave a stray temp file but
// never a torn object. The index is append-only JSONL — put records
// carry size/content-hash/creation time, access records refresh
// last-access for GC — and is advisory-flocked so N concurrent palsweep
// processes share one store safely; a torn trailing line (crash during
// append) is skipped on load, and objects missing from the index are
// reconstructed from file metadata. Store implements runner.Backend, so
// a ResultCache fronts it as tier 2 with single-flight intact.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/export"
	"repro/internal/sim"
)

// objectExt is the filename suffix of archived results.
const objectExt = ".json"

// Store is a handle on one on-disk result store. It is safe for
// concurrent use by multiple goroutines and — via advisory file locking
// on the index — by multiple processes. The zero value is not usable;
// construct with Open.
type Store struct {
	root    string // directory handed to Open
	dir     string // root/<codec version>
	objects string // dir/objects
	index   string // dir/index.jsonl
	lock    string // dir/lock

	// snap is the sibling sub-store holding engine snapshots at
	// root/snap-<snapshot codec version> (see snapshot.go). Its tree is
	// created lazily on the first PutSnapshot; nil on a snap handle
	// itself.
	snap *Store
}

// treeAt returns a store handle rooted at root whose versioned tree is
// root/<version>.
func treeAt(root, version string) *Store {
	dir := filepath.Join(root, version)
	return &Store{
		root:    root,
		dir:     dir,
		objects: filepath.Join(dir, "objects"),
		index:   filepath.Join(dir, "index.jsonl"),
		lock:    filepath.Join(dir, "lock"),
	}
}

// Open creates (if needed) and opens the store rooted at dir. The
// store's object tree lives under the current result-codec version; a
// directory populated by an older codec opens cleanly as an empty store
// for the new version, with the old objects left for GC.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	s := treeAt(dir, export.ResultFormatVersion)
	s.snap = treeAt(dir, snapVersionDir)
	if err := os.MkdirAll(s.objects, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return s, nil
}

// IsStore reports whether dir looks like a result store for the current
// codec version (palreport uses this to tell a store directory from a
// directory of payload files).
func IsStore(dir string) bool {
	info, err := os.Stat(filepath.Join(dir, export.ResultFormatVersion, "objects"))
	return err == nil && info.IsDir()
}

// IsStoreRoot reports whether dir holds a result store of ANY codec
// version. After a codec bump the current version's tree does not exist
// until the first write, but the directory is still a store — palstore
// must open it (gc is the documented way to reclaim the old tree).
func IsStoreRoot(dir string) bool {
	if IsStore(dir) {
		return true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if _, ok := versionNum(e.Name()); ok && e.IsDir() {
			if info, err := os.Stat(filepath.Join(dir, e.Name(), "objects")); err == nil && info.IsDir() {
				return true
			}
		}
	}
	return false
}

// Root returns the directory the store was opened on.
func (s *Store) Root() string { return s.root }

// Dir returns the versioned directory all state lives under.
func (s *Store) Dir() string { return s.dir }

// validKey reports whether key is a canonical content hash (the
// 64-hex-digit SHA-256 runner.Hash produces). Anything else is rejected
// before touching the filesystem: keys become path components.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// objectPath returns the sharded path of a key's object file.
func (s *Store) objectPath(key string) string {
	return filepath.Join(s.objects, key[:2], key+objectExt)
}

// Has reports whether an object for key exists.
func (s *Store) Has(key string) bool {
	if !validKey(key) {
		return false
	}
	_, err := os.Stat(s.objectPath(key))
	return err == nil
}

// ObjectSize returns the encoded size in bytes of the object stored
// under key, without decoding it or refreshing GC recency — one stat
// call. The journal's store probe uses it for size samples; absence is
// (0, false), never an error.
func (s *Store) ObjectSize(key string) (int64, bool) {
	if !validKey(key) {
		return 0, false
	}
	st, err := os.Stat(s.objectPath(key))
	if err != nil {
		return 0, false
	}
	return st.Size(), true
}

// Put persists a result under key. The write is atomic (temp file +
// rename in the object's shard directory) and idempotent: when the key
// already holds an object with the same content (the normal case — by
// the content-addressing invariant, equal keys mean equal results) only
// the index is touched. An existing object whose bytes differ — bit
// rot, truncation, a torn manual copy — is atomically replaced, so a
// re-simulated result self-heals the store instead of wedging the key.
// Implements runner.Backend.
func (s *Store) Put(key string, res *sim.Result) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q (want 64 hex digits)", key)
	}
	var buf bytes.Buffer
	if err := export.EncodeResult(&buf, res); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.putBytes(key, buf.Bytes())
}

// putBytes is the codec-agnostic body of Put: it publishes already
// encoded object bytes under key with the atomic-rename and indexing
// contract documented on Put. The caller has validated the key.
func (s *Store) putBytes(key string, data []byte) error {
	sum := sha256.Sum256(data)
	if existing, err := os.ReadFile(s.objectPath(key)); err == nil && bytes.Equal(existing, data) {
		// The object is already durable and identical. Normally only a
		// recency touch is due — but if the index lost this key's put
		// record (crash between rename and append), re-record the
		// metadata we just computed, restoring Verify's hash check.
		if idx, err := s.loadIndex(); err == nil {
			if e := idx[key]; e == nil || e.SHA256 == "" {
				now := time.Now()
				_ = s.appendIndex(indexRecord{
					Op:         opPut,
					Key:        key,
					Size:       int64(len(data)),
					SHA256:     hex.EncodeToString(sum[:]),
					UnixNano:   now.UnixNano(),
					AccessNano: now.UnixNano(),
				})
				return nil
			}
		}
		s.touch(key)
		return nil
	}
	shard := filepath.Dir(s.objectPath(key))
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(shard, ".put-*.tmp")
	if err != nil && os.IsNotExist(err) {
		// A concurrent GC may prune a shard directory it saw empty
		// between our MkdirAll and CreateTemp; recreate and retry once.
		if err = os.MkdirAll(shard, 0o755); err == nil {
			tmp, err = os.CreateTemp(shard, ".put-*.tmp")
		}
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Any failure past this point must not leave the temp file behind.
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	// Flush to stable storage before the rename publishes the object, so
	// a crash cannot expose a truncated file under a final name.
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp.Name(), s.objectPath(key)); err != nil {
		return cleanup(err)
	}
	now := time.Now()
	rec := indexRecord{
		Op:         opPut,
		Key:        key,
		Size:       int64(len(data)),
		SHA256:     hex.EncodeToString(sum[:]),
		UnixNano:   now.UnixNano(),
		AccessNano: now.UnixNano(),
	}
	// The object is durable at this point; a failed metadata append only
	// costs GC precision (the entry is reconstructed from file metadata),
	// so the error is deliberately dropped.
	_ = s.appendIndex(rec)
	return nil
}

// Get loads the result stored under key and refreshes its last-access
// time (a cache read is a use — GC's LRU order follows Get). A missing
// object is (nil, false, nil); a present-but-unreadable one is an error
// (run `palstore verify`). Implements runner.Backend.
func (s *Store) Get(key string) (*sim.Result, bool, error) {
	return s.load(key, true)
}

// Peek is Get without the last-access refresh: the read path for
// inspection and reporting (palstore info/export, palreport), which
// must not rewrite GC recency just by looking.
func (s *Store) Peek(key string) (*sim.Result, bool, error) {
	return s.load(key, false)
}

func (s *Store) load(key string, touch bool) (*sim.Result, bool, error) {
	if !validKey(key) {
		return nil, false, fmt.Errorf("store: invalid key %q (want 64 hex digits)", key)
	}
	f, err := os.Open(s.objectPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	res, err := export.DecodeResult(f)
	if err != nil {
		return nil, false, fmt.Errorf("store: object %s: %w", key, err)
	}
	if touch {
		s.touch(key)
	}
	return res, true, nil
}

// touch appends a last-access record for key, best-effort and lock-free
// (see appendIndexUnlocked): GC precision is not worth failing — or
// serializing — reads over.
func (s *Store) touch(key string) {
	_ = s.appendIndexUnlocked(indexRecord{Op: opAccess, Key: key, UnixNano: time.Now().UnixNano()})
}

// Keys returns every stored key, sorted.
func (s *Store) Keys() ([]string, error) {
	shards, err := os.ReadDir(s.objects)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var keys []string
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.objects, shard.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || filepath.Ext(name) != objectExt {
				continue
			}
			key := name[:len(name)-len(objectExt)]
			if validKey(key) && key[:2] == shard.Name() {
				keys = append(keys, key)
			}
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Len returns the number of stored objects.
func (s *Store) Len() (int, error) {
	keys, err := s.Keys()
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

// ObjectInfo is one stored object's metadata, merged from the object
// file and the index.
type ObjectInfo struct {
	Key  string
	Size int64
	// SHA256 is the content hash of the archived bytes recorded at Put
	// time; empty when the index lost the put record (Verify then checks
	// decodability only).
	SHA256     string
	Created    time.Time
	LastAccess time.Time
}

// Info returns metadata for one stored key.
func (s *Store) Info(key string) (ObjectInfo, bool, error) {
	if !validKey(key) {
		return ObjectInfo{}, false, fmt.Errorf("store: invalid key %q (want 64 hex digits)", key)
	}
	st, err := os.Stat(s.objectPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return ObjectInfo{}, false, nil
		}
		return ObjectInfo{}, false, fmt.Errorf("store: %w", err)
	}
	idx, err := s.loadIndex()
	if err != nil {
		return ObjectInfo{}, false, err
	}
	return s.mergeInfo(key, st, idx[key]), true, nil
}

// Infos returns metadata for every stored object, sorted by key.
func (s *Store) Infos() ([]ObjectInfo, error) {
	keys, err := s.Keys()
	if err != nil {
		return nil, err
	}
	idx, err := s.loadIndex()
	if err != nil {
		return nil, err
	}
	out := make([]ObjectInfo, 0, len(keys))
	for _, key := range keys {
		st, err := os.Stat(s.objectPath(key))
		if err != nil {
			continue // raced with a concurrent GC
		}
		out = append(out, s.mergeInfo(key, st, idx[key]))
	}
	return out, nil
}

// mergeInfo combines file metadata with the key's index entry; a
// missing entry (lost index, crash between rename and append) falls
// back to file times.
func (s *Store) mergeInfo(key string, st os.FileInfo, e *indexEntry) ObjectInfo {
	info := ObjectInfo{Key: key, Size: st.Size(), Created: st.ModTime(), LastAccess: st.ModTime()}
	if e != nil {
		info.SHA256 = e.SHA256
		if !e.Created.IsZero() {
			info.Created = e.Created
		}
		if !e.LastAccess.IsZero() {
			info.LastAccess = e.LastAccess
		}
	}
	return info
}
