package store

import (
	"testing"
	"time"
)

// BenchmarkStoreWarmStart quantifies what the persistent tier buys: the
// wall-clock of simulating a scenario cold (run + encode + atomic write)
// versus serving it warm from the store (read + decode). CI archives the
// reported metrics as BENCH_store.json alongside the engine and
// telemetry bench trajectories. Run with
//
//	go test -bench=BenchmarkStoreWarmStart -benchtime=1x ./internal/store
func BenchmarkStoreWarmStart(b *testing.B) {
	// A saturated, preemption-heavy cell (2000 bursty jobs contending for
	// 8 GPUs under LAS) where even the incremental engine pays real
	// simulation time — the regime in which a sweep actually hurts and
	// warm-starting matters. Telemetry is on so the archive carries its
	// full payload.
	const spec = `{"name": "warm-bench", "cluster": {"nodes": 2},
		"workload": {"source": "synthetic", "arrivals": "bursty", "num_jobs": 2000, "jobs_per_hour": 60},
		"policy": {"name": "pal"}, "sched": {"name": "las"},
		"metrics": {"enabled": true}}`
	for i := 0; i < b.N; i++ {
		st, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}

		t0 := time.Now()
		key, res := runSpec(b, spec)
		if err := st.Put(key, res); err != nil {
			b.Fatal(err)
		}
		cold := time.Since(t0)

		t0 = time.Now()
		loaded, ok, err := st.Get(key)
		if err != nil {
			b.Fatal(err)
		}
		warm := time.Since(t0)
		if !ok || len(loaded.Jobs) != len(res.Jobs) {
			b.Fatal("warm read returned a different result shape")
		}

		b.ReportMetric(cold.Seconds()*1000, "cold-ms")
		b.ReportMetric(warm.Seconds()*1000, "warm-ms")
		b.ReportMetric(cold.Seconds()/warm.Seconds(), "warm-speedup")
	}
}
