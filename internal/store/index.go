package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// The index is append-only JSONL: cheap to update under concurrent
// writers (one flocked O_APPEND write per record), reconstructible when
// lost (objects are the ground truth; the index only adds content
// hashes and access times), and compacted by GC into one put record per
// surviving object.

// Index record operations.
const (
	opPut    = "put"    // object written: size, content hash, creation time
	opAccess = "access" // object read: refreshes last-access for GC
)

// indexRecord is one JSONL line.
type indexRecord struct {
	Op     string `json:"op"`
	Key    string `json:"key"`
	Size   int64  `json:"size,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
	// UnixNano is the record's event time in nanoseconds since the epoch:
	// creation for put records, access time for access records.
	// Nanosecond resolution keeps GC's recency ordering exact even for
	// puts landing within one second.
	UnixNano int64 `json:"unix_ns"`
	// AccessNano carries the last-access time on compacted put records,
	// so a rewritten index preserves GC recency.
	AccessNano int64 `json:"access_ns,omitempty"`
}

// indexEntry is the folded per-key state of the index.
type indexEntry struct {
	Size       int64
	SHA256     string
	Created    time.Time
	LastAccess time.Time
}

// appendIndex appends one record under the exclusive advisory lock —
// the path for put records, whose metadata (content hash, size,
// creation time) should never be lost to a racing compaction.
func (s *Store) appendIndex(rec indexRecord) error {
	l, err := s.acquire(true)
	if err != nil {
		return err
	}
	defer l.release()
	return s.appendIndexUnlocked(rec)
}

// appendIndexUnlocked appends one record with a single O_APPEND write
// and no lock. Access records take this path so warm-start reads never
// serialize on the store lock: a one-line O_APPEND write is atomic on
// local filesystems, a torn interleaving is skipped on load, and the
// worst race (an append landing on the pre-compaction inode during a
// concurrent GC rewrite) loses nothing but one recency update.
func (s *Store) appendIndexUnlocked(rec indexRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: index record: %w", err)
	}
	line = append(line, '\n')
	f, err := os.OpenFile(s.index, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: index: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("store: index append: %w", err)
	}
	return f.Close()
}

// loadIndex reads and folds the index under a shared lock.
func (s *Store) loadIndex() (map[string]*indexEntry, error) {
	l, err := s.acquire(false)
	if err != nil {
		return nil, err
	}
	defer l.release()
	return s.loadIndexLocked()
}

// loadIndexLocked reads and folds the index; the caller holds the lock.
// Unparsable lines are skipped rather than fatal: the only way one
// arises is a torn append (crash mid-write), and the object files remain
// the ground truth.
func (s *Store) loadIndexLocked() (map[string]*indexEntry, error) {
	data, err := os.ReadFile(s.index)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]*indexEntry{}, nil
		}
		return nil, fmt.Errorf("store: index: %w", err)
	}
	entries := make(map[string]*indexEntry)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec indexRecord
		if err := json.Unmarshal(line, &rec); err != nil || !validKey(rec.Key) {
			continue // torn or foreign line; objects are the ground truth
		}
		e := entries[rec.Key]
		if e == nil {
			e = &indexEntry{}
			entries[rec.Key] = e
		}
		switch rec.Op {
		case opPut:
			e.Size = rec.Size
			e.SHA256 = rec.SHA256
			e.Created = time.Unix(0, rec.UnixNano)
			access := rec.AccessNano
			if access == 0 {
				access = rec.UnixNano
			}
			if t := time.Unix(0, access); t.After(e.LastAccess) {
				e.LastAccess = t
			}
		case opAccess:
			if t := time.Unix(0, rec.UnixNano); t.After(e.LastAccess) {
				e.LastAccess = t
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: index: %w", err)
	}
	return entries, nil
}

// writeIndexLocked atomically replaces the index with one compacted put
// record per entry, in key order. The caller holds the exclusive lock.
func (s *Store) writeIndexLocked(entries map[string]*indexEntry) error {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		e := entries[k]
		line, err := json.Marshal(indexRecord{
			Op:         opPut,
			Key:        k,
			Size:       e.Size,
			SHA256:     e.SHA256,
			UnixNano:   e.Created.UnixNano(),
			AccessNano: e.LastAccess.UnixNano(),
		})
		if err != nil {
			return fmt.Errorf("store: index record: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.index), ".index-*.tmp")
	if err != nil {
		return fmt.Errorf("store: index: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: index: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: index: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.index); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: index: %w", err)
	}
	return nil
}
