//go:build !unix

package store

import "os"

// Non-unix platforms have no flock in the standard library and this
// repository takes no external dependencies, so cross-process advisory
// locking degrades to a no-op there (see the discussion in lock.go:
// object integrity never depends on the lock, only index metadata
// precision does).
func flock(*os.File, bool) error { return nil }

func funlock(*os.File) {}
