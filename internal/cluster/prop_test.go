package cluster

import (
	"testing"

	"repro/internal/rng"
)

// Property test for the incremental occupancy indexes: random
// Allocate/Release sequences over a spread of topologies must keep
// NumFree, FreeOnNode, FreeOnRack and FreeGPUs consistent with a
// from-scratch recount of the bitmap after every operation, and
// CheckInvariants must agree. Randomness derives from rng.Split
// sub-streams so every failure is reproducible from the printed seed.

// recount is the reference: per-node and per-rack free counts recomputed
// from the bitmap alone.
func recount(c *Cluster) (total int, node []int, rack []int) {
	node = make([]int, c.NumNodes())
	rack = make([]int, c.NumRacks())
	for g := 0; g < c.Size(); g++ {
		if c.IsFree(GPUID(g)) {
			total++
			node[c.NodeOf(GPUID(g))]++
			rack[c.RackOf(GPUID(g))]++
		}
	}
	return total, node, rack
}

func checkAgainstRecount(t *testing.T, c *Cluster, step int) {
	t.Helper()
	total, node, rack := recount(c)
	if c.NumFree() != total {
		t.Fatalf("step %d: NumFree=%d, recount=%d", step, c.NumFree(), total)
	}
	for n := range node {
		if got := c.FreeOnNode(NodeID(n)); got != node[n] {
			t.Fatalf("step %d: FreeOnNode(%d)=%d, recount=%d", step, n, got, node[n])
		}
	}
	for r := range rack {
		if got := c.FreeOnRack(r); got != rack[r] {
			t.Fatalf("step %d: FreeOnRack(%d)=%d, recount=%d", step, r, got, rack[r])
		}
	}
	free := c.FreeGPUs()
	if len(free) != total {
		t.Fatalf("step %d: FreeGPUs returned %d IDs, recount=%d", step, len(free), total)
	}
	for i, g := range free {
		if !c.IsFree(g) {
			t.Fatalf("step %d: FreeGPUs returned busy GPU %d", step, g)
		}
		if i > 0 && free[i-1] >= g {
			t.Fatalf("step %d: FreeGPUs not strictly ascending at index %d", step, i)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("step %d: %v", step, err)
	}
}

// spannedRef counts distinct nodes/racks with maps, the reference the
// allocation-free implementations must match.
func spannedRef(c *Cluster, gpus []GPUID) (nodes, racks int) {
	ns := map[NodeID]struct{}{}
	rs := map[int]struct{}{}
	for _, g := range gpus {
		ns[c.NodeOf(g)] = struct{}{}
		rs[c.RackOf(g)] = struct{}{}
	}
	return len(ns), len(rs)
}

func TestOccupancyIndexesMatchRecount(t *testing.T) {
	topologies := []Topology{
		{NumNodes: 1, GPUsPerNode: 4},
		{NumNodes: 16, GPUsPerNode: 4},
		{NumNodes: 16, GPUsPerNode: 4, NodesPerRack: 4},
		{NumNodes: 13, GPUsPerNode: 3, NodesPerRack: 5}, // partial last rack
		{NumNodes: 104, GPUsPerNode: 4, NodesPerRack: 8},
		{NumNodes: 40, GPUsPerNode: 8, NodesPerRack: 3}, // >16 racks on wide allocs
	}
	root := rng.New(0xC10C)
	for ti, topo := range topologies {
		stream := root.Split(uint64(ti))
		c := New(topo)
		// held tracks live allocations: job ID -> GPUs.
		held := map[int][]GPUID{}
		heldIDs := []int{}
		nextJob := 0
		const steps = 2000
		for step := 0; step < steps; step++ {
			allocate := len(heldIDs) == 0 ||
				(c.NumFree() > 0 && stream.Float64() < 0.55)
			if allocate {
				want := 1 + stream.Intn(c.NumFree())
				if limit := topo.Size() / 2; want > limit && limit > 0 {
					want = limit
				}
				free := c.FreeGPUs()
				stream.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
				gpus := append([]GPUID(nil), free[:want]...)
				c.Allocate(nextJob, gpus)
				held[nextJob] = gpus
				heldIDs = append(heldIDs, nextJob)
				nextJob++

				wantNodes, wantRacks := spannedRef(c, gpus)
				if got := c.NodesSpanned(gpus); got != wantNodes {
					t.Fatalf("topo %d step %d: NodesSpanned=%d, reference=%d", ti, step, got, wantNodes)
				}
				if got := c.RacksSpanned(gpus); got != wantRacks {
					t.Fatalf("topo %d step %d: RacksSpanned=%d, reference=%d", ti, step, got, wantRacks)
				}
			} else {
				pick := stream.Intn(len(heldIDs))
				id := heldIDs[pick]
				c.Release(held[id])
				delete(held, id)
				heldIDs[pick] = heldIDs[len(heldIDs)-1]
				heldIDs = heldIDs[:len(heldIDs)-1]
			}
			// Recounting every step is O(Size); the topologies are small
			// enough that the full audit stays fast.
			checkAgainstRecount(t, c, step)
		}
		// Drain and confirm the indexes return to the pristine state.
		for _, id := range heldIDs {
			c.Release(held[id])
		}
		checkAgainstRecount(t, c, steps)
		if c.NumFree() != topo.Size() {
			t.Fatalf("topo %d: drained cluster has %d free, want %d", ti, c.NumFree(), topo.Size())
		}
	}
}

func TestResetRestoresIndexes(t *testing.T) {
	topo := Topology{NumNodes: 6, GPUsPerNode: 4, NodesPerRack: 4}
	c := New(topo)
	c.Allocate(1, []GPUID{0, 1, 5, 9, 23})
	c.Reset()
	checkAgainstRecount(t, c, 0)
	if c.NumFree() != topo.Size() {
		t.Fatalf("Reset left %d free, want %d", c.NumFree(), topo.Size())
	}
}
