package cluster

import (
	"testing"
	"testing/quick"
)

func testTopo() Topology { return Topology{NumNodes: 4, GPUsPerNode: 4} }

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		topo Topology
		ok   bool
	}{
		{Topology{NumNodes: 1, GPUsPerNode: 1}, true},
		{Topology{NumNodes: 16, GPUsPerNode: 4, NodesPerRack: 8}, true},
		{Topology{NumNodes: 0, GPUsPerNode: 4}, false},
		{Topology{NumNodes: 4, GPUsPerNode: 0}, false},
		{Topology{NumNodes: 4, GPUsPerNode: 4, NodesPerRack: -1}, false},
	}
	for _, c := range cases {
		err := c.topo.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) err=%v, ok=%v", c.topo, err, c.ok)
		}
	}
}

func TestTopologySize(t *testing.T) {
	if got := testTopo().Size(); got != 16 {
		t.Errorf("Size = %d, want 16", got)
	}
}

func TestNewAllFree(t *testing.T) {
	c := New(testTopo())
	if c.NumFree() != 16 {
		t.Errorf("NumFree = %d", c.NumFree())
	}
	if len(c.FreeGPUs()) != 16 {
		t.Errorf("FreeGPUs len = %d", len(c.FreeGPUs()))
	}
	for g := 0; g < 16; g++ {
		if !c.IsFree(GPUID(g)) || c.Owner(GPUID(g)) != -1 {
			t.Errorf("GPU %d not free/unowned at start", g)
		}
	}
}

func TestNodeOf(t *testing.T) {
	c := New(testTopo())
	cases := map[GPUID]NodeID{0: 0, 3: 0, 4: 1, 15: 3}
	for g, want := range cases {
		if got := c.NodeOf(g); got != want {
			t.Errorf("NodeOf(%d) = %d, want %d", g, got, want)
		}
	}
}

func TestRackOf(t *testing.T) {
	c := New(Topology{NumNodes: 4, GPUsPerNode: 4, NodesPerRack: 2})
	if c.RackOf(0) != 0 || c.RackOf(7) != 0 {
		t.Error("GPUs 0-7 should be rack 0")
	}
	if c.RackOf(8) != 1 || c.RackOf(15) != 1 {
		t.Error("GPUs 8-15 should be rack 1")
	}
	flat := New(testTopo())
	if flat.RackOf(15) != 0 {
		t.Error("no rack grouping should mean rack 0 everywhere")
	}
}

func TestGPUsOnNode(t *testing.T) {
	c := New(testTopo())
	got := c.GPUsOnNode(2)
	want := []GPUID{8, 9, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GPUsOnNode(2) = %v, want %v", got, want)
		}
	}
}

func TestAllocateRelease(t *testing.T) {
	c := New(testTopo())
	c.Allocate(7, []GPUID{1, 5, 9})
	if c.NumFree() != 13 {
		t.Errorf("NumFree after alloc = %d", c.NumFree())
	}
	if c.Owner(5) != 7 || c.IsFree(5) {
		t.Error("GPU 5 should be owned by job 7")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c.Release([]GPUID{1, 5, 9})
	if c.NumFree() != 16 {
		t.Errorf("NumFree after release = %d", c.NumFree())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleAllocatePanics(t *testing.T) {
	c := New(testTopo())
	c.Allocate(1, []GPUID{0})
	defer func() {
		if recover() == nil {
			t.Fatal("double allocation did not panic")
		}
	}()
	c.Allocate(2, []GPUID{0})
}

func TestDoubleReleasePanics(t *testing.T) {
	c := New(testTopo())
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	c.Release([]GPUID{0})
}

func TestAllocateAtomicOnPanic(t *testing.T) {
	c := New(testTopo())
	c.Allocate(1, []GPUID{2})
	func() {
		defer func() { recover() }()
		c.Allocate(2, []GPUID{0, 1, 2}) // 2 is busy: must not partially allocate
	}()
	if !c.IsFree(0) || !c.IsFree(1) {
		t.Error("failed allocation partially committed")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeOnNode(t *testing.T) {
	c := New(testTopo())
	c.Allocate(1, []GPUID{4, 5})
	if got := c.FreeOnNode(1); got != 2 {
		t.Errorf("FreeOnNode(1) = %d, want 2", got)
	}
	if got := c.FreeOnNode(0); got != 4 {
		t.Errorf("FreeOnNode(0) = %d, want 4", got)
	}
}

func TestNodesSpanned(t *testing.T) {
	c := New(testTopo())
	cases := []struct {
		gpus []GPUID
		want int
	}{
		{nil, 0},
		{[]GPUID{0, 1, 2, 3}, 1},
		{[]GPUID{0, 4}, 2},
		{[]GPUID{0, 5, 10, 15}, 4},
	}
	for _, cse := range cases {
		if got := c.NodesSpanned(cse.gpus); got != cse.want {
			t.Errorf("NodesSpanned(%v) = %d, want %d", cse.gpus, got, cse.want)
		}
	}
}

func TestRacksSpanned(t *testing.T) {
	c := New(Topology{NumNodes: 4, GPUsPerNode: 4, NodesPerRack: 2})
	if got := c.RacksSpanned([]GPUID{0, 7}); got != 1 {
		t.Errorf("RacksSpanned same rack = %d", got)
	}
	if got := c.RacksSpanned([]GPUID{0, 8}); got != 2 {
		t.Errorf("RacksSpanned cross rack = %d", got)
	}
	if got := c.RacksSpanned(nil); got != 0 {
		t.Errorf("RacksSpanned(nil) = %d", got)
	}
}

func TestReset(t *testing.T) {
	c := New(testTopo())
	c.Allocate(3, []GPUID{0, 1})
	c.Reset()
	if c.NumFree() != 16 || c.Owner(0) != -1 {
		t.Error("Reset did not free everything")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocationSequenceProperty drives random allocate/release sequences
// and checks the cluster invariants after every step.
func TestAllocationSequenceProperty(t *testing.T) {
	check := func(ops []uint8) bool {
		c := New(testTopo())
		held := map[int][]GPUID{}
		nextJob := 0
		for _, op := range ops {
			if op%2 == 0 {
				// Allocate 1-4 GPUs if available.
				want := int(op/2)%4 + 1
				free := c.FreeGPUs()
				if len(free) < want {
					continue
				}
				c.Allocate(nextJob, free[:want])
				held[nextJob] = free[:want]
				nextJob++
			} else {
				for id, gpus := range held {
					c.Release(gpus)
					delete(held, id)
					break
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("invariant violation: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
