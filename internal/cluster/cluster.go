// Package cluster models the GPU cluster that the scheduler allocates
// from: a two-level topology of nodes each holding a fixed number of GPUs,
// plus the free/busy allocation state the placement policies manipulate.
//
// The model matches the systems the paper evaluates on (TACC Frontera and
// Longhorn: 4 GPUs per node, flat fat-tree interconnect). Following the
// paper's simplified locality model (§III-C1), a job suffers no locality
// penalty if its allocation fits within one node and a constant penalty
// L_across if it spans nodes. An optional rack level is supported as an
// extension for deeper L×V matrices.
package cluster

import "fmt"

// GPUID identifies a GPU within a cluster; IDs are dense in [0, Size).
type GPUID int

// NodeID identifies a node within a cluster; IDs are dense in [0, NumNodes).
type NodeID int

// Topology describes the shape of a cluster.
type Topology struct {
	NumNodes     int // number of nodes
	GPUsPerNode  int // identical GPUs per node
	NodesPerRack int // optional rack grouping; 0 or >= NumNodes means a single rack
}

// Size returns the total number of GPUs described by the topology.
func (t Topology) Size() int { return t.NumNodes * t.GPUsPerNode }

// Validate reports whether the topology is well formed.
func (t Topology) Validate() error {
	if t.NumNodes <= 0 {
		return fmt.Errorf("cluster: NumNodes must be positive, got %d", t.NumNodes)
	}
	if t.GPUsPerNode <= 0 {
		return fmt.Errorf("cluster: GPUsPerNode must be positive, got %d", t.GPUsPerNode)
	}
	if t.NodesPerRack < 0 {
		return fmt.Errorf("cluster: NodesPerRack must be non-negative, got %d", t.NodesPerRack)
	}
	return nil
}

// Cluster is the allocatable state of a GPU cluster. It tracks which GPUs
// are free and which job owns each busy GPU. Cluster is not safe for
// concurrent use; the round-based engine drives it from a single goroutine.
type Cluster struct {
	topo  Topology
	free  []bool // free[g] reports whether GPU g is unallocated
	owner []int  // owner[g] is the job ID holding GPU g, or -1
	nfree int
}

// New creates a cluster with the given topology, all GPUs free.
// It panics if the topology is invalid (a programming error, not an input
// error: topologies are fixed in experiment configs).
func New(topo Topology) *Cluster {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	n := topo.Size()
	c := &Cluster{
		topo:  topo,
		free:  make([]bool, n),
		owner: make([]int, n),
		nfree: n,
	}
	for i := range c.free {
		c.free[i] = true
		c.owner[i] = -1
	}
	return c
}

// Topology returns the cluster's topology.
func (c *Cluster) Topology() Topology { return c.topo }

// Size returns the total number of GPUs.
func (c *Cluster) Size() int { return len(c.free) }

// NumNodes returns the number of nodes.
func (c *Cluster) NumNodes() int { return c.topo.NumNodes }

// GPUsPerNode returns the number of GPUs per node.
func (c *Cluster) GPUsPerNode() int { return c.topo.GPUsPerNode }

// NodeOf returns the node hosting GPU g.
func (c *Cluster) NodeOf(g GPUID) NodeID {
	return NodeID(int(g) / c.topo.GPUsPerNode)
}

// RackOf returns the rack hosting GPU g. With no rack grouping configured
// every GPU is in rack 0.
func (c *Cluster) RackOf(g GPUID) int {
	if c.topo.NodesPerRack <= 0 {
		return 0
	}
	return int(c.NodeOf(g)) / c.topo.NodesPerRack
}

// GPUsOnNode returns the IDs of all GPUs on node n, in ascending order.
func (c *Cluster) GPUsOnNode(n NodeID) []GPUID {
	out := make([]GPUID, c.topo.GPUsPerNode)
	base := int(n) * c.topo.GPUsPerNode
	for i := range out {
		out[i] = GPUID(base + i)
	}
	return out
}

// NumFree returns the number of free GPUs.
func (c *Cluster) NumFree() int { return c.nfree }

// IsFree reports whether GPU g is free.
func (c *Cluster) IsFree(g GPUID) bool { return c.free[g] }

// Owner returns the job ID currently holding GPU g, or -1 if g is free.
func (c *Cluster) Owner(g GPUID) int { return c.owner[g] }

// FreeGPUs returns the IDs of all free GPUs in ascending order. The
// returned slice is freshly allocated; callers may reorder it.
func (c *Cluster) FreeGPUs() []GPUID {
	out := make([]GPUID, 0, c.nfree)
	for g, f := range c.free {
		if f {
			out = append(out, GPUID(g))
		}
	}
	return out
}

// FreeOnNode returns the number of free GPUs on node n.
func (c *Cluster) FreeOnNode(n NodeID) int {
	count := 0
	base := int(n) * c.topo.GPUsPerNode
	for i := 0; i < c.topo.GPUsPerNode; i++ {
		if c.free[base+i] {
			count++
		}
	}
	return count
}

// Allocate marks the given GPUs as owned by job jobID. It panics if any
// GPU is already allocated: placement policies must only hand out free
// GPUs, and a violation indicates a policy bug rather than a recoverable
// condition.
func (c *Cluster) Allocate(jobID int, gpus []GPUID) {
	for _, g := range gpus {
		if !c.free[g] {
			panic(fmt.Sprintf("cluster: GPU %d already allocated to job %d (allocating for job %d)",
				g, c.owner[g], jobID))
		}
	}
	for _, g := range gpus {
		c.free[g] = false
		c.owner[g] = jobID
		c.nfree--
	}
}

// Release frees the given GPUs. It panics if any GPU is already free,
// which would indicate double-release in the engine.
func (c *Cluster) Release(gpus []GPUID) {
	for _, g := range gpus {
		if c.free[g] {
			panic(fmt.Sprintf("cluster: GPU %d released twice", g))
		}
	}
	for _, g := range gpus {
		c.free[g] = true
		c.owner[g] = -1
		c.nfree++
	}
}

// NodesSpanned returns the number of distinct nodes covered by the given
// GPU set. The locality model charges L_across whenever this exceeds 1.
func (c *Cluster) NodesSpanned(gpus []GPUID) int {
	if len(gpus) == 0 {
		return 0
	}
	seen := make(map[NodeID]struct{}, 4)
	for _, g := range gpus {
		seen[c.NodeOf(g)] = struct{}{}
	}
	return len(seen)
}

// RacksSpanned returns the number of distinct racks covered by the given
// GPU set (extension for three-level locality).
func (c *Cluster) RacksSpanned(gpus []GPUID) int {
	if len(gpus) == 0 {
		return 0
	}
	seen := make(map[int]struct{}, 4)
	for _, g := range gpus {
		seen[c.RackOf(g)] = struct{}{}
	}
	return len(seen)
}

// Reset frees every GPU, returning the cluster to its initial state.
func (c *Cluster) Reset() {
	for i := range c.free {
		c.free[i] = true
		c.owner[i] = -1
	}
	c.nfree = len(c.free)
}

// CheckInvariants verifies internal consistency (free count matches the
// free bitmap; owners are -1 exactly on free GPUs). It is used by tests
// and returns an error describing the first violation found.
func (c *Cluster) CheckInvariants() error {
	count := 0
	for g, f := range c.free {
		if f {
			count++
			if c.owner[g] != -1 {
				return fmt.Errorf("cluster: free GPU %d has owner %d", g, c.owner[g])
			}
		} else if c.owner[g] < 0 {
			return fmt.Errorf("cluster: busy GPU %d has no owner", g)
		}
	}
	if count != c.nfree {
		return fmt.Errorf("cluster: free count %d != bitmap count %d", c.nfree, count)
	}
	return nil
}
