// Package cluster models the GPU cluster that the scheduler allocates
// from: a two-level topology of nodes each holding a fixed number of GPUs,
// plus the free/busy allocation state the placement policies manipulate.
//
// The model matches the systems the paper evaluates on (TACC Frontera and
// Longhorn: 4 GPUs per node, flat fat-tree interconnect). Following the
// paper's simplified locality model (§III-C1), a job suffers no locality
// penalty if its allocation fits within one node and a constant penalty
// L_across if it spans nodes. An optional rack level is supported as an
// extension for deeper L×V matrices.
//
// Occupancy is indexed incrementally: Allocate and Release maintain
// free-GPU counts per node and per rack alongside the flat bitmap, so the
// occupancy queries the placement policies issue every round — NumFree,
// FreeOnNode, FreeOnRack, and the busy-node skip inside FreeGPUs — cost
// O(1) per node instead of rescanning the whole cluster. Placers consume
// that surface through the read-only View interface; only the engine
// holds the mutable *Cluster.
package cluster

import "fmt"

// GPUID identifies a GPU within a cluster; IDs are dense in [0, Size).
type GPUID int

// NodeID identifies a node within a cluster; IDs are dense in [0, NumNodes).
type NodeID int

// Topology describes the shape of a cluster.
type Topology struct {
	NumNodes     int // number of nodes
	GPUsPerNode  int // identical GPUs per node
	NodesPerRack int // optional rack grouping; 0 or >= NumNodes means a single rack
}

// Size returns the total number of GPUs described by the topology.
func (t Topology) Size() int { return t.NumNodes * t.GPUsPerNode }

// NumRacks returns the number of racks the topology groups its nodes
// into (1 when no rack grouping is configured).
func (t Topology) NumRacks() int {
	if t.NodesPerRack <= 0 {
		return 1
	}
	return (t.NumNodes + t.NodesPerRack - 1) / t.NodesPerRack
}

// Validate reports whether the topology is well formed.
func (t Topology) Validate() error {
	if t.NumNodes <= 0 {
		return fmt.Errorf("cluster: NumNodes must be positive, got %d", t.NumNodes)
	}
	if t.GPUsPerNode <= 0 {
		return fmt.Errorf("cluster: GPUsPerNode must be positive, got %d", t.GPUsPerNode)
	}
	if t.NodesPerRack < 0 {
		return fmt.Errorf("cluster: NodesPerRack must be non-negative, got %d", t.NodesPerRack)
	}
	return nil
}

// View is the read-only query surface placement policies work against.
// *Cluster implements it; the engine passes its cluster to placers, and
// every allocation-*choosing* helper (PackJob, the score-order walks in
// internal/core, ...) is typed against View so the compiler separates
// querying occupancy from mutating it. All methods are O(1) or bounded
// by their output/argument size — none rescans the whole cluster.
type View interface {
	// Shape.
	Topology() Topology
	Size() int
	NumNodes() int
	GPUsPerNode() int
	NumRacks() int
	NodeOf(g GPUID) NodeID
	RackOf(g GPUID) int
	GPUsOnNode(n NodeID) []GPUID

	// Occupancy, answered from the incremental indexes.
	NumFree() int
	FreeOnNode(n NodeID) int
	FreeOnRack(r int) int
	IsFree(g GPUID) bool
	Owner(g GPUID) int
	FreeGPUs() []GPUID

	// Span accounting for the locality model.
	NodesSpanned(gpus []GPUID) int
	RacksSpanned(gpus []GPUID) int
}

// Cluster is the allocatable state of a GPU cluster. It tracks which GPUs
// are free and which job owns each busy GPU, plus incrementally-maintained
// free counts per node and per rack. Cluster is not safe for concurrent
// use; the round-based engine drives it from a single goroutine.
type Cluster struct {
	topo  Topology
	free  []bool // free[g] reports whether GPU g is unallocated
	owner []int  // owner[g] is the job ID holding GPU g, or -1
	nfree int

	// Occupancy indexes, updated on every Allocate/Release.
	freeNode []int // freeNode[n] counts free GPUs on node n
	freeRack []int // freeRack[r] counts free GPUs in rack r
}

var _ View = (*Cluster)(nil)

// New creates a cluster with the given topology, all GPUs free.
// It panics if the topology is invalid (a programming error, not an input
// error: topologies are fixed in experiment configs).
func New(topo Topology) *Cluster {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	n := topo.Size()
	c := &Cluster{
		topo:     topo,
		free:     make([]bool, n),
		owner:    make([]int, n),
		nfree:    n,
		freeNode: make([]int, topo.NumNodes),
		freeRack: make([]int, topo.NumRacks()),
	}
	for i := range c.free {
		c.free[i] = true
		c.owner[i] = -1
	}
	for n := range c.freeNode {
		c.freeNode[n] = topo.GPUsPerNode
	}
	for r := range c.freeRack {
		c.freeRack[r] = c.rackSize(r)
	}
	return c
}

// rackSize returns the number of GPUs rack r holds (the last rack may be
// partial).
func (c *Cluster) rackSize(r int) int {
	if c.topo.NodesPerRack <= 0 {
		return c.topo.Size()
	}
	nodes := c.topo.NodesPerRack
	if first := r * c.topo.NodesPerRack; first+nodes > c.topo.NumNodes {
		nodes = c.topo.NumNodes - first
	}
	return nodes * c.topo.GPUsPerNode
}

// Topology returns the cluster's topology.
func (c *Cluster) Topology() Topology { return c.topo }

// Size returns the total number of GPUs.
func (c *Cluster) Size() int { return len(c.free) }

// NumNodes returns the number of nodes.
func (c *Cluster) NumNodes() int { return c.topo.NumNodes }

// GPUsPerNode returns the number of GPUs per node.
func (c *Cluster) GPUsPerNode() int { return c.topo.GPUsPerNode }

// NumRacks returns the number of racks (1 when no rack grouping is
// configured).
func (c *Cluster) NumRacks() int { return len(c.freeRack) }

// NodeOf returns the node hosting GPU g.
func (c *Cluster) NodeOf(g GPUID) NodeID {
	return NodeID(int(g) / c.topo.GPUsPerNode)
}

// RackOf returns the rack hosting GPU g. With no rack grouping configured
// every GPU is in rack 0.
func (c *Cluster) RackOf(g GPUID) int {
	if c.topo.NodesPerRack <= 0 {
		return 0
	}
	return int(c.NodeOf(g)) / c.topo.NodesPerRack
}

// rackOfNode returns the rack hosting node n.
func (c *Cluster) rackOfNode(n NodeID) int {
	if c.topo.NodesPerRack <= 0 {
		return 0
	}
	return int(n) / c.topo.NodesPerRack
}

// GPUsOnNode returns the IDs of all GPUs on node n, in ascending order.
func (c *Cluster) GPUsOnNode(n NodeID) []GPUID {
	out := make([]GPUID, c.topo.GPUsPerNode)
	base := int(n) * c.topo.GPUsPerNode
	for i := range out {
		out[i] = GPUID(base + i)
	}
	return out
}

// NumFree returns the number of free GPUs.
func (c *Cluster) NumFree() int { return c.nfree }

// IsFree reports whether GPU g is free.
func (c *Cluster) IsFree(g GPUID) bool { return c.free[g] }

// Owner returns the job ID currently holding GPU g, or -1 if g is free.
func (c *Cluster) Owner(g GPUID) int { return c.owner[g] }

// FreeGPUs returns the IDs of all free GPUs in ascending order. The
// returned slice is freshly allocated; callers may reorder it. Fully-busy
// nodes are skipped via the per-node index, so the scan is bounded by
// NumNodes plus the free GPUs actually returned rather than cluster size.
func (c *Cluster) FreeGPUs() []GPUID {
	out := make([]GPUID, 0, c.nfree)
	per := c.topo.GPUsPerNode
	for n, nf := range c.freeNode {
		if nf == 0 {
			continue
		}
		base := n * per
		for i := 0; i < per; i++ {
			if c.free[base+i] {
				out = append(out, GPUID(base+i))
			}
		}
	}
	return out
}

// FreeOnNode returns the number of free GPUs on node n, answered from the
// incremental index.
func (c *Cluster) FreeOnNode(n NodeID) int { return c.freeNode[n] }

// FreeOnRack returns the number of free GPUs in rack r, answered from the
// incremental index.
func (c *Cluster) FreeOnRack(r int) int { return c.freeRack[r] }

// Allocate marks the given GPUs as owned by job jobID. It panics if any
// GPU is already allocated: placement policies must only hand out free
// GPUs, and a violation indicates a policy bug rather than a recoverable
// condition.
func (c *Cluster) Allocate(jobID int, gpus []GPUID) {
	for _, g := range gpus {
		if !c.free[g] {
			panic(fmt.Sprintf("cluster: GPU %d already allocated to job %d (allocating for job %d)",
				g, c.owner[g], jobID))
		}
	}
	for _, g := range gpus {
		c.free[g] = false
		c.owner[g] = jobID
		c.nfree--
		n := c.NodeOf(g)
		c.freeNode[n]--
		c.freeRack[c.rackOfNode(n)]--
	}
}

// Release frees the given GPUs. It panics if any GPU is already free,
// which would indicate double-release in the engine.
func (c *Cluster) Release(gpus []GPUID) {
	for _, g := range gpus {
		if c.free[g] {
			panic(fmt.Sprintf("cluster: GPU %d released twice", g))
		}
	}
	for _, g := range gpus {
		c.free[g] = true
		c.owner[g] = -1
		c.nfree++
		n := c.NodeOf(g)
		c.freeNode[n]++
		c.freeRack[c.rackOfNode(n)]++
	}
}

// NodesSpanned returns the number of distinct nodes covered by the given
// GPU set. The locality model charges L_across whenever this exceeds 1.
// The count is allocation-free: distinct nodes are tracked in a small
// stack buffer (allocations span at most demand nodes, which is small for
// every workload the engine simulates), falling back to a linear
// distinct-scan beyond that.
func (c *Cluster) NodesSpanned(gpus []GPUID) int {
	if len(gpus) == 0 {
		return 0
	}
	var buf [16]NodeID
	seen := buf[:0]
	for _, g := range gpus {
		n := c.NodeOf(g)
		dup := false
		for _, s := range seen {
			if s == n {
				dup = true
				break
			}
		}
		if !dup {
			if len(seen) < cap(seen) {
				seen = append(seen, n)
			} else {
				// More than 16 distinct nodes: count the rest without the
				// buffer bound (still allocation-free, quadratic in the
				// distinct-node count only).
				return c.nodesSpannedSlow(gpus)
			}
		}
	}
	return len(seen)
}

// nodesSpannedSlow counts distinct nodes for very wide allocations by
// comparing each GPU's node against all earlier GPUs' nodes.
func (c *Cluster) nodesSpannedSlow(gpus []GPUID) int {
	count := 0
	for i, g := range gpus {
		n := c.NodeOf(g)
		dup := false
		for _, h := range gpus[:i] {
			if c.NodeOf(h) == n {
				dup = true
				break
			}
		}
		if !dup {
			count++
		}
	}
	return count
}

// RacksSpanned returns the number of distinct racks covered by the given
// GPU set (extension for three-level locality). Allocation-free like
// NodesSpanned.
func (c *Cluster) RacksSpanned(gpus []GPUID) int {
	if len(gpus) == 0 {
		return 0
	}
	if c.topo.NodesPerRack <= 0 {
		return 1
	}
	var buf [16]int
	seen := buf[:0]
	for _, g := range gpus {
		r := c.RackOf(g)
		dup := false
		for _, s := range seen {
			if s == r {
				dup = true
				break
			}
		}
		if !dup {
			if len(seen) == cap(seen) {
				return c.racksSpannedSlow(gpus)
			}
			seen = append(seen, r)
		}
	}
	return len(seen)
}

// racksSpannedSlow counts distinct racks for sets spanning more than 16
// racks by comparing each GPU's rack against all earlier GPUs' racks
// (still allocation-free, mirroring nodesSpannedSlow).
func (c *Cluster) racksSpannedSlow(gpus []GPUID) int {
	count := 0
	for i, g := range gpus {
		r := c.RackOf(g)
		dup := false
		for _, h := range gpus[:i] {
			if c.RackOf(h) == r {
				dup = true
				break
			}
		}
		if !dup {
			count++
		}
	}
	return count
}

// Reset frees every GPU, returning the cluster to its initial state.
func (c *Cluster) Reset() {
	for i := range c.free {
		c.free[i] = true
		c.owner[i] = -1
	}
	c.nfree = len(c.free)
	for n := range c.freeNode {
		c.freeNode[n] = c.topo.GPUsPerNode
	}
	for r := range c.freeRack {
		c.freeRack[r] = c.rackSize(r)
	}
}

// CheckInvariants verifies internal consistency: the total free count and
// the per-node and per-rack occupancy indexes all match a from-scratch
// recount of the free bitmap, and owners are -1 exactly on free GPUs. It
// is used by tests and the engine's end-of-run audit and returns an error
// describing the first violation found.
func (c *Cluster) CheckInvariants() error {
	count := 0
	nodeCount := make([]int, c.topo.NumNodes)
	rackCount := make([]int, len(c.freeRack))
	for g, f := range c.free {
		if f {
			count++
			n := c.NodeOf(GPUID(g))
			nodeCount[n]++
			rackCount[c.rackOfNode(n)]++
			if c.owner[g] != -1 {
				return fmt.Errorf("cluster: free GPU %d has owner %d", g, c.owner[g])
			}
		} else if c.owner[g] < 0 {
			return fmt.Errorf("cluster: busy GPU %d has no owner", g)
		}
	}
	if count != c.nfree {
		return fmt.Errorf("cluster: free count %d != bitmap count %d", c.nfree, count)
	}
	for n, want := range nodeCount {
		if c.freeNode[n] != want {
			return fmt.Errorf("cluster: node %d free index %d != bitmap count %d", n, c.freeNode[n], want)
		}
	}
	for r, want := range rackCount {
		if c.freeRack[r] != want {
			return fmt.Errorf("cluster: rack %d free index %d != bitmap count %d", r, c.freeRack[r], want)
		}
	}
	return nil
}
