package decision

import "repro/internal/sim"

// ArchivedSink is the read-only sim.DecisionSink a trace loaded from an
// archive rides on. When the artifact store (internal/store) decodes a
// persisted result, the run's decision trace must surface exactly like
// a live run's — Result.Decisions non-nil and FromResult returning the
// trace — so consumers (palexplain, palreport -decisions) cannot tell a
// warm-started result from a freshly simulated one. An ArchivedSink
// carries the already-final trace; it must never be attached to a live
// engine (sim.Config.Decisions wants a fresh Recorder), so its
// observation hooks are inert.
type ArchivedSink struct {
	trace *Trace
}

// NewArchivedSink wraps an archived trace as a sink.
func NewArchivedSink(t *Trace) *ArchivedSink {
	return &ArchivedSink{trace: t}
}

// ObserveDecision implements sim.DecisionSink as a no-op: an archived
// trace is final.
func (s *ArchivedSink) ObserveDecision(sim.DecisionObservation) {}

// FinishRun implements sim.DecisionSink as a no-op.
func (s *ArchivedSink) FinishRun(*sim.Result) {}

// Trace returns the archived trace (the method FromResult reads).
func (s *ArchivedSink) Trace() *Trace { return s.trace }
