package decision

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/sim"
)

// Ceiling sentinels. Attained-service ceilings are non-negative
// GPU-second values, but the partition-stability contract also produces
// the two infinities (sim.PartitionStableScheduler), and a trace must
// serialize to plain JSON, which cannot encode ±Inf. Records therefore
// store the sentinels below in place of the special values — negative,
// so they can never collide with a real ceiling.
const (
	// CeilingNone marks an entry with no ceiling recorded: a waiting
	// job, a scheduler without partition stability, or the "ceilings"
	// facet disabled.
	CeilingNone = -1.0
	// CeilingUnbounded stands for +Inf: the partition can never flip on
	// this job's account (FIFO/SRTF-style frozen keys).
	CeilingUnbounded = -2.0
	// CeilingExpired stands for -Inf: the job is already at or past its
	// ceiling (a demotion is due at the next full round).
	CeilingExpired = -3.0
)

// encodeCeiling maps an engine ceiling onto its archival value.
func encodeCeiling(v float64) float64 {
	switch {
	case math.IsInf(v, 1):
		return CeilingUnbounded
	case math.IsInf(v, -1):
		return CeilingExpired
	default:
		return v
	}
}

// OrderEntry is one job's position in a record's scheduling order, with
// the state the scheduler ordered it by.
type OrderEntry struct {
	Job      int     `json:"job"`
	Demand   int     `json:"demand"`
	Attained float64 `json:"attained"`
	// Running marks entries inside the schedulable prefix (holding GPUs
	// for the record's span).
	Running bool `json:"running,omitempty"`
	// Ceiling is the running job's attained-service ceiling — the bound
	// below which the running/waiting partition provably holds — or one
	// of the Ceiling* sentinels.
	Ceiling float64 `json:"ceiling"`
}

// Placement archives one sim.PlacementDecision.
type Placement struct {
	Job      int     `json:"job"`
	GPUs     int     `json:"gpus"`
	Nodes    int     `json:"nodes"`
	Racks    int     `json:"racks"`
	Locality float64 `json:"locality"`
	PMScore  float64 `json:"pm_score"`
	Slowdown float64 `json:"slowdown"`
	Started  bool    `json:"started,omitempty"`
	Resumed  bool    `json:"resumed,omitempty"`
	Migrated bool    `json:"migrated,omitempty"`
}

// Preemption archives one sim.PreemptionDecision.
type Preemption struct {
	Job  int `json:"job"`
	GPUs int `json:"gpus"`
}

// Record is one coalesced decision span: a scheduling decision and the
// stretch of rounds it stayed in force. A new record opens exactly when
// the decision changes — a placement or preemption happens, the running
// set gains or loses a job, or the waiting count moves — so a trace
// reads as a timeline of decision *changes*, identical whichever
// stepping regime the engine used.
type Record struct {
	// Round is the index of the record's first round (0-based over the
	// whole run); Start the engine clock there; Rounds the span length.
	Round  int64   `json:"round"`
	Start  float64 `json:"start"`
	Rounds int     `json:"rounds"`

	// Order is the scheduler's order over the active set when the
	// decision was made (running prefix first, then waiters). Nil for
	// idle gaps or when the "order" facet is disabled.
	Order []OrderEntry `json:"order"`
	// Prefix counts the leading Order entries holding GPUs; Waiting the
	// active jobs without GPUs.
	Prefix  int `json:"prefix"`
	Waiting int `json:"waiting"`

	Placements  []Placement  `json:"placements"`
	Preemptions []Preemption `json:"preemptions"`
}

// Trace is the serializable decision trace of one run: identity
// metadata plus the coalesced decision records. It is what palsim and
// palsweep archive next to metrics payloads and what palexplain and
// palreport -decisions render — explainability without re-simulation.
//
// Traces attached to cached results are shared: treat them as
// read-only, and copy the struct before relabeling one.
type Trace struct {
	// Name/Policy/Sched identify the run (scenario name and registry
	// names); Key is the run's content-addressed cache key when the
	// archiving caller knows it.
	Name   string `json:"name"`
	Policy string `json:"policy,omitempty"`
	Sched  string `json:"sched,omitempty"`
	Key    string `json:"key,omitempty"`

	RoundSec float64 `json:"round_sec"`
	// TimeBase is the engine clock (seconds) of round index 0.
	TimeBase float64 `json:"time_base"`
	// Facets lists the decision facets recorded (see AllFacets).
	Facets []string `json:"facets,omitempty"`

	Records []Record `json:"records"`

	// Dropped counts records evicted from the bounded ring buffer
	// (oldest first); Truncated is set whenever Dropped > 0 — the trace
	// then covers only the run's tail.
	Dropped   int64 `json:"dropped,omitempty"`
	Truncated bool  `json:"truncated,omitempty"`

	// RunTruncated/Unfinished carry the run's MaxRounds flag (a
	// truncated run is a different quantity than a completed one).
	RunTruncated bool `json:"run_truncated,omitempty"`
	Unfinished   int  `json:"unfinished,omitempty"`

	// Rounds is the total number of simulated rounds the trace covers
	// (every round of the run, merged spans included).
	Rounds int64 `json:"rounds"`
}

// RecordsFor returns the records in which the job appears — in the
// order, placed, or preempted.
func (t *Trace) RecordsFor(jobID int) []Record {
	var out []Record
	for _, rec := range t.Records {
		if rec.Mentions(jobID) {
			out = append(out, rec)
		}
	}
	return out
}

// Mentions reports whether the record involves the job.
func (r *Record) Mentions(jobID int) bool {
	for _, e := range r.Order {
		if e.Job == jobID {
			return true
		}
	}
	for _, p := range r.Placements {
		if p.Job == jobID {
			return true
		}
	}
	for _, p := range r.Preemptions {
		if p.Job == jobID {
			return true
		}
	}
	return false
}

// Save writes the trace as indented JSON.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("decision: save trace: %w", err)
	}
	return nil
}

// Load reads a trace previously written with Save. Unknown fields are
// rejected so a trace from a future encoding fails loudly instead of
// silently dropping data.
func Load(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("decision: load trace: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("decision: decode trace: %w", err)
	}
	return &t, nil
}

// LoadFile reads the trace in the named file.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("decision: %w", err)
	}
	defer f.Close()
	t, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("decision: %s: %w", path, err)
	}
	return t, nil
}

// FromResult extracts the decision trace riding on a result, live or
// loaded from an archive (both sink flavors expose Trace()). Nil when
// the run recorded no decisions.
func FromResult(res *sim.Result) *Trace {
	if res == nil || res.Decisions == nil {
		return nil
	}
	if tp, ok := res.Decisions.(interface{ Trace() *Trace }); ok {
		return tp.Trace()
	}
	return nil
}
