package decision

// Mid-run snapshot state for the engine's snapshot/fork machinery
// (sim.SnapshotState). The record ring is linearized on capture and
// re-seated at offset zero on restore; the merge state (the newest
// record's running-set IDs and waiting count) rides along so the first
// resumed observation coalesces exactly as it would have mid-run —
// which is what keeps a resumed trace byte-identical to the
// straight-through one.

import (
	"encoding/json"
	"fmt"
)

// recorderState is the JSON shape of a recorder's mid-run state.
type recorderState struct {
	Rounds      int64    `json:"rounds"`
	RoundSec    float64  `json:"round_sec"`
	TimeBase    float64  `json:"time_base"`
	HaveBase    bool     `json:"have_base"`
	Records     []Record `json:"records,omitempty"`
	Dropped     int64    `json:"dropped,omitempty"`
	LastIDs     []int    `json:"last_ids,omitempty"`
	LastWaiting int      `json:"last_waiting"`
	HaveLast    bool     `json:"have_last"`
}

// MarshalSnapshotState implements sim.SnapshotState.
func (r *Recorder) MarshalSnapshotState() ([]byte, error) {
	if r.trace != nil {
		return nil, fmt.Errorf("decision: cannot snapshot a finished recorder")
	}
	st := recorderState{
		Rounds:      r.rounds,
		RoundSec:    r.roundSec,
		TimeBase:    r.timeBase,
		HaveBase:    r.haveBase,
		Dropped:     r.dropped,
		LastWaiting: r.lastWaiting,
		HaveLast:    r.haveLast,
	}
	if r.count > 0 {
		st.Records = make([]Record, 0, r.count)
		for i := 0; i < r.count; i++ {
			st.Records = append(st.Records, r.recs[(r.start+i)%len(r.recs)])
		}
	}
	if r.haveLast {
		st.LastIDs = append([]int{}, r.lastIDs...)
	}
	return json.Marshal(st)
}

// UnmarshalSnapshotState implements sim.SnapshotState. The receiver must
// be a fresh recorder with a ring bound no smaller than the captured
// record count.
func (r *Recorder) UnmarshalSnapshotState(data []byte) error {
	if r.trace != nil || r.rounds != 0 || r.count != 0 || r.haveBase {
		return fmt.Errorf("decision: snapshot state restored into a non-fresh recorder")
	}
	var st recorderState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("decision: decode snapshot state: %w", err)
	}
	if len(st.Records) > r.cfg.MaxRecords {
		return fmt.Errorf("decision: snapshot holds %d records, resumed ring bound is %d", len(st.Records), r.cfg.MaxRecords)
	}
	r.recs = append(r.recs[:0], st.Records...)
	r.start = 0
	r.count = len(st.Records)
	r.dropped = st.Dropped
	r.rounds = st.Rounds
	r.roundSec = st.RoundSec
	r.timeBase = st.TimeBase
	r.haveBase = st.HaveBase
	r.lastIDs = append(r.lastIDs[:0], st.LastIDs...)
	r.lastWaiting = st.LastWaiting
	r.haveLast = st.HaveLast
	return nil
}
