// Package decision records scheduling and placement *decisions* — the
// explainability counterpart of internal/metrics' outcome telemetry. A
// Recorder attaches to a run via sim.Config.Decisions and turns the
// engine's span-based decision observations into a compact Trace: one
// record per decision *change* (a placement, a preemption, a shift in
// the running set or the waiting count), each covering the stretch of
// rounds the decision stayed in force. Observations whose decision
// repeats the previous record's are coalesced into it, which is exactly
// what makes the trace byte-identical across the engine's four stepping
// regimes: the fast path's frozen spans merge the same way the naive
// loop's repeated rounds do.
package decision

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// The decision facets a recorder can capture. Facet selection bounds
// what each record stores; it never moves record boundaries, so traces
// with different facets still agree on the decision timeline.
const (
	// FacetOrder stores the scheduler's order over the active set.
	FacetOrder = "order"
	// FacetCeilings adds each running job's partition-stability ceiling
	// to the order entries (requires FacetOrder to be visible).
	FacetCeilings = "ceilings"
	// FacetPlacements stores committed allocations with their
	// locality/variability score decomposition.
	FacetPlacements = "placements"
	// FacetPreemptions stores jobs descheduled by priority.
	FacetPreemptions = "preemptions"
)

// AllFacets returns every facet name in canonical order.
func AllFacets() []string {
	return []string{FacetCeilings, FacetOrder, FacetPlacements, FacetPreemptions}
}

// ValidFacet reports whether name is a known facet.
func ValidFacet(name string) bool {
	for _, f := range AllFacets() {
		if f == name {
			return true
		}
	}
	return false
}

// DefaultMaxRecords bounds a recorder's ring buffer when Config leaves
// MaxRecords zero. At one record per decision change this comfortably
// covers the paper-scale workloads; longer runs keep the most recent
// records and count the rest in Trace.Dropped.
const DefaultMaxRecords = 4096

// Config configures a Recorder.
type Config struct {
	// Label/Policy/Sched become the trace's identity metadata.
	Label  string
	Policy string
	Sched  string
	// MaxRecords bounds the record ring buffer (0 selects
	// DefaultMaxRecords). When the bound is hit the oldest records are
	// dropped and the trace is marked Truncated.
	MaxRecords int
	// Facets selects which decision facets to record (nil or empty
	// records all of them). Names must come from AllFacets.
	Facets []string
}

// Recorder implements sim.DecisionSink: it coalesces the engine's
// decision observations into ring-buffered records and freezes them
// into a Trace at FinishRun. A Recorder is a pure observer and is valid
// for exactly one run.
type Recorder struct {
	cfg      Config
	order    bool
	ceilings bool
	place    bool
	preempt  bool

	// Ring buffer of records in chronological order starting at start.
	recs    []Record
	start   int
	count   int
	dropped int64

	// rounds counts every observed round (coverage accounting).
	rounds   int64
	roundSec float64
	timeBase float64
	haveBase bool

	// Merge state: the newest record's running-set IDs (sorted) and
	// waiting count, against which the next observation is tested.
	lastIDs     []int
	lastWaiting int
	haveLast    bool

	idBuf []int // scratch for the incoming observation's sorted IDs

	trace *Trace
}

// NewRecorder validates the configuration and returns a ready Recorder.
func NewRecorder(cfg Config) (*Recorder, error) {
	if cfg.MaxRecords < 0 {
		return nil, fmt.Errorf("decision: max records %d, want >= 0 (0 selects the default %d)",
			cfg.MaxRecords, DefaultMaxRecords)
	}
	if cfg.MaxRecords == 0 {
		cfg.MaxRecords = DefaultMaxRecords
	}
	r := &Recorder{cfg: cfg}
	if len(cfg.Facets) == 0 {
		r.order, r.ceilings, r.place, r.preempt = true, true, true, true
	} else {
		for _, f := range cfg.Facets {
			switch f {
			case FacetOrder:
				r.order = true
			case FacetCeilings:
				r.ceilings = true
			case FacetPlacements:
				r.place = true
			case FacetPreemptions:
				r.preempt = true
			default:
				return nil, fmt.Errorf("decision: unknown facet %q (have %v)", f, AllFacets())
			}
		}
	}
	return r, nil
}

// MustRecorder is NewRecorder for statically-valid configurations.
func MustRecorder(cfg Config) *Recorder {
	r, err := NewRecorder(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Rounds returns the number of simulated rounds observed so far (every
// round of the run must be covered exactly once; the engagement tests
// compare this against Result.Rounds).
func (r *Recorder) Rounds() int64 { return r.rounds }

// ObserveDecision implements sim.DecisionSink. An observation whose
// decision provably repeats the newest record's — no placements, no
// preemptions, the same running set, the same waiting count — extends
// that record; anything else opens a new one. The engine guarantees
// bulk spans repeat the materialized round before them, so this merge
// rule reconstructs identical records from the naive loop's length-1
// observations and the fast path's span observations.
func (r *Recorder) ObserveDecision(o sim.DecisionObservation) {
	if o.Rounds <= 0 {
		return
	}
	if !r.haveBase {
		r.timeBase = o.Start
		r.roundSec = o.RoundSec
		r.haveBase = true
	}
	round0 := r.rounds
	r.rounds += int64(o.Rounds)

	ids := r.idBuf[:0]
	for _, j := range o.Order[:o.Prefix] {
		ids = append(ids, j.Spec.ID)
	}
	sort.Ints(ids)
	r.idBuf = ids

	if len(o.Placements) == 0 && len(o.Preemptions) == 0 &&
		r.haveLast && r.count > 0 &&
		o.Waiting == r.lastWaiting && equalInts(ids, r.lastIDs) {
		r.newest().Rounds += o.Rounds
		return
	}

	rec := Record{
		Round:   round0,
		Start:   o.Start,
		Rounds:  o.Rounds,
		Prefix:  o.Prefix,
		Waiting: o.Waiting,
	}
	if r.order && len(o.Order) > 0 {
		rec.Order = make([]OrderEntry, len(o.Order))
		for i, j := range o.Order {
			e := OrderEntry{
				Job:      j.Spec.ID,
				Demand:   j.Spec.Demand,
				Attained: j.Attained,
				Running:  i < o.Prefix,
				Ceiling:  CeilingNone,
			}
			if r.ceilings && i < len(o.Ceilings) {
				e.Ceiling = encodeCeiling(o.Ceilings[i])
			}
			rec.Order[i] = e
		}
	}
	if r.place && len(o.Placements) > 0 {
		rec.Placements = make([]Placement, len(o.Placements))
		for i, p := range o.Placements {
			rec.Placements[i] = Placement{
				Job:      p.Job,
				GPUs:     p.GPUs,
				Nodes:    p.Nodes,
				Racks:    p.Racks,
				Locality: p.Locality,
				PMScore:  p.PMScore,
				Slowdown: p.Slowdown,
				Started:  p.Started,
				Resumed:  p.Resumed,
				Migrated: p.Migrated,
			}
		}
	}
	if r.preempt && len(o.Preemptions) > 0 {
		rec.Preemptions = make([]Preemption, len(o.Preemptions))
		for i, p := range o.Preemptions {
			rec.Preemptions[i] = Preemption{Job: p.Job, GPUs: p.GPUs}
		}
	}
	r.push(rec)
	r.lastIDs = append(r.lastIDs[:0], ids...)
	r.lastWaiting = o.Waiting
	r.haveLast = true
}

// newest returns the most recent record in the ring.
func (r *Recorder) newest() *Record {
	return &r.recs[(r.start+r.count-1)%len(r.recs)]
}

// push appends a record, evicting the oldest when the ring is full. The
// backing storage grows on demand (append) up to MaxRecords, so a short
// run never pays for the full bound.
func (r *Recorder) push(rec Record) {
	if r.count < r.cfg.MaxRecords {
		r.recs = append(r.recs, rec)
		r.count++
		return
	}
	r.recs[r.start] = rec
	r.start = (r.start + 1) % len(r.recs)
	r.dropped++
}

// FinishRun implements sim.DecisionSink: it freezes the recorded
// decisions into the final Trace. Must be called exactly once (the
// engine does), after which Trace returns the payload.
func (r *Recorder) FinishRun(res *sim.Result) {
	if r.trace != nil {
		panic("decision: FinishRun called twice")
	}
	t := &Trace{
		Name:     r.cfg.Label,
		Policy:   r.cfg.Policy,
		Sched:    r.cfg.Sched,
		RoundSec: r.roundSec,
		TimeBase: r.timeBase,
		Dropped:  r.dropped,
		Rounds:   r.rounds,
	}
	if len(r.cfg.Facets) > 0 {
		t.Facets = append([]string(nil), r.cfg.Facets...)
	}
	if r.count > 0 {
		t.Records = make([]Record, 0, r.count)
		for i := 0; i < r.count; i++ {
			t.Records = append(t.Records, r.recs[(r.start+i)%len(r.recs)])
		}
	}
	t.Truncated = r.dropped > 0
	if res != nil {
		t.RunTruncated = res.Truncated
		t.Unfinished = res.Unfinished
	}
	r.trace = t
}

// Trace returns the finished trace (nil before FinishRun). This is the
// accessor FromResult duck-types.
func (r *Recorder) Trace() *Trace { return r.trace }

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
