package stats

import (
	"sort"

	"repro/internal/rng"
)

// Bootstrap confidence intervals for the improvement figures the harness
// reports. One simulation yields one number per job; resampling jobs
// with replacement quantifies how much of an "X% improvement" claim is
// luck of the trace. All resampling is seeded, so reported intervals are
// reproducible.

// CI is a two-sided confidence interval.
type CI struct {
	Low, High float64
	// Level is the nominal coverage (e.g. 0.95).
	Level float64
}

// BootstrapCI estimates a confidence interval for statistic(sample) by
// percentile bootstrap with the given number of resamples. Returns a
// degenerate interval for empty input.
func BootstrapCI(sample []float64, statistic func([]float64) float64,
	resamples int, level float64, seed uint64) CI {
	if len(sample) == 0 || resamples <= 0 {
		return CI{Level: level}
	}
	r := rng.New(seed)
	buf := make([]float64, len(sample))
	estimates := make([]float64, resamples)
	for i := range estimates {
		for j := range buf {
			buf[j] = sample[r.Intn(len(sample))]
		}
		estimates[i] = statistic(buf)
	}
	sort.Float64s(estimates)
	alpha := (1 - level) / 2
	return CI{
		Low:   percentileSorted(estimates, alpha*100),
		High:  percentileSorted(estimates, (1-alpha)*100),
		Level: level,
	}
}

// BootstrapMeanCI is BootstrapCI with the arithmetic mean.
func BootstrapMeanCI(sample []float64, resamples int, level float64, seed uint64) CI {
	return BootstrapCI(sample, Mean, resamples, level, seed)
}

// BootstrapImprovementCI resamples paired (base, ours) observations and
// returns the interval of Improvement(mean(base), mean(ours)) — the
// uncertainty of an avg-JCT improvement claim over the jobs of one trace.
// base and ours must have equal length (per-job metrics of the same
// trace under two policies).
func BootstrapImprovementCI(base, ours []float64, resamples int, level float64, seed uint64) CI {
	n := len(base)
	if n == 0 || n != len(ours) || resamples <= 0 {
		return CI{Level: level}
	}
	r := rng.New(seed)
	estimates := make([]float64, resamples)
	for i := range estimates {
		var sb, so float64
		for j := 0; j < n; j++ {
			k := r.Intn(n)
			sb += base[k]
			so += ours[k]
		}
		estimates[i] = Improvement(sb/float64(n), so/float64(n))
	}
	sort.Float64s(estimates)
	alpha := (1 - level) / 2
	return CI{
		Low:   percentileSorted(estimates, alpha*100),
		High:  percentileSorted(estimates, (1-alpha)*100),
		Level: level,
	}
}

// Contains reports whether v lies inside the interval.
func (ci CI) Contains(v float64) bool { return v >= ci.Low && v <= ci.High }

// Width returns the interval width.
func (ci CI) Width() float64 { return ci.High - ci.Low }
