package stats

import "fmt"

// StreamingHist is a fixed-bin streaming histogram: constant memory, one
// Observe per sample, no retained sample slice. The metrics subsystem
// uses it to archive JCT and wait distributions (the raw material of the
// paper's CDF figures) at a size independent of trace length; consumers
// read distribution shape through Quantile and CDF.
//
// Bins are equal-width over [Lo, Hi]; samples outside the range are
// clamped into the edge bins (the convention Histogram uses), so Count
// always equals the number of observations. The exact minimum and
// maximum are tracked separately, which pins the distribution's support
// even when the tails clamp.
type StreamingHist struct {
	Lo, Hi float64 // bin range; width = (Hi-Lo)/len(Counts)
	Counts []int64 // per-bin sample counts
	N      int64   // total observations
	// Min/Max are the exact extremes observed (valid when N > 0).
	Min, Max float64
}

// NewStreamingHist returns an empty histogram with nbins equal-width bins
// over [lo, hi]. It panics on a non-positive bin count or an empty range:
// histogram shape is configuration, not data, so a bad shape is a
// programming error.
func NewStreamingHist(lo, hi float64, nbins int) *StreamingHist {
	if nbins <= 0 {
		panic(fmt.Sprintf("stats: StreamingHist with %d bins", nbins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: StreamingHist range [%g, %g]", lo, hi))
	}
	return &StreamingHist{Lo: lo, Hi: hi, Counts: make([]int64, nbins)}
}

// Observe adds one sample.
func (h *StreamingHist) Observe(x float64) {
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	if h.N == 0 || x < h.Min {
		h.Min = x
	}
	if h.N == 0 || x > h.Max {
		h.Max = x
	}
	h.N++
}

// binWidth returns the width of one bin.
func (h *StreamingHist) binWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// Quantile estimates the p-th percentile (p in [0, 100]) by locating the
// bin where the cumulative count crosses the target rank and
// interpolating linearly inside it (samples are assumed uniform within a
// bin). The estimate is clamped to the exact observed [Min, Max], so the
// edges never over-report beyond the data. Returns 0 for an empty
// histogram.
func (h *StreamingHist) Quantile(p float64) float64 {
	if h.N == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min
	}
	if p >= 100 {
		return h.Max
	}
	target := p / 100 * float64(h.N)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			frac := (target - cum) / float64(c)
			v := h.Lo + (float64(i)+frac)*h.binWidth()
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
		cum = next
	}
	return h.Max
}

// CDF returns the histogram's cumulative distribution as one point per
// non-empty bin, evaluated at the bin's upper edge (the fraction of
// samples at or below it). This is the binned counterpart of stats.CDF
// for use when the raw samples were not retained.
func (h *StreamingHist) CDF() []CDFPoint {
	if h.N == 0 {
		return nil
	}
	var out []CDFPoint
	var cum int64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, CDFPoint{
			Value:    h.Lo + float64(i+1)*h.binWidth(),
			Fraction: float64(cum) / float64(h.N),
		})
	}
	return out
}

// Mean returns the histogram's estimated mean (bin midpoints weighted by
// counts), or 0 when empty.
func (h *StreamingHist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	w := h.binWidth()
	var s float64
	for i, c := range h.Counts {
		if c != 0 {
			s += float64(c) * (h.Lo + (float64(i)+0.5)*w)
		}
	}
	return s / float64(h.N)
}
