package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleImprovement shows the paper's improvement convention for
// lower-is-better metrics: "PAL improves average JCT by 42% over
// Tiresias" means (base - ours) / base = 0.42.
func ExampleImprovement() {
	baseJCT := 100.0
	palJCT := 58.0
	fmt.Printf("%.0f%%\n", 100*stats.Improvement(baseJCT, palJCT))
	// Output:
	// 42%
}

// ExampleSummarize condenses a JCT sample into the statistics the
// experiment tables report.
func ExampleSummarize() {
	jcts := []float64{100, 200, 300, 400, 10000}
	s := stats.Summarize(jcts)
	fmt.Printf("mean=%.0f median=%.0f max=%.0f\n", s.Mean, s.Median, s.Max)
	// Output:
	// mean=2200 median=300 max=10000
}

// ExampleCDF builds the empirical distribution behind the paper's JCT
// CDF figures.
func ExampleCDF() {
	cdf := stats.CDF([]float64{1, 2, 2, 4})
	for _, p := range cdf {
		fmt.Printf("%.0f -> %.2f\n", p.Value, p.Fraction)
	}
	// Output:
	// 1 -> 0.25
	// 2 -> 0.75
	// 4 -> 1.00
}
