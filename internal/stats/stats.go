// Package stats provides the descriptive statistics used by the PAL
// reproduction: means, geometric means, percentiles, CDFs, histograms and
// boxplot summaries. The experiment harness reports the same aggregate
// metrics the paper does (average JCT, 99th-percentile JCT, geomean
// improvements, makespan, utilization), so these helpers are deliberately
// explicit about their definitions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (they would otherwise poison the log).
// Returns 0 if no positive values are present.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It copies and sorts its input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile on an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics the harness reports for a
// sample (e.g. the per-job JCTs of one simulation).
type Summary struct {
	N      int
	Mean   float64
	Geo    float64
	Std    float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(sorted),
		Mean:   Mean(sorted),
		Geo:    GeoMean(sorted),
		Std:    StdDev(sorted),
		Min:    sorted[0],
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		P99:    percentileSorted(sorted, 99),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary on one line, suitable for harness output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g geo=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Geo, s.Median, s.P99, s.Max)
}

// Boxplot holds the five-number summary plus whisker bounds used for the
// paper's boxplot figures (Figs. 10 and 18). Whiskers follow the usual
// 1.5×IQR convention, clamped to the data range.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLow, WhiskerHigh  float64
	OutlierCount             int
}

// BoxplotOf computes a Boxplot of xs.
func BoxplotOf(xs []float64) Boxplot {
	if len(xs) == 0 {
		return Boxplot{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := Boxplot{
		Min:    sorted[0],
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
	}
	iqr := b.Q3 - b.Q1
	loBound := b.Q1 - 1.5*iqr
	hiBound := b.Q3 + 1.5*iqr
	b.WhiskerLow = b.Max
	b.WhiskerHigh = b.Min
	for _, x := range sorted {
		if x >= loBound && x < b.WhiskerLow {
			b.WhiskerLow = x
		}
		if x <= hiBound && x > b.WhiskerHigh {
			b.WhiskerHigh = x
		}
		if x < loBound || x > hiBound {
			b.OutlierCount++
		}
	}
	return b
}

// CDFPoint is one step of an empirical cumulative distribution function.
type CDFPoint struct {
	Value    float64 // sample value
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the empirical CDF of xs as a sorted list of steps, one per
// distinct value. Used to reproduce the paper's JCT CDF (Fig. 9).
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values into a single step.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{Value: sorted[i], Fraction: float64(i+1) / n})
	}
	return out
}

// CDFAt returns the fraction of samples in the (sorted-step) CDF that are
// <= v; 0 if v precedes every step.
func CDFAt(cdf []CDFPoint, v float64) float64 {
	frac := 0.0
	for _, p := range cdf {
		if p.Value > v {
			break
		}
		frac = p.Fraction
	}
	return frac
}

// Histogram counts samples into nbins equal-width bins spanning [lo, hi].
// Samples outside the range are clamped into the first/last bin. Returns
// the bin edges (nbins+1 values) and counts (nbins values).
func Histogram(xs []float64, lo, hi float64, nbins int) (edges []float64, counts []int) {
	if nbins <= 0 || hi <= lo {
		return nil, nil
	}
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	counts = make([]int, nbins)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		counts[idx]++
	}
	return edges, counts
}

// Improvement returns the fractional improvement of "ours" over "base" for
// a lower-is-better metric: (base - ours) / base. A positive value means
// ours is better. This is the convention the paper uses when reporting
// "PAL improves average JCT by X% over Tiresias".
func Improvement(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - ours) / base
}
