package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 8, 0, -3}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("GeoMean skipping non-positives = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{0, -1}); got != 0 {
		t.Errorf("GeoMean(non-positive) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if Min(xs) != -2 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +/-Inf")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev(constant) = %v", got)
	}
	// Population stddev of {1,3} is 1.
	if got := StdDev([]float64{1, 3}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("StdDev(1,3) = %v, want 1", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {105, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileProperties(t *testing.T) {
	check := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p50 := Percentile(xs, 50)
		p99 := Percentile(xs, 99)
		return p50 >= Min(xs) && p99 <= Max(xs) && p50 <= p99
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("Summarize(nil).N = %d", z.N)
	}
}

func TestBoxplot(t *testing.T) {
	// One extreme outlier: 100 against a tight cluster.
	xs := []float64{1, 2, 3, 4, 5, 100}
	b := BoxplotOf(xs)
	if b.Median <= 0 || b.Q1 >= b.Q3 {
		t.Errorf("degenerate boxplot %+v", b)
	}
	if b.OutlierCount != 1 {
		t.Errorf("OutlierCount = %d, want 1", b.OutlierCount)
	}
	if b.WhiskerHigh >= 100 {
		t.Errorf("whisker includes the outlier: %v", b.WhiskerHigh)
	}
	if z := BoxplotOf(nil); z.Median != 0 {
		t.Errorf("BoxplotOf(nil) = %+v", z)
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{1, 2, 2, 3})
	if len(cdf) != 3 {
		t.Fatalf("CDF steps = %d, want 3 (dedup)", len(cdf))
	}
	if cdf[1].Value != 2 || !almostEqual(cdf[1].Fraction, 0.75, 1e-12) {
		t.Errorf("CDF[1] = %+v", cdf[1])
	}
	if last := cdf[len(cdf)-1]; last.Fraction != 1 {
		t.Errorf("CDF should end at 1, got %v", last.Fraction)
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	cdf := CDF([]float64{1, 2, 3, 4})
	if got := CDFAt(cdf, 2.5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(cdf, 0); got != 0 {
		t.Errorf("CDFAt(0) = %v, want 0", got)
	}
	if got := CDFAt(cdf, 10); got != 1 {
		t.Errorf("CDFAt(10) = %v, want 1", got)
	}
}

func TestCDFMonotonic(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		cdf := CDF(xs)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value <= cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0.5, 1.5, 1.6, 9.9, -5, 50}, 0, 10, 10)
	if len(edges) != 11 || len(counts) != 10 {
		t.Fatalf("histogram shape %d/%d", len(edges), len(counts))
	}
	if counts[0] != 2 { // 0.5 and clamped -5
		t.Errorf("bin 0 = %d, want 2", counts[0])
	}
	if counts[1] != 2 { // 1.5, 1.6
		t.Errorf("bin 1 = %d, want 2", counts[1])
	}
	if counts[9] != 2 { // 9.9 and clamped 50
		t.Errorf("bin 9 = %d, want 2", counts[9])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 6 {
		t.Errorf("histogram lost samples: %d", total)
	}
	if e, c := Histogram(nil, 0, 1, 0); e != nil || c != nil {
		t.Error("degenerate histogram should return nils")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 58); !almostEqual(got, 0.42, 1e-12) {
		t.Errorf("Improvement(100,58) = %v", got)
	}
	if got := Improvement(100, 120); !almostEqual(got, -0.2, 1e-12) {
		t.Errorf("Improvement(100,120) = %v", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Errorf("Improvement(0,·) = %v", got)
	}
}
