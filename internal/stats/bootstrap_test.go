package stats

import (
	"testing"

	"repro/internal/rng"
)

func TestBootstrapMeanCICoversTruth(t *testing.T) {
	// Sample from a known distribution: the CI should contain the true
	// mean in the vast majority of trials.
	r := rng.New(1)
	covered := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		sample := make([]float64, 200)
		for i := range sample {
			sample[i] = 5 + r.NormFloat64()
		}
		ci := BootstrapMeanCI(sample, 400, 0.95, uint64(trial))
		if ci.Contains(5.0) {
			covered++
		}
		if ci.Low > ci.High {
			t.Fatalf("inverted interval %+v", ci)
		}
	}
	if covered < trials*85/100 {
		t.Errorf("95%% CI covered the truth in only %d/%d trials", covered, trials)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := BootstrapMeanCI(sample, 100, 0.95, 7)
	b := BootstrapMeanCI(sample, 100, 0.95, 7)
	if a != b {
		t.Errorf("same seed gave different intervals: %+v vs %+v", a, b)
	}
	c := BootstrapMeanCI(sample, 100, 0.95, 8)
	if a == c {
		t.Error("different seeds gave identical intervals (suspicious)")
	}
}

func TestBootstrapCIWidthShrinksWithN(t *testing.T) {
	r := rng.New(3)
	small := make([]float64, 20)
	big := make([]float64, 2000)
	for i := range small {
		small[i] = r.NormFloat64()
	}
	for i := range big {
		big[i] = r.NormFloat64()
	}
	wSmall := BootstrapMeanCI(small, 300, 0.95, 1).Width()
	wBig := BootstrapMeanCI(big, 300, 0.95, 1).Width()
	if wBig >= wSmall {
		t.Errorf("CI width did not shrink with sample size: %v vs %v", wSmall, wBig)
	}
}

func TestBootstrapImprovementCI(t *testing.T) {
	// ours is consistently 40% below base: the CI must sit near 0.40 and
	// exclude 0.
	r := rng.New(5)
	base := make([]float64, 300)
	ours := make([]float64, 300)
	for i := range base {
		base[i] = 100 + 10*r.NormFloat64()
		ours[i] = 60 + 6*r.NormFloat64()
	}
	ci := BootstrapImprovementCI(base, ours, 500, 0.95, 2)
	sampleImp := Improvement(Mean(base), Mean(ours))
	if !ci.Contains(sampleImp) {
		t.Errorf("CI %+v does not contain the sample improvement %v", ci, sampleImp)
	}
	if ci.Low < 0.35 || ci.High > 0.45 {
		t.Errorf("CI %+v far from the true improvement 0.40", ci)
	}
	if ci.Contains(0) {
		t.Errorf("CI %+v should exclude zero for a real effect", ci)
	}
}

func TestBootstrapDegenerateInputs(t *testing.T) {
	if ci := BootstrapMeanCI(nil, 100, 0.95, 1); ci.Width() != 0 {
		t.Errorf("empty sample CI = %+v", ci)
	}
	if ci := BootstrapImprovementCI([]float64{1}, []float64{1, 2}, 100, 0.95, 1); ci.Width() != 0 {
		t.Errorf("mismatched pairs CI = %+v", ci)
	}
	if ci := BootstrapMeanCI([]float64{1, 2}, 0, 0.95, 1); ci.Width() != 0 {
		t.Errorf("zero resamples CI = %+v", ci)
	}
}
