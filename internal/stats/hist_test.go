package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestStreamingHistCountsAndClamp(t *testing.T) {
	h := NewStreamingHist(0, 10, 10)
	for _, x := range []float64{-5, 0, 0.5, 5, 9.99, 10, 25} {
		h.Observe(x)
	}
	if h.N != 7 {
		t.Fatalf("N = %d, want 7 (out-of-range samples must clamp, not drop)", h.N)
	}
	if h.Counts[0] != 3 { // -5, 0, 0.5
		t.Errorf("first bin %d, want 3", h.Counts[0])
	}
	if h.Counts[9] != 3 { // 9.99, 10, 25
		t.Errorf("last bin %d, want 3", h.Counts[9])
	}
	if h.Min != -5 || h.Max != 25 {
		t.Errorf("extremes [%g, %g], want [-5, 25]", h.Min, h.Max)
	}
}

func TestStreamingHistQuantileMatchesExact(t *testing.T) {
	// Dense uniform data: binned quantiles must track exact percentiles
	// within one bin width.
	r := rng.New(42)
	xs := make([]float64, 5000)
	h := NewStreamingHist(0, 1000, 200)
	for i := range xs {
		xs[i] = r.Float64() * 1000
		h.Observe(xs[i])
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99} {
		exact := Percentile(xs, p)
		est := h.Quantile(p)
		if math.Abs(est-exact) > width {
			t.Errorf("p%g: estimate %.2f vs exact %.2f (tolerance %.2f)", p, est, exact, width)
		}
	}
	if h.Quantile(0) != h.Min || h.Quantile(100) != h.Max {
		t.Errorf("edge quantiles [%g, %g], want exact extremes [%g, %g]",
			h.Quantile(0), h.Quantile(100), h.Min, h.Max)
	}
}

func TestStreamingHistEmptyAndSingle(t *testing.T) {
	h := NewStreamingHist(0, 1, 4)
	if h.Quantile(50) != 0 || h.CDF() != nil || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(0.3)
	for _, p := range []float64{0, 50, 100} {
		if got := h.Quantile(p); got != 0.3 {
			t.Errorf("single-sample p%g = %g, want 0.3 (clamped to observed range)", p, got)
		}
	}
}

func TestStreamingHistCDF(t *testing.T) {
	h := NewStreamingHist(0, 4, 4)
	for _, x := range []float64{0.5, 1.5, 1.5, 3.5} {
		h.Observe(x)
	}
	cdf := h.CDF()
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {4, 1}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF has %d points, want %d: %v", len(cdf), len(want), cdf)
	}
	for i, p := range want {
		if cdf[i] != p {
			t.Errorf("CDF[%d] = %v, want %v", i, cdf[i], p)
		}
	}
}
