package sim

// Test-only access to the bulk-advance counters (see stepping.go). The
// accessors live in an export_test file so the instrumentation never
// becomes public API.

// ResetBulkStats zeroes the process-global bulk-advance counters.
func ResetBulkStats() {
	bulkRoundsSkipped.Store(0)
	denseSpans.Store(0)
}

// BulkStats returns (rounds skipped inside bulk spans, spans entered
// with a non-empty waiting set) since the last reset.
func BulkStats() (skipped, dense int64) {
	return bulkRoundsSkipped.Load(), denseSpans.Load()
}
