package sim

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Failure-injection tests: misbehaving policies must surface as
// descriptive errors from Run, never as panics or silent corruption.

// shortPlacer returns one GPU fewer than demanded.
type shortPlacer struct{}

func (shortPlacer) Name() string { return "short" }
func (shortPlacer) Sticky() bool { return false }
func (shortPlacer) PlaceRound(c *cluster.Cluster, need []*Job, _ float64) map[int][]cluster.GPUID {
	out := make(map[int][]cluster.GPUID)
	free := c.FreeGPUs()
	for _, j := range need {
		n := j.Spec.Demand - 1
		out[j.Spec.ID] = append([]cluster.GPUID(nil), free[:n]...)
	}
	return out
}

// dupPlacer hands the same GPU out twice within one allocation.
type dupPlacer struct{}

func (dupPlacer) Name() string { return "dup" }
func (dupPlacer) Sticky() bool { return false }
func (dupPlacer) PlaceRound(c *cluster.Cluster, need []*Job, _ float64) map[int][]cluster.GPUID {
	out := make(map[int][]cluster.GPUID)
	free := c.FreeGPUs()
	for _, j := range need {
		alloc := make([]cluster.GPUID, j.Spec.Demand)
		for i := range alloc {
			alloc[i] = free[0]
		}
		out[j.Spec.ID] = alloc
	}
	return out
}

// overlapPlacer gives two jobs the same GPUs.
type overlapPlacer struct{}

func (overlapPlacer) Name() string { return "overlap" }
func (overlapPlacer) Sticky() bool { return false }
func (overlapPlacer) PlaceRound(c *cluster.Cluster, need []*Job, _ float64) map[int][]cluster.GPUID {
	out := make(map[int][]cluster.GPUID)
	free := c.FreeGPUs()
	for _, j := range need {
		out[j.Spec.ID] = append([]cluster.GPUID(nil), free[:j.Spec.Demand]...)
	}
	return out
}

// rangePlacer returns out-of-range GPU IDs.
type rangePlacer struct{}

func (rangePlacer) Name() string { return "range" }
func (rangePlacer) Sticky() bool { return false }
func (rangePlacer) PlaceRound(c *cluster.Cluster, need []*Job, _ float64) map[int][]cluster.GPUID {
	out := make(map[int][]cluster.GPUID)
	for _, j := range need {
		alloc := make([]cluster.GPUID, j.Spec.Demand)
		for i := range alloc {
			alloc[i] = cluster.GPUID(10_000 + i)
		}
		out[j.Spec.ID] = alloc
	}
	return out
}

// missingPlacer omits a job from its result map.
type missingPlacer struct{}

func (missingPlacer) Name() string { return "missing" }
func (missingPlacer) Sticky() bool { return false }
func (missingPlacer) PlaceRound(*cluster.Cluster, []*Job, float64) map[int][]cluster.GPUID {
	return map[int][]cluster.GPUID{}
}

func TestBuggyPlacersSurfaceErrors(t *testing.T) {
	cases := []struct {
		placer Placer
		errHas string
	}{
		{shortPlacer{}, "GPUs, want"},
		{dupPlacer{}, "twice"},
		{rangePlacer{}, "out-of-range"},
		{missingPlacer{}, "want"},
	}
	for _, c := range cases {
		cfg := baseConfig(t, []trace.JobSpec{
			{ID: 0, Arrival: 0, Demand: 2, Work: 600},
		})
		cfg.Placer = c.placer
		_, err := Run(cfg)
		if err == nil {
			t.Errorf("%s: no error surfaced", c.placer.Name())
			continue
		}
		if !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("%s: error %q does not mention %q", c.placer.Name(), err, c.errHas)
		}
	}
}

func TestOverlappingAllocationsSurfaceError(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 2, Work: 600},
		{ID: 1, Arrival: 0, Demand: 2, Work: 600},
	})
	cfg.Placer = overlapPlacer{}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("overlapping allocations accepted")
	}
	if !strings.Contains(err.Error(), "busy GPU") {
		t.Errorf("error %q does not mention the busy GPU", err)
	}
}

// badOrderSched drops a job from its ordering.
type badOrderSched struct{}

func (badOrderSched) Name() string { return "bad-order" }
func (badOrderSched) Order(jobs []*Job, _ float64) []*Job {
	if len(jobs) > 1 {
		return jobs[:len(jobs)-1]
	}
	return jobs
}

func TestBuggySchedulerSurfacesError(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 1, Work: 600},
		{ID: 1, Arrival: 0, Demand: 1, Work: 600},
	})
	cfg.Sched = badOrderSched{}
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "returned") {
		t.Errorf("dropped-job ordering not caught: %v", err)
	}
}

// chaosPlacer is a *valid* placer that allocates uniformly random free
// GPUs, used to drive the engine through unusual-but-legal states.
type chaosPlacer struct{ r *rng.RNG }

func (p *chaosPlacer) Name() string { return "chaos" }
func (p *chaosPlacer) Sticky() bool { return p.r.Float64() < 0 } // always false, reads no state
func (p *chaosPlacer) PlaceRound(c *cluster.Cluster, need []*Job, _ float64) map[int][]cluster.GPUID {
	out := make(map[int][]cluster.GPUID, len(need))
	free := c.FreeGPUs()
	p.r.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	idx := 0
	for _, j := range need {
		out[j.Spec.ID] = append([]cluster.GPUID(nil), free[idx:idx+j.Spec.Demand]...)
		idx += j.Spec.Demand
	}
	return out
}

// chaosSched orders jobs randomly each round (a legal, if terrible,
// scheduling policy).
type chaosSched struct{ r *rng.RNG }

func (chaosSched) Name() string { return "chaos-sched" }
func (s chaosSched) Order(jobs []*Job, _ float64) []*Job {
	out := append([]*Job(nil), jobs...)
	s.r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TestChaosDriver runs random-but-legal policies over random traces and
// checks global invariants: everything completes, accounting balances,
// and the engine's internal cluster state stays consistent (Run calls
// CheckInvariants at the end).
func TestChaosDriver(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := rng.New(seed)
		n := 20 + r.Intn(60)
		jobs := make([]trace.JobSpec, n)
		arr := 0.0
		for i := range jobs {
			arr += r.Float64() * 600
			jobs[i] = trace.JobSpec{
				ID:      i,
				Arrival: arr,
				Demand:  1 + r.Intn(8),
				Work:    60 + r.Float64()*5000,
				Class:   0,
			}
		}
		cfg := baseConfig(t, jobs)
		cfg.Sched = chaosSched{r: rng.New(seed + 100)}
		cfg.Placer = &chaosPlacer{r: rng.New(seed + 200)}
		cfg.MigrationPenaltySec = 15
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var totalWork, totalAttained float64
		for _, j := range res.Jobs {
			if !j.Done {
				t.Fatalf("seed %d: job %d unfinished", seed, j.Spec.ID)
			}
			totalWork += j.Spec.Work * float64(j.Spec.Demand)
			totalAttained += j.Attained
		}
		// Attained time can exceed ideal work (slowdowns >= minScore) but
		// never undercut it times the best score (1.0 here: flat profile,
		// Lacross 1.0 in baseConfig).
		if totalAttained < totalWork-1e-6 {
			t.Errorf("seed %d: attained %v below ideal %v on a flat profile",
				seed, totalAttained, totalWork)
		}
	}
}
