package sim_test

// Equivalence guard for the telemetry hook: attaching a metrics.Collector
// must not forfeit fast-forwarding, and the telemetry collected across
// fast-forwarded spans must be *byte-identical* to naive round-by-round
// sampling — same sample indices, same values, same histograms, same
// lifecycle records, bit for bit. This is the metrics counterpart of
// TestFastForwardByteIdentical, over the same workload matrix (Sia and
// sparse-Synergy traces among them).

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// collectorFor builds a fresh default collector sized to the case's
// cluster.
func collectorFor(t *testing.T, c ffCase, interval int) *metrics.Collector {
	t.Helper()
	col, err := metrics.NewCollector(metrics.Config{
		ClusterGPUs:    c.nodes * 4,
		IntervalRounds: interval,
		Label:          c.name,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestMetricsFastForwardByteIdentical(t *testing.T) {
	for _, c := range ffCases(t) {
		c := c
		for _, interval := range []int{1, 7} {
			interval := interval
			t.Run(fmt.Sprintf("%s/every-%d", c.name, interval), func(t *testing.T) {
				naiveCfg := c.config(t, true)
				naiveCfg.Metrics = collectorFor(t, c, interval)
				naive, err := sim.Run(naiveCfg)
				if err != nil {
					t.Fatal(err)
				}
				fastCfg := c.config(t, false)
				fastCfg.Metrics = collectorFor(t, c, interval)
				fast, err := sim.Run(fastCfg)
				if err != nil {
					t.Fatal(err)
				}

				np, fp := metrics.FromResult(naive), metrics.FromResult(fast)
				if np == nil || fp == nil {
					t.Fatal("payload missing from an instrumented run")
				}
				if !reflect.DeepEqual(np, fp) {
					for _, s := range np.Series {
						fs, ok := fp.SeriesByName(s.Name)
						if !ok || !reflect.DeepEqual(s, fs) {
							t.Errorf("series %s diverged (naive %d samples, fast %d)",
								s.Name, len(s.Values), len(fs.Values))
						}
					}
					if !reflect.DeepEqual(np.Jobs, fp.Jobs) {
						t.Error("job records diverged")
					}
					if !reflect.DeepEqual(np.JCTHist, fp.JCTHist) || !reflect.DeepEqual(np.WaitHist, fp.WaitHist) {
						t.Error("histograms diverged")
					}
					t.Fatal("metrics payload not byte-identical across fast-forward")
				}

				// The simulation itself must also stay byte-identical with
				// the sink attached (wall-clock PlaceTimes and the sink
				// pointers excluded, as in the uninstrumented test).
				naive.PlaceTimes, fast.PlaceTimes = nil, nil
				naive.Metrics, fast.Metrics = nil, nil
				if !reflect.DeepEqual(naive, fast) {
					t.Fatal("instrumented result not byte-identical to naive loop")
				}
			})
		}
	}
}

// TestMetricsKeepFastForwardEngaged guards the performance claim's
// precondition: with a collector attached, a sparse sticky run must still
// skip its dead time (placement consulted only when jobs need GPUs). If
// the sink silently forced the naive path, the byte-identity test above
// would pass vacuously.
func TestMetricsKeepFastForwardEngaged(t *testing.T) {
	cfg := sparseConfig(false)
	col, err := metrics.NewCollector(metrics.Config{ClusterGPUs: 32})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = col
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 24 jobs, everything fits on arrival: one placement per arrival.
	if len(res.PlaceTimes) > 30 {
		t.Errorf("placement called %d times with metrics attached; fast-forward not engaging",
			len(res.PlaceTimes))
	}
	p := metrics.FromResult(res)
	if p == nil {
		t.Fatal("no payload")
	}
	// Every simulated round must be covered by exactly one observation.
	if got := col.Rounds(); got != int64(res.Rounds) {
		t.Errorf("collector observed %d rounds, engine ran %d", got, res.Rounds)
	}
	gpus, ok := p.SeriesByName(metrics.SeriesGPUsInUse)
	if !ok || len(gpus.Values) == 0 {
		t.Fatal("gpus_in_use series empty")
	}
	if int64(len(gpus.Values))+gpus.Dropped != int64(res.Rounds) {
		t.Errorf("series covers %d samples + %d dropped, want %d rounds at interval 1",
			len(gpus.Values), gpus.Dropped, res.Rounds)
	}
}
