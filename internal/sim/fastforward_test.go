package sim_test

// Equivalence guard for the fast-forward engine: for every workload ×
// scheduler × placer combination below, a run with fast-forwarding
// enabled must be *byte-identical* to the naive round-by-round loop —
// same per-job tables (JCT, waits, attained service, preemption and
// migration counts), same aggregate metrics, same utilization series,
// same event log, bit for bit. The only field excluded is PlaceTimes'
// values, which are wall-clock measurements; their count must still
// match.

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// clusterTopology returns an n-node, 4-GPUs-per-node topology.
func clusterTopology(nodes int) cluster.Topology {
	return cluster.Topology{NumNodes: nodes, GPUsPerNode: 4}
}

// ffCase is one workload/policy combination of the equivalence matrix.
type ffCase struct {
	name   string
	trace  *trace.Trace
	nodes  int
	sched  sim.Scheduler
	placer func() sim.Placer // fresh placer per run (placers hold RNG state)
}

func ffCases(t *testing.T) []ffCase {
	t.Helper()
	siaParams := trace.DefaultSiaPhillyParams()
	synParams := trace.DefaultSynergyParams(2) // sparse: ~2 jobs/hour
	synParams.NumJobs = 150
	profile64 := vprof.GenerateLonghorn(64, 0x9A1)
	binned64 := vprof.BinProfile(profile64)
	return []ffCase{
		{
			name:   "sia1/fifo/packed-sticky",
			trace:  trace.SiaPhilly(siaParams, 1),
			nodes:  16,
			sched:  sched.FIFO{},
			placer: func() sim.Placer { return place.NewPacked(true, 7) },
		},
		{
			name:   "sia5/las/packed-sticky",
			trace:  trace.SiaPhilly(siaParams, 5),
			nodes:  16,
			sched:  sched.LAS{},
			placer: func() sim.Placer { return place.NewPacked(true, 7) },
		},
		{
			name:   "sia3/fifo/random-sticky",
			trace:  trace.SiaPhilly(siaParams, 3),
			nodes:  16,
			sched:  sched.FIFO{},
			placer: func() sim.Placer { return place.NewRandom(true, 11) },
		},
		{
			// Sparse Philly-like arrivals: long jobs, long quiet stretches —
			// the fast-forward sweet spot.
			name:   "synergy-sparse/fifo/packed-sticky",
			trace:  trace.Synergy(synParams),
			nodes:  16,
			sched:  sched.FIFO{},
			placer: func() sim.Placer { return place.NewPacked(true, 7) },
		},
		{
			// PAL is non-sticky, so fast-forward must decline and the naive
			// path must be taken in both runs — results identical trivially,
			// but this pins the eligibility gate.
			name:   "sia1/fifo/pal",
			trace:  trace.SiaPhilly(siaParams, 1),
			nodes:  16,
			sched:  sched.FIFO{},
			placer: func() sim.Placer { return core.NewPAL(binned64, 1.5, nil) },
		},
	}
}

func (c ffCase) config(t *testing.T, disableFF bool) sim.Config {
	t.Helper()
	topo := clusterTopology(c.nodes)
	profile := vprof.GenerateLonghorn(topo.Size(), 0x9A1)
	return sim.Config{
		Topology:            topo,
		Trace:               c.trace,
		Sched:               c.sched,
		Placer:              c.placer(),
		TrueProfile:         profile,
		Lacross:             1.5,
		MigrationPenaltySec: 10,
		RecordUtilization:   true,
		RecordEvents:        true,
		DisableFastForward:  disableFF,
	}
}

func TestFastForwardByteIdentical(t *testing.T) {
	for _, c := range ffCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			naive, err := sim.Run(c.config(t, true))
			if err != nil {
				t.Fatal(err)
			}
			fast, err := sim.Run(c.config(t, false))
			if err != nil {
				t.Fatal(err)
			}
			if len(naive.PlaceTimes) != len(fast.PlaceTimes) {
				t.Errorf("PlaceTimes count: naive %d, fast-forward %d",
					len(naive.PlaceTimes), len(fast.PlaceTimes))
			}
			// Wall-clock values are the one legitimately nondeterministic
			// field; blank them before the exact comparison.
			naive.PlaceTimes, fast.PlaceTimes = nil, nil
			if !reflect.DeepEqual(naive, fast) {
				report := func(label string, r *sim.Result) {
					t.Logf("%s: rounds=%d makespan=%v util=%v events=%d utilSeries=%d",
						label, r.Rounds, r.Makespan, r.Utilization, len(r.Events), len(r.UtilSeries))
				}
				report("naive", naive)
				report("fast ", fast)
				for i := range naive.Jobs {
					if !reflect.DeepEqual(naive.Jobs[i], fast.Jobs[i]) {
						t.Errorf("job %d diverged:\n  naive %+v\n  fast  %+v",
							i, *naive.Jobs[i], *fast.Jobs[i])
						break
					}
				}
				t.Fatal("fast-forward result not byte-identical to naive loop")
			}
		})
	}
}

// TestFastForwardActuallyEngages guards the bench claim: on a sparse
// sticky-placement run the engine must reach the fast path (if the
// eligibility gate silently never opened, the equivalence test above
// would pass vacuously).
func TestFastForwardActuallyEngages(t *testing.T) {
	// One long single-GPU job and a far-future second job: almost every
	// round is a pure progress round.
	tr := &trace.Trace{Name: "sparse", Jobs: []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 1, Work: 3e5},
		{ID: 1, Arrival: 2.9e5, Demand: 1, Work: 600},
	}}
	cfg := sim.Config{
		Topology:    clusterTopology(2),
		Trace:       tr,
		Sched:       sched.FIFO{},
		Placer:      place.NewPacked(true, 1),
		TrueProfile: vprof.GenerateLonghorn(8, 1),
		Lacross:     1.5,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ~1000 rounds of progress; with fast-forward engaged the placer is
	// consulted only when jobs actually need GPUs (twice).
	if len(res.PlaceTimes) > 4 {
		t.Errorf("placement called %d times on a 2-placement sparse trace; fast-forward not engaging",
			len(res.PlaceTimes))
	}
	if res.Rounds < 1000 {
		t.Errorf("rounds = %d, want >= 1000 (progress rounds must still be counted)", res.Rounds)
	}
}
