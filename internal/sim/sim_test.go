package sim

import (
	"math"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// flatProfile builds a profile where every GPU scores exactly 1.0 except
// the listed (class, gpu) overrides, applied before normalization on a
// cluster large enough that the median stays 1.0.
func flatProfile(t *testing.T, n int, overrides map[int]float64) *vprof.Profile {
	t.Helper()
	perClass := make([][]float64, vprof.NumClasses)
	for c := range perClass {
		s := make([]float64, n)
		for g := range s {
			s[g] = 1.0
		}
		perClass[c] = s
	}
	for g, v := range overrides {
		for c := range perClass {
			perClass[c][g] = v
		}
	}
	p, err := vprof.NewProfile("flat", perClass)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// firstFree is a trivial placer: hand each job the lowest-ID free GPUs.
type firstFree struct{ sticky bool }

func (f firstFree) Name() string { return "first-free" }
func (f firstFree) Sticky() bool { return f.sticky }
func (f firstFree) PlaceRound(c *cluster.Cluster, need []*Job, _ float64) map[int][]cluster.GPUID {
	out := make(map[int][]cluster.GPUID, len(need))
	free := c.FreeGPUs()
	idx := 0
	for _, j := range need {
		out[j.Spec.ID] = append([]cluster.GPUID(nil), free[idx:idx+j.Spec.Demand]...)
		idx += j.Spec.Demand
	}
	return out
}

// arrivalSched is a minimal FIFO used to avoid importing sched (cycle-free
// but keeps this package self-contained).
type arrivalSched struct{}

func (arrivalSched) Name() string { return "test-fifo" }
func (arrivalSched) Order(jobs []*Job, _ float64) []*Job {
	out := append([]*Job(nil), jobs...)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Spec.Arrival != out[b].Spec.Arrival {
			return out[a].Spec.Arrival < out[b].Spec.Arrival
		}
		return out[a].Spec.ID < out[b].Spec.ID
	})
	return out
}

func topo(nodes int) cluster.Topology {
	return cluster.Topology{NumNodes: nodes, GPUsPerNode: 4}
}

func baseConfig(t *testing.T, jobs []trace.JobSpec) Config {
	t.Helper()
	return Config{
		Topology:    topo(2),
		Trace:       &trace.Trace{Name: "test", Jobs: jobs},
		Sched:       arrivalSched{},
		Placer:      firstFree{},
		TrueProfile: flatProfile(t, 8, nil),
		Lacross:     1.0,
		RoundSec:    300,
	}
}

func TestSingleJobCompletes(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 1, Work: 450},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if !j.Done {
		t.Fatal("job did not finish")
	}
	// 450 s of work on score-1.0 GPUs: finishes mid-second-round at 450.
	if math.Abs(j.Finish-450) > 1e-6 {
		t.Errorf("finish = %v, want 450", j.Finish)
	}
	if math.Abs(j.JCT()-450) > 1e-6 {
		t.Errorf("JCT = %v", j.JCT())
	}
	if j.Wait() != 0 {
		t.Errorf("wait = %v, want 0", j.Wait())
	}
}

func TestSlowGPUStretchesJob(t *testing.T) {
	// GPU 0 scores 2.0; the job runs only there (demand 8 forces use of
	// all GPUs; max V = 2 doubles the time). Work 600 -> 1200 s.
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 8, Work: 600},
	})
	cfg.TrueProfile = flatProfile(t, 8, map[int]float64{0: 2.0})
	cfg.Lacross = 1.0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].Finish; math.Abs(got-1200) > 1e-6 {
		t.Errorf("finish = %v, want 1200 (2x slowdown)", got)
	}
}

func TestLocalityPenaltyApplied(t *testing.T) {
	// Demand 8 spans both nodes; Lacross 1.5 stretches 600 -> 900.
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 8, Work: 600},
	})
	cfg.Lacross = 1.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].Finish; math.Abs(got-900) > 1e-6 {
		t.Errorf("finish = %v, want 900 (1.5x locality)", got)
	}
}

func TestPackedJobAvoidsLocalityPenalty(t *testing.T) {
	// Demand 4 fits one node with the first-free placer: no penalty.
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 4, Work: 600},
	})
	cfg.Lacross = 1.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].Finish; math.Abs(got-600) > 1e-6 {
		t.Errorf("finish = %v, want 600 (packed)", got)
	}
}

func TestModelLacrossOverride(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 8, Work: 600, Model: "bert"},
	})
	cfg.Lacross = 1.5
	cfg.ModelLacross = map[string]float64{"bert": 2.0}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].Finish; math.Abs(got-1200) > 1e-6 {
		t.Errorf("finish = %v, want 1200 (model penalty 2.0)", got)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	// Two 8-GPU jobs: the second must wait for the first.
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 8, Work: 300},
		{ID: 1, Arrival: 0, Demand: 8, Work: 300},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j0, j1 := res.Jobs[0], res.Jobs[1]
	if j0.Finish != 300 {
		t.Errorf("job 0 finish = %v", j0.Finish)
	}
	if j1.FirstRun != 300 {
		t.Errorf("job 1 first run = %v, want 300", j1.FirstRun)
	}
	if j1.Finish != 600 {
		t.Errorf("job 1 finish = %v, want 600", j1.Finish)
	}
	if j1.Wait() != 300 {
		t.Errorf("job 1 wait = %v", j1.Wait())
	}
}

func TestStrictPrefixNoBackfill(t *testing.T) {
	// Job 0 occupies 4 GPUs; job 1 needs 8 (blocked); job 2 needs 1 and
	// arrives later: it must NOT leapfrog job 1 under the strict
	// mark-at-cluster-size rule.
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 4, Work: 600},
		{ID: 1, Arrival: 10, Demand: 8, Work: 300},
		{ID: 2, Arrival: 20, Demand: 1, Work: 300},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := res.Jobs[1], res.Jobs[2]
	if j1.FirstRun >= j2.FirstRun {
		t.Errorf("job 2 (first run %v) backfilled around blocked job 1 (%v)",
			j2.FirstRun, j1.FirstRun)
	}
}

// prioritySched gives lower Remaining higher priority (SRTF-like) to
// exercise preemption.
type prioritySched struct{}

func (prioritySched) Name() string { return "test-srtf" }
func (prioritySched) Order(jobs []*Job, _ float64) []*Job {
	out := append([]*Job(nil), jobs...)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Remaining != out[b].Remaining {
			return out[a].Remaining < out[b].Remaining
		}
		return out[a].Spec.ID < out[b].Spec.ID
	})
	return out
}

func TestPreemption(t *testing.T) {
	// A long 8-GPU job is preempted by a short one arriving later.
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 8, Work: 3000},
		{ID: 1, Arrival: 300, Demand: 8, Work: 300},
	})
	cfg.Sched = prioritySched{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j0, j1 := res.Jobs[0], res.Jobs[1]
	if j0.Preemptions == 0 {
		t.Error("long job was never preempted")
	}
	if j1.Finish >= j0.Finish {
		t.Error("short job should finish first under SRTF")
	}
	// Work conservation: the long job's total service equals its work.
	if math.Abs(j0.Attained/8-3000) > 1e-6 {
		t.Errorf("long job attained %v GPU-seconds, want %v", j0.Attained, 8*3000.0)
	}
}

func TestStickyKeepsAllocation(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 2, Work: 900},
	})
	cfg.Placer = firstFree{sticky: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Migrations != 0 {
		t.Errorf("sticky job migrated %d times", res.Jobs[0].Migrations)
	}
}

// rotatingPlacer forces a different allocation every round to exercise
// migration accounting.
type rotatingPlacer struct{ round int }

func (r *rotatingPlacer) Name() string { return "rotating" }
func (r *rotatingPlacer) Sticky() bool { return false }
func (r *rotatingPlacer) PlaceRound(c *cluster.Cluster, need []*Job, _ float64) map[int][]cluster.GPUID {
	r.round++
	out := make(map[int][]cluster.GPUID, len(need))
	free := c.FreeGPUs()
	idx := r.round % 2 // alternate between prefix and suffix of the free list
	for _, j := range need {
		var alloc []cluster.GPUID
		if idx == 0 {
			alloc = append(alloc, free[:j.Spec.Demand]...)
		} else {
			alloc = append(alloc, free[len(free)-j.Spec.Demand:]...)
		}
		out[j.Spec.ID] = alloc
	}
	return out
}

func TestMigrationCountingAndPenalty(t *testing.T) {
	jobs := []trace.JobSpec{{ID: 0, Arrival: 0, Demand: 2, Work: 1500}}
	cfg := baseConfig(t, jobs)
	cfg.Placer = &rotatingPlacer{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Migrations == 0 {
		t.Fatal("rotating placer produced no migrations")
	}
	noPenaltyFinish := res.Jobs[0].Finish

	cfg2 := baseConfig(t, jobs)
	cfg2.Placer = &rotatingPlacer{}
	cfg2.MigrationPenaltySec = 60
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Jobs[0].Finish <= noPenaltyFinish {
		t.Errorf("migration penalty did not slow the job: %v vs %v",
			res2.Jobs[0].Finish, noPenaltyFinish)
	}
}

func TestAdmissionRejectsOversizedJob(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 99, Work: 300}, // bigger than the cluster
		{ID: 1, Arrival: 10, Demand: 1, Work: 300},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Jobs[1].Done {
		t.Error("small job behind the rejected one never ran")
	}
}

func TestMeasureWindow(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 1, Work: 100},
		{ID: 1, Arrival: 0, Demand: 1, Work: 100},
		{ID: 2, Arrival: 0, Demand: 1, Work: 100},
	})
	cfg.MeasureFirst, cfg.MeasureLast = 1, 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measured) != 2 {
		t.Fatalf("measured %d jobs, want 2", len(res.Measured))
	}
	for _, j := range res.Measured {
		if j.Spec.ID == 0 {
			t.Error("job 0 outside the window was measured")
		}
	}
}

func TestUtilizationAndMakespan(t *testing.T) {
	// One 8-GPU job for 600 s: utilization 1.0, makespan 600.
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 8, Work: 600},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-600) > 1e-6 {
		t.Errorf("makespan = %v", res.Makespan)
	}
	if math.Abs(res.Utilization-1.0) > 1e-9 {
		t.Errorf("utilization = %v, want 1.0", res.Utilization)
	}
}

func TestUtilSeriesRecorded(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 4, Work: 900},
	})
	cfg.RecordUtilization = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UtilSeries) != 3 {
		t.Fatalf("series length %d, want 3 rounds", len(res.UtilSeries))
	}
	for _, s := range res.UtilSeries {
		if s.InUse != 4 {
			t.Errorf("in use = %d, want 4", s.InUse)
		}
	}
}

func TestIdleGapSkipsToNextArrival(t *testing.T) {
	// A huge gap between jobs must not blow MaxRounds.
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 1, Work: 100},
		{ID: 1, Arrival: 1e6, Demand: 1, Work: 100},
	})
	cfg.MaxRounds = 10000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Jobs[1].Done {
		t.Error("late job never ran")
	}
	if res.Jobs[1].Wait() > 300 {
		t.Errorf("late job waited %v, want < one round", res.Jobs[1].Wait())
	}
}

func TestDeterminism(t *testing.T) {
	jobs := make([]trace.JobSpec, 20)
	for i := range jobs {
		jobs[i] = trace.JobSpec{
			ID: i, Arrival: float64(i * 100), Demand: 1 + i%4, Work: 500 + float64(i*37),
		}
	}
	run := func() []float64 {
		cfg := baseConfig(t, jobs)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.JCTs()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at job %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := baseConfig(t, []trace.JobSpec{{ID: 0, Arrival: 0, Demand: 1, Work: 100}})

	noTrace := good
	noTrace.Trace = &trace.Trace{}
	if _, err := Run(noTrace); err == nil {
		t.Error("empty trace accepted")
	}

	noSched := good
	noSched.Sched = nil
	if _, err := Run(noSched); err == nil {
		t.Error("nil scheduler accepted")
	}

	noProfile := good
	noProfile.TrueProfile = nil
	if _, err := Run(noProfile); err == nil {
		t.Error("nil profile accepted")
	}

	smallProfile := good
	smallProfile.TrueProfile = flatProfile(t, 4, nil) // cluster has 8
	if _, err := Run(smallProfile); err == nil {
		t.Error("undersized profile accepted")
	}

	badTopo := good
	badTopo.Topology = cluster.Topology{}
	if _, err := Run(badTopo); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestMaxRoundsGuard(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 1, Work: 1e12},
		{ID: 1, Arrival: 100, Demand: 1, Work: 60},
	})
	cfg.MaxRounds = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("truncated run must not error: %v", err)
	}
	if !res.Truncated {
		t.Error("MaxRounds exceeded without Truncated flag")
	}
	if res.Unfinished != 1 {
		t.Errorf("Unfinished = %d, want 1 (the 1e12-second job)", res.Unfinished)
	}
	if res.Rounds < cfg.MaxRounds {
		t.Errorf("Rounds = %d, want >= MaxRounds", res.Rounds)
	}
	if !res.Jobs[1].Done {
		t.Error("short job should have completed before truncation")
	}

	// A completed run must not be flagged.
	ok := baseConfig(t, []trace.JobSpec{{ID: 0, Arrival: 0, Demand: 1, Work: 100}})
	full, err := Run(ok)
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated || full.Unfinished != 0 {
		t.Errorf("completed run flagged: truncated=%v unfinished=%d", full.Truncated, full.Unfinished)
	}
}

func TestWorkConservationManyJobs(t *testing.T) {
	// Total attained GPU-seconds must equal total demanded work when all
	// GPUs score 1.0 and no locality penalty applies.
	jobs := make([]trace.JobSpec, 10)
	var want float64
	for i := range jobs {
		jobs[i] = trace.JobSpec{ID: i, Arrival: float64(i * 50), Demand: 1 + i%3, Work: 400}
		want += 400 * float64(1+i%3)
	}
	cfg := baseConfig(t, jobs)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for _, j := range res.Jobs {
		got += j.Attained
	}
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("attained %v GPU-seconds, want %v", got, want)
	}
}

func TestMultiGPUJCTs(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 1, Work: 100},
		{ID: 1, Arrival: 0, Demand: 2, Work: 100},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.MultiGPUJCTs()); got != 1 {
		t.Errorf("multi-GPU JCTs = %d, want 1", got)
	}
}

func TestAdmitAllAndFitsNames(t *testing.T) {
	if (AdmitAll{}).Name() == "" || (AdmitFits{}).Name() == "" {
		t.Error("admission policies need names")
	}
	c := cluster.New(topo(1))
	big := &Job{Spec: trace.JobSpec{Demand: 100}}
	if (AdmitFits{}).Admit(big, c) {
		t.Error("AdmitFits accepted an impossible job")
	}
	if !(AdmitAll{}).Admit(big, c) {
		t.Error("AdmitAll rejected a job")
	}
}

func TestRackLocalityLevels(t *testing.T) {
	// 4 nodes, 2 nodes per rack. An 8-GPU job confined to rack 0 pays
	// Lrack; the same demand forced across racks pays Lacross.
	topoRack := cluster.Topology{NumNodes: 4, GPUsPerNode: 4, NodesPerRack: 2}
	cfg := Config{
		Topology:    topoRack,
		Trace:       &trace.Trace{Name: "rack", Jobs: []trace.JobSpec{{ID: 0, Arrival: 0, Demand: 8, Work: 600}}},
		Sched:       arrivalSched{},
		Placer:      firstFree{}, // GPUs 0-7 = nodes 0,1 = rack 0
		TrueProfile: flatProfile(t, 16, nil),
		Lacross:     2.0,
		Lrack:       1.25,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].Finish; math.Abs(got-750) > 1e-6 {
		t.Errorf("rack-confined finish = %v, want 750 (1.25x)", got)
	}

	// Demand 16 spans both racks: full Lacross.
	cfg.Trace = &trace.Trace{Name: "rack2", Jobs: []trace.JobSpec{{ID: 0, Arrival: 0, Demand: 16, Work: 600}}}
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].Finish; math.Abs(got-1200) > 1e-6 {
		t.Errorf("rack-spanning finish = %v, want 1200 (2x)", got)
	}
}

// recordingObserver captures observations for verification.
type recordingObserver struct {
	calls int
	last  []float64
}

func (r *recordingObserver) ObserveRound(j *Job, perGPU []float64, _ float64) {
	r.calls++
	r.last = append(r.last[:0], perGPU...)
}

func TestObserverReceivesPerGPUScores(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 2, Work: 500},
	})
	cfg.TrueProfile = flatProfile(t, 8, map[int]float64{1: 2.0})
	obs := &recordingObserver{}
	cfg.Observer = obs
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if obs.calls == 0 {
		t.Fatal("observer never called")
	}
	if len(obs.last) != 2 {
		t.Fatalf("perGPU length %d, want 2", len(obs.last))
	}
	// firstFree allocates GPUs 0 and 1; GPU 1 is the 2x one. The profile
	// is renormalized so check the ratio rather than absolutes.
	if obs.last[1]/obs.last[0] < 1.8 {
		t.Errorf("per-GPU scores = %v, want second ~2x the first", obs.last)
	}
}

func TestEventLog(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 8, Work: 3000},
		{ID: 1, Arrival: 300, Demand: 8, Work: 300},
		{ID: 2, Arrival: 400, Demand: 99, Work: 100}, // rejected
	})
	cfg.Sched = prioritySched{}
	cfg.RecordEvents = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.CountEvents()
	if counts[EventAdmit] != 2 {
		t.Errorf("admits = %d, want 2", counts[EventAdmit])
	}
	if counts[EventReject] != 1 {
		t.Errorf("rejects = %d, want 1", counts[EventReject])
	}
	if counts[EventStart] != 2 {
		t.Errorf("starts = %d, want 2", counts[EventStart])
	}
	if counts[EventFinish] != 2 {
		t.Errorf("finishes = %d, want 2", counts[EventFinish])
	}
	if counts[EventPreempt] == 0 || counts[EventResume] == 0 {
		t.Errorf("expected preempt+resume, got %v", counts)
	}

	// Job 0's log must be ordered and bracketed by start..finish.
	evs := res.EventsFor(0)
	if len(evs) < 3 {
		t.Fatalf("job 0 events = %v", evs)
	}
	if evs[0].Kind != EventAdmit || evs[len(evs)-1].Kind != EventFinish {
		t.Errorf("job 0 log = %v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Errorf("events out of order: %v then %v", evs[i-1], evs[i])
		}
	}
	if evs[0].String() == "" || EventKind(99).String() == "" {
		t.Error("event rendering broken")
	}
}

func TestEventLogOffByDefault(t *testing.T) {
	cfg := baseConfig(t, []trace.JobSpec{{ID: 0, Arrival: 0, Demand: 1, Work: 100}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 0 {
		t.Errorf("events recorded without RecordEvents: %d", len(res.Events))
	}
}

func TestFirstRunDelayVsWait(t *testing.T) {
	// Job 1 runs immediately under SRTF-like priority, then the long job
	// 0 resumes; job 0's Wait (total queued) exceeds its FirstRunDelay.
	cfg := baseConfig(t, []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 8, Work: 3000},
		{ID: 1, Arrival: 300, Demand: 8, Work: 900},
	})
	cfg.Sched = prioritySched{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j0 := res.Jobs[0]
	if j0.FirstRunDelay() != 0 {
		t.Errorf("job 0 first-run delay = %v, want 0", j0.FirstRunDelay())
	}
	if j0.Wait() <= 0 {
		t.Errorf("job 0 total wait = %v, want > 0 (suspension counted)", j0.Wait())
	}
}
