package sim_test

// Benchmarks backing the dense-trace (event-horizon) speedup claim.
// PR 2's fast-forward only engaged on *sparse* traces — every active
// job running, nothing waiting. These benches cover the opposite
// regime: a saturated cluster with a standing queue, where the old
// engine re-sorted, re-marked and re-placed every single round. The
// incremental core bulk-advances through busy rounds whose decision
// provably repeats (see sim.PartitionStableScheduler), so the dense
// workloads below are exactly where it must earn its keep. Run with
//
//	go test -bench=BenchmarkSimDense -benchtime=1x ./internal/sim
//
// BenchmarkSimDenseSpeedup reports the naive/incremental ratio
// directly; CI records it in BENCH_sim.json. Trace and profile
// generation happen once, outside the timed region — only the engine
// is under measurement (each run still gets a fresh placer, since
// placers carry RNG state).

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/place"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// denseInputs materializes the shared benchmark inputs once.
var denseInputs = sync.OnceValue(func() (in struct {
	profile32 *vprof.Profile
	sia       *trace.Trace
	bursty    *trace.Trace
}) {
	in.profile32 = vprof.GenerateLonghorn(32, 0x9A1)
	// Saturated Sia: 320 jobs submitted over 8 hours onto 8 GPUs, so
	// the queue stays deep from the first hour to the drain.
	siaParams := trace.DefaultSiaPhillyParams()
	siaParams.NumJobs = 320
	in.sia = trace.SiaPhilly(siaParams, 5)
	// Bursty synthetic: MMPP arrivals of long jobs (8 h median) that
	// alternate saturation bursts with busy-but-stable stretches — the
	// regime every synthetic bursty/diurnal sweep spends its rounds in.
	tr, err := trace.Synth(trace.SynthParams{
		Name:          "dense-bursty-bench",
		NumJobs:       500,
		Seed:          0xD3,
		Arrivals:      trace.ArrivalBursty,
		JobsPerHour:   25,
		MedianWorkSec: 8 * 3600,
	})
	if err != nil {
		panic(err)
	}
	in.bursty = tr
	return in
})

// denseSiaConfig is the saturated Sia workload under FIFO +
// Packed-Sticky (arrival order is frozen, so the whole standing-queue
// regime is bulk-advanceable between arrivals and completions).
func denseSiaConfig(disableFF bool) sim.Config {
	in := denseInputs()
	return sim.Config{
		Topology:           clusterTopology(2), // 8 GPUs: cumulative demand far exceeds capacity
		Trace:              in.sia,
		Sched:              sched.FIFO{},
		Placer:             place.NewPacked(true, 7),
		TrueProfile:        in.profile32,
		Lacross:            1.5,
		DisableFastForward: disableFF,
	}
}

// denseBurstyConfig is the bursty synthetic workload under SRTF +
// Packed-Sticky (remaining-work priorities evolve every round, but only
// in the partition-safe direction — the incremental ordering phase
// re-sorts in place when runners cross).
func denseBurstyConfig(disableFF bool) sim.Config {
	in := denseInputs()
	return sim.Config{
		Topology:           clusterTopology(8),
		Trace:              in.bursty,
		Sched:              sched.SRTF{},
		Placer:             place.NewPacked(true, 11),
		TrueProfile:        in.profile32,
		Lacross:            1.5,
		DisableFastForward: disableFF,
	}
}

func runDense(b *testing.B, mk func(bool) sim.Config, disableFF bool) {
	b.Helper()
	denseInputs() // materialize shared inputs outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(mk(disableFF)) // fresh config: placers carry RNG state
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds == 0 {
			b.Fatal("empty run")
		}
	}
}

// The incremental benchmarks double as the allocation gauge for the
// steady-state round loop (run with -benchmem). The PR 9 allocation
// pass — generic sorts instead of reflection-based sort.Slice*, the
// engine-owned reused ordering buffer, and packScratch in place — took
// Sia from 500897 B/op / 3260 allocs/op to 159593 B/op / 1306 allocs/op
// and Bursty from 1216369 B/op / 6672 allocs/op to 278289 B/op /
// 2459 allocs/op (-benchtime=5x); what remains is newEngine setup and
// the allocation slices the engine retains, not per-round churn.
func BenchmarkSimDenseSiaNaive(b *testing.B)       { runDense(b, denseSiaConfig, true) }
func BenchmarkSimDenseSiaIncremental(b *testing.B) { runDense(b, denseSiaConfig, false) }

func BenchmarkSimDenseBurstyNaive(b *testing.B)       { runDense(b, denseBurstyConfig, true) }
func BenchmarkSimDenseBurstyIncremental(b *testing.B) { runDense(b, denseBurstyConfig, false) }

// BenchmarkSimDenseSpeedup runs both dense configurations each way back
// to back and reports per-workload ratios plus their geometric mean, so
// one -benchtime=1x invocation answers "what does the incremental core
// buy on dense traces".
func BenchmarkSimDenseSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sia := measureSpeedup(b, denseSiaConfig)
		bursty := measureSpeedup(b, denseBurstyConfig)
		b.ReportMetric(sia, "sia-speedup")
		b.ReportMetric(bursty, "bursty-speedup")
		b.ReportMetric(geomean2(sia, bursty), "dense-speedup")
	}
}

// measureSpeedup times each engine as the best of three runs — these
// are millisecond-scale single simulations, so min-of-N filters
// scheduler noise on shared CI machines. Every run gets a fresh config
// (and so a fresh placer RNG) from mk.
func measureSpeedup(b *testing.B, mk func(bool) sim.Config) float64 {
	b.Helper()
	best := func(disableFF bool) time.Duration {
		bestD := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			cfg := mk(disableFF)
			t0 := time.Now()
			if _, err := sim.Run(cfg); err != nil {
				b.Fatal(err)
			}
			if d := time.Since(t0); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	naive := best(true)
	fast := best(false)
	return naive.Seconds() / fast.Seconds()
}

func geomean2(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Sqrt(a * b)
}
