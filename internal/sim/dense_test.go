package sim_test

// Equivalence guard for the incremental engine core on *dense* traces —
// the regime PR 2's sparse fast-forward never touched. For every case
// below the incremental engine (dirty-set ordering, skipped no-op
// placement, event-horizon bulk advance through busy rounds with a
// standing queue) must produce a Result byte-identical to the retained
// naive reference loop, with and without a metrics sink attached. The
// cases are chosen to exercise the dense machinery hard: saturated Sia
// and Synergy queues under FIFO and LAS, and a preemption-heavy
// synthetic workload whose LAS priorities churn the partition
// constantly (the regression regime for the demotion-during-advance
// ceiling bug).

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/place"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vprof"
)

func denseCases(t *testing.T) []ffCase {
	t.Helper()
	burstyPreempt, err := trace.Synth(trace.SynthParams{
		Name:        "dense-preempt",
		NumJobs:     250,
		Seed:        0xBEEF,
		Arrivals:    trace.ArrivalBursty,
		JobsPerHour: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	synParams := trace.DefaultSynergyParams(12) // saturating on 32 GPUs
	synParams.NumJobs = 250
	return []ffCase{
		{
			name:   "dense-sia5/las/packed-sticky",
			trace:  trace.SiaPhilly(trace.DefaultSiaPhillyParams(), 5),
			nodes:  8,
			sched:  sched.LAS{},
			placer: func() sim.Placer { return place.NewPacked(true, 7) },
		},
		{
			name:   "dense-sia5/fifo/packed-sticky",
			trace:  trace.SiaPhilly(trace.DefaultSiaPhillyParams(), 5),
			nodes:  8,
			sched:  sched.FIFO{},
			placer: func() sim.Placer { return place.NewPacked(true, 7) },
		},
		{
			name:   "dense-sia3/srtf/random-sticky",
			trace:  trace.SiaPhilly(trace.DefaultSiaPhillyParams(), 3),
			nodes:  8,
			sched:  sched.SRTF{},
			placer: func() sim.Placer { return place.NewRandom(true, 13) },
		},
		{
			name:   "dense-synergy/las/packed-sticky",
			trace:  trace.Synergy(synParams),
			nodes:  8,
			sched:  sched.LAS{},
			placer: func() sim.Placer { return place.NewPacked(true, 9) },
		},
		{
			// Preemption-heavy: a tiny LAS threshold demotes every job
			// after a few rounds of service, so fresh arrivals preempt
			// runners all run long, and the order horizon terminates spans
			// constantly. This is the stress case for the attained
			// ceilings.
			name:   "preempt-heavy/las-lowthresh/packed-sticky",
			trace:  burstyPreempt,
			nodes:  8,
			sched:  sched.LAS{Threshold: 1800},
			placer: func() sim.Placer { return place.NewPacked(true, 21) },
		},
	}
}

func TestDenseIncrementalByteIdentical(t *testing.T) {
	suiteCtr := &sim.Counters{}
	for _, c := range denseCases(t) {
		c := c
		for _, withMetrics := range []bool{false, true} {
			withMetrics := withMetrics
			t.Run(fmt.Sprintf("%s/metrics=%v", c.name, withMetrics), func(t *testing.T) {
				naiveCfg := c.config(t, true)
				fastCfg := c.config(t, false)
				fastCfg.Counters = &sim.Counters{}
				if withMetrics {
					naiveCfg.Metrics = collectorFor(t, c, 1)
					fastCfg.Metrics = collectorFor(t, c, 1)
				}
				naive, err := sim.Run(naiveCfg)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := sim.Run(fastCfg)
				if err != nil {
					t.Fatal(err)
				}
				suiteCtr.Add(fastCfg.Counters)
				if len(naive.PlaceTimes) != len(fast.PlaceTimes) {
					t.Errorf("PlaceTimes count: naive %d, incremental %d",
						len(naive.PlaceTimes), len(fast.PlaceTimes))
				}
				if withMetrics {
					np, fp := metrics.FromResult(naive), metrics.FromResult(fast)
					if np == nil || fp == nil {
						t.Fatal("payload missing from an instrumented run")
					}
					if !reflect.DeepEqual(np, fp) {
						t.Error("metrics payload not byte-identical across the incremental engine")
					}
				}
				// Wall-clock values and the sink pointers are the only
				// legitimately differing fields; blank them before the
				// exact comparison.
				naive.PlaceTimes, fast.PlaceTimes = nil, nil
				naive.Metrics, fast.Metrics = nil, nil
				if !reflect.DeepEqual(naive, fast) {
					for i := range naive.Jobs {
						if !reflect.DeepEqual(naive.Jobs[i], fast.Jobs[i]) {
							t.Errorf("job %d diverged:\n  naive       %+v\n  incremental %+v",
								i, *naive.Jobs[i], *fast.Jobs[i])
							break
						}
					}
					t.Fatal("incremental result not byte-identical to naive reference loop")
				}
			})
		}
	}
	// Engagement guard: the suite must actually have exercised the dense
	// bulk path (spans entered with a non-empty waiting set) — otherwise
	// the byte-identity above is vacuous.
	if suiteCtr.DenseSpans == 0 {
		t.Error("dense bulk-advance path never engaged across the dense suite")
	}
}

// TestDenseIncrementalActuallyEngages pins the dense path's engagement
// on a minimal saturated workload, independent of the suite above: four
// long FIFO jobs on a cluster that fits only two must bulk-advance the
// stretches between completions even though jobs are waiting.
func TestDenseIncrementalActuallyEngages(t *testing.T) {
	tr := &trace.Trace{Name: "dense-mini", Jobs: []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 4, Work: 3e5},
		{ID: 1, Arrival: 0, Demand: 4, Work: 3e5},
		{ID: 2, Arrival: 0, Demand: 4, Work: 3e5},
		{ID: 3, Arrival: 0, Demand: 4, Work: 3e5},
	}}
	ctr := &sim.Counters{}
	cfg := sim.Config{
		Topology:    clusterTopology(2), // 8 GPUs: two jobs run, two wait
		Trace:       tr,
		Sched:       sched.FIFO{},
		Placer:      place.NewPacked(true, 1),
		TrueProfile: vprof.GenerateLonghorn(8, 1),
		Lacross:     1.5,
		Counters:    ctr,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.DenseSpans == 0 {
		t.Error("no dense spans on a saturated FIFO trace")
	}
	// ~1000+ progress rounds per phase; virtually all must be skipped.
	if res.Rounds < 1000 || ctr.BulkRounds() < int64(res.Rounds)*9/10 {
		t.Errorf("rounds=%d bulk=%d; dense bulk advance not skipping the busy stretches",
			res.Rounds, ctr.BulkRounds())
	}
	if got := ctr.TotalRounds(); got != int64(res.Rounds) {
		t.Errorf("counter TotalRounds=%d, Result.Rounds=%d; regime counts must partition the rounds",
			got, res.Rounds)
	}
	// Placement must have been consulted only when occupancy changed
	// (two initial placements + two promotions after completions).
	if len(res.PlaceTimes) > 6 {
		t.Errorf("placement called %d times, want <= 6", len(res.PlaceTimes))
	}
}
