package sim_test

// BenchmarkCountersOverhead pins the cost of attaching Config.Counters
// at the noise floor: the counters are nil-guarded integer increments,
// so both the fast-forwarded and the naive round loop must run at the
// same speed with and without them. Run with
//
//	go test -bench=BenchmarkCountersOverhead -benchtime=1x ./internal/sim
//
// CI archives the reported corners as BENCH_counters.json.

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func BenchmarkCountersOverhead(b *testing.B) {
	run := func(cfg sim.Config) time.Duration {
		t0 := time.Now()
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	// Interleaved best-of-5 per corner pair: the runs are short, so
	// minima are the stable statistic (scheduling noise only ever adds
	// time), and alternating on/off keeps heap growth and GC drift from
	// biasing whichever corner runs first. One untimed warmup pair grows
	// the heap before anything is measured.
	bestPair := func(mkOn, mkOff func() sim.Config) (on, off time.Duration) {
		run(mkOn())
		run(mkOff())
		on, off = time.Duration(1<<63-1), time.Duration(1<<63-1)
		for i := 0; i < 5; i++ {
			if d := run(mkOn()); d < on {
				on = d
			}
			if d := run(mkOff()); d < off {
				off = d
			}
		}
		return on, off
	}
	withCounters := func(disableFF bool) func() sim.Config {
		return func() sim.Config {
			cfg := sparseConfig(disableFF)
			cfg.Counters = &sim.Counters{}
			return cfg
		}
	}
	without := func(disableFF bool) func() sim.Config {
		return func() sim.Config { return sparseConfig(disableFF) }
	}
	for i := 0; i < b.N; i++ {
		onFast, offFast := bestPair(withCounters(false), without(false))
		onNaive, offNaive := bestPair(withCounters(true), without(true))
		b.ReportMetric(onFast.Seconds()*1000, "counters-on-ms")
		b.ReportMetric(offFast.Seconds()*1000, "counters-off-ms")
		b.ReportMetric(100*(onFast.Seconds()-offFast.Seconds())/offFast.Seconds(), "overhead-pct")
		b.ReportMetric(100*(onNaive.Seconds()-offNaive.Seconds())/offNaive.Seconds(), "naive-overhead-pct")
	}
}
