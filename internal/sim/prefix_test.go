package sim

// White-box unit tests for schedulablePrefix — the "mark the queue at
// cluster size" walk (§III-B, Fig. 4). Its edge cases were previously
// covered only indirectly through whole-engine runs; the incremental
// core leans on its exact semantics (the prefix is a pure function of
// order, demands and cluster size), so they are pinned here directly.

import (
	"testing"

	"repro/internal/trace"
)

func prefixJobs(demands ...int) []*Job {
	out := make([]*Job, len(demands))
	for i, d := range demands {
		out[i] = &Job{Spec: trace.JobSpec{ID: i, Demand: d}}
	}
	return out
}

func prefixIDs(jobs []*Job) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.Spec.ID
	}
	return out
}

func TestSchedulablePrefix(t *testing.T) {
	cases := []struct {
		name    string
		demands []int
		size    int
		want    int // prefix length
	}{
		{name: "empty ordered set", demands: nil, size: 8, want: 0},
		{name: "everything fits exactly", demands: []int{4, 2, 2}, size: 8, want: 3},
		{name: "everything fits with slack", demands: []int{1, 2}, size: 8, want: 2},
		{
			// A head-of-queue job larger than the whole cluster blocks
			// everything: the walk stops at the first non-fitting job, with
			// no backfilling around it (AdmitFits normally rejects such
			// jobs; a scheduler is still allowed to order one first).
			name: "first job larger than cluster", demands: []int{10, 1, 1}, size: 8, want: 0,
		},
		{
			// The cut is *not* at the first individually-large job but at
			// the first cumulative overflow.
			name: "cut at cumulative overflow", demands: []int{4, 3, 2, 1}, size: 8, want: 2,
		},
		{
			// Jobs behind the cut are excluded even if they would fit in
			// the leftover capacity (demand 1 <= 8-7): no backfilling.
			name: "no backfill behind the cut", demands: []int{4, 3, 2, 1}, size: 8, want: 2,
		},
		{
			// Prefix cut mid-tie: three equal-demand jobs, capacity for
			// two. The cut must fall exactly after the second, keeping the
			// scheduler's tiebreak order authoritative about *which* equal
			// jobs run.
			name: "cut mid-tie", demands: []int{3, 3, 3}, size: 6, want: 2,
		},
		{name: "exact fill then cut", demands: []int{4, 4, 1}, size: 8, want: 2},
		{name: "zero-capacity cluster", demands: []int{1}, size: 0, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ordered := prefixJobs(tc.demands...)
			got := schedulablePrefix(ordered, tc.size)
			if len(got) != tc.want {
				t.Fatalf("prefix length = %d, want %d (demands %v, size %d; got IDs %v)",
					len(got), tc.want, tc.demands, tc.size, prefixIDs(got))
			}
			// The prefix must be exactly the leading slice of the order.
			for i, j := range got {
				if j != ordered[i] {
					t.Fatalf("prefix[%d] = job %d, want job %d (must be a leading slice)",
						i, j.Spec.ID, ordered[i].Spec.ID)
				}
			}
			// And its cumulative demand must fit.
			used := 0
			for _, j := range got {
				used += j.Spec.Demand
			}
			if used > tc.size {
				t.Fatalf("prefix demand %d exceeds cluster size %d", used, tc.size)
			}
		})
	}
}
