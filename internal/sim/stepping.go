package sim

// Scheduler capability interfaces for the incremental engine core.
//
// The engine's round loop runs in four stepping regimes (documented in
// docs/ARCHITECTURE.md "Engine stepping"): the naive reference loop, the
// idle-gap skip, the sparse fast-forward, and the dense bulk advance.
// The dense regime — skipping busy rounds whose scheduling decision
// provably repeats the previous one even though jobs are waiting — needs
// two facts the Scheduler interface alone cannot supply: that the
// ordering is a strict total order the engine may maintain incrementally
// instead of re-sorting, and a per-job bound on how long the
// running/waiting partition stays put. Schedulers opt in by implementing
// the interfaces below; a scheduler that implements neither simply keeps
// the pre-incremental behavior (full re-sort every round, dense bulk
// advance only when nothing is waiting).

// TotalOrderScheduler is implemented by schedulers whose Order is the
// unique sequence induced by a strict total order over jobs. The
// contract: Less is irreflexive, transitive, and total (any two distinct
// jobs compare, typically via a final job-ID tiebreak), it depends on
// `now` and job state only through the values Order itself consults, and
// Order(jobs, now) returns exactly the jobs sorted by Less.
//
// The engine uses Less to keep the previous round's ordering alive
// across rounds in which the active set's membership did not change: it
// verifies sortedness in O(n) and re-sorts in place only when priorities
// actually crossed. Because the order is total, the maintained sequence
// is identical to what a fresh Order call would return, so the
// optimization cannot perturb results (the byte-identity suites pin
// this).
type TotalOrderScheduler interface {
	Scheduler
	Less(a, b *Job, now float64) bool
}

// PartitionStableScheduler is implemented by schedulers that can bound,
// per running job, how much attained service the job may accumulate
// before the scheduler's ordering could first interleave it with a
// waiting job (or move it across an internal queue boundary, which
// amounts to the same thing). This is the dense-trace generalization of
// the sparse fast-forward eligibility: with a sticky placer, no
// arrivals and no completions, the schedulable prefix — and therefore
// every placement decision — provably repeats while every running job's
// Attained stays strictly below its ceiling.
//
// AttainedCeilings fills ceilings[i] with the bound for running[i];
// math.Inf(1) means the partition can never flip on that job's account.
// It is only called with len(waiting) > 0 (the no-waiting case needs no
// scheduler cooperation) and may assume the engine-guaranteed invariant
// that every running job currently orders ahead of every waiting job.
// Waiting jobs are frozen during a bulk span (the engine only advances
// placed jobs), so their keys are constants. Bounds may be conservative
// (too small only costs skipped-span length, never correctness): the
// engine hands control back to the full loop — real sort, real prefix,
// real placement — before executing any round in which a running job's
// Attained has reached its ceiling.
type PartitionStableScheduler interface {
	Scheduler
	AttainedCeilings(running, waiting []*Job, ceilings []float64)
}
