package sim

// Decision tracing: the engine's explainability hook. Where the metrics
// hook (MetricsSink) records *outcomes* — series, histograms, lifecycle
// records — the decision hook records *why*: the scheduler's order over
// the schedulable prefix, each running job's partition-stability
// ceiling, the locality/variability score decomposition of every
// committed placement, and preemptions. The contract is the same
// span-based one as RoundObservation: every simulated round is covered
// by exactly one observation, in time order, and attaching a sink must
// leave Result byte-identical (the decision determinism tests pin this).

// PlacementDecision describes one committed allocation: which job got
// GPUs, how the allocation spans the topology, and the Equation-1 score
// decomposition the engine charges for it (locality penalty × worst
// PM score). It is recorded at commit time in the placement phase, so it
// reflects the allocation actually taken, not a candidate.
type PlacementDecision struct {
	// Job is the placed job's ID; GPUs its demand (= allocation size).
	Job  int
	GPUs int
	// Nodes and Racks count the topology units the allocation spans.
	Nodes int
	Racks int
	// Locality is the L factor of Equation 1 (1.0 when node-local),
	// PMScore the max per-GPU variability score of the allocation, and
	// Slowdown their product — the multiplier the job will run under.
	Locality float64
	PMScore  float64
	Slowdown float64
	// Started: first allocation ever. Resumed: re-allocated after a
	// preemption. Migrated: the running job's GPU set changed.
	Started  bool
	Resumed  bool
	Migrated bool
}

// PreemptionDecision describes one job descheduled by priority in the
// placement phase (it fell out of the schedulable prefix).
type PreemptionDecision struct {
	Job  int
	GPUs int
}

// DecisionObservation describes the scheduling decision in force over a
// span of one or more consecutive rounds. A materialized engine round is
// a span of length 1 carrying the full scheduler order, ceilings and any
// placement/preemption decisions; a fast-forwarded or bulk-advanced
// stretch (or an idle gap) arrives as one observation whose decision
// provably repeats the previous one. The engine guarantees every
// simulated round is covered by exactly one observation, in time order.
// All slices are engine-owned scratch, valid only during the call.
type DecisionObservation struct {
	// Start is the engine clock at the span's first round; successive
	// rounds follow at RoundSec intervals.
	Start    float64
	RoundSec float64
	// Rounds is the span length (>= 1).
	Rounds int
	// Order is the scheduling order over the active set for a
	// materialized round (running prefix first, then waiters), or the
	// running partition for a bulk span (whose decision repeats the
	// previous observation's, so its order content is never the first
	// word on a span). Nil for an idle gap.
	Order []*Job
	// Prefix is the number of leading Order entries holding GPUs (the
	// schedulable prefix).
	Prefix int
	// Waiting counts active jobs without GPUs.
	Waiting int
	// Ceilings[i] is Order[i]'s attained-service ceiling (i < Prefix):
	// the bound below which the running/waiting partition provably
	// holds, from PartitionStableScheduler. May contain ±Inf. Nil when
	// no waiters exist, the scheduler does not expose partition
	// stability, or the span is a bulk/idle one.
	Ceilings []float64
	// Placements and Preemptions are the decisions committed in this
	// round's placement phase (materialized rounds only; always empty
	// for bulk spans and idle gaps).
	Placements  []PlacementDecision
	Preemptions []PreemptionDecision
}

// DecisionSink receives decision observations from the engine
// (decision.Recorder is the standard implementation). Implementors must
// be pure observers — no job mutation, no RNG shared with the
// simulation — so attaching one leaves Result byte-identical. Unlike
// Observer, a decision sink does NOT disable fast-forwarding: frozen
// stretches arrive as single spans.
type DecisionSink interface {
	// ObserveDecision is called once per span, in time order.
	ObserveDecision(o DecisionObservation)
	// FinishRun is called exactly once, after the engine assembled the
	// Result (with Result.Decisions already pointing at this sink).
	FinishRun(res *Result)
}

// observeDecisionRound emits the decision observation for one
// materialized round: the scheduler order just used, per-running-job
// ceilings (when the scheduler can bound partition stability and jobs
// are waiting), and the placement/preemption decisions collected by
// place(). Called after the placement phase and before advance, so job
// state (Attained, allocations) is the state the decision was made
// against. The per-round decision buffers are consumed and reset here.
func (e *engine) observeDecisionRound(now float64, ordered []*Job, prefix int) {
	if e.cfg.Decisions == nil {
		return
	}
	var ceilings []float64
	if waiting := len(ordered) - prefix; waiting > 0 && prefix > 0 {
		if ps, ok := e.cfg.Sched.(PartitionStableScheduler); ok {
			if cap(e.decCeilBuf) < prefix {
				e.decCeilBuf = make([]float64, prefix)
			}
			ceilings = e.decCeilBuf[:prefix]
			ps.AttainedCeilings(ordered[:prefix], ordered[prefix:], ceilings)
		}
	}
	e.cfg.Decisions.ObserveDecision(DecisionObservation{
		Start:       now,
		RoundSec:    e.cfg.RoundSec,
		Rounds:      1,
		Order:       ordered,
		Prefix:      prefix,
		Waiting:     len(ordered) - prefix,
		Ceilings:    ceilings,
		Placements:  e.decPlace,
		Preemptions: e.decPreempt,
	})
	e.decPlace = e.decPlace[:0]
	e.decPreempt = e.decPreempt[:0]
}

// observeDecisionSpan emits the decision observation for a frozen span —
// a bulk-advanced stretch (running is the partition holding GPUs) or an
// idle gap (running nil). The span's decision repeats the preceding
// materialized round's by construction, which is what lets a recorder
// coalesce it into the previous record.
func (e *engine) observeDecisionSpan(start float64, rounds int, running []*Job, waiting int) {
	if e.cfg.Decisions == nil || rounds <= 0 {
		return
	}
	e.cfg.Decisions.ObserveDecision(DecisionObservation{
		Start:    start,
		RoundSec: e.cfg.RoundSec,
		Rounds:   rounds,
		Order:    running,
		Prefix:   len(running),
		Waiting:  waiting,
	})
}
