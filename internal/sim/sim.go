// Package sim implements the round-based cluster-scheduling engine the
// policies are evaluated in. It mirrors the modular architecture of Blox
// (§II-B, Fig. 1): an admission-control step feeds a job queue; a
// scheduling policy orders the active jobs each round; the engine marks
// the queue at cluster size; and a placement policy maps the schedulable
// prefix to concrete GPUs. Jobs progress under the combined
// locality × variability slowdown of Equation 1.
//
// The engine is deterministic for a given configuration: wall-clock time
// is only sampled to report placement-policy overhead (Fig. 18) and never
// feeds back into scheduling decisions.
package sim

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/cluster"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// Job is the engine's mutable view of one trace job.
type Job struct {
	Spec trace.JobSpec

	// Remaining ideal work in seconds (starts at Spec.Work).
	Remaining float64
	// Alloc is the job's current GPU allocation, nil when not running.
	Alloc []cluster.GPUID
	// Attained is the accumulated service in GPU-seconds (wall seconds
	// running × demand), the quantity Tiresias's LAS discretizes.
	Attained float64
	// Started reports whether the job has ever run.
	Started bool
	// FirstRun is the time the job first received GPUs.
	FirstRun float64
	// Finish is the completion time (valid once Done).
	Finish float64
	// Done reports whether the job has completed.
	Done bool
	// Preemptions counts times the job was descheduled while incomplete.
	Preemptions int
	// Migrations counts rounds in which a running job's allocation
	// changed (non-sticky placement reshuffles).
	Migrations int

	// PrevAlloc is the allocation the job held before the current
	// placement call (nil if it was not running). Placement policies may
	// use it for hysteresis: PM-First and PAL re-use it unless a strictly
	// better allocation exists, avoiding gratuitous migrations.
	PrevAlloc []cluster.GPUID

	// migrated marks that the allocation changed this round, charging
	// the migration penalty during advance.
	migrated bool
	// inPrefix and wasRunning are round-local scratch marks used by the
	// placement phase in lieu of per-round map allocations. Both are
	// always false outside place(), so results stay comparable with
	// reflect.DeepEqual across engine paths.
	inPrefix   bool
	wasRunning bool
}

// JCT returns the job's completion time minus its arrival (valid once Done).
func (j *Job) JCT() float64 { return j.Finish - j.Spec.Arrival }

// Wait returns the job's total queueing delay (valid once Done):
// completion minus arrival minus the wall-clock time actually spent
// running. Under preemptive schedulers this includes time suspended
// after demotion — the quantity the paper's wait-time plots report
// (Figs. 12 and 19): LAS shows large waits exactly because demoted jobs
// requeue long after they first ran.
func (j *Job) Wait() float64 {
	if j.Spec.Demand <= 0 {
		return 0
	}
	w := j.JCT() - j.Attained/float64(j.Spec.Demand)
	if w < 0 {
		return 0
	}
	return w
}

// FirstRunDelay returns the time from arrival to first receiving GPUs.
func (j *Job) FirstRunDelay() float64 { return j.FirstRun - j.Spec.Arrival }

// Scheduler orders active jobs each round by scheduling priority (job
// selection). Implementations must return a permutation of jobs; the
// engine schedules the longest prefix that fits the cluster.
type Scheduler interface {
	Name() string
	Order(jobs []*Job, now float64) []*Job
}

// Placer maps the schedulable prefix of jobs to GPUs (resource
// allocation). PlaceRound is called once per round with the jobs that
// need a (new) allocation, in scheduling-priority order; the cluster's
// free state already excludes GPUs retained by sticky jobs. The returned
// map must assign each job exactly Spec.Demand free GPUs. The need
// slice is engine-owned scratch, valid only for the duration of the
// call — copy it if the policy retains state across rounds.
//
// Sticky reports the placement flavor (§IV-A1): sticky placers keep a
// running job's allocation until it completes or is preempted; non-sticky
// placers re-place every running job every round.
type Placer interface {
	Name() string
	Sticky() bool
	PlaceRound(c *cluster.Cluster, need []*Job, now float64) map[int][]cluster.GPUID
}

// Admission decides whether an arriving job enters the queue. The paper's
// experiments admit everything that can ever fit; admission control is
// part of the Blox architecture, so the hook exists.
type Admission interface {
	Name() string
	Admit(job *Job, c *cluster.Cluster) bool
}

// AdmitAll admits every job. The zero value is ready to use.
type AdmitAll struct{}

// Name implements Admission.
func (AdmitAll) Name() string { return "admit-all" }

// Admit implements Admission.
func (AdmitAll) Admit(*Job, *cluster.Cluster) bool { return true }

// AdmitFits rejects jobs whose demand exceeds the cluster size (they
// could never be scheduled and would wedge a strict FIFO prefix).
type AdmitFits struct{}

// Name implements Admission.
func (AdmitFits) Name() string { return "admit-fits" }

// Admit implements Admission.
func (AdmitFits) Admit(j *Job, c *cluster.Cluster) bool {
	return j.Spec.Demand <= c.Size()
}

// Config assembles one simulation.
type Config struct {
	Topology cluster.Topology
	Trace    *trace.Trace
	Sched    Scheduler
	Placer   Placer
	// Admit defaults to AdmitFits when nil.
	Admit Admission

	// TrueProfile provides the PM scores jobs actually experience
	// (Equation 1). The placement policy may consult a different
	// (profiled, possibly stale) view — that coupling happens at placer
	// construction, not here.
	TrueProfile *vprof.Profile

	// Lacross is the inter-node locality penalty (L_within is 1.0).
	Lacross float64
	// ModelLacross optionally overrides Lacross per model name, matching
	// the per-model penalties of §IV-D. Missing models fall back to
	// Lacross.
	ModelLacross map[string]float64
	// Lrack is an optional third locality level (extension beyond the
	// paper's two-level model): the penalty for spanning nodes within one
	// rack, with Lacross charged only when the allocation spans racks.
	// Zero disables the rack level (two-level model). Requires
	// Topology.NodesPerRack > 0 to have any effect.
	Lrack float64

	// RoundSec is the scheduling-round length (the paper uses 300 s).
	// Defaults to 300 when zero.
	RoundSec float64

	// MaxRounds caps the simulation as a runaway guard. Defaults to
	// 1_000_000 rounds when zero (at the default 300 s round that is
	// ~9.5 simulated years). Hitting the cap is not an error: the run
	// stops, Result.Truncated is set, and Result.Unfinished counts the
	// jobs that never completed, so a sweep over extreme configurations
	// degrades to an explicitly-flagged partial table instead of losing
	// the whole run.
	MaxRounds int

	// MeasureFirst/MeasureLast restrict per-job metrics to a job-ID
	// window (Synergy steady state uses 2000-3000). Zero values mean the
	// whole trace.
	MeasureFirst, MeasureLast int

	// RecordUtilization enables the per-round GPUs-in-use series
	// (Fig. 15); it is off by default to keep long sweeps lean.
	RecordUtilization bool

	// MigrationPenaltySec is the checkpoint/restore cost a running job
	// pays in a round where its allocation changed (§IV-A1 notes these
	// overheads exist but are small relative to job runtime). A migrated
	// job makes progress for RoundSec - MigrationPenaltySec of the round.
	MigrationPenaltySec float64

	// RecordEvents enables the engine's event log (admit / start /
	// preempt / resume / migrate / finish per job), exposed as
	// Result.Events.
	RecordEvents bool

	// Observer, when non-nil, receives each running job's realized
	// slowdown every round. This is the hook for the online PM-score
	// re-profiling extension (§V-A closes by calling for "dynamic online
	// updates to GPU PM-Scores"): an observing scorer can learn that a
	// GPU is slower than its static profile claims.
	//
	// Observer is the SLOW compatibility path: its contract is one
	// callback per running job per round, so attaching one disables
	// fast-forwarding and the run pays the naive loop's full cost. Use it
	// only when the consumer genuinely needs to react inside the round
	// loop (the online re-profiling scorer does). New instrumentation —
	// time series, histograms, lifecycle records — belongs on the Metrics
	// hook below, whose span-based contract keeps dead-time skipping
	// intact.
	Observer Observer

	// Metrics, when non-nil, receives span-based telemetry through the
	// fast-forward-safe MetricsSink contract (metrics.Collector is the
	// standard implementation). Unlike Observer, attaching a sink does
	// NOT disable dead-time skipping: during a fast-forwarded span the
	// engine hands the sink the span length and the frozen per-job state
	// in one call, and the sink integrates analytically. The sink is
	// echoed on Result.Metrics so cached results carry their telemetry.
	Metrics MetricsSink

	// Decisions, when non-nil, receives span-based decision traces —
	// scheduler order, partition-stability ceilings, placement score
	// decompositions, preemptions — through the fast-forward-safe
	// DecisionSink contract (decision.Recorder is the standard
	// implementation). Like Metrics and unlike Observer, attaching a
	// sink does NOT disable dead-time skipping: frozen stretches arrive
	// as single spans that provably repeat the previous decision. The
	// sink is echoed on Result.Decisions so cached results carry their
	// traces.
	Decisions DecisionSink

	// Counters, when non-nil, receives the engine's introspection
	// counters: rounds per stepping regime, fast-path engagement,
	// allocator traffic, snapshot capture/resume (see Counters). They
	// are an observation-only out-param with zero cost when nil —
	// attaching one leaves Result byte-identical
	// (TestCountersDoNotPerturbSimulation) — but the values themselves
	// are regime-dependent by design, so they live outside results,
	// cache keys and byte-identity comparisons (the PlaceTimes/journal
	// treatment). Attach a distinct instance per run: the engine
	// increments it without atomics.
	Counters *Counters

	// DisableFastForward forces the engine to iterate every round even
	// when nothing can change (no arrival, no finish, no reallocation).
	// Fast-forwarding is byte-identical to naive iteration — the
	// equivalence test in fastforward_test.go pins that down — so this
	// switch exists only for that test and for benchmarking the naive
	// loop.
	DisableFastForward bool
}

// RoundObservation describes a span of one or more consecutive rounds
// during which the running set, every allocation and every slowdown were
// provably constant. A normal engine round is a span of length 1; a
// fast-forwarded stretch (or an idle gap with nothing running) arrives as
// one observation covering all its rounds. The engine guarantees that
// every simulated round is covered by exactly one observation, in time
// order, so a sink reconstructs the full per-round series by expanding
// spans — and the naive and fast-forwarded engines produce byte-identical
// observation streams.
type RoundObservation struct {
	// Start is the engine clock at the span's first round; successive
	// rounds follow at RoundSec intervals. Sinks that need per-round
	// times must advance by repeated `t += RoundSec` addition — the
	// operation the engine itself performs — so reconstructed times match
	// the naive loop bit for bit.
	Start    float64
	RoundSec float64
	// Rounds is the span length (>= 1).
	Rounds int
	// Running lists the jobs holding GPUs during the span, sorted by job
	// ID (a canonical order independent of scheduler priority, so
	// order-sensitive float accumulation in sinks cannot diverge between
	// the naive and fast-forwarded paths). The slice is scratch space
	// owned by the engine: valid only during the call.
	Running []*Job
	// Slowdowns[i] is Running[i]'s Equation-1 multiplier for the span.
	Slowdowns []float64
	// Waiting counts active jobs without GPUs (always 0 inside a
	// fast-forwarded span).
	Waiting int
}

// MetricsSink receives aggregated telemetry from the engine. Implementors
// must be pure observers: a sink must not mutate jobs, draw from any RNG
// shared with the simulation, or otherwise perturb engine state —
// attaching one must leave Result byte-identical (the metrics
// determinism tests pin this).
type MetricsSink interface {
	// ObserveRounds is called once per span, in time order.
	ObserveRounds(o RoundObservation)
	// FinishRun is called exactly once, after the engine assembled the
	// Result (with Result.Metrics already pointing at this sink), so the
	// sink can derive lifecycle records and distributions from the final
	// per-job state.
	FinishRun(res *Result)
}

// Observer receives per-round execution feedback. ObserveRound is called
// once per running job per round with the job's allocation still
// attached and each GPU's normalized per-rank step time — the rank's
// compute time divided by the job's ideal iteration time, i.e. the GPU's
// realized PM score for the job's class. Per-rank step times are directly
// observable in bulk-synchronous training (every rank logs its compute
// time before the gradient exchange), which is what makes online
// re-profiling deployable. perGPU[i] corresponds to j.Alloc[i] and
// excludes the locality penalty.
type Observer interface {
	ObserveRound(j *Job, perGPU []float64, now float64)
}

// withDefaults returns a copy of cfg with zero fields defaulted.
func (cfg Config) withDefaults() Config {
	if cfg.RoundSec <= 0 {
		cfg.RoundSec = 300
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1_000_000
	}
	if cfg.Admit == nil {
		cfg.Admit = AdmitFits{}
	}
	if cfg.Lacross <= 0 {
		cfg.Lacross = 1.0
	}
	return cfg
}

// UtilSample is one point of the GPUs-in-use series.
type UtilSample struct {
	Time  float64 // round start time (seconds)
	InUse int     // GPUs allocated during the round
}

// Result carries everything the experiment harness needs from one run.
type Result struct {
	Jobs []*Job // all jobs, trace order

	// Measured is the subset of Jobs inside the measurement window that
	// completed; aggregate metrics are computed over it.
	Measured []*Job

	Makespan    float64 // last finish - first arrival (whole trace)
	Utilization float64 // allocated GPU-seconds / (cluster size × active span)
	// ProductiveUtilization divides *ideal* GPU-seconds (demand × work)
	// by capacity × span: the fraction of cluster capacity that performed
	// useful work. The gap between Utilization and ProductiveUtilization
	// is exactly the capacity lost to variability and locality slowdowns
	// — gang-synchronous jobs hold all their GPUs at the pace of the
	// slowest one (§II-A).
	ProductiveUtilization float64
	Rounds                int

	// UtilSeries is populated when Config.RecordUtilization is set.
	UtilSeries []UtilSample

	// PlaceTimes holds the wall-clock duration of each round's placement
	// call in seconds (only rounds that placed at least one job).
	PlaceTimes []float64

	// Events is the lifecycle log (populated when Config.RecordEvents).
	Events []Event

	// Metrics echoes Config.Metrics after the run, so a Result pulled
	// from the runner's cache still carries the telemetry collected when
	// it was first computed. Nil when no sink was attached.
	Metrics MetricsSink

	// Decisions echoes Config.Decisions after the run, so a Result
	// pulled from the runner's cache still carries the decision trace
	// recorded when it was first computed. Nil when no sink was
	// attached.
	Decisions DecisionSink

	// Truncated reports that the run stopped at Config.MaxRounds with
	// jobs still incomplete. Aggregate metrics then cover only the jobs
	// that finished; Unfinished counts the rest. Consumers that archive
	// or tabulate results must surface this flag — a truncated run is a
	// different quantity than a completed one.
	Truncated bool
	// Unfinished is the number of jobs that had not completed when the
	// run ended (always 0 unless Truncated).
	Unfinished int
}

// JCTs returns the measured jobs' completion times.
func (r *Result) JCTs() []float64 {
	out := make([]float64, len(r.Measured))
	for i, j := range r.Measured {
		out[i] = j.JCT()
	}
	return out
}

// Waits returns the measured jobs' queueing delays.
func (r *Result) Waits() []float64 {
	out := make([]float64, len(r.Measured))
	for i, j := range r.Measured {
		out[i] = j.Wait()
	}
	return out
}

// MultiGPUJCTs returns JCTs of measured jobs with demand > 1 (the subset
// §V-C reports separately).
func (r *Result) MultiGPUJCTs() []float64 {
	var out []float64
	for _, j := range r.Measured {
		if j.Spec.Demand > 1 {
			out = append(out, j.JCT())
		}
	}
	return out
}

// Run executes the simulation to completion and returns its Result. It
// returns an error if the configuration is invalid; hitting MaxRounds is
// reported through Result.Truncated, not as an error.
//
// The engine fast-forwards through dead time: a round in which no job
// arrives, finishes, or changes allocation is a pure progress round, and
// under a sticky placement policy the engine proves that ahead of time
// and applies the per-job progress updates directly — skipping the
// scheduler sort, prefix marking and placement machinery — until the
// next state-changing round. The arithmetic performed per job per round
// is exactly the naive loop's, in the same order, so results are
// byte-identical (fastforward_test.go enforces this). Non-sticky
// placers re-place every running job every round by definition — that
// per-round re-roll is the behaviour §V-B measures — so they always
// take the naive path, as does any run with an Observer attached.
func Run(cfg Config) (*Result, error) {
	eng, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	return eng.run()
}

// newEngine validates the configuration and assembles a fresh engine
// with every job at its initial state (the shared front half of Run and
// Capture).
func newEngine(cfg Config) (*engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil || len(cfg.Trace.Jobs) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	if cfg.Sched == nil || cfg.Placer == nil {
		return nil, fmt.Errorf("sim: scheduler and placer are required")
	}
	if cfg.TrueProfile == nil {
		return nil, fmt.Errorf("sim: TrueProfile is required")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.TrueProfile.NumGPUs() < cfg.Topology.Size() {
		return nil, fmt.Errorf("sim: profile covers %d GPUs, cluster has %d",
			cfg.TrueProfile.NumGPUs(), cfg.Topology.Size())
	}

	c := cluster.New(cfg.Topology)
	jobs := make([]*Job, len(cfg.Trace.Jobs))
	for i, spec := range cfg.Trace.Jobs {
		jobs[i] = &Job{Spec: spec, Remaining: spec.Work}
	}
	return &engine{cfg: cfg, cluster: c, jobs: jobs, ctr: cfg.Counters}, nil
}

// engine holds the per-run mutable state.
type engine struct {
	cfg     Config
	cluster *cluster.Cluster
	jobs    []*Job

	// ctr is the optional introspection out-param (Config.Counters);
	// every increment is guarded on nil so the counters cost nothing
	// when unattached.
	ctr *Counters

	nextArrival int    // index of the next not-yet-arrived trace job
	active      []*Job // arrived, admitted, not finished
	rejected    int

	// Incremental-ordering state: ordered caches the previous round's
	// scheduling order; membershipChanged marks that the active set
	// gained or lost jobs since it was built, forcing a full re-sort.
	ordered           []*Job
	membershipChanged bool

	utilSeries []UtilSample
	placeTimes []float64
	events     []Event

	// Scratch buffers reused across rounds so the steady-state loop
	// allocates nothing: metrics observations, the placement need list,
	// and the bulk-advance partition/ceiling/slowdown workspaces.
	obsJobs []*Job
	obsSds  []float64
	needBuf []*Job
	runBuf  []*Job
	waitBuf []*Job
	ceilBuf []float64
	sdsBuf  []float64

	// Decision-trace scratch: the per-round placement/preemption
	// decisions collected by place() for the decision sink, and a
	// ceiling workspace separate from ceilBuf (the bulk-advance span may
	// still be using that one when the next materialized round records
	// its ceilings).
	decPlace   []PlacementDecision
	decPreempt []PreemptionDecision
	decCeilBuf []float64

	// Snapshot state (see snapshot.go). haltAt, when positive, stops the
	// run loop at the top of round haltAt so Capture can freeze the
	// engine; halted reports that the stop fired (with the clocks it
	// fired at) rather than the run completing. resumed marks an engine
	// reconstructed by Resume: the run loop then starts from the
	// restored clocks instead of round 0.
	haltAt       int
	halted       bool
	haltedNow    float64
	haltedRounds int
	resumed      bool
	resumeNow    float64
	resumeRounds int
}

// haltsAt reports whether the snapshot horizon stops the run at the top
// of round r (0 disables halting).
func (e *engine) haltsAt(r int) bool { return e.haltAt > 0 && r >= e.haltAt }

// observe hands one span to the metrics sink, with the running set
// canonicalized to job-ID order (see RoundObservation.Running). running
// may be in any order; slowdowns are recomputed here — they are pure
// functions of each job's unchanged allocation, so recomputing yields
// bit-identical values on both the naive and fast-forwarded paths.
func (e *engine) observe(start float64, rounds int, running []*Job, waiting int) {
	if e.cfg.Metrics == nil || rounds <= 0 {
		return
	}
	e.obsJobs = append(e.obsJobs[:0], running...)
	slices.SortFunc(e.obsJobs, func(a, b *Job) int { return a.Spec.ID - b.Spec.ID })
	if cap(e.obsSds) < len(e.obsJobs) {
		e.obsSds = make([]float64, len(e.obsJobs))
	}
	e.obsSds = e.obsSds[:len(e.obsJobs)]
	for i, j := range e.obsJobs {
		e.obsSds[i] = e.slowdown(j)
	}
	e.cfg.Metrics.ObserveRounds(RoundObservation{
		Start:     start,
		RoundSec:  e.cfg.RoundSec,
		Rounds:    rounds,
		Running:   e.obsJobs,
		Slowdowns: e.obsSds,
		Waiting:   waiting,
	})
}

// run drives the engine through its stepping regimes. Each loop
// iteration is one *full* round broken into explicit phases — admit,
// order, mark prefix, place, observe, advance — with dirty-set tracking
// between them: ordering is recomputed only when membership or
// priorities actually moved, and placement only runs when arrivals,
// completions or preemptions changed the waiting set or occupancy.
// After each full round the engine computes an event horizon and bulk
// advances through every following round that provably repeats the
// decision just made (see bulkAdvance); rounds with nothing active at
// all skip straight to the next arrival (idle gap). The naive reference
// loop — every phase, every round — is retained behind
// Config.DisableFastForward and pins all of this via byte-identity
// tests.
func (e *engine) run() (*Result, error) {
	cfg := e.cfg
	now := 0.0
	if len(e.jobs) > 0 {
		// Start the clock at the first arrival so empty leading time does
		// not distort utilization.
		now = e.jobs[0].Spec.Arrival
	}
	start := now
	rounds := 0
	remaining := len(e.jobs)
	truncated := false
	e.membershipChanged = true
	if e.resumed {
		// Resume from a snapshot: the clocks restart at the captured
		// values (now carries the exact accumulated-float bits, so the
		// round grid continues bit-identically); start stays the first
		// arrival, and remaining excludes jobs already finished or
		// rejected before the horizon.
		now, rounds = e.resumeNow, e.resumeRounds
		remaining = 0
		for _, j := range e.jobs {
			if !j.Done {
				remaining++
			}
		}
		// Mid-gap boundary: a snapshot taken inside an idle gap whose next
		// arrival lands exactly on the restored clock must replay the gap
		// loop's closing round before admitting — the gap path admits an
		// on-grid arrival one round after its arrival time, while the
		// loop's admission phase would admit it immediately. One empty
		// 1-round span keeps the observation stream identical (sinks
		// coalesce it into the straight-through run's single gap span).
		if remaining > 0 && len(e.active) == 0 && e.nextArrival < len(e.jobs) &&
			e.jobs[e.nextArrival].Spec.Arrival == now {
			e.observe(now, 1, nil, 0)
			e.observeDecisionSpan(now, 1, nil, 0)
			now += cfg.RoundSec
			rounds++
			// The replay round counts as idle-gap so TotalRounds() stays
			// exactly Result.Rounds - ResumedRounds.
			if e.ctr != nil {
				e.ctr.IdleGapRounds++
				e.ctr.IdleGapSpans++
			}
		}
	}

	for remaining > 0 {
		// Snapshot horizon: freeze the engine at the top of round haltAt,
		// before this round's admissions — the capture point Resume
		// re-enters the loop at.
		if e.haltsAt(rounds) {
			e.halted = true
			e.haltedNow, e.haltedRounds = now, rounds
			if e.ctr != nil {
				e.ctr.SnapshotsCaptured++
			}
			return nil, nil
		}

		// Truncation guard.
		if rounds >= cfg.MaxRounds {
			truncated = true
			break
		}

		// Admission phase: arrivals enter the active set.
		before := len(e.active)
		e.admitArrivals(now)
		if len(e.active) != before {
			e.membershipChanged = true
		}
		if e.rejected > 0 {
			remaining -= e.rejected
			e.rejected = 0
			if remaining <= 0 {
				break
			}
		}

		if len(e.active) == 0 {
			// Idle gap: jump to the next arrival instead of spinning rounds.
			if e.nextArrival < len(e.jobs) {
				next := e.jobs[e.nextArrival].Spec.Arrival
				idleStart, idleFrom := now, rounds
				// Advance in whole rounds to keep the round grid stable
				// (bailing at MaxRounds so an absurd gap cannot spin past
				// the cap before the top-of-loop truncation check, and at
				// the snapshot horizon so a capture lands exactly on its
				// round).
				for now+cfg.RoundSec <= next && rounds < cfg.MaxRounds && !e.haltsAt(rounds) {
					now += cfg.RoundSec
					rounds++
				}
				if !e.haltsAt(rounds) {
					now += cfg.RoundSec
					rounds++
				}
				// The whole gap is one empty span: nothing runs, nothing
				// waits (the arriving job is admitted next iteration).
				if e.ctr != nil {
					if n := rounds - idleFrom; n > 0 {
						e.ctr.IdleGapRounds += int64(n)
						e.ctr.IdleGapSpans++
					}
				}
				e.observe(idleStart, rounds-idleFrom, nil, 0)
				e.observeDecisionSpan(idleStart, rounds-idleFrom, nil, 0)
				continue
			}
			// Nothing active and nothing arriving: only rejected jobs
			// remain.
			break
		}

		// Ordering phase (incremental when the scheduler exposes a total
		// order and membership is unchanged).
		ordered, err := e.orderActive(now)
		if err != nil {
			return nil, err
		}

		// Prefix phase: mark the queue at cluster size.
		prefix := schedulablePrefix(ordered, e.cluster.Size())

		// Placement phase, skipped when provably a no-op (sticky placer,
		// occupancy already matching the prefix).
		if !e.placementClean(prefix) {
			if e.ctr != nil {
				e.ctr.PlacementsRun++
			}
			if err := e.place(prefix, now); err != nil {
				return nil, err
			}
		} else if e.ctr != nil {
			e.ctr.PlacementsSkipped++
		}

		// Observe before advance: completions inside the round release
		// allocations, and the observation covers the round as scheduled.
		e.observe(now, 1, prefix, len(e.active)-len(prefix))
		e.observeDecisionRound(now, ordered, len(prefix))

		// Advance phase.
		finished := e.advance(prefix, now)
		remaining -= finished
		if finished > 0 {
			e.membershipChanged = true
		}

		if cfg.RecordUtilization {
			inUse := 0
			for _, j := range prefix {
				inUse += j.Spec.Demand
			}
			e.utilSeries = append(e.utilSeries, UtilSample{Time: now, InUse: inUse})
		}

		now += cfg.RoundSec
		rounds++
		if e.ctr != nil {
			e.ctr.MaterializedRounds++
		}

		// Event-horizon phase: bulk advance through rounds that provably
		// repeat the decision above. A finishing round must re-enter the
		// full loop first when jobs are waiting — freed GPUs can admit a
		// waiter next round — so bulk advance re-checks eligibility
		// itself. With a decision sink attached, a finishing round
		// always re-enters the full loop first, so the span following a
		// completion opens with a materialized round carrying the fresh
		// scheduler order — the one extra round per completion keeps the
		// recorded trace byte-identical to the naive loop's, and the
		// materialized round itself is byte-identical to the first round
		// the bulk span would have skipped.
		if finished == 0 || (cfg.Decisions == nil && e.allActiveRunning()) {
			now, rounds = e.bulkAdvance(now, rounds)
		}
	}

	res, err := e.result(start, now, rounds)
	if err != nil {
		return nil, err
	}
	if truncated {
		res.Truncated = true
	}
	// Finalize the sinks last, so they see the complete result —
	// including the truncation flag, which they must carry into their
	// payloads.
	if cfg.Metrics != nil {
		cfg.Metrics.FinishRun(res)
	}
	if cfg.Decisions != nil {
		cfg.Decisions.FinishRun(res)
	}
	return res, nil
}

// orderActive produces this round's scheduling order. The reference path
// calls Scheduler.Order every round. The incremental path — taken when
// fast-forwarding is enabled and the scheduler exposes its strict total
// order (TotalOrderScheduler) — maintains one reused buffer across
// rounds: on a membership change it is rebuilt from the active set and
// sorted from scratch; otherwise the cached order is re-validated in
// O(n) and re-sorted in place only when priorities actually crossed.
// Because the order is total (Less never reports two distinct jobs
// equal), the unstable generic sort is deterministic and the maintained
// sequence is exactly what a fresh Order call would return — the
// byte-identity suites compare it against the reference path.
func (e *engine) orderActive(now float64) ([]*Job, error) {
	cfg := e.cfg
	if !cfg.DisableFastForward {
		if ts, ok := cfg.Sched.(TotalOrderScheduler); ok {
			cmp := func(a, b *Job) int {
				if ts.Less(a, b, now) {
					return -1
				}
				if ts.Less(b, a, now) {
					return 1
				}
				return 0
			}
			if e.membershipChanged || e.ordered == nil {
				e.ordered = append(e.ordered[:0], e.active...)
				e.membershipChanged = false
				slices.SortFunc(e.ordered, cmp)
				if e.ctr != nil {
					e.ctr.OrderRebuilds++
				}
				return e.ordered, nil
			}
			ord := e.ordered
			if e.ctr != nil {
				e.ctr.OrderRevalidated++
			}
			for i := 1; i < len(ord); i++ {
				if ts.Less(ord[i], ord[i-1], now) {
					slices.SortFunc(ord, cmp)
					if e.ctr != nil {
						e.ctr.OrderResorts++
					}
					break
				}
			}
			return ord, nil
		}
	}
	ordered := cfg.Sched.Order(e.active, now)
	if e.ctr != nil {
		e.ctr.OrderFullCalls++
	}
	if len(ordered) != len(e.active) {
		return nil, fmt.Errorf("sim: scheduler %s returned %d jobs, want %d",
			cfg.Sched.Name(), len(ordered), len(e.active))
	}
	e.ordered = ordered
	e.membershipChanged = false
	return ordered, nil
}

// placementClean reports whether the placement phase is provably a no-op
// this round: sticky placer, every prefix job already holding GPUs, and
// nobody outside the prefix holding any (no preemption due). The check
// is the dirty-set gate — O(n) with no allocation — and mirrors exactly
// the conditions under which place() would fall through without touching
// the cluster, so skipping it cannot be observed. The reference loop
// always re-enters place().
func (e *engine) placementClean(prefix []*Job) bool {
	if e.cfg.DisableFastForward || !e.cfg.Placer.Sticky() {
		return false
	}
	for _, j := range prefix {
		if j.Alloc == nil {
			return false
		}
	}
	nRunning := 0
	for _, j := range e.active {
		if j.Alloc != nil {
			nRunning++
		}
	}
	return nRunning == len(prefix)
}

// allActiveRunning reports whether every active job currently holds GPUs
// (the sparse fast-forward precondition, where a finishing round cannot
// promote a waiter because there are none).
func (e *engine) allActiveRunning() bool {
	for _, j := range e.active {
		if j.Alloc == nil {
			return false
		}
	}
	return true
}

// bulkAdvance is the event-horizon stepping phase: starting immediately
// after a full round, it advances through every following round that
// provably repeats that round's decision, handing the first
// state-changing round back to the full loop. A round repeats when
// nothing arrives (checked against the next-arrival horizon), nothing
// finishes (earliest-completion horizon under the frozen slowdowns),
// and the schedulable prefix is unchanged. With a sticky placer the
// prefix is a pure function of the scheduling order, the job demands
// and the cluster *size* — not the free state — so prefix stability
// reduces to order stability:
//
//   - with an empty waiting set, any permutation of the running jobs
//     fits, so the prefix is trivially stable (the sparse fast-forward
//     of PR 2);
//   - with waiters, the engine asks the scheduler
//     (PartitionStableScheduler) for per-running-job attained-service
//     ceilings below which the running/waiting partition provably holds,
//     and ends the span before any running job reaches its ceiling —
//     this is what lets dense, saturated traces advance in bulk.
//
// Each skipped round applies exactly the arithmetic advance would have
// (Remaining -= RoundSec/slowdown, Attained += RoundSec×demand, one
// utilization sample), in the same per-round addition order, so results
// are byte-identical to naive iteration. Waiting jobs are untouched,
// exactly as a naive round would leave them. The whole span reaches the
// metrics sink as one observation (every per-round quantity is frozen
// for its duration). Non-sticky placers re-place — and may re-roll
// their RNG — every round, which is observable behaviour, so they never
// bulk advance; nor do runs with an Observer attached (its contract is
// one callback per job per round).
func (e *engine) bulkAdvance(now float64, rounds int) (float64, int) {
	cfg := e.cfg
	if cfg.DisableFastForward || cfg.Observer != nil || !cfg.Placer.Sticky() || len(e.active) == 0 {
		return now, rounds
	}
	// Arrival horizon first: if the next arrival is already due, the
	// span would be empty — skip the partition/slowdown setup entirely.
	nextArr := math.Inf(1)
	if e.nextArrival < len(e.jobs) {
		nextArr = e.jobs[e.nextArrival].Spec.Arrival
	}
	if nextArr <= now || rounds >= cfg.MaxRounds || e.haltsAt(rounds) {
		return now, rounds
	}

	// Partition the active set as the just-executed round left it:
	// running jobs hold GPUs (they were the schedulable prefix), the
	// rest wait.
	running := e.runBuf[:0]
	waiting := e.waitBuf[:0]
	for _, j := range e.active {
		if j.Alloc != nil {
			running = append(running, j)
		} else {
			waiting = append(waiting, j)
		}
	}
	e.runBuf, e.waitBuf = running[:0], waiting[:0]

	var ceilings []float64
	if len(waiting) > 0 {
		ps, ok := cfg.Sched.(PartitionStableScheduler)
		if !ok {
			return now, rounds
		}
		if cap(e.ceilBuf) < len(running) {
			e.ceilBuf = make([]float64, len(running))
		}
		ceilings = e.ceilBuf[:len(running)]
		ps.AttainedCeilings(running, waiting, ceilings)
		// Order horizon already reached (e.g. the just-executed advance
		// moved a runner onto a waiter's key): nothing to skip, and the
		// per-job slowdowns need not be evaluated.
		for i, j := range running {
			if j.Attained >= ceilings[i] {
				return now, rounds
			}
		}
	}

	round := cfg.RoundSec
	if cap(e.sdsBuf) < len(running) {
		e.sdsBuf = make([]float64, len(running))
	}
	sds := e.sdsBuf[:len(running)]
	inUse := 0
	for i, j := range running {
		sds[i] = e.slowdown(j)
		inUse += j.Spec.Demand
	}

	spanStart, spanFrom := now, rounds
	for rounds < cfg.MaxRounds && nextArr > now && !e.haltsAt(rounds) {
		repeats := true
		for i, j := range running {
			if j.Remaining*sds[i] <= round {
				repeats = false // completion horizon: this round finishes a job
				break
			}
			if ceilings != nil && j.Attained >= ceilings[i] {
				repeats = false // order horizon: the partition may flip here
				break
			}
		}
		if !repeats {
			break
		}
		for i, j := range running {
			j.Remaining -= round / sds[i]
			j.Attained += round * float64(j.Spec.Demand)
		}
		if cfg.RecordUtilization {
			e.utilSeries = append(e.utilSeries, UtilSample{Time: now, InUse: inUse})
		}
		now += round
		rounds++
	}
	if skipped := rounds - spanFrom; skipped > 0 && e.ctr != nil {
		if len(waiting) > 0 {
			e.ctr.DenseRounds += int64(skipped)
			e.ctr.DenseSpans++
		} else {
			e.ctr.SparseRounds += int64(skipped)
			e.ctr.SparseSpans++
		}
	}
	e.observe(spanStart, rounds-spanFrom, running, len(waiting))
	e.observeDecisionSpan(spanStart, rounds-spanFrom, running, len(waiting))
	return now, rounds
}

// admitArrivals moves arrived jobs into the active set, applying
// admission control. Rejected jobs are marked Done with a zero-length
// schedule so the run can terminate.
func (e *engine) admitArrivals(now float64) {
	for e.nextArrival < len(e.jobs) {
		j := e.jobs[e.nextArrival]
		if j.Spec.Arrival > now {
			break
		}
		e.nextArrival++
		if !e.cfg.Admit.Admit(j, e.cluster) {
			j.Done = true
			j.Finish = j.Spec.Arrival
			j.FirstRun = j.Spec.Arrival
			e.rejected++
			e.recordEvent(now, j.Spec.ID, EventReject, 0)
			continue
		}
		e.active = append(e.active, j)
		e.recordEvent(now, j.Spec.ID, EventAdmit, 0)
	}
}

// schedulablePrefix marks the queue at cluster size (§III-B, Fig. 4): the
// longest prefix of the scheduling order whose cumulative demand fits the
// cluster. The walk stops at the first job that does not fit, preserving
// the scheduling policy's guarantee (no backfilling around a blocked
// high-priority job).
func schedulablePrefix(ordered []*Job, clusterSize int) []*Job {
	used := 0
	for i, j := range ordered {
		if used+j.Spec.Demand > clusterSize {
			return ordered[:i]
		}
		used += j.Spec.Demand
	}
	return ordered
}

// place preempts descheduled jobs, applies sticky semantics and invokes
// the placement policy for jobs needing GPUs. Prefix membership and
// was-running state ride on per-job scratch marks rather than per-round
// maps, so the phase allocates nothing in steady state; both marks are
// false again by the time place returns.
func (e *engine) place(prefix []*Job, now float64) error {
	for _, j := range prefix {
		j.inPrefix = true
	}
	// Preempt running jobs that fell out of the schedulable set.
	for _, j := range e.active {
		if j.Alloc != nil && !j.inPrefix {
			e.cluster.Release(j.Alloc)
			j.PrevAlloc = j.Alloc
			j.Alloc = nil
			j.Preemptions++
			if e.ctr != nil {
				e.ctr.Preemptions++
				e.ctr.ReleaseCalls++
			}
			e.recordEvent(now, j.Spec.ID, EventPreempt, j.Spec.Demand)
			if e.cfg.Decisions != nil {
				e.decPreempt = append(e.decPreempt,
					PreemptionDecision{Job: j.Spec.ID, GPUs: j.Spec.Demand})
			}
		}
	}

	sticky := e.cfg.Placer.Sticky()
	need := e.needBuf[:0]
	for _, j := range prefix {
		j.inPrefix = false
		if j.Alloc != nil {
			if sticky {
				continue // sticky jobs keep their GPUs
			}
			j.wasRunning = true
			j.PrevAlloc = j.Alloc
			e.cluster.Release(j.Alloc)
			j.Alloc = nil
			if e.ctr != nil {
				e.ctr.ReleaseCalls++
			}
		}
		need = append(need, j)
	}
	e.needBuf = need[:0]
	if len(need) == 0 {
		return nil
	}

	t0 := time.Now()
	allocs := e.cfg.Placer.PlaceRound(e.cluster, need, now)
	e.placeTimes = append(e.placeTimes, time.Since(t0).Seconds())
	if e.ctr != nil {
		e.ctr.PlaceCalls++
		e.ctr.JobsPlaced += int64(len(need))
	}

	for _, j := range need {
		alloc, ok := allocs[j.Spec.ID]
		if !ok || len(alloc) != j.Spec.Demand {
			return fmt.Errorf("sim: placer %s gave job %d %d GPUs, want %d",
				e.cfg.Placer.Name(), j.Spec.ID, len(alloc), j.Spec.Demand)
		}
		// Validate before committing so a buggy placer surfaces as an
		// error, not a panic deep in the cluster bookkeeping.
		for i, g := range alloc {
			if g < 0 || int(g) >= e.cluster.Size() {
				return fmt.Errorf("sim: placer %s gave job %d out-of-range GPU %d",
					e.cfg.Placer.Name(), j.Spec.ID, g)
			}
			for _, h := range alloc[:i] {
				if h == g {
					return fmt.Errorf("sim: placer %s gave job %d GPU %d twice",
						e.cfg.Placer.Name(), j.Spec.ID, g)
				}
			}
			if !e.cluster.IsFree(g) {
				return fmt.Errorf("sim: placer %s gave job %d busy GPU %d (owner %d)",
					e.cfg.Placer.Name(), j.Spec.ID, g, e.cluster.Owner(g))
			}
		}
		e.cluster.Allocate(j.Spec.ID, alloc)
		if e.ctr != nil {
			e.ctr.AllocCalls++
		}
		wasRunning := j.wasRunning
		j.wasRunning = false
		migrated := wasRunning && !sameGPUs(j.PrevAlloc, alloc)
		if migrated {
			j.Migrations++
			if e.ctr != nil {
				e.ctr.Migrations++
			}
			j.migrated = true
			e.recordEvent(now, j.Spec.ID, EventMigrate, j.Spec.Demand)
		}
		j.Alloc = alloc
		started := false
		switch {
		case !j.Started:
			j.Started = true
			j.FirstRun = now
			started = true
			e.recordEvent(now, j.Spec.ID, EventStart, j.Spec.Demand)
		case !wasRunning:
			e.recordEvent(now, j.Spec.ID, EventResume, j.Spec.Demand)
		}
		if e.cfg.Decisions != nil {
			l, maxV := e.slowdownParts(j)
			e.decPlace = append(e.decPlace, PlacementDecision{
				Job:      j.Spec.ID,
				GPUs:     j.Spec.Demand,
				Nodes:    e.cluster.NodesSpanned(alloc),
				Racks:    e.cluster.RacksSpanned(alloc),
				Locality: l,
				PMScore:  maxV,
				Slowdown: l * maxV,
				Started:  started,
				Resumed:  !started && !wasRunning,
				Migrated: migrated,
			})
		}
	}
	return nil
}

// sameGPUs reports set equality of two allocations: equal lengths and
// every GPU of b present in a (the engine validates allocations
// duplicate-free before they reach here, so containment plus length is
// equality). Allocations are small (one job's demand), so a quadratic
// scan beats building a map.
func sameGPUs(a, b []cluster.GPUID) bool {
	if len(a) != len(b) {
		return false
	}
	for _, g := range b {
		found := false
		for _, h := range a {
			if h == g {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// slowdown evaluates Equation 1's multiplier for a job's allocation:
// L(alloc) × max_g PMScore(g, class), with the true (experienced)
// profile. With the optional rack level enabled, allocations spanning
// nodes inside one rack pay Lrack and only rack-spanning allocations pay
// the full Lacross.
func (e *engine) slowdown(j *Job) float64 {
	l, maxV := e.slowdownParts(j)
	return l * maxV
}

// slowdownParts returns Equation 1's two factors separately — the
// locality penalty L(alloc) and the max per-GPU PM score — so the
// decision trace can record the score decomposition of a placement
// without changing the arithmetic slowdown performs (l × maxV, the same
// product in the same order).
func (e *engine) slowdownParts(j *Job) (l, maxV float64) {
	l = 1.0
	if e.cluster.NodesSpanned(j.Alloc) > 1 {
		l = e.cfg.Lacross
		if e.cfg.ModelLacross != nil {
			if v, ok := e.cfg.ModelLacross[j.Spec.Model]; ok {
				l = v
			}
		}
		if e.cfg.Lrack > 0 && e.cluster.RacksSpanned(j.Alloc) <= 1 {
			l = e.cfg.Lrack
		}
	}
	for _, g := range j.Alloc {
		if v := e.cfg.TrueProfile.Score(j.Spec.Class, int(g)); v > maxV {
			maxV = v
		}
	}
	return l, maxV
}

// advance progresses every placed job by one round, completing jobs whose
// remaining work fits in the round. Returns the number of completions.
func (e *engine) advance(prefix []*Job, now float64) int {
	finished := 0
	for _, j := range prefix {
		round := e.cfg.RoundSec
		overhead := 0.0
		if j.migrated {
			// Checkpoint/restore eats the start of the round.
			overhead = e.cfg.MigrationPenaltySec
			if overhead > round {
				overhead = round
			}
			round -= overhead
			j.migrated = false
		}
		sd := e.slowdown(j)
		if e.cfg.Observer != nil {
			perGPU := make([]float64, len(j.Alloc))
			for i, g := range j.Alloc {
				perGPU[i] = e.cfg.TrueProfile.Score(j.Spec.Class, int(g))
			}
			e.cfg.Observer.ObserveRound(j, perGPU, now)
		}
		wallToFinish := j.Remaining * sd
		wallRun := round
		if wallToFinish <= round {
			wallRun = wallToFinish
			j.Remaining = 0
			j.Done = true
			j.Finish = now + overhead + wallToFinish
			e.cluster.Release(j.Alloc)
			j.Alloc = nil
			finished++
			if e.ctr != nil {
				e.ctr.ReleaseCalls++
			}
			e.recordEvent(j.Finish, j.Spec.ID, EventFinish, j.Spec.Demand)
		} else {
			j.Remaining -= round / sd
		}
		j.Attained += wallRun * float64(j.Spec.Demand)
	}
	if finished > 0 {
		// Compact the active list.
		kept := e.active[:0]
		for _, j := range e.active {
			if !j.Done {
				kept = append(kept, j)
			}
		}
		e.active = kept
	}
	return finished
}

func (e *engine) result(start, end float64, rounds int) (*Result, error) {
	res := &Result{
		Jobs:       e.jobs,
		Rounds:     rounds,
		UtilSeries: e.utilSeries,
		PlaceTimes: e.placeTimes,
		Events:     e.events,
		Metrics:    e.cfg.Metrics,
		Decisions:  e.cfg.Decisions,
	}
	first, last := e.cfg.MeasureFirst, e.cfg.MeasureLast
	if last <= 0 {
		last = len(e.jobs) - 1
	}
	lastFinish := start
	for _, j := range e.jobs {
		if j.Done && j.Finish > lastFinish {
			lastFinish = j.Finish
		}
		if j.Done && j.Spec.ID >= first && j.Spec.ID <= last {
			res.Measured = append(res.Measured, j)
		}
		if !j.Done {
			res.Unfinished++
		}
	}
	firstArrival := e.jobs[0].Spec.Arrival
	res.Makespan = lastFinish - firstArrival
	span := lastFinish - firstArrival
	if span > 0 {
		capacity := float64(e.cluster.Size()) * span
		// Busy GPU-seconds are summed per job in trace order rather than
		// accumulated round by round: each job's Attained already holds
		// exactly the round-by-round increments, and a fixed summation
		// order keeps the float result independent of how many rounds the
		// engine fast-forwarded through.
		var busy float64
		for _, j := range e.jobs {
			busy += j.Attained
		}
		res.Utilization = busy / capacity
		var ideal float64
		for _, j := range e.jobs {
			if j.Done && j.Started {
				ideal += float64(j.Spec.Demand) * j.Spec.Work
			}
		}
		res.ProductiveUtilization = ideal / capacity
	}
	if err := e.cluster.CheckInvariants(); err != nil {
		return nil, err
	}
	return res, nil
}
