package sim_test

// Non-perturbation + engagement guard for the engine introspection
// counters (Config.Counters). Attaching a Counters — alongside metrics
// and decision sinks — must leave Result byte-identical to an
// uninstrumented run, across all four stepping regimes; and the
// counters themselves must prove the regimes actually engaged, so the
// byte-identity cannot pass vacuously against fast paths that never
// fire. This supersedes the old process-global bulk-stats engagement
// checks.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestCountersDoNotPerturbSimulation(t *testing.T) {
	fastSuite := &sim.Counters{}
	naiveSuite := &sim.Counters{}
	cases := append(ffCases(t), denseCases(t)...)
	for _, c := range cases {
		c := c
		for _, disableFF := range []bool{false, true} {
			disableFF := disableFF
			suite := fastSuite
			if disableFF {
				suite = naiveSuite
			}
			t.Run(fmt.Sprintf("%s/naive=%v", c.name, disableFF), func(t *testing.T) {
				// Uninstrumented reference: no counters, no sinks.
				bare, err := sim.Run(c.config(t, disableFF))
				if err != nil {
					t.Fatal(err)
				}

				ctr := &sim.Counters{}
				cfg := c.config(t, disableFF)
				cfg.Counters = ctr
				cfg.Metrics = collectorFor(t, c, 1)
				cfg.Decisions = recorderFor(t, c.name)
				res, err := sim.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				suite.Add(ctr)

				// The regime counts partition the simulated rounds exactly.
				if got := ctr.TotalRounds(); got != int64(res.Rounds) {
					t.Errorf("counter TotalRounds=%d, Result.Rounds=%d", got, res.Rounds)
				}
				if disableFF {
					// The naive reference loop never bulk-advances, never
					// maintains an incremental order, never skips placement.
					if ctr.BulkRounds() != 0 || ctr.OrderRebuilds != 0 ||
						ctr.OrderRevalidated != 0 || ctr.PlacementsSkipped != 0 {
						t.Errorf("naive run engaged fast paths: %+v", *ctr)
					}
					if ctr.OrderFullCalls == 0 {
						t.Error("naive run recorded no full Order calls")
					}
				}

				// Byte-identity: wall-clock PlaceTimes and the sink pointers
				// are the only legitimately differing fields.
				if len(bare.PlaceTimes) != len(res.PlaceTimes) {
					t.Errorf("PlaceTimes count: bare %d, instrumented %d",
						len(bare.PlaceTimes), len(res.PlaceTimes))
				}
				bare.PlaceTimes, res.PlaceTimes = nil, nil
				res.Metrics, res.Decisions = nil, nil
				if !reflect.DeepEqual(bare, res) {
					for i := range bare.Jobs {
						if !reflect.DeepEqual(bare.Jobs[i], res.Jobs[i]) {
							t.Errorf("job %d diverged:\n  bare         %+v\n  instrumented %+v",
								i, *bare.Jobs[i], *res.Jobs[i])
							break
						}
					}
					t.Fatal("counters (with metrics + decision sinks) perturbed the simulation result")
				}
			})
		}
	}
	// The suite's traces keep the cluster busy end to end, so the
	// idle-gap regime needs its own case: one early job, one far-future
	// arrival, a long empty stretch between them.
	gapCtr := &sim.Counters{}
	gapCfg := sparseConfig(false)
	gapCfg.Trace = &trace.Trace{Name: "gap", Jobs: []trace.JobSpec{
		{ID: 0, Arrival: 0, Demand: 1, Work: 600},
		{ID: 1, Arrival: 3e5, Demand: 1, Work: 600},
	}}
	gapCfg.Counters = gapCtr
	if _, err := sim.Run(gapCfg); err != nil {
		t.Fatal(err)
	}
	fastSuite.Add(gapCtr)

	// Engagement guard across the fast-path suite: every regime and every
	// counted fast path must actually have fired somewhere.
	for _, g := range []struct {
		name string
		n    int64
	}{
		{"materialized rounds", fastSuite.MaterializedRounds},
		{"idle-gap rounds", fastSuite.IdleGapRounds},
		{"sparse fast-forward rounds", fastSuite.SparseRounds},
		{"dense bulk-advance rounds", fastSuite.DenseRounds},
		{"order rebuilds", fastSuite.OrderRebuilds},
		{"order revalidations", fastSuite.OrderRevalidated},
		{"placement skips", fastSuite.PlacementsSkipped},
		{"placement runs", fastSuite.PlacementsRun},
		{"preemptions", fastSuite.Preemptions},
		{"allocator calls", fastSuite.AllocCalls},
	} {
		if g.n == 0 {
			t.Errorf("%s never engaged across the fast-path suite", g.name)
		}
	}
	if naiveSuite.MaterializedRounds == 0 {
		t.Error("naive suite recorded no materialized rounds")
	}
}

// TestCountersAcrossSnapshotResume pins the capture/resume counters and
// the resumed-run round accounting: a resumed engine's TotalRounds is
// Result.Rounds minus the snapshot prefix it skipped.
func TestCountersAcrossSnapshotResume(t *testing.T) {
	const horizon = 40

	capCtr := &sim.Counters{}
	capCfg := sparseConfig(false)
	capCfg.Counters = capCtr
	snap, early, err := sim.Capture(capCfg, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if early != nil {
		t.Fatalf("run finished before the %d-round horizon", horizon)
	}
	if capCtr.SnapshotsCaptured != 1 {
		t.Errorf("SnapshotsCaptured=%d, want 1", capCtr.SnapshotsCaptured)
	}
	if got := capCtr.TotalRounds(); got != int64(snap.Rounds) {
		t.Errorf("capture counters cover %d rounds, snapshot froze at %d", got, snap.Rounds)
	}

	resCtr := &sim.Counters{}
	resCfg := sparseConfig(false)
	resCfg.Counters = resCtr
	res, err := sim.Resume(resCfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if resCtr.SnapshotsResumed != 1 || resCtr.ResumedRounds != int64(snap.Rounds) {
		t.Errorf("resume counters: SnapshotsResumed=%d ResumedRounds=%d, want 1/%d",
			resCtr.SnapshotsResumed, resCtr.ResumedRounds, snap.Rounds)
	}
	if got := resCtr.TotalRounds(); got != int64(res.Rounds)-resCtr.ResumedRounds {
		t.Errorf("resumed TotalRounds=%d, want Result.Rounds-ResumedRounds = %d-%d",
			got, res.Rounds, resCtr.ResumedRounds)
	}

	// Whole-run reference: the resumed result must match it, counters or
	// not (the snapshot suite pins this broadly; here it guards that the
	// counter increments sit outside the restored state).
	whole, err := sim.Run(sparseConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	whole.PlaceTimes, res.PlaceTimes = nil, nil
	if !reflect.DeepEqual(whole, res) {
		t.Fatal("resumed result with counters attached diverged from the whole run")
	}
}
