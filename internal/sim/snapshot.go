package sim

// Engine snapshots: a complete, deterministic capture of the engine's
// mutable state at a virtual-time horizon, so a sweep over cells sharing
// a warmup prefix can simulate the prefix once and fork each cell from
// the captured state. The acceptance bar is the house methodology: a run
// resumed from a snapshot is byte-identical to the straight-through run
// across all four stepping regimes, with or without metrics/decision
// sinks attached (TestSnapshotResumeByteIdentical pins this).
//
// The capture point is the top of the run loop at round Rounds — before
// that round's admissions, placement and advance — which is the one
// program point every stepping regime passes through with identical
// state: the idle-gap and bulk-advance loops are clamped at the horizon
// (see haltsAt) so a capture lands exactly on its round no matter how
// the engine was stepping when it got there.

import (
	"fmt"
	"math"

	"repro/internal/cluster"
)

// SnapshotState is the capability interface snapshot-aware components
// implement: policies that carry mutable cross-round state (the
// rng-bearing placers) and the metrics/decision sinks. Marshal must
// serialize every field that influences future behavior or output;
// Unmarshal must restore the receiver to exactly that state. Components
// without the interface are treated as stateless (or as holding only
// deterministic pure caches, like PAL's lazily built L×V matrices).
type SnapshotState interface {
	MarshalSnapshotState() ([]byte, error)
	UnmarshalSnapshotState(data []byte) error
}

// JobState is one arrived job's mutable state at the horizon, plus an
// echo of the identifying spec fields so Resume can verify the target
// trace's prefix genuinely matches the captured one.
type JobState struct {
	// Spec echo (validation only; the resumed run keeps its own specs).
	ID      int     `json:"id"`
	Model   string  `json:"model,omitempty"`
	Class   int     `json:"class"`
	Arrival float64 `json:"arrival"`
	Demand  int     `json:"demand"`
	Work    float64 `json:"work"`

	// Mutable engine state (sim.Job's exported fields).
	Remaining   float64 `json:"remaining"`
	Alloc       []int   `json:"alloc"`
	Attained    float64 `json:"attained"`
	Started     bool    `json:"started,omitempty"`
	FirstRun    float64 `json:"first_run"`
	Finish      float64 `json:"finish"`
	Done        bool    `json:"done,omitempty"`
	Preemptions int     `json:"preemptions,omitempty"`
	Migrations  int     `json:"migrations,omitempty"`
	PrevAlloc   []int   `json:"prev_alloc"`
}

// Snapshot is the complete engine state at a horizon. All fields are
// plain data (JSON-friendly), ready for the canonical codec in
// internal/export and the persistent tier in internal/store.
type Snapshot struct {
	// Completed marks a sentinel snapshot recording that the prefix run
	// finished (or truncated) before the horizon, so there is no state
	// to fork from and cells must run from scratch. Every other field is
	// zero; Resume rejects it.
	Completed bool `json:"completed,omitempty"`

	// Rounds and Now are the captured clocks: the round counter at the
	// horizon and the engine clock's exact accumulated-float bits, so
	// the resumed round grid continues bit-identically.
	Rounds   int     `json:"rounds"`
	Now      float64 `json:"now"`
	RoundSec float64 `json:"round_sec"`

	// Topology pins the cluster shape the allocations refer to.
	Topology cluster.Topology `json:"topology"`

	// NextArrival is the index of the first not-yet-arrived trace job;
	// Jobs holds the mutable state of the arrived prefix Jobs[0:NextArrival]
	// (later jobs are still at their initial state, which Resume
	// reconstructs from the target trace).
	NextArrival int        `json:"next_arrival"`
	Jobs        []JobState `json:"jobs"`

	// SchedName/PlacerName are the prefix policies' registry names;
	// SchedState/PlacerState their marshaled SnapshotState (nil for
	// stateless policies). Resume restores a policy's state only when
	// the resumed component's name matches — a forked cell switching
	// policies at the horizon starts its new policy fresh, exactly as
	// the fork semantics define.
	SchedName   string `json:"sched_name"`
	PlacerName  string `json:"placer_name"`
	SchedState  []byte `json:"sched_state"`
	PlacerState []byte `json:"placer_state"`

	// UtilSeries and Events are the result series accumulated before the
	// horizon, preloaded on resume so the forked result carries the
	// whole run's series. (PlaceTimes is deliberately absent: it is
	// wall-clock observability data outside byte-identity, and a forked
	// result's PlaceTimes cover only post-fork placements.)
	UtilSeries []UtilSample `json:"util_series"`
	Events     []Event      `json:"events"`

	// MetricsState/DecisionsState are the attached sinks' marshaled
	// mid-run state (nil when no sink was attached at capture).
	MetricsState   []byte `json:"metrics_state"`
	DecisionsState []byte `json:"decisions_state"`
}

// Capture runs cfg until the top of round haltRounds and freezes the
// engine there. When the run completes (or truncates) before the
// horizon there is nothing to capture: Capture returns the finished
// Result instead, with a nil Snapshot — exactly one of the two return
// values is non-nil on success.
//
// A configuration with an attached metrics or decision sink requires
// the sink to implement SnapshotState (the standard collector and
// recorder do); otherwise the mid-run sink state would be lost and the
// forked payload would silently miss the prefix.
func Capture(cfg Config, haltRounds int) (*Snapshot, *Result, error) {
	if haltRounds <= 0 {
		return nil, nil, fmt.Errorf("sim: capture horizon %d rounds, want >= 1", haltRounds)
	}
	eng, err := newEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng.haltAt = haltRounds
	res, err := eng.run()
	if err != nil {
		return nil, nil, err
	}
	if !eng.halted {
		return nil, res, nil
	}
	snap, err := eng.snapshot()
	if err != nil {
		return nil, nil, err
	}
	return snap, nil, nil
}

// snapshot freezes the halted engine's state into a Snapshot.
func (e *engine) snapshot() (*Snapshot, error) {
	s := &Snapshot{
		Rounds:      e.haltedRounds,
		Now:         e.haltedNow,
		RoundSec:    e.cfg.RoundSec,
		Topology:    e.cfg.Topology,
		NextArrival: e.nextArrival,
		SchedName:   e.cfg.Sched.Name(),
		PlacerName:  e.cfg.Placer.Name(),
		UtilSeries:  append([]UtilSample(nil), e.utilSeries...),
		Events:      append([]Event(nil), e.events...),
	}
	s.Jobs = make([]JobState, e.nextArrival)
	for i, j := range e.jobs[:e.nextArrival] {
		s.Jobs[i] = JobState{
			ID:          j.Spec.ID,
			Model:       j.Spec.Model,
			Class:       int(j.Spec.Class),
			Arrival:     j.Spec.Arrival,
			Demand:      j.Spec.Demand,
			Work:        j.Spec.Work,
			Remaining:   j.Remaining,
			Alloc:       gpusToInts(j.Alloc),
			Attained:    j.Attained,
			Started:     j.Started,
			FirstRun:    j.FirstRun,
			Finish:      j.Finish,
			Done:        j.Done,
			Preemptions: j.Preemptions,
			Migrations:  j.Migrations,
			PrevAlloc:   gpusToInts(j.PrevAlloc),
		}
	}
	var err error
	if ss, ok := e.cfg.Sched.(SnapshotState); ok {
		if s.SchedState, err = ss.MarshalSnapshotState(); err != nil {
			return nil, fmt.Errorf("sim: snapshot scheduler %s: %w", e.cfg.Sched.Name(), err)
		}
	}
	if ps, ok := e.cfg.Placer.(SnapshotState); ok {
		if s.PlacerState, err = ps.MarshalSnapshotState(); err != nil {
			return nil, fmt.Errorf("sim: snapshot placer %s: %w", e.cfg.Placer.Name(), err)
		}
	}
	if e.cfg.Metrics != nil {
		ms, ok := e.cfg.Metrics.(SnapshotState)
		if !ok {
			return nil, fmt.Errorf("sim: metrics sink %T does not implement SnapshotState", e.cfg.Metrics)
		}
		if s.MetricsState, err = ms.MarshalSnapshotState(); err != nil {
			return nil, fmt.Errorf("sim: snapshot metrics sink: %w", err)
		}
	}
	if e.cfg.Decisions != nil {
		ds, ok := e.cfg.Decisions.(SnapshotState)
		if !ok {
			return nil, fmt.Errorf("sim: decision sink %T does not implement SnapshotState", e.cfg.Decisions)
		}
		if s.DecisionsState, err = ds.MarshalSnapshotState(); err != nil {
			return nil, fmt.Errorf("sim: snapshot decision sink: %w", err)
		}
	}
	return s, nil
}

// Resume reconstructs the engine at snap's horizon under cfg and runs it
// to completion. The target configuration must share the snapshot's
// cluster topology, round length and arrived trace prefix (the spec
// echoes are verified job by job); the workload suffix and the policy,
// scheduler and sink choices are free to differ — that is the fork.
//
// Policy state restores by name: a resumed component whose registry name
// matches the captured one gets its SnapshotState back (so a no-switch
// fork is byte-identical to the straight-through run); a switched
// component starts fresh. An attached sink must implement SnapshotState
// and have been attached at capture too, or the resumed payload would
// miss the prefix.
func Resume(cfg Config, snap *Snapshot) (*Result, error) {
	eng, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.restore(snap); err != nil {
		return nil, err
	}
	return eng.run()
}

// restore loads a snapshot into a freshly constructed engine.
func (e *engine) restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("sim: resume from nil snapshot")
	}
	if s.Completed {
		return fmt.Errorf("sim: snapshot is a completed-run sentinel; run from scratch instead")
	}
	if e.cfg.Topology != s.Topology {
		return fmt.Errorf("sim: resume topology %+v, snapshot captured %+v", e.cfg.Topology, s.Topology)
	}
	if e.cfg.RoundSec != s.RoundSec {
		return fmt.Errorf("sim: resume round_sec %g, snapshot captured %g", e.cfg.RoundSec, s.RoundSec)
	}
	if s.NextArrival != len(s.Jobs) {
		return fmt.Errorf("sim: snapshot carries %d job states, next_arrival %d", len(s.Jobs), s.NextArrival)
	}
	if s.NextArrival > len(e.jobs) {
		return fmt.Errorf("sim: snapshot arrived prefix has %d jobs, target trace has %d", s.NextArrival, len(e.jobs))
	}
	for i, js := range s.Jobs {
		j := e.jobs[i]
		if j.Spec.ID != js.ID || j.Spec.Model != js.Model || int(j.Spec.Class) != js.Class ||
			j.Spec.Arrival != js.Arrival || j.Spec.Demand != js.Demand || j.Spec.Work != js.Work {
			return fmt.Errorf("sim: trace prefix mismatch at job %d: snapshot captured id=%d model=%q class=%d arrival=%g demand=%d work=%g",
				i, js.ID, js.Model, js.Class, js.Arrival, js.Demand, js.Work)
		}
		j.Remaining = js.Remaining
		j.Alloc = intsToGPUs(js.Alloc)
		j.Attained = js.Attained
		j.Started = js.Started
		j.FirstRun = js.FirstRun
		j.Finish = js.Finish
		j.Done = js.Done
		j.Preemptions = js.Preemptions
		j.Migrations = js.Migrations
		j.PrevAlloc = intsToGPUs(js.PrevAlloc)
		if j.Alloc != nil {
			if j.Done {
				return fmt.Errorf("sim: snapshot job %d is done but still allocated", js.ID)
			}
			for _, g := range j.Alloc {
				if int(g) < 0 || int(g) >= e.cluster.Size() {
					return fmt.Errorf("sim: snapshot job %d allocation names GPU %d, cluster has %d", js.ID, g, e.cluster.Size())
				}
				if !e.cluster.IsFree(g) {
					return fmt.Errorf("sim: snapshot job %d allocation overlaps GPU %d (owner %d)", js.ID, g, e.cluster.Owner(g))
				}
			}
			e.cluster.Allocate(j.Spec.ID, j.Alloc)
		}
		if !j.Done {
			e.active = append(e.active, j)
		}
	}
	// The restore-time audit the tentpole promises: the replayed
	// allocations must leave the incremental occupancy indexes exactly
	// consistent before a single resumed round runs.
	if err := e.cluster.CheckInvariants(); err != nil {
		return fmt.Errorf("sim: resume: %w", err)
	}
	if !(s.Now == s.Now) || math.IsInf(s.Now, 0) {
		return fmt.Errorf("sim: snapshot clock %v is not finite", s.Now)
	}
	e.nextArrival = s.NextArrival
	e.utilSeries = append(e.utilSeries, s.UtilSeries...)
	e.events = append(e.events, s.Events...)
	if s.SchedState != nil && e.cfg.Sched.Name() == s.SchedName {
		ss, ok := e.cfg.Sched.(SnapshotState)
		if !ok {
			return fmt.Errorf("sim: scheduler %s carries snapshot state but does not implement SnapshotState", s.SchedName)
		}
		if err := ss.UnmarshalSnapshotState(s.SchedState); err != nil {
			return fmt.Errorf("sim: restore scheduler %s: %w", s.SchedName, err)
		}
	}
	if s.PlacerState != nil && e.cfg.Placer.Name() == s.PlacerName {
		ps, ok := e.cfg.Placer.(SnapshotState)
		if !ok {
			return fmt.Errorf("sim: placer %s carries snapshot state but does not implement SnapshotState", s.PlacerName)
		}
		if err := ps.UnmarshalSnapshotState(s.PlacerState); err != nil {
			return fmt.Errorf("sim: restore placer %s: %w", s.PlacerName, err)
		}
	}
	if e.cfg.Metrics != nil {
		if s.MetricsState == nil {
			return fmt.Errorf("sim: resume attaches a metrics sink but the snapshot captured none (the payload would miss the prefix)")
		}
		ms, ok := e.cfg.Metrics.(SnapshotState)
		if !ok {
			return fmt.Errorf("sim: metrics sink %T does not implement SnapshotState", e.cfg.Metrics)
		}
		if err := ms.UnmarshalSnapshotState(s.MetricsState); err != nil {
			return fmt.Errorf("sim: restore metrics sink: %w", err)
		}
	}
	if e.cfg.Decisions != nil {
		if s.DecisionsState == nil {
			return fmt.Errorf("sim: resume attaches a decision sink but the snapshot captured none (the trace would miss the prefix)")
		}
		ds, ok := e.cfg.Decisions.(SnapshotState)
		if !ok {
			return fmt.Errorf("sim: decision sink %T does not implement SnapshotState", e.cfg.Decisions)
		}
		if err := ds.UnmarshalSnapshotState(s.DecisionsState); err != nil {
			return fmt.Errorf("sim: restore decision sink: %w", err)
		}
	}
	e.resumed = true
	e.resumeNow = s.Now
	e.resumeRounds = s.Rounds
	if e.ctr != nil {
		e.ctr.SnapshotsResumed++
		e.ctr.ResumedRounds += int64(s.Rounds)
	}
	return nil
}

// gpusToInts converts an allocation to plain ints, preserving nil.
func gpusToInts(gpus []cluster.GPUID) []int {
	if gpus == nil {
		return nil
	}
	out := make([]int, len(gpus))
	for i, g := range gpus {
		out[i] = int(g)
	}
	return out
}

// intsToGPUs is the inverse of gpusToInts, preserving nil.
func intsToGPUs(ints []int) []cluster.GPUID {
	if ints == nil {
		return nil
	}
	out := make([]cluster.GPUID, len(ints))
	for i, g := range ints {
		out[i] = cluster.GPUID(g)
	}
	return out
}
