package sim_test

// Equivalence guard for the decision-trace hook: attaching a
// decision.Recorder must not forfeit fast-forwarding, must leave the
// simulation Result byte-identical (to a naive run AND to an
// uninstrumented run), and the recorded trace must be *byte-identical*
// across the engine's stepping regimes — the naive loop's length-1
// observations and the fast path's bulk spans must coalesce to the same
// records, bit for bit. The matrix is the union of the sparse
// fast-forward cases (Sia, sparse Synergy, non-sticky PAL) and the
// dense-incremental cases (saturated Sia/Synergy queues, the
// preemption-heavy low-threshold-LAS bursty workload).

import (
	"reflect"
	"testing"

	"repro/internal/decision"
	"repro/internal/sim"
)

// recorderFor builds a fresh all-facet recorder for one case.
func recorderFor(t *testing.T, name string) *decision.Recorder {
	t.Helper()
	return decision.MustRecorder(decision.Config{Label: name})
}

func TestDecisionTraceByteIdentical(t *testing.T) {
	suiteCtr := &sim.Counters{}
	cases := append(ffCases(t), denseCases(t)...)
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			// Uninstrumented fast run: the reference for non-perturbation.
			bare, err := sim.Run(c.config(t, false))
			if err != nil {
				t.Fatal(err)
			}

			naiveCfg := c.config(t, true)
			naiveCfg.Decisions = recorderFor(t, c.name)
			naive, err := sim.Run(naiveCfg)
			if err != nil {
				t.Fatal(err)
			}
			fastCfg := c.config(t, false)
			fastCfg.Decisions = recorderFor(t, c.name)
			fastCfg.Counters = &sim.Counters{}
			fast, err := sim.Run(fastCfg)
			if err != nil {
				t.Fatal(err)
			}
			suiteCtr.Add(fastCfg.Counters)

			nt, ft := decision.FromResult(naive), decision.FromResult(fast)
			if nt == nil || ft == nil {
				t.Fatal("trace missing from an instrumented run")
			}
			// Coverage: every simulated round in exactly one record span.
			if nt.Rounds != int64(naive.Rounds) || ft.Rounds != int64(fast.Rounds) {
				t.Errorf("trace covers %d/%d rounds, runs had %d/%d",
					nt.Rounds, ft.Rounds, naive.Rounds, fast.Rounds)
			}
			if !reflect.DeepEqual(nt, ft) {
				if len(nt.Records) != len(ft.Records) {
					t.Errorf("record count diverged: naive %d, fast %d",
						len(nt.Records), len(ft.Records))
				}
				for i := 0; i < len(nt.Records) && i < len(ft.Records); i++ {
					if !reflect.DeepEqual(nt.Records[i], ft.Records[i]) {
						t.Errorf("record %d diverged:\n  naive %+v\n  fast  %+v",
							i, nt.Records[i], ft.Records[i])
						break
					}
				}
				t.Fatal("decision trace not byte-identical across stepping regimes")
			}

			// The simulation itself must stay byte-identical with the sink
			// attached — against the naive instrumented run and against the
			// uninstrumented run (wall-clock PlaceTimes and the sink
			// pointers excluded, as in the metrics tests).
			if len(naive.PlaceTimes) != len(fast.PlaceTimes) {
				t.Errorf("PlaceTimes count: naive %d, fast %d",
					len(naive.PlaceTimes), len(fast.PlaceTimes))
			}
			if len(bare.PlaceTimes) != len(fast.PlaceTimes) {
				t.Errorf("PlaceTimes count: bare %d, instrumented %d",
					len(bare.PlaceTimes), len(fast.PlaceTimes))
			}
			naive.PlaceTimes, fast.PlaceTimes, bare.PlaceTimes = nil, nil, nil
			naive.Decisions, fast.Decisions = nil, nil
			if !reflect.DeepEqual(naive, fast) {
				t.Fatal("instrumented result not byte-identical to naive loop")
			}
			if !reflect.DeepEqual(bare, fast) {
				t.Fatal("decision sink perturbed the simulation result")
			}
		})
	}
	// Engagement guard: the suite must actually have exercised the dense
	// bulk path with recorders attached — otherwise the byte-identity
	// above is vacuous.
	if suiteCtr.DenseSpans == 0 {
		t.Error("dense bulk-advance path never engaged across the decision suite")
	}
}

// TestDecisionsKeepFastForwardEngaged guards the performance claim's
// precondition: with a recorder attached, a sparse sticky run must still
// skip its dead time. If the sink silently forced the naive path, the
// byte-identity test above would pass vacuously.
func TestDecisionsKeepFastForwardEngaged(t *testing.T) {
	cfg := sparseConfig(false)
	rec := decision.MustRecorder(decision.Config{Label: "sparse"})
	cfg.Decisions = rec
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 24 jobs, everything fits on arrival: one placement per arrival.
	if len(res.PlaceTimes) > 30 {
		t.Errorf("placement called %d times with decisions attached; fast-forward not engaging",
			len(res.PlaceTimes))
	}
	tr := decision.FromResult(res)
	if tr == nil {
		t.Fatal("no trace")
	}
	if tr.Rounds != int64(res.Rounds) {
		t.Errorf("recorder observed %d rounds, engine ran %d", tr.Rounds, res.Rounds)
	}
	if len(tr.Records) == 0 {
		t.Fatal("trace has no records")
	}
	// The trace must be compact: one record per decision change, not per
	// round — a sparse run's records are bounded by its arrivals and
	// completions, far below its round count.
	if len(tr.Records) > 120 {
		t.Errorf("%d records on a 24-job sparse trace; spans not coalescing", len(tr.Records))
	}
	// Placements must carry the Equation-1 decomposition.
	placed := 0
	for _, rec := range tr.Records {
		for _, p := range rec.Placements {
			placed++
			if p.Slowdown != p.Locality*p.PMScore {
				t.Errorf("placement job %d: slowdown %v != locality %v × pm %v",
					p.Job, p.Slowdown, p.Locality, p.PMScore)
			}
			if p.GPUs <= 0 || p.Nodes <= 0 {
				t.Errorf("placement job %d: degenerate span gpus=%d nodes=%d",
					p.Job, p.GPUs, p.Nodes)
			}
		}
	}
	if placed == 0 {
		t.Error("no placements recorded")
	}
}
