package sim_test

// Benchmarks backing the claim that decision tracing is fast-forward
// safe: attaching a decision.Recorder must leave both fast paths — the
// sparse dead-time skip and the dense incremental core — doing the bulk
// of the work, not the recorder. Acceptance: the instrumented runs
// retain >= 3x of their fast-path speedup over the instrumented naive
// loop. Run with
//
//	go test -bench=BenchmarkDecisions -benchtime=1x ./internal/sim
//
// BenchmarkDecisionsOverhead reports decisions-on vs decisions-off ms
// and the instrumented speedups in one invocation (CI archives these
// numbers as BENCH_decisions.json).

import (
	"testing"
	"time"

	"repro/internal/decision"
	"repro/internal/sim"
)

// withRecorder attaches a fresh default recorder to cfg.
func withRecorder(b *testing.B, cfg sim.Config) sim.Config {
	b.Helper()
	rec, err := decision.NewRecorder(decision.Config{Label: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	cfg.Decisions = rec
	return cfg
}

func runTraced(b *testing.B, mk func(bool) sim.Config, disableFF bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(withRecorder(b, mk(disableFF)))
		if err != nil {
			b.Fatal(err)
		}
		if tr := decision.FromResult(res); tr == nil || len(tr.Records) == 0 {
			b.Fatal("no decision trace collected")
		}
	}
}

func BenchmarkDecisionsSparseNaive(b *testing.B)       { runTraced(b, sparseConfig, true) }
func BenchmarkDecisionsSparseFastForward(b *testing.B) { runTraced(b, sparseConfig, false) }
func BenchmarkDecisionsDenseNaive(b *testing.B)        { runTraced(b, denseBurstyConfig, true) }
func BenchmarkDecisionsDenseIncremental(b *testing.B)  { runTraced(b, denseBurstyConfig, false) }

// BenchmarkDecisionsOverhead times the six corners — {decisions on, off}
// × {fast path, naive} on the sparse and dense workloads — and reports:
//
//	sparse-on-ms / sparse-off-ms     fast-forward cost with/without the sink
//	dense-on-ms / dense-off-ms       incremental-core cost with/without it
//	sparse-instrumented-speedup      decisions-on fast-forward vs decisions-on naive
//	dense-instrumented-speedup       decisions-on incremental vs decisions-on naive
func BenchmarkDecisionsOverhead(b *testing.B) {
	run := func(cfg sim.Config) time.Duration {
		t0 := time.Now()
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	denseInputs() // materialize shared inputs outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparseOn := run(withRecorder(b, sparseConfig(false)))
		sparseOff := run(sparseConfig(false))
		sparseOnNaive := run(withRecorder(b, sparseConfig(true)))
		denseOn := run(withRecorder(b, denseBurstyConfig(false)))
		denseOff := run(denseBurstyConfig(false))
		denseOnNaive := run(withRecorder(b, denseBurstyConfig(true)))
		b.ReportMetric(sparseOn.Seconds()*1000, "sparse-on-ms")
		b.ReportMetric(sparseOff.Seconds()*1000, "sparse-off-ms")
		b.ReportMetric(denseOn.Seconds()*1000, "dense-on-ms")
		b.ReportMetric(denseOff.Seconds()*1000, "dense-off-ms")
		b.ReportMetric(sparseOnNaive.Seconds()/sparseOn.Seconds(), "sparse-instrumented-speedup")
		b.ReportMetric(denseOnNaive.Seconds()/denseOn.Seconds(), "dense-instrumented-speedup")
	}
}
