package sim_test

// Benchmarks backing the claim that telemetry is fast-forward-safe: on
// the sparse workload where dead-time skipping buys ~8.5x, attaching a
// metrics.Collector must retain most of that speedup (acceptance: >= 5x
// over the naive loop). Run with
//
//	go test -bench=BenchmarkMetrics -benchtime=1x ./internal/sim
//
// BenchmarkMetricsOverhead reports metrics-on vs metrics-off ns and the
// instrumented speedup in one invocation (CI archives these numbers as
// BENCH_metrics.json).

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// sparseMetricsConfig is sparseConfig with a default collector attached.
func sparseMetricsConfig(b *testing.B, disableFF bool) sim.Config {
	b.Helper()
	cfg := sparseConfig(disableFF)
	col, err := metrics.NewCollector(metrics.Config{ClusterGPUs: cfg.Topology.Size()})
	if err != nil {
		b.Fatal(err)
	}
	cfg.Metrics = col
	return cfg
}

func runSparseMetrics(b *testing.B, disableFF bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sparseMetricsConfig(b, disableFF))
		if err != nil {
			b.Fatal(err)
		}
		if metrics.FromResult(res) == nil {
			b.Fatal("no payload collected")
		}
	}
}

func BenchmarkMetricsSparseNaive(b *testing.B)       { runSparseMetrics(b, true) }
func BenchmarkMetricsSparseFastForward(b *testing.B) { runSparseMetrics(b, false) }

// BenchmarkMetricsOverhead times the four corners — {metrics on, off} ×
// {fast-forward, naive} — back to back and reports:
//
//	metrics-on-ms / metrics-off-ms   fast-forward cost with/without the sink
//	overhead-pct                     what the sink costs the fast path
//	instrumented-speedup             metrics-on fast-forward vs metrics-on naive
func BenchmarkMetricsOverhead(b *testing.B) {
	run := func(cfg sim.Config) time.Duration {
		t0 := time.Now()
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	for i := 0; i < b.N; i++ {
		onFast := run(sparseMetricsConfig(b, false))
		offFast := run(sparseConfig(false))
		onNaive := run(sparseMetricsConfig(b, true))
		b.ReportMetric(onFast.Seconds()*1000, "metrics-on-ms")
		b.ReportMetric(offFast.Seconds()*1000, "metrics-off-ms")
		b.ReportMetric(100*(onFast.Seconds()-offFast.Seconds())/offFast.Seconds(), "overhead-pct")
		b.ReportMetric(onNaive.Seconds()/onFast.Seconds(), "instrumented-speedup")
	}
}
