package sim_test

// Equivalence guard for engine snapshots: capturing a run at a horizon
// and resuming it must be *byte-identical* to the straight-through run
// — same archive-codec bytes — across the stepping regimes (the naive
// reference and the fast path, whose sparse and dense machinery the
// workload mix exercises), with and without metrics/decision sinks, and
// with the snapshot itself routed through the export codec so the
// persisted form is what is proven equivalent. PlaceTimes is the one
// neutralized field: it is wall-clock, and a forked run's placement
// timings cover only post-fork placements by design.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/decision"
	"repro/internal/export"
	"repro/internal/rng"
	"repro/internal/sim"
)

// snapshotCases selects the matrix the issue names: Sia, dense Synergy,
// a preemption-heavy bursty LAS workload — plus an rng-bearing Random
// placer (stream-position round-trip) and PAL (stateless policy,
// naive-only regime).
func snapshotCases(t *testing.T) []ffCase {
	t.Helper()
	want := map[string]bool{
		"sia5/las/packed-sticky":                    true,
		"sia3/fifo/random-sticky":                   true,
		"sia1/fifo/pal":                             true,
		"dense-synergy/las/packed-sticky":           true,
		"preempt-heavy/las-lowthresh/packed-sticky": true,
	}
	var out []ffCase
	for _, c := range append(ffCases(t), denseCases(t)...) {
		if want[c.name] {
			out = append(out, c)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("selected %d snapshot cases, want %d (case names drifted?)", len(out), len(want))
	}
	return out
}

// archiveBytes encodes a result through the canonical codec with the
// wall-clock PlaceTimes neutralized.
func archiveBytes(t *testing.T, res *sim.Result) []byte {
	t.Helper()
	res.PlaceTimes = nil
	var buf bytes.Buffer
	if err := export.EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotResumeByteIdentical(t *testing.T) {
	horizons := rng.New(0x5A95)
	for _, c := range snapshotCases(t) {
		c := c
		for _, disableFF := range []bool{false, true} {
			disableFF := disableFF
			for _, withSinks := range []bool{false, true} {
				withSinks := withSinks
				name := fmt.Sprintf("%s/naive=%v/sinks=%v", c.name, disableFF, withSinks)
				t.Run(name, func(t *testing.T) {
					attach := func(cfg *sim.Config) {
						if withSinks {
							cfg.Metrics = collectorFor(t, c, 3)
							cfg.Decisions = decision.MustRecorder(decision.Config{Label: c.name})
						}
					}
					straightCfg := c.config(t, disableFF)
					attach(&straightCfg)
					straight, err := sim.Run(straightCfg)
					if err != nil {
						t.Fatal(err)
					}
					if straight.Rounds < 4 {
						t.Fatalf("run too short (%d rounds) to snapshot meaningfully", straight.Rounds)
					}
					want := archiveBytes(t, straight)

					// One rng-chosen mid-run horizon plus the earliest
					// possible one (capture before any busy round beyond the
					// first can complete).
					for _, h := range []int{1 + horizons.Intn(straight.Rounds-2), 1} {
						h := h
						t.Run(fmt.Sprintf("h=%d", h), func(t *testing.T) {
							capCfg := c.config(t, disableFF)
							attach(&capCfg)
							snap, early, err := sim.Capture(capCfg, h)
							if err != nil {
								t.Fatal(err)
							}
							if early != nil {
								t.Fatalf("run completed before horizon %d (straight ran %d rounds)", h, straight.Rounds)
							}

							// The persisted form is what must resume: route
							// the snapshot through the canonical codec.
							var buf bytes.Buffer
							if err := export.EncodeSnapshot(&buf, snap); err != nil {
								t.Fatal(err)
							}
							decoded, err := export.DecodeSnapshot(bytes.NewReader(buf.Bytes()))
							if err != nil {
								t.Fatal(err)
							}

							resCfg := c.config(t, disableFF)
							attach(&resCfg)
							forked, err := sim.Resume(resCfg, decoded)
							if err != nil {
								t.Fatal(err)
							}
							got := archiveBytes(t, forked)
							if !bytes.Equal(want, got) {
								t.Fatalf("resumed run not byte-identical to straight-through run (horizon %d of %d rounds)",
									h, straight.Rounds)
							}
						})
					}
				})
			}
		}
	}
}

// TestCaptureAfterCompletion pins the early-completion contract: a
// horizon at or past the run's natural end returns the finished result
// (identical to a plain run) and no snapshot.
func TestCaptureAfterCompletion(t *testing.T) {
	c := ffCases(t)[0]
	straight, err := sim.Run(c.config(t, false))
	if err != nil {
		t.Fatal(err)
	}
	want := archiveBytes(t, straight)
	snap, res, err := sim.Capture(c.config(t, false), straight.Rounds+10)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatal("got a snapshot from a horizon past the run's end")
	}
	if res == nil {
		t.Fatal("no result from a past-the-end capture")
	}
	if got := archiveBytes(t, res); !bytes.Equal(want, got) {
		t.Fatal("past-the-end capture result differs from a plain run")
	}
}

// TestSnapshotCodecFixedPoint mirrors the result codec suite: encoding a
// decoded snapshot must reproduce the original bytes exactly.
func TestSnapshotCodecFixedPoint(t *testing.T) {
	c := denseCases(t)[3] // dense-synergy/las: busy cluster, allocations in flight
	cfg := c.config(t, false)
	cfg.Metrics = collectorFor(t, c, 1)
	cfg.Decisions = decision.MustRecorder(decision.Config{Label: c.name})
	snap, res, err := sim.Capture(cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatalf("run completed before the fixed-point horizon (res=%v)", res != nil)
	}
	var first bytes.Buffer
	if err := export.EncodeSnapshot(&first, snap); err != nil {
		t.Fatal(err)
	}
	decoded, err := export.DecodeSnapshot(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := export.EncodeSnapshot(&second, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("snapshot codec is not a fixed point: re-encoding a decoded snapshot changed the bytes")
	}
	if len(snap.Jobs) == 0 || snap.NextArrival == 0 {
		t.Fatal("fixed-point snapshot captured no arrived jobs; the case is vacuous")
	}
}
