package sim

import "fmt"

// EventKind enumerates the scheduling lifecycle events the engine can
// record for post-hoc analysis (queue forensics like the workload-5
// blocking story of §V-B, or debugging a policy's churn).
type EventKind int

// The recorded event kinds.
const (
	// EventAdmit: the job passed admission control into the queue.
	EventAdmit EventKind = iota
	// EventReject: admission control refused the job (e.g. demand larger
	// than the cluster).
	EventReject
	// EventStart: the job received GPUs for the first time.
	EventStart
	// EventPreempt: a running job was descheduled by priority.
	EventPreempt
	// EventResume: a previously-preempted job received GPUs again.
	EventResume
	// EventMigrate: a running job's allocation changed between rounds.
	EventMigrate
	// EventFinish: the job completed.
	EventFinish
)

// String returns the event kind's name.
func (k EventKind) String() string {
	switch k {
	case EventAdmit:
		return "admit"
	case EventReject:
		return "reject"
	case EventStart:
		return "start"
	case EventPreempt:
		return "preempt"
	case EventResume:
		return "resume"
	case EventMigrate:
		return "migrate"
	case EventFinish:
		return "finish"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one entry of the engine's event log.
type Event struct {
	Time  float64
	JobID int
	Kind  EventKind
	// GPUs is the allocation size involved (0 for admit/reject).
	GPUs int
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("t=%.0fs job=%d %s gpus=%d", e.Time, e.JobID, e.Kind, e.GPUs)
}

// recordEvent appends to the log when event recording is enabled.
func (e *engine) recordEvent(now float64, jobID int, kind EventKind, gpus int) {
	if !e.cfg.RecordEvents {
		return
	}
	e.events = append(e.events, Event{Time: now, JobID: jobID, Kind: kind, GPUs: gpus})
}

// EventsFor filters a result's event log to one job.
func (r *Result) EventsFor(jobID int) []Event {
	var out []Event
	for _, ev := range r.Events {
		if ev.JobID == jobID {
			out = append(out, ev)
		}
	}
	return out
}

// CountEvents tallies the log by kind.
func (r *Result) CountEvents() map[EventKind]int {
	out := make(map[EventKind]int)
	for _, ev := range r.Events {
		out[ev.Kind]++
	}
	return out
}
