package sim_test

// Benchmarks backing the fast-forward engine's speedup claim. The
// sparse trace is the target workload: long-running jobs with long
// stretches where nothing arrives, finishes or moves, so the naive loop
// burns its time in scheduler sorts and placement bookkeeping that
// provably cannot change anything. Run with
//
//	go test -bench=BenchmarkSim -benchtime=1x ./internal/sim
//
// BenchmarkSimFastForwardSpeedup reports the naive/fast ratio directly.

import (
	"testing"
	"time"

	"repro/internal/place"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// sparseTrace builds a Philly-like sparse workload: n long jobs arriving
// hours apart on a small cluster, the regime where almost every round is
// a pure progress round.
func sparseTrace(n int) *trace.Trace {
	jobs := make([]trace.JobSpec, n)
	for i := range jobs {
		jobs[i] = trace.JobSpec{
			ID:      i,
			Class:   vprof.Class(i % 3),
			Arrival: float64(i) * 4 * 3600,
			Demand:  1 + (i%2)*3, // 1 or 4 GPUs
			Work:    float64(20+i%7) * 3600,
		}
	}
	return &trace.Trace{Name: "sparse-bench", Jobs: jobs}
}

func sparseConfig(disableFF bool) sim.Config {
	topo := clusterTopology(8) // 32 GPUs: everything fits, queue stays empty
	return sim.Config{
		Topology:           topo,
		Trace:              sparseTrace(24),
		Sched:              sched.LAS{},
		Placer:             place.NewPacked(true, 3),
		TrueProfile:        vprof.GenerateLonghorn(topo.Size(), 0x9A1),
		Lacross:            1.5,
		DisableFastForward: disableFF,
	}
}

func runSparse(b *testing.B, disableFF bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sparseConfig(disableFF))
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds == 0 {
			b.Fatal("empty run")
		}
	}
}

func BenchmarkSimSparseNaive(b *testing.B)       { runSparse(b, true) }
func BenchmarkSimSparseFastForward(b *testing.B) { runSparse(b, false) }

// BenchmarkSimSiaPhilly measures the dense end: a contended 160-job Sia
// trace, where fast-forward engages only in the drain phase and the
// speedup is correspondingly modest. Here as the honest counterpoint to
// the sparse numbers.
func BenchmarkSimSiaPhillyFastForward(b *testing.B) { runSia(b, false) }
func BenchmarkSimSiaPhillyNaive(b *testing.B)       { runSia(b, true) }

func runSia(b *testing.B, disableFF bool) {
	b.Helper()
	topo := clusterTopology(16)
	profile := vprof.GenerateLonghorn(topo.Size(), 0x9A1)
	tr := trace.SiaPhilly(trace.DefaultSiaPhillyParams(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Topology:           topo,
			Trace:              tr,
			Sched:              sched.FIFO{},
			Placer:             place.NewPacked(true, 7),
			TrueProfile:        profile,
			Lacross:            1.5,
			DisableFastForward: disableFF,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimFastForwardSpeedup runs the sparse configuration both ways
// back to back and reports the ratio, so a single -benchtime=1x
// invocation answers "what does fast-forward buy".
func BenchmarkSimFastForwardSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := sim.Run(sparseConfig(true)); err != nil {
			b.Fatal(err)
		}
		naive := time.Since(t0)
		t0 = time.Now()
		if _, err := sim.Run(sparseConfig(false)); err != nil {
			b.Fatal(err)
		}
		fast := time.Since(t0)
		b.ReportMetric(naive.Seconds()*1000, "naive-ms")
		b.ReportMetric(fast.Seconds()*1000, "fast-ms")
		b.ReportMetric(naive.Seconds()/fast.Seconds(), "speedup")
	}
}
