package sim

import "fmt"

// Counters is the engine's introspection layer: cheap integer counters
// populated by the round loop when Config.Counters is non-nil, exposing
// how the engine actually stepped — how many rounds each stepping
// regime covered, how often the incremental-ordering and
// placement-skip fast paths engaged, and how much work a snapshot
// resume avoided. They exist so performance claims about the fast
// paths can be explained from telemetry instead of asserted.
//
// Counters get the PlaceTimes/journal treatment: they are
// observation-only out-params living strictly OUTSIDE results, cache
// keys and byte-identity comparisons. Attaching a Counters must not
// change a single result byte (TestCountersDoNotPerturbSimulation pins
// this across all four stepping regimes) — but the counter values
// themselves differ across regimes *by design*: the naive reference
// loop materializes every round while the fast paths span over them,
// and that difference is exactly what the counters report.
//
// A Counters value is plain (non-atomic) state incremented by the
// engine's single goroutine: attach a distinct instance per run. The
// orchestration layer merges per-run instances with Add.
type Counters struct {
	// Rounds by stepping regime. Every round the engine simulates is
	// counted in exactly one of the four: materialized rounds ran the
	// full phase loop (admit, order, prefix, place, observe, advance);
	// idle-gap rounds were skipped because nothing was active; sparse
	// rounds were bulk-advanced with an empty waiting set (the sticky
	// fast-forward); dense rounds were bulk-advanced with waiters under
	// scheduler-provided attained-service ceilings.
	MaterializedRounds int64 `json:"materialized_rounds,omitempty"`
	IdleGapRounds      int64 `json:"idle_gap_rounds,omitempty"`
	SparseRounds       int64 `json:"sparse_rounds,omitempty"`
	DenseRounds        int64 `json:"dense_rounds,omitempty"`
	// Spans count the contiguous stretches the skipped rounds arrived
	// in (one observation each reaches the sinks).
	IdleGapSpans int64 `json:"idle_gap_spans,omitempty"`
	SparseSpans  int64 `json:"sparse_spans,omitempty"`
	DenseSpans   int64 `json:"dense_spans,omitempty"`

	// Incremental-ordering outcomes (TotalOrderScheduler fast path):
	// rebuilds re-sorted from scratch after a membership change,
	// revalidations verified the cached order in O(n), re-sorts
	// repaired it in place after priorities crossed. OrderFullCalls
	// counts reference-path Scheduler.Order invocations (naive loop or
	// a scheduler without the capability interface).
	OrderRebuilds    int64 `json:"order_rebuilds,omitempty"`
	OrderRevalidated int64 `json:"order_revalidated,omitempty"`
	OrderResorts     int64 `json:"order_resorts,omitempty"`
	OrderFullCalls   int64 `json:"order_full_calls,omitempty"`

	// Placement-phase engagement on materialized rounds: skipped counts
	// rounds the dirty-set gate proved a no-op, run counts rounds that
	// entered place(). PlaceCalls counts actual Placer.PlaceRound
	// invocations (a run round with nothing needing GPUs makes none);
	// JobsPlaced sums the jobs handed to them.
	PlacementsSkipped int64 `json:"placements_skipped,omitempty"`
	PlacementsRun     int64 `json:"placements_run,omitempty"`
	PlaceCalls        int64 `json:"place_calls,omitempty"`
	JobsPlaced        int64 `json:"jobs_placed,omitempty"`

	// Scheduling churn and allocator traffic: preemptions deschedule a
	// running job, migrations change a running job's allocation,
	// Alloc/Release count cluster.Allocate/Release calls.
	Preemptions  int64 `json:"preemptions,omitempty"`
	Migrations   int64 `json:"migrations,omitempty"`
	AllocCalls   int64 `json:"alloc_calls,omitempty"`
	ReleaseCalls int64 `json:"release_calls,omitempty"`

	// Snapshot traffic: captures freeze this engine at a horizon,
	// resumes reconstruct it from one, and ResumedRounds is the prefix
	// length a resume skipped simulating (the snapshot-fork savings).
	SnapshotsCaptured int64 `json:"snapshots_captured,omitempty"`
	SnapshotsResumed  int64 `json:"snapshots_resumed,omitempty"`
	ResumedRounds     int64 `json:"resumed_rounds,omitempty"`
}

// TotalRounds is the number of rounds this engine actually stepped —
// the four regime counts, which partition them. For a fresh run it
// equals Result.Rounds; for a resumed run it equals Result.Rounds minus
// ResumedRounds (the prefix the snapshot saved).
func (c *Counters) TotalRounds() int64 {
	return c.MaterializedRounds + c.IdleGapRounds + c.SparseRounds + c.DenseRounds
}

// BulkRounds is the rounds covered by the two bulk-advance regimes.
func (c *Counters) BulkRounds() int64 { return c.SparseRounds + c.DenseRounds }

// Add folds o into c field-wise (the merge the journal reader uses to
// aggregate per-task counters across a sweep). o may be nil.
func (c *Counters) Add(o *Counters) {
	if o == nil {
		return
	}
	c.MaterializedRounds += o.MaterializedRounds
	c.IdleGapRounds += o.IdleGapRounds
	c.SparseRounds += o.SparseRounds
	c.DenseRounds += o.DenseRounds
	c.IdleGapSpans += o.IdleGapSpans
	c.SparseSpans += o.SparseSpans
	c.DenseSpans += o.DenseSpans
	c.OrderRebuilds += o.OrderRebuilds
	c.OrderRevalidated += o.OrderRevalidated
	c.OrderResorts += o.OrderResorts
	c.OrderFullCalls += o.OrderFullCalls
	c.PlacementsSkipped += o.PlacementsSkipped
	c.PlacementsRun += o.PlacementsRun
	c.PlaceCalls += o.PlaceCalls
	c.JobsPlaced += o.JobsPlaced
	c.Preemptions += o.Preemptions
	c.Migrations += o.Migrations
	c.AllocCalls += o.AllocCalls
	c.ReleaseCalls += o.ReleaseCalls
	c.SnapshotsCaptured += o.SnapshotsCaptured
	c.SnapshotsResumed += o.SnapshotsResumed
	c.ResumedRounds += o.ResumedRounds
}

// Summary renders the human one-liner palsim and palsweep print: the
// regime mix, the placement-skip rate, churn, and snapshot savings.
func (c *Counters) Summary() string {
	total := c.TotalRounds()
	if total == 0 {
		return "engine: 0 rounds"
	}
	pct := func(n int64) float64 { return 100 * float64(n) / float64(total) }
	s := fmt.Sprintf("engine: %d rounds (%.1f%% materialized, %.1f%% idle-gap, %.1f%% sparse-ff, %.1f%% dense-bulk)",
		total, pct(c.MaterializedRounds), pct(c.IdleGapRounds), pct(c.SparseRounds), pct(c.DenseRounds))
	if gated := c.PlacementsRun + c.PlacementsSkipped; gated > 0 {
		s += fmt.Sprintf("; placement skipped %.0f%%", 100*float64(c.PlacementsSkipped)/float64(gated))
	}
	if c.Preemptions > 0 || c.Migrations > 0 {
		s += fmt.Sprintf("; %d preemptions, %d migrations", c.Preemptions, c.Migrations)
	}
	if c.SnapshotsResumed > 0 {
		s += fmt.Sprintf("; %d snapshot resumes saved %d rounds", c.SnapshotsResumed, c.ResumedRounds)
	}
	return s
}
