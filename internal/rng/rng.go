// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the reproduction.
//
// All simulations, trace generators and profile generators in this
// repository must be bit-reproducible across runs and platforms, so we
// implement our own generator (SplitMix64) rather than depending on the
// unspecified evolution of math/rand. SplitMix64 passes BigCrush, is
// trivially seedable, and supports cheap independent sub-streams, which we
// use to give every trace / profile / policy its own stream derived from a
// single experiment seed.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator (SplitMix64).
// The zero value is a valid generator seeded with 0. RNG is not safe for
// concurrent use; derive per-goroutine generators with Split.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new generator whose stream is a deterministic function of
// the receiver's seed and the given label, without disturbing the
// receiver's own stream position. It is used to give independent,
// reproducible sub-streams to sub-components (e.g. one stream per class in
// a variability profile).
func (r *RNG) Split(label uint64) *RNG {
	// Mix the label into a copy of the current state through two rounds of
	// the SplitMix64 finalizer so that adjacent labels yield uncorrelated
	// streams.
	z := r.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// State returns the generator's current stream position. Together with
// Restore it lets engine snapshots round-trip a generator exactly: a
// generator restored from a captured state produces the same sequence
// the original would have from that point on.
func (r *RNG) State() uint64 { return r.state }

// Restore rewinds (or advances) the generator to a stream position
// previously captured with State.
func (r *RNG) Restore(state uint64) { r.state = state }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1), using
// the Box–Muller transform. Deterministic given the stream position.
func (r *RNG) NormFloat64() float64 {
	// Draw until u1 is nonzero so the log is finite.
	var u1 float64
	for {
		u1 = r.Float64()
		if u1 > 0 {
			break
		}
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a lognormal variate with the given parameters of the
// underlying normal distribution (mu, sigma).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exp returns an exponential variate with the given rate (events per unit
// time). The mean of the returned value is 1/rate.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with rate <= 0")
	}
	var u float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	return -math.Log(u) / rate
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// method for small means and a normal approximation above 64 (accurate to
// well under the noise of any experiment here).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Shuffle pseudo-randomly permutes the first n elements using the provided
// swap function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Choice returns a pseudo-random index into weights, chosen with
// probability proportional to the weight. It panics if all weights are
// non-positive.
func (r *RNG) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Choice with no positive weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("rng: unreachable")
}
