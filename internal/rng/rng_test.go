package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	s1again := New(7).Split(1)
	// Same label from same parent state reproduces the stream.
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s1again.Uint64() {
			t.Fatalf("Split(1) not reproducible at step %d", i)
		}
	}
	// Different labels give different streams.
	a, b := New(7).Split(1), New(7).Split(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("Split(1) and Split(2) start identically")
	}
	_ = s2
}

func TestSplitDoesNotDisturbParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	check := func(seed uint64) bool {
		v := New(seed).Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	check := func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := New(seed).Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const buckets, n = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Errorf("bucket %d count %d far from uniform %d", b, c, n/buckets)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(17)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(math.Log(900), 1.2)
	}
	// Median of lognormal(mu, sigma) is exp(mu).
	med := quickMedian(vals)
	if med < 850 || med > 950 {
		t.Errorf("lognormal median = %v, want ~900", med)
	}
}

func quickMedian(vals []float64) float64 {
	// Selection via partial sort: fine for tests.
	cp := append([]float64(nil), vals...)
	for i := 0; i <= len(cp)/2; i++ {
		minIdx := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[minIdx] {
				minIdx = j
			}
		}
		cp[i], cp[minIdx] = cp[minIdx], cp[i]
	}
	return cp[len(cp)/2]
}

func TestExpMean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	r := New(23)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	if v := New(1).Poisson(0); v != 0 {
		t.Errorf("Poisson(0) = %d, want 0", v)
	}
	if v := New(1).Poisson(-3); v != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		p := New(seed).Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(31)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Errorf("shuffle changed elements: %v", xs)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(37)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanicsWithoutPositiveWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice with all-zero weights did not panic")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	if v := r.Float64(); v < 0 || v >= 1 {
		t.Errorf("zero-value RNG Float64 = %v", v)
	}
}
