package place

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

func mkCluster() *cluster.Cluster {
	return cluster.New(cluster.Topology{NumNodes: 4, GPUsPerNode: 4})
}

func mkJob(id, demand int) *sim.Job {
	return &sim.Job{Spec: trace.JobSpec{ID: id, Demand: demand, Work: 100}, Remaining: 100}
}

func TestPackJobSingleNode(t *testing.T) {
	c := mkCluster()
	alloc := PackJob(c, 4, nil)
	if len(alloc) != 4 {
		t.Fatalf("alloc = %v", alloc)
	}
	if c.NodesSpanned(alloc) != 1 {
		t.Errorf("4-GPU job should fit one node, spanned %d", c.NodesSpanned(alloc))
	}
}

func TestPackJobBestFit(t *testing.T) {
	c := mkCluster()
	// Node 0 has 1 free, node 1 has 2 free, others full (allocate the rest).
	c.Allocate(1, []cluster.GPUID{0, 1, 2})
	c.Allocate(2, []cluster.GPUID{4, 5})
	c.Allocate(3, []cluster.GPUID{8, 9, 10, 11, 12, 13, 14, 15})
	// A 2-GPU job must pick node 1 (exactly 2 free), not split.
	alloc := PackJob(c, 2, nil)
	if len(alloc) != 2 || c.NodesSpanned(alloc) != 1 {
		t.Fatalf("alloc = %v", alloc)
	}
	for _, g := range alloc {
		if c.NodeOf(g) != 1 {
			t.Errorf("best fit picked node %d, want 1", c.NodeOf(g))
		}
	}
	// A 1-GPU job must pick the tighter node 0.
	alloc1 := PackJob(c, 1, nil)
	if c.NodeOf(alloc1[0]) != 0 {
		t.Errorf("1-GPU best fit picked node %d, want 0", c.NodeOf(alloc1[0]))
	}
}

func TestPackJobSpillMinimizesNodes(t *testing.T) {
	c := mkCluster()
	// 6-GPU job on 4-GPU nodes must span exactly 2 nodes.
	alloc := PackJob(c, 6, nil)
	if len(alloc) != 6 {
		t.Fatalf("alloc size %d", len(alloc))
	}
	if got := c.NodesSpanned(alloc); got != 2 {
		t.Errorf("spanned %d nodes, want 2", got)
	}
}

func TestPackJobSpillPrefersFullestNodes(t *testing.T) {
	c := mkCluster()
	c.Allocate(1, []cluster.GPUID{0, 1, 2}) // node 0: 1 free
	// 5-GPU job: best packing is 4 (node with 4 free) + 1.
	alloc := PackJob(c, 5, nil)
	if got := c.NodesSpanned(alloc); got != 2 {
		t.Errorf("spanned %d nodes, want 2", got)
	}
}

func TestPackedPlaceRound(t *testing.T) {
	c := mkCluster()
	p := NewPacked(true, 1)
	jobs := []*sim.Job{mkJob(0, 4), mkJob(1, 2), mkJob(2, 2)}
	out := p.PlaceRound(c, jobs, 0)
	if len(out) != 3 {
		t.Fatalf("placed %d jobs", len(out))
	}
	seen := map[cluster.GPUID]bool{}
	for id, alloc := range out {
		if len(alloc) != jobs[id].Spec.Demand {
			t.Errorf("job %d got %d GPUs", id, len(alloc))
		}
		for _, g := range alloc {
			if seen[g] {
				t.Fatalf("GPU %d double-assigned", g)
			}
			seen[g] = true
		}
	}
	// The placer must leave the cluster fully free for the engine.
	if c.NumFree() != 16 {
		t.Errorf("placer leaked reservations: %d free", c.NumFree())
	}
}

func TestPackedNames(t *testing.T) {
	if NewPacked(true, 1).Name() != "tiresias(packed-sticky)" {
		t.Error("sticky name")
	}
	if NewPacked(false, 1).Name() != "gandiva(packed-non-sticky)" {
		t.Error("non-sticky name")
	}
	if !NewPacked(true, 1).Sticky() || NewPacked(false, 1).Sticky() {
		t.Error("stickiness flags")
	}
}

func TestPackedRandomizedTieBreak(t *testing.T) {
	// With an RNG, repeated placements on an empty cluster should not
	// always pick the same node (all nodes tie at 4 free).
	r := rng.New(99)
	nodes := map[cluster.NodeID]bool{}
	for i := 0; i < 30; i++ {
		c := mkCluster()
		alloc := PackJob(c, 2, r)
		nodes[c.NodeOf(alloc[0])] = true
	}
	if len(nodes) < 2 {
		t.Errorf("randomized tie-break always picked the same node")
	}
}

func TestRandomPlaceRound(t *testing.T) {
	c := mkCluster()
	p := NewRandom(false, 7)
	jobs := []*sim.Job{mkJob(0, 3), mkJob(1, 5)}
	out := p.PlaceRound(c, jobs, 0)
	seen := map[cluster.GPUID]bool{}
	for id, alloc := range out {
		if len(alloc) != jobs[id].Spec.Demand {
			t.Errorf("job %d got %d GPUs", id, len(alloc))
		}
		for _, g := range alloc {
			if seen[g] {
				t.Fatalf("GPU %d double-assigned", g)
			}
			seen[g] = true
		}
	}
}

func TestRandomDeterministicWithSeed(t *testing.T) {
	jobs := []*sim.Job{mkJob(0, 4)}
	a := NewRandom(true, 5).PlaceRound(mkCluster(), jobs, 0)
	b := NewRandom(true, 5).PlaceRound(mkCluster(), jobs, 0)
	for i := range a[0] {
		if a[0][i] != b[0][i] {
			t.Fatal("same seed, different placement")
		}
	}
}

func TestRandomSpreadsAcrossCluster(t *testing.T) {
	// Over many draws a random placer must touch most GPUs.
	p := NewRandom(false, 11)
	touched := map[cluster.GPUID]bool{}
	for i := 0; i < 50; i++ {
		c := mkCluster()
		out := p.PlaceRound(c, []*sim.Job{mkJob(0, 2)}, 0)
		for _, g := range out[0] {
			touched[g] = true
		}
	}
	if len(touched) < 12 {
		t.Errorf("random placement touched only %d GPUs", len(touched))
	}
}

func TestRandomNames(t *testing.T) {
	if NewRandom(true, 1).Name() != "random-sticky" {
		t.Error("sticky name")
	}
	if NewRandom(false, 1).Name() != "random-non-sticky" {
		t.Error("non-sticky name")
	}
}

// TestPackJobDemandSatisfiedProperty: whatever the free-state, PackJob
// must return exactly demand GPUs, all free and distinct, whenever enough
// are free.
func TestPackJobDemandSatisfiedProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		c := mkCluster()
		// Randomly occupy some GPUs.
		for g := 0; g < 16; g++ {
			if r.Float64() < 0.4 {
				c.Allocate(100+g, []cluster.GPUID{cluster.GPUID(g)})
			}
		}
		free := c.NumFree()
		if free == 0 {
			return true
		}
		demand := 1 + r.Intn(free)
		alloc := PackJob(c, demand, r)
		if len(alloc) != demand {
			return false
		}
		seen := map[cluster.GPUID]bool{}
		for _, g := range alloc {
			if seen[g] || !c.IsFree(g) {
				return false
			}
			seen[g] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPackJobMinimalSpanProperty: the number of nodes spanned must equal
// the information-theoretic minimum given per-node free counts.
func TestPackJobMinimalSpanProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		c := mkCluster()
		for g := 0; g < 16; g++ {
			if r.Float64() < 0.3 {
				c.Allocate(100+g, []cluster.GPUID{cluster.GPUID(g)})
			}
		}
		if c.NumFree() == 0 {
			return true
		}
		demand := 1 + r.Intn(c.NumFree())
		alloc := PackJob(c, demand, r)
		// Minimum span: greedily take nodes by descending free count.
		frees := make([]int, c.NumNodes())
		for n := range frees {
			frees[n] = c.FreeOnNode(cluster.NodeID(n))
		}
		// Selection sort descending (4 nodes).
		for i := 0; i < len(frees); i++ {
			for j := i + 1; j < len(frees); j++ {
				if frees[j] > frees[i] {
					frees[i], frees[j] = frees[j], frees[i]
				}
			}
		}
		minSpan, left := 0, demand
		for _, f := range frees {
			if left <= 0 {
				break
			}
			if f > 0 {
				minSpan++
				left -= f
			}
		}
		return c.NodesSpanned(alloc) == minSpan
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPackJob(b *testing.B) {
	c := cluster.New(cluster.Topology{NumNodes: 64, GPUsPerNode: 4})
	r := rng.New(1)
	// Fragment the cluster realistically.
	for g := 0; g < 256; g++ {
		if r.Float64() < 0.5 {
			c.Allocate(1000+g, []cluster.GPUID{cluster.GPUID(g)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc := PackJob(c, 4, r)
		if len(alloc) != 4 {
			b.Fatal("pack failed")
		}
	}
}

func BenchmarkRandomPlaceRound(b *testing.B) {
	c := cluster.New(cluster.Topology{NumNodes: 64, GPUsPerNode: 4})
	p := NewRandom(false, 1)
	jobs := []*sim.Job{mkJob(0, 4), mkJob(1, 8), mkJob(2, 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PlaceRound(c, jobs, 0)
	}
}
