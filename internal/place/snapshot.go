package place

// Snapshot state for the rng-bearing placers (sim.SnapshotState). The
// only mutable cross-round state either policy holds is its tie-breaking
// generator's stream position, so the state is just that cursor
// (rng.RNG.State/Restore); a restored placer re-rolls exactly the draws
// the straight-through run would have. The stickiness flag is part of
// the policy's identity (its registry name), not its state.

import (
	"encoding/json"
	"fmt"
)

// placerState is the JSON shape of an rng-bearing placer's state.
type placerState struct {
	RNG uint64 `json:"rng"`
}

// MarshalSnapshotState implements sim.SnapshotState.
func (p *Packed) MarshalSnapshotState() ([]byte, error) {
	return json.Marshal(placerState{RNG: p.rng.State()})
}

// UnmarshalSnapshotState implements sim.SnapshotState.
func (p *Packed) UnmarshalSnapshotState(data []byte) error {
	var st placerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("place: decode packed snapshot state: %w", err)
	}
	p.rng.Restore(st.RNG)
	return nil
}

// MarshalSnapshotState implements sim.SnapshotState.
func (r *Random) MarshalSnapshotState() ([]byte, error) {
	return json.Marshal(placerState{RNG: r.rng.State()})
}

// UnmarshalSnapshotState implements sim.SnapshotState.
func (r *Random) UnmarshalSnapshotState(data []byte) error {
	var st placerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("place: decode random snapshot state: %w", err)
	}
	r.rng.Restore(st.RNG)
	return nil
}
