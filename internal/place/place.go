// Package place implements the baseline placement policies the paper
// compares against (§IV-A1):
//
//   - Packed ("soft-consolidated"): minimize the number of nodes a job
//     spans to reduce inter-node communication. Packed-Sticky is what
//     Tiresias deploys, Packed-Non-Sticky is what Gandiva deploys, so the
//     experiment tables label those configurations "Tiresias" and
//     "Gandiva".
//   - Random ("scattered"): sample a uniform random subset of the free
//     GPUs (used by e.g. Amaral et al. and HotGauge to spread thermal
//     load), in Sticky and Non-Sticky flavors.
//
// All baselines are variability-agnostic: they assume iso-architecture
// GPUs deliver identical performance. Which concrete GPU a packed policy
// hands out among equally-packed choices is therefore arbitrary in a real
// system; we model that arbitrariness with a seeded RNG (ties between
// equally-full nodes and GPU picks within a node are randomized). That is
// what makes Gandiva's non-sticky re-placement re-roll GPU quality every
// round — the effect §V-B measures when comparing Sticky vs Non-Sticky.
package place

import (
	"slices"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Packed is the soft-consolidation placement policy. For each job it
// prefers the tightest single node that fits (best fit); jobs larger than
// any node's free capacity take the fullest-free nodes first, minimizing
// the number of nodes spanned.
type Packed struct {
	sticky  bool
	rng     *rng.RNG
	scratch packScratch
}

// NewPacked returns a Packed placer with the given stickiness.
// NewPacked(true, seed) is the paper's "Tiresias" configuration,
// NewPacked(false, seed) its "Gandiva" configuration.
func NewPacked(sticky bool, seed uint64) *Packed {
	return &Packed{sticky: sticky, rng: rng.New(seed)}
}

// Name implements sim.Placer.
func (p *Packed) Name() string {
	if p.sticky {
		return "tiresias(packed-sticky)"
	}
	return "gandiva(packed-non-sticky)"
}

// Sticky implements sim.Placer.
func (p *Packed) Sticky() bool { return p.sticky }

// PlaceRound implements sim.Placer.
func (p *Packed) PlaceRound(c *cluster.Cluster, need []*sim.Job, _ float64) map[int][]cluster.GPUID {
	out := make(map[int][]cluster.GPUID, len(need))
	for _, j := range need {
		alloc := p.scratch.packJob(c, j.Spec.Demand, p.rng)
		c.Allocate(j.Spec.ID, alloc)
		out[j.Spec.ID] = alloc
	}
	// The engine performs the real allocation from the returned map;
	// release our in-flight reservations so it sees the GPUs as free.
	for _, alloc := range out {
		c.Release(alloc)
	}
	return out
}

// nodeFree pairs a node with its free-GPU count for the packing walks.
type nodeFree struct {
	node cluster.NodeID
	free int
}

// packScratch holds the reusable buffers the packing walk scans into, so
// a placer's steady-state rounds allocate only the returned allocation
// slices (which the engine retains — those must stay fresh).
type packScratch struct {
	nodes []nodeFree
	tied  []cluster.NodeID
	free  []cluster.GPUID
}

// PackJob computes a packed allocation of demand GPUs from the cluster's
// current free state, querying only the read-only occupancy view (the
// per-node free counts are O(1) index lookups). r breaks ties between
// equally-attractive nodes and picks which free GPUs of the chosen node
// to use; pass nil for fully deterministic (lowest-ID) behavior.
func PackJob(c cluster.View, demand int, r *rng.RNG) []cluster.GPUID {
	var s packScratch
	return s.packJob(c, demand, r)
}

// packJob is PackJob over reusable scratch buffers.
func (s *packScratch) packJob(c cluster.View, demand int, r *rng.RNG) []cluster.GPUID {
	nodes := s.nodes[:0]
	for n := 0; n < c.NumNodes(); n++ {
		if f := c.FreeOnNode(cluster.NodeID(n)); f > 0 {
			nodes = append(nodes, nodeFree{node: cluster.NodeID(n), free: f})
		}
	}
	s.nodes = nodes

	if demand <= c.GPUsPerNode() {
		// Best fit: the smallest sufficient free count; collect all nodes
		// tied at that count and let the RNG pick one.
		bestFree := -1
		tied := s.tied[:0]
		for _, nf := range nodes {
			if nf.free < demand {
				continue
			}
			switch {
			case bestFree == -1 || nf.free < bestFree:
				bestFree = nf.free
				tied = tied[:0]
				tied = append(tied, nf.node)
			case nf.free == bestFree:
				tied = append(tied, nf.node)
			}
		}
		s.tied = tied
		if len(tied) > 0 {
			pick := tied[0]
			if r != nil && len(tied) > 1 {
				pick = tied[r.Intn(len(tied))]
			}
			return s.appendFromNode(make([]cluster.GPUID, 0, demand), c, pick, demand, r)
		}
	}

	// Spill across nodes: fullest-free nodes first to minimize the span;
	// ties between equally-full nodes are randomized (the shuffle before
	// the stable sort).
	if r != nil {
		r.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	}
	slices.SortStableFunc(nodes, func(a, b nodeFree) int { return b.free - a.free })
	alloc := make([]cluster.GPUID, 0, demand)
	for _, nf := range nodes {
		if len(alloc) == demand {
			break
		}
		take := demand - len(alloc)
		if take > nf.free {
			take = nf.free
		}
		alloc = s.appendFromNode(alloc, c, nf.node, take, r)
	}
	return alloc
}

// appendFromNode appends up to n free GPUs on the node to dst: a random
// subset when r is non-nil, else the lowest IDs.
func (s *packScratch) appendFromNode(dst []cluster.GPUID, c cluster.View, node cluster.NodeID, n int, r *rng.RNG) []cluster.GPUID {
	free := s.free[:0]
	for _, g := range c.GPUsOnNode(node) {
		if c.IsFree(g) {
			free = append(free, g)
		}
	}
	s.free = free
	if r != nil {
		r.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	}
	if n > len(free) {
		n = len(free)
	}
	return append(dst, free[:n]...)
}

// Random is the scattered placement policy: each job receives a uniform
// random subset of the free GPUs.
type Random struct {
	sticky bool
	rng    *rng.RNG
}

// NewRandom returns a Random placer seeded deterministically.
func NewRandom(sticky bool, seed uint64) *Random {
	return &Random{sticky: sticky, rng: rng.New(seed)}
}

// Name implements sim.Placer.
func (r *Random) Name() string {
	if r.sticky {
		return "random-sticky"
	}
	return "random-non-sticky"
}

// Sticky implements sim.Placer.
func (r *Random) Sticky() bool { return r.sticky }

// PlaceRound implements sim.Placer.
func (r *Random) PlaceRound(c *cluster.Cluster, need []*sim.Job, _ float64) map[int][]cluster.GPUID {
	out := make(map[int][]cluster.GPUID, len(need))
	free := c.FreeGPUs()
	r.rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	idx := 0
	for _, j := range need {
		alloc := append([]cluster.GPUID(nil), free[idx:idx+j.Spec.Demand]...)
		idx += j.Spec.Demand
		out[j.Spec.ID] = alloc
	}
	return out
}

var (
	_ sim.Placer = (*Packed)(nil)
	_ sim.Placer = (*Random)(nil)
)
