package place

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
	"repro/internal/vprof"
)

// Placement-policy registry. Placers, unlike schedulers, need
// construction-time context — a profiled PM-score view, locality
// penalties, an RNG seed — so builders receive a BuildEnv carrying
// everything any of the registered policies can need; each builder
// takes what applies to it. The four baselines register here; PM-First
// and PAL register from internal/core's init (core imports place, so
// the registration arrow points the same way as the type dependency).
// The experiments layer, the scenario layer and user extensions (e.g.
// examples/custompolicy) all construct placers through Build, which is
// what makes a policy named in a JSON scenario spec and a policy wired
// into a figure runner the same object.

// BuildEnv carries the construction context for a placement policy.
type BuildEnv struct {
	// Scores is the profiled (possibly stale) PM-score view that
	// variability-aware policies consult. Variability-agnostic baselines
	// ignore it; pm-first/pal fail without it.
	Scores vprof.BinnedScorer
	// Lacross is the inter-node locality penalty PAL's L×V matrix uses.
	Lacross float64
	// ModelLacross optionally overrides Lacross per model name.
	ModelLacross map[string]float64
	// Lrack, when positive, enables the three-level rack extension on
	// policies that support it.
	Lrack float64
	// Seed feeds policies that randomize (the Random and Packed
	// baselines' tie-breaking).
	Seed uint64
}

// Builder constructs a placement policy from its environment.
type Builder func(env BuildEnv) (sim.Placer, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
	aliases    = map[string]string{}
)

// Register adds a placer builder under the given canonical name,
// panicking on duplicates (registration is init-time; collisions are
// programming errors).
func Register(name string, build Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("place: duplicate registration of %q", name))
	}
	registry[name] = build
}

// RegisterAlias makes alias resolve to the canonical name in Build.
// The experiment tables label Packed-Sticky "tiresias" and
// Packed-Non-Sticky "gandiva" after the systems that deploy them; the
// aliases keep both vocabularies addressable.
func RegisterAlias(alias, canonical string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := aliases[alias]; dup {
		panic(fmt.Sprintf("place: duplicate alias %q", alias))
	}
	aliases[alias] = canonical
}

// Build constructs the named placement policy (canonical name or
// alias).
func Build(name string, env BuildEnv) (sim.Placer, error) {
	registryMu.RLock()
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	build, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("place: unknown placement policy %q (have %v)", name, Names())
	}
	return build(env)
}

// Names returns the canonical registered policy names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("random-sticky", func(env BuildEnv) (sim.Placer, error) {
		return NewRandom(true, env.Seed), nil
	})
	Register("random-non-sticky", func(env BuildEnv) (sim.Placer, error) {
		return NewRandom(false, env.Seed), nil
	})
	Register("packed-sticky", func(env BuildEnv) (sim.Placer, error) {
		return NewPacked(true, env.Seed), nil
	})
	Register("packed-non-sticky", func(env BuildEnv) (sim.Placer, error) {
		return NewPacked(false, env.Seed), nil
	})
	RegisterAlias("random", "random-non-sticky")
	RegisterAlias("tiresias", "packed-sticky")
	RegisterAlias("packed", "packed-sticky")
	RegisterAlias("gandiva", "packed-non-sticky")
}
