package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// GridSpec is the optional cross-product block of a scenario spec: each
// populated axis lists explicit values for one spec field, and the spec
// expands into one cell per element of the cross product. Expansion is
// deterministic and part of the contract: axes vary in the order they
// are declared below (struct order, the same order Canonical serializes
// them), values stay in listed order, and the cross product is
// enumerated row-major with the last populated axis varying fastest —
// so every process that parses the same grid enumerates the same cells
// in the same order, which is what lets sharded sweeps partition a grid
// by content hash without coordination.
//
// A grid-bearing spec is a generator, not a runnable configuration: its
// base fields stay un-normalized (defaults are applied per cell, after
// the axis overrides, so cross-field defaults like the synthetic
// workload seed following the root seed are computed from each cell's
// values), Build rejects it, and ExpandGrid turns it into ordinary
// per-cell specs that canonicalize, validate and cache-key exactly like
// hand-written ones.
type GridSpec struct {
	// Seeds varies the root determinism seed (Spec.Seed).
	Seeds []uint64 `json:"seeds,omitempty"`
	// Nodes varies the cluster's node count (Cluster.Nodes).
	Nodes []int `json:"nodes,omitempty"`
	// GPUsPerNode varies the per-node GPU count (Cluster.GPUsPerNode).
	GPUsPerNode []int `json:"gpus_per_node,omitempty"`
	// Policies varies the placement policy by registered name
	// (Policy.Name).
	Policies []string `json:"policies,omitempty"`
	// Scheds varies the scheduling policy by registered name
	// (Sched.Name).
	Scheds []string `json:"scheds,omitempty"`
	// JobsPerHour varies the mean arrival rate (Workload.JobsPerHour;
	// synergy and synthetic sources).
	JobsPerHour []float64 `json:"jobs_per_hour,omitempty"`
	// NumJobs varies the trace length (Workload.NumJobs).
	NumJobs []int `json:"num_jobs,omitempty"`
	// Arrivals varies the synthetic arrival process (Workload.Arrivals).
	Arrivals []string `json:"arrivals,omitempty"`
}

// axisValue is one concrete value of one grid axis: a canonical label
// (used in cell names, duplicate detection and error messages) plus the
// override it applies to a cell.
type axisValue struct {
	label string
	apply func(*Spec)
}

// gridAxis is one populated axis of a grid: the JSON field name for
// error messages, the short tag used in expanded cell names, and the
// values in listed order.
type gridAxis struct {
	field  string
	tag    string
	values []axisValue
}

// axes returns the grid's populated axes in canonical expansion order
// (struct order). An axis given as an explicit empty list is returned
// with zero values so validation can reject it — a spec author writing
// "policies": [] almost certainly meant to list something.
func (g *GridSpec) axes() []gridAxis {
	var axes []gridAxis
	add := func(field, tag string, n int, value func(i int) axisValue) {
		vals := make([]axisValue, n)
		for i := range vals {
			vals[i] = value(i)
		}
		axes = append(axes, gridAxis{field: field, tag: tag, values: vals})
	}
	if g.Seeds != nil {
		add("seeds", "seed", len(g.Seeds), func(i int) axisValue {
			v := g.Seeds[i]
			return axisValue{strconv.FormatUint(v, 10), func(s *Spec) { s.Seed = v }}
		})
	}
	if g.Nodes != nil {
		add("nodes", "nodes", len(g.Nodes), func(i int) axisValue {
			v := g.Nodes[i]
			return axisValue{strconv.Itoa(v), func(s *Spec) { s.Cluster.Nodes = v }}
		})
	}
	if g.GPUsPerNode != nil {
		add("gpus_per_node", "gpus", len(g.GPUsPerNode), func(i int) axisValue {
			v := g.GPUsPerNode[i]
			return axisValue{strconv.Itoa(v), func(s *Spec) { s.Cluster.GPUsPerNode = v }}
		})
	}
	if g.Policies != nil {
		add("policies", "policy", len(g.Policies), func(i int) axisValue {
			v := g.Policies[i]
			return axisValue{v, func(s *Spec) { s.Policy.Name = v }}
		})
	}
	if g.Scheds != nil {
		add("scheds", "sched", len(g.Scheds), func(i int) axisValue {
			v := g.Scheds[i]
			return axisValue{v, func(s *Spec) { s.Sched.Name = v }}
		})
	}
	if g.JobsPerHour != nil {
		add("jobs_per_hour", "jph", len(g.JobsPerHour), func(i int) axisValue {
			v := g.JobsPerHour[i]
			return axisValue{strconv.FormatFloat(v, 'g', -1, 64), func(s *Spec) { s.Workload.JobsPerHour = v }}
		})
	}
	if g.NumJobs != nil {
		add("num_jobs", "jobs", len(g.NumJobs), func(i int) axisValue {
			v := g.NumJobs[i]
			return axisValue{strconv.Itoa(v), func(s *Spec) { s.Workload.NumJobs = v }}
		})
	}
	if g.Arrivals != nil {
		add("arrivals", "arrivals", len(g.Arrivals), func(i int) axisValue {
			v := g.Arrivals[i]
			return axisValue{v, func(s *Spec) { s.Workload.Arrivals = v }}
		})
	}
	return axes
}

// validate checks the axis lists themselves. Zero-ish values (seed 0,
// empty strings, non-positive counts and rates) are rejected even
// though normalize would replace them with defaults: an axis value that
// means "the default" can silently alias the cell produced by listing
// the default explicitly, the same bug class the duplicate checks
// catch.
func (g *GridSpec) validate(name string) error {
	for _, v := range g.Seeds {
		if v == 0 {
			return fmt.Errorf("scenario %s: grid seeds value 0, want >= 1 (0 selects the default seed and can alias another cell)", name)
		}
	}
	for _, v := range g.Nodes {
		if v <= 0 {
			return fmt.Errorf("scenario %s: grid nodes value %d, want >= 1", name, v)
		}
	}
	for _, v := range g.GPUsPerNode {
		if v <= 0 {
			return fmt.Errorf("scenario %s: grid gpus_per_node value %d, want >= 1", name, v)
		}
	}
	for _, v := range g.Policies {
		if v == "" {
			return fmt.Errorf("scenario %s: grid policies value \"\", want a registered placement-policy name", name)
		}
	}
	for _, v := range g.Scheds {
		if v == "" {
			return fmt.Errorf("scenario %s: grid scheds value \"\", want a registered scheduling-policy name", name)
		}
	}
	for _, v := range g.JobsPerHour {
		if v <= 0 {
			return fmt.Errorf("scenario %s: grid jobs_per_hour value %g, want > 0", name, v)
		}
	}
	for _, v := range g.NumJobs {
		if v <= 0 {
			return fmt.Errorf("scenario %s: grid num_jobs value %d, want >= 1", name, v)
		}
	}
	for _, v := range g.Arrivals {
		if v == "" {
			return fmt.Errorf("scenario %s: grid arrivals value \"\", want poisson, bursty or diurnal", name)
		}
	}
	axes := g.axes()
	if len(axes) == 0 {
		return fmt.Errorf("scenario %s: grid block has no axes (want at least one of seeds, nodes, gpus_per_node, policies, scheds, jobs_per_hour, num_jobs, arrivals — or drop the block)", name)
	}
	for _, ax := range axes {
		if len(ax.values) == 0 {
			return fmt.Errorf("scenario %s: grid axis %s is empty (want >= 1 value, or omit the axis)", name, ax.field)
		}
		seen := make(map[string]bool, len(ax.values))
		for _, v := range ax.values {
			if seen[v.label] {
				return fmt.Errorf("scenario %s: grid axis %s repeats value %s (values must be distinct)", name, ax.field, v.label)
			}
			seen[v.label] = true
		}
	}
	return nil
}

// validateGrid checks a grid-bearing spec by validating the axis lists
// and then dry-running the expansion, which normalizes and validates
// every cell (cheap: no trace or profile is built). The base spec's
// scalar fields are deliberately not checked directly — a grid base
// stays un-normalized, so zero-valued fields meaning "default" are
// expected there and only the expanded cells must be valid.
func (s *Spec) validateGrid() error {
	_, err := s.ExpandGrid()
	return err
}

// ExpandGrid expands the spec's grid block into its cells: one
// ordinary, fully normalized and validated per-cell Spec per element of
// the cross product, in the deterministic order documented on GridSpec.
// A spec without a grid block is its own single cell. Cell names append
// "@tag=value,..." to the base name (one tag per populated axis), so
// every cell is addressable in tables and archive file names.
func (s *Spec) ExpandGrid() ([]*Spec, error) {
	if s.Grid == nil {
		return []*Spec{s}, nil
	}
	if err := s.Grid.validate(s.Name); err != nil {
		return nil, err
	}
	return s.expandCells(s.Grid.axes())
}

// expandCells enumerates the cross product of the given axes over the
// base spec. Each cell is a deep copy of the un-normalized base with
// the axis overrides applied, then normalized and validated — so
// cross-field defaults are computed from the cell's own values. Two
// cells that normalize to the same configuration (identical canonical
// bytes once the name is set aside) would silently share one cache key,
// so expansion rejects the collision instead.
func (s *Spec) expandCells(axes []gridAxis) ([]*Spec, error) {
	total := 1
	for _, ax := range axes {
		total *= len(ax.values)
	}
	cells := make([]*Spec, 0, total)
	seen := make(map[string]string, total) // canonical bytes (name neutralized) -> cell name
	idx := make([]int, len(axes))
	for {
		cell := s.clone()
		cell.Grid = nil
		tags := make([]string, len(axes))
		for ai, ax := range axes {
			v := ax.values[idx[ai]]
			v.apply(cell)
			tags[ai] = ax.tag + "=" + v.label
		}
		cell.Name = s.Name + "@" + strings.Join(tags, ",")
		cell.normalize()
		if err := cell.Validate(); err != nil {
			return nil, fmt.Errorf("grid cell %d of %d: %w", len(cells)+1, total, err)
		}
		probe := *cell
		probe.Name = s.Name
		canon, err := probe.Canonical()
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[string(canon)]; dup {
			return nil, fmt.Errorf("scenario %s: grid cells %s and %s normalize to the same configuration (they would share one cache key; make the axis values distinct after defaulting)",
				s.Name, prev, cell.Name)
		}
		seen[string(canon)] = cell.Name
		cells = append(cells, cell)
		// Odometer increment, last axis fastest.
		ai := len(axes) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(axes[ai].values) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			return cells, nil
		}
	}
}

// clone returns a deep copy of the spec: expanded cells must not share
// mutable slices or maps with the base or with each other, since each
// cell is normalized (and possibly further mutated by callers)
// independently.
func (s *Spec) clone() *Spec {
	c := *s
	if s.Sched.Params != nil {
		c.Sched.Params = make(map[string]float64, len(s.Sched.Params))
		for k, v := range s.Sched.Params {
			c.Sched.Params[k] = v
		}
	}
	c.Workload.Demands = append([]int(nil), s.Workload.Demands...)
	c.Workload.DemandWeights = append([]float64(nil), s.Workload.DemandWeights...)
	c.Metrics.Series = append([]string(nil), s.Metrics.Series...)
	c.Decisions.Record = append([]string(nil), s.Decisions.Record...)
	if s.Fork != nil {
		f := *s.Fork
		c.Fork = &f
	}
	return &c
}
