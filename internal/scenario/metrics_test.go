package scenario

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// runWithMetrics parses the spec source and runs it, with the metrics
// block force-enabled when asked (via the same mutate-and-renormalize
// path the CLIs use).
func runWithMetrics(t *testing.T, src string, enable bool) *sim.Result {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if enable {
		s.Metrics.Enabled = true
		s.Normalize()
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMetricsDoNotPerturbSimulation is the collector's determinism
// guarantee at the scenario level: attaching metrics must not change a
// single simulation outcome. Every stream below the runner derives from
// rng.Split sub-streams keyed by stable labels, and the collector draws
// from none of them — so the result must be byte-identical with and
// without telemetry, on both a Sia workload and a synthetic-bursty one
// (the two arrival regimes with the most RNG traffic).
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	cases := map[string]string{
		"sia": `{"name": "sia", "workload": {"source": "sia-philly", "workload": 5},
		         "policy": {"name": "tiresias"}, "engine": {"record_utilization": true, "record_events": true}}`,
		"bursty": `{"name": "burst", "workload": {"source": "synthetic", "arrivals": "bursty", "num_jobs": 60, "jobs_per_hour": 25},
		            "policy": {"name": "random-sticky"}, "sched": {"name": "las"},
		            "engine": {"record_utilization": true, "record_events": true}}`,
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			off := runWithMetrics(t, src, false)
			on := runWithMetrics(t, src, true)
			if metrics.FromResult(on) == nil {
				t.Fatal("instrumented run carried no payload")
			}
			// Compare the full results except the sink pointer and the
			// wall-clock placement timings (values nondeterministic by
			// nature; counts must still match).
			if len(off.PlaceTimes) != len(on.PlaceTimes) {
				t.Errorf("PlaceTimes count: %d without metrics, %d with", len(off.PlaceTimes), len(on.PlaceTimes))
			}
			off.PlaceTimes, on.PlaceTimes = nil, nil
			off.Metrics, on.Metrics = nil, nil
			if !reflect.DeepEqual(off, on) {
				for i := range off.Jobs {
					if !reflect.DeepEqual(off.Jobs[i], on.Jobs[i]) {
						t.Errorf("job %d diverged:\n  off %+v\n  on  %+v", i, *off.Jobs[i], *on.Jobs[i])
						break
					}
				}
				t.Fatal("attaching metrics changed the simulation result")
			}
		})
	}
}

// TestMetricsChangeCacheKey pins the cache-key invariant for the new
// block: a metrics-carrying run must never alias a bare one, and any
// knob of the block must split the key.
func TestMetricsChangeCacheKey(t *testing.T) {
	base := `{"name": "k", "workload": {"source": "synthetic", "num_jobs": 30, "jobs_per_hour": 20}}`
	key := func(mutate func(*Spec)) string {
		s, err := Parse([]byte(base))
		if err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(s)
			s.Normalize()
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
		}
		b, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		return b.Key()
	}
	keys := map[string]string{
		"off":      key(nil),
		"on":       key(func(s *Spec) { s.Metrics.Enabled = true }),
		"interval": key(func(s *Spec) { s.Metrics.Enabled = true; s.Metrics.IntervalRounds = 9 }),
		"series": key(func(s *Spec) {
			s.Metrics.Enabled = true
			s.Metrics.Series = []string{metrics.SeriesQueueDepth}
		}),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("metrics variants %q and %q share cache key %s", prev, name, k[:16])
		}
		seen[k] = name
	}
}
