package scenario

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rng"
)

// gridDemoSpec is a three-axis grid over a small synthetic workload:
// axis declaration order differs from canonical order (policies before
// seeds) and seed values are deliberately unsorted, so the test below
// can pin that expansion follows canonical axis order with values in
// listed order.
const gridDemoSpec = `{
  "name": "g",
  "cluster": {"nodes": 2, "gpus_per_node": 2},
  "workload": {"source": "synthetic", "num_jobs": 10},
  "grid": {
    "policies": ["pal", "pm-first"],
    "seeds": [2, 1],
    "jobs_per_hour": [20, 10]
  }
}`

// TestGridExpansionDeterministic pins the expansion contract: axes vary
// in canonical order (struct order: seeds before policies before
// jobs_per_hour, regardless of declaration order in the file), values
// stay in listed order (unsorted seeds stay unsorted), the cross
// product is row-major with the last axis fastest, and expansion is a
// fixed point — every cell re-expands to itself and survives the
// canonical round trip, and the grid spec's own canonical form expands
// to the identical cell list.
func TestGridExpansionDeterministic(t *testing.T) {
	spec, err := Parse([]byte(gridDemoSpec))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.ExpandGrid()
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{
		"g@seed=2,policy=pal,jph=20",
		"g@seed=2,policy=pal,jph=10",
		"g@seed=2,policy=pm-first,jph=20",
		"g@seed=2,policy=pm-first,jph=10",
		"g@seed=1,policy=pal,jph=20",
		"g@seed=1,policy=pal,jph=10",
		"g@seed=1,policy=pm-first,jph=20",
		"g@seed=1,policy=pm-first,jph=10",
	}
	if len(cells) != len(wantNames) {
		t.Fatalf("expanded %d cells, want %d", len(cells), len(wantNames))
	}
	for i, c := range cells {
		if c.Name != wantNames[i] {
			t.Errorf("cell %d named %q, want %q (expansion order is part of the contract)", i, c.Name, wantNames[i])
		}
		if c.Grid != nil {
			t.Errorf("cell %d still carries a grid block", i)
		}
		// Per-cell defaulting: the synthetic workload seed must follow
		// the *cell's* root seed, not the base spec's — the reason grid
		// bases stay un-normalized until after the axis overrides.
		if c.Workload.Seed != c.Seed {
			t.Errorf("cell %d workload seed %d, want cell root seed %d", i, c.Workload.Seed, c.Seed)
		}
	}
	// Spot-check the axis overrides landed on the right fields.
	if cells[3].Seed != 2 || cells[3].Policy.Name != "pm-first" || cells[3].Workload.JobsPerHour != 10 {
		t.Errorf("cell 3 overrides wrong: seed=%d policy=%s jph=%g", cells[3].Seed, cells[3].Policy.Name, cells[3].Workload.JobsPerHour)
	}

	// Fixed point, cell level: every cell is an ordinary spec that is its
	// own single-element expansion and survives the canonical round trip.
	for i, c := range cells {
		single, err := c.ExpandGrid()
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != 1 || single[0] != c {
			t.Errorf("cell %d does not expand to itself", i)
		}
		canon, err := c.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		reparsed, err := Parse(canon)
		if err != nil {
			t.Fatalf("cell %d canonical form does not re-parse: %v", i, err)
		}
		if !reflect.DeepEqual(c, reparsed) {
			t.Errorf("cell %d changed across the canonical round trip", i)
		}
	}

	// Fixed point, grid level: canonicalizing and re-parsing the grid
	// spec itself must expand to the identical cell list.
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	respec, err := Parse(canon)
	if err != nil {
		t.Fatal(err)
	}
	recells, err := respec.ExpandGrid()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, recells) {
		t.Error("re-parsed grid spec expands differently")
	}

	// And twice from the same spec, trivially.
	again, err := spec.ExpandGrid()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, again) {
		t.Error("second expansion of the same spec differs")
	}
}

// TestGridDuplicateCellRejected: duplicate axis values are rejected at
// the axis level, and — defense in depth, exercised white-box since
// axis validation makes it otherwise unreachable — two cells that
// normalize to the same configuration modulo name are rejected at
// expansion rather than silently sharing one cache key.
func TestGridDuplicateCellRejected(t *testing.T) {
	_, err := Parse([]byte(`{
	  "name": "dup", "workload": {"source": "synthetic", "num_jobs": 5},
	  "grid": {"policies": ["pal", "pm-first", "pal"]}}`))
	if err == nil {
		t.Fatal("Parse accepted a grid axis with repeated values")
	}
	for _, want := range []string{"grid axis policies", "repeats value pal", "distinct"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not state %q", err, want)
		}
	}

	// White-box: drive expandCells directly with a duplicated axis value
	// (bypassing axis validation) to pin the canonical-collision guard.
	base, err := Parse([]byte(`{"name": "dup", "workload": {"source": "synthetic", "num_jobs": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	g := &GridSpec{Policies: []string{"pal", "pal"}}
	_, err = base.expandCells(g.axes())
	if err == nil {
		t.Fatal("expandCells accepted two cells with identical configurations")
	}
	if !strings.Contains(err.Error(), "same configuration") {
		t.Errorf("collision error %q does not name the aliasing", err)
	}
}

// TestGridSpecDoesNotBuild: a grid spec is a generator; Build must
// refuse it with a message that says what it is and where to take it.
func TestGridSpecDoesNotBuild(t *testing.T) {
	spec, err := Parse([]byte(gridDemoSpec))
	if err != nil {
		t.Fatal(err)
	}
	_, err = spec.Build()
	if err == nil {
		t.Fatal("Build accepted a grid spec")
	}
	for _, want := range []string{"grid of 8 cells", "palsweep"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not state %q", err, want)
		}
	}
}

// TestGridFuzzRoundTripAndUniqueKeys extends the scenario fuzz test to
// the grid DSL: random small grids must (a) round-trip parse →
// canonicalize → parse as a fixed point, (b) expand deterministically,
// and (c) never expand to two cells with the same Built.Key() — checked
// with every cell renamed to one probe name, so uniqueness comes from
// the configurations, not the generated cell names.
func TestGridFuzzRoundTripAndUniqueKeys(t *testing.T) {
	r := rng.New(0xBEEF)
	for i := 0; i < 20; i++ {
		g := &GridSpec{}
		// Fillers populate one axis each with 1-3 distinct in-range
		// values; a random subset of at most three axes keeps every fuzzed
		// grid at <= 27 cells.
		pickStrings := func(universe []string) []string {
			n := 1 + r.Intn(len(universe)-1)
			perm := r.Perm(len(universe))
			out := make([]string, n)
			for j := range out {
				out[j] = universe[perm[j]]
			}
			return out
		}
		fillers := []func(){
			func() {
				perm := r.Perm(1000)
				g.Seeds = make([]uint64, 1+r.Intn(3))
				for j := range g.Seeds {
					g.Seeds[j] = uint64(perm[j] + 1)
				}
			},
			func() { g.Policies = pickStrings([]string{"pal", "pm-first", "packed-sticky", "random-sticky"}) },
			func() { g.Scheds = pickStrings([]string{"fifo", "las", "srtf"}) },
			func() {
				perm := r.Perm(12)
				g.JobsPerHour = make([]float64, 1+r.Intn(3))
				for j := range g.JobsPerHour {
					g.JobsPerHour[j] = float64(5 * (perm[j] + 1))
				}
			},
			func() {
				perm := r.Perm(12)
				g.NumJobs = make([]int, 1+r.Intn(3))
				for j := range g.NumJobs {
					g.NumJobs[j] = perm[j] + 2
				}
			},
			func() { g.Arrivals = pickStrings([]string{"poisson", "bursty", "diurnal"}) },
		}
		order := r.Perm(len(fillers))
		for _, fi := range order[:1+r.Intn(3)] {
			fillers[fi]()
		}
		s := Spec{
			Name: fmt.Sprintf("gfuzz-%d", i),
			Cluster: ClusterSpec{
				Nodes:       1 + r.Intn(4),
				GPUsPerNode: 1 + r.Intn(2),
			},
			Workload: WorkloadSpec{
				Source:      "synthetic",
				NumJobs:     2 + r.Intn(6),
				JobsPerHour: float64(10 + r.Intn(40)),
			},
			Grid: g,
		}
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(s.Name, func(t *testing.T) {
			checkCanonicalRoundTrip(t, raw)
			spec, err := Parse(raw)
			if err != nil {
				t.Fatal(err)
			}
			cells, err := spec.ExpandGrid()
			if err != nil {
				t.Fatal(err)
			}
			again, err := spec.ExpandGrid()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cells, again) {
				t.Fatal("expansion is not deterministic")
			}
			seen := make(map[string]string, len(cells))
			for _, c := range cells {
				probe := c.clone()
				probe.Name = "probe"
				b, err := probe.Build()
				if err != nil {
					t.Fatal(err)
				}
				key := b.Key()
				if prev, dup := seen[key]; dup {
					t.Fatalf("cells %s and %s share cache key %s", prev, c.Name, key[:16])
				}
				seen[key] = c.Name
			}
		})
	}
}
