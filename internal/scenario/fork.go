package scenario

// Forked runs: a spec with a fork block simulates a warmup prefix —
// the fork's warmup policies up to the horizon round — captures the
// engine there (sim.Capture), and resumes under the spec's own
// policies (sim.Resume). The point of the split is sharing: every cell
// of a sweep whose warmup configuration, horizon and arrived-prefix
// workload coincide keys to the same snapshot (PrefixKey), so the
// sweep layer simulates the shared prefix once and forks each cell
// from it at the divergence point.
//
// Correctness rests on two facts pinned by tests:
//
//   - Resuming a snapshot is byte-identical to running straight
//     through (sim.TestSnapshotResumeByteIdentical), so a fork whose
//     warmup equals its own policies reproduces the unforked result
//     exactly.
//   - The capture state depends only on the jobs that can have arrived
//     by the horizon and on whether any arrival follows — never on
//     what the post-horizon workload looks like — so PrefixKey hashes
//     the materialized arrival prefix instead of the whole workload
//     and cells differing only in workload suffix share a snapshot.

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Forked reports whether the spec carries a fork block.
func (b *Built) Forked() bool { return b.Spec.Fork != nil }

// warmupNames resolves the fork's warmup policy and sched names (empty
// fork fields select the spec's own).
func (s *Spec) warmupNames() (policy, schd string) {
	policy, schd = s.Policy.Name, s.Sched.Name
	if f := s.Fork; f != nil {
		if f.Policy != "" {
			policy = f.Policy
		}
		if f.Sched != "" {
			schd = f.Sched
		}
	}
	return policy, schd
}

// WarmupConfig assembles the prefix configuration: the cell's full
// config — cluster, trace, profile, sinks, labels — with the scheduler
// and placer swapped for the warmup policies where the fork names
// them. Keeping the cell's own sinks means an early-completed warmup
// run yields a correctly-labeled payload, and a captured sink state
// restores into the identically-configured resumed sink.
func (b *Built) WarmupConfig() (sim.Config, error) {
	cfg, err := b.Config()
	if err != nil {
		return sim.Config{}, err
	}
	s := b.Spec
	f := s.Fork
	if f == nil {
		return cfg, nil
	}
	if f.Policy != "" && f.Policy != s.Policy.Name {
		placer, err := b.buildPlacer(f.Policy)
		if err != nil {
			return sim.Config{}, fmt.Errorf("scenario %s: fork warmup: %w", s.Name, err)
		}
		cfg.Placer = placer
	}
	if f.Sched != "" && f.Sched != s.Sched.Name {
		schd, err := sched.Build(f.Sched, nil)
		if err != nil {
			return sim.Config{}, fmt.Errorf("scenario %s: fork warmup: %w", s.Name, err)
		}
		cfg.Sched = schd
	}
	return cfg, nil
}

// CaptureSnapshot simulates the warmup prefix and captures the engine
// at the fork horizon. When the run completes before the horizon the
// snapshot is nil and the returned result IS the forked run's result:
// the switch point was never reached, so the warmup run — carrying the
// cell's own sinks and labels — is the whole run.
func (b *Built) CaptureSnapshot() (*sim.Snapshot, *sim.Result, error) {
	cfg, err := b.WarmupConfig()
	if err != nil {
		return nil, nil, err
	}
	return sim.Capture(cfg, b.Spec.Fork.Rounds)
}

// ResumeFrom resumes the cell's own configuration from a prefix
// snapshot: the spec's policy and sched take over at the horizon
// (policy state restores only where the resumed component's name
// matches the captured one — a genuine switch starts the new policy
// fresh, deterministically).
func (b *Built) ResumeFrom(snap *sim.Snapshot) (*sim.Result, error) {
	cfg, err := b.Config()
	if err != nil {
		return nil, err
	}
	return sim.Resume(cfg, snap)
}

// RunForked executes the fork semantics end to end. snap, when
// non-nil and not the completed sentinel, is a previously captured
// snapshot for this cell's prefix group (PrefixKey); otherwise the
// prefix is simulated here.
func (b *Built) RunForked(snap *sim.Snapshot) (*sim.Result, error) {
	if snap == nil || snap.Completed {
		captured, early, err := b.CaptureSnapshot()
		if err != nil {
			return nil, err
		}
		if captured == nil {
			return early, nil
		}
		snap = captured
	}
	return b.ResumeFrom(snap)
}

// PrefixKey returns the content-addressed identity of the fork's
// shared prefix — the snapshot cache's key space. Two cells share a
// key exactly when their warmup runs are indistinguishable up to the
// horizon: same warmup policies, same cluster/profile/engine/sink
// configuration, same horizon, same materialized arrival prefix, and
// agreement on whether any arrival follows the prefix (a run out of
// arrivals can complete before the horizon; one with more cannot).
// The cell's own policy/sched, its name and its workload suffix are
// deliberately absent: they are what the fork lets differ.
func (b *Built) PrefixKey() string {
	s := b.Spec
	f := s.Fork
	if f == nil {
		panic("scenario: PrefixKey on a spec without a fork block")
	}
	h := runner.NewHash()
	// v1: first generation of the prefix-key encoding. Bump on any
	// change to what a snapshot captures or how prefixes are compared.
	h.String("scenario-snapshot/v1")
	wp, ws := s.warmupNames()
	probe := s.clone()
	probe.Name = ""
	probe.Fork = nil
	probe.Policy.Name = wp
	if ws != s.Sched.Name {
		// A switched warmup sched is built with default params; the
		// spec's params belong to the post-fork sched only.
		probe.Sched.Params = nil
	}
	probe.Sched.Name = ws
	probe.Workload = WorkloadSpec{}
	canon, err := probe.Canonical()
	if err != nil {
		panic(err)
	}
	h.String(string(canon))
	h.Int(f.Rounds)
	cutoff, n := b.prefixCutoff()
	h.Float64(cutoff)
	hashJobs(h, b.Trace.Jobs[:n])
	more := 0
	if n < len(b.Trace.Jobs) {
		more = 1
	}
	h.Int(more)
	hashProfile(h, b.Profile)
	return h.Sum()
}

// prefixCutoff returns the latest pre-horizon admission time and the
// number of leading trace jobs that can have arrived by it. The engine
// admits at the top of each round; the capture point is the top of
// round Fork.Rounds before admissions, so every job with
// Arrival <= now at round Fork.Rounds-1 may be part of the captured
// state and no later job can influence it.
func (b *Built) prefixCutoff() (float64, int) {
	roundSec := b.Spec.Engine.RoundSec
	if roundSec <= 0 {
		roundSec = 300 // sim.Config's documented default round length
	}
	jobs := b.Trace.Jobs
	cutoff := 0.0
	if len(jobs) > 0 {
		cutoff = jobs[0].Arrival
	}
	// The engine advances its clock by repeated addition; mirror the
	// exact float accumulation so the boundary bits match.
	for r := 1; r < b.Spec.Fork.Rounds; r++ {
		cutoff += roundSec
	}
	n := 0
	for n < len(jobs) && jobs[n].Arrival <= cutoff {
		n++
	}
	return cutoff, n
}
