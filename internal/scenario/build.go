package scenario

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/cluster"
	// Imported for its init side effect: core registers "pm-first" and
	// "pal" in the placement registry, and scenario specs must resolve
	// those names even in binaries that use no other part of core.
	_ "repro/internal/core"
	"repro/internal/decision"
	"repro/internal/metrics"
	"repro/internal/place"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// defaultProfileSeed matches the experiments layer's ProfileSeed, so a
// scenario over a longhorn profile of the same size experiences the
// exact per-GPU scores the paper-figure runners use.
// defaultTestbedSeed matches experiments.TestbedProfile's shifted seed
// (ProfileSeed + 7), so the "testbed" source reproduces the Fig. 8
// profile exactly.
const (
	defaultProfileSeed = 0x9A1
	defaultTestbedSeed = defaultProfileSeed + 7
)

// fullClusterGPUs is the size of the full generated cluster that
// longhorn/frontera scenario profiles are sampled from (8 cabinets × 13
// nodes × 4 GPUs, the paper's Longhorn shape).
const fullClusterGPUs = 416

// Built is a scenario resolved to concrete simulation inputs. Trace and
// Profile are immutable and safely shared; Config constructs fresh
// policy instances per call (placers carry RNG state), so one Built can
// drive many concurrent runs — unless Counters is set: the engine
// increments it without atomics, so a counter-bearing Built must drive
// one run at a time (give concurrent runs their own Built or their own
// Counters via Config).
type Built struct {
	Spec    *Spec
	Topo    cluster.Topology
	Trace   *trace.Trace
	Profile *vprof.Profile

	// Counters, when non-nil, is handed to every Config this Built
	// produces (sim.Config.Counters): the engine's introspection
	// counters accumulate across the runs it drives — for a forked run,
	// capture and resume land on the same instance, so the counters
	// tell the whole warmup-then-switch story. Observation-only and
	// outside Key(): results and cache keys are untouched.
	Counters *sim.Counters
}

// Build resolves the spec's cluster, workload and profile. Generation
// is deterministic in the spec, so building twice — or on two machines
// — yields identical inputs.
func (s *Spec) Build() (*Built, error) {
	if s.Grid != nil {
		// A grid spec is a generator, not one configuration; building it
		// would have to pick a cell arbitrarily. Count the cells so the
		// message says what the spec actually describes.
		n := "?"
		if cells, err := s.ExpandGrid(); err == nil {
			n = fmt.Sprintf("%d", len(cells))
		}
		return nil, fmt.Errorf("scenario %s: spec is a grid of %s cells; expand it first (Spec.ExpandGrid, or sweep it with palsweep -scenario)", s.Name, n)
	}
	topo := cluster.Topology{
		NumNodes:     s.Cluster.Nodes,
		GPUsPerNode:  s.Cluster.GPUsPerNode,
		NodesPerRack: s.Cluster.NodesPerRack,
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	tr, err := s.buildTrace()
	if err != nil {
		return nil, err
	}
	prof, err := s.buildProfile(topo.Size())
	if err != nil {
		return nil, err
	}
	if prof.NumGPUs() < topo.Size() {
		return nil, fmt.Errorf("scenario %s: profile %q covers %d GPUs, cluster has %d",
			s.Name, prof.Name(), prof.NumGPUs(), topo.Size())
	}
	return &Built{Spec: s, Topo: topo, Trace: tr, Profile: prof}, nil
}

// buildTrace materializes the workload.
func (s *Spec) buildTrace() (*trace.Trace, error) {
	w := s.Workload
	switch w.Source {
	case "sia-philly":
		params := trace.DefaultSiaPhillyParams()
		params.NumJobs = w.NumJobs
		params.WindowHours = w.WindowHours
		params.Seed = w.Seed
		return trace.SiaPhilly(params, w.Workload), nil
	case "synergy":
		params := trace.DefaultSynergyParams(w.JobsPerHour)
		params.NumJobs = w.NumJobs
		params.Seed = w.Seed
		return trace.Synergy(params), nil
	case "synthetic":
		return trace.Synth(s.synthParams())
	case "file":
		f, err := os.Open(w.Path)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: workload: %w", s.Name, err)
		}
		defer f.Close()
		tr, err := trace.Load(f)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: workload %s: %w", s.Name, w.Path, err)
		}
		return tr, nil
	}
	return nil, fmt.Errorf("scenario %s: unknown workload source %q", s.Name, w.Source)
}

// profileMemo caches generated profiles per (source, gpus, seed):
// generation plus subsampling is cheap, but scenarios fanned out over a
// pool build repeatedly and profiles are immutable.
var profileMemo runner.Memo[string, *vprof.Profile]

// buildProfile materializes the variability profile, sized to cover the
// cluster.
func (s *Spec) buildProfile(gpus int) (*vprof.Profile, error) {
	p := s.Profile
	switch p.Source {
	case "longhorn", "frontera":
		if gpus > fullClusterGPUs {
			return nil, fmt.Errorf("scenario %s: %s profiles cover at most %d GPUs, cluster has %d",
				s.Name, p.Source, fullClusterGPUs, gpus)
		}
		key := fmt.Sprintf("%s-%d-%d", p.Source, gpus, p.Seed)
		var err error
		prof := profileMemo.Get(key, func() *vprof.Profile {
			// The paper's methodology (§IV-C): profile the full cluster,
			// then sample the simulated cluster's GPUs without repetition.
			var full *vprof.Profile
			if p.Source == "longhorn" {
				full = vprof.GenerateLonghorn(fullClusterGPUs, p.Seed)
			} else {
				full = vprof.GenerateFrontera(fullClusterGPUs, p.Seed)
			}
			perm := rng.New(p.Seed).Split(uint64(gpus)).Perm(full.NumGPUs())
			sub, serr := full.Subsample(key, perm, gpus)
			if serr != nil {
				err = serr
				return nil
			}
			return sub
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		return prof, nil
	case "testbed":
		if gpus > 64 {
			return nil, fmt.Errorf("scenario %s: the testbed profile covers 64 GPUs, cluster has %d", s.Name, gpus)
		}
		return profileMemo.Get(fmt.Sprintf("testbed-%d", p.Seed), func() *vprof.Profile {
			return vprof.GenerateTestbed(p.Seed)
		}), nil
	case "file":
		f, err := os.Open(p.Path)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: profile: %w", s.Name, err)
		}
		defer f.Close()
		prof, err := vprof.Load(f)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: profile %s: %w", s.Name, p.Path, err)
		}
		return prof, nil
	}
	return nil, fmt.Errorf("scenario %s: unknown profile source %q", s.Name, p.Source)
}

// binMemo caches the silhouette K-Means binning per profile, mirroring
// the experiments layer: binning is O(n²) per class and profiles are
// shared immutable values.
var binMemo runner.Memo[*vprof.Profile, *vprof.Binned]

// Config assembles a sim.Config for the built scenario. Each call
// constructs fresh scheduler, placer and admission instances — placers
// hold RNG state, so sharing one across runs would couple them.
func (b *Built) Config() (sim.Config, error) {
	s := b.Spec
	schedPolicy, err := sched.Build(s.Sched.Name, s.Sched.Params)
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	var modelLacross map[string]float64
	if s.Locality.PerModel {
		modelLacross = trace.LacrossByModel()
	}
	placer, err := b.buildPlacer(s.Policy.Name)
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	admit, err := buildAdmission(s.Admission)
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	migration := s.Engine.MigrationPenaltySec
	switch {
	case migration == 0:
		migration = defaultMigrationPenaltySec
	case migration < 0:
		migration = 0
	}
	var sink sim.MetricsSink
	if s.Metrics.Enabled {
		// A fresh collector per Config call, like the policy instances:
		// collectors hold per-run state, so sharing one across runs would
		// interleave their observations.
		collector, err := metrics.NewCollector(metrics.Config{
			IntervalRounds: s.Metrics.IntervalRounds,
			MaxSamples:     s.Metrics.MaxSamples,
			HistBins:       s.Metrics.HistBins,
			Series:         s.Metrics.Series,
			ClusterGPUs:    b.Topo.Size(),
			Label:          s.Name,
			Policy:         s.Policy.Name,
			Sched:          s.Sched.Name,
		})
		if err != nil {
			return sim.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		sink = collector
	}
	var decSink sim.DecisionSink
	if s.Decisions.Enabled {
		// Fresh recorder per Config call, for the same reason as the
		// collector: recorders hold per-run ring-buffer state.
		rec, err := decision.NewRecorder(decision.Config{
			Label:      s.Name,
			Policy:     s.Policy.Name,
			Sched:      s.Sched.Name,
			MaxRecords: s.Decisions.MaxRecords,
			Facets:     s.Decisions.Record,
		})
		if err != nil {
			return sim.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		decSink = rec
	}
	return sim.Config{
		Topology:            b.Topo,
		Trace:               b.Trace,
		Sched:               schedPolicy,
		Placer:              placer,
		Admit:               admit,
		TrueProfile:         b.Profile,
		Lacross:             s.Locality.Lacross,
		ModelLacross:        modelLacross,
		Lrack:               s.Locality.Lrack,
		RoundSec:            s.Engine.RoundSec,
		MaxRounds:           s.Engine.MaxRounds,
		MeasureFirst:        s.Engine.MeasureFirst,
		MeasureLast:         s.Engine.MeasureLast,
		RecordUtilization:   s.Engine.RecordUtilization,
		RecordEvents:        s.Engine.RecordEvents,
		MigrationPenaltySec: migration,
		Metrics:             sink,
		Decisions:           decSink,
		Counters:            b.Counters,
	}, nil
}

// defaultMigrationPenaltySec mirrors the experiments layer's default
// checkpoint/restore cost.
const defaultMigrationPenaltySec = 10

// buildPlacer constructs a placement policy by registry name against
// the built scenario's profile and locality model, with the placer's
// RNG stream derived from the spec seed and the policy name — so the
// spec's own policy and a fork's warmup policy each get the stream they
// would have gotten as the spec's policy.
func (b *Built) buildPlacer(name string) (sim.Placer, error) {
	s := b.Spec
	var modelLacross map[string]float64
	if s.Locality.PerModel {
		modelLacross = trace.LacrossByModel()
	}
	return place.Build(name, place.BuildEnv{
		Scores:       binMemo.Get(b.Profile, func() *vprof.Binned { return vprof.BinProfile(b.Profile) }),
		Lacross:      s.Locality.Lacross,
		ModelLacross: modelLacross,
		Lrack:        s.Locality.Lrack,
		Seed:         runner.DeriveSeed(s.Seed, "scenario/placer/"+name),
	})
}

// Run builds a config and executes the simulation once. A fork-bearing
// spec runs its warmup-then-switch semantics (RunForked).
func (b *Built) Run() (*sim.Result, error) {
	if b.Forked() {
		return b.RunForked(nil)
	}
	cfg, err := b.Config()
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg)
}

// Admission registry: tiny (two builtin policies), but a registry for
// symmetry with sched/place so extensions can name new admission
// policies from specs.
var (
	admissionMu       sync.RWMutex
	admissionRegistry = map[string]func() sim.Admission{
		"admit-all":  func() sim.Admission { return sim.AdmitAll{} },
		"admit-fits": func() sim.Admission { return sim.AdmitFits{} },
	}
)

// RegisterAdmission adds an admission-policy builder under the given
// name, panicking on duplicates.
func RegisterAdmission(name string, build func() sim.Admission) {
	admissionMu.Lock()
	defer admissionMu.Unlock()
	if _, dup := admissionRegistry[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate admission policy %q", name))
	}
	admissionRegistry[name] = build
}

// AdmissionNames returns the registered admission-policy names, sorted.
func AdmissionNames() []string {
	admissionMu.RLock()
	defer admissionMu.RUnlock()
	names := make([]string, 0, len(admissionRegistry))
	for n := range admissionRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func buildAdmission(name string) (sim.Admission, error) {
	admissionMu.RLock()
	build, ok := admissionRegistry[name]
	admissionMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown admission policy %q (have %v)", name, AdmissionNames())
	}
	return build(), nil
}

// Key returns the content-addressed cache key of the built scenario for
// the runner's result cache: a canonical hash over the normalized spec
// plus the materialized trace and profile content. Hashing the built
// content (not just the spec) means file-sourced workloads key on what
// the file contained, and two specs that materialize identical inputs
// by different routes share a key only when the whole configuration
// genuinely matches.
func (b *Built) Key() string {
	h := runner.NewHash()
	// v5: the spec grew the fork block (warmup-then-switch runs; a
	// forked run must never alias its unforked counterpart). v4 added
	// the grid block and the per-cell defaulting pass that comes with it
	// (grid bases stay un-normalized; cells normalize after axis
	// overrides); v3 added the decisions block (whose trace rides on
	// cached results, so a decisions-on run must never alias a
	// decisions-off one); v2 added the metrics block for the same reason.
	h.String("scenario/v5")
	canon, err := b.Spec.Canonical()
	if err != nil {
		// Canonical only fails on a non-serializable spec, which Parse
		// can never produce; fail the key rather than alias runs.
		panic(err)
	}
	h.String(string(canon))
	h.String(b.Trace.Name)
	hashJobs(h, b.Trace.Jobs)
	hashProfile(h, b.Profile)
	return h.Sum()
}

// hashJobs folds job specs into a cache key (count plus every field
// that reaches the simulation).
func hashJobs(h *runner.Hash, jobs []trace.JobSpec) {
	h.Int(len(jobs))
	for _, j := range jobs {
		h.Int(j.ID)
		h.String(j.Model)
		h.Int(int(j.Class))
		h.Float64(j.Arrival)
		h.Int(j.Demand)
		h.Float64(j.Work)
	}
}

// hashProfile folds the materialized variability profile's content into
// a cache key.
func hashProfile(h *runner.Hash, p *vprof.Profile) {
	h.String(p.Name())
	h.Int(p.NumClasses())
	h.Int(p.NumGPUs())
	for c := 0; c < p.NumClasses(); c++ {
		h.Floats(p.ClassScores(vprof.Class(c)))
	}
}
