package scenario

import (
	"testing"
)

// goldenSpecKey pins Built.Key() for the checked-in reference spec.
// Cache keys are content hashes of the full run configuration; a key
// that drifts without anyone touching the configuration means the
// encoding changed silently — exactly the stale-cache bug class the
// content-addressed design exists to prevent. If this test fails because
// you *deliberately* changed the spec schema, its defaults, the example
// spec, a generator, or the key encoding: bump the version tag in
// Built.Key (per the cache-key invariant) and update the constant below
// in the same commit.
const goldenSpecKey = "9808377eb4bd1faaba3ca4ea9a2760e7d679e3b0b5902bac57cc65b38f45fe6a"

func TestGoldenScenarioKey(t *testing.T) {
	spec, err := LoadFile("../../examples/scenario/spec.json")
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Key(); got != goldenSpecKey {
		t.Errorf("examples/scenario/spec.json key drifted:\n  got  %s\n  want %s\n"+
			"If this change is intentional, bump the version tag in Built.Key and update goldenSpecKey.",
			got, goldenSpecKey)
	}

	// The golden value must also be sensitive: enabling the decisions
	// block has to move the key (its trace rides on cached results).
	spec.Decisions.Enabled = true
	spec.Normalize()
	b2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b2.Key() == goldenSpecKey {
		t.Error("decisions block does not feed the cache key (stale-cache hazard)")
	}
}
